//! Query layer over a fitted embedding: top-k attribute inference, top-k
//! link recommendation, and nearest-neighbor search in embedding space.
//! These are the operations a downstream service actually issues against
//! the vectors PANE produces.
//!
//! Serving modes, selected by [`QueryBackend`]:
//!
//! * [`QueryBackend::Exact`] — brute-force scans with a bounded-heap
//!   top-k (`O(n log k)` per query). The default.
//! * [`QueryBackend::Flat`] / [`QueryBackend::Ivf`] /
//!   [`QueryBackend::Hnsw`] — serving through `pane-index`: similar-node
//!   search runs against an index over the `[X_f ‖ X_b]` classifier
//!   features, link recommendation against a max-inner-product index over
//!   `X_b` (the Eq. 22 score `X_f[src]·(YᵀY)·X_b[dst]ᵀ` is a dot product
//!   between a per-query vector `q = X_f[src]·YᵀY` and the stored `X_b`
//!   rows). `Flat` is exact; `Ivf`/`Hnsw` trade recall for latency.
//!
//! # Unified score scale
//!
//! Every backend returns scores with the **same documented semantics**,
//! so a serving daemon can mix backends (or fail over between them)
//! without clients seeing a scale change:
//!
//! * [`similar_nodes`](EmbeddingQuery::similar_nodes):
//!   `s(u, v) = cos(X_f[u], X_f[v]) + cos(X_b[u], X_b[v]) ∈ [-2, 2]`,
//!   where a zero half-vector contributes exactly 0 to the sum. Because
//!   [`PaneEmbedding::classifier_features`] L2-normalizes each half (and
//!   leaves zero halves zero), this is the plain dot product of the
//!   feature vectors — which is what both the exact scan and the
//!   max-inner-product node index compute, **bit-identically**.
//!   (Historically the exact scan renormalized the *concatenation*,
//!   which silently rescaled nodes with a zero half by √2 relative to
//!   the indexed backends and diverged their rankings.)
//! * [`recommend_links`](EmbeddingQuery::recommend_links): the raw Eq. 22
//!   inner product `p(src → dst) = X_f[src]·(YᵀY)·X_b[dst]ᵀ`, identical
//!   across all backends by construction.

use crate::pane::PaneEmbedding;
use pane_index::{
    topk, AnyIndex, FlatIndex, HnswConfig, HnswIndex, IvfConfig, IvfIndex, Metric, VectorIndex,
};
use pane_linalg::{vecops, DenseMatrix};
use pane_parallel::{even_ranges_nonempty, map_blocks};

/// A scored item (index + score), ordered by descending score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scored {
    /// Item index (node or attribute id).
    pub index: usize,
    /// Score (larger = better).
    pub score: f64,
}

/// Bounded-heap top-k over a score stream: `O(n log k)`, NaN-safe (a
/// degenerate embedding ranks NaN scores last instead of panicking), ties
/// broken by ascending index.
fn top_k(scores: impl Iterator<Item = (usize, f64)>, k: usize) -> Vec<Scored> {
    topk::select(scores, k)
        .into_iter()
        .map(|n| Scored {
            index: n.index,
            score: n.score,
        })
        .collect()
}

/// How an [`EmbeddingQuery`] serves `similar_nodes` / `recommend_links`.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum QueryBackend {
    /// Exact brute-force scans (the default).
    #[default]
    Exact,
    /// Exact serving through flat `pane-index` structures — same results
    /// as [`QueryBackend::Exact`], but through the shared-index machinery
    /// a daemon uses (and therefore insert-capable via delta segments).
    Flat,
    /// Approximate serving through an inverted-file index.
    Ivf(IvfConfig),
    /// Approximate serving through an HNSW graph index.
    Hnsw(HnswConfig),
}

/// Query interface over an embedding.
pub struct EmbeddingQuery<'a> {
    emb: &'a PaneEmbedding,
    gram: DenseMatrix,
    /// Cosine index over `[X_f ‖ X_b]` classifier features (node search).
    node_index: Option<AnyIndex>,
    /// Inner-product index over `X_b` (link recommendation).
    link_index: Option<AnyIndex>,
}

impl<'a> EmbeddingQuery<'a> {
    /// Wraps an embedding for exact serving, precomputing the `YᵀY` Gram
    /// matrix once.
    pub fn new(emb: &'a PaneEmbedding) -> Self {
        Self::with_backend(emb, &QueryBackend::Exact)
    }

    /// Wraps an embedding, building ANN indexes when `backend` asks for
    /// them: a max-inner-product index over the classifier features for
    /// [`similar_nodes`](Self::similar_nodes) (the unified score
    /// `cos_f + cos_b` *is* that inner product — see the module docs),
    /// and a max-inner-product index over `X_b` for
    /// [`recommend_links`](Self::recommend_links).
    pub fn with_backend(emb: &'a PaneEmbedding, backend: &QueryBackend) -> Self {
        let (node_index, link_index) = match backend {
            QueryBackend::Exact => (None, None),
            QueryBackend::Flat => {
                let features = emb.classifier_feature_matrix();
                (
                    Some(AnyIndex::Flat(FlatIndex::build(
                        &features,
                        Metric::InnerProduct,
                    ))),
                    Some(AnyIndex::Flat(FlatIndex::build(
                        &emb.backward,
                        Metric::InnerProduct,
                    ))),
                )
            }
            QueryBackend::Ivf(cfg) => {
                let features = emb.classifier_feature_matrix();
                (
                    Some(AnyIndex::Ivf(IvfIndex::build(
                        &features,
                        Metric::InnerProduct,
                        cfg,
                    ))),
                    Some(AnyIndex::Ivf(IvfIndex::build(
                        &emb.backward,
                        Metric::InnerProduct,
                        cfg,
                    ))),
                )
            }
            QueryBackend::Hnsw(cfg) => {
                let features = emb.classifier_feature_matrix();
                (
                    Some(AnyIndex::Hnsw(HnswIndex::build(
                        &features,
                        Metric::InnerProduct,
                        cfg,
                    ))),
                    Some(AnyIndex::Hnsw(HnswIndex::build(
                        &emb.backward,
                        Metric::InnerProduct,
                        cfg,
                    ))),
                )
            }
        };
        Self {
            gram: emb.link_gram(),
            emb,
            node_index,
            link_index,
        }
    }

    /// The ANN index serving [`similar_nodes`](Self::similar_nodes), if
    /// the backend built one.
    pub fn node_index(&self) -> Option<&AnyIndex> {
        self.node_index.as_ref()
    }

    /// The ANN index serving [`recommend_links`](Self::recommend_links),
    /// if the backend built one.
    pub fn link_index(&self) -> Option<&AnyIndex> {
        self.link_index.as_ref()
    }

    /// The per-query link vector `q = X_f[src]·YᵀY`, so that the Eq. 22
    /// score is `p(src → dst) = q · X_b[dst]` — the form a
    /// max-inner-product index serves directly. Delegates to
    /// [`PaneEmbedding::link_query_vector_with`] (the single shared
    /// kernel) with the query's precomputed Gram matrix.
    pub fn link_query_vector(&self, src: usize) -> Vec<f64> {
        self.emb.link_query_vector_with(&self.gram, src)
    }

    /// Top-`k` attributes for node `v` by Eq. (21) affinity.
    pub fn top_attributes(&self, v: usize, k: usize) -> Vec<Scored> {
        let d = self.emb.attribute.rows();
        top_k((0..d).map(|r| (r, self.emb.attribute_score(v, r))), k)
    }

    /// Top-`k` nodes for attribute `r` (reverse attribute inference:
    /// "which nodes most plausibly carry r?").
    pub fn top_nodes_for_attribute(&self, r: usize, k: usize) -> Vec<Scored> {
        let n = self.emb.forward.rows();
        top_k((0..n).map(|v| (v, self.emb.attribute_score(v, r))), k)
    }

    /// Top-`k` link recommendations *from* `src` by Eq. (22), excluding
    /// `src` itself and any indices in `exclude` (typically its existing
    /// out-neighbors). Served through the link index when the backend
    /// built one, else by exact scan.
    pub fn recommend_links(&self, src: usize, k: usize, exclude: &[u32]) -> Vec<Scored> {
        let q = self.link_query_vector(src);
        if let Some(idx) = &self.link_index {
            // Oversample so the post-filter can drop src and exclusions
            // without starving the result.
            let hits = idx.search(&q, k + exclude.len() + 1);
            return hits
                .into_iter()
                .filter(|h| h.index != src && !exclude.contains(&(h.index as u32)))
                .take(k)
                .map(|h| Scored {
                    index: h.index,
                    score: h.score,
                })
                .collect();
        }
        let n = self.emb.forward.rows();
        top_k(
            (0..n)
                .filter(|&dst| dst != src && !exclude.contains(&(dst as u32)))
                .map(|dst| (dst, vecops::dot(&q, self.emb.backward.row(dst)))),
            k,
        )
    }

    /// Top-`k` nodes most similar to `v` on the **unified score scale**
    /// `s(v, u) = cos(X_f[v], X_f[u]) + cos(X_b[v], X_b[u]) ∈ [-2, 2]`
    /// (a zero half contributes 0; see the module docs). Served through
    /// the node index when the backend built one, else by exact scan —
    /// exact and flat/full-probe-IVF backends return bit-identical
    /// rankings and scores.
    pub fn similar_nodes(&self, v: usize, k: usize) -> Vec<Scored> {
        let target = self.emb.classifier_features(v);
        if let Some(idx) = &self.node_index {
            let hits = idx.search(&target, k + 1);
            return hits
                .into_iter()
                .filter(|h| h.index != v)
                .take(k)
                .map(|h| Scored {
                    index: h.index,
                    score: h.score,
                })
                .collect();
        }
        let n = self.emb.forward.rows();
        top_k(
            (0..n).filter(|&u| u != v).map(|u| {
                let f = self.emb.classifier_features(u);
                // The halves of the feature vectors are unit (or zero), so
                // this dot IS cos_f + cos_b — computed with the same kernel
                // the indexed backends use, keeping the paths bit-identical.
                (u, vecops::dot(&target, &f))
            }),
            k,
        )
    }

    /// [`similar_nodes`](Self::similar_nodes) for a batch of query nodes,
    /// fanned out over `threads` scoped workers. Output order matches
    /// `nodes`, and the result is identical for every thread count.
    pub fn batch_similar_nodes(
        &self,
        nodes: &[usize],
        k: usize,
        threads: usize,
    ) -> Vec<Vec<Scored>> {
        let ranges = even_ranges_nonempty(nodes.len(), threads.max(1));
        map_blocks(&ranges, |_, range| {
            range
                .map(|i| self.similar_nodes(nodes[i], k))
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Pane, PaneConfig};
    use pane_graph::gen::{generate_sbm, SbmConfig};

    fn fixture() -> (pane_graph::AttributedGraph, PaneEmbedding) {
        let g = generate_sbm(&SbmConfig {
            nodes: 200,
            communities: 4,
            avg_out_degree: 6.0,
            attributes: 20,
            attrs_per_node: 4.0,
            attr_noise: 0.05,
            seed: 31,
            ..Default::default()
        });
        let emb = Pane::new(PaneConfig::builder().dimension(32).seed(5).build())
            .embed(&g)
            .unwrap();
        (g, emb)
    }

    #[test]
    fn top_attributes_rank_owned_high() {
        let (g, emb) = fixture();
        let q = EmbeddingQuery::new(&emb);
        let mut hits = 0;
        let mut trials = 0;
        for v in (0..g.num_nodes()).step_by(13) {
            let (owned, _) = g.node_attributes(v);
            if owned.is_empty() {
                continue;
            }
            let top: Vec<usize> = q
                .top_attributes(v, 8)
                .into_iter()
                .map(|s| s.index)
                .collect();
            trials += 1;
            if owned.iter().any(|&a| top.contains(&(a as usize))) {
                hits += 1;
            }
        }
        assert!(
            hits * 10 >= trials * 7,
            "owned attributes rarely in top-8: {hits}/{trials}"
        );
    }

    #[test]
    fn top_k_is_sorted_and_truncated() {
        let (_, emb) = fixture();
        let q = EmbeddingQuery::new(&emb);
        let top = q.top_attributes(0, 5);
        assert_eq!(top.len(), 5);
        for w in top.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn top_k_survives_nan_scores() {
        // A zeroed-out embedding produces NaN cosines and NaN objective
        // scores downstream; the serving path must degrade, not panic.
        let scores = [1.0, f64::NAN, 0.5, f64::NAN];
        let top = top_k(scores.iter().cloned().enumerate(), 3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].index, 0);
        assert_eq!(top[1].index, 2);
        assert!(top[2].score.is_nan());
    }

    #[test]
    fn recommend_links_respects_exclusions() {
        let (g, emb) = fixture();
        let q = EmbeddingQuery::new(&emb);
        let src = 3;
        let (nbrs, _) = g.out_neighbors(src);
        let rec = q.recommend_links(src, 10, nbrs);
        for s in &rec {
            assert_ne!(s.index, src);
            assert!(
                !nbrs.contains(&(s.index as u32)),
                "recommended an existing neighbor"
            );
        }
        // Recommendations favor the same community (homophily signal).
        let src_label = g.labels_of(src)[0];
        let same = rec
            .iter()
            .filter(|s| g.labels_of(s.index).contains(&src_label))
            .count();
        assert!(
            same * 2 >= rec.len(),
            "only {same}/{} recommendations intra-community",
            rec.len()
        );
    }

    #[test]
    fn similar_nodes_prefer_same_community() {
        let (g, emb) = fixture();
        let q = EmbeddingQuery::new(&emb);
        let v = 10;
        let label = g.labels_of(v)[0];
        let sim = q.similar_nodes(v, 10);
        let same = sim
            .iter()
            .filter(|s| g.labels_of(s.index).contains(&label))
            .count();
        assert!(
            same * 2 >= sim.len(),
            "only {same}/{} similar nodes share the community",
            sim.len()
        );
    }

    #[test]
    fn recommend_matches_link_score() {
        let (g, emb) = fixture();
        let q = EmbeddingQuery::new(&emb);
        let gram = emb.link_gram();
        let rec = q.recommend_links(0, 3, &[]);
        for s in rec {
            let direct = emb.link_score_with(&gram, 0, s.index);
            assert!(
                (direct - s.score).abs() < 1e-10,
                "query score diverges from Eq. 22"
            );
        }
        let _ = g;
    }

    /// Regression for the PR 3 review finding: the exact scan used to
    /// renormalize the *concatenated* feature vector, which rescaled
    /// nodes with a zero half-vector by √2 relative to the indexed
    /// backends and diverged the rankings. All exact-capable paths must
    /// now return bit-identical scores on the unified `cos_f + cos_b`
    /// scale, zero halves included.
    #[test]
    fn similar_rankings_identical_across_backends_with_zero_halves() {
        let (n, k2, d) = (26usize, 4usize, 6usize);
        let mut state = 0xD1CEu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        let fill = |rows: usize, next: &mut dyn FnMut() -> f64| {
            pane_linalg::DenseMatrix::from_vec(rows, k2, (0..rows * k2).map(|_| next()).collect())
        };
        let mut forward = fill(n, &mut next);
        let mut backward = fill(n, &mut next);
        let attribute = fill(d, &mut next);
        // Zero half-vectors: forward-only, backward-only, and both.
        for v in [3, 7] {
            forward.row_mut(v).fill(0.0);
        }
        backward.row_mut(5).fill(0.0);
        forward.row_mut(9).fill(0.0);
        backward.row_mut(9).fill(0.0);
        let emb = PaneEmbedding {
            forward,
            backward,
            attribute,
            timings: Default::default(),
            objective: 0.0,
        };

        let exact = EmbeddingQuery::new(&emb);
        let flat = EmbeddingQuery::with_backend(&emb, &QueryBackend::Flat);
        let ivf_full = EmbeddingQuery::with_backend(
            &emb,
            &QueryBackend::Ivf(IvfConfig {
                nlist: 4,
                nprobe: 4,
                ..Default::default()
            }),
        );
        let hnsw = EmbeddingQuery::with_backend(&emb, &QueryBackend::Hnsw(HnswConfig::default()));
        for v in 0..n {
            let truth = exact.similar_nodes(v, 8);
            // Unified-scale sanity: every score is a sum of two cosines.
            for s in &truth {
                assert!((-2.0 - 1e-9..=2.0 + 1e-9).contains(&s.score), "{}", s.score);
            }
            assert_eq!(truth, flat.similar_nodes(v, 8), "flat diverged at {v}");
            assert_eq!(
                truth,
                ivf_full.similar_nodes(v, 8),
                "full-probe ivf diverged at {v}"
            );
            // HNSW is approximate, but whatever it returns must be scored
            // on the same scale, bit-identically with the exact kernel.
            let target = emb.classifier_features(v);
            for h in hnsw.similar_nodes(v, 8) {
                let want = vecops::dot(&target, &emb.classifier_features(h.index));
                assert_eq!(h.score, want, "hnsw score off the unified scale at {v}");
            }
        }
    }

    #[test]
    fn indexed_backends_approximate_exact_serving() {
        let (_, emb) = fixture();
        let exact = EmbeddingQuery::new(&emb);
        for backend in [
            QueryBackend::Flat,
            QueryBackend::Ivf(IvfConfig {
                nlist: 8,
                nprobe: 8,
                ..Default::default()
            }),
            QueryBackend::Hnsw(HnswConfig::default()),
        ] {
            let approx = EmbeddingQuery::with_backend(&emb, &backend);
            assert!(approx.node_index().is_some() && approx.link_index().is_some());
            let mut overlap = 0;
            let mut total = 0;
            for v in (0..emb.forward.rows()).step_by(19) {
                let truth: Vec<usize> =
                    exact.similar_nodes(v, 10).iter().map(|s| s.index).collect();
                for s in approx.similar_nodes(v, 10) {
                    total += 1;
                    overlap += usize::from(truth.contains(&s.index));
                }
                // Link scores must still be genuine Eq. 22 scores.
                for s in approx.recommend_links(v, 3, &[]) {
                    let direct = emb.link_score_with(&exact.gram, v, s.index);
                    assert!((direct - s.score).abs() < 1e-10);
                }
            }
            assert!(
                overlap * 10 >= total * 8,
                "backend {backend:?}: similar-node overlap too low ({overlap}/{total})"
            );
        }
    }

    #[test]
    fn indexed_recommend_respects_exclusions() {
        let (g, emb) = fixture();
        let q = EmbeddingQuery::with_backend(&emb, &QueryBackend::Hnsw(HnswConfig::default()));
        let src = 3;
        let (nbrs, _) = g.out_neighbors(src);
        let rec = q.recommend_links(src, 10, nbrs);
        assert!(!rec.is_empty());
        for s in &rec {
            assert_ne!(s.index, src);
            assert!(!nbrs.contains(&(s.index as u32)));
        }
    }

    #[test]
    fn batch_similar_matches_single_across_threads() {
        let (_, emb) = fixture();
        let q = EmbeddingQuery::new(&emb);
        let nodes: Vec<usize> = (0..40).step_by(3).collect();
        let single: Vec<Vec<Scored>> = nodes.iter().map(|&v| q.similar_nodes(v, 5)).collect();
        for threads in [1, 4] {
            assert_eq!(q.batch_similar_nodes(&nodes, 5, threads), single);
        }
    }
}
