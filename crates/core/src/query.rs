//! Query helpers over a fitted embedding: top-k attribute inference,
//! top-k link recommendation, and nearest-neighbor search in embedding
//! space. These are the operations a downstream service actually issues
//! against the vectors PANE produces.

use crate::pane::PaneEmbedding;
use pane_linalg::{vecops, DenseMatrix};

/// A scored item (index + score), ordered by descending score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scored {
    /// Item index (node or attribute id).
    pub index: usize,
    /// Score (larger = better).
    pub score: f64,
}

fn top_k(scores: impl Iterator<Item = (usize, f64)>, k: usize) -> Vec<Scored> {
    // Simple selection: collect + partial sort. k is small in practice.
    let mut all: Vec<Scored> = scores
        .map(|(index, score)| Scored { index, score })
        .collect();
    all.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("NaN score")
            .then(a.index.cmp(&b.index))
    });
    all.truncate(k);
    all
}

/// Query interface over an embedding.
pub struct EmbeddingQuery<'a> {
    emb: &'a PaneEmbedding,
    gram: DenseMatrix,
}

impl<'a> EmbeddingQuery<'a> {
    /// Wraps an embedding, precomputing the `YᵀY` Gram matrix once.
    pub fn new(emb: &'a PaneEmbedding) -> Self {
        Self {
            gram: emb.link_gram(),
            emb,
        }
    }

    /// Top-`k` attributes for node `v` by Eq. (21) affinity.
    pub fn top_attributes(&self, v: usize, k: usize) -> Vec<Scored> {
        let d = self.emb.attribute.rows();
        top_k((0..d).map(|r| (r, self.emb.attribute_score(v, r))), k)
    }

    /// Top-`k` nodes for attribute `r` (reverse attribute inference:
    /// "which nodes most plausibly carry r?").
    pub fn top_nodes_for_attribute(&self, r: usize, k: usize) -> Vec<Scored> {
        let n = self.emb.forward.rows();
        top_k((0..n).map(|v| (v, self.emb.attribute_score(v, r))), k)
    }

    /// Top-`k` link recommendations *from* `src` by Eq. (22), excluding
    /// `src` itself and any indices in `exclude` (typically its existing
    /// out-neighbors).
    pub fn recommend_links(&self, src: usize, k: usize, exclude: &[u32]) -> Vec<Scored> {
        let n = self.emb.forward.rows();
        // Precompute X_f[src]·G once: score(dst) = q · X_b[dst].
        let k2 = self.emb.forward.cols();
        let mut q = vec![0.0; k2];
        let xf = self.emb.forward.row(src);
        for a in 0..k2 {
            if xf[a] != 0.0 {
                vecops::axpy(xf[a], self.gram.row(a), &mut q);
            }
        }
        top_k(
            (0..n)
                .filter(|&dst| dst != src && !exclude.contains(&(dst as u32)))
                .map(|dst| (dst, vecops::dot(&q, self.emb.backward.row(dst)))),
            k,
        )
    }

    /// Top-`k` nodes most similar to `v` by cosine over the concatenated
    /// `[X_f ‖ X_b]` features (the classifier representation).
    pub fn similar_nodes(&self, v: usize, k: usize) -> Vec<Scored> {
        let n = self.emb.forward.rows();
        let target = self.emb.classifier_features(v);
        top_k(
            (0..n).filter(|&u| u != v).map(|u| {
                let f = self.emb.classifier_features(u);
                (u, vecops::cosine(&target, &f))
            }),
            k,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Pane, PaneConfig};
    use pane_graph::gen::{generate_sbm, SbmConfig};

    fn fixture() -> (pane_graph::AttributedGraph, PaneEmbedding) {
        let g = generate_sbm(&SbmConfig {
            nodes: 200,
            communities: 4,
            avg_out_degree: 6.0,
            attributes: 20,
            attrs_per_node: 4.0,
            attr_noise: 0.05,
            seed: 31,
            ..Default::default()
        });
        let emb = Pane::new(PaneConfig::builder().dimension(32).seed(5).build())
            .embed(&g)
            .unwrap();
        (g, emb)
    }

    #[test]
    fn top_attributes_rank_owned_high() {
        let (g, emb) = fixture();
        let q = EmbeddingQuery::new(&emb);
        let mut hits = 0;
        let mut trials = 0;
        for v in (0..g.num_nodes()).step_by(13) {
            let (owned, _) = g.node_attributes(v);
            if owned.is_empty() {
                continue;
            }
            let top: Vec<usize> = q
                .top_attributes(v, 8)
                .into_iter()
                .map(|s| s.index)
                .collect();
            trials += 1;
            if owned.iter().any(|&a| top.contains(&(a as usize))) {
                hits += 1;
            }
        }
        assert!(
            hits * 10 >= trials * 7,
            "owned attributes rarely in top-8: {hits}/{trials}"
        );
    }

    #[test]
    fn top_k_is_sorted_and_truncated() {
        let (_, emb) = fixture();
        let q = EmbeddingQuery::new(&emb);
        let top = q.top_attributes(0, 5);
        assert_eq!(top.len(), 5);
        for w in top.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn recommend_links_respects_exclusions() {
        let (g, emb) = fixture();
        let q = EmbeddingQuery::new(&emb);
        let src = 3;
        let (nbrs, _) = g.out_neighbors(src);
        let rec = q.recommend_links(src, 10, nbrs);
        for s in &rec {
            assert_ne!(s.index, src);
            assert!(
                !nbrs.contains(&(s.index as u32)),
                "recommended an existing neighbor"
            );
        }
        // Recommendations favor the same community (homophily signal).
        let src_label = g.labels_of(src)[0];
        let same = rec
            .iter()
            .filter(|s| g.labels_of(s.index).contains(&src_label))
            .count();
        assert!(
            same * 2 >= rec.len(),
            "only {same}/{} recommendations intra-community",
            rec.len()
        );
    }

    #[test]
    fn similar_nodes_prefer_same_community() {
        let (g, emb) = fixture();
        let q = EmbeddingQuery::new(&emb);
        let v = 10;
        let label = g.labels_of(v)[0];
        let sim = q.similar_nodes(v, 10);
        let same = sim
            .iter()
            .filter(|s| g.labels_of(s.index).contains(&label))
            .count();
        assert!(
            same * 2 >= sim.len(),
            "only {same}/{} similar nodes share the community",
            sim.len()
        );
    }

    #[test]
    fn recommend_matches_link_score() {
        let (g, emb) = fixture();
        let q = EmbeddingQuery::new(&emb);
        let gram = emb.link_gram();
        let rec = q.recommend_links(0, 3, &[]);
        for s in rec {
            let direct = emb.link_score_with(&gram, 0, s.index);
            assert!(
                (direct - s.score).abs() < 1e-10,
                "query score diverges from Eq. 22"
            );
        }
        let _ = g;
    }
}
