#![deny(missing_docs)]
//! The PANE algorithms — the paper's primary contribution.
//!
//! Pipeline (Algorithm 1 / Algorithm 5):
//!
//! ```text
//!   G ──► APMI / PAPMI ──► F', B' ──► (SM)GreedyInit ──► SVDCCD/PSVDCCD ──► X_f, X_b, Y
//!         (affinity approximation)     (SVD seeding)      (coordinate descent)
//! ```
//!
//! * [`apmi`](mod@apmi) — Algorithm 2: iterative approximation of the forward and
//!   backward affinity matrices with the Lemma 3.1 error guarantee, without
//!   sampling random walks;
//! * [`papmi`](mod@papmi) — Algorithm 6: the block-parallel version (Lemma 4.1: same
//!   output as [`apmi`](mod@apmi), verified bit-for-bit in tests);
//! * [`greedy_init`](mod@greedy_init) — Algorithms 3 and 7: SVD seeding of the embeddings
//!   (`X_f = UΣ, Y = V, X_b = B'·Y`) and its split–merge parallel variant;
//! * [`ccd`] — the cyclic-coordinate-descent sweeps of Algorithm 4 with
//!   dynamically maintained residuals `S_f = X_f·Yᵀ − F'`, `S_b = X_b·Yᵀ − B'`
//!   (Equations 13–20), shared by the serial and parallel drivers;
//! * [`pane`] — the user-facing [`Pane`] / [`PaneConfig`] /
//!   [`PaneEmbedding`] API tying everything together.

// Indexed loops in the numeric kernels are deliberate (they keep the
// zip-free auto-vectorizable shape the perf guide recommends).
#![allow(clippy::needless_range_loop)]
pub mod apmi;
pub mod ccd;
pub mod config;
pub mod greedy_init;
pub mod incremental;
pub mod pane;
pub mod papmi;
pub mod persist;
#[cfg(test)]
mod proptests;
pub mod query;

pub use apmi::{apmi, AffinityPair, ApmiInputs};
pub use ccd::{ccd_sweeps, objective, svdccd, CcdWorkspace};
pub use config::{InitStrategy, PaneConfig, PaneConfigBuilder, PaneError};
pub use greedy_init::{greedy_init, sm_greedy_init, InitOptions, InitState};
pub use incremental::{grow_embedding, reembed_warm};
pub use pane::{Pane, PaneEmbedding, PaneTimings};
pub use papmi::papmi;
pub use persist::{
    load_binary, load_columns, load_text, save_binary, save_columns, save_text, PersistError,
    BINARY_MAGIC,
};
pub use query::{EmbeddingQuery, QueryBackend, Scored};

/// Number of APMI/CCD iterations implied by an error threshold:
/// `t = ⌈log(ε)/log(1−α)⌉ − 1`, clamped to at least 1 (Algorithm 1, line 1).
pub fn iterations_for(epsilon: f64, alpha: f64) -> usize {
    assert!(
        epsilon > 0.0 && epsilon < 1.0,
        "epsilon must be in (0,1), got {epsilon}"
    );
    assert!(
        alpha > 0.0 && alpha < 1.0,
        "alpha must be in (0,1), got {alpha}"
    );
    let t = (epsilon.ln() / (1.0 - alpha).ln()).ceil() - 1.0;
    (t.max(1.0)) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_count_matches_paper_example() {
        // §5.6: with alpha = 0.5, eps from 0.001 to 0.25 corresponds to
        // t from 9 down to 1.
        assert_eq!(iterations_for(0.001, 0.5), 9);
        assert_eq!(iterations_for(0.25, 0.5), 1);
        // Default setting eps = 0.015, alpha = 0.5.
        let t = iterations_for(0.015, 0.5);
        assert!((5..=6).contains(&t), "t = {t}");
    }

    #[test]
    fn truncation_error_bound_holds() {
        // (1 - alpha)^{t+1} <= eps (Eq. 8 in the Lemma 3.1 proof).
        for &alpha in &[0.15, 0.5, 0.7] {
            for &eps in &[0.001, 0.015, 0.25] {
                let t = iterations_for(eps, alpha);
                let tail = (1.0 - alpha).powi(t as i32 + 1);
                assert!(
                    tail <= eps * (1.0 + 1e-9),
                    "alpha={alpha} eps={eps}: tail {tail}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn bad_epsilon_rejected() {
        iterations_for(1.5, 0.5);
    }
}
