//! Configuration and error types for the PANE pipeline.

use pane_graph::DanglingPolicy;

/// Errors surfaced by [`crate::Pane::embed`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PaneError {
    /// The graph has no nodes.
    EmptyGraph,
    /// The graph has no attributes (PANE embeds node–attribute affinity;
    /// for attribute-less graphs use a homogeneous embedding such as the
    /// NRP baseline).
    NoAttributes,
    /// Invalid configuration, with an explanation.
    BadConfig(String),
}

impl std::fmt::Display for PaneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PaneError::EmptyGraph => write!(f, "input graph has no nodes"),
            PaneError::NoAttributes => write!(f, "input graph has no attributes"),
            PaneError::BadConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for PaneError {}

/// Which embedding initializer [`crate::Pane::embed`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InitStrategy {
    /// One global RandSVD (Algorithm 3). `threads` only parallelizes the
    /// dense products, whose per-element summation order is fixed, so the
    /// embedding is **bit-identical for every thread count** — this is the
    /// default because it makes `seed` a complete determinism contract.
    #[default]
    Greedy,
    /// Split–merge per-block RandSVD (Algorithm 7). Scales the SVD itself
    /// but the output depends on the block count (= `threads`); choose this
    /// explicitly when the affinity matrix is too tall for one RandSVD.
    SplitMerge,
}

impl InitStrategy {
    /// The paper's own coupling (Algorithms 1 vs 5): split–merge init
    /// whenever more than one worker is used. Experiment binaries that
    /// reproduce the paper's thread ablations use this; the library default
    /// stays [`InitStrategy::Greedy`] so that `seed` alone determines the
    /// output bit-for-bit regardless of `threads`.
    pub fn for_threads(threads: usize) -> Self {
        if threads > 1 {
            InitStrategy::SplitMerge
        } else {
            InitStrategy::Greedy
        }
    }
}

/// Hyper-parameters of PANE (Table 1 / §5.1 of the paper).
#[derive(Debug, Clone)]
pub struct PaneConfig {
    /// Total space budget `k`: each node gets two `k/2`-dimensional vectors
    /// (forward + backward), each attribute one `k/2` vector. Must be even
    /// and ≥ 2. Paper default: 128.
    pub dimension: usize,
    /// Random-walk stopping probability `α ∈ (0,1)`. Paper default: 0.5.
    pub alpha: f64,
    /// Error threshold `ε ∈ (0,1)` controlling the iteration count
    /// `t = ⌈log ε / log(1−α)⌉ − 1`. Paper default: 0.015.
    pub error_threshold: f64,
    /// Number of worker threads `n_b`; 1 selects the single-threaded
    /// algorithms (Algorithms 1–4), >1 the parallel ones (Algorithms 5–8).
    /// With the default [`InitStrategy::Greedy`] the output is bit-identical
    /// for every value (Lemma 4.1 lifted to the whole pipeline).
    /// Paper default: 10.
    pub threads: usize,
    /// Initializer choice; see [`InitStrategy`].
    pub init: InitStrategy,
    /// Override for the number of CCD sweeps; `None` couples it to the APMI
    /// iteration count `t` as Algorithm 1 does. (Figures 7–8 vary this.)
    pub ccd_sweeps: Option<usize>,
    /// Treatment of out-degree-0 nodes in `P = D⁻¹A`.
    pub dangling: DanglingPolicy,
    /// Seed for the randomized SVD sketch.
    pub seed: u64,
    /// Oversampling columns for RandSVD.
    pub svd_oversample: usize,
    /// Power iterations for RandSVD; `None` couples it to `t`.
    pub svd_power_iters: Option<usize>,
}

impl Default for PaneConfig {
    fn default() -> Self {
        Self {
            dimension: 128,
            alpha: 0.5,
            error_threshold: 0.015,
            threads: 1,
            init: InitStrategy::Greedy,
            ccd_sweeps: None,
            dangling: DanglingPolicy::SelfLoop,
            seed: 0,
            svd_oversample: 8,
            svd_power_iters: None,
        }
    }
}

impl PaneConfig {
    /// Starts a builder with the paper's defaults.
    pub fn builder() -> PaneConfigBuilder {
        PaneConfigBuilder {
            cfg: Self::default(),
        }
    }

    /// Validates all invariants, returning a message on failure.
    pub fn validate(&self) -> Result<(), PaneError> {
        if self.dimension < 2 || !self.dimension.is_multiple_of(2) {
            return Err(PaneError::BadConfig(format!(
                "dimension must be an even number >= 2, got {}",
                self.dimension
            )));
        }
        if !(self.alpha > 0.0 && self.alpha < 1.0) {
            return Err(PaneError::BadConfig(format!(
                "alpha must be in (0,1), got {}",
                self.alpha
            )));
        }
        if !(self.error_threshold > 0.0 && self.error_threshold < 1.0) {
            return Err(PaneError::BadConfig(format!(
                "error_threshold must be in (0,1), got {}",
                self.error_threshold
            )));
        }
        if self.threads == 0 {
            return Err(PaneError::BadConfig("threads must be >= 1".into()));
        }
        Ok(())
    }

    /// Per-side embedding width `k/2`.
    pub fn half_dim(&self) -> usize {
        self.dimension / 2
    }

    /// The iteration count `t` implied by `ε` and `α`.
    pub fn iterations(&self) -> usize {
        crate::iterations_for(self.error_threshold, self.alpha)
    }

    /// CCD sweep count: the override, or `t`.
    pub fn sweeps(&self) -> usize {
        self.ccd_sweeps.unwrap_or_else(|| self.iterations())
    }

    /// RandSVD power iterations: the override, or `t`.
    pub fn power_iters(&self) -> usize {
        self.svd_power_iters.unwrap_or_else(|| self.iterations())
    }
}

/// Fluent builder for [`PaneConfig`].
#[derive(Debug, Clone)]
pub struct PaneConfigBuilder {
    cfg: PaneConfig,
}

impl PaneConfigBuilder {
    /// Sets the total space budget `k` (even, ≥ 2).
    pub fn dimension(mut self, k: usize) -> Self {
        self.cfg.dimension = k;
        self
    }

    /// Sets the stopping probability `α`.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.cfg.alpha = alpha;
        self
    }

    /// Sets the error threshold `ε`.
    pub fn error_threshold(mut self, eps: f64) -> Self {
        self.cfg.error_threshold = eps;
        self
    }

    /// Sets the worker-thread count `n_b`.
    pub fn threads(mut self, nb: usize) -> Self {
        self.cfg.threads = nb;
        self
    }

    /// Selects the initializer (default: [`InitStrategy::Greedy`]).
    pub fn init_strategy(mut self, init: InitStrategy) -> Self {
        self.cfg.init = init;
        self
    }

    /// Overrides the CCD sweep count.
    pub fn ccd_sweeps(mut self, sweeps: usize) -> Self {
        self.cfg.ccd_sweeps = Some(sweeps);
        self
    }

    /// Sets the dangling-node policy.
    pub fn dangling(mut self, policy: DanglingPolicy) -> Self {
        self.cfg.dangling = policy;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Sets RandSVD oversampling.
    pub fn svd_oversample(mut self, cols: usize) -> Self {
        self.cfg.svd_oversample = cols;
        self
    }

    /// Overrides the RandSVD power-iteration count.
    pub fn svd_power_iters(mut self, iters: usize) -> Self {
        self.cfg.svd_power_iters = Some(iters);
        self
    }

    /// Finalizes, panicking on invalid values (use
    /// [`try_build`](Self::try_build) for fallible construction).
    pub fn build(self) -> PaneConfig {
        self.try_build().expect("invalid PaneConfig")
    }

    /// Finalizes, returning an error on invalid values.
    pub fn try_build(self) -> Result<PaneConfig, PaneError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = PaneConfig::default();
        assert_eq!(c.dimension, 128);
        assert_eq!(c.alpha, 0.5);
        assert_eq!(c.error_threshold, 0.015);
        assert!(c.validate().is_ok());
        assert_eq!(c.half_dim(), 64);
    }

    #[test]
    fn builder_roundtrip() {
        let c = PaneConfig::builder()
            .dimension(32)
            .alpha(0.3)
            .error_threshold(0.05)
            .threads(4)
            .ccd_sweeps(7)
            .seed(9)
            .build();
        assert_eq!(c.dimension, 32);
        assert_eq!(c.sweeps(), 7);
        assert_eq!(c.threads, 4);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(PaneConfig::builder().dimension(3).try_build().is_err());
        assert!(PaneConfig::builder().dimension(0).try_build().is_err());
        assert!(PaneConfig::builder().alpha(1.0).try_build().is_err());
        assert!(PaneConfig::builder()
            .error_threshold(0.0)
            .try_build()
            .is_err());
        assert!(PaneConfig::builder().threads(0).try_build().is_err());
    }

    #[test]
    fn sweeps_default_to_iterations() {
        let c = PaneConfig::builder()
            .alpha(0.5)
            .error_threshold(0.25)
            .build();
        assert_eq!(c.sweeps(), c.iterations());
        assert_eq!(c.sweeps(), 1);
    }
}
