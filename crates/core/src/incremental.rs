//! Incremental re-embedding for evolving graphs (the paper's §7 future
//! work: "time-varying graphs where attributes and node connections change
//! over time").
//!
//! When a graph receives a batch of edge/attribute updates, the affinity
//! matrices change smoothly (APMI is a contraction in the updates), so the
//! previous embeddings are an excellent warm start: recompute `F'`, `B'`
//! on the updated graph, rebuild the residuals around the *old* `X_f`,
//! `X_b`, `Y`, and run a few CCD sweeps — skipping the RandSVD
//! initialization entirely.
//!
//! The ablation benchmark (`bench_ablations`, group `init_ablation`) and
//! the tests below quantify the trade: warm restarts reach the cold-start
//! objective with 1–2 sweeps instead of init + t sweeps.

use crate::apmi::ApmiInputs;
use crate::ccd::{ccd_sweeps, objective};
use crate::config::{PaneConfig, PaneError};
use crate::greedy_init::InitState;
use crate::pane::{PaneEmbedding, PaneTimings};
use crate::papmi::papmi;
use pane_graph::AttributedGraph;
use std::time::Instant;

/// Warm-start re-embedding of `graph` from a previous embedding.
///
/// Requirements: the node count, attribute count and `k` must match the
/// previous embedding (node additions are supported by passing `grow_to`
/// rows of zeros — see [`grow_embedding`]).
pub fn reembed_warm(
    config: &PaneConfig,
    graph: &AttributedGraph,
    previous: &PaneEmbedding,
    sweeps: usize,
) -> Result<PaneEmbedding, PaneError> {
    config.validate()?;
    if graph.num_nodes() == 0 {
        return Err(PaneError::EmptyGraph);
    }
    if graph.num_attributes() == 0 || graph.num_attribute_entries() == 0 {
        return Err(PaneError::NoAttributes);
    }
    let k2 = config.half_dim();
    if previous.forward.shape() != (graph.num_nodes(), k2)
        || previous.attribute.shape() != (graph.num_attributes(), k2)
    {
        return Err(PaneError::BadConfig(format!(
            "previous embedding shape {:?}/{:?} does not match graph ({} nodes, {} attrs) at k/2 = {}",
            previous.forward.shape(),
            previous.attribute.shape(),
            graph.num_nodes(),
            graph.num_attributes(),
            k2
        )));
    }

    let nb = config.threads;
    let t0 = Instant::now();
    let p = graph.random_walk_matrix(config.dangling);
    let pt = p.transpose();
    let rr = graph.attr_row_normalized();
    let rc = graph.attr_col_normalized();
    let aff = papmi(
        &ApmiInputs {
            p: &p,
            pt: &pt,
            rr: &rr,
            rc: &rc,
            alpha: config.alpha,
            t: config.iterations(),
        },
        nb,
    );
    let affinity_secs = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let xf = previous.forward.clone();
    let xb = previous.backward.clone();
    let y = previous.attribute.clone();
    let mut sf = xf.matmul_transb_par(&y, nb);
    sf.axpy_inplace(-1.0, &aff.forward);
    let mut sb = xb.matmul_transb_par(&y, nb);
    sb.axpy_inplace(-1.0, &aff.backward);
    let mut state = InitState { xf, xb, y, sf, sb };
    let init_secs = t1.elapsed().as_secs_f64();

    let t2 = Instant::now();
    ccd_sweeps(&mut state, sweeps, nb);
    let ccd_secs = t2.elapsed().as_secs_f64();

    Ok(PaneEmbedding {
        objective: objective(&state),
        forward: state.xf,
        backward: state.xb,
        attribute: state.y,
        timings: PaneTimings {
            affinity_secs,
            init_secs,
            ccd_secs,
        },
    })
}

/// Extends an embedding with rows for newly added nodes (zero-initialized —
/// the next warm sweep assigns them meaningful values from their residuals).
pub fn grow_embedding(previous: &PaneEmbedding, new_nodes: usize) -> PaneEmbedding {
    let k2 = previous.forward.cols();
    let grow = |m: &pane_linalg::DenseMatrix| {
        let mut out = pane_linalg::DenseMatrix::zeros(m.rows() + new_nodes, k2);
        for i in 0..m.rows() {
            out.row_mut(i).copy_from_slice(m.row(i));
        }
        out
    };
    PaneEmbedding {
        forward: grow(&previous.forward),
        backward: grow(&previous.backward),
        attribute: previous.attribute.clone(),
        timings: PaneTimings::default(),
        objective: f64::NAN,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pane;
    use pane_graph::gen::{generate_sbm, SbmConfig};
    use pane_graph::GraphBuilder;

    fn base_graph(seed: u64) -> AttributedGraph {
        generate_sbm(&SbmConfig {
            nodes: 250,
            communities: 4,
            avg_out_degree: 6.0,
            attributes: 24,
            attrs_per_node: 4.0,
            seed,
            ..Default::default()
        })
    }

    /// Perturbs the graph: rewires ~2% of the edges.
    fn perturb(g: &AttributedGraph, seed: u64) -> AttributedGraph {
        let n = g.num_nodes();
        let mut b = GraphBuilder::new(n, g.num_attributes());
        let mut state = seed | 1;
        let mut rand = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for (i, j, _) in g.adjacency().iter() {
            if rand() % 50 == 0 {
                // Rewire to a random target.
                b.add_edge(i, rand() % n);
            } else {
                b.add_edge(i, j);
            }
        }
        for (v, r, w) in g.attributes().iter() {
            b.add_attribute(v, r, w);
        }
        for v in 0..n {
            for &l in g.labels_of(v) {
                b.add_label(v, l as usize);
            }
        }
        b.build()
    }

    fn cfg() -> PaneConfig {
        PaneConfig::builder().dimension(16).seed(4).build()
    }

    #[test]
    fn warm_restart_matches_cold_quality_with_fewer_sweeps() {
        let g0 = base_graph(1);
        let g1 = perturb(&g0, 99);
        let cold_full = Pane::new(cfg()).embed(&g1).unwrap();

        let old = Pane::new(cfg()).embed(&g0).unwrap();
        let warm = reembed_warm(&cfg(), &g1, &old, 2).unwrap();

        // Warm with 2 sweeps should land within 10% of the full cold run.
        assert!(
            warm.objective <= cold_full.objective * 1.10,
            "warm {} vs cold {}",
            warm.objective,
            cold_full.objective
        );
    }

    #[test]
    fn warm_restart_beats_cold_at_equal_sweeps() {
        let g0 = base_graph(2);
        let g1 = perturb(&g0, 7);
        let old = Pane::new(cfg()).embed(&g0).unwrap();

        let warm = reembed_warm(&cfg(), &g1, &old, 1).unwrap();
        // Cold with 1 sweep and *random* init (the fair comparison for
        // skipping the SVD): use PANE-R machinery indirectly by comparing
        // against the warm start's own starting objective after the sweep.
        let mut cfg1 = cfg();
        cfg1.ccd_sweeps = Some(1);
        let cold1 = Pane::new(cfg1).embed(&g1).unwrap();
        // Warm(1 sweep) should be at least comparable to cold greedy-init(1
        // sweep) — it skips the RandSVD entirely.
        assert!(
            warm.objective <= cold1.objective * 1.15,
            "warm {} much worse than cold {}",
            warm.objective,
            cold1.objective
        );
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let g0 = base_graph(3);
        let old = Pane::new(cfg()).embed(&g0).unwrap();
        let smaller = generate_sbm(&SbmConfig {
            nodes: 100,
            attributes: 24,
            seed: 5,
            ..Default::default()
        });
        match reembed_warm(&cfg(), &smaller, &old, 1) {
            Err(PaneError::BadConfig(m)) => assert!(m.contains("shape")),
            other => panic!("expected shape error, got {other:?}"),
        }
    }

    #[test]
    fn grow_embedding_preserves_old_rows() {
        let g0 = base_graph(6);
        let old = Pane::new(cfg()).embed(&g0).unwrap();
        let grown = grow_embedding(&old, 10);
        assert_eq!(grown.forward.rows(), old.forward.rows() + 10);
        assert_eq!(grown.forward.row(0), old.forward.row(0));
        assert!(grown
            .forward
            .row(old.forward.rows())
            .iter()
            .all(|&v| v == 0.0));
    }

    #[test]
    fn grown_embedding_supports_warm_restart_with_new_nodes() {
        let g0 = base_graph(8);
        let old = Pane::new(cfg()).embed(&g0).unwrap();
        // Add 10 nodes wired into community 0 with its attributes.
        let n = g0.num_nodes();
        let mut b = GraphBuilder::new(n + 10, g0.num_attributes());
        for (i, j, _) in g0.adjacency().iter() {
            b.add_edge(i, j);
        }
        for (v, r, w) in g0.attributes().iter() {
            b.add_attribute(v, r, w);
        }
        for v in 0..n {
            for &l in g0.labels_of(v) {
                b.add_label(v, l as usize);
            }
        }
        for extra in 0..10 {
            let v = n + extra;
            b.add_edge(v, extra * 3 % n);
            b.add_edge(extra * 5 % n, v);
            b.add_attribute(v, extra % g0.num_attributes(), 1.0);
            b.add_label(v, 0);
        }
        let g1 = b.build();
        let grown = grow_embedding(&old, 10);
        let warm = reembed_warm(&cfg(), &g1, &grown, 3).unwrap();
        assert_eq!(warm.forward.rows(), n + 10);
        // New nodes got non-trivial embeddings from the sweeps.
        let new_norm: f64 = (n..n + 10)
            .map(|v| pane_linalg::vecops::norm2(warm.forward.row(v)))
            .sum();
        assert!(new_norm > 1e-6, "new nodes still zero after warm sweeps");
    }
}
