//! Embedding persistence: save/load `X_f`, `X_b`, `Y` in a text and two
//! binary formats.
//!
//! The current binary format is the shared `PANECOL1` column container
//! (`pane-format`): one section per matrix, 64-byte aligned and
//! checksummed, loaded with a single bulk read and three `memcpy`s —
//! see [`save_columns`] / [`load_columns`]. The legacy `PANEEMB1`
//! layout (`magic ‖ n ‖ d ‖ k/2 ‖ X_f ‖ X_b ‖ Y`, decoded value by
//! value) is still readable: [`load_binary`] sniffs the magic and
//! dispatches, so stores written before the columnar migration keep
//! opening. The text format is line-oriented (`node: values…`) for
//! inspection and interop with the Python tooling the original
//! evaluation used.

use crate::pane::{PaneEmbedding, PaneTimings};
use pane_format::{section, Artifact, ColumnData, ColumnSpec, FormatError};
use pane_linalg::DenseMatrix;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic bytes of the legacy binary format (version 1).
pub const BINARY_MAGIC: &[u8; 8] = b"PANEEMB1";

/// Errors from loading an embedding.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a recognizable embedding dump.
    Format(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "I/O error: {e}"),
            PersistError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<FormatError> for PersistError {
    fn from(e: FormatError) -> Self {
        match e {
            FormatError::Io(e) => PersistError::Io(e),
            FormatError::Format(m) => PersistError::Format(m),
        }
    }
}

/// Writes the embedding as a `PANECOL1` column container (the current
/// on-disk format: one checksummed section per matrix).
pub fn save_columns(emb: &PaneEmbedding, path: &Path) -> Result<(), PersistError> {
    let (n, k2) = emb.forward.shape();
    let d = emb.attribute.rows();
    pane_format::write_columns(
        path,
        Artifact::Embedding,
        0,
        &[
            ColumnSpec {
                id: section::EMB_FORWARD,
                rows: n,
                cols: k2,
                data: ColumnData::F64(emb.forward.data()),
            },
            ColumnSpec {
                id: section::EMB_BACKWARD,
                rows: n,
                cols: k2,
                data: ColumnData::F64(emb.backward.data()),
            },
            ColumnSpec {
                id: section::EMB_ATTRIBUTE,
                rows: d,
                cols: k2,
                data: ColumnData::F64(emb.attribute.data()),
            },
        ],
    )?;
    Ok(())
}

/// Reads an embedding written by [`save_columns`] via the streaming
/// section loader: after header + table validation, each matrix's
/// payload is read once, directly into the `Vec<f64>` it will own, and
/// checksummed there — no per-value decode loop and no intermediate
/// whole-file buffer to copy out of.
pub fn load_columns(path: &Path) -> Result<PaneEmbedding, PersistError> {
    let (artifact, _meta, sections) = pane_format::read_f64_sections(
        path,
        &[
            section::EMB_FORWARD,
            section::EMB_BACKWARD,
            section::EMB_ATTRIBUTE,
        ],
    )?;
    if artifact != Artifact::Embedding {
        return Err(PersistError::Format(format!(
            "{artifact:?} artifact where an embedding was expected"
        )));
    }
    let mut it = sections.into_iter();
    let mut matrix = || -> DenseMatrix {
        let s = it.next().expect("three sections were requested");
        DenseMatrix::from_vec(s.rows, s.cols, s.values)
    };
    let forward = matrix();
    let backward = matrix();
    let attribute = matrix();
    if forward.shape() != backward.shape() || forward.cols() != attribute.cols() {
        return Err(PersistError::Format(format!(
            "inconsistent embedding sections: X_f {:?}, X_b {:?}, Y {:?}",
            forward.shape(),
            backward.shape(),
            attribute.shape()
        )));
    }
    Ok(PaneEmbedding {
        forward,
        backward,
        attribute,
        timings: PaneTimings::default(),
        objective: f64::NAN, // not stored; recompute against F'/B' if needed
    })
}

/// Writes the embedding in the legacy `PANEEMB1` binary format.
///
/// Kept as a writer so compatibility fixtures (tests, the CI
/// migrate-then-serve smoke) can produce pre-`PANECOL1` stores; new
/// artifacts use [`save_columns`].
pub fn save_binary(emb: &PaneEmbedding, path: &Path) -> Result<(), PersistError> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(BINARY_MAGIC)?;
    let (n, k2) = emb.forward.shape();
    let d = emb.attribute.rows();
    for dim in [n as u64, d as u64, k2 as u64] {
        w.write_all(&dim.to_le_bytes())?;
    }
    for m in [&emb.forward, &emb.backward, &emb.attribute] {
        for &v in m.data() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Reads a binary embedding, whichever container it is in: sniffs the
/// magic and dispatches to the `PANECOL1` bulk path ([`load_columns`])
/// or the legacy `PANEEMB1` per-value decode loop. Every pre-migration
/// store keeps opening through this one entry point.
pub fn load_binary(path: &Path) -> Result<PaneEmbedding, PersistError> {
    if pane_format::is_columnar(path)? {
        return load_columns(path);
    }
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != BINARY_MAGIC {
        return Err(PersistError::Format(format!(
            "bad magic {:?} (expected {:?} or {:?})",
            magic,
            BINARY_MAGIC,
            pane_format::MAGIC
        )));
    }
    let mut dims = [0u64; 3];
    for d in dims.iter_mut() {
        let mut buf = [0u8; 8];
        r.read_exact(&mut buf)?;
        *d = u64::from_le_bytes(buf);
    }
    let (n, d, k2) = (dims[0] as usize, dims[1] as usize, dims[2] as usize);
    // Sanity cap: refuse absurd headers instead of OOM-ing on corruption.
    let total = n
        .checked_mul(k2)
        .and_then(|x| x.checked_mul(2))
        .and_then(|x| x.checked_add(d.checked_mul(k2)?))
        .ok_or_else(|| PersistError::Format("dimension overflow".into()))?;
    let mut read_matrix = |rows: usize, cols: usize| -> Result<DenseMatrix, PersistError> {
        let mut data = vec![0.0f64; rows * cols];
        for v in data.iter_mut() {
            let mut buf = [0u8; 8];
            r.read_exact(&mut buf)?;
            *v = f64::from_le_bytes(buf);
        }
        Ok(DenseMatrix::from_vec(rows, cols, data))
    };
    let forward = read_matrix(n, k2)?;
    let backward = read_matrix(n, k2)?;
    let attribute = read_matrix(d, k2)?;
    let _ = total;
    Ok(PaneEmbedding {
        forward,
        backward,
        attribute,
        timings: PaneTimings::default(),
        objective: f64::NAN, // not stored; recompute against F'/B' if needed
    })
}

/// Writes the embedding in the text format (three sections).
pub fn save_text(emb: &PaneEmbedding, path: &Path) -> Result<(), PersistError> {
    let mut w = BufWriter::new(File::create(path)?);
    let (n, k2) = emb.forward.shape();
    let d = emb.attribute.rows();
    writeln!(w, "# PANE embedding v1")?;
    writeln!(w, "{n} {d} {k2}")?;
    for (section, m) in [
        ("forward", &emb.forward),
        ("backward", &emb.backward),
        ("attribute", &emb.attribute),
    ] {
        writeln!(w, "# {section}")?;
        for i in 0..m.rows() {
            let row: Vec<String> = m.row(i).iter().map(|v| format!("{v:.17e}")).collect();
            writeln!(w, "{i} {}", row.join(" "))?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Reads an embedding written by [`save_text`].
pub fn load_text(path: &Path) -> Result<PaneEmbedding, PersistError> {
    let mut lines = BufReader::new(File::open(path)?).lines();
    let next_data_line = |lines: &mut dyn Iterator<Item = io::Result<String>>| -> Result<Option<String>, PersistError> {
        for line in lines {
            let line = line?;
            if !line.trim_start().starts_with('#') && !line.trim().is_empty() {
                return Ok(Some(line));
            }
        }
        Ok(None)
    };
    let header =
        next_data_line(&mut lines)?.ok_or_else(|| PersistError::Format("empty file".into()))?;
    let dims: Vec<usize> = header
        .split_whitespace()
        .map(|t| {
            t.parse()
                .map_err(|e| PersistError::Format(format!("bad header: {e}")))
        })
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(PersistError::Format(format!(
            "header must be 'n d k2', got '{header}'"
        )));
    }
    let (n, d, k2) = (dims[0], dims[1], dims[2]);
    let mut read_matrix = |rows: usize| -> Result<DenseMatrix, PersistError> {
        let mut m = DenseMatrix::zeros(rows, k2);
        for _ in 0..rows {
            let line = next_data_line(&mut lines)?
                .ok_or_else(|| PersistError::Format("unexpected end of file".into()))?;
            let mut toks = line.split_whitespace();
            let idx: usize = toks
                .next()
                .ok_or_else(|| PersistError::Format("missing row index".into()))?
                .parse()
                .map_err(|e| PersistError::Format(format!("bad row index: {e}")))?;
            if idx >= rows {
                return Err(PersistError::Format(format!(
                    "row index {idx} out of range {rows}"
                )));
            }
            let row = m.row_mut(idx);
            for (j, slot) in row.iter_mut().enumerate() {
                let tok = toks
                    .next()
                    .ok_or_else(|| PersistError::Format(format!("row {idx}: missing value {j}")))?;
                *slot = tok
                    .parse()
                    .map_err(|e| PersistError::Format(format!("row {idx}: {e}")))?;
            }
        }
        Ok(m)
    };
    let forward = read_matrix(n)?;
    let backward = read_matrix(n)?;
    let attribute = read_matrix(d)?;
    Ok(PaneEmbedding {
        forward,
        backward,
        attribute,
        timings: PaneTimings::default(),
        objective: f64::NAN,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Pane, PaneConfig};
    use pane_graph::toy::figure1_graph;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("pane_persist_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn example_embedding() -> PaneEmbedding {
        let g = figure1_graph();
        let cfg = PaneConfig::builder()
            .dimension(4)
            .alpha(0.15)
            .seed(3)
            .build();
        Pane::new(cfg).embed(&g).unwrap()
    }

    #[test]
    fn binary_roundtrip_is_bit_exact() {
        let emb = example_embedding();
        let p = tmp("emb.bin");
        save_binary(&emb, &p).unwrap();
        let back = load_binary(&p).unwrap();
        assert_eq!(emb.forward.data(), back.forward.data());
        assert_eq!(emb.backward.data(), back.backward.data());
        assert_eq!(emb.attribute.data(), back.attribute.data());
    }

    #[test]
    fn text_roundtrip_is_bit_exact() {
        // %.17e prints f64 losslessly.
        let emb = example_embedding();
        let p = tmp("emb.txt");
        save_text(&emb, &p).unwrap();
        let back = load_text(&p).unwrap();
        assert_eq!(emb.forward.data(), back.forward.data());
        assert_eq!(emb.attribute.data(), back.attribute.data());
    }

    #[test]
    fn columnar_roundtrip_is_bit_exact() {
        let emb = example_embedding();
        let p = tmp("emb.col");
        save_columns(&emb, &p).unwrap();
        let back = load_columns(&p).unwrap();
        assert_eq!(emb.forward.data(), back.forward.data());
        assert_eq!(emb.backward.data(), back.backward.data());
        assert_eq!(emb.attribute.data(), back.attribute.data());
    }

    #[test]
    fn load_binary_sniffs_both_containers() {
        let emb = example_embedding();
        let legacy = tmp("sniff_legacy.bin");
        let columnar = tmp("sniff_columnar.bin");
        save_binary(&emb, &legacy).unwrap();
        save_columns(&emb, &columnar).unwrap();
        let a = load_binary(&legacy).unwrap();
        let b = load_binary(&columnar).unwrap();
        assert_eq!(a.forward.data(), b.forward.data());
        assert_eq!(a.backward.data(), b.backward.data());
        assert_eq!(a.attribute.data(), b.attribute.data());
    }

    #[test]
    fn columnar_index_artifact_is_not_an_embedding() {
        let p = tmp("wrong_artifact.col");
        let v = [0.0f64; 4];
        pane_format::write_columns(
            &p,
            pane_format::Artifact::Index,
            0,
            &[pane_format::ColumnSpec {
                id: pane_format::section::INDEX_VECTORS,
                rows: 2,
                cols: 2,
                data: pane_format::ColumnData::F64(&v),
            }],
        )
        .unwrap();
        assert!(matches!(load_columns(&p), Err(PersistError::Format(_))));
        assert!(matches!(load_binary(&p), Err(PersistError::Format(_))));
    }

    #[test]
    fn bad_magic_rejected() {
        let p = tmp("bad.bin");
        std::fs::write(&p, b"NOTPANE!").unwrap();
        match load_binary(&p) {
            Err(PersistError::Format(m)) => assert!(m.contains("magic")),
            other => panic!("expected format error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_binary_rejected() {
        let emb = example_embedding();
        let p = tmp("trunc.bin");
        save_binary(&emb, &p).unwrap();
        let bytes = std::fs::read(&p).unwrap();
        std::fs::write(&p, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(load_binary(&p), Err(PersistError::Io(_))));
    }

    #[test]
    fn malformed_text_rejected() {
        let p = tmp("bad.txt");
        std::fs::write(&p, "# PANE embedding v1\n2 2\n").unwrap();
        assert!(matches!(load_text(&p), Err(PersistError::Format(_))));
        std::fs::write(&p, "# PANE embedding v1\n1 1 2\n0 1.0 not_a_number\n").unwrap();
        assert!(matches!(load_text(&p), Err(PersistError::Format(_))));
    }
}
