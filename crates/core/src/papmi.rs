//! PAPMI — the block-parallel affinity approximation (Algorithm 6).
//!
//! The dense panels `P_f`, `P_b` are split into `nb` **attribute column
//! blocks**; worker `i` owns `P_{f,i}^{(0)} = R_r[:, R_i]` and iterates it
//! independently (the sparse operator `P` is shared read-only). The main
//! thread then concatenates the panels, computes the global normalizers and
//! applies the SPMI transform in **node row blocks**.
//!
//! Lemma 4.1: PAPMI returns *exactly* the same `F'`, `B'` as APMI — not just
//! up to rounding. That holds here because the per-entry arithmetic
//! (accumulation order over a node's neighbors in CSR order, normalization,
//! `ln`) is identical in the blocked and unblocked paths; the tests assert
//! bit-equality.

use crate::apmi::{finish, propagate, AffinityPair, ApmiInputs};

/// Algorithm 6. With `nb == 1` this degenerates to [`crate::apmi::apmi`].
pub fn papmi(inputs: &ApmiInputs<'_>, nb: usize) -> AffinityPair {
    let nb = nb.max(1);
    if nb == 1 {
        return crate::apmi::apmi(inputs);
    }
    let (pf, pb) = propagate(inputs, Some(nb));
    finish(pf, pb, Some(nb))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apmi::apmi;
    use pane_graph::gen::{generate_sbm, SbmConfig};
    use pane_graph::{toy, DanglingPolicy};
    use pane_sparse::CsrMatrix;

    fn inputs_for(
        g: &pane_graph::AttributedGraph,
        alpha: f64,
        t: usize,
    ) -> (CsrMatrix, CsrMatrix, CsrMatrix, CsrMatrix, f64, usize) {
        let p = g.random_walk_matrix(DanglingPolicy::SelfLoop);
        let pt = p.transpose();
        let rr = g.attr_row_normalized();
        let rc = g.attr_col_normalized();
        (p, pt, rr, rc, alpha, t)
    }

    /// Lemma 4.1: PAPMI output is bit-identical to APMI for any nb.
    #[test]
    fn lemma_4_1_exact_equality_toy() {
        let g = toy::figure1_graph();
        let (p, pt, rr, rc, alpha, t) = inputs_for(&g, 0.15, 8);
        let inputs = ApmiInputs {
            p: &p,
            pt: &pt,
            rr: &rr,
            rc: &rc,
            alpha,
            t,
        };
        let serial = apmi(&inputs);
        for nb in [2, 3, 5, 7] {
            let par = papmi(&inputs, nb);
            assert_eq!(
                serial.forward.data(),
                par.forward.data(),
                "nb={nb} forward differs"
            );
            assert_eq!(
                serial.backward.data(),
                par.backward.data(),
                "nb={nb} backward differs"
            );
        }
    }

    #[test]
    fn lemma_4_1_exact_equality_sbm() {
        let g = generate_sbm(&SbmConfig {
            nodes: 300,
            communities: 3,
            avg_out_degree: 5.0,
            attributes: 24,
            attrs_per_node: 4.0,
            seed: 5,
            ..Default::default()
        });
        let (p, pt, rr, rc, alpha, t) = inputs_for(&g, 0.5, 5);
        let inputs = ApmiInputs {
            p: &p,
            pt: &pt,
            rr: &rr,
            rc: &rc,
            alpha,
            t,
        };
        let serial = apmi(&inputs);
        for nb in [2, 4, 10] {
            let par = papmi(&inputs, nb);
            assert_eq!(serial.forward.data(), par.forward.data(), "nb={nb}");
            assert_eq!(serial.backward.data(), par.backward.data(), "nb={nb}");
        }
    }

    #[test]
    fn more_threads_than_attributes() {
        let g = toy::figure1_graph(); // d = 3
        let (p, pt, rr, rc, alpha, t) = inputs_for(&g, 0.15, 4);
        let inputs = ApmiInputs {
            p: &p,
            pt: &pt,
            rr: &rr,
            rc: &rc,
            alpha,
            t,
        };
        let serial = apmi(&inputs);
        let par = papmi(&inputs, 16);
        assert_eq!(serial.forward.data(), par.forward.data());
    }

    #[test]
    fn nb_one_is_serial_path() {
        let g = toy::figure1_graph();
        let (p, pt, rr, rc, alpha, t) = inputs_for(&g, 0.15, 4);
        let inputs = ApmiInputs {
            p: &p,
            pt: &pt,
            rr: &rr,
            rc: &rc,
            alpha,
            t,
        };
        let a = apmi(&inputs);
        let b = papmi(&inputs, 1);
        assert_eq!(a.forward.data(), b.forward.data());
    }
}
