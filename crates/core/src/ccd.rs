//! Cyclic coordinate descent with dynamically maintained residuals
//! (Algorithm 4: SVDCCD; Algorithm 8: PSVDCCD).
//!
//! Each sweep has two phases:
//!
//! * **X phase** (`Y` fixed): for every node `v` and coordinate `l`,
//!   `μ_f(v,l) = S_f[v]·Y[:,l] / ‖Y[:,l]‖²`, then `X_f[v,l] −= μ_f` and the
//!   rank-1 residual update `S_f[v] −= μ_f·Y[:,l]ᵀ` (Eqs. 13, 16, 18);
//!   symmetrically for `X_b`/`S_b`.
//! * **Y phase** (`X_f`, `X_b` fixed): for every attribute `r` and `l`,
//!   `μ_y(r,l) = (X_f[:,l]·S_f[:,r] + X_b[:,l]·S_b[:,r]) /
//!   (‖X_f[:,l]‖² + ‖X_b[:,l]‖²)`, then `Y[r,l] −= μ_y` and column updates
//!   of both residuals (Eqs. 15, 17, 20).
//!
//! Implementation notes (beyond the paper's pseudocode):
//!
//! * each coordinate update is the **exact minimizer** of the objective in
//!   that coordinate, so the objective `‖S_f‖² + ‖S_b‖²` is monotonically
//!   non-increasing — property-tested;
//! * the X phase touches only row `v` of `X_*`/`S_*` and the Y phase only
//!   row `r` of `Y` and column `r` of `S_*`; updates are therefore
//!   independent across nodes / across attributes, which is why PSVDCCD
//!   (node blocks for X, attribute blocks for Y) produces **bit-identical**
//!   results to the serial sweep — also tested;
//! * for cache-friendliness the fixed factor is used through a transposed
//!   copy (`Yᵀ` in the X phase, `X_fᵀ`/`X_bᵀ` in the Y phase), making every
//!   inner loop a contiguous dot/axpy, and the Y phase gathers each residual
//!   column into a dense buffer once instead of striding `k` times;
//! * a zero denominator (an all-zero coordinate column) skips the update
//!   (`μ = 0`), which is the correct minimizer of a constant function.

use crate::greedy_init::InitState;
use pane_linalg::{vecops, DenseMatrix};
use pane_parallel::{even_ranges_nonempty, ColumnBlocksMut};

/// Current objective value `O = ‖S_f‖² + ‖S_b‖²` (Eq. 4 evaluated via the
/// maintained residuals).
pub fn objective(state: &InitState) -> f64 {
    state.sf.frob_norm_sq() + state.sb.frob_norm_sq()
}

/// Runs `sweeps` full CCD sweeps over `state`, using `nb` worker threads
/// (`nb = 1` reproduces Algorithm 4 exactly; `nb > 1` is Algorithm 8's
/// parallel schedule, which returns the same bits).
pub fn ccd_sweeps(state: &mut InitState, sweeps: usize, nb: usize) {
    let n = state.xf.rows();
    let d = state.y.rows();
    let k2 = state.xf.cols();
    assert_eq!(state.xb.shape(), (n, k2));
    assert_eq!(state.y.cols(), k2);
    assert_eq!(state.sf.shape(), (n, d));
    assert_eq!(state.sb.shape(), (n, d));
    if n == 0 || d == 0 || k2 == 0 {
        return;
    }

    for _ in 0..sweeps {
        x_phase(state, nb);
        y_phase(state, nb);
    }
}

/// Lines 3–9 of Algorithm 4 / lines 3–10 of Algorithm 8.
fn x_phase(state: &mut InitState, nb: usize) {
    let n = state.xf.rows();
    let d = state.sf.cols();
    let k2 = state.xf.cols();
    // Y is fixed for the whole phase: transpose once, precompute ‖Y[:,l]‖².
    let yt = state.y.transpose(); // k/2 × d, row l = Y[:,l]
    let ynorm: Vec<f64> = (0..k2).map(|l| vecops::norm2_sq(yt.row(l))).collect();

    let ranges = even_ranges_nonempty(n, nb);
    let update_rows = |range: std::ops::Range<usize>,
                       xf: &mut [f64],
                       xb: &mut [f64],
                       sf: &mut [f64],
                       sb: &mut [f64]| {
        for bi in 0..(range.end - range.start) {
            let xf_row = &mut xf[bi * k2..(bi + 1) * k2];
            let xb_row = &mut xb[bi * k2..(bi + 1) * k2];
            let sf_row = &mut sf[bi * d..(bi + 1) * d];
            let sb_row = &mut sb[bi * d..(bi + 1) * d];
            for l in 0..k2 {
                if ynorm[l] <= 0.0 {
                    continue;
                }
                let ytl = yt.row(l);
                let mu_f = vecops::dot(sf_row, ytl) / ynorm[l];
                xf_row[l] -= mu_f;
                vecops::axpy(-mu_f, ytl, sf_row); // Eq. 18
                let mu_b = vecops::dot(sb_row, ytl) / ynorm[l];
                xb_row[l] -= mu_b;
                vecops::axpy(-mu_b, ytl, sb_row); // Eq. 19
            }
        }
    };

    if ranges.len() <= 1 {
        update_rows(
            0..n,
            state.xf.data_mut(),
            state.xb.data_mut(),
            state.sf.data_mut(),
            state.sb.data_mut(),
        );
        return;
    }
    std::thread::scope(|s| {
        let mut xf_rest = state.xf.data_mut();
        let mut xb_rest = state.xb.data_mut();
        let mut sf_rest = state.sf.data_mut();
        let mut sb_rest = state.sb.data_mut();
        for r in &ranges {
            let rows = r.end - r.start;
            let (xf_h, xf_t) = xf_rest.split_at_mut(rows * k2);
            let (xb_h, xb_t) = xb_rest.split_at_mut(rows * k2);
            let (sf_h, sf_t) = sf_rest.split_at_mut(rows * d);
            let (sb_h, sb_t) = sb_rest.split_at_mut(rows * d);
            xf_rest = xf_t;
            xb_rest = xb_t;
            sf_rest = sf_t;
            sb_rest = sb_t;
            let f = &update_rows;
            let r = r.clone();
            s.spawn(move || f(r, xf_h, xb_h, sf_h, sb_h));
        }
    });
}

/// Lines 10–14 of Algorithm 4 / lines 11–16 of Algorithm 8.
fn y_phase(state: &mut InitState, nb: usize) {
    let n = state.xf.rows();
    let d = state.y.rows();
    let k2 = state.y.cols();
    // X_f, X_b fixed for the whole phase.
    let xft = state.xf.transpose(); // k/2 × n
    let xbt = state.xb.transpose();
    let xnorm: Vec<f64> = (0..k2)
        .map(|l| vecops::norm2_sq(xft.row(l)) + vecops::norm2_sq(xbt.row(l)))
        .collect();

    let ranges = even_ranges_nonempty(d, nb);
    let update_attrs = |range: std::ops::Range<usize>,
                        y_rows: &mut [f64],
                        sf_cols: &mut pane_parallel::ColumnBlockMut<'_>,
                        sb_cols: &mut pane_parallel::ColumnBlockMut<'_>| {
        let mut sf_col = vec![0.0; n];
        let mut sb_col = vec![0.0; n];
        for (bi, r) in range.clone().enumerate() {
            sf_cols.gather_column(r, &mut sf_col);
            sb_cols.gather_column(r, &mut sb_col);
            let y_row = &mut y_rows[bi * k2..(bi + 1) * k2];
            for l in 0..k2 {
                if xnorm[l] <= 0.0 {
                    continue;
                }
                let xfl = xft.row(l);
                let xbl = xbt.row(l);
                let mu_y = (vecops::dot(xfl, &sf_col) + vecops::dot(xbl, &sb_col)) / xnorm[l];
                y_row[l] -= mu_y;
                vecops::axpy(-mu_y, xfl, &mut sf_col); // Eq. 20
                vecops::axpy(-mu_y, xbl, &mut sb_col);
            }
            sf_cols.scatter_column(r, &sf_col);
            sb_cols.scatter_column(r, &sb_col);
        }
    };

    let mut sf_owner = ColumnBlocksMut::new(state.sf.data_mut(), n, d);
    let sf_blocks = sf_owner.split(&ranges);
    let mut sb_owner = ColumnBlocksMut::new(state.sb.data_mut(), n, d);
    let sb_blocks = sb_owner.split(&ranges);

    if ranges.len() <= 1 {
        if let ((Some(mut sfb), Some(mut sbb)), Some(r)) = (
            (sf_blocks.into_iter().next(), sb_blocks.into_iter().next()),
            ranges.first(),
        ) {
            update_attrs(r.clone(), state.y.data_mut(), &mut sfb, &mut sbb);
        }
        return;
    }
    std::thread::scope(|s| {
        let mut y_rest = state.y.data_mut();
        for ((r, mut sfb), mut sbb) in ranges.iter().zip(sf_blocks).zip(sb_blocks) {
            let rows = r.end - r.start;
            let (y_h, y_t) = y_rest.split_at_mut(rows * k2);
            y_rest = y_t;
            let f = &update_attrs;
            let r = r.clone();
            s.spawn(move || f(r, y_h, &mut sfb, &mut sbb));
        }
    });
}

/// Algorithm 4: GreedyInit (done by the caller) followed by `sweeps` CCD
/// sweeps; returns the final objective value for convenience.
pub fn svdccd(state: &mut InitState, sweeps: usize, nb: usize) -> f64 {
    ccd_sweeps(state, sweeps, nb);
    objective(state)
}

/// Workspace variant kept for API symmetry with the paper's Algorithm 4
/// signature (`SVDCCD(F', B', k, t)`): builds the init state internally.
pub struct CcdWorkspace;

impl CcdWorkspace {
    /// One-call driver: GreedyInit + CCD.
    pub fn run(
        f: &DenseMatrix,
        b: &DenseMatrix,
        opts: &crate::greedy_init::InitOptions,
        sweeps: usize,
        nb: usize,
        split_merge: bool,
    ) -> InitState {
        let mut state = if split_merge && nb > 1 {
            crate::greedy_init::sm_greedy_init(f, b, opts, nb)
        } else {
            crate::greedy_init::greedy_init(f, b, opts, nb)
        };
        ccd_sweeps(&mut state, sweeps, nb);
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy_init::{greedy_init, InitOptions};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: usize, d: usize, k2: usize, seed: u64) -> (DenseMatrix, DenseMatrix, InitState) {
        let mut rng = StdRng::seed_from_u64(seed);
        let f = DenseMatrix::uniform(n, d, 0.0, 2.0, &mut rng);
        let b = DenseMatrix::uniform(n, d, 0.0, 2.0, &mut rng);
        let opts = InitOptions {
            half_dim: k2,
            power_iters: 2,
            oversample: 4,
            seed,
        };
        let st = greedy_init(&f, &b, &opts, 1);
        (f, b, st)
    }

    /// Random init used by the PANE-R ablation and by tests here.
    fn random_state(f: &DenseMatrix, b: &DenseMatrix, k2: usize, seed: u64) -> InitState {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = f.rows();
        let d = f.cols();
        let xf = DenseMatrix::gaussian(n, k2, &mut rng);
        let xb = DenseMatrix::gaussian(n, k2, &mut rng);
        let y = DenseMatrix::gaussian(d, k2, &mut rng);
        let mut sf = xf.matmul_transb(&y);
        sf.axpy_inplace(-1.0, f);
        let mut sb = xb.matmul_transb(&y);
        sb.axpy_inplace(-1.0, b);
        InitState { xf, xb, y, sf, sb }
    }

    #[test]
    fn objective_monotonically_non_increasing() {
        let (_f, _b, mut st) = setup(25, 10, 4, 1);
        let mut prev = objective(&st);
        for _ in 0..6 {
            ccd_sweeps(&mut st, 1, 1);
            let cur = objective(&st);
            assert!(cur <= prev + 1e-9, "objective rose: {prev} -> {cur}");
            prev = cur;
        }
    }

    #[test]
    fn residual_invariant_maintained() {
        let (f, b, mut st) = setup(20, 8, 3, 2);
        ccd_sweeps(&mut st, 4, 1);
        let (sf, sb) = st.fresh_residuals(&f, &b, 1);
        assert!(
            st.sf.max_abs_diff(&sf) < 1e-9,
            "Sf drifted by {}",
            st.sf.max_abs_diff(&sf)
        );
        assert!(st.sb.max_abs_diff(&sb) < 1e-9);
    }

    #[test]
    fn parallel_sweeps_bit_identical() {
        let (_f, _b, st0) = setup(33, 13, 5, 3);
        let mut serial = st0.clone();
        ccd_sweeps(&mut serial, 3, 1);
        for nb in [2, 4, 7] {
            let mut par = st0.clone();
            ccd_sweeps(&mut par, 3, nb);
            assert_eq!(serial.xf.data(), par.xf.data(), "nb={nb}: Xf differs");
            assert_eq!(serial.xb.data(), par.xb.data(), "nb={nb}: Xb differs");
            assert_eq!(serial.y.data(), par.y.data(), "nb={nb}: Y differs");
            assert_eq!(serial.sf.data(), par.sf.data(), "nb={nb}: Sf differs");
        }
    }

    #[test]
    fn ccd_fixes_perturbed_solution() {
        // Start from an exactly factorizable pair, perturb one coordinate;
        // CCD must restore a near-zero objective.
        let mut rng = StdRng::seed_from_u64(4);
        let xf = DenseMatrix::gaussian(15, 3, &mut rng);
        let y = DenseMatrix::gaussian(6, 3, &mut rng);
        let f = xf.matmul_transb(&y);
        let b = f.clone();
        let mut st = InitState {
            xf: xf.clone(),
            xb: xf.clone(),
            y: y.clone(),
            sf: DenseMatrix::zeros(15, 6),
            sb: DenseMatrix::zeros(15, 6),
        };
        // Perturb.
        st.xf.add_at(0, 0, 5.0);
        let (sf, sb) = st.fresh_residuals(&f, &b, 1);
        st.sf = sf;
        st.sb = sb;
        assert!(objective(&st) > 1.0);
        ccd_sweeps(&mut st, 8, 1);
        assert!(
            objective(&st) < 1e-6,
            "objective after repair: {}",
            objective(&st)
        );
    }

    #[test]
    fn greedy_init_converges_faster_than_random() {
        let (f, b, greedy) = setup(40, 16, 4, 5);
        let mut g = greedy;
        let mut r = random_state(&f, &b, 4, 55);
        // Same number of sweeps from both starts.
        ccd_sweeps(&mut g, 2, 1);
        ccd_sweeps(&mut r, 2, 1);
        assert!(
            objective(&g) < objective(&r),
            "greedy {} should beat random {} at equal sweeps",
            objective(&g),
            objective(&r)
        );
    }

    #[test]
    fn zero_coordinate_columns_are_skipped() {
        let (f, b, mut st) = setup(10, 5, 3, 6);
        // Zero out one Y column and its X counterparts: the sweep must not
        // produce NaNs from 0/0.
        for i in 0..st.y.rows() {
            st.y.set(i, 1, 0.0);
        }
        let (sf, sb) = st.fresh_residuals(&f, &b, 1);
        st.sf = sf;
        st.sb = sb;
        ccd_sweeps(&mut st, 2, 1);
        assert!(st.xf.data().iter().all(|v| v.is_finite()));
        assert!(st.y.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn empty_dimensions_are_noops() {
        let f = DenseMatrix::zeros(0, 0);
        let mut st = InitState {
            xf: DenseMatrix::zeros(0, 2),
            xb: DenseMatrix::zeros(0, 2),
            y: DenseMatrix::zeros(0, 2),
            sf: DenseMatrix::zeros(0, 0),
            sb: DenseMatrix::zeros(0, 0),
        };
        ccd_sweeps(&mut st, 3, 2);
        let _ = f;
    }
}
