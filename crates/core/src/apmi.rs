//! APMI — Approximation of the affinity matrices via Pointwise Mutual
//! Information (Algorithm 2).
//!
//! Instead of sampling random walks, APMI computes the truncated series
//!
//! ```text
//!   P_f^{(t)} = α Σ_{ℓ=0..t} (1-α)^ℓ P^ℓ  R_r        (n × d)
//!   P_b^{(t)} = α Σ_{ℓ=0..t} (1-α)^ℓ (Pᵀ)^ℓ R_c      (n × d)
//! ```
//!
//! by the recurrences `P_f^{(ℓ)} = (1-α)·P·P_f^{(ℓ-1)} + α·P_f^{(0)}` with
//! `P_f^{(0)} = R_r` (and symmetrically with `Pᵀ`, `R_c`), which costs
//! `O(m·d·t)` instead of the naive `O(m·n·t)`.
//!
//! **A note on the recurrence.** Unrolling it gives
//! `P_f^{(t)} = Σ_{ℓ=0..t-1} α(1-α)^ℓ P^ℓ R_r + (1-α)^t P^t R_r`: the final
//! term carries weight `(1-α)^t` rather than `α(1-α)^t`, i.e. the recurrence
//! *includes the entire tail mass* `Σ_{ℓ≥t}α(1-α)^ℓ` collapsed onto the t-th
//! hop. This makes `P_f^{(t)}` row-stochastic for every `t` (when `P` is),
//! is what Algorithm 2 literally computes, and satisfies the same Lemma 3.1
//! bound (the deviation from `P_f` is at most the tail mass
//! `(1-α)^{t+1} ≤ ε` in every entry).
//!
//! After `t` iterations, `P̂_f^{(t)}` is column-normalized, `P̂_b^{(t)}`
//! row-normalized, and the SPMI transform of Eqs. (2)–(3) is applied:
//! `F' = ln(n·P̂_f + 1)`, `B' = ln(d·P̂_b + 1)`.

use pane_linalg::DenseMatrix;
use pane_sparse::CsrMatrix;

/// The pair of approximate affinity matrices returned by APMI.
#[derive(Debug, Clone)]
pub struct AffinityPair {
    /// `F' ∈ R^{n×d}` — forward (node → attribute) affinity.
    pub forward: DenseMatrix,
    /// `B' ∈ R^{n×d}` — backward (attribute → node) affinity.
    pub backward: DenseMatrix,
}

/// Inputs shared by [`apmi`] and [`crate::papmi::papmi`].
pub struct ApmiInputs<'a> {
    /// Random-walk matrix `P = D⁻¹A` (`n × n`).
    pub p: &'a CsrMatrix,
    /// Its transpose `Pᵀ` (precomputed once; both phases need it).
    pub pt: &'a CsrMatrix,
    /// Row-normalized attribute matrix `R_r` (`n × d`).
    pub rr: &'a CsrMatrix,
    /// Column-normalized attribute matrix `R_c` (`n × d`).
    pub rc: &'a CsrMatrix,
    /// Stopping probability `α`.
    pub alpha: f64,
    /// Iteration count `t`.
    pub t: usize,
}

impl<'a> ApmiInputs<'a> {
    fn validate(&self) {
        let n = self.p.rows();
        assert_eq!(self.p.cols(), n, "P must be square");
        assert_eq!(self.pt.rows(), n, "Pᵀ shape mismatch");
        assert_eq!(self.pt.cols(), n, "Pᵀ shape mismatch");
        assert_eq!(self.rr.rows(), n, "R_r row mismatch");
        assert_eq!(self.rc.rows(), n, "R_c row mismatch");
        assert_eq!(self.rr.cols(), self.rc.cols(), "R_r/R_c column mismatch");
        assert!(
            self.alpha > 0.0 && self.alpha < 1.0,
            "alpha must be in (0,1)"
        );
    }
}

/// Algorithm 2 (single-threaded). Returns `(F', B')`.
pub fn apmi(inputs: &ApmiInputs<'_>) -> AffinityPair {
    inputs.validate();
    let (pf, pb) = propagate(inputs, None);
    finish(pf, pb, None)
}

/// The iterative propagation (Lines 2–5 of Algorithm 2). When `nb` is
/// `Some`, the dense right-hand side is processed in that many column
/// blocks by parallel workers (Lines 2–8 of Algorithm 6); the arithmetic
/// per entry is identical, which is why Lemma 4.1 holds exactly.
pub(crate) fn propagate(inputs: &ApmiInputs<'_>, nb: Option<usize>) -> (DenseMatrix, DenseMatrix) {
    let d = inputs.rr.cols();
    match nb {
        None => {
            let pf0 = inputs.rr.to_dense();
            let pb0 = inputs.rc.to_dense();
            let pf = iterate(inputs.p, &pf0, inputs.alpha, inputs.t);
            let pb = iterate(inputs.pt, &pb0, inputs.alpha, inputs.t);
            (pf, pb)
        }
        Some(nb) => {
            // Column-block partition of R (Algorithm 6, lines 2–6): thread i
            // owns attribute block R_i and iterates its own dense panel.
            let ranges = pane_parallel::even_ranges_nonempty(d, nb);
            let rr_dense = inputs.rr.to_dense();
            let rc_dense = inputs.rc.to_dense();
            let pf_blocks = pane_parallel::map_blocks(&ranges, |_, range| {
                let pf0 = rr_dense.col_block(range);
                iterate(inputs.p, &pf0, inputs.alpha, inputs.t)
            });
            let pb_blocks = pane_parallel::map_blocks(&ranges, |_, range| {
                let pb0 = rc_dense.col_block(range);
                iterate(inputs.pt, &pb0, inputs.alpha, inputs.t)
            });
            // Lines 7–8: concatenate the per-thread panels horizontally.
            (
                DenseMatrix::hstack(&pf_blocks),
                DenseMatrix::hstack(&pb_blocks),
            )
        }
    }
}

/// `X^{(ℓ)} = (1-α)·M·X^{(ℓ-1)} + α·X^{(0)}` for `t` steps.
fn iterate(m: &CsrMatrix, x0: &DenseMatrix, alpha: f64, t: usize) -> DenseMatrix {
    let mut x = x0.clone();
    let mut scratch = DenseMatrix::zeros(x0.rows(), x0.cols());
    for _ in 0..t {
        m.mul_dense_into(&x, &mut scratch);
        scratch.scale_inplace(1.0 - alpha);
        scratch.axpy_inplace(alpha, x0);
        std::mem::swap(&mut x, &mut scratch);
    }
    x
}

/// Normalization + SPMI transform (Lines 6–8 of Algorithm 2 / Lines 9–13 of
/// Algorithm 6). `nb = Some(_)` applies the log transform in parallel node
/// row blocks; per-entry arithmetic is unchanged.
pub(crate) fn finish(pf: DenseMatrix, pb: DenseMatrix, nb: Option<usize>) -> AffinityPair {
    let n = pf.rows() as f64;
    let d = pf.cols() as f64;

    // Column-normalize P_f^{(t)}; row-normalize P_b^{(t)}.
    let col_sums = pf.col_sums();
    let row_sums = pb.row_sums();
    let mut forward = pf;
    let mut backward = pb;

    let transform =
        |forward: &mut DenseMatrix, backward: &mut DenseMatrix, rows: std::ops::Range<usize>| {
            for i in rows {
                let frow = forward.row_mut(i);
                for (j, v) in frow.iter_mut().enumerate() {
                    let s = col_sums[j];
                    *v = if s > 0.0 {
                        (n * *v / s + 1.0).ln()
                    } else {
                        0.0
                    };
                }
                let rs = row_sums[i];
                let brow = backward.row_mut(i);
                for v in brow.iter_mut() {
                    *v = if rs > 0.0 {
                        (d * *v / rs + 1.0).ln()
                    } else {
                        0.0
                    };
                }
            }
        };

    let all_rows = 0..forward.rows();
    match nb {
        None => transform(&mut forward, &mut backward, all_rows),
        Some(nb) => {
            let rows = forward.rows();
            let cols = forward.cols();
            let ranges = pane_parallel::even_ranges_nonempty(rows, nb);
            // Split both matrices into matching row blocks and transform in
            // parallel; closures capture the shared normalizers immutably.
            let fw = &col_sums;
            let bw = &row_sums;
            let mut fdat = std::mem::replace(&mut forward, DenseMatrix::zeros(0, 0)).into_vec();
            let mut bdat = std::mem::replace(&mut backward, DenseMatrix::zeros(0, 0)).into_vec();
            scope_rows(
                &mut fdat,
                &mut bdat,
                cols,
                &ranges,
                |range, fblock, bblock| {
                    for (bi, _i) in range.clone().enumerate() {
                        let frow = &mut fblock[bi * cols..(bi + 1) * cols];
                        for (j, v) in frow.iter_mut().enumerate() {
                            let s = fw[j];
                            *v = if s > 0.0 {
                                (n * *v / s + 1.0).ln()
                            } else {
                                0.0
                            };
                        }
                        let rs = bw[range.start + bi];
                        let brow = &mut bblock[bi * cols..(bi + 1) * cols];
                        for v in brow.iter_mut() {
                            *v = if rs > 0.0 {
                                (d * *v / rs + 1.0).ln()
                            } else {
                                0.0
                            };
                        }
                    }
                },
            );
            forward = DenseMatrix::from_vec(rows, cols, fdat);
            backward = DenseMatrix::from_vec(rows, cols, bdat);
        }
    }

    AffinityPair { forward, backward }
}

/// Runs `f(range, forward_rows, backward_rows)` over matching row blocks of
/// two same-shape row-major buffers, one scoped worker per block.
fn scope_rows<F>(
    fdat: &mut [f64],
    bdat: &mut [f64],
    cols: usize,
    ranges: &[std::ops::Range<usize>],
    f: F,
) where
    F: Fn(std::ops::Range<usize>, &mut [f64], &mut [f64]) + Sync,
{
    if ranges.len() <= 1 {
        if let Some(r) = ranges.first() {
            f(r.clone(), fdat, bdat);
        }
        return;
    }
    std::thread::scope(|s| {
        let mut frest = fdat;
        let mut brest = bdat;
        for r in ranges {
            let take = (r.end - r.start) * cols;
            let (fh, ft) = frest.split_at_mut(take);
            let (bh, bt) = brest.split_at_mut(take);
            frest = ft;
            brest = bt;
            let f = &f;
            let r = r.clone();
            s.spawn(move || f(r, fh, bh));
        }
    });
}

#[cfg(test)]
mod tests {

    use super::*;
    use pane_graph::{toy, AttributedGraph, DanglingPolicy};

    pub(crate) fn toy_inputs(
        g: &AttributedGraph,
        alpha: f64,
        t: usize,
    ) -> (CsrMatrix, CsrMatrix, CsrMatrix, CsrMatrix, f64, usize) {
        let p = g.random_walk_matrix(DanglingPolicy::SelfLoop);
        let pt = p.transpose();
        let rr = g.attr_row_normalized();
        let rc = g.attr_col_normalized();
        (p, pt, rr, rc, alpha, t)
    }

    fn run_apmi(g: &AttributedGraph, alpha: f64, t: usize) -> AffinityPair {
        let (p, pt, rr, rc, alpha, t) = toy_inputs(g, alpha, t);
        apmi(&ApmiInputs {
            p: &p,
            pt: &pt,
            rr: &rr,
            rc: &rc,
            alpha,
            t,
        })
    }

    /// Dense reference implementation of the recurrence, for cross-checking.
    fn dense_reference(g: &AttributedGraph, alpha: f64, t: usize) -> (DenseMatrix, DenseMatrix) {
        let p = g.random_walk_matrix(DanglingPolicy::SelfLoop).to_dense();
        let rr = g.attr_row_normalized().to_dense();
        let rc = g.attr_col_normalized().to_dense();
        let pt = p.transpose();
        let mut pf = rr.clone();
        let mut pb = rc.clone();
        for _ in 0..t {
            let mut nf = p.matmul(&pf);
            nf.scale_inplace(1.0 - alpha);
            nf.axpy_inplace(alpha, &rr);
            pf = nf;
            let mut nb2 = pt.matmul(&pb);
            nb2.scale_inplace(1.0 - alpha);
            nb2.axpy_inplace(alpha, &rc);
            pb = nb2;
        }
        (pf, pb)
    }

    #[test]
    fn propagation_matches_dense_reference() {
        let g = toy::figure1_graph();
        let (p, pt, rr, rc, alpha, t) = toy_inputs(&g, 0.15, 5);
        let inputs = ApmiInputs {
            p: &p,
            pt: &pt,
            rr: &rr,
            rc: &rc,
            alpha,
            t,
        };
        let (pf, pb) = propagate(&inputs, None);
        let (rf, rb) = dense_reference(&g, 0.15, 5);
        assert!(pf.max_abs_diff(&rf) < 1e-12);
        assert!(pb.max_abs_diff(&rb) < 1e-12);
    }

    #[test]
    fn pf_rows_stay_stochastic() {
        // With the SelfLoop policy P is row-stochastic, and R_r rows sum to
        // 1 for attributed terminal nodes; on a graph where *every* node has
        // attributes, P_f^{(t)} rows must sum to exactly 1 for every t.
        let mut b = pane_graph::GraphBuilder::new(4, 2);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        b.add_edge(3, 0);
        for v in 0..4 {
            b.add_attribute(v, v % 2, 1.0);
        }
        let g = b.build();
        let (p, pt, rr, rc, alpha, t) = toy_inputs(&g, 0.5, 7);
        let inputs = ApmiInputs {
            p: &p,
            pt: &pt,
            rr: &rr,
            rc: &rc,
            alpha,
            t,
        };
        let (pf, _) = propagate(&inputs, None);
        for s in pf.row_sums() {
            assert!((s - 1.0).abs() < 1e-12, "row sum {s}");
        }
    }

    #[test]
    fn affinities_are_finite_and_nonnegative() {
        let g = toy::figure1_graph();
        let aff = run_apmi(&g, 0.15, 9);
        for m in [&aff.forward, &aff.backward] {
            for &v in m.data() {
                assert!(v.is_finite() && v >= 0.0, "bad affinity {v}");
            }
        }
    }

    #[test]
    fn qualitative_table2_properties() {
        use pane_graph::toy::{attrs::*, nodes::*, EXAMPLE_ALPHA};
        let g = toy::figure1_graph();
        let aff = run_apmi(&g, EXAMPLE_ALPHA, 40);
        let f = &aff.forward;
        let bm = &aff.backward;
        // v1 has high affinity with r1 (connected via v3, v4, v5).
        assert!(
            f.get(V1, R1) > f.get(V1, R3),
            "forward: v1 should prefer r1 over r3"
        );
        assert!(bm.get(V1, R1) > 0.0);
        // v5's forward affinity ranks r3 above r1 (the misleading case)...
        assert!(f.get(V5, R3) > f.get(V5, R1), "v5 forward should prefer r3");
        // ...but combining forward + backward repairs the ranking (v5 owns r1).
        let combined_r1 = f.get(V5, R1) + bm.get(V5, R1);
        let combined_r3 = f.get(V5, R3) + bm.get(V5, R3);
        assert!(
            combined_r1 > combined_r3,
            "combined affinity should prefer owned r1"
        );
        // v6 strongly prefers its own r3 in the forward direction.
        assert!(f.get(V6, R3) > f.get(V6, R1));
    }

    #[test]
    fn more_iterations_converge() {
        // P_f^{(t)} converges geometrically; successive iterates contract.
        let g = toy::figure1_graph();
        let (p, pt, rr, rc, ..) = toy_inputs(&g, 0.3, 0);
        let make = |t: usize| {
            let inputs = ApmiInputs {
                p: &p,
                pt: &pt,
                rr: &rr,
                rc: &rc,
                alpha: 0.3,
                t,
            };
            propagate(&inputs, None).0
        };
        let d5 = make(5).max_abs_diff(&make(30));
        let d15 = make(15).max_abs_diff(&make(30));
        assert!(d15 < d5, "not converging: d5={d5} d15={d15}");
        assert!(d15 < (1.0_f64 - 0.3).powi(15), "slower than geometric");
    }

    #[test]
    fn matches_monte_carlo_on_fully_attributed_graph() {
        use pane_graph::walks::{RestartRule, WalkSimulator};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        // Every node has an attribute, so the matrix form and the sampled
        // walks agree exactly in expectation.
        let mut b = pane_graph::GraphBuilder::new(5, 3);
        let edges = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2), (1, 4)];
        for (s, t) in edges {
            b.add_edge(s, t);
        }
        for v in 0..5 {
            b.add_attribute(v, v % 3, 1.0);
            if v % 2 == 0 {
                b.add_attribute(v, (v + 1) % 3, 0.5);
            }
        }
        let g = b.build();
        let alpha = 0.4;
        let aff = run_apmi(&g, alpha, 60);
        let sim = WalkSimulator::new(&g, alpha, DanglingPolicy::SelfLoop, RestartRule::Discard);
        let mut rng = StdRng::seed_from_u64(17);
        let (fe, be) = sim.empirical_affinities(40_000, &mut rng);
        assert!(
            aff.forward.max_abs_diff(&fe) < 0.06,
            "forward diff {}",
            aff.forward.max_abs_diff(&fe)
        );
        assert!(
            aff.backward.max_abs_diff(&be) < 0.06,
            "backward diff {}",
            aff.backward.max_abs_diff(&be)
        );
    }
}
