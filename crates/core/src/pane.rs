//! The user-facing PANE pipeline (Algorithm 1 single-threaded, Algorithm 5
//! parallel — selected by `config.threads`).

use crate::apmi::{AffinityPair, ApmiInputs};
use crate::ccd::ccd_sweeps;
use crate::config::{InitStrategy, PaneConfig, PaneError};
use crate::greedy_init::{greedy_init, sm_greedy_init, InitOptions, InitState};
use crate::papmi::papmi;
use pane_graph::AttributedGraph;
use pane_linalg::DenseMatrix;
use std::time::Instant;

/// Wall-clock timings of the three pipeline stages.
#[derive(Debug, Clone, Copy, Default)]
pub struct PaneTimings {
    /// Affinity approximation (APMI/PAPMI).
    pub affinity_secs: f64,
    /// Embedding initialization ((SM)GreedyInit).
    pub init_secs: f64,
    /// CCD refinement sweeps.
    pub ccd_secs: f64,
}

impl PaneTimings {
    /// Total pipeline time.
    pub fn total_secs(&self) -> f64 {
        self.affinity_secs + self.init_secs + self.ccd_secs
    }
}

/// The embeddings PANE produces.
#[derive(Debug, Clone)]
pub struct PaneEmbedding {
    /// Forward node embeddings `X_f ∈ R^{n×k/2}`.
    pub forward: DenseMatrix,
    /// Backward node embeddings `X_b ∈ R^{n×k/2}`.
    pub backward: DenseMatrix,
    /// Attribute embeddings `Y ∈ R^{d×k/2}`.
    pub attribute: DenseMatrix,
    /// Stage timings of the run that produced these embeddings.
    pub timings: PaneTimings,
    /// Final objective value `‖S_f‖² + ‖S_b‖²`.
    pub objective: f64,
}

impl PaneEmbedding {
    /// Node–attribute affinity score (Eq. 21):
    /// `p(v, r) = X_f[v]·Y[r]ᵀ + X_b[v]·Y[r]ᵀ ≈ F[v,r] + B[v,r]`.
    pub fn attribute_score(&self, v: usize, r: usize) -> f64 {
        let y = self.attribute.row(r);
        pane_linalg::vecops::dot(self.forward.row(v), y)
            + pane_linalg::vecops::dot(self.backward.row(v), y)
    }

    /// The Gram matrix `G = YᵀY ∈ R^{k/2×k/2}` used to evaluate link scores
    /// in `O(k²)` rather than `O(dk)` per pair (see [`Self::link_score_with`]).
    pub fn link_gram(&self) -> DenseMatrix {
        self.attribute.tr_matmul(&self.attribute)
    }

    /// Edge-direction-aware link score (Eq. 22):
    /// `p(v_i → v_j) = Σ_r (X_f[v_i]·Y[r]ᵀ)(X_b[v_j]·Y[r]ᵀ)
    ///               = X_f[v_i] · (YᵀY) · X_b[v_j]ᵀ`.
    ///
    /// Pass the precomputed [`Self::link_gram`].
    pub fn link_score_with(&self, gram: &DenseMatrix, src: usize, dst: usize) -> f64 {
        let xf = self.forward.row(src);
        let xb = self.backward.row(dst);
        let k2 = xf.len();
        let mut acc = 0.0;
        for a in 0..k2 {
            let xfa = xf[a];
            if xfa == 0.0 {
                continue;
            }
            acc += xfa * pane_linalg::vecops::dot(gram.row(a), xb);
        }
        acc
    }

    /// Convenience single-pair link score (recomputes the Gram matrix; use
    /// [`Self::link_score_with`] in loops).
    pub fn link_score(&self, src: usize, dst: usize) -> f64 {
        self.link_score_with(&self.link_gram(), src, dst)
    }

    /// The per-query link vector `q = X_f[src]·YᵀY`, so the Eq. 22 score
    /// factorizes as `p(src → dst) = q · X_b[dst]` — the form a
    /// max-inner-product index serves directly. Pass the precomputed
    /// [`Self::link_gram`]; the serving layers (`EmbeddingQuery`,
    /// `pane-serve`) all call this one kernel so their scores cannot
    /// drift apart.
    pub fn link_query_vector_with(&self, gram: &DenseMatrix, src: usize) -> Vec<f64> {
        let k2 = self.forward.cols();
        let mut q = vec![0.0; k2];
        let xf = self.forward.row(src);
        for (a, &xfa) in xf.iter().enumerate() {
            if xfa != 0.0 {
                pane_linalg::vecops::axpy(xfa, gram.row(a), &mut q);
            }
        }
        q
    }

    /// The full `n × k` matrix of [`Self::classifier_features`] rows — the
    /// representation ANN indexes are built over.
    pub fn classifier_feature_matrix(&self) -> DenseMatrix {
        let n = self.forward.rows();
        let k = self.forward.cols() + self.backward.cols();
        let mut m = DenseMatrix::zeros(n, k);
        for v in 0..n {
            m.row_mut(v).copy_from_slice(&self.classifier_features(v));
        }
        m
    }

    /// Per-node feature vector for classifiers: `[X_f[v]‖X_b[v]]`, each half
    /// L2-normalized (the paper's §5.4 preprocessing).
    pub fn classifier_features(&self, v: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.forward.cols() + self.backward.cols());
        for half in [self.forward.row(v), self.backward.row(v)] {
            let norm = pane_linalg::vecops::norm2(half);
            if norm > 0.0 {
                out.extend(half.iter().map(|x| x / norm));
            } else {
                out.extend_from_slice(half);
            }
        }
        out
    }
}

/// The PANE embedder. Construct with a [`PaneConfig`], call
/// [`embed`](Self::embed).
#[derive(Debug, Clone)]
pub struct Pane {
    config: PaneConfig,
}

impl Pane {
    /// Creates an embedder (validating the config).
    pub fn new(config: PaneConfig) -> Self {
        config.validate().expect("invalid PaneConfig");
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PaneConfig {
        &self.config
    }

    /// Runs the full pipeline on `graph`.
    pub fn embed(&self, graph: &AttributedGraph) -> Result<PaneEmbedding, PaneError> {
        let (emb, _aff) = self.embed_with_affinity(graph)?;
        Ok(emb)
    }

    /// Like [`embed`](Self::embed) but also returns the affinity matrices —
    /// used by ablations and by tests that need `F'`/`B'`.
    pub fn embed_with_affinity(
        &self,
        graph: &AttributedGraph,
    ) -> Result<(PaneEmbedding, AffinityPair), PaneError> {
        if graph.num_nodes() == 0 {
            return Err(PaneError::EmptyGraph);
        }
        if graph.num_attributes() == 0 || graph.num_attribute_entries() == 0 {
            return Err(PaneError::NoAttributes);
        }
        self.config.validate()?;
        let cfg = &self.config;
        let nb = cfg.threads;
        let t = cfg.iterations();

        // Stage 1: affinity approximation (Algorithm 2 or 6).
        let t0 = Instant::now();
        let p = graph.random_walk_matrix(cfg.dangling);
        let pt = p.transpose();
        let rr = graph.attr_row_normalized();
        let rc = graph.attr_col_normalized();
        let inputs = ApmiInputs {
            p: &p,
            pt: &pt,
            rr: &rr,
            rc: &rc,
            alpha: cfg.alpha,
            t,
        };
        let aff = papmi(&inputs, nb);
        let affinity_secs = t0.elapsed().as_secs_f64();

        // Stage 2: initialization (Algorithm 3 or 7).
        let t1 = Instant::now();
        let opts = InitOptions {
            half_dim: cfg.half_dim(),
            power_iters: cfg.power_iters(),
            oversample: cfg.svd_oversample,
            seed: cfg.seed,
        };
        let mut state: InitState = match cfg.init {
            InitStrategy::SplitMerge if nb > 1 => {
                sm_greedy_init(&aff.forward, &aff.backward, &opts, nb)
            }
            _ => greedy_init(&aff.forward, &aff.backward, &opts, nb),
        };
        let init_secs = t1.elapsed().as_secs_f64();

        // Stage 3: CCD refinement (Algorithm 4 or 8).
        let t2 = Instant::now();
        ccd_sweeps(&mut state, cfg.sweeps(), nb);
        let ccd_secs = t2.elapsed().as_secs_f64();

        let objective = crate::ccd::objective(&state);
        let emb = PaneEmbedding {
            forward: state.xf,
            backward: state.xb,
            attribute: state.y,
            timings: PaneTimings {
                affinity_secs,
                init_secs,
                ccd_secs,
            },
            objective,
        };
        Ok((emb, aff))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pane_graph::gen::{generate_sbm, SbmConfig};
    use pane_graph::toy;

    fn small_sbm(seed: u64) -> AttributedGraph {
        generate_sbm(&SbmConfig {
            nodes: 200,
            communities: 4,
            avg_out_degree: 6.0,
            attributes: 24,
            attrs_per_node: 4.0,
            attr_noise: 0.1,
            seed,
            ..Default::default()
        })
    }

    fn cfg(k: usize) -> PaneConfig {
        PaneConfig::builder()
            .dimension(k)
            .alpha(0.5)
            .error_threshold(0.015)
            .seed(3)
            .build()
    }

    #[test]
    fn embeds_toy_graph() {
        let g = toy::figure1_graph();
        let emb = Pane::new(cfg(4)).embed(&g).unwrap();
        assert_eq!(emb.forward.shape(), (6, 2));
        assert_eq!(emb.backward.shape(), (6, 2));
        assert_eq!(emb.attribute.shape(), (3, 2));
        assert!(emb.objective.is_finite());
        assert!(emb.timings.total_secs() >= 0.0);
    }

    #[test]
    fn dot_products_approximate_affinity() {
        let g = small_sbm(1);
        let pane = Pane::new(cfg(32));
        let (emb, aff) = pane.embed_with_affinity(&g).unwrap();
        // Relative objective should be small: embeddings capture affinity.
        let scale = aff.forward.frob_norm_sq() + aff.backward.frob_norm_sq();
        assert!(
            emb.objective < 0.25 * scale,
            "objective {} vs affinity energy {scale}",
            emb.objective
        );
        // Spot-check Eq. 21 consistency with the raw matrices.
        let mut better = 0;
        let mut trials = 0;
        for v in (0..g.num_nodes()).step_by(17) {
            for r in 0..g.num_attributes() {
                let truth = aff.forward.get(v, r) + aff.backward.get(v, r);
                let score = emb.attribute_score(v, r);
                trials += 1;
                if (truth - score).abs() < 0.5 * truth.abs().max(0.5) {
                    better += 1;
                }
            }
        }
        assert!(
            better as f64 > 0.7 * trials as f64,
            "{better}/{trials} scores close to affinity"
        );
    }

    #[test]
    fn parallel_matches_serial_closely() {
        let g = small_sbm(2);
        let serial = Pane::new(cfg(16)).embed(&g).unwrap();
        let mut pc = cfg(16);
        pc.threads = 4;
        pc.init = InitStrategy::SplitMerge;
        let par = Pane::new(pc).embed(&g).unwrap();
        // Split-merge init ⇒ different embeddings, but the objective must
        // be comparable (§5: "degradation ... is small"). The default
        // Greedy init is exactly thread-invariant; that stronger claim is
        // covered by tests/persistence_and_determinism.rs.
        let rel = (par.objective - serial.objective).abs() / serial.objective.max(1e-9);
        assert!(
            rel < 0.25,
            "parallel objective {} vs serial {}",
            par.objective,
            serial.objective
        );
    }

    #[test]
    fn link_scores_respect_direction() {
        let g = small_sbm(3);
        let emb = Pane::new(cfg(32)).embed(&g).unwrap();
        let gram = emb.link_gram();
        // Average score over existing edges must exceed average over random
        // non-edges.
        let mut rng_state = 123456789u64;
        let mut rand = || {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (rng_state >> 33) as usize
        };
        let mut pos = 0.0;
        let mut npos = 0;
        for (i, j, _) in g.adjacency().iter() {
            pos += emb.link_score_with(&gram, i, j);
            npos += 1;
        }
        let mut neg = 0.0;
        let mut nneg = 0;
        while nneg < npos {
            let i = rand() % g.num_nodes();
            let j = rand() % g.num_nodes();
            if i != j && g.adjacency().get(i, j) == 0.0 {
                neg += emb.link_score_with(&gram, i, j);
                nneg += 1;
            }
        }
        assert!(
            pos / npos as f64 > neg / nneg as f64,
            "edges should score higher: pos {} vs neg {}",
            pos / npos as f64,
            neg / nneg as f64
        );
    }

    #[test]
    fn classifier_features_are_normalized() {
        let g = small_sbm(4);
        let emb = Pane::new(cfg(16)).embed(&g).unwrap();
        let feats = emb.classifier_features(0);
        assert_eq!(feats.len(), 16);
        let (a, b) = feats.split_at(8);
        for half in [a, b] {
            let n = pane_linalg::vecops::norm2(half);
            assert!(n < 1e-9 || (n - 1.0).abs() < 1e-9, "half-norm {n}");
        }
    }

    #[test]
    fn error_cases() {
        let empty = pane_graph::GraphBuilder::new(0, 0).build();
        assert!(matches!(
            Pane::new(cfg(4)).embed(&empty),
            Err(PaneError::EmptyGraph)
        ));
        let mut b = pane_graph::GraphBuilder::new(3, 0);
        b.add_edge(0, 1);
        let no_attrs = b.build();
        assert!(matches!(
            Pane::new(cfg(4)).embed(&no_attrs),
            Err(PaneError::NoAttributes)
        ));
    }

    #[test]
    fn deterministic_given_seed() {
        let g = small_sbm(5);
        let e1 = Pane::new(cfg(16)).embed(&g).unwrap();
        let e2 = Pane::new(cfg(16)).embed(&g).unwrap();
        assert_eq!(e1.forward.data(), e2.forward.data());
        assert_eq!(e1.attribute.data(), e2.attribute.data());
    }
}
