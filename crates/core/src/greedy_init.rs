//! Embedding initialization (Algorithm 3: GreedyInit; Algorithm 7:
//! SMGreedyInit).
//!
//! The key idea of the solver: a direct application of CCD from random
//! embeddings needs many sweeps; instead, seed with
//!
//! ```text
//!   U, Σ, V ← RandSVD(F', k/2)      X_f ← U·Σ,   Y ← V,   X_b ← B'·Y
//! ```
//!
//! `X_f·Yᵀ ≈ F'` immediately, and because `V` is (near-)unitary,
//! `X_b = B'·Y` gives `X_b·Yᵀ ≈ B'·Y·Yᵀ ≈ B'` — both residuals start small.
//!
//! The split–merge variant partitions the rows of `F'` into `nb` blocks,
//! factorizes each block independently, and merges the per-block right
//! factors with a second small SVD (Lemma 4.2: at `t = ∞` the result still
//! satisfies `X_f·Yᵀ = F'`, `YᵀY = I`, `S_f = 0`, `S_b·Y = 0`).

use pane_linalg::{rand_svd, DenseMatrix, RandSvdConfig};
use pane_parallel::{even_ranges_nonempty, map_blocks};

/// Embeddings plus the dynamically-maintained residuals.
///
/// Invariant (maintained by every CCD update): `S_f = X_f·Yᵀ − F'` and
/// `S_b = X_b·Yᵀ − B'`.
#[derive(Debug, Clone)]
pub struct InitState {
    /// Forward node embeddings `X_f ∈ R^{n×k/2}`.
    pub xf: DenseMatrix,
    /// Backward node embeddings `X_b ∈ R^{n×k/2}`.
    pub xb: DenseMatrix,
    /// Attribute embeddings `Y ∈ R^{d×k/2}`.
    pub y: DenseMatrix,
    /// Forward residual `S_f = X_f·Yᵀ − F' ∈ R^{n×d}`.
    pub sf: DenseMatrix,
    /// Backward residual `S_b = X_b·Yᵀ − B' ∈ R^{n×d}`.
    pub sb: DenseMatrix,
}

impl InitState {
    /// Recomputes both residuals from scratch (`O(ndk)`); used by tests to
    /// check the maintained residuals never drift.
    pub fn fresh_residuals(
        &self,
        f: &DenseMatrix,
        b: &DenseMatrix,
        nb: usize,
    ) -> (DenseMatrix, DenseMatrix) {
        let mut sf = self.xf.matmul_transb_par(&self.y, nb);
        sf.axpy_inplace(-1.0, f);
        let mut sb = self.xb.matmul_transb_par(&self.y, nb);
        sb.axpy_inplace(-1.0, b);
        (sf, sb)
    }
}

/// Options shared by both initializers.
#[derive(Debug, Clone, Copy)]
pub struct InitOptions {
    /// Per-side dimension `k/2`.
    pub half_dim: usize,
    /// RandSVD power iterations (the paper's `t`).
    pub power_iters: usize,
    /// RandSVD oversampling.
    pub oversample: usize,
    /// Sketch seed.
    pub seed: u64,
}

/// Algorithm 3 (single-threaded). `nb` only parallelizes the dense products
/// used to form the residuals (the factorization itself is one RandSVD).
pub fn greedy_init(f: &DenseMatrix, b: &DenseMatrix, opts: &InitOptions, nb: usize) -> InitState {
    assert_eq!(f.shape(), b.shape(), "F'/B' shape mismatch");
    let cfg = RandSvdConfig {
        rank: opts.half_dim,
        power_iters: opts.power_iters,
        oversample: opts.oversample,
        seed: opts.seed,
    };
    let svd = rand_svd(f, &cfg);
    let xf = svd.u_sigma();
    let y = svd.v;
    let xb = b.matmul_par(&y, nb);
    let mut sf = xf.matmul_transb_par(&y, nb);
    sf.axpy_inplace(-1.0, f);
    let mut sb = xb.matmul_transb_par(&y, nb);
    sb.axpy_inplace(-1.0, b);
    InitState { xf, xb, y, sf, sb }
}

/// Algorithm 7 (split–merge, `nb` workers).
pub fn sm_greedy_init(
    f: &DenseMatrix,
    b: &DenseMatrix,
    opts: &InitOptions,
    nb: usize,
) -> InitState {
    assert_eq!(f.shape(), b.shape(), "F'/B' shape mismatch");
    let n = f.rows();
    let d = f.cols();
    let k2 = opts.half_dim;
    let ranges = even_ranges_nonempty(n, nb);
    if ranges.len() <= 1 {
        return greedy_init(f, b, opts, nb);
    }

    // Lines 1–3: per-block RandSVD of F'[V_i]; keep U_i = Φ·Σ and V_i.
    let blocks = map_blocks(&ranges, |i, range| {
        let cfg = RandSvdConfig {
            rank: k2,
            power_iters: opts.power_iters,
            oversample: opts.oversample,
            // Distinct seeds per block: the sketches are independent.
            seed: opts.seed.wrapping_add(i as u64 + 1),
        };
        let fb = f.row_block(range);
        let svd = rand_svd(&fb, &cfg);
        (svd.u_sigma(), svd.v)
    });

    // Lines 4–6: stack Vᵢᵀ into V ∈ R^{(nb·k/2)×d}, factorize once more.
    let stacked = DenseMatrix::vstack(
        &blocks
            .iter()
            .map(|(_, v)| v.transpose())
            .collect::<Vec<_>>(),
    );
    let cfg = RandSvdConfig {
        rank: k2,
        power_iters: opts.power_iters,
        oversample: opts.oversample,
        seed: opts.seed,
    };
    let merge = rand_svd(&stacked, &cfg);
    let w = merge.u_sigma(); // (nb·k/2) × k/2
    let y = merge.v; // d × k/2

    // Lines 7–11: per-block assembly of X_f, X_b and the residuals.
    let parts = map_blocks(&ranges, |i, range| {
        let (ui, _) = &blocks[i];
        let wi = w.row_block(i * k2..(i + 1) * k2); // k/2 × k/2
        let xf_i = ui.matmul(&wi);
        let fb = f.row_block(range.clone());
        let bb = b.row_block(range);
        let xb_i = bb.matmul(&y);
        let mut sf_i = xf_i.matmul_transb(&y);
        sf_i.axpy_inplace(-1.0, &fb);
        let mut sb_i = xb_i.matmul_transb(&y);
        sb_i.axpy_inplace(-1.0, &bb);
        (xf_i, xb_i, sf_i, sb_i)
    });

    let xf = DenseMatrix::vstack(&parts.iter().map(|p| p.0.clone()).collect::<Vec<_>>());
    let xb = DenseMatrix::vstack(&parts.iter().map(|p| p.1.clone()).collect::<Vec<_>>());
    let sf = DenseMatrix::vstack(&parts.iter().map(|p| p.2.clone()).collect::<Vec<_>>());
    let sb = DenseMatrix::vstack(&parts.iter().map(|p| p.3.clone()).collect::<Vec<_>>());
    debug_assert_eq!(xf.shape(), (n, k2));
    debug_assert_eq!(sf.shape(), (n, d));
    InitState { xf, xb, y, sf, sb }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn affinity_like(n: usize, d: usize, rank: usize, seed: u64) -> (DenseMatrix, DenseMatrix) {
        // Non-negative low-rank-ish matrices, like ln(1 + x) affinities.
        let mut rng = StdRng::seed_from_u64(seed);
        let u = DenseMatrix::uniform(n, rank, 0.0, 1.0, &mut rng);
        let v = DenseMatrix::uniform(d, rank, 0.0, 1.0, &mut rng);
        let f = u.matmul_transb(&v);
        let u2 = DenseMatrix::uniform(n, rank, 0.0, 1.0, &mut rng);
        let b = u2.matmul_transb(&v);
        (f, b)
    }

    #[test]
    fn greedy_init_residuals_consistent() {
        let (f, b) = affinity_like(40, 12, 6, 1);
        let opts = InitOptions {
            half_dim: 4,
            power_iters: 3,
            oversample: 4,
            seed: 9,
        };
        let st = greedy_init(&f, &b, &opts, 1);
        let (sf, sb) = st.fresh_residuals(&f, &b, 1);
        assert!(st.sf.max_abs_diff(&sf) < 1e-10);
        assert!(st.sb.max_abs_diff(&sb) < 1e-10);
    }

    #[test]
    fn greedy_init_beats_random_start() {
        let (f, b) = affinity_like(60, 20, 5, 2);
        let opts = InitOptions {
            half_dim: 5,
            power_iters: 3,
            oversample: 6,
            seed: 3,
        };
        let st = greedy_init(&f, &b, &opts, 1);
        let obj = st.sf.frob_norm_sq() + st.sb.frob_norm_sq();
        // Random init: Xf, Xb, Y gaussian — objective near ||F||² + ||B||²
        // plus noise energy; greedy must be far below that.
        let baseline = f.frob_norm_sq() + b.frob_norm_sq();
        assert!(
            obj < 0.2 * baseline,
            "greedy objective {obj} vs baseline {baseline}"
        );
    }

    /// Lemma 4.2 at t = ∞ (exact SVD path): X_f·Yᵀ = F', YᵀY = I, S_f = 0,
    /// S_b·Y = 0 — for both GreedyInit and SMGreedyInit.
    #[test]
    fn lemma_4_2_exact_svd() {
        let n = 30;
        let d = 6;
        let (f, b) = affinity_like(n, d, 6, 4);
        // half_dim = d forces the exact-SVD fallback inside rand_svd.
        let opts = InitOptions {
            half_dim: d,
            power_iters: 0,
            oversample: 0,
            seed: 5,
        };
        for (name, st) in [
            ("greedy", greedy_init(&f, &b, &opts, 1)),
            ("split-merge", sm_greedy_init(&f, &b, &opts, 3)),
        ] {
            let recon = st.xf.matmul_transb(&st.y);
            assert!(recon.max_abs_diff(&f) < 1e-8, "{name}: XfYᵀ != F'");
            assert!(st.y.is_orthonormal(1e-8), "{name}: Y not orthonormal");
            assert!(st.sf.frob_norm() < 1e-8, "{name}: Sf != 0");
            let sby = st.sb.matmul(&st.y);
            assert!(
                sby.frob_norm() < 1e-7,
                "{name}: SbY != 0 ({})",
                sby.frob_norm()
            );
        }
    }

    #[test]
    fn split_merge_close_to_serial() {
        let (f, b) = affinity_like(80, 16, 6, 6);
        let opts = InitOptions {
            half_dim: 6,
            power_iters: 4,
            oversample: 6,
            seed: 11,
        };
        let serial = greedy_init(&f, &b, &opts, 1);
        let par = sm_greedy_init(&f, &b, &opts, 4);
        // Embeddings differ (basis rotation), but the *objective value*
        // should be comparable: split-merge loses little.
        let o_serial = serial.sf.frob_norm_sq() + serial.sb.frob_norm_sq();
        let o_par = par.sf.frob_norm_sq() + par.sb.frob_norm_sq();
        let scale = f.frob_norm_sq() + b.frob_norm_sq();
        assert!(
            (o_par - o_serial) / scale < 0.05,
            "split-merge objective {o_par} much worse than serial {o_serial}"
        );
    }

    #[test]
    fn sm_residuals_consistent() {
        let (f, b) = affinity_like(50, 14, 5, 7);
        let opts = InitOptions {
            half_dim: 4,
            power_iters: 2,
            oversample: 4,
            seed: 1,
        };
        let st = sm_greedy_init(&f, &b, &opts, 3);
        let (sf, sb) = st.fresh_residuals(&f, &b, 2);
        assert!(st.sf.max_abs_diff(&sf) < 1e-10);
        assert!(st.sb.max_abs_diff(&sb) < 1e-10);
    }

    #[test]
    fn single_block_falls_back_to_serial() {
        let (f, b) = affinity_like(10, 5, 3, 8);
        let opts = InitOptions {
            half_dim: 3,
            power_iters: 2,
            oversample: 2,
            seed: 2,
        };
        let a = greedy_init(&f, &b, &opts, 1);
        let c = sm_greedy_init(&f, &b, &opts, 1);
        assert_eq!(a.xf, c.xf);
        assert_eq!(a.y, c.y);
    }
}
