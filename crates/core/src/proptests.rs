//! Cross-module property tests for the core pipeline, driven by random
//! SBM graphs (structure-heavy inputs rather than pure random matrices).

#![cfg(test)]

use crate::apmi::{apmi, ApmiInputs};
use crate::ccd::{ccd_sweeps, objective};
use crate::greedy_init::{greedy_init, InitOptions};
use crate::{Pane, PaneConfig};
use pane_graph::gen::{generate_sbm, SbmConfig};
use pane_graph::DanglingPolicy;
use proptest::prelude::*;

fn random_graph(seed: u64, nodes: usize) -> pane_graph::AttributedGraph {
    generate_sbm(&SbmConfig {
        nodes,
        communities: 3,
        avg_out_degree: 4.0,
        attributes: 12,
        attrs_per_node: 3.0,
        seed,
        ..Default::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// APMI outputs are finite, non-negative, bounded by ln(n+1)/ln(d+1),
    /// for arbitrary graphs, alphas and iteration counts.
    #[test]
    fn prop_apmi_outputs_well_formed(
        seed in 0u64..1000,
        nodes in 30usize..120,
        alpha in 0.1f64..0.9,
        t in 1usize..12,
    ) {
        let g = random_graph(seed, nodes);
        let p = g.random_walk_matrix(DanglingPolicy::SelfLoop);
        let pt = p.transpose();
        let rr = g.attr_row_normalized();
        let rc = g.attr_col_normalized();
        let aff = apmi(&ApmiInputs { p: &p, pt: &pt, rr: &rr, rc: &rc, alpha, t });
        let fmax = (g.num_nodes() as f64 + 1.0).ln();
        let bmax = (g.num_attributes() as f64 + 1.0).ln();
        for &v in aff.forward.data() {
            prop_assert!(v.is_finite() && v >= 0.0 && v <= fmax + 1e-9, "F entry {v}");
        }
        for &v in aff.backward.data() {
            prop_assert!(v.is_finite() && v >= 0.0 && v <= bmax + 1e-9, "B entry {v}");
        }
    }

    /// CCD never increases the objective, from greedy *or* degenerate
    /// starting points, serial or parallel.
    #[test]
    fn prop_ccd_monotone(seed in 0u64..1000, nb in 1usize..5, sweeps in 1usize..4) {
        let g = random_graph(seed, 60);
        let p = g.random_walk_matrix(DanglingPolicy::SelfLoop);
        let pt = p.transpose();
        let rr = g.attr_row_normalized();
        let rc = g.attr_col_normalized();
        let aff = apmi(&ApmiInputs { p: &p, pt: &pt, rr: &rr, rc: &rc, alpha: 0.5, t: 4 });
        let opts = InitOptions { half_dim: 4, power_iters: 2, oversample: 4, seed };
        let mut st = greedy_init(&aff.forward, &aff.backward, &opts, 1);
        let mut prev = objective(&st);
        for _ in 0..sweeps {
            ccd_sweeps(&mut st, 1, nb);
            let cur = objective(&st);
            prop_assert!(cur <= prev + 1e-9 * (1.0 + prev), "objective rose {prev} -> {cur}");
            prev = cur;
        }
    }

    /// End-to-end embedding is invariant to the thread count in shape and
    /// comparable in quality, for arbitrary graphs.
    #[test]
    fn prop_thread_count_is_quality_neutral(seed in 0u64..300) {
        let g = random_graph(seed, 80);
        let mk = |threads: usize| {
            Pane::new(
                PaneConfig::builder().dimension(8).threads(threads).seed(7).build(),
            )
            .embed(&g)
            .unwrap()
        };
        let a = mk(1);
        let b = mk(3);
        prop_assert_eq!(a.forward.shape(), b.forward.shape());
        let scale = 1.0 + a.objective.max(b.objective);
        prop_assert!((a.objective - b.objective).abs() / scale < 0.35,
            "serial {} vs parallel {}", a.objective, b.objective);
    }

    /// Attribute scores of owned attributes beat the per-node average score
    /// for most nodes — the learnability property every task depends on.
    #[test]
    fn prop_owned_attributes_score_high(seed in 0u64..300) {
        let g = random_graph(seed, 100);
        let emb = Pane::new(PaneConfig::builder().dimension(16).seed(3).build())
            .embed(&g)
            .unwrap();
        let d = g.num_attributes();
        let mut wins = 0usize;
        let mut trials = 0usize;
        for v in 0..g.num_nodes() {
            let (owned, _) = g.node_attributes(v);
            if owned.is_empty() {
                continue;
            }
            let mean: f64 = (0..d).map(|r| emb.attribute_score(v, r)).sum::<f64>() / d as f64;
            let owned_mean: f64 =
                owned.iter().map(|&r| emb.attribute_score(v, r as usize)).sum::<f64>() / owned.len() as f64;
            trials += 1;
            if owned_mean > mean {
                wins += 1;
            }
        }
        prop_assert!(trials > 0);
        prop_assert!(wins * 10 >= trials * 8, "owned attrs beat mean on only {wins}/{trials} nodes");
    }
}
