//! End-to-end tests of the `pane` binary: generate → stats → embed → topk.

use std::path::PathBuf;
use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    // Cargo-provided absolute path to the freshly built `pane` binary —
    // hermetic with respect to cwd, PATH, and target-dir layout.
    let out = Command::new(env!("CARGO_BIN_EXE_pane"))
        .args(args)
        .output()
        .expect("spawn pane");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn workdir(name: &str) -> PathBuf {
    // Cargo-owned scratch space (target/tmp), namespaced by pid so
    // concurrent `cargo test` invocations cannot collide.
    let d = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("pane_cli_{}_{name}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn full_workflow() {
    let dir = workdir("flow");
    let dir_s = dir.to_str().unwrap();

    // generate
    let (ok, _, err) = run(&[
        "generate",
        "--zoo",
        "cora-like",
        "--scale",
        "0.05",
        "--seed",
        "1",
        "--out-dir",
        dir_s,
    ]);
    assert!(ok, "generate failed: {err}");
    assert!(dir.join("edges.txt").exists());

    // stats
    let edges = dir.join("edges.txt");
    let attrs = dir.join("attributes.txt");
    let labels = dir.join("labels.txt");
    let (ok, out, err) = run(&[
        "stats",
        "--edges",
        edges.to_str().unwrap(),
        "--attrs",
        attrs.to_str().unwrap(),
        "--labels",
        labels.to_str().unwrap(),
    ]);
    assert!(ok, "stats failed: {err}");
    assert!(out.contains("|V|="), "stats output: {out}");
    assert!(out.contains("avg out-degree"));

    // embed (binary output)
    let emb = dir.join("emb.bin");
    let (ok, _, err) = run(&[
        "embed",
        "--edges",
        edges.to_str().unwrap(),
        "--attrs",
        attrs.to_str().unwrap(),
        "--dim",
        "16",
        "--threads",
        "2",
        "--output",
        emb.to_str().unwrap(),
    ]);
    assert!(ok, "embed failed: {err}");
    assert!(emb.exists());
    assert!(err.contains("objective"), "embed stderr: {err}");

    // topk over the saved embedding
    for mode in ["attrs", "links", "similar"] {
        let (ok, out, err) = run(&[
            "topk",
            "--embedding",
            emb.to_str().unwrap(),
            "--node",
            "0",
            "--k",
            "5",
            "--mode",
            mode,
        ]);
        assert!(ok, "topk {mode} failed: {err}");
        assert!(out.lines().count() >= 2, "topk {mode} output: {out}");
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn text_embedding_roundtrip() {
    let dir = workdir("text");
    let dir_s = dir.to_str().unwrap();
    run(&[
        "generate",
        "--zoo",
        "pubmed-like",
        "--scale",
        "0.01",
        "--seed",
        "2",
        "--out-dir",
        dir_s,
    ]);
    let emb = dir.join("emb.txt");
    let (ok, _, err) = run(&[
        "embed",
        "--edges",
        dir.join("edges.txt").to_str().unwrap(),
        "--attrs",
        dir.join("attributes.txt").to_str().unwrap(),
        "--dim",
        "8",
        "--output",
        emb.to_str().unwrap(),
        "--text",
    ]);
    assert!(ok, "text embed failed: {err}");
    let content = std::fs::read_to_string(&emb).unwrap();
    assert!(content.starts_with("# PANE embedding v1"));
    let (ok, out, err) = run(&[
        "topk",
        "--embedding",
        emb.to_str().unwrap(),
        "--text",
        "--node",
        "1",
    ]);
    assert!(ok, "topk over text failed: {err}");
    assert!(out.contains("top-10 attrs"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn index_build_and_search_flow() {
    let dir = workdir("index");
    let dir_s = dir.to_str().unwrap();
    run(&[
        "generate",
        "--zoo",
        "cora-like",
        "--scale",
        "0.05",
        "--seed",
        "4",
        "--out-dir",
        dir_s,
    ]);
    let emb = dir.join("emb.bin");
    let (ok, _, err) = run(&[
        "embed",
        "--edges",
        dir.join("edges.txt").to_str().unwrap(),
        "--attrs",
        dir.join("attributes.txt").to_str().unwrap(),
        "--dim",
        "16",
        "--output",
        emb.to_str().unwrap(),
    ]);
    assert!(ok, "embed failed: {err}");

    // Build one index per kind in the similar space, plus an ivf links one.
    for (kind, space) in [
        ("flat", "similar"),
        ("ivf", "similar"),
        ("hnsw", "similar"),
        ("ivf", "links"),
    ] {
        let idx = dir.join(format!("{kind}_{space}.idx"));
        let (ok, _, err) = run(&[
            "index",
            "build",
            "--embedding",
            emb.to_str().unwrap(),
            "--kind",
            kind,
            "--space",
            space,
            "--lists",
            "8",
            "--output",
            idx.to_str().unwrap(),
        ]);
        assert!(ok, "index build {kind}/{space} failed: {err}");
        assert!(idx.exists());

        // Single-node search.
        let (ok, out, err) = run(&[
            "index",
            "search",
            "--index",
            idx.to_str().unwrap(),
            "--embedding",
            emb.to_str().unwrap(),
            "--node",
            "0",
            "--k",
            "5",
        ]);
        assert!(ok, "index search {kind}/{space} failed: {err}");
        assert!(
            out.contains(&format!("top-5 {space} for node 0 ({kind} index):")),
            "unexpected search header for {kind}/{space}: {out}"
        );
        assert!(out.lines().count() >= 3, "too few hits: {out}");
        // The query node itself is never returned.
        assert!(!out.lines().any(|l| l.trim_start().starts_with("0 ")));
    }

    // Batched top-k path with a runtime ef override.
    let idx = dir.join("hnsw_similar.idx");
    let (ok, out, err) = run(&[
        "index",
        "search",
        "--index",
        idx.to_str().unwrap(),
        "--embedding",
        emb.to_str().unwrap(),
        "--nodes",
        "0,3,7",
        "--k",
        "4",
        "--ef",
        "32",
        "--threads",
        "2",
    ]);
    assert!(ok, "batched index search failed: {err}");
    for v in [0, 3, 7] {
        assert!(
            out.contains(&format!("for node {v} ")),
            "missing node {v}: {out}"
        );
    }

    // Runtime-knob misuse is a clean error, not a panic.
    let (ok, _, err) = run(&[
        "index",
        "search",
        "--index",
        idx.to_str().unwrap(),
        "--embedding",
        emb.to_str().unwrap(),
        "--node",
        "0",
        "--nprobe",
        "4",
    ]);
    assert!(!ok);
    assert!(
        err.contains("--nprobe only applies to ivf"),
        "stderr: {err}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn errors_are_reported() {
    // Unknown command.
    let (ok, _, err) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("unknown command"));

    // Missing required option.
    let (ok, _, err) = run(&["embed", "--dim", "8"]);
    assert!(!ok);
    assert!(err.contains("--edges"));

    // Bad zoo name lists the options.
    let dir = workdir("badzoo");
    let (ok, _, err) = run(&[
        "generate",
        "--zoo",
        "nope",
        "--out-dir",
        dir.to_str().unwrap(),
    ]);
    assert!(!ok);
    assert!(err.contains("cora-like"));
    std::fs::remove_dir_all(&dir).ok();

    // Nonexistent file.
    let (ok, _, err) = run(&["stats", "--edges", "/definitely/not/here.txt"]);
    assert!(!ok);
    assert!(err.contains("error"));
}

/// Regression: a corrupt binary graph (absurd declared node count, or a
/// truncated file) must exit with a clean `error:` message — historically
/// this path could panic or attempt a multi-GB allocation from the
/// declared header before reading a single row.
#[test]
fn corrupt_binary_graph_is_clean_error() {
    let dir = workdir("corrupt");

    // Header declaring u64::MAX nodes, then nothing else.
    let huge = dir.join("huge.bin");
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"PANEGRF1");
    bytes.extend_from_slice(&0u64.to_le_bytes()); // flags
    bytes.extend_from_slice(&u64::MAX.to_le_bytes()); // n
    bytes.extend_from_slice(&4u64.to_le_bytes()); // d
    bytes.extend_from_slice(&2u64.to_le_bytes()); // num_labels
    std::fs::write(&huge, &bytes).unwrap();

    // A real graph truncated mid-file.
    let trunc = dir.join("trunc.bin");
    run(&[
        "generate",
        "--zoo",
        "cora-like",
        "--scale",
        "0.05",
        "--seed",
        "9",
        "--out-dir",
        dir.to_str().unwrap(),
    ]);
    let (ok, _, err) = run(&[
        "convert",
        "--edges",
        dir.join("edges.txt").to_str().unwrap(),
        "--output",
        trunc.to_str().unwrap(),
    ]);
    assert!(ok, "convert failed: {err}");
    let full = std::fs::read(&trunc).unwrap();
    std::fs::write(&trunc, &full[..full.len() / 2]).unwrap();

    for bad in [&huge, &trunc] {
        let (ok, _, err) = run(&[
            "convert",
            "--binary",
            bad.to_str().unwrap(),
            "--output",
            dir.join("out").to_str().unwrap(),
        ]);
        assert!(!ok, "{bad:?} should fail");
        assert!(err.contains("error:"), "{bad:?} stderr: {err}");
        assert!(
            !err.to_lowercase().contains("panic"),
            "{bad:?} stderr: {err}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Regression: a malformed text graph is a clean error naming the line,
/// not a process abort. (The out-of-range-id-with-explicit-dimensions
/// path is library-only — the CLI always infers dimensions — and is
/// covered by `pane-graph`'s io tests.)
#[test]
fn malformed_text_graph_is_clean_error() {
    let dir = workdir("bad_text");
    std::fs::write(dir.join("bad.txt"), "0 1\n1 notanumber\n").unwrap();
    let (ok, _, err) = run(&["stats", "--edges", dir.join("bad.txt").to_str().unwrap()]);
    assert!(!ok);
    assert!(
        err.contains("error:") && err.contains("line 2"),
        "stderr: {err}"
    );
    // An id past the u32 index space drives the *inferred* dimension out
    // of range — clean error, no builder assert.
    std::fs::write(dir.join("huge.txt"), "0 4294967296\n").unwrap();
    let (ok, _, err) = run(&["stats", "--edges", dir.join("huge.txt").to_str().unwrap()]);
    assert!(!ok);
    assert!(
        err.contains("error:") && err.contains("u32 index space"),
        "stderr: {err}"
    );
    assert!(!err.to_lowercase().contains("panic"), "stderr: {err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn help_prints_commands() {
    let (ok, out, _) = run(&["help"]);
    assert!(ok);
    for cmd in ["embed", "generate", "stats", "topk"] {
        assert!(out.contains(cmd), "help missing {cmd}");
    }
}

#[test]
fn evaluate_and_convert_commands() {
    let dir = workdir("eval");
    let dir_s = dir.to_str().unwrap();
    run(&[
        "generate",
        "--zoo",
        "cora-like",
        "--scale",
        "0.06",
        "--seed",
        "3",
        "--out-dir",
        dir_s,
    ]);
    let edges = dir.join("edges.txt");
    let attrs = dir.join("attributes.txt");
    let labels = dir.join("labels.txt");

    // evaluate on the text graph
    let (ok, out, err) = run(&[
        "evaluate",
        "--edges",
        edges.to_str().unwrap(),
        "--attrs",
        attrs.to_str().unwrap(),
        "--labels",
        labels.to_str().unwrap(),
        "--dim",
        "16",
    ]);
    assert!(ok, "evaluate failed: {err}");
    assert!(out.contains("link prediction"), "evaluate output: {out}");
    assert!(out.contains("attribute inference"));

    // convert text -> binary and evaluate the binary
    let bin = dir.join("graph.bin");
    let (ok, _, err) = run(&[
        "convert",
        "--edges",
        edges.to_str().unwrap(),
        "--attrs",
        attrs.to_str().unwrap(),
        "--labels",
        labels.to_str().unwrap(),
        "--output",
        bin.to_str().unwrap(),
    ]);
    assert!(ok, "convert failed: {err}");
    assert!(bin.exists());
    let (ok, out, err) = run(&["evaluate", "--binary", bin.to_str().unwrap(), "--dim", "16"]);
    assert!(ok, "evaluate --binary failed: {err}");
    assert!(out.contains("micro-F1"), "binary evaluate output: {out}");

    // convert back to text
    let back = dir.join("back");
    let (ok, _, err) = run(&[
        "convert",
        "--binary",
        bin.to_str().unwrap(),
        "--output",
        back.to_str().unwrap(),
    ]);
    assert!(ok, "convert back failed: {err}");
    assert!(back.join("edges.txt").exists());

    std::fs::remove_dir_all(&dir).ok();
}

/// Generates a small graph, embeds it, and returns (workdir, embedding path).
fn serve_fixture(name: &str) -> (PathBuf, PathBuf) {
    let dir = workdir(name);
    let dir_s = dir.to_str().unwrap();
    run(&[
        "generate",
        "--zoo",
        "cora-like",
        "--scale",
        "0.05",
        "--seed",
        "6",
        "--out-dir",
        dir_s,
    ]);
    let emb = dir.join("emb.bin");
    let (ok, _, err) = run(&[
        "embed",
        "--edges",
        dir.join("edges.txt").to_str().unwrap(),
        "--attrs",
        dir.join("attributes.txt").to_str().unwrap(),
        "--dim",
        "16",
        "--output",
        emb.to_str().unwrap(),
    ]);
    assert!(ok, "embed failed: {err}");
    (dir, emb)
}

#[test]
fn serve_stdio_session_with_insert_and_compact() {
    use std::io::Write;
    let (dir, emb) = serve_fixture("serve_stdio");

    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_pane"))
        .args([
            "serve",
            "--embedding",
            emb.to_str().unwrap(),
            "--kind",
            "hnsw",
            "--threads",
            "2",
            "--stdio",
        ])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn pane serve");

    // k/2 = 8 for --dim 16.
    let half = "[0.1,0.2,0.3,0.4,0.5,0.6,0.7,0.8]";
    let insert = format!(r#"{{"op":"insert","forward":{half},"backward":{half}}}"#);
    let script = format!(
        "{}\n{}\n{}\n{}\n{}\n{}\n",
        r#"{"op":"stats"}"#,
        r#"{"op":"similar-nodes","nodes":[0,1,2],"k":5}"#,
        insert,
        r#"{"op":"recommend-links","nodes":[0],"k":3,"exclude":[1]}"#,
        r#"{"op":"compact"}"#,
        r#"{"op":"shutdown"}"#,
    );
    child
        .stdin
        .take()
        .unwrap()
        .write_all(script.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "serve exited nonzero: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 6, "one response per request: {stdout}");
    for l in &lines {
        assert!(l.contains("\"ok\":true"), "request failed: {l}");
    }
    // The insert got the next dense id (n for a 0.05-scale cora-like graph
    // is printed in stats; just check the id is echoed and compact folded 1).
    assert!(lines[2].contains("\"id\":"), "{}", lines[2]);
    assert!(lines[4].contains("\"folded\":1"), "{}", lines[4]);
    // Batched responses: three result arrays for three query nodes.
    assert!(lines[1].matches('[').count() >= 4, "{}", lines[1]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_tcp_daemon_shares_prebuilt_indexes() {
    use std::io::{BufRead, BufReader, Write};
    let (dir, emb) = serve_fixture("serve_tcp");

    // Build the index pair once; the daemon must serve it without rebuilding.
    let node_idx = dir.join("node.idx");
    let link_idx = dir.join("link.idx");
    for (space, path) in [("similar", &node_idx), ("links", &link_idx)] {
        let (ok, _, err) = run(&[
            "index",
            "build",
            "--embedding",
            emb.to_str().unwrap(),
            "--kind",
            "ivf",
            "--lists",
            "8",
            "--space",
            space,
            "--output",
            path.to_str().unwrap(),
        ]);
        assert!(ok, "index build {space} failed: {err}");
    }

    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_pane"))
        .args([
            "serve",
            "--embedding",
            emb.to_str().unwrap(),
            "--node-index",
            node_idx.to_str().unwrap(),
            "--link-index",
            link_idx.to_str().unwrap(),
            "--listen",
            "127.0.0.1:0",
        ])
        .stdin(std::process::Stdio::null())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn pane serve");

    // The daemon prints "listening on <addr>" once bound.
    let mut stderr = BufReader::new(child.stderr.take().unwrap());
    let addr = loop {
        let mut line = String::new();
        assert!(
            stderr.read_line(&mut line).unwrap() > 0,
            "serve exited before binding"
        );
        if let Some(rest) = line.trim().strip_prefix("listening on ") {
            break rest.to_string();
        }
    };

    let mut conn = std::net::TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let mut ask = |req: &str| -> String {
        conn.write_all(req.as_bytes()).unwrap();
        conn.write_all(b"\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line
    };
    let resp = ask(r#"{"op":"similar-nodes","nodes":[0],"k":4}"#);
    assert!(resp.contains("\"ok\":true"), "{resp}");
    let resp = ask(
        r#"{"op":"insert","forward":[0.1,0.2,0.3,0.4,0.5,0.6,0.7,0.8],"backward":[0.1,0.2,0.3,0.4,0.5,0.6,0.7,0.8]}"#,
    );
    assert!(resp.contains("\"ok\":true"), "{resp}");
    let id: usize = resp
        .split("\"id\":")
        .nth(1)
        .and_then(|s| s.trim_end_matches(['}', '\n']).parse().ok())
        .expect("insert echoes the assigned id");
    // The inserted node is immediately queryable — no rebuild happened.
    let resp = ask(&format!(r#"{{"op":"similar-nodes","nodes":[{id}],"k":3}}"#));
    assert!(resp.contains("\"ok\":true"), "{resp}");
    let resp = ask(r#"{"op":"stats"}"#);
    assert!(resp.contains("\"delta\":1"), "{resp}");
    let resp = ask(r#"{"op":"shutdown"}"#);
    assert!(resp.contains("\"ok\":true"), "{resp}");

    let status = child.wait().unwrap();
    assert!(status.success(), "daemon did not shut down cleanly");
    std::fs::remove_dir_all(&dir).ok();
}

/// The durable store lifecycle through the binary: init → serve with a
/// WAL-backed insert → hard stop (no shutdown, no snapshot) → restart
/// serves the insert → offline snapshot → restart boots generation 2
/// with an empty WAL. Also covers `store status` and `--two-pass`.
#[test]
fn store_lifecycle_survives_a_hard_stop() {
    use std::io::Write;
    let (dir, emb) = serve_fixture("store_cycle");
    let store = dir.join("store");
    let store_s = store.to_str().unwrap();

    let (ok, _, err) = run(&[
        "store",
        "init",
        "--embedding",
        emb.to_str().unwrap(),
        "--kind",
        "flat",
        "--dir",
        store_s,
    ]);
    assert!(ok, "store init failed: {err}");
    assert!(store.join("MANIFEST").exists());
    assert!(store.join("wal.log").exists());

    let (ok, out, err) = run(&["store", "status", "--dir", store_s]);
    assert!(ok, "store status failed: {err}");
    assert!(out.contains("generation 1"), "{out}");
    assert!(out.contains("wal records 0"), "{out}");

    // Refusing to clobber an existing store is a clean error.
    let (ok, _, err) = run(&[
        "store",
        "init",
        "--embedding",
        emb.to_str().unwrap(),
        "--dir",
        store_s,
    ]);
    assert!(!ok);
    assert!(err.contains("refusing"), "{err}");

    // Session 1: insert one node, then drop stdin WITHOUT a shutdown —
    // the daemon exits on EOF, and the WAL is the only record.
    let half = "[0.1,0.2,0.3,0.4,0.5,0.6,0.7,0.8]";
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_pane"))
        .args(["serve", "--store", store_s, "--stdio"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn pane serve");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(
            format!("{{\"op\":\"insert\",\"forward\":{half},\"backward\":{half}}}\n").as_bytes(),
        )
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"ok\":true"), "{stdout}");
    let id: usize = stdout
        .split("\"id\":")
        .nth(1)
        .and_then(|s| s.trim_end_matches(['}', '\n']).parse().ok())
        .expect("insert echoes the assigned id");

    let (ok, out, err) = run(&["store", "status", "--dir", store_s]);
    assert!(ok, "store status failed: {err}");
    assert!(out.contains("wal records 1"), "{out}");

    // Session 2: the acknowledged insert is replayed and queryable.
    let script = format!(
        "{{\"op\":\"stats\"}}\n{{\"op\":\"similar-nodes\",\"nodes\":[{id}],\"k\":3}}\n{{\"op\":\"shutdown\"}}\n"
    );
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_pane"))
        .args(["serve", "--store", store_s, "--stdio"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn pane serve");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(script.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3, "{stdout}");
    assert!(lines[0].contains("\"replayed\":1"), "{}", lines[0]);
    assert!(lines[0].contains("\"wal_records\":1"), "{}", lines[0]);
    assert!(lines[1].contains("\"ok\":true"), "{}", lines[1]);

    // Offline snapshot folds the WAL into generation 2.
    let (ok, _, err) = run(&["store", "snapshot", "--dir", store_s]);
    assert!(ok, "store snapshot failed: {err}");
    assert!(err.contains("generation 2"), "{err}");
    let (ok, out, _) = run(&["store", "status", "--dir", store_s]);
    assert!(ok);
    assert!(out.contains("generation 2"), "{out}");
    assert!(out.contains("wal records 0"), "{out}");

    std::fs::remove_dir_all(&dir).ok();
}

/// Sharded store through the binary: init --shards, status per shard,
/// serve --store over the sharded root.
#[test]
fn sharded_store_serves_through_the_binary() {
    use std::io::Write;
    let (dir, emb) = serve_fixture("store_sharded");
    let store = dir.join("shards");
    let store_s = store.to_str().unwrap();

    let (ok, _, err) = run(&[
        "store",
        "init",
        "--embedding",
        emb.to_str().unwrap(),
        "--kind",
        "flat",
        "--shards",
        "2",
        "--dir",
        store_s,
    ]);
    assert!(ok, "sharded init failed: {err}");
    assert!(store.join("shard-000").join("MANIFEST").exists());
    assert!(store.join("shard-001").join("MANIFEST").exists());

    let (ok, out, err) = run(&["store", "status", "--dir", store_s]);
    assert!(ok, "status failed: {err}");
    assert!(out.contains("sharded store: 2 shards"), "{out}");
    assert!(out.contains("shard 1"), "{out}");

    let script = concat!(
        "{\"op\":\"stats\"}\n",
        "{\"op\":\"similar-nodes\",\"nodes\":[0,1,2],\"k\":4}\n",
        "{\"op\":\"shutdown\"}\n",
    );
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_pane"))
        .args(["serve", "--store", store_s, "--threads", "2", "--stdio"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn pane serve");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(script.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3, "{stdout}");
    assert!(lines[0].contains("\"shards\":2"), "{}", lines[0]);
    for l in &lines {
        assert!(l.contains("\"ok\":true"), "{l}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The multi-daemon topology through the binary: one `pane serve`
/// daemon per shard directory behind `pane route --shards`, checked
/// against `pane route --store` (the spawn-less in-process mode) for
/// identical results.
#[test]
fn route_merges_shard_daemons_through_the_binary() {
    use std::io::{BufRead, BufReader, Write};
    let (dir, emb) = serve_fixture("route");
    let store = dir.join("shards");
    let store_s = store.to_str().unwrap();
    let (ok, _, err) = run(&[
        "store",
        "init",
        "--embedding",
        emb.to_str().unwrap(),
        "--kind",
        "flat",
        "--shards",
        "2",
        "--dir",
        store_s,
    ]);
    assert!(ok, "sharded init failed: {err}");

    let query = r#"{"op":"similar-nodes","nodes":[0,1,5],"k":4}"#;
    // The merged result list, stripped of router-only response fields,
    // for comparing the two modes byte-for-byte.
    fn results_fragment(line: &str) -> String {
        line.split("\"results\":")
            .nth(1)
            .unwrap_or_else(|| panic!("no results in {line}"))
            .trim_end()
            .trim_end_matches('}')
            .trim_end_matches(",\"degraded\":false")
            .to_string()
    }

    // Spawn-less mode first: it takes the store locks the shard daemons
    // will need, so this session must finish before they start.
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_pane"))
        .args(["route", "--store", store_s, "--stdio"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn pane route --store");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(format!("{query}\n{{\"op\":\"shutdown\"}}\n").as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "route --store failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let inprocess = results_fragment(stdout.lines().next().expect("one response"));

    // One daemon per shard directory.
    let spawn_daemon = |shard: &str| {
        let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_pane"))
            .args([
                "serve",
                "--store",
                store.join(shard).to_str().unwrap(),
                "--listen",
                "127.0.0.1:0",
            ])
            .stdin(std::process::Stdio::null())
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::piped())
            .spawn()
            .expect("spawn shard daemon");
        let mut stderr = BufReader::new(child.stderr.take().unwrap());
        let addr = loop {
            let mut line = String::new();
            assert!(
                stderr.read_line(&mut line).unwrap() > 0,
                "shard daemon exited before binding"
            );
            if let Some(rest) = line.trim().strip_prefix("listening on ") {
                break rest.to_string();
            }
        };
        (child, addr)
    };
    let (mut shard0, addr0) = spawn_daemon("shard-000");
    let (mut shard1, addr1) = spawn_daemon("shard-001");

    let mut router = std::process::Command::new(env!("CARGO_BIN_EXE_pane"))
        .args([
            "route",
            "--shards",
            &format!("{addr0},{addr1}"),
            "--listen",
            "127.0.0.1:0",
        ])
        .stdin(std::process::Stdio::null())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn pane route");
    let mut router_err = BufReader::new(router.stderr.take().unwrap());
    let router_addr = loop {
        let mut line = String::new();
        assert!(
            router_err.read_line(&mut line).unwrap() > 0,
            "router exited before binding"
        );
        if let Some(rest) = line.trim().strip_prefix("listening on ") {
            break rest.to_string();
        }
    };

    let mut conn = std::net::TcpStream::connect(&router_addr).unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let mut ask = |req: &str| -> String {
        conn.write_all(req.as_bytes()).unwrap();
        conn.write_all(b"\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line
    };
    let stats = ask(r#"{"op":"stats"}"#);
    assert!(stats.contains("\"router\":true"), "{stats}");
    assert!(stats.contains("\"shards\":2"), "{stats}");
    assert!(stats.contains("\"degraded\":false"), "{stats}");
    let n: usize = stats
        .split("\"nodes\":")
        .nth(1)
        .and_then(|s| s.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|s| s.parse().ok())
        .expect("stats carries the node total");

    let routed = ask(query);
    assert!(routed.contains("\"ok\":true"), "{routed}");
    assert_eq!(
        results_fragment(&routed),
        inprocess,
        "daemon-routed results diverged from the in-process merge"
    );

    // An insert routes to its owner daemon and gets the next global id.
    let half = "[0.1,0.2,0.3,0.4,0.5,0.6,0.7,0.8]";
    let resp = ask(&format!(
        r#"{{"op":"insert","forward":{half},"backward":{half}}}"#
    ));
    assert!(resp.contains("\"ok\":true"), "{resp}");
    assert!(resp.contains(&format!("\"id\":{n}")), "{resp}");

    let resp = ask(r#"{"op":"shutdown"}"#);
    assert!(resp.contains("\"ok\":true"), "{resp}");
    assert!(router.wait().unwrap().success(), "router exit");

    // Stop the shard daemons through their own protocol.
    for (child, addr) in [(&mut shard0, &addr0), (&mut shard1, &addr1)] {
        let mut conn = std::net::TcpStream::connect(addr).unwrap();
        conn.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
        let mut line = String::new();
        BufReader::new(conn).read_line(&mut line).unwrap();
        assert!(child.wait().unwrap().success(), "shard daemon exit");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The observability surface through the binary: `pane serve` with
/// `--log-json` + `--slow-query-ms`, instrumented `stats`, and the
/// `pane metrics` scrape subcommand in both text and JSON forms.
#[test]
fn serve_metrics_scrape_and_structured_log() {
    use std::io::{BufRead, BufReader, Write};
    let (dir, emb) = serve_fixture("metrics");
    let log = dir.join("serve-log.jsonl");

    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_pane"))
        .args([
            "serve",
            "--embedding",
            emb.to_str().unwrap(),
            "--kind",
            "flat",
            "--listen",
            "127.0.0.1:0",
            "--log-json",
            log.to_str().unwrap(),
            "--log-level",
            "info",
            "--slow-query-ms",
            "0",
        ])
        .stdin(std::process::Stdio::null())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn pane serve");
    let mut stderr = BufReader::new(child.stderr.take().unwrap());
    let addr = loop {
        let mut line = String::new();
        assert!(
            stderr.read_line(&mut line).unwrap() > 0,
            "serve exited before binding"
        );
        if let Some(rest) = line.trim().strip_prefix("listening on ") {
            break rest.to_string();
        }
    };

    let mut conn = std::net::TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let mut ask = |req: &str| -> String {
        conn.write_all(req.as_bytes()).unwrap();
        conn.write_all(b"\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line
    };
    let resp = ask(r#"{"op":"similar-nodes","nodes":[0,1],"k":3}"#);
    assert!(resp.contains("\"ok\":true"), "{resp}");
    // Instrumented stats: uptime and the running request total.
    let stats = ask(r#"{"op":"stats"}"#);
    assert!(stats.contains("\"uptime_secs\":"), "{stats}");
    assert!(stats.contains("\"requests_total\":1"), "{stats}");

    // Text scrape (the default): Prometheus exposition on stdout.
    let (ok, out, err) = run(&["metrics", "--addr", &addr]);
    assert!(ok, "pane metrics failed: {err}");
    assert!(
        out.contains(r#"pane_requests_total{op="similar-nodes"} 1"#),
        "scrape output: {out}"
    );
    assert!(out.contains("# TYPE pane_requests_total counter"), "{out}");
    assert!(out.contains("pane_request_seconds"), "{out}");

    // JSON scrape: one parseable object on stdout.
    let (ok, out, err) = run(&["metrics", "--addr", &addr, "--json"]);
    assert!(ok, "pane metrics --json failed: {err}");
    assert!(out.trim_start().starts_with('{'), "{out}");
    assert!(out.contains("\"counters\""), "{out}");
    assert!(out.contains("\"histograms\""), "{out}");

    let resp = ask(r#"{"op":"shutdown"}"#);
    assert!(resp.contains("\"ok\":true"), "{resp}");
    assert!(child.wait().unwrap().success());

    // The structured log recorded the boot event and the 0ms-threshold
    // slow-query entries, one JSON object per line.
    let logged = std::fs::read_to_string(&log).unwrap();
    assert!(
        logged.contains("\"event\":\"engine.boot\""),
        "log: {logged}"
    );
    assert!(logged.contains("\"event\":\"slow_query\""), "log: {logged}");
    for line in logged.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "log line: {line}"
        );
    }

    // Scraping a daemon that is gone is a clean error.
    let (ok, _, err) = run(&["metrics", "--addr", &addr, "--connect-timeout-ms", "200"]);
    assert!(!ok);
    assert!(err.contains("error:"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

/// `--two-pass` loads are accepted and bit-identical: embedding the same
/// graph in both modes produces byte-identical output files.
#[test]
fn two_pass_embed_matches_chunked() {
    let dir = workdir("two_pass");
    let dir_s = dir.to_str().unwrap();
    run(&[
        "generate",
        "--zoo",
        "cora-like",
        "--scale",
        "0.05",
        "--seed",
        "3",
        "--out-dir",
        dir_s,
    ]);
    let mut outs = Vec::new();
    for (name, extra) in [("a.bin", None), ("b.bin", Some("--two-pass"))] {
        let out = dir.join(name);
        let mut args = vec!["embed", "--edges"];
        let edges = dir.join("edges.txt");
        let attrs = dir.join("attributes.txt");
        args.push(edges.to_str().unwrap());
        args.push("--attrs");
        args.push(attrs.to_str().unwrap());
        args.extend(["--dim", "16", "--output"]);
        args.push(out.to_str().unwrap());
        if let Some(flag) = extra {
            args.push(flag);
        }
        let (ok, _, err) = run(&args);
        assert!(ok, "embed failed: {err}");
        outs.push(std::fs::read(&out).unwrap());
    }
    assert_eq!(outs[0], outs[1], "two-pass load changed the embedding");
    std::fs::remove_dir_all(&dir).ok();
}
