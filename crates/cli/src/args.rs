//! Minimal argument parser (no external dependencies).
//!
//! Supports `--flag`, `--key value` and positional arguments; unknown keys
//! are errors. Deliberately tiny — the CLI has four subcommands with a
//! handful of options each.

use std::collections::BTreeMap;

/// Parsed arguments: options by key, flags, and positionals in order.
#[derive(Debug, Default, Clone)]
pub struct Args {
    opts: BTreeMap<String, String>,
    flags: Vec<String>,
    positional: Vec<String>,
}

/// Parse error with the offending token.
#[derive(Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "argument error: {}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw tokens. `known_flags` take no value; every other
    /// `--key` consumes the next token as its value.
    pub fn parse<I: IntoIterator<Item = String>>(
        tokens: I,
        known_flags: &[&str],
    ) -> Result<Self, ArgError> {
        let mut out = Args::default();
        let mut it = tokens.into_iter().peekable();
        while let Some(tok) = it.next() {
            if let Some(key) = tok.strip_prefix("--") {
                if key.is_empty() {
                    return Err(ArgError("bare '--' is not supported".into()));
                }
                if known_flags.contains(&key) {
                    out.flags.push(key.to_string());
                } else {
                    let value = it
                        .next()
                        .ok_or_else(|| ArgError(format!("--{key} requires a value")))?;
                    if out.opts.insert(key.to_string(), value).is_some() {
                        return Err(ArgError(format!("--{key} given twice")));
                    }
                }
            } else {
                out.positional.push(tok);
            }
        }
        Ok(out)
    }

    /// String option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.opts.get(key).map(|s| s.as_str())
    }

    /// Required string option.
    pub fn require(&self, key: &str) -> Result<&str, ArgError> {
        self.get(key)
            .ok_or_else(|| ArgError(format!("--{key} is required")))
    }

    /// Typed option with default.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| ArgError(format!("--{key} {v}: {e}"))),
        }
    }

    /// Whether a flag was given.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// Positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// Errors if any option key outside `allowed` was provided.
    pub fn reject_unknown(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for key in self.opts.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(ArgError(format!("unknown option --{key}")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_mixed() {
        let a = Args::parse(
            toks("embed --edges e.txt --undirected -k ignored --dim 64"),
            &["undirected"],
        )
        .unwrap();
        assert_eq!(
            a.positional(),
            &["embed".to_string(), "-k".into(), "ignored".into()]
        );
        assert_eq!(a.get("edges"), Some("e.txt"));
        assert!(a.flag("undirected"));
        assert_eq!(a.get_parsed::<usize>("dim", 0).unwrap(), 64);
    }

    #[test]
    fn missing_value_is_error() {
        let err = Args::parse(toks("--edges"), &[]).unwrap_err();
        assert!(err.0.contains("requires a value"));
    }

    #[test]
    fn duplicate_key_is_error() {
        let err = Args::parse(toks("--k 1 --k 2"), &[]).unwrap_err();
        assert!(err.0.contains("twice"));
    }

    #[test]
    fn typed_defaults_and_errors() {
        let a = Args::parse(toks("--alpha 0.5"), &[]).unwrap();
        assert_eq!(a.get_parsed("alpha", 0.1).unwrap(), 0.5);
        assert_eq!(a.get_parsed("missing", 7usize).unwrap(), 7);
        let b = Args::parse(toks("--alpha abc"), &[]).unwrap();
        assert!(b.get_parsed::<f64>("alpha", 0.0).is_err());
    }

    #[test]
    fn unknown_rejected() {
        let a = Args::parse(toks("--good 1 --bad 2"), &[]).unwrap();
        assert!(a.reject_unknown(&["good"]).is_err());
        assert!(a.reject_unknown(&["good", "bad"]).is_ok());
    }

    #[test]
    fn require_reports_key() {
        let a = Args::parse(toks(""), &[]).unwrap();
        let err = a.require("edges").unwrap_err();
        assert!(err.0.contains("--edges"));
    }
}
