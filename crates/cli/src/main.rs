//! `pane` — command-line interface to the PANE reproduction.
//!
//! ```text
//! pane embed    --edges E.txt [--attrs A.txt] [--labels L.txt] [--undirected]
//!               [--dim 128] [--alpha 0.5] [--eps 0.015] [--threads 1]
//!               [--seed 0] --output EMB [--text]
//! pane generate --zoo cora-like [--scale 1.0] [--seed 42] --out-dir DIR
//! pane stats    --edges E.txt [--attrs A.txt] [--labels L.txt] [--undirected]
//! pane topk     --embedding EMB [--text] --node V [--k 10]
//!               [--mode attrs|links|similar]
//! pane index build  --embedding EMB [--text] [--kind flat|ivf|hnsw|sqflat]
//!                   [--space similar|links] [--lists 64] [--nprobe 8]
//!                   [--m 16] [--efc 100] [--ef 64] [--rerank 4]
//!                   [--seed 0] [--threads 1] --output IDX
//! pane index search --index IDX --embedding EMB [--text]
//!                   (--node V | --nodes V1,V2,…) [--k 10]
//!                   [--space similar|links] [--nprobe N] [--ef N] [--threads 1]
//! pane serve        (--store DIR | --embedding EMB [--text]
//!                    [--node-index IDX --link-index IDX]
//!                    [--kind flat|ivf|hnsw] [--lists 64] [--nprobe 8]
//!                    [--m 16] [--efc 100] [--ef 64] [--seed 0])
//!                   (--stdio | --listen ADDR) [--threads 1]
//!                   [--log-json PATH] [--log-level warn] [--slow-query-ms N]
//! pane route        (--shards ADDR,ADDR,… | --store ROOT [--threads 1])
//!                   (--stdio | --listen ADDR)
//!                   [--connect-timeout-ms 1000] [--request-timeout-ms 10000]
//!                   [--retries 2] [--probe-interval-ms 2000]
//!                   [--log-json PATH] [--log-level warn] [--slow-query-ms N]
//! pane metrics      --addr ADDR [--json]
//!                   [--connect-timeout-ms 1000] [--request-timeout-ms 10000]
//! pane bench serve  --addr ADDR [--qps 200] [--duration-ms 2000]
//!                   [--connections 4] [--mix q90/i10] [--skew uniform|zipf:1.1]
//!                   [--batch 4|1..16] [--k 10] [--seed 42] [--timeout-ms 5000]
//!                   [--knee] [--knee-factor 2] [--knee-steps 6]
//!                   [--knee-threshold 0.9]
//! pane store init     --embedding EMB [--text] --dir DIR [--shards N]
//!                     [--kind flat|ivf|hnsw|sqflat + build params]
//!                     [--format columnar|legacy] [--threads 1]
//! pane store snapshot --dir DIR [--threads 1]
//! pane store status   --dir DIR
//! pane store migrate  --dir DIR
//! ```
//!
//! Graph-loading commands (`embed`, `stats`, `evaluate`, `convert`)
//! accept `--two-pass` to re-parse the input files through the two-pass
//! counting sort instead of the chunked merge — bit-identical graphs,
//! lower peak memory on near-unique edge lists.

mod args;

use args::{ArgError, Args};
use pane_core::{EmbeddingQuery, Pane, PaneConfig};
use pane_datasets::DatasetZoo;
use pane_graph::io::{load_graph_with, LoadMode};
use pane_index::{
    AnyIndex, FlatIndex, HnswConfig, HnswIndex, IvfConfig, IvfIndex, Metric, VectorIndex,
};
use pane_linalg::DenseMatrix;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() || raw[0] == "--help" || raw[0] == "help" {
        print_help();
        return ExitCode::SUCCESS;
    }
    let cmd = raw.remove(0);
    let result = match cmd.as_str() {
        "embed" => cmd_embed(raw),
        "generate" => cmd_generate(raw),
        "stats" => cmd_stats(raw),
        "topk" => cmd_topk(raw),
        "index" => cmd_index(raw),
        "serve" => cmd_serve(raw),
        "route" => cmd_route(raw),
        "metrics" => cmd_metrics(raw),
        "bench" => cmd_bench(raw),
        "store" => cmd_store(raw),
        "evaluate" => cmd_evaluate(raw),
        "convert" => cmd_convert(raw),
        other => Err(format!("unknown command '{other}' (try `pane help`)").into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn print_help() {
    println!(
        "pane — scalable attributed network embedding (PANE, VLDB 2020 reproduction)\n\n\
         commands:\n\
           embed     embed a graph given as text files, write the embedding\n\
           generate  generate a synthetic dataset from the zoo\n\
           stats     print Table-3-style statistics of a graph\n\
           topk      query a saved embedding (top attributes / links / similar nodes)\n\
           index     build / search an ANN index over a saved embedding (flat / ivf / hnsw)\n\
           serve     run the shared-index serving daemon (JSON-lines over TCP or stdio)\n\
           route     run the merging query router over shard daemons (same protocol)\n\
           metrics   scrape a live serve/route endpoint's metrics (Prometheus text or JSON)\n\
           bench     drive a live serve/route endpoint with open-loop load (saturation search)\n\
           store     manage durable store directories (init / snapshot / status / migrate)\n\
           evaluate  run the three-task quality report on a graph\n\
           convert   convert a text graph to the fast binary format (or back)\n\n\
         run `pane <command>` with no options to see its usage in the error message."
    );
}

fn load_from_args(a: &Args) -> Result<pane_graph::AttributedGraph, Box<dyn std::error::Error>> {
    let edges = PathBuf::from(a.require("edges")?);
    let attrs = a.get("attrs").map(PathBuf::from);
    let labels = a.get("labels").map(PathBuf::from);
    let mode = if a.flag("two-pass") {
        LoadMode::TwoPass
    } else {
        LoadMode::Chunked
    };
    let g = load_graph_with(
        &edges,
        attrs.as_deref(),
        labels.as_deref(),
        None,
        None,
        a.flag("undirected"),
        mode,
    )?;
    Ok(g)
}

fn reject_positionals(a: &Args) -> Result<(), ArgError> {
    if let Some(extra) = a.positional().first() {
        return Err(ArgError(format!("unexpected argument '{extra}'")));
    }
    Ok(())
}

fn cmd_embed(raw: Vec<String>) -> CliResult {
    let a = Args::parse(raw, &["undirected", "text", "two-pass"])?;
    reject_positionals(&a)?;
    a.reject_unknown(&[
        "edges", "attrs", "labels", "dim", "alpha", "eps", "threads", "seed", "output",
    ])?;
    let g = load_from_args(&a)?;
    eprintln!("loaded graph: {}", g.stats());

    let config = PaneConfig::builder()
        .dimension(a.get_parsed("dim", 128usize)?)
        .alpha(a.get_parsed("alpha", 0.5f64)?)
        .error_threshold(a.get_parsed("eps", 0.015f64)?)
        .threads(a.get_parsed("threads", 1usize)?)
        .seed(a.get_parsed("seed", 0u64)?)
        .try_build()?;
    let output = PathBuf::from(a.require("output")?);

    let emb = Pane::new(config).embed(&g)?;
    eprintln!(
        "embedded in {:.2}s (affinity {:.2}s, init {:.2}s, ccd {:.2}s); objective {:.3e}",
        emb.timings.total_secs(),
        emb.timings.affinity_secs,
        emb.timings.init_secs,
        emb.timings.ccd_secs,
        emb.objective
    );
    if a.flag("text") {
        pane_core::save_text(&emb, &output)?;
    } else {
        pane_core::save_binary(&emb, &output)?;
    }
    eprintln!("wrote {}", output.display());
    Ok(())
}

fn cmd_generate(raw: Vec<String>) -> CliResult {
    let a = Args::parse(raw, &[])?;
    reject_positionals(&a)?;
    a.reject_unknown(&["zoo", "scale", "seed", "out-dir"])?;
    let name = a.require("zoo")?;
    let zoo = DatasetZoo::ALL
        .into_iter()
        .find(|z| z.name() == name)
        .ok_or_else(|| {
            let names: Vec<&str> = DatasetZoo::ALL.iter().map(|z| z.name()).collect();
            ArgError(format!(
                "unknown zoo entry '{name}'; options: {}",
                names.join(", ")
            ))
        })?;
    let scale = a.get_parsed("scale", 1.0f64)?;
    let seed = a.get_parsed("seed", 42u64)?;
    let dir = PathBuf::from(a.require("out-dir")?);
    std::fs::create_dir_all(&dir)?;

    let ds = zoo.generate_scaled(scale, seed);
    eprintln!("generated {}: {}", zoo.name(), ds.graph.stats());
    pane_graph::io::save_graph(
        &ds.graph,
        &dir.join("edges.txt"),
        &dir.join("attributes.txt"),
        &dir.join("labels.txt"),
    )?;
    eprintln!(
        "wrote edges.txt, attributes.txt, labels.txt under {}",
        dir.display()
    );
    Ok(())
}

fn cmd_stats(raw: Vec<String>) -> CliResult {
    let a = Args::parse(raw, &["undirected", "two-pass"])?;
    reject_positionals(&a)?;
    a.reject_unknown(&["edges", "attrs", "labels"])?;
    let g = load_from_args(&a)?;
    let s = g.stats();
    println!("{s}");
    // Extra diagnostics beyond Table 3.
    let n = g.num_nodes().max(1);
    let dangling = (0..g.num_nodes()).filter(|&v| g.out_degree(v) == 0).count();
    let attributed = (0..g.num_nodes())
        .filter(|&v| !g.node_attributes(v).0.is_empty())
        .count();
    println!("avg out-degree: {:.2}", g.num_edges() as f64 / n as f64);
    println!(
        "dangling nodes: {dangling} ({:.1}%)",
        100.0 * dangling as f64 / n as f64
    );
    println!(
        "attributed nodes: {attributed} ({:.1}%)",
        100.0 * attributed as f64 / n as f64
    );
    println!(
        "avg attributes per node: {:.2}",
        g.num_attribute_entries() as f64 / n as f64
    );
    let deg = pane_graph::analysis::degree_stats(&g);
    println!(
        "out-degree min/median/max: {}/{}/{} (top-1% share {:.1}%)",
        deg.min,
        deg.median,
        deg.max,
        deg.top1pct_share * 100.0
    );
    println!(
        "largest weakly connected component: {:.1}%",
        pane_graph::analysis::largest_component_fraction(&g) * 100.0
    );
    Ok(())
}

fn cmd_evaluate(raw: Vec<String>) -> CliResult {
    let a = Args::parse(raw, &["undirected", "two-pass"])?;
    reject_positionals(&a)?;
    a.reject_unknown(&[
        "edges", "attrs", "labels", "dim", "alpha", "eps", "threads", "seed", "binary",
    ])?;
    let g = if let Some(bin) = a.get("binary") {
        pane_graph::io_binary::load_graph_binary(std::path::Path::new(bin))?
    } else {
        load_from_args(&a)?
    };
    eprintln!("loaded graph: {}", g.stats());
    let config = PaneConfig::builder()
        .dimension(a.get_parsed("dim", 64usize)?)
        .alpha(a.get_parsed("alpha", 0.5f64)?)
        .error_threshold(a.get_parsed("eps", 0.015f64)?)
        .threads(a.get_parsed("threads", 1usize)?)
        .seed(a.get_parsed("seed", 0u64)?)
        .try_build()?;
    let card = pane_eval::report_card(&g, &pane_eval::ReportOptions::default(), |residual| {
        Pane::new(config.clone())
            .embed(residual)
            .expect("embedding failed")
    });
    println!("{card}");
    Ok(())
}

fn cmd_convert(raw: Vec<String>) -> CliResult {
    let a = Args::parse(raw, &["undirected", "two-pass"])?;
    reject_positionals(&a)?;
    a.reject_unknown(&["edges", "attrs", "labels", "output", "binary"])?;
    let out = PathBuf::from(a.require("output")?);
    if let Some(bin) = a.get("binary") {
        // binary -> text triple (output is a directory)
        let g = pane_graph::io_binary::load_graph_binary(std::path::Path::new(bin))?;
        std::fs::create_dir_all(&out)?;
        pane_graph::io::save_graph(
            &g,
            &out.join("edges.txt"),
            &out.join("attributes.txt"),
            &out.join("labels.txt"),
        )?;
        eprintln!("wrote text graph under {}", out.display());
    } else {
        // text -> binary
        let g = load_from_args(&a)?;
        pane_graph::io_binary::save_graph_binary(&g, &out)?;
        eprintln!("wrote binary graph {} ({})", out.display(), g.stats());
    }
    Ok(())
}

fn cmd_topk(raw: Vec<String>) -> CliResult {
    let a = Args::parse(raw, &["text"])?;
    reject_positionals(&a)?;
    a.reject_unknown(&["embedding", "node", "k", "mode"])?;
    let emb = load_embedding_from_args(&a)?;
    let node: usize = a.get_parsed("node", 0usize)?;
    if node >= emb.forward.rows() {
        return Err(format!("node {node} out of range (n = {})", emb.forward.rows()).into());
    }
    let k: usize = a.get_parsed("k", 10usize)?;
    let mode = a.get("mode").unwrap_or("attrs");
    let q = EmbeddingQuery::new(&emb);
    let results = match mode {
        "attrs" => q.top_attributes(node, k),
        "links" => q.recommend_links(node, k, &[]),
        "similar" => q.similar_nodes(node, k),
        other => return Err(format!("unknown mode '{other}' (attrs|links|similar)").into()),
    };
    println!("top-{k} {mode} for node {node}:");
    for s in results {
        println!("  {} {:.4}", s.index, s.score);
    }
    Ok(())
}

fn load_embedding_from_args(
    a: &Args,
) -> Result<pane_core::PaneEmbedding, Box<dyn std::error::Error>> {
    let path = PathBuf::from(a.require("embedding")?);
    Ok(if a.flag("text") {
        pane_core::load_text(&path)?
    } else {
        pane_core::load_binary(&path)?
    })
}

fn cmd_index(mut raw: Vec<String>) -> CliResult {
    if raw.is_empty() {
        return Err("index requires a subcommand: build | search".into());
    }
    let sub = raw.remove(0);
    match sub.as_str() {
        "build" => cmd_index_build(raw),
        "search" => cmd_index_search(raw),
        other => Err(format!("unknown index subcommand '{other}' (build|search)").into()),
    }
}

/// The vectors an index serves for a given query space: classifier
/// features for `similar` (their dot is the unified `cos_f + cos_b`
/// score — the halves are unit or zero), raw `X_b` rows for `links`
/// (Eq. 22 scores are `q · X_b[dst]`). Both are max-inner-product
/// searches; the spaces are distinguished by dimensionality (`k` vs
/// `k/2`), not metric.
fn space_vectors(
    emb: &pane_core::PaneEmbedding,
    space: &str,
) -> Result<(DenseMatrix, Metric), Box<dyn std::error::Error>> {
    match space {
        "similar" => Ok((emb.classifier_feature_matrix(), Metric::InnerProduct)),
        "links" => Ok((emb.backward.clone(), Metric::InnerProduct)),
        other => Err(format!("unknown space '{other}' (similar|links)").into()),
    }
}

fn cmd_index_build(raw: Vec<String>) -> CliResult {
    let a = Args::parse(raw, &["text"])?;
    reject_positionals(&a)?;
    a.reject_unknown(&[
        "embedding",
        "kind",
        "space",
        "lists",
        "nprobe",
        "iters",
        "m",
        "efc",
        "ef",
        "rerank",
        "seed",
        "threads",
        "output",
    ])?;
    let emb = load_embedding_from_args(&a)?;
    let output = PathBuf::from(a.require("output")?);
    let space = a.get("space").unwrap_or("similar");
    let (vectors, metric) = space_vectors(&emb, space)?;
    let kind = a.get("kind").unwrap_or("hnsw");
    let t0 = std::time::Instant::now();
    let index: AnyIndex = match kind {
        "flat" => AnyIndex::Flat(FlatIndex::build(&vectors, metric)),
        "ivf" => AnyIndex::Ivf(IvfIndex::build(
            &vectors,
            metric,
            &IvfConfig {
                nlist: a.get_parsed("lists", 64usize)?,
                nprobe: a.get_parsed("nprobe", 8usize)?,
                train_iters: a.get_parsed("iters", 10usize)?,
                seed: a.get_parsed("seed", 0u64)?,
                threads: a.get_parsed("threads", 1usize)?,
            },
        )),
        "hnsw" => AnyIndex::Hnsw(HnswIndex::build(
            &vectors,
            metric,
            &HnswConfig {
                m: a.get_parsed("m", 16usize)?,
                ef_construction: a.get_parsed("efc", 100usize)?,
                ef_search: a.get_parsed("ef", 64usize)?,
                seed: a.get_parsed("seed", 0u64)?,
            },
        )),
        "sqflat" => AnyIndex::SqFlat(pane_index::SqFlatIndex::build(
            &vectors,
            metric,
            pane_index::SqConfig {
                rerank: a.get_parsed("rerank", pane_index::SqConfig::default().rerank)?,
            },
        )),
        other => return Err(format!("unknown index kind '{other}' (flat|ivf|hnsw|sqflat)").into()),
    };
    index.save(&output)?;
    eprintln!(
        "built {kind} index over {} {space}-space vectors (dim {}) in {:.2}s",
        index.len(),
        index.dim(),
        t0.elapsed().as_secs_f64()
    );
    eprintln!("wrote {}", output.display());
    Ok(())
}

fn cmd_index_search(raw: Vec<String>) -> CliResult {
    let a = Args::parse(raw, &["text"])?;
    reject_positionals(&a)?;
    a.reject_unknown(&[
        "index",
        "embedding",
        "node",
        "nodes",
        "k",
        "space",
        "nprobe",
        "ef",
        "threads",
    ])?;
    let mut index = pane_index::load_index(std::path::Path::new(a.require("index")?))?;
    if let Some(np) = a.get("nprobe") {
        let np: usize = np.parse().map_err(|e| format!("--nprobe: {e}"))?;
        if !index.set_nprobe(np) {
            return Err("--nprobe only applies to ivf indexes".into());
        }
    }
    if let Some(ef) = a.get("ef") {
        let ef: usize = ef.parse().map_err(|e| format!("--ef: {e}"))?;
        if !index.set_ef_search(ef) {
            return Err("--ef only applies to hnsw indexes".into());
        }
    }
    let emb = load_embedding_from_args(&a)?;
    let n = emb.forward.rows();
    let nodes: Vec<usize> = match (a.get("node"), a.get("nodes")) {
        (Some(_), Some(_)) => return Err("give either --node or --nodes, not both".into()),
        (Some(v), None) => vec![v.parse().map_err(|e| format!("--node: {e}"))?],
        (None, Some(list)) => list
            .split(',')
            .map(|t| {
                t.trim()
                    .parse::<usize>()
                    .map_err(|e| format!("--nodes '{t}': {e}"))
            })
            .collect::<Result<_, _>>()?,
        (None, None) => return Err("--node or --nodes is required".into()),
    };
    if let Some(&bad) = nodes.iter().find(|&&v| v >= n) {
        return Err(format!("node {bad} out of range (n = {n})").into());
    }
    let k: usize = a.get_parsed("k", 10usize)?;
    let threads: usize = a.get_parsed("threads", 1usize)?;

    // The index dimensionality tells us which query space it was built
    // for: similar-space indexes hold the k-dim `[X_f ‖ X_b]` features,
    // link-space indexes the k/2-dim `X_b` rows — queries are classifier
    // features vs link query vectors q = X_f[v]·YᵀY (only that arm pays
    // for the Gram matrix behind EmbeddingQuery). Both spaces serve
    // max-inner-product, so the metric cannot distinguish them; an
    // explicit --space overrides the inference (dim agreement is then
    // *checked*, catching an index built from a different embedding).
    let k2 = emb.forward.cols();
    let space = match a.get("space") {
        Some(s @ ("similar" | "links")) => s,
        Some(other) => return Err(format!("unknown space '{other}' (similar|links)").into()),
        None if index.dim() == 2 * k2 => "similar",
        None if index.dim() == k2 => "links",
        None => {
            return Err(format!(
                "embedding/index mismatch: index holds dim {}, embedding implies {} (similar) or {} (links)",
                index.dim(),
                2 * k2,
                k2
            )
            .into())
        }
    };
    let want_dim = if space == "similar" { 2 * k2 } else { k2 };
    if index.dim() != want_dim {
        return Err(format!(
            "embedding/index mismatch: {space}-space queries have dim {want_dim}, index holds dim {}",
            index.dim()
        )
        .into());
    }
    let queries: Vec<Vec<f64>> = if space == "similar" {
        nodes.iter().map(|&v| emb.classifier_features(v)).collect()
    } else {
        let query = EmbeddingQuery::new(&emb);
        nodes.iter().map(|&v| query.link_query_vector(v)).collect()
    };
    let qmat = DenseMatrix::from_rows(&queries);
    // Oversample by one so the self-hit can be dropped.
    let batched = index.batch_search(&qmat, k + 1, threads);
    for (&v, hits) in nodes.iter().zip(&batched) {
        println!("top-{k} {space} for node {v} ({} index):", index.kind());
        for h in hits.iter().filter(|h| h.index != v).take(k) {
            println!("  {} {:.4}", h.index, h.score);
        }
    }
    Ok(())
}

/// Parses `--kind` + build parameters into a `pane_index::IndexSpec` recipe.
fn spec_from_args(a: &Args) -> Result<pane_index::IndexSpec, Box<dyn std::error::Error>> {
    Ok(match a.get("kind").unwrap_or("hnsw") {
        "flat" => pane_index::IndexSpec::Flat,
        "ivf" => pane_index::IndexSpec::Ivf(IvfConfig {
            nlist: a.get_parsed("lists", 64usize)?,
            nprobe: a.get_parsed("nprobe", 8usize)?,
            train_iters: a.get_parsed("iters", 10usize)?,
            seed: a.get_parsed("seed", 0u64)?,
            threads: 1,
        }),
        "hnsw" => pane_index::IndexSpec::Hnsw(HnswConfig {
            m: a.get_parsed("m", 16usize)?,
            ef_construction: a.get_parsed("efc", 100usize)?,
            ef_search: a.get_parsed("ef", 64usize)?,
            seed: a.get_parsed("seed", 0u64)?,
        }),
        "sqflat" => pane_index::IndexSpec::SqFlat(pane_index::SqConfig {
            rerank: a.get_parsed("rerank", pane_index::SqConfig::default().rerank)?,
        }),
        other => return Err(format!("unknown index kind '{other}' (flat|ivf|hnsw|sqflat)").into()),
    })
}

/// Builds the structured tracer shared by `pane serve` and `pane route`
/// from `--log-json PATH` (JSON-lines file; default stderr),
/// `--log-level error|warn|info|debug|off` (default `warn`) and
/// `--slow-query-ms N` (off unless given).
fn tracer_from_args(a: &Args) -> Result<pane_obs::Tracer, Box<dyn std::error::Error>> {
    use pane_obs::{Level, Tracer};
    let slow = a
        .get("slow-query-ms")
        .map(|v| {
            v.parse::<u64>()
                .map_err(|e| format!("--slow-query-ms: {e}"))
        })
        .transpose()?
        .map(std::time::Duration::from_millis);
    let spec = a.get("log-level").unwrap_or("warn");
    let tracer = if spec == "off" {
        Tracer::disabled()
    } else {
        let level = Level::parse(spec)
            .ok_or_else(|| format!("unknown log level '{spec}' (error|warn|info|debug|off)"))?;
        match a.get("log-json") {
            Some(path) => Tracer::to_file(std::path::Path::new(path), level)
                .map_err(|e| format!("--log-json {path}: {e}"))?,
            None => Tracer::to_stderr(level),
        }
    };
    Ok(tracer.with_slow_query(slow))
}

/// Runs the selected transport over any JSON-lines endpoint — an engine
/// behind a lock or the query router.
fn run_transport<H: pane_serve::LineHandler + 'static>(handler: H, a: &Args) -> CliResult {
    match (a.flag("stdio"), a.get("listen")) {
        (true, None) => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            pane_serve::serve_lines(&handler, stdin.lock(), stdout.lock())?;
            Ok(())
        }
        (false, Some(addr)) => {
            let listener = std::net::TcpListener::bind(addr)
                .map_err(|e| format!("cannot listen on {addr}: {e}"))?;
            // Tests and scripts parse this line to find an OS-assigned port.
            eprintln!("listening on {}", listener.local_addr()?);
            pane_serve::serve_tcp(std::sync::Arc::new(handler), listener)?;
            Ok(())
        }
        _ => Err("give exactly one transport: --stdio or --listen ADDR".into()),
    }
}

/// Runs the selected transport over any engine (single or sharded),
/// instrumented: per-op metrics, the `metrics` protocol op, structured
/// boot/snapshot events and the slow-query log all come from the
/// [`pane_serve::ObservedHandler`] wrapper.
fn run_serve_transport<B: pane_serve::ServeBackend + 'static>(engine: B, a: &Args) -> CliResult {
    let obs = std::sync::Arc::new(pane_serve::ServeObs::new(tracer_from_args(a)?));
    run_transport(pane_serve::ObservedHandler::new(engine, obs), a)
}

fn cmd_serve(raw: Vec<String>) -> CliResult {
    use pane_serve::ServeBackend;
    let a = Args::parse(raw, &["text", "stdio"])?;
    reject_positionals(&a)?;
    a.reject_unknown(&[
        "embedding",
        "store",
        "node-index",
        "link-index",
        "kind",
        "lists",
        "nprobe",
        "iters",
        "m",
        "efc",
        "ef",
        "rerank",
        "seed",
        "threads",
        "listen",
        "log-json",
        "log-level",
        "slow-query-ms",
    ])?;
    let threads: usize = a.get_parsed("threads", 1usize)?;

    // Durable mode: a store directory (single or sharded) created by
    // `pane store init`. Inserts are WAL-backed, `snapshot` works, and a
    // restart replays everything acknowledged since the last snapshot.
    if let Some(store_dir) = a.get("store") {
        if a.get("embedding").is_some() || a.get("node-index").is_some() {
            return Err("--store replaces --embedding/--node-index/--link-index".into());
        }
        let dir = std::path::Path::new(store_dir);
        return match pane_store::ShardedStore::shard_count(dir)? {
            Some(shards) => {
                let engine = pane_serve::ShardedEngine::open(dir, threads)?;
                let st = engine.status();
                eprintln!(
                    "serving {} nodes across {shards} shards (k/2 = {}, {} threads; \
                     generation {}, replayed {} WAL records)",
                    st.nodes,
                    st.half_dim,
                    threads,
                    st.store.map(|s| s.generation).unwrap_or(0),
                    st.store.map(|s| s.replayed).unwrap_or(0),
                );
                run_serve_transport(engine, &a)
            }
            None => {
                let engine = pane_serve::ServeEngine::open(dir, threads)?;
                let st = engine.status();
                eprintln!(
                    "serving {} nodes (k/2 = {}, {} threads; generation {}, \
                     replayed {} WAL records)",
                    st.nodes,
                    st.half_dim,
                    threads,
                    st.store.map(|s| s.generation).unwrap_or(0),
                    st.store.map(|s| s.replayed).unwrap_or(0),
                );
                run_serve_transport(engine, &a)
            }
        };
    }

    let emb = load_embedding_from_args(&a)?;
    let engine = match (a.get("node-index"), a.get("link-index")) {
        (Some(node), Some(link)) => {
            // Serve prebuilt PANEIDX1 files — the shared-index path: the
            // daemon loads them once, every client shares the load cost.
            let node_base = pane_index::load_index(std::path::Path::new(node))?;
            let link_base = pane_index::load_index(std::path::Path::new(link))?;
            pane_serve::ServeEngine::new(emb, node_base, link_base, threads)?
        }
        (None, None) => {
            let spec = spec_from_args(&a)?;
            let t0 = std::time::Instant::now();
            let engine = pane_serve::ServeEngine::build(emb, &spec, threads);
            eprintln!(
                "built {} node+link indexes over {} nodes in {:.2}s",
                spec.kind_name(),
                engine.num_nodes(),
                t0.elapsed().as_secs_f64()
            );
            engine
        }
        _ => return Err("give both --node-index and --link-index, or neither".into()),
    };
    eprintln!(
        "serving {} nodes (k/2 = {}, {} threads; ephemeral — inserts are lost on exit, \
         use `pane store init` + `--store` for durability)",
        engine.num_nodes(),
        engine.half_dim(),
        engine.threads()
    );
    run_serve_transport(engine, &a)
}

fn cmd_route(raw: Vec<String>) -> CliResult {
    let a = Args::parse(raw, &["stdio"])?;
    reject_positionals(&a)?;
    a.reject_unknown(&[
        "shards",
        "store",
        "threads",
        "listen",
        "connect-timeout-ms",
        "request-timeout-ms",
        "retries",
        "probe-interval-ms",
        "log-json",
        "log-level",
        "slow-query-ms",
    ])?;
    match (a.get("shards"), a.get("store")) {
        (Some(_), Some(_)) => Err("give --shards or --store, not both".into()),
        (Some(list), None) => {
            // Multi-daemon mode: one `pane serve --store shard-<s>/`
            // daemon per address, in shard order.
            let addrs: Vec<String> = list
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            if addrs.is_empty() {
                return Err("--shards needs at least one address".into());
            }
            let ms = std::time::Duration::from_millis;
            let config = pane_serve::ClientConfig {
                connect_timeout: ms(a.get_parsed("connect-timeout-ms", 1_000u64)?),
                request_timeout: ms(a.get_parsed("request-timeout-ms", 10_000u64)?),
                retries: a.get_parsed("retries", 2usize)?,
                probe_interval: ms(a.get_parsed("probe-interval-ms", 2_000u64)?),
                ..Default::default()
            };
            let obs = std::sync::Arc::new(pane_serve::ServeObs::for_router(tracer_from_args(&a)?));
            let router = pane_serve::Router::connect_with(&addrs, config, obs)?;
            eprintln!(
                "routing over {} shard daemons: {}",
                router.num_shards(),
                addrs.join(", ")
            );
            run_transport(router, &a)
        }
        (None, Some(dir)) => {
            // Spawn-less mode: serve the sharded root in-process — same
            // protocol and results, no daemons to manage. The scale-out
            // path later replaces this with --shards without touching
            // clients.
            use pane_serve::ServeBackend;
            let threads: usize = a.get_parsed("threads", 1usize)?;
            let dir = std::path::Path::new(dir);
            let Some(shards) = pane_store::ShardedStore::shard_count(dir)? else {
                return Err("--store must point at a sharded root (shard-000/, …); \
                     use `pane serve --store` for a single store"
                    .into());
            };
            let engine = pane_serve::ShardedEngine::open(dir, threads)?;
            eprintln!(
                "routing in-process over {shards} shards ({} nodes, {} threads)",
                engine.status().nodes,
                threads
            );
            run_serve_transport(engine, &a)
        }
        (None, None) => Err("give --shards ADDR,ADDR,… or --store ROOT".into()),
    }
}

fn cmd_metrics(raw: Vec<String>) -> CliResult {
    let a = Args::parse(raw, &["json"])?;
    reject_positionals(&a)?;
    a.reject_unknown(&["addr", "connect-timeout-ms", "request-timeout-ms"])?;
    let addr = a.require("addr")?;
    let ms = std::time::Duration::from_millis;
    let config = pane_serve::ClientConfig {
        connect_timeout: ms(a.get_parsed("connect-timeout-ms", 1_000u64)?),
        request_timeout: ms(a.get_parsed("request-timeout-ms", 10_000u64)?),
        retries: 0,
        ..Default::default()
    };
    let client = pane_serve::ShardClient::new(addr, config);
    let resp = client
        .request(r#"{"op":"metrics"}"#)
        .map_err(|e| format!("{addr}: {e}"))?;
    if resp.get("ok") != Some(&pane_serve::Json::Bool(true)) {
        let msg = resp
            .get("error")
            .and_then(|v| v.as_str())
            .unwrap_or("request failed");
        return Err(format!("{addr}: {msg}").into());
    }
    if a.flag("json") {
        let metrics = resp
            .get("metrics")
            .ok_or("response carried no metrics object")?;
        println!("{}", metrics.to_line());
    } else {
        let text = resp
            .get("text")
            .and_then(|v| v.as_str())
            .ok_or("response carried no text exposition")?;
        print!("{text}");
    }
    Ok(())
}

fn cmd_bench(mut raw: Vec<String>) -> CliResult {
    if raw.is_empty() {
        return Err("bench requires a subcommand: serve".into());
    }
    let sub = raw.remove(0);
    match sub.as_str() {
        "serve" => cmd_bench_serve(raw),
        other => Err(format!("unknown bench subcommand '{other}' (serve)").into()),
    }
}

/// `pane bench serve` — open-loop load against a live `pane serve` or
/// `pane route` endpoint. Arrivals follow the configured QPS schedule
/// regardless of completions, so queueing delay lands in the reported
/// latency; `--knee` steps the rate geometrically until achieved
/// throughput stops tracking offered load. The report goes to stdout as
/// a human table and, when `PANE_BENCH_JSON` names a path, to that file
/// in the same `{"results":…,"notes":…}` shape the criterion benches
/// emit.
fn cmd_bench_serve(raw: Vec<String>) -> CliResult {
    use pane_loadgen as lg;
    use std::time::Duration;
    let a = Args::parse(raw, &["knee"])?;
    reject_positionals(&a)?;
    a.reject_unknown(&[
        "addr",
        "qps",
        "duration-ms",
        "connections",
        "mix",
        "skew",
        "batch",
        "k",
        "seed",
        "timeout-ms",
        "knee-factor",
        "knee-steps",
        "knee-threshold",
    ])?;
    let addr = a.require("addr")?.to_string();
    let qps: f64 = a.get_parsed("qps", 200.0f64)?;
    if qps.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err("--qps must be > 0".into());
    }
    let duration = Duration::from_millis(a.get_parsed("duration-ms", 2_000u64)?.max(1));
    let connections: usize = a.get_parsed("connections", 4usize)?;
    let workload = lg::WorkloadConfig {
        mix: lg::Mix::parse(a.get("mix").unwrap_or("q90/i10")).map_err(ArgError)?,
        skew: lg::Skew::parse(a.get("skew").unwrap_or("uniform")).map_err(ArgError)?,
        batch: lg::BatchSpec::parse(a.get("batch").unwrap_or("4")).map_err(ArgError)?,
        k: a.get_parsed("k", 10usize)?,
        seed: a.get_parsed("seed", 42u64)?,
    };
    let timeout = Duration::from_millis(a.get_parsed("timeout-ms", 5_000u64)?);

    // One control connection probes the deployment shape and brackets
    // the run with metrics scrapes; load flows over its own connections.
    let mut control = lg::TcpEndpoint::connect(&addr, timeout)?;
    let target = lg::probe_target(&mut control)?;
    eprintln!(
        "target {addr}: {} nodes, half_dim {} | mix {} skew {} batch {} k {} seed {}",
        target.nodes,
        target.half_dim,
        workload.mix,
        workload.skew,
        workload.batch,
        workload.k,
        workload.seed
    );
    let before = lg::flatten_wire_metrics(&lg::scrape_metrics(&mut control)?);

    let connect_addr = addr.clone();
    let connect = move |_rate: f64| -> Result<Box<dyn lg::Endpoint>, String> {
        Ok(Box::new(lg::TcpEndpoint::connect(&connect_addr, timeout)?))
    };
    let run_at = |rate: f64| -> Result<lg::RunReport, String> {
        let count = (rate * duration.as_secs_f64()).ceil().max(1.0) as usize;
        let requests = lg::generate_requests(&workload, target.nodes, target.half_dim, count);
        lg::run(
            &lg::RunPlan {
                qps: rate,
                connections,
            },
            &requests,
            &|| connect(rate),
        )
    };

    let mut report = lg::BenchReport::new();
    report.note("addr", &addr);
    report.note("nodes", target.nodes);
    report.note("half_dim", target.half_dim);
    report.note("mix", workload.mix);
    report.note("skew", workload.skew);
    report.note("batch", workload.batch);
    report.note("k", workload.k);
    report.note("seed", workload.seed);
    report.note("connections", connections);
    report.note("duration_ms", duration.as_millis());

    let print_step = |r: &lg::RunReport| {
        println!(
            "offered {:>9.1} qps | achieved {:>9.1} qps | p50 {:>9.6}s p95 {:>9.6}s \
             p99 {:>9.6}s | ok {} err {} degraded {}",
            r.offered_qps, r.achieved_qps, r.p50_s, r.p95_s, r.p99_s, r.ok, r.errors, r.degraded
        );
    };

    if a.flag("knee") {
        let factor: f64 = a.get_parsed("knee-factor", 2.0f64)?;
        let max_steps: usize = a.get_parsed("knee-steps", 6usize)?;
        let threshold: f64 = a.get_parsed("knee-threshold", 0.9f64)?;
        let knee = lg::find_knee(qps, factor, max_steps, threshold, |rate| {
            let r = run_at(rate)?;
            print_step(&r);
            Ok(r)
        })?;
        for step in &knee.steps {
            report.result(
                format!("serve_qps_{:.0}", step.offered_qps),
                step.p50_s,
                0.0,
                step.ok,
            );
        }
        let last = knee.steps.last().expect("knee search takes >= 1 step");
        report.note("offered_qps", format!("{:.2}", last.offered_qps));
        report.note("achieved_qps", format!("{:.2}", last.achieved_qps));
        report.note("knee_qps", format!("{:.2}", knee.knee_qps));
        report.note(
            "knee_achieved_qps",
            format!("{:.2}", knee.knee_achieved_qps),
        );
        report.note("saturated", knee.saturated);
        println!(
            "saturation knee: {:.1} qps offered, {:.1} qps achieved ({})",
            knee.knee_qps,
            knee.knee_achieved_qps,
            if knee.saturated {
                "next step stopped tracking"
            } else {
                "lower bound — never saturated within the step budget"
            }
        );
    } else {
        let r = run_at(qps)?;
        print_step(&r);
        report.result("serve_open_loop", r.p50_s, 0.0, r.ok);
        report.note("offered_qps", format!("{:.2}", r.offered_qps));
        report.note("achieved_qps", format!("{:.2}", r.achieved_qps));
        report.note("p50_s", format!("{}", r.p50_s));
        report.note("p95_s", format!("{}", r.p95_s));
        report.note("p99_s", format!("{}", r.p99_s));
        report.note("errors", r.errors);
        report.note("degraded", r.degraded);
    }

    // Server-side deltas for free: scrape again, subtract.
    let after = lg::flatten_wire_metrics(&lg::scrape_metrics(&mut control)?);
    let delta = pane_obs::snapshot_delta(&before, &after);
    let moved: Vec<(&String, &f64)> = delta.iter().filter(|(_, &v)| v != 0.0).collect();
    eprintln!("server-side deltas ({} series moved):", moved.len());
    for (key, value) in &moved {
        eprintln!("  {key} {value:+}");
    }
    for (key, value) in &moved {
        // Requests-total deltas are the cross-check against client-side
        // accounting, so they ride along in the report notes.
        if key.starts_with("pane_requests_total") || key.starts_with("pane_router_requests_total") {
            report.note(format!("delta_{key}"), format!("{value}"));
        }
    }

    if let Some(path) = report.write_env_report()? {
        eprintln!("wrote bench report {}", path.display());
    }
    Ok(())
}

fn cmd_store(mut raw: Vec<String>) -> CliResult {
    if raw.is_empty() {
        return Err("store requires a subcommand: init | snapshot | status | migrate".into());
    }
    let sub = raw.remove(0);
    match sub.as_str() {
        "init" => cmd_store_init(raw),
        "snapshot" => cmd_store_snapshot(raw),
        "status" => cmd_store_status(raw),
        "migrate" => cmd_store_migrate(raw),
        other => {
            Err(format!("unknown store subcommand '{other}' (init|snapshot|status|migrate)").into())
        }
    }
}

fn cmd_store_init(raw: Vec<String>) -> CliResult {
    let a = Args::parse(raw, &["text"])?;
    reject_positionals(&a)?;
    a.reject_unknown(&[
        "embedding",
        "dir",
        "shards",
        "kind",
        "lists",
        "nprobe",
        "iters",
        "m",
        "efc",
        "ef",
        "rerank",
        "seed",
        "threads",
        "format",
    ])?;
    let emb = load_embedding_from_args(&a)?;
    let dir = PathBuf::from(a.require("dir")?);
    let spec = spec_from_args(&a)?;
    let threads: usize = a.get_parsed("threads", 1usize)?;
    let shards: usize = a.get_parsed("shards", 1usize)?;
    let format_arg = a.get("format").unwrap_or("columnar");
    let format = pane_store::ArtifactFormat::parse(format_arg)
        .ok_or_else(|| format!("unknown artifact format '{format_arg}' (columnar|legacy)"))?;
    let t0 = std::time::Instant::now();
    if shards > 1 {
        pane_store::ShardedStore::init_with_format(
            &dir, &emb, &spec, &spec, shards, threads, format,
        )?;
        eprintln!(
            "initialized {shards}-way sharded store over {} nodes ({} indexes, {format} \
             artifacts) in {:.2}s",
            emb.forward.rows(),
            spec.kind_name(),
            t0.elapsed().as_secs_f64()
        );
    } else {
        pane_store::Store::init_with_format(&dir, &emb, &spec, &spec, threads, format)?;
        eprintln!(
            "initialized store over {} nodes ({} indexes, {format} artifacts) in {:.2}s",
            emb.forward.rows(),
            spec.kind_name(),
            t0.elapsed().as_secs_f64()
        );
    }
    eprintln!("wrote {}", dir.display());
    Ok(())
}

/// `pane store migrate --dir DIR` — rewrite a legacy store (or every
/// shard of a sharded root) as columnar `PANECOL1` artifacts, in place.
fn cmd_store_migrate(raw: Vec<String>) -> CliResult {
    let a = Args::parse(raw, &[])?;
    reject_positionals(&a)?;
    a.reject_unknown(&["dir"])?;
    let dir = PathBuf::from(a.require("dir")?);
    let t0 = std::time::Instant::now();
    let reports = match pane_store::ShardedStore::shard_count(&dir)? {
        Some(_) => pane_store::ShardedStore::migrate(&dir)?,
        None => vec![pane_store::migrate(&dir)?],
    };
    let rewritten = reports.iter().filter(|r| r.migrated).count();
    if rewritten == 0 {
        eprintln!("already columnar: nothing to migrate");
    } else {
        eprintln!(
            "migrated {rewritten}/{} store(s) to columnar artifacts in {:.2}s",
            reports.len(),
            t0.elapsed().as_secs_f64()
        );
    }
    Ok(())
}

fn cmd_store_snapshot(raw: Vec<String>) -> CliResult {
    use pane_serve::ServeBackend;
    let a = Args::parse(raw, &[])?;
    reject_positionals(&a)?;
    a.reject_unknown(&["dir", "threads"])?;
    let dir = PathBuf::from(a.require("dir")?);
    let threads: usize = a.get_parsed("threads", 1usize)?;
    let t0 = std::time::Instant::now();
    let out = match pane_store::ShardedStore::shard_count(&dir)? {
        Some(_) => pane_serve::ShardedEngine::open(&dir, threads)?.snapshot()?,
        None => pane_serve::ServeEngine::open(&dir, threads)?.snapshot()?,
    };
    eprintln!(
        "snapshot complete: generation {}, folded {} WAL records in {:.2}s",
        out.generation,
        out.folded,
        t0.elapsed().as_secs_f64()
    );
    Ok(())
}

fn print_store_status(label: &str, s: &pane_store::StoreStatus) {
    println!(
        "{label}generation {} | format {} | base nodes {} | k/2 {} | wal records {} | \
         node index {} | link index {}",
        s.generation,
        s.format,
        s.base_nodes,
        s.half_dim,
        s.wal_records,
        s.node_spec.to_manifest(),
        s.link_spec.to_manifest(),
    );
    println!(
        "{label}  artifacts: embedding {} B | node index {} B | link index {} B | total {} B",
        s.embedding_bytes,
        s.node_index_bytes,
        s.link_index_bytes,
        s.artifact_bytes(),
    );
    if s.wal_dropped_bytes > 0 {
        println!(
            "{label}  warning: {} torn trailing WAL bytes (dropped at next open)",
            s.wal_dropped_bytes
        );
    }
}

fn cmd_store_status(raw: Vec<String>) -> CliResult {
    let a = Args::parse(raw, &[])?;
    reject_positionals(&a)?;
    a.reject_unknown(&["dir"])?;
    let dir = PathBuf::from(a.require("dir")?);
    match pane_store::ShardedStore::shard_count(&dir)? {
        Some(shards) => {
            let statuses = pane_store::ShardedStore::read_status(&dir)?;
            let nodes: usize = statuses.iter().map(|s| s.base_nodes).sum();
            let wal: usize = statuses.iter().map(|s| s.wal_records).sum();
            println!("sharded store: {shards} shards | base nodes {nodes} | wal records {wal}");
            for (i, s) in statuses.iter().enumerate() {
                print_store_status(&format!("  shard {i}: "), s);
            }
        }
        None => print_store_status("", &pane_store::read_status(&dir)?),
    }
    Ok(())
}

/// Integration tests exercise the binary end-to-end via assert-less spawns
/// in `tests/cli.rs`; unit tests for the parser live in [`args`].
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_lookup_matches_names() {
        for z in DatasetZoo::ALL {
            let found = DatasetZoo::ALL.into_iter().find(|x| x.name() == z.name());
            assert_eq!(found, Some(z));
        }
    }

    #[test]
    fn reject_positionals_works() {
        let a = Args::parse(vec!["stray".to_string()], &[]).unwrap();
        assert!(reject_positionals(&a).is_err());
        let b = Args::parse(vec![], &[]).unwrap();
        assert!(reject_positionals(&b).is_ok());
    }
}
