//! `pane` — command-line interface to the PANE reproduction.
//!
//! ```text
//! pane embed    --edges E.txt [--attrs A.txt] [--labels L.txt] [--undirected]
//!               [--dim 128] [--alpha 0.5] [--eps 0.015] [--threads 1]
//!               [--seed 0] --output EMB [--text]
//! pane generate --zoo cora-like [--scale 1.0] [--seed 42] --out-dir DIR
//! pane stats    --edges E.txt [--attrs A.txt] [--labels L.txt] [--undirected]
//! pane topk     --embedding EMB [--text] --node V [--k 10]
//!               [--mode attrs|links|similar]
//! ```

mod args;

use args::{ArgError, Args};
use pane_core::{EmbeddingQuery, Pane, PaneConfig};
use pane_datasets::DatasetZoo;
use pane_graph::io::load_graph;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() || raw[0] == "--help" || raw[0] == "help" {
        print_help();
        return ExitCode::SUCCESS;
    }
    let cmd = raw.remove(0);
    let result = match cmd.as_str() {
        "embed" => cmd_embed(raw),
        "generate" => cmd_generate(raw),
        "stats" => cmd_stats(raw),
        "topk" => cmd_topk(raw),
        "evaluate" => cmd_evaluate(raw),
        "convert" => cmd_convert(raw),
        other => Err(format!("unknown command '{other}' (try `pane help`)").into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn print_help() {
    println!(
        "pane — scalable attributed network embedding (PANE, VLDB 2020 reproduction)\n\n\
         commands:\n\
           embed     embed a graph given as text files, write the embedding\n\
           generate  generate a synthetic dataset from the zoo\n\
           stats     print Table-3-style statistics of a graph\n\
           topk      query a saved embedding (top attributes / links / similar nodes)\n\
           evaluate  run the three-task quality report on a graph\n\
           convert   convert a text graph to the fast binary format (or back)\n\n\
         run `pane <command>` with no options to see its usage in the error message."
    );
}

fn load_from_args(a: &Args) -> Result<pane_graph::AttributedGraph, Box<dyn std::error::Error>> {
    let edges = PathBuf::from(a.require("edges")?);
    let attrs = a.get("attrs").map(PathBuf::from);
    let labels = a.get("labels").map(PathBuf::from);
    let g = load_graph(
        &edges,
        attrs.as_deref(),
        labels.as_deref(),
        None,
        None,
        a.flag("undirected"),
    )?;
    Ok(g)
}

fn reject_positionals(a: &Args) -> Result<(), ArgError> {
    if let Some(extra) = a.positional().first() {
        return Err(ArgError(format!("unexpected argument '{extra}'")));
    }
    Ok(())
}

fn cmd_embed(raw: Vec<String>) -> CliResult {
    let a = Args::parse(raw, &["undirected", "text"])?;
    reject_positionals(&a)?;
    a.reject_unknown(&[
        "edges", "attrs", "labels", "dim", "alpha", "eps", "threads", "seed", "output",
    ])?;
    let g = load_from_args(&a)?;
    eprintln!("loaded graph: {}", g.stats());

    let config = PaneConfig::builder()
        .dimension(a.get_parsed("dim", 128usize)?)
        .alpha(a.get_parsed("alpha", 0.5f64)?)
        .error_threshold(a.get_parsed("eps", 0.015f64)?)
        .threads(a.get_parsed("threads", 1usize)?)
        .seed(a.get_parsed("seed", 0u64)?)
        .try_build()?;
    let output = PathBuf::from(a.require("output")?);

    let emb = Pane::new(config).embed(&g)?;
    eprintln!(
        "embedded in {:.2}s (affinity {:.2}s, init {:.2}s, ccd {:.2}s); objective {:.3e}",
        emb.timings.total_secs(),
        emb.timings.affinity_secs,
        emb.timings.init_secs,
        emb.timings.ccd_secs,
        emb.objective
    );
    if a.flag("text") {
        pane_core::save_text(&emb, &output)?;
    } else {
        pane_core::save_binary(&emb, &output)?;
    }
    eprintln!("wrote {}", output.display());
    Ok(())
}

fn cmd_generate(raw: Vec<String>) -> CliResult {
    let a = Args::parse(raw, &[])?;
    reject_positionals(&a)?;
    a.reject_unknown(&["zoo", "scale", "seed", "out-dir"])?;
    let name = a.require("zoo")?;
    let zoo = DatasetZoo::ALL
        .into_iter()
        .find(|z| z.name() == name)
        .ok_or_else(|| {
            let names: Vec<&str> = DatasetZoo::ALL.iter().map(|z| z.name()).collect();
            ArgError(format!(
                "unknown zoo entry '{name}'; options: {}",
                names.join(", ")
            ))
        })?;
    let scale = a.get_parsed("scale", 1.0f64)?;
    let seed = a.get_parsed("seed", 42u64)?;
    let dir = PathBuf::from(a.require("out-dir")?);
    std::fs::create_dir_all(&dir)?;

    let ds = zoo.generate_scaled(scale, seed);
    eprintln!("generated {}: {}", zoo.name(), ds.graph.stats());
    pane_graph::io::save_graph(
        &ds.graph,
        &dir.join("edges.txt"),
        &dir.join("attributes.txt"),
        &dir.join("labels.txt"),
    )?;
    eprintln!(
        "wrote edges.txt, attributes.txt, labels.txt under {}",
        dir.display()
    );
    Ok(())
}

fn cmd_stats(raw: Vec<String>) -> CliResult {
    let a = Args::parse(raw, &["undirected"])?;
    reject_positionals(&a)?;
    a.reject_unknown(&["edges", "attrs", "labels"])?;
    let g = load_from_args(&a)?;
    let s = g.stats();
    println!("{s}");
    // Extra diagnostics beyond Table 3.
    let n = g.num_nodes().max(1);
    let dangling = (0..g.num_nodes()).filter(|&v| g.out_degree(v) == 0).count();
    let attributed = (0..g.num_nodes())
        .filter(|&v| !g.node_attributes(v).0.is_empty())
        .count();
    println!("avg out-degree: {:.2}", g.num_edges() as f64 / n as f64);
    println!(
        "dangling nodes: {dangling} ({:.1}%)",
        100.0 * dangling as f64 / n as f64
    );
    println!(
        "attributed nodes: {attributed} ({:.1}%)",
        100.0 * attributed as f64 / n as f64
    );
    println!(
        "avg attributes per node: {:.2}",
        g.num_attribute_entries() as f64 / n as f64
    );
    let deg = pane_graph::analysis::degree_stats(&g);
    println!(
        "out-degree min/median/max: {}/{}/{} (top-1% share {:.1}%)",
        deg.min,
        deg.median,
        deg.max,
        deg.top1pct_share * 100.0
    );
    println!(
        "largest weakly connected component: {:.1}%",
        pane_graph::analysis::largest_component_fraction(&g) * 100.0
    );
    Ok(())
}

fn cmd_evaluate(raw: Vec<String>) -> CliResult {
    let a = Args::parse(raw, &["undirected"])?;
    reject_positionals(&a)?;
    a.reject_unknown(&[
        "edges", "attrs", "labels", "dim", "alpha", "eps", "threads", "seed", "binary",
    ])?;
    let g = if let Some(bin) = a.get("binary") {
        pane_graph::io_binary::load_graph_binary(std::path::Path::new(bin))?
    } else {
        load_from_args(&a)?
    };
    eprintln!("loaded graph: {}", g.stats());
    let config = PaneConfig::builder()
        .dimension(a.get_parsed("dim", 64usize)?)
        .alpha(a.get_parsed("alpha", 0.5f64)?)
        .error_threshold(a.get_parsed("eps", 0.015f64)?)
        .threads(a.get_parsed("threads", 1usize)?)
        .seed(a.get_parsed("seed", 0u64)?)
        .try_build()?;
    let card = pane_eval::report_card(&g, &pane_eval::ReportOptions::default(), |residual| {
        Pane::new(config.clone())
            .embed(residual)
            .expect("embedding failed")
    });
    println!("{card}");
    Ok(())
}

fn cmd_convert(raw: Vec<String>) -> CliResult {
    let a = Args::parse(raw, &["undirected"])?;
    reject_positionals(&a)?;
    a.reject_unknown(&["edges", "attrs", "labels", "output", "binary"])?;
    let out = PathBuf::from(a.require("output")?);
    if let Some(bin) = a.get("binary") {
        // binary -> text triple (output is a directory)
        let g = pane_graph::io_binary::load_graph_binary(std::path::Path::new(bin))?;
        std::fs::create_dir_all(&out)?;
        pane_graph::io::save_graph(
            &g,
            &out.join("edges.txt"),
            &out.join("attributes.txt"),
            &out.join("labels.txt"),
        )?;
        eprintln!("wrote text graph under {}", out.display());
    } else {
        // text -> binary
        let g = load_from_args(&a)?;
        pane_graph::io_binary::save_graph_binary(&g, &out)?;
        eprintln!("wrote binary graph {} ({})", out.display(), g.stats());
    }
    Ok(())
}

fn cmd_topk(raw: Vec<String>) -> CliResult {
    let a = Args::parse(raw, &["text"])?;
    reject_positionals(&a)?;
    a.reject_unknown(&["embedding", "node", "k", "mode"])?;
    let path = PathBuf::from(a.require("embedding")?);
    let emb = if a.flag("text") {
        pane_core::load_text(&path)?
    } else {
        pane_core::load_binary(&path)?
    };
    let node: usize = a.get_parsed("node", 0usize)?;
    if node >= emb.forward.rows() {
        return Err(format!("node {node} out of range (n = {})", emb.forward.rows()).into());
    }
    let k: usize = a.get_parsed("k", 10usize)?;
    let mode = a.get("mode").unwrap_or("attrs");
    let q = EmbeddingQuery::new(&emb);
    let results = match mode {
        "attrs" => q.top_attributes(node, k),
        "links" => q.recommend_links(node, k, &[]),
        "similar" => q.similar_nodes(node, k),
        other => return Err(format!("unknown mode '{other}' (attrs|links|similar)").into()),
    };
    println!("top-{k} {mode} for node {node}:");
    for s in results {
        println!("  {} {:.4}", s.index, s.score);
    }
    Ok(())
}

/// Integration tests exercise the binary end-to-end via assert-less spawns
/// in `tests/cli.rs`; unit tests for the parser live in [`args`].
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_lookup_matches_names() {
        for z in DatasetZoo::ALL {
            let found = DatasetZoo::ALL.into_iter().find(|x| x.name() == z.name());
            assert_eq!(found, Some(z));
        }
    }

    #[test]
    fn reject_positionals_works() {
        let a = Args::parse(vec!["stray".to_string()], &[]).unwrap();
        assert!(reject_positionals(&a).is_err());
        let b = Args::parse(vec![], &[]).unwrap();
        assert!(reject_positionals(&b).is_ok());
    }
}
