//! `pane` — command-line interface to the PANE reproduction.
//!
//! ```text
//! pane embed    --edges E.txt [--attrs A.txt] [--labels L.txt] [--undirected]
//!               [--dim 128] [--alpha 0.5] [--eps 0.015] [--threads 1]
//!               [--seed 0] --output EMB [--text]
//! pane generate --zoo cora-like [--scale 1.0] [--seed 42] --out-dir DIR
//! pane stats    --edges E.txt [--attrs A.txt] [--labels L.txt] [--undirected]
//! pane topk     --embedding EMB [--text] --node V [--k 10]
//!               [--mode attrs|links|similar]
//! pane index build  --embedding EMB [--text] [--kind flat|ivf|hnsw]
//!                   [--space similar|links] [--lists 64] [--nprobe 8]
//!                   [--m 16] [--efc 100] [--ef 64] [--seed 0] [--threads 1]
//!                   --output IDX
//! pane index search --index IDX --embedding EMB [--text]
//!                   (--node V | --nodes V1,V2,…) [--k 10]
//!                   [--nprobe N] [--ef N] [--threads 1]
//! ```

mod args;

use args::{ArgError, Args};
use pane_core::{EmbeddingQuery, Pane, PaneConfig};
use pane_datasets::DatasetZoo;
use pane_graph::io::load_graph;
use pane_index::{
    AnyIndex, FlatIndex, HnswConfig, HnswIndex, IvfConfig, IvfIndex, Metric, VectorIndex,
};
use pane_linalg::DenseMatrix;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() || raw[0] == "--help" || raw[0] == "help" {
        print_help();
        return ExitCode::SUCCESS;
    }
    let cmd = raw.remove(0);
    let result = match cmd.as_str() {
        "embed" => cmd_embed(raw),
        "generate" => cmd_generate(raw),
        "stats" => cmd_stats(raw),
        "topk" => cmd_topk(raw),
        "index" => cmd_index(raw),
        "evaluate" => cmd_evaluate(raw),
        "convert" => cmd_convert(raw),
        other => Err(format!("unknown command '{other}' (try `pane help`)").into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn print_help() {
    println!(
        "pane — scalable attributed network embedding (PANE, VLDB 2020 reproduction)\n\n\
         commands:\n\
           embed     embed a graph given as text files, write the embedding\n\
           generate  generate a synthetic dataset from the zoo\n\
           stats     print Table-3-style statistics of a graph\n\
           topk      query a saved embedding (top attributes / links / similar nodes)\n\
           index     build / search an ANN index over a saved embedding (flat / ivf / hnsw)\n\
           evaluate  run the three-task quality report on a graph\n\
           convert   convert a text graph to the fast binary format (or back)\n\n\
         run `pane <command>` with no options to see its usage in the error message."
    );
}

fn load_from_args(a: &Args) -> Result<pane_graph::AttributedGraph, Box<dyn std::error::Error>> {
    let edges = PathBuf::from(a.require("edges")?);
    let attrs = a.get("attrs").map(PathBuf::from);
    let labels = a.get("labels").map(PathBuf::from);
    let g = load_graph(
        &edges,
        attrs.as_deref(),
        labels.as_deref(),
        None,
        None,
        a.flag("undirected"),
    )?;
    Ok(g)
}

fn reject_positionals(a: &Args) -> Result<(), ArgError> {
    if let Some(extra) = a.positional().first() {
        return Err(ArgError(format!("unexpected argument '{extra}'")));
    }
    Ok(())
}

fn cmd_embed(raw: Vec<String>) -> CliResult {
    let a = Args::parse(raw, &["undirected", "text"])?;
    reject_positionals(&a)?;
    a.reject_unknown(&[
        "edges", "attrs", "labels", "dim", "alpha", "eps", "threads", "seed", "output",
    ])?;
    let g = load_from_args(&a)?;
    eprintln!("loaded graph: {}", g.stats());

    let config = PaneConfig::builder()
        .dimension(a.get_parsed("dim", 128usize)?)
        .alpha(a.get_parsed("alpha", 0.5f64)?)
        .error_threshold(a.get_parsed("eps", 0.015f64)?)
        .threads(a.get_parsed("threads", 1usize)?)
        .seed(a.get_parsed("seed", 0u64)?)
        .try_build()?;
    let output = PathBuf::from(a.require("output")?);

    let emb = Pane::new(config).embed(&g)?;
    eprintln!(
        "embedded in {:.2}s (affinity {:.2}s, init {:.2}s, ccd {:.2}s); objective {:.3e}",
        emb.timings.total_secs(),
        emb.timings.affinity_secs,
        emb.timings.init_secs,
        emb.timings.ccd_secs,
        emb.objective
    );
    if a.flag("text") {
        pane_core::save_text(&emb, &output)?;
    } else {
        pane_core::save_binary(&emb, &output)?;
    }
    eprintln!("wrote {}", output.display());
    Ok(())
}

fn cmd_generate(raw: Vec<String>) -> CliResult {
    let a = Args::parse(raw, &[])?;
    reject_positionals(&a)?;
    a.reject_unknown(&["zoo", "scale", "seed", "out-dir"])?;
    let name = a.require("zoo")?;
    let zoo = DatasetZoo::ALL
        .into_iter()
        .find(|z| z.name() == name)
        .ok_or_else(|| {
            let names: Vec<&str> = DatasetZoo::ALL.iter().map(|z| z.name()).collect();
            ArgError(format!(
                "unknown zoo entry '{name}'; options: {}",
                names.join(", ")
            ))
        })?;
    let scale = a.get_parsed("scale", 1.0f64)?;
    let seed = a.get_parsed("seed", 42u64)?;
    let dir = PathBuf::from(a.require("out-dir")?);
    std::fs::create_dir_all(&dir)?;

    let ds = zoo.generate_scaled(scale, seed);
    eprintln!("generated {}: {}", zoo.name(), ds.graph.stats());
    pane_graph::io::save_graph(
        &ds.graph,
        &dir.join("edges.txt"),
        &dir.join("attributes.txt"),
        &dir.join("labels.txt"),
    )?;
    eprintln!(
        "wrote edges.txt, attributes.txt, labels.txt under {}",
        dir.display()
    );
    Ok(())
}

fn cmd_stats(raw: Vec<String>) -> CliResult {
    let a = Args::parse(raw, &["undirected"])?;
    reject_positionals(&a)?;
    a.reject_unknown(&["edges", "attrs", "labels"])?;
    let g = load_from_args(&a)?;
    let s = g.stats();
    println!("{s}");
    // Extra diagnostics beyond Table 3.
    let n = g.num_nodes().max(1);
    let dangling = (0..g.num_nodes()).filter(|&v| g.out_degree(v) == 0).count();
    let attributed = (0..g.num_nodes())
        .filter(|&v| !g.node_attributes(v).0.is_empty())
        .count();
    println!("avg out-degree: {:.2}", g.num_edges() as f64 / n as f64);
    println!(
        "dangling nodes: {dangling} ({:.1}%)",
        100.0 * dangling as f64 / n as f64
    );
    println!(
        "attributed nodes: {attributed} ({:.1}%)",
        100.0 * attributed as f64 / n as f64
    );
    println!(
        "avg attributes per node: {:.2}",
        g.num_attribute_entries() as f64 / n as f64
    );
    let deg = pane_graph::analysis::degree_stats(&g);
    println!(
        "out-degree min/median/max: {}/{}/{} (top-1% share {:.1}%)",
        deg.min,
        deg.median,
        deg.max,
        deg.top1pct_share * 100.0
    );
    println!(
        "largest weakly connected component: {:.1}%",
        pane_graph::analysis::largest_component_fraction(&g) * 100.0
    );
    Ok(())
}

fn cmd_evaluate(raw: Vec<String>) -> CliResult {
    let a = Args::parse(raw, &["undirected"])?;
    reject_positionals(&a)?;
    a.reject_unknown(&[
        "edges", "attrs", "labels", "dim", "alpha", "eps", "threads", "seed", "binary",
    ])?;
    let g = if let Some(bin) = a.get("binary") {
        pane_graph::io_binary::load_graph_binary(std::path::Path::new(bin))?
    } else {
        load_from_args(&a)?
    };
    eprintln!("loaded graph: {}", g.stats());
    let config = PaneConfig::builder()
        .dimension(a.get_parsed("dim", 64usize)?)
        .alpha(a.get_parsed("alpha", 0.5f64)?)
        .error_threshold(a.get_parsed("eps", 0.015f64)?)
        .threads(a.get_parsed("threads", 1usize)?)
        .seed(a.get_parsed("seed", 0u64)?)
        .try_build()?;
    let card = pane_eval::report_card(&g, &pane_eval::ReportOptions::default(), |residual| {
        Pane::new(config.clone())
            .embed(residual)
            .expect("embedding failed")
    });
    println!("{card}");
    Ok(())
}

fn cmd_convert(raw: Vec<String>) -> CliResult {
    let a = Args::parse(raw, &["undirected"])?;
    reject_positionals(&a)?;
    a.reject_unknown(&["edges", "attrs", "labels", "output", "binary"])?;
    let out = PathBuf::from(a.require("output")?);
    if let Some(bin) = a.get("binary") {
        // binary -> text triple (output is a directory)
        let g = pane_graph::io_binary::load_graph_binary(std::path::Path::new(bin))?;
        std::fs::create_dir_all(&out)?;
        pane_graph::io::save_graph(
            &g,
            &out.join("edges.txt"),
            &out.join("attributes.txt"),
            &out.join("labels.txt"),
        )?;
        eprintln!("wrote text graph under {}", out.display());
    } else {
        // text -> binary
        let g = load_from_args(&a)?;
        pane_graph::io_binary::save_graph_binary(&g, &out)?;
        eprintln!("wrote binary graph {} ({})", out.display(), g.stats());
    }
    Ok(())
}

fn cmd_topk(raw: Vec<String>) -> CliResult {
    let a = Args::parse(raw, &["text"])?;
    reject_positionals(&a)?;
    a.reject_unknown(&["embedding", "node", "k", "mode"])?;
    let emb = load_embedding_from_args(&a)?;
    let node: usize = a.get_parsed("node", 0usize)?;
    if node >= emb.forward.rows() {
        return Err(format!("node {node} out of range (n = {})", emb.forward.rows()).into());
    }
    let k: usize = a.get_parsed("k", 10usize)?;
    let mode = a.get("mode").unwrap_or("attrs");
    let q = EmbeddingQuery::new(&emb);
    let results = match mode {
        "attrs" => q.top_attributes(node, k),
        "links" => q.recommend_links(node, k, &[]),
        "similar" => q.similar_nodes(node, k),
        other => return Err(format!("unknown mode '{other}' (attrs|links|similar)").into()),
    };
    println!("top-{k} {mode} for node {node}:");
    for s in results {
        println!("  {} {:.4}", s.index, s.score);
    }
    Ok(())
}

fn load_embedding_from_args(
    a: &Args,
) -> Result<pane_core::PaneEmbedding, Box<dyn std::error::Error>> {
    let path = PathBuf::from(a.require("embedding")?);
    Ok(if a.flag("text") {
        pane_core::load_text(&path)?
    } else {
        pane_core::load_binary(&path)?
    })
}

fn cmd_index(mut raw: Vec<String>) -> CliResult {
    if raw.is_empty() {
        return Err("index requires a subcommand: build | search".into());
    }
    let sub = raw.remove(0);
    match sub.as_str() {
        "build" => cmd_index_build(raw),
        "search" => cmd_index_search(raw),
        other => Err(format!("unknown index subcommand '{other}' (build|search)").into()),
    }
}

/// The vectors an index serves for a given query space: classifier
/// features under cosine for `similar`, raw `X_b` rows under inner
/// product for `links` (Eq. 22 scores are `q · X_b[dst]`).
fn space_vectors(
    emb: &pane_core::PaneEmbedding,
    space: &str,
) -> Result<(DenseMatrix, Metric), Box<dyn std::error::Error>> {
    match space {
        "similar" => Ok((emb.classifier_feature_matrix(), Metric::Cosine)),
        "links" => Ok((emb.backward.clone(), Metric::InnerProduct)),
        other => Err(format!("unknown space '{other}' (similar|links)").into()),
    }
}

fn cmd_index_build(raw: Vec<String>) -> CliResult {
    let a = Args::parse(raw, &["text"])?;
    reject_positionals(&a)?;
    a.reject_unknown(&[
        "embedding",
        "kind",
        "space",
        "lists",
        "nprobe",
        "iters",
        "m",
        "efc",
        "ef",
        "seed",
        "threads",
        "output",
    ])?;
    let emb = load_embedding_from_args(&a)?;
    let output = PathBuf::from(a.require("output")?);
    let space = a.get("space").unwrap_or("similar");
    let (vectors, metric) = space_vectors(&emb, space)?;
    let kind = a.get("kind").unwrap_or("hnsw");
    let t0 = std::time::Instant::now();
    let index: AnyIndex = match kind {
        "flat" => AnyIndex::Flat(FlatIndex::build(&vectors, metric)),
        "ivf" => AnyIndex::Ivf(IvfIndex::build(
            &vectors,
            metric,
            &IvfConfig {
                nlist: a.get_parsed("lists", 64usize)?,
                nprobe: a.get_parsed("nprobe", 8usize)?,
                train_iters: a.get_parsed("iters", 10usize)?,
                seed: a.get_parsed("seed", 0u64)?,
                threads: a.get_parsed("threads", 1usize)?,
            },
        )),
        "hnsw" => AnyIndex::Hnsw(HnswIndex::build(
            &vectors,
            metric,
            &HnswConfig {
                m: a.get_parsed("m", 16usize)?,
                ef_construction: a.get_parsed("efc", 100usize)?,
                ef_search: a.get_parsed("ef", 64usize)?,
                seed: a.get_parsed("seed", 0u64)?,
            },
        )),
        other => return Err(format!("unknown index kind '{other}' (flat|ivf|hnsw)").into()),
    };
    index.save(&output)?;
    eprintln!(
        "built {kind} index over {} {space}-space vectors (dim {}) in {:.2}s",
        index.len(),
        index.dim(),
        t0.elapsed().as_secs_f64()
    );
    eprintln!("wrote {}", output.display());
    Ok(())
}

fn cmd_index_search(raw: Vec<String>) -> CliResult {
    let a = Args::parse(raw, &["text"])?;
    reject_positionals(&a)?;
    a.reject_unknown(&[
        "index",
        "embedding",
        "node",
        "nodes",
        "k",
        "nprobe",
        "ef",
        "threads",
    ])?;
    let mut index = pane_index::load_index(std::path::Path::new(a.require("index")?))?;
    if let Some(np) = a.get("nprobe") {
        let np: usize = np.parse().map_err(|e| format!("--nprobe: {e}"))?;
        if !index.set_nprobe(np) {
            return Err("--nprobe only applies to ivf indexes".into());
        }
    }
    if let Some(ef) = a.get("ef") {
        let ef: usize = ef.parse().map_err(|e| format!("--ef: {e}"))?;
        if !index.set_ef_search(ef) {
            return Err("--ef only applies to hnsw indexes".into());
        }
    }
    let emb = load_embedding_from_args(&a)?;
    let n = emb.forward.rows();
    let nodes: Vec<usize> = match (a.get("node"), a.get("nodes")) {
        (Some(_), Some(_)) => return Err("give either --node or --nodes, not both".into()),
        (Some(v), None) => vec![v.parse().map_err(|e| format!("--node: {e}"))?],
        (None, Some(list)) => list
            .split(',')
            .map(|t| {
                t.trim()
                    .parse::<usize>()
                    .map_err(|e| format!("--nodes '{t}': {e}"))
            })
            .collect::<Result<_, _>>()?,
        (None, None) => return Err("--node or --nodes is required".into()),
    };
    if let Some(&bad) = nodes.iter().find(|&&v| v >= n) {
        return Err(format!("node {bad} out of range (n = {n})").into());
    }
    let k: usize = a.get_parsed("k", 10usize)?;
    let threads: usize = a.get_parsed("threads", 1usize)?;

    // The metric recorded in the index tells us which query space it was
    // built for: cosine ⇒ classifier features, inner product ⇒ link
    // query vectors q = X_f[v]·YᵀY (only that arm pays for the Gram
    // matrix behind EmbeddingQuery).
    let (space, queries) = match index.metric() {
        Metric::Cosine => (
            "similar",
            nodes
                .iter()
                .map(|&v| emb.classifier_features(v))
                .collect::<Vec<_>>(),
        ),
        Metric::InnerProduct => {
            let query = EmbeddingQuery::new(&emb);
            (
                "links",
                nodes
                    .iter()
                    .map(|&v| query.link_query_vector(v))
                    .collect::<Vec<_>>(),
            )
        }
    };
    if queries[0].len() != index.dim() {
        return Err(format!(
            "embedding/index mismatch: {space}-space queries have dim {}, index holds dim {}",
            queries[0].len(),
            index.dim()
        )
        .into());
    }
    let qmat = DenseMatrix::from_rows(&queries);
    // Oversample by one so the self-hit can be dropped.
    let batched = index.batch_search(&qmat, k + 1, threads);
    for (&v, hits) in nodes.iter().zip(&batched) {
        println!("top-{k} {space} for node {v} ({} index):", index.kind());
        for h in hits.iter().filter(|h| h.index != v).take(k) {
            println!("  {} {:.4}", h.index, h.score);
        }
    }
    Ok(())
}

/// Integration tests exercise the binary end-to-end via assert-less spawns
/// in `tests/cli.rs`; unit tests for the parser live in [`args`].
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_lookup_matches_names() {
        for z in DatasetZoo::ALL {
            let found = DatasetZoo::ALL.into_iter().find(|x| x.name() == z.name());
            assert_eq!(found, Some(z));
        }
    }

    #[test]
    fn reject_positionals_works() {
        let a = Args::parse(vec!["stray".to_string()], &[]).unwrap();
        assert!(reject_positionals(&a).is_err());
        let b = Args::parse(vec![], &[]).unwrap();
        assert!(reject_positionals(&b).is_ok());
    }
}
