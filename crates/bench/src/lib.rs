//! Shared harness for the experiment binaries (one per table/figure of the
//! paper — see DESIGN.md §5 for the index and EXPERIMENTS.md for results).
//!
//! Every binary:
//!
//! 1. generates the dataset zoo entries it needs (scale adjustable via the
//!    `PANE_SCALE` environment variable, default 1.0);
//! 2. fits the relevant methods through the uniform [`methods`] wrappers;
//! 3. writes a TSV file and a human-readable table under `results/`.

pub mod methods;
pub mod report;

use std::time::Instant;

/// Scale factor for dataset generation (`PANE_SCALE`, default 1.0).
pub fn scale_from_env() -> f64 {
    std::env::var("PANE_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s > 0.0)
        .unwrap_or(1.0)
}

/// Threads used for "PANE (parallel)" runs (`PANE_THREADS`, default 4 — the
/// experiments still *exercise* the nb-way block decomposition even on a
/// single-core host; wall-clock speedups then reflect the hardware).
pub fn threads_from_env() -> usize {
    std::env::var("PANE_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&t| t > 0)
        .unwrap_or(4)
}

/// Times a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_parsing_defaults() {
        std::env::remove_var("PANE_SCALE");
        assert_eq!(scale_from_env(), 1.0);
        std::env::set_var("PANE_SCALE", "0.25");
        assert_eq!(scale_from_env(), 0.25);
        std::env::set_var("PANE_SCALE", "-3");
        assert_eq!(scale_from_env(), 1.0);
        std::env::remove_var("PANE_SCALE");
    }

    #[test]
    fn timed_measures() {
        let (v, secs) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }
}
