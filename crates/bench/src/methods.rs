//! Uniform method wrappers used by the experiment binaries.
//!
//! Each paper competitor family (see `pane-baselines`) is exposed behind
//! one [`MethodKind`], with three entry points matching the three tasks.
//! A method that cannot run a task (e.g. NRP cannot infer attributes — it
//! has no attribute embeddings; TADW's dense `n × n` matrix exceeds its
//! cap on large graphs) returns `None`, which the tables print as `-`,
//! exactly like the paper's "method did not finish / not applicable"
//! entries.

use pane_baselines::{AttrSvd, BaneLite, BlaLite, CanLite, NrpLite, PaneR, TadwLite, TopoSvd};
use pane_core::{Pane, PaneConfig};
use pane_eval::scoring::{NodeFeatureSource, PaneScorer};
use pane_eval::split::{AttrSplit, EdgeSplit};
use pane_eval::tasks::link_pred::{best_of_four, evaluate_link_scorer};
use pane_eval::tasks::{evaluate_attr_scorer, AucAp};
use pane_graph::AttributedGraph;
use pane_linalg::DenseMatrix;

/// Every method the harness can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodKind {
    /// PANE, Algorithms 1–4 (single thread).
    PaneSingle,
    /// PANE, Algorithms 5–8 (block-parallel).
    PaneParallel,
    /// PANE with random init (the §5.7 ablation).
    PaneR,
    /// NRP stand-in (homogeneous, direction-aware).
    NrpLite,
    /// TADW/HSCA/AANE stand-in (dense proximity factorization).
    TadwLite,
    /// CAN/PRRE stand-in (undirected co-embedding).
    CanLite,
    /// BANE/LQANR stand-in (binarized embedding).
    BaneLite,
    /// Topology-only stand-in (STNE/DGI flavor).
    TopoSvd,
    /// Attribute-only stand-in (ARGA flavor).
    AttrSvd,
    /// BLA stand-in (non-embedding attribute inference).
    BlaLite,
}

impl MethodKind {
    /// Display name (with the competitor family it stands for).
    pub fn name(&self) -> &'static str {
        match self {
            MethodKind::PaneSingle => "PANE (single)",
            MethodKind::PaneParallel => "PANE (parallel)",
            MethodKind::PaneR => "PANE-R",
            MethodKind::NrpLite => "NRP-like",
            MethodKind::TadwLite => "TADW-like",
            MethodKind::CanLite => "CAN-like",
            MethodKind::BaneLite => "BANE-like",
            MethodKind::TopoSvd => "TopoSVD",
            MethodKind::AttrSvd => "AttrSVD",
            MethodKind::BlaLite => "BLA-like",
        }
    }

    /// Methods compared in the link-prediction table (Table 5 row order).
    pub const LINK: [MethodKind; 9] = [
        MethodKind::NrpLite,
        MethodKind::TadwLite,
        MethodKind::BaneLite,
        MethodKind::TopoSvd,
        MethodKind::AttrSvd,
        MethodKind::CanLite,
        MethodKind::PaneR,
        MethodKind::PaneSingle,
        MethodKind::PaneParallel,
    ];

    /// Methods compared in the attribute-inference table (Table 4).
    pub const ATTR: [MethodKind; 5] = [
        MethodKind::BlaLite,
        MethodKind::CanLite,
        MethodKind::PaneR,
        MethodKind::PaneSingle,
        MethodKind::PaneParallel,
    ];

    /// Methods compared in node classification (Figure 2).
    pub const CLASS: [MethodKind; 8] = [
        MethodKind::NrpLite,
        MethodKind::TadwLite,
        MethodKind::BaneLite,
        MethodKind::TopoSvd,
        MethodKind::AttrSvd,
        MethodKind::CanLite,
        MethodKind::PaneSingle,
        MethodKind::PaneParallel,
    ];
}

/// Hyper-parameters shared across the harness.
#[derive(Debug, Clone, Copy)]
pub struct HarnessParams {
    /// Total embedding budget `k`.
    pub k: usize,
    /// Stopping probability `α`.
    pub alpha: f64,
    /// Error threshold `ε`.
    pub epsilon: f64,
    /// Threads for the parallel variants.
    pub threads: usize,
    /// Base seed.
    pub seed: u64,
}

impl Default for HarnessParams {
    fn default() -> Self {
        Self {
            k: 64,
            alpha: 0.5,
            epsilon: 0.015,
            threads: 4,
            seed: 42,
        }
    }
}

impl HarnessParams {
    /// PaneConfig for the given thread count. Multi-threaded runs select
    /// the paper's full parallel pipeline (Algorithm 5, split–merge init)
    /// via [`pane_core::InitStrategy::for_threads`]: the experiments exist
    /// to measure its quality/speed trade-off, which the library's
    /// thread-invariant default Greedy init would hide.
    pub fn pane_config(&self, threads: usize) -> PaneConfig {
        PaneConfig::builder()
            .dimension(self.k)
            .alpha(self.alpha)
            .error_threshold(self.epsilon)
            .threads(threads)
            .init_strategy(pane_core::InitStrategy::for_threads(threads))
            .seed(self.seed)
            .build()
    }

    fn iters(&self) -> usize {
        pane_core::iterations_for(self.epsilon, self.alpha)
    }
}

/// Result of fitting + scoring one method on one task.
#[derive(Debug, Clone)]
pub struct TaskEval {
    /// Quality metrics.
    pub result: AucAp,
    /// Wall-clock fit time (training only, excluding evaluation), seconds.
    pub fit_secs: f64,
    /// Free-text detail (e.g. which of the four scorers won).
    pub detail: String,
}

/// TADW's dense-matrix node cap used by the harness (the paper's analogue:
/// competitors that "cannot finish within a week" on large data are
/// reported as `-`).
pub const TADW_HARNESS_CAP: usize = 8_000;

/// Fits `kind` on the residual graph of `split` and evaluates link
/// prediction. Returns `None` if the method cannot run on this input.
pub fn eval_link(kind: MethodKind, split: &EdgeSplit, p: &HarnessParams) -> Option<TaskEval> {
    let g = &split.residual;
    let symmetric = g.is_undirected();
    match kind {
        MethodKind::PaneSingle | MethodKind::PaneParallel => {
            let threads = if kind == MethodKind::PaneParallel {
                p.threads
            } else {
                1
            };
            let (emb, fit_secs) = crate::timed(|| Pane::new(p.pane_config(threads)).embed(g).ok());
            let emb = emb?;
            let scorer = PaneScorer::new(&emb);
            let result = evaluate_link_scorer(&scorer, split, symmetric);
            Some(TaskEval {
                result,
                fit_secs,
                detail: "eq22".into(),
            })
        }
        MethodKind::PaneR => {
            let (emb, fit_secs) = crate::timed(|| PaneR::new(p.pane_config(1)).embed(g).ok());
            let emb = emb?;
            let scorer = PaneScorer::new(&emb);
            let result = evaluate_link_scorer(&scorer, split, symmetric);
            Some(TaskEval {
                result,
                fit_secs,
                detail: "eq22".into(),
            })
        }
        MethodKind::NrpLite => {
            let (model, fit_secs) =
                crate::timed(|| NrpLite::fit(g, p.k, p.alpha, p.iters(), p.seed));
            let result = evaluate_link_scorer(&model, split, symmetric);
            Some(TaskEval {
                result,
                fit_secs,
                detail: "xf·xb".into(),
            })
        }
        MethodKind::TadwLite => {
            if g.num_nodes() > TADW_HARNESS_CAP {
                return None;
            }
            let (model, fit_secs) = crate::timed(|| TadwLite::fit(g, p.k, 4, p.seed));
            let x = model.embedding();
            let (result, which) = best_of_four(&x, split, true, p.seed);
            Some(TaskEval {
                result,
                fit_secs,
                detail: which.into(),
            })
        }
        MethodKind::CanLite => {
            let (model, fit_secs) =
                crate::timed(|| CanLite::fit(g, p.k, p.alpha, p.iters(), p.seed));
            let (result, which) = best_of_four(model.node_embedding(), split, true, p.seed);
            Some(TaskEval {
                result,
                fit_secs,
                detail: which.into(),
            })
        }
        MethodKind::BaneLite => {
            let (model, fit_secs) =
                crate::timed(|| BaneLite::fit(g, p.k, p.alpha, p.iters(), p.seed));
            let (result, which) = best_of_four(&model.x, split, true, p.seed);
            Some(TaskEval {
                result,
                fit_secs,
                detail: which.into(),
            })
        }
        MethodKind::TopoSvd => {
            let (model, fit_secs) =
                crate::timed(|| TopoSvd::fit(g, p.k, p.alpha, p.iters(), p.seed));
            let (result, which) = best_of_four(&model.x, split, true, p.seed);
            Some(TaskEval {
                result,
                fit_secs,
                detail: which.into(),
            })
        }
        MethodKind::AttrSvd => {
            let (model, fit_secs) = crate::timed(|| AttrSvd::fit(g, p.k, p.seed));
            let (result, which) = best_of_four(&model.x, split, true, p.seed);
            Some(TaskEval {
                result,
                fit_secs,
                detail: which.into(),
            })
        }
        MethodKind::BlaLite => None, // not a link predictor
    }
}

/// Fits `kind` on the residual graph of `split` and evaluates attribute
/// inference. `None` if the method has no attribute scorer.
pub fn eval_attr(kind: MethodKind, split: &AttrSplit, p: &HarnessParams) -> Option<TaskEval> {
    let g = &split.residual;
    match kind {
        MethodKind::PaneSingle | MethodKind::PaneParallel => {
            let threads = if kind == MethodKind::PaneParallel {
                p.threads
            } else {
                1
            };
            let (emb, fit_secs) = crate::timed(|| Pane::new(p.pane_config(threads)).embed(g).ok());
            let emb = emb?;
            let scorer = PaneScorer::new(&emb);
            let result = evaluate_attr_scorer(&scorer, split);
            Some(TaskEval {
                result,
                fit_secs,
                detail: "eq21".into(),
            })
        }
        MethodKind::PaneR => {
            let (emb, fit_secs) = crate::timed(|| PaneR::new(p.pane_config(1)).embed(g).ok());
            let emb = emb?;
            let scorer = PaneScorer::new(&emb);
            let result = evaluate_attr_scorer(&scorer, split);
            Some(TaskEval {
                result,
                fit_secs,
                detail: "eq21".into(),
            })
        }
        MethodKind::CanLite => {
            let (model, fit_secs) =
                crate::timed(|| CanLite::fit(g, p.k, p.alpha, p.iters(), p.seed));
            let result = evaluate_attr_scorer(&model, split);
            Some(TaskEval {
                result,
                fit_secs,
                detail: "x·y".into(),
            })
        }
        MethodKind::BlaLite => {
            let (model, fit_secs) = crate::timed(|| BlaLite::fit(g, 0.7, p.iters()));
            let result = evaluate_attr_scorer(&model, split);
            Some(TaskEval {
                result,
                fit_secs,
                detail: "propagation".into(),
            })
        }
        _ => None,
    }
}

/// Fits `kind` on the full graph and returns per-node classifier features.
/// `None` if the method cannot produce node features on this input.
pub fn node_features(
    kind: MethodKind,
    g: &AttributedGraph,
    p: &HarnessParams,
) -> Option<(DenseMatrix, f64)> {
    fn collect<S: NodeFeatureSource>(src: &S, n: usize) -> DenseMatrix {
        let dim = src.feature_dim();
        let mut x = DenseMatrix::zeros(n, dim);
        for v in 0..n {
            x.row_mut(v).copy_from_slice(&src.node_features(v));
        }
        x
    }
    let n = g.num_nodes();
    match kind {
        MethodKind::PaneSingle | MethodKind::PaneParallel => {
            let threads = if kind == MethodKind::PaneParallel {
                p.threads
            } else {
                1
            };
            let (emb, secs) = crate::timed(|| Pane::new(p.pane_config(threads)).embed(g).ok());
            let emb = emb?;
            let scorer = PaneScorer::new(&emb);
            Some((collect(&scorer, n), secs))
        }
        MethodKind::PaneR => {
            let (emb, secs) = crate::timed(|| PaneR::new(p.pane_config(1)).embed(g).ok());
            let emb = emb?;
            let scorer = PaneScorer::new(&emb);
            Some((collect(&scorer, n), secs))
        }
        MethodKind::NrpLite => {
            let (model, secs) = crate::timed(|| NrpLite::fit(g, p.k, p.alpha, p.iters(), p.seed));
            Some((collect(&model, n), secs))
        }
        MethodKind::TadwLite => {
            if n > TADW_HARNESS_CAP {
                return None;
            }
            let (model, secs) = crate::timed(|| TadwLite::fit(g, p.k, 4, p.seed));
            let mut x = model.embedding();
            x.normalize_rows();
            Some((x, secs))
        }
        MethodKind::CanLite => {
            let (model, secs) = crate::timed(|| CanLite::fit(g, p.k, p.alpha, p.iters(), p.seed));
            Some((collect(&model, n), secs))
        }
        MethodKind::BaneLite => {
            let (model, secs) = crate::timed(|| BaneLite::fit(g, p.k, p.alpha, p.iters(), p.seed));
            let mut x = model.x.clone();
            x.normalize_rows();
            Some((x, secs))
        }
        MethodKind::TopoSvd => {
            let (model, secs) = crate::timed(|| TopoSvd::fit(g, p.k, p.alpha, p.iters(), p.seed));
            let mut x = model.x.clone();
            x.normalize_rows();
            Some((x, secs))
        }
        MethodKind::AttrSvd => {
            let (model, secs) = crate::timed(|| AttrSvd::fit(g, p.k, p.seed));
            let mut x = model.x.clone();
            x.normalize_rows();
            Some((x, secs))
        }
        MethodKind::BlaLite => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pane_datasets::DatasetZoo;
    use pane_eval::split::{split_attribute_entries, split_edges};

    fn params() -> HarnessParams {
        HarnessParams {
            k: 16,
            threads: 2,
            ..Default::default()
        }
    }

    #[test]
    fn all_link_methods_run_or_decline() {
        let g = DatasetZoo::CoraLike.generate_scaled(0.05, 1).graph;
        let split = split_edges(&g, 0.3, 2);
        for kind in MethodKind::LINK {
            let out = eval_link(kind, &split, &params());
            let eval = out.unwrap_or_else(|| panic!("{} should run on a small graph", kind.name()));
            assert!(
                (0.0..=1.0).contains(&eval.result.auc),
                "{}: auc {}",
                kind.name(),
                eval.result.auc
            );
        }
        // BLA declines link prediction.
        assert!(eval_link(MethodKind::BlaLite, &split, &params()).is_none());
    }

    #[test]
    fn all_attr_methods_run_or_decline() {
        let g = DatasetZoo::CoraLike.generate_scaled(0.05, 3).graph;
        let split = split_attribute_entries(&g, 0.2, 4);
        for kind in MethodKind::ATTR {
            let eval = eval_attr(kind, &split, &params())
                .unwrap_or_else(|| panic!("{} should infer attributes", kind.name()));
            assert!(eval.result.auc.is_finite());
        }
        assert!(eval_attr(MethodKind::NrpLite, &split, &params()).is_none());
    }

    #[test]
    fn tadw_declines_above_cap() {
        // A sparse graph exceeding the harness cap: TADW reports None
        // (rendered as "-"), everything else still runs.
        let g = pane_graph::gen::generate_sbm(&pane_graph::gen::SbmConfig {
            nodes: TADW_HARNESS_CAP + 10,
            avg_out_degree: 1.0,
            attributes: 8,
            attrs_per_node: 1.0,
            seed: 2,
            ..Default::default()
        });
        let split = split_edges(&g, 0.3, 1);
        assert!(eval_link(MethodKind::TadwLite, &split, &params()).is_none());
        assert!(node_features(MethodKind::TadwLite, &g, &params()).is_none());
    }

    #[test]
    fn feature_extraction_shapes() {
        let g = DatasetZoo::CoraLike.generate_scaled(0.05, 5).graph;
        for kind in MethodKind::CLASS {
            let (x, _) = node_features(kind, &g, &params())
                .unwrap_or_else(|| panic!("{} should emit features", kind.name()));
            assert_eq!(x.rows(), g.num_nodes(), "{}", kind.name());
            assert!(x.cols() > 0);
        }
    }
}
