//! **Figure 3** — running time of every method on every dataset (the
//! paper's log-scale bar charts, as a table).
//!
//! The timing is the embedding/fit time under the link-prediction protocol
//! (the paper's reported time also excludes data loading and output).

use pane_bench::methods::{eval_link, HarnessParams, MethodKind};
use pane_bench::report::Report;
use pane_bench::{scale_from_env, threads_from_env};
use pane_datasets::DatasetZoo;
use pane_eval::split::split_edges;

fn main() {
    let scale = scale_from_env();
    let params = HarnessParams {
        threads: threads_from_env(),
        ..Default::default()
    };
    let datasets: Vec<DatasetZoo> = match std::env::var("PANE_DATASETS").ok().as_deref() {
        Some("small") => DatasetZoo::SMALL.to_vec(),
        _ => DatasetZoo::ALL.to_vec(),
    };

    let mut header: Vec<String> = vec!["method".into()];
    header.extend(datasets.iter().map(|z| format!("{} (s)", z.name())));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut rep = Report::new("fig3_running_time", &header_refs);

    let splits: Vec<_> = datasets
        .iter()
        .map(|z| {
            let ds = z.generate_scaled(scale, 42);
            eprintln!("[fig3] generated {} ({})", z.name(), ds.graph.stats());
            split_edges(&ds.graph, 0.3, 9)
        })
        .collect();

    for kind in MethodKind::LINK {
        let mut cells = vec![kind.name().to_string()];
        for (z, split) in datasets.iter().zip(&splits) {
            match eval_link(kind, split, &params) {
                Some(eval) => {
                    eprintln!(
                        "[fig3] {} on {}: {:.2}s",
                        kind.name(),
                        z.name(),
                        eval.fit_secs
                    );
                    cells.push(format!("{:.2}", eval.fit_secs));
                }
                None => cells.push("-".into()),
            }
        }
        rep.row(&cells);
    }
    rep.finish().expect("write results");
}
