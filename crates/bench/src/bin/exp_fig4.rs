//! **Figure 4** — efficiency with varying parameters on the two largest
//! harness datasets (Google+-like and TWeibo-like):
//!
//! * 4a: speedup of parallel PANE vs single-thread at nb ∈ {1, 2, 5, 10, 20};
//! * 4b: running time vs space budget k ∈ {16, 32, 64, 128, 256};
//! * 4c: running time vs error threshold ε ∈ {0.001, 0.005, 0.015, 0.05, 0.25}.
//!
//! Note on 4a: this container exposes **one CPU core**, so wall-clock
//! speedups saturate at ~1×; the table additionally reports the per-thread
//! work share (ideal n_b-way partition), which is what the block
//! decomposition guarantees and what multi-core hardware turns into the
//! paper's near-linear speedups.

use pane_bench::report::Report;
use pane_bench::{scale_from_env, timed};
use pane_core::{Pane, PaneConfig};
use pane_datasets::DatasetZoo;

fn cfg(k: usize, eps: f64, nb: usize) -> PaneConfig {
    PaneConfig::builder()
        .dimension(k)
        .alpha(0.5)
        .error_threshold(eps)
        .threads(nb)
        // 4a times the paper's parallel pipeline (Algorithm 5 incl.
        // split-merge init), not the thread-invariant library default.
        .init_strategy(pane_core::InitStrategy::for_threads(nb))
        .seed(42)
        .build()
}

fn main() {
    let scale = scale_from_env();
    let datasets = [DatasetZoo::GooglePlusLike, DatasetZoo::TWeiboLike];
    let graphs: Vec<_> = datasets
        .iter()
        .map(|z| {
            let ds = z.generate_scaled(scale, 42);
            eprintln!("[fig4] generated {} ({})", z.name(), ds.graph.stats());
            ds.graph
        })
        .collect();

    // 4a: speedup vs nb.
    let mut rep_a = Report::new(
        "fig4a_speedup_vs_threads",
        &["dataset", "nb", "time (s)", "speedup", "work_share"],
    );
    for (z, g) in datasets.iter().zip(&graphs) {
        let (_, base) = timed(|| Pane::new(cfg(64, 0.015, 1)).embed(g).unwrap());
        for nb in [1usize, 2, 5, 10, 20] {
            let (_, secs) = timed(|| Pane::new(cfg(64, 0.015, nb)).embed(g).unwrap());
            rep_a.row(&[
                z.name().into(),
                nb.to_string(),
                format!("{secs:.2}"),
                format!("{:.2}", base / secs),
                format!("1/{nb}"),
            ]);
            eprintln!("[fig4a] {} nb={nb}: {secs:.2}s", z.name());
        }
    }
    rep_a.finish().expect("write results");

    // 4b: time vs k.
    let mut rep_b = Report::new("fig4b_time_vs_k", &["dataset", "k", "time (s)"]);
    for (z, g) in datasets.iter().zip(&graphs) {
        for k in [16usize, 32, 64, 128, 256] {
            let (_, secs) = timed(|| Pane::new(cfg(k, 0.015, 4)).embed(g).unwrap());
            rep_b.row(&[z.name().into(), k.to_string(), format!("{secs:.2}")]);
            eprintln!("[fig4b] {} k={k}: {secs:.2}s", z.name());
        }
    }
    rep_b.finish().expect("write results");

    // 4c: time vs epsilon.
    let mut rep_c = Report::new("fig4c_time_vs_eps", &["dataset", "eps", "t", "time (s)"]);
    for (z, g) in datasets.iter().zip(&graphs) {
        for eps in [0.001, 0.005, 0.015, 0.05, 0.25] {
            let t = pane_core::iterations_for(eps, 0.5);
            let (_, secs) = timed(|| Pane::new(cfg(64, eps, 4)).embed(g).unwrap());
            rep_c.row(&[
                z.name().into(),
                format!("{eps}"),
                t.to_string(),
                format!("{secs:.2}"),
            ]);
            eprintln!("[fig4c] {} eps={eps}: {secs:.2}s", z.name());
        }
    }
    rep_c.finish().expect("write results");
}
