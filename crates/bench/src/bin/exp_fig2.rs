//! **Figure 2** — node classification micro-F1 vs training fraction
//! (0.1 … 0.9) for every dataset and method.
//!
//! Protocol (§5.4): embed the full graph, train one-vs-rest linear
//! classifiers on `[X_f ‖ X_b]` (normalized halves), predict held-out
//! nodes' labels top-k, average 5 repeats. Macro-F1 is recorded in the TSV
//! as well (the paper omits it "for brevity"; we keep it).
//!
//! On the large datasets the labeled set is subsampled to at most
//! `CLASS_NODE_CAP` nodes before training — the classifier, not the
//! embedding, would otherwise dominate the harness runtime.

use pane_bench::methods::{node_features, HarnessParams, MethodKind};
use pane_bench::report::Report;
use pane_bench::{scale_from_env, threads_from_env};
use pane_datasets::DatasetZoo;
use pane_eval::scoring::NodeFeatureSource;
use pane_eval::tasks::node_class::{node_classification, NodeClassOptions};
use pane_linalg::DenseMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Maximum labeled nodes fed to the classifier per dataset.
const CLASS_NODE_CAP: usize = 3000;

struct Precomputed<'a> {
    x: &'a DenseMatrix,
}

impl NodeFeatureSource for Precomputed<'_> {
    fn node_features(&self, v: usize) -> Vec<f64> {
        self.x.row(v).to_vec()
    }
    fn feature_dim(&self) -> usize {
        self.x.cols()
    }
}

fn main() {
    let scale = scale_from_env();
    let params = HarnessParams {
        threads: threads_from_env(),
        ..Default::default()
    };
    let fractions = [0.1, 0.3, 0.5, 0.7, 0.9];
    let datasets: Vec<DatasetZoo> = match std::env::var("PANE_DATASETS").ok().as_deref() {
        Some("small") => DatasetZoo::SMALL.to_vec(),
        _ => DatasetZoo::ALL.to_vec(),
    };

    let mut rep = Report::new(
        "fig2_node_classification",
        &["dataset", "method", "train_frac", "micro_f1", "macro_f1"],
    );

    for zoo in datasets {
        let ds = zoo.generate_scaled(scale, 42);
        let g = &ds.graph;
        eprintln!("[fig2] generated {} ({})", zoo.name(), g.stats());

        // Subsample labeled nodes once per dataset (shared across methods).
        let mut keep: Vec<bool> = vec![true; g.num_nodes()];
        let labeled = (0..g.num_nodes())
            .filter(|&v| !g.labels_of(v).is_empty())
            .count();
        if labeled > CLASS_NODE_CAP {
            let mut rng = StdRng::seed_from_u64(7);
            let p = CLASS_NODE_CAP as f64 / labeled as f64;
            for k in keep.iter_mut() {
                *k = rng.gen::<f64>() < p;
            }
        }
        let labels: Vec<Vec<u32>> = (0..g.num_nodes())
            .map(|v| {
                if keep[v] {
                    g.labels_of(v).to_vec()
                } else {
                    Vec::new()
                }
            })
            .collect();

        for kind in MethodKind::CLASS {
            let Some((x, fit_secs)) = node_features(kind, g, &params) else {
                eprintln!("[fig2] {} skipped on {}", kind.name(), zoo.name());
                continue;
            };
            eprintln!(
                "[fig2] {} embedded {} in {:.1}s",
                kind.name(),
                zoo.name(),
                fit_secs
            );
            let src = Precomputed { x: &x };
            for &frac in &fractions {
                let opts = NodeClassOptions {
                    train_frac: frac,
                    repeats: 3,
                    seed: 3,
                    epochs: 80,
                    ..Default::default()
                };
                let r = node_classification(&src, &labels, g.num_labels(), &opts);
                rep.row(&[
                    zoo.name().into(),
                    kind.name().into(),
                    format!("{frac}"),
                    format!("{:.3}", r.micro_f1),
                    format!("{:.3}", r.macro_f1),
                ]);
            }
        }
    }
    rep.finish().expect("write results");
}
