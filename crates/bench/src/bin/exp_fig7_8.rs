//! **Figures 7 & 8** — effectiveness of GreedyInit (§5.7): running time vs
//! AUC for PANE and PANE-R (random init) at CCD sweep counts
//! t ∈ {1, 2, 5, 10, 20}, on the Facebook-, Pubmed- and Flickr-like
//! datasets, for link prediction (Fig. 7) and attribute inference (Fig. 8).

use pane_baselines::PaneR;
use pane_bench::report::Report;
use pane_bench::{scale_from_env, timed};
use pane_core::{Pane, PaneConfig};
use pane_datasets::DatasetZoo;
use pane_eval::scoring::PaneScorer;
use pane_eval::split::{split_attribute_entries, split_edges};
use pane_eval::tasks::evaluate_attr_scorer;
use pane_eval::tasks::link_pred::evaluate_link_scorer;

fn cfg(sweeps: usize) -> PaneConfig {
    PaneConfig::builder()
        .dimension(64)
        .alpha(0.5)
        .error_threshold(0.015)
        .ccd_sweeps(sweeps)
        .seed(42)
        .build()
}

fn main() {
    let scale = scale_from_env();
    let datasets = [
        DatasetZoo::FacebookLike,
        DatasetZoo::PubmedLike,
        DatasetZoo::FlickrLike,
    ];
    let sweeps = [1usize, 2, 5, 10, 20];

    let mut rep7 = Report::new(
        "fig7_greedy_init_link",
        &["dataset", "init", "t", "time (s)", "AUC"],
    );
    let mut rep8 = Report::new(
        "fig8_greedy_init_attr",
        &["dataset", "init", "t", "time (s)", "AUC"],
    );

    for zoo in datasets {
        let ds = zoo.generate_scaled(scale, 42);
        eprintln!("[fig7/8] generated {} ({})", zoo.name(), ds.graph.stats());
        let link_split = split_edges(&ds.graph, 0.3, 9);
        let attr_split = split_attribute_entries(&ds.graph, 0.2, 7);
        let sym = ds.graph.is_undirected();

        for t in sweeps {
            // PANE with GreedyInit.
            let (emb, secs) = timed(|| Pane::new(cfg(t)).embed(&link_split.residual).unwrap());
            let auc = evaluate_link_scorer(&PaneScorer::new(&emb), &link_split, sym).auc;
            rep7.row(&[
                zoo.name().into(),
                "greedy".into(),
                t.to_string(),
                format!("{secs:.2}"),
                format!("{auc:.3}"),
            ]);
            eprintln!(
                "[fig7] {} greedy t={t}: {secs:.2}s AUC {auc:.3}",
                zoo.name()
            );

            // PANE-R.
            let (emb_r, secs_r) = timed(|| PaneR::new(cfg(t)).embed(&link_split.residual).unwrap());
            let auc_r = evaluate_link_scorer(&PaneScorer::new(&emb_r), &link_split, sym).auc;
            rep7.row(&[
                zoo.name().into(),
                "random".into(),
                t.to_string(),
                format!("{secs_r:.2}"),
                format!("{auc_r:.3}"),
            ]);
            eprintln!(
                "[fig7] {} random t={t}: {secs_r:.2}s AUC {auc_r:.3}",
                zoo.name()
            );

            // Figure 8: attribute inference on the attribute split.
            let (emb_a, secs_a) = timed(|| Pane::new(cfg(t)).embed(&attr_split.residual).unwrap());
            let auc_a = evaluate_attr_scorer(&PaneScorer::new(&emb_a), &attr_split).auc;
            rep8.row(&[
                zoo.name().into(),
                "greedy".into(),
                t.to_string(),
                format!("{secs_a:.2}"),
                format!("{auc_a:.3}"),
            ]);

            let (emb_ar, secs_ar) =
                timed(|| PaneR::new(cfg(t)).embed(&attr_split.residual).unwrap());
            let auc_ar = evaluate_attr_scorer(&PaneScorer::new(&emb_ar), &attr_split).auc;
            rep8.row(&[
                zoo.name().into(),
                "random".into(),
                t.to_string(),
                format!("{secs_ar:.2}"),
                format!("{auc_ar:.3}"),
            ]);
            eprintln!(
                "[fig8] {} t={t}: greedy {auc_a:.3} vs random {auc_ar:.3}",
                zoo.name()
            );
        }
    }
    rep7.finish().expect("write results");
    rep8.finish().expect("write results");
}
