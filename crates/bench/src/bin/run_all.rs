//! Runs every experiment binary in sequence (Table 2 → Figure 8),
//! regenerating all of `results/`. Equivalent to invoking each
//! `exp_*` binary yourself; honors `PANE_SCALE`, `PANE_THREADS`,
//! `PANE_DATASETS` and `PANE_RESULTS_DIR`.

use std::process::Command;

/// (binary, default PANE_SCALE override). The parameter-grid figures run
/// at 0.6 scale by default so the full suite fits a single-core budget;
/// setting PANE_SCALE explicitly overrides everything.
const BINS: [(&str, Option<&str>); 10] = [
    ("exp_table2", None),
    ("exp_table3", None),
    ("exp_table4", None),
    ("exp_table5", None),
    ("exp_fig2", None),
    ("exp_fig3", None),
    ("exp_fig4", Some("0.6")),
    ("exp_fig5", Some("0.6")),
    ("exp_fig6", Some("0.6")),
    ("exp_fig7_8", None),
];

fn main() {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let user_scale = std::env::var("PANE_SCALE").ok();
    let mut failed = Vec::new();
    for (bin, default_scale) in BINS {
        let path = dir.join(bin);
        eprintln!("=== running {bin} ===");
        let mut cmd = Command::new(&path);
        match (&user_scale, default_scale) {
            (Some(s), _) => {
                cmd.env("PANE_SCALE", s);
            }
            (None, Some(s)) => {
                cmd.env("PANE_SCALE", s);
            }
            (None, None) => {}
        }
        let status = cmd.status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{bin} exited with {s}");
                failed.push(bin);
            }
            Err(e) => {
                eprintln!("{bin} failed to start: {e} (build with `cargo build --release -p pane-bench` first)");
                failed.push(bin);
            }
        }
    }
    if failed.is_empty() {
        eprintln!("all experiments completed; see results/");
    } else {
        eprintln!("failed: {failed:?}");
        std::process::exit(1);
    }
}
