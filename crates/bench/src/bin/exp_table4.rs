//! **Table 4** — attribute inference AUC/AP per dataset per method.
//!
//! Protocol (§5.2): 80/20 split of the attribute entries; methods train on
//! the residual graph; rank hidden positives vs sampled zero entries.
//! Methods: BLA-like, CAN-like, PANE-R, PANE (single), PANE (parallel);
//! the other competitors have no attribute embeddings (as in the paper,
//! where only CAN among the ANE methods can infer attributes).

use pane_bench::methods::{eval_attr, HarnessParams, MethodKind};
use pane_bench::report::Report;
use pane_bench::{scale_from_env, threads_from_env};
use pane_datasets::DatasetZoo;
use pane_eval::split::split_attribute_entries;

fn main() {
    let scale = scale_from_env();
    let params = HarnessParams {
        threads: threads_from_env(),
        ..Default::default()
    };
    let datasets: Vec<DatasetZoo> = match std::env::var("PANE_DATASETS").ok().as_deref() {
        Some("small") => DatasetZoo::SMALL.to_vec(),
        _ => DatasetZoo::ALL.to_vec(),
    };

    let mut header: Vec<String> = vec!["method".into()];
    for z in &datasets {
        header.push(format!("{} AUC", z.name()));
        header.push(format!("{} AP", z.name()));
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut rep = Report::new("table4_attribute_inference", &header_refs);

    let splits: Vec<_> = datasets
        .iter()
        .map(|z| {
            let ds = z.generate_scaled(scale, 42);
            eprintln!("[table4] generated {} ({})", z.name(), ds.graph.stats());
            split_attribute_entries(&ds.graph, 0.2, 7)
        })
        .collect();

    for kind in MethodKind::ATTR {
        let mut cells = vec![kind.name().to_string()];
        for (z, split) in datasets.iter().zip(&splits) {
            match eval_attr(kind, split, &params) {
                Some(eval) => {
                    eprintln!(
                        "[table4] {} on {}: {} ({:.1}s)",
                        kind.name(),
                        z.name(),
                        eval.result,
                        eval.fit_secs
                    );
                    cells.push(format!("{:.3}", eval.result.auc));
                    cells.push(format!("{:.3}", eval.result.ap));
                }
                None => {
                    cells.push("-".into());
                    cells.push("-".into());
                }
            }
        }
        rep.row(&cells);
    }
    rep.finish().expect("write results");
}
