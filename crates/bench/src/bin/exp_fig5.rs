//! **Figure 5** — attribute-inference AUC with varying k, nb, ε and α on
//! the five small datasets.

use pane_bench::methods::HarnessParams;
use pane_bench::report::Report;
use pane_bench::scale_from_env;
use pane_core::Pane;
use pane_datasets::DatasetZoo;
use pane_eval::scoring::PaneScorer;
use pane_eval::split::{split_attribute_entries, AttrSplit};
use pane_eval::tasks::evaluate_attr_scorer;

fn run(split: &AttrSplit, k: usize, nb: usize, eps: f64, alpha: f64) -> f64 {
    let cfg = pane_core::PaneConfig::builder()
        .dimension(k)
        .alpha(alpha)
        .error_threshold(eps)
        .threads(nb)
        // The nb sweep reproduces the paper's split-merge ablation; the
        // default Greedy init is bit-invariant in nb and would flatline it.
        .init_strategy(pane_core::InitStrategy::for_threads(nb))
        .seed(42)
        .build();
    let emb = Pane::new(cfg).embed(&split.residual).expect("embed");
    evaluate_attr_scorer(&PaneScorer::new(&emb), split).auc
}

fn main() {
    let scale = scale_from_env();
    let p = HarnessParams::default();
    let splits: Vec<(DatasetZoo, AttrSplit)> = DatasetZoo::SMALL
        .iter()
        .map(|z| {
            let ds = z.generate_scaled(scale, 42);
            eprintln!("[fig5] generated {} ({})", z.name(), ds.graph.stats());
            (*z, split_attribute_entries(&ds.graph, 0.2, 7))
        })
        .collect();

    let mut rep = Report::new(
        "fig5_attr_inference_params",
        &["dataset", "param", "value", "AUC"],
    );
    for (z, split) in &splits {
        for k in [16usize, 32, 64, 128, 256] {
            let auc = run(split, k, 1, p.epsilon, p.alpha);
            rep.row(&[
                z.name().into(),
                "k".into(),
                k.to_string(),
                format!("{auc:.3}"),
            ]);
            eprintln!("[fig5] {} k={k}: {auc:.3}", z.name());
        }
        for nb in [1usize, 2, 5, 10, 20] {
            let auc = run(split, p.k, nb, p.epsilon, p.alpha);
            rep.row(&[
                z.name().into(),
                "nb".into(),
                nb.to_string(),
                format!("{auc:.3}"),
            ]);
            eprintln!("[fig5] {} nb={nb}: {auc:.3}", z.name());
        }
        for eps in [0.001, 0.005, 0.015, 0.05, 0.25] {
            let auc = run(split, p.k, 1, eps, p.alpha);
            rep.row(&[
                z.name().into(),
                "eps".into(),
                format!("{eps}"),
                format!("{auc:.3}"),
            ]);
            eprintln!("[fig5] {} eps={eps}: {auc:.3}", z.name());
        }
        for alpha in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let auc = run(split, p.k, 1, p.epsilon, alpha);
            rep.row(&[
                z.name().into(),
                "alpha".into(),
                format!("{alpha}"),
                format!("{auc:.3}"),
            ]);
            eprintln!("[fig5] {} alpha={alpha}: {auc:.3}", z.name());
        }
    }
    rep.finish().expect("write results");
}
