//! **Table 5** — link prediction AUC/AP per dataset per method.
//!
//! Protocol (§5.3): remove 30% of edges, train on the residual graph, rank
//! removed edges against equal negatives. PANE/NRP score direction-aware
//! (Eq. 22 / X_f·X_b); single-embedding competitors get the best of the
//! four scorers.

use pane_bench::methods::{eval_link, HarnessParams, MethodKind};
use pane_bench::report::Report;
use pane_bench::{scale_from_env, threads_from_env};
use pane_datasets::DatasetZoo;
use pane_eval::split::split_edges;

fn main() {
    let scale = scale_from_env();
    let params = HarnessParams {
        threads: threads_from_env(),
        ..Default::default()
    };
    let datasets: Vec<DatasetZoo> = match std::env::var("PANE_DATASETS").ok().as_deref() {
        Some("small") => DatasetZoo::SMALL.to_vec(),
        _ => DatasetZoo::ALL.to_vec(),
    };

    let mut header: Vec<String> = vec!["method".into()];
    for z in &datasets {
        header.push(format!("{} AUC", z.name()));
        header.push(format!("{} AP", z.name()));
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut rep = Report::new("table5_link_prediction", &header_refs);

    let splits: Vec<_> = datasets
        .iter()
        .map(|z| {
            let ds = z.generate_scaled(scale, 42);
            eprintln!("[table5] generated {} ({})", z.name(), ds.graph.stats());
            split_edges(&ds.graph, 0.3, 9)
        })
        .collect();

    for kind in MethodKind::LINK {
        let mut cells = vec![kind.name().to_string()];
        for (z, split) in datasets.iter().zip(&splits) {
            match eval_link(kind, split, &params) {
                Some(eval) => {
                    eprintln!(
                        "[table5] {} on {}: {} via {} ({:.1}s)",
                        kind.name(),
                        z.name(),
                        eval.result,
                        eval.detail,
                        eval.fit_secs
                    );
                    cells.push(format!("{:.3}", eval.result.auc));
                    cells.push(format!("{:.3}", eval.result.ap));
                }
                None => {
                    cells.push("-".into());
                    cells.push("-".into());
                }
            }
        }
        rep.row(&cells);
    }
    rep.finish().expect("write results");
}
