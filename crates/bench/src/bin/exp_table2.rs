//! **Table 2** — exact forward/backward affinities of the running example
//! (Figure 1 graph, α = 0.15), cross-checked against Monte-Carlo walks.
//!
//! The paper's Table 2 lists the target values `X[v_i]·Y[r_j]ᵀ` for the
//! example graph; its exact edge drawing is only available as an image, so
//! this binary prints the affinities of our reconstruction (see
//! `pane_graph::toy` for the properties it preserves) from three sources:
//!
//! * APMI at high iteration count (the closed form);
//! * Monte-Carlo forward/backward walks (the paper's method for Table 2);
//! * a full PANE embedding at k = 6, whose dot products approximate both.

use pane_bench::report::Report;
use pane_core::{apmi, ApmiInputs, Pane, PaneConfig};
use pane_graph::toy::{figure1_graph, EXAMPLE_ALPHA};
use pane_graph::walks::{RestartRule, WalkSimulator};
use pane_graph::DanglingPolicy;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let g = figure1_graph();
    let alpha = EXAMPLE_ALPHA;

    // Closed form.
    let p = g.random_walk_matrix(DanglingPolicy::SelfLoop);
    let pt = p.transpose();
    let rr = g.attr_row_normalized();
    let rc = g.attr_col_normalized();
    let aff = apmi(&ApmiInputs {
        p: &p,
        pt: &pt,
        rr: &rr,
        rc: &rc,
        alpha,
        t: 60,
    });

    // Monte-Carlo estimate (the paper's "simulated random walks").
    let sim = WalkSimulator::new(&g, alpha, DanglingPolicy::SelfLoop, RestartRule::Discard);
    let mut rng = StdRng::seed_from_u64(2021);
    let (f_mc, b_mc) = sim.empirical_affinities(200_000, &mut rng);

    // Embedding approximation.
    let cfg = PaneConfig::builder()
        .dimension(6)
        .alpha(alpha)
        .error_threshold(0.001)
        .seed(7)
        .build();
    let emb = Pane::new(cfg).embed(&g).expect("toy graph embeds");

    let mut rep = Report::new(
        "table2_running_example",
        &[
            "pair", "F (APMI)", "F (MC)", "Xf·Y", "B (APMI)", "B (MC)", "Xb·Y",
        ],
    );
    for v in 0..g.num_nodes() {
        for r in 0..g.num_attributes() {
            let xf_y = pane_linalg::vecops::dot(emb.forward.row(v), emb.attribute.row(r));
            let xb_y = pane_linalg::vecops::dot(emb.backward.row(v), emb.attribute.row(r));
            rep.row(&[
                format!("(v{}, r{})", v + 1, r + 1),
                format!("{:.3}", aff.forward.get(v, r)),
                format!("{:.3}", f_mc.get(v, r)),
                format!("{xf_y:.3}"),
                format!("{:.3}", aff.backward.get(v, r)),
                format!("{:.3}", b_mc.get(v, r)),
                format!("{xb_y:.3}"),
            ]);
        }
    }
    rep.finish().expect("write results");

    // The qualitative claims of §2.3, verified loudly.
    use pane_graph::toy::{attrs::*, nodes::*};
    let f = &aff.forward;
    let b = &aff.backward;
    println!("checks:");
    println!(
        "  v5 forward prefers r3 over owned r1 (misleading):  {}",
        f.get(V5, R3) > f.get(V5, R1)
    );
    println!(
        "  combined F+B repairs v5's ranking (prefers r1):    {}",
        f.get(V5, R1) + b.get(V5, R1) > f.get(V5, R3) + b.get(V5, R3)
    );
    println!(
        "  v1 (attribute-less) has high affinity with r1:     {}",
        f.get(V1, R1) > f.get(V1, R3)
    );
}
