//! **Table 3** — dataset statistics: the paper's real datasets next to our
//! generated analogues at the current `PANE_SCALE`.

use pane_bench::report::Report;
use pane_bench::scale_from_env;
use pane_datasets::DatasetZoo;

fn human(x: f64) -> String {
    if x >= 1e6 {
        format!("{:.1}M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.1}K", x / 1e3)
    } else {
        format!("{x:.0}")
    }
}

fn main() {
    let scale = scale_from_env();
    let mut rep = Report::new(
        "table3_datasets",
        &[
            "dataset",
            "|V| paper",
            "|V| ours",
            "|E_V| paper",
            "|E_V| ours",
            "|R| paper",
            "|R| ours",
            "|E_R| paper",
            "|E_R| ours",
            "|L| paper",
            "|L| ours",
            "directed",
        ],
    );
    for zoo in DatasetZoo::ALL {
        let paper = zoo.paper_stats();
        let ds = zoo.generate_scaled(scale, 42);
        let s = ds.graph.stats();
        rep.row(&[
            zoo.name().into(),
            human(paper.nodes),
            human(s.nodes as f64),
            human(paper.edges),
            human(s.edges as f64),
            human(paper.attributes),
            human(s.attributes as f64),
            human(paper.attr_entries),
            human(s.attribute_entries as f64),
            paper.labels.to_string(),
            s.labels.to_string(),
            paper.directed.to_string(),
        ]);
    }
    rep.finish().expect("write results");
}
