//! TSV + pretty-table result writer.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Collects rows for one experiment and writes them to `results/`.
pub struct Report {
    name: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// Starts a report called `name` (becomes `results/<name>.tsv`).
    pub fn new(name: &str, header: &[&str]) -> Self {
        Self {
            name: name.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Convenience: appends a row of `&str`/`String` mixed display items.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) {
        let strs: Vec<String> = cells.iter().map(|c| format!("{c}")).collect();
        self.row(&strs);
    }

    /// Root results directory: `$PANE_RESULTS_DIR` or `results/`.
    pub fn results_dir() -> PathBuf {
        std::env::var("PANE_RESULTS_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("results"))
    }

    /// Writes `<dir>/<name>.tsv` and returns the rendered pretty table.
    pub fn finish(&self) -> std::io::Result<String> {
        let dir = Self::results_dir();
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.tsv", self.name));
        self.write_tsv(&path)?;
        let pretty = self.pretty();
        println!("{pretty}");
        println!("[written {}]", path.display());
        Ok(pretty)
    }

    fn write_tsv(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::io::BufWriter::new(fs::File::create(path)?);
        writeln!(f, "{}", self.header.join("\t"))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join("\t"))?;
        }
        f.flush()
    }

    /// Renders an aligned text table.
    pub fn pretty(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!("{c:<w$}  ", w = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&format!("== {} ==\n", self.name));
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + widths.len() * 2));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_alignment_and_tsv() {
        std::env::set_var(
            "PANE_RESULTS_DIR",
            std::env::temp_dir()
                .join("pane_report_test")
                .to_str()
                .unwrap(),
        );
        let mut r = Report::new("unit_test_report", &["method", "auc"]);
        r.row(&["pane".into(), "0.95".into()]);
        r.row(&["longer-method-name".into(), "0.5".into()]);
        let pretty = r.finish().unwrap();
        assert!(pretty.contains("method"));
        assert!(pretty.contains("longer-method-name"));
        let tsv =
            std::fs::read_to_string(Report::results_dir().join("unit_test_report.tsv")).unwrap();
        assert!(tsv.starts_with("method\tauc\n"));
        assert_eq!(tsv.lines().count(), 3);
        std::env::remove_var("PANE_RESULTS_DIR");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut r = Report::new("x", &["a", "b"]);
        r.row(&["only-one".into()]);
    }
}
