//! Instrumentation overhead on the batched query path — the acceptance
//! benchmark of the observability tier: the same flat `ServeEngine`
//! answers an identical 64-query `similar-nodes` request twice, once
//! behind the bare `RwLock` handler (uninstrumented) and once behind
//! `ObservedHandler` (per-op counters, latency + batch-size histograms,
//! slow-query check). The contract is that the instrumented median stays
//! within ~2% of the plain one; the paired medians and the derived
//! overhead percentage land in the JSON report (`PANE_BENCH_JSON`) as
//! notes next to the raw timings.
//!
//! The fixture is synthetic: seeded random unit rows instead of a real
//! embedding run, because the handler cost under test is identical for
//! any geometry and the flat scan dominated either way. Override the
//! corpus size with `PANE_SERVE_NODES` (default 10k nodes).

use criterion::{criterion_group, criterion_main, note, Criterion};
use pane_core::{PaneEmbedding, PaneTimings};
use pane_linalg::{vecops, DenseMatrix, NormalSampler};
use pane_loadgen::{
    find_knee, generate_requests, run, BatchSpec, Endpoint, HandlerEndpoint, Mix, RunPlan, Skew,
    WorkloadConfig,
};
use pane_obs::Tracer;
use pane_serve::{IndexSpec, LineHandler, ObservedHandler, ServeEngine, ServeObs};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, RwLock};
use std::time::Instant;

const HALF_DIM: usize = 32;
const BATCH: usize = 64;
const K: usize = 10;

fn nodes_from_env() -> usize {
    std::env::var("PANE_SERVE_NODES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > BATCH)
        .unwrap_or(10_000)
}

/// Seeded random unit rows standing in for `X_f` / `X_b`.
fn random_embedding(n: usize, seed: u64) -> PaneEmbedding {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sampler = NormalSampler::new();
    let mut fill = |m: &mut DenseMatrix| {
        for v in 0..n {
            let row = m.row_mut(v);
            for slot in row.iter_mut() {
                *slot = sampler.sample(&mut rng);
            }
            vecops::normalize(row, 1e-300);
        }
    };
    let mut forward = DenseMatrix::zeros(n, HALF_DIM);
    let mut backward = DenseMatrix::zeros(n, HALF_DIM);
    fill(&mut forward);
    fill(&mut backward);
    PaneEmbedding {
        forward,
        backward,
        attribute: DenseMatrix::zeros(1, HALF_DIM),
        timings: PaneTimings::default(),
        objective: 0.0,
    }
}

fn engine(n: usize) -> ServeEngine {
    ServeEngine::build(random_embedding(n, 7), &IndexSpec::Flat, 1)
}

fn query_line(n: usize) -> String {
    let nodes: Vec<String> = (0..BATCH).map(|i| ((i * n) / BATCH).to_string()).collect();
    format!(
        r#"{{"op":"similar-nodes","nodes":[{}],"k":{K}}}"#,
        nodes.join(",")
    )
}

/// Median per-request seconds over `iters` handled requests (one
/// discarded warmup), asserting every response succeeded.
fn median_handle_s(h: &dyn LineHandler, line: &str, iters: usize) -> f64 {
    let (resp, _) = h.handle(line);
    assert!(resp.contains("\"ok\":true"), "warmup failed: {resp}");
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            let (resp, _) = h.handle(line);
            let dt = t0.elapsed().as_secs_f64();
            assert!(resp.contains("\"ok\":true"), "request failed: {resp}");
            dt
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn bench_instrumentation_overhead(c: &mut Criterion) {
    let n = nodes_from_env();
    let line = query_line(n);
    let plain = RwLock::new(engine(n));
    let observed = ObservedHandler::new(engine(n), Arc::new(ServeObs::new(Tracer::disabled())));

    let mut group = c.benchmark_group(format!("serve_batched_query/n={n}"));
    group.sample_size(10);
    group.bench_function(format!("plain_rwlock_{BATCH}q"), |b| {
        b.iter(|| plain.handle(&line))
    });
    group.bench_function(format!("observed_{BATCH}q"), |b| {
        b.iter(|| observed.handle(&line))
    });
    group.finish();

    // Paired medians over a longer run for the headline overhead number.
    let iters = 30;
    let plain_s = median_handle_s(&plain, &line, iters);
    let observed_s = median_handle_s(&observed, &line, iters);
    let overhead_pct = 100.0 * (observed_s - plain_s) / plain_s;
    println!(
        "bench serve_overhead: plain {plain_s:.6} s, observed {observed_s:.6} s, \
         overhead {overhead_pct:+.2}% (n={n}, batch {BATCH}, k {K})"
    );
    note("nodes", n);
    note("batch", BATCH);
    note("k", K);
    note("plain_median_s", format!("{plain_s:.9}"));
    note("observed_median_s", format!("{observed_s:.9}"));
    note("overhead_pct", format!("{overhead_pct:.3}"));
}

/// Open-loop saturation of the in-process serving stack: the load
/// generator steps the offered rate geometrically against an
/// `ObservedHandler`-wrapped engine (the exact handler `pane serve`
/// deploys) until achieved throughput stops tracking offered load, and
/// the knee lands in the report notes. In-process endpoints keep the
/// number transport-free: this is the handler's capacity, an upper
/// bound for any socket deployment of the same engine.
///
/// Override the corpus with `PANE_SERVE_NODES`, the search floor with
/// `PANE_LOADGEN_START_QPS` (default 250).
fn bench_open_loop_saturation(_c: &mut Criterion) {
    let n = nodes_from_env();
    let handler = Arc::new(ObservedHandler::new(
        engine(n),
        Arc::new(ServeObs::new(Tracer::disabled())),
    ));
    let wl = WorkloadConfig {
        mix: Mix {
            similar: 90,
            links: 0,
            insert: 10,
        },
        skew: Skew::Zipf(1.1),
        batch: BatchSpec { min: 1, max: 4 },
        k: K,
        seed: 42,
    };
    let half_dim = HALF_DIM;
    let start_qps = std::env::var("PANE_LOADGEN_START_QPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&q| q > 0.0)
        .unwrap_or(250.0);
    let step_secs = 1.0;
    let knee = find_knee(start_qps, 2.0, 6, 0.9, |qps| {
        let count = ((qps * step_secs).ceil() as usize).max(1);
        let requests = generate_requests(&wl, n, half_dim, count);
        let handler = Arc::clone(&handler);
        let connect =
            move || Ok(Box::new(HandlerEndpoint::new(Arc::clone(&handler))) as Box<dyn Endpoint>);
        let plan = RunPlan {
            qps,
            connections: 4,
        };
        let report = run(&plan, &requests, &connect)?;
        println!(
            "bench serve_saturation: offered {qps:.0} qps → achieved {:.1} qps, \
             p50 {:.6} s, p99 {:.6} s ({} ok / {} sent)",
            report.achieved_qps, report.p50_s, report.p99_s, report.ok, report.sent
        );
        Ok(report)
    })
    .expect("knee search over an in-process handler cannot fail to run");

    let trajectory: Vec<String> = knee
        .steps
        .iter()
        .map(|s| format!("{:.0}:{:.1}", s.offered_qps, s.achieved_qps))
        .collect();
    println!(
        "bench serve_saturation: knee at {:.0} qps offered ({:.1} achieved), saturated={}",
        knee.knee_qps, knee.knee_achieved_qps, knee.saturated
    );
    note("loadgen_mix", wl.mix);
    note("loadgen_skew", "zipf:1.1");
    note("loadgen_seed", wl.seed);
    note("loadgen_connections", 4);
    note("knee_qps", format!("{:.1}", knee.knee_qps));
    note(
        "knee_achieved_qps",
        format!("{:.1}", knee.knee_achieved_qps),
    );
    note("knee_saturated", knee.saturated);
    note("knee_trajectory", trajectory.join(","));
    if let Some(last) = knee.steps.last() {
        note("knee_last_step_p50_s", format!("{:.9}", last.p50_s));
        note("knee_last_step_p99_s", format!("{:.9}", last.p99_s));
    }
}

criterion_group!(
    serve_benches,
    bench_instrumentation_overhead,
    bench_open_loop_saturation
);
criterion_main!(serve_benches);
