//! Criterion benchmarks of the PANE pipeline stages, matched to the
//! paper's cost model:
//!
//! * APMI vs PAPMI (Algorithm 2 vs 6) — `O(m·d·t)`;
//! * GreedyInit vs SMGreedyInit vs random init (Algorithms 3 / 7);
//! * one CCD sweep, serial vs block-parallel (Algorithms 4 / 8);
//! * end-to-end PANE across graph sizes (the Figure 3 microcosm);
//! * the pair scorers (Eq. 21 / Eq. 22 vs the four competitor scorers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pane_core::{
    apmi, ccd_sweeps, greedy_init, papmi, sm_greedy_init, ApmiInputs, InitOptions, Pane, PaneConfig,
};
use pane_datasets::DatasetZoo;
use pane_eval::scoring::LinkScorer;
use pane_eval::scoring::{PairScore, PaneScorer, SingleEmbeddingScorer};
use pane_graph::{AttributedGraph, DanglingPolicy};
use pane_sparse::CsrMatrix;

struct Prepared {
    p: CsrMatrix,
    pt: CsrMatrix,
    rr: CsrMatrix,
    rc: CsrMatrix,
}

fn prepare(g: &AttributedGraph) -> Prepared {
    let p = g.random_walk_matrix(DanglingPolicy::SelfLoop);
    let pt = p.transpose();
    Prepared {
        p,
        pt,
        rr: g.attr_row_normalized(),
        rc: g.attr_col_normalized(),
    }
}

fn bench_apmi(c: &mut Criterion) {
    let g = DatasetZoo::CoraLike.generate_scaled(0.5, 1).graph;
    let pre = prepare(&g);
    let ins = ApmiInputs {
        p: &pre.p,
        pt: &pre.pt,
        rr: &pre.rr,
        rc: &pre.rc,
        alpha: 0.5,
        t: 6,
    };
    let mut group = c.benchmark_group("apmi");
    group.sample_size(10);
    group.bench_function("apmi(cora-like/2, t=6)", |b| b.iter(|| apmi(&ins)));
    for nb in [2usize, 4] {
        group.bench_with_input(BenchmarkId::new("papmi", nb), &nb, |b, &nb| {
            b.iter(|| papmi(&ins, nb));
        });
    }
    group.finish();
}

fn bench_init(c: &mut Criterion) {
    let g = DatasetZoo::CoraLike.generate_scaled(0.5, 2).graph;
    let pre = prepare(&g);
    let ins = ApmiInputs {
        p: &pre.p,
        pt: &pre.pt,
        rr: &pre.rr,
        rc: &pre.rc,
        alpha: 0.5,
        t: 6,
    };
    let aff = apmi(&ins);
    let opts = InitOptions {
        half_dim: 32,
        power_iters: 3,
        oversample: 8,
        seed: 5,
    };
    let mut group = c.benchmark_group("init");
    group.sample_size(10);
    group.bench_function("greedy_init", |b| {
        b.iter(|| greedy_init(&aff.forward, &aff.backward, &opts, 1));
    });
    group.bench_function("sm_greedy_init(nb=4)", |b| {
        b.iter(|| sm_greedy_init(&aff.forward, &aff.backward, &opts, 4));
    });
    group.finish();
}

fn bench_ccd_sweep(c: &mut Criterion) {
    let g = DatasetZoo::CoraLike.generate_scaled(0.5, 3).graph;
    let pre = prepare(&g);
    let ins = ApmiInputs {
        p: &pre.p,
        pt: &pre.pt,
        rr: &pre.rr,
        rc: &pre.rc,
        alpha: 0.5,
        t: 6,
    };
    let aff = apmi(&ins);
    let opts = InitOptions {
        half_dim: 32,
        power_iters: 3,
        oversample: 8,
        seed: 5,
    };
    let state0 = greedy_init(&aff.forward, &aff.backward, &opts, 1);
    let mut group = c.benchmark_group("ccd_sweep");
    group.sample_size(10);
    for nb in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("one_sweep", nb), &nb, |b, &nb| {
            b.iter_batched(
                || state0.clone(),
                |mut st| ccd_sweeps(&mut st, 1, nb),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("pane_end_to_end");
    group.sample_size(10);
    for scale in [0.1f64, 0.25, 0.5] {
        let g = DatasetZoo::CoraLike.generate_scaled(scale, 4).graph;
        let n = g.num_nodes();
        let cfg = PaneConfig::builder().dimension(32).seed(1).build();
        group.bench_with_input(BenchmarkId::new("nodes", n), &n, |b, _| {
            b.iter(|| Pane::new(cfg.clone()).embed(&g).unwrap());
        });
    }
    group.finish();
}

fn bench_scorers(c: &mut Criterion) {
    let g = DatasetZoo::CoraLike.generate_scaled(0.25, 5).graph;
    let cfg = PaneConfig::builder().dimension(32).seed(1).build();
    let emb = Pane::new(cfg).embed(&g).unwrap();
    let scorer = PaneScorer::new(&emb);
    let pairs: Vec<(usize, usize)> = (0..1000)
        .map(|i| (i % g.num_nodes(), (i * 7 + 3) % g.num_nodes()))
        .collect();
    let mut group = c.benchmark_group("scorers_1000_pairs");
    group.bench_function("pane_eq22", |b| {
        b.iter(|| {
            pairs
                .iter()
                .map(|&(s, t)| scorer.link_score(s, t))
                .sum::<f64>()
        });
    });
    let inner = SingleEmbeddingScorer::new(&emb.forward, PairScore::InnerProduct, None, 0);
    group.bench_function("inner_product", |b| {
        b.iter(|| {
            pairs
                .iter()
                .map(|&(s, t)| inner.link_score(s, t))
                .sum::<f64>()
        });
    });
    let cos = SingleEmbeddingScorer::new(&emb.forward, PairScore::Cosine, None, 0);
    group.bench_function("cosine", |b| {
        b.iter(|| {
            pairs
                .iter()
                .map(|&(s, t)| cos.link_score(s, t))
                .sum::<f64>()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_apmi,
    bench_init,
    bench_ccd_sweep,
    bench_end_to_end,
    bench_scorers
);
criterion_main!(benches);
