//! Criterion micro-benchmarks for the substrate kernels: sparse × dense
//! products (APMI's inner loop), dense products (GreedyInit/CCD), QR,
//! Jacobi SVD and RandSVD.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pane_graph::gen::{generate_sbm, SbmConfig};
use pane_linalg::{jacobi_svd, rand_svd, thin_qr, DenseMatrix, RandSvdConfig};
use pane_sparse::CsrMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn walk_matrix(n: usize, deg: f64, seed: u64) -> CsrMatrix {
    let g = generate_sbm(&SbmConfig {
        nodes: n,
        communities: 8,
        avg_out_degree: deg,
        attributes: 16,
        attrs_per_node: 2.0,
        seed,
        ..Default::default()
    });
    g.random_walk_matrix(pane_graph::DanglingPolicy::SelfLoop)
}

fn bench_spmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmm");
    for &n in &[2_000usize, 8_000] {
        let p = walk_matrix(n, 8.0, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let b = DenseMatrix::gaussian(n, 64, &mut rng);
        group.bench_with_input(BenchmarkId::new("serial", n), &n, |bch, _| {
            bch.iter(|| p.mul_dense(&b));
        });
        group.bench_with_input(BenchmarkId::new("par4", n), &n, |bch, _| {
            bch.iter(|| p.mul_dense_par(&b, 4));
        });
    }
    group.finish();
}

fn bench_dense_products(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense_products");
    let mut rng = StdRng::seed_from_u64(3);
    let a = DenseMatrix::gaussian(2_000, 64, &mut rng);
    let y = DenseMatrix::gaussian(400, 64, &mut rng);
    group.bench_function("matmul_transb(2000x64 . 400x64T)", |b| {
        b.iter(|| a.matmul_transb(&y));
    });
    group.bench_function("tr_matmul(2000x64T . 2000x64)", |b| {
        b.iter(|| a.tr_matmul(&a));
    });
    group.finish();
}

fn bench_factorizations(c: &mut Criterion) {
    let mut group = c.benchmark_group("factorizations");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(4);
    let tall = DenseMatrix::gaussian(4_000, 40, &mut rng);
    group.bench_function("thin_qr(4000x40)", |b| {
        b.iter(|| thin_qr(&tall));
    });
    let small = DenseMatrix::gaussian(48, 40, &mut rng);
    group.bench_function("jacobi_svd(48x40)", |b| {
        b.iter(|| jacobi_svd(&small));
    });
    let aff = DenseMatrix::gaussian(4_000, 200, &mut rng);
    group.bench_function("rand_svd(4000x200, rank 32, q=3)", |b| {
        b.iter(|| rand_svd(&aff, &RandSvdConfig::new(32, 3, 7)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_spmm,
    bench_dense_products,
    bench_factorizations
);
criterion_main!(benches);
