//! COO-vs-streaming CSR construction at scale: build time and peak
//! resident triplet bytes for the three ingestion paths in `pane-sparse`
//! on a generated multigraph edge stream (default 10M edges; set
//! `PANE_BENCH_SPARSE_EDGES` to scale, e.g. for a CI smoke run).
//!
//! The edge stream is a seeded, replayable generator with quartic skew
//! toward low node ids — like a real scale-free edge file it contains a
//! meaningful fraction of duplicate coordinates, so `nnz_out < triplets`
//! and the merge paths have real work to do. Two regimes are measured: a
//! mostly-unique edge list (MAG-style) and a dense interaction log whose
//! duplicates dominate (multigraph).
//!
//! Peak triplet bytes are *accounted*, not sampled from the allocator:
//! `CooMatrix` buffers 16 bytes per pushed triplet plus a 12-byte-per-
//! triplet scatter during conversion; `CsrBuilder::from_source` skips the
//! 16-byte buffer entirely; the chunked builder reports its own
//! high-water mark (accumulator + chunk + merge output).

use criterion::{criterion_group, criterion_main, note, Criterion};
use pane_sparse::{CooMatrix, CsrBuilder, MergeRule};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Bytes per buffered `(u32, u32, f64)` triplet.
const TRIPLET_BYTES: usize = 16;
/// Bytes per scattered `(u32 index, f64 value)` pair.
const SCATTER_BYTES: usize = 12;

fn edge_count() -> usize {
    std::env::var("PANE_BENCH_SPARSE_EDGES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000_000)
}

/// Replayable skewed edge stream: the same seed yields the identical
/// sequence on every call, which is exactly the contract
/// `CsrBuilder::from_source` needs.
fn for_each_edge(nodes: usize, edges: usize, seed: u64, emit: &mut dyn FnMut(usize, usize, f64)) {
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..edges {
        let a = rng.gen::<f64>();
        let b = rng.gen::<f64>();
        // Quartic skew: a heavy head of hub nodes, so repeated
        // interactions (duplicate edges) occur at a realistic rate for a
        // scale-free multigraph's edge log.
        let src = ((a * a * a * a) * nodes as f64) as usize % nodes;
        let dst = ((b * b * b * b) * nodes as f64) as usize % nodes;
        emit(src, dst, 1.0);
    }
}

fn human(bytes: usize) -> String {
    format!("{:.1} MiB", bytes as f64 / (1024.0 * 1024.0))
}

fn bench_one_config(c: &mut Criterion, name: &str, edges: usize, nodes: usize) {
    let chunk = (edges / 10).clamp(1024, 1 << 20);
    let seed = 42;

    // Accounted peak triplet bytes per path (see module docs), printed
    // once up front so the memory story sits next to the timings.
    let mut probe = CsrBuilder::new(nodes, nodes).chunk_capacity(chunk);
    for_each_edge(nodes, edges, seed, &mut |s, t, w| probe.push(s, t, w));
    let (csr, stats) = probe.finish_with_stats();
    let coo_peak = edges * TRIPLET_BYTES + edges * SCATTER_BYTES;
    let one_shot_peak = edges * SCATTER_BYTES + (nodes + 1) * 8;
    println!(
        "bench {name}/meta: {edges} triplets over {nodes} nodes -> nnz_out {} \
         ({:.1}% duplicates), chunk {chunk}",
        csr.nnz(),
        100.0 * (edges - csr.nnz()) as f64 / edges as f64
    );
    println!(
        "bench {name}/peak-triplet-bytes: coo {} | streaming one-shot {} | \
         streaming chunked {} ({} flushes)",
        human(coo_peak),
        human(one_shot_peak),
        human(stats.peak_aux_bytes),
        stats.flushes
    );
    note("edges", edges);
    note(format!("{name}_nnz_out"), csr.nnz());
    note(format!("{name}_coo_peak_bytes"), coo_peak);
    note(format!("{name}_one_shot_peak_bytes"), one_shot_peak);
    note(format!("{name}_chunked_peak_bytes"), stats.peak_aux_bytes);

    let mut group = c.benchmark_group(name);
    group.sample_size(3);
    group.bench_function(format!("coo_to_csr/{edges}"), |b| {
        b.iter(|| {
            let mut coo = CooMatrix::with_capacity(nodes, nodes, edges);
            for_each_edge(nodes, edges, seed, &mut |s, t, w| coo.push(s, t, w));
            coo.to_csr()
        });
    });
    group.bench_function(format!("stream_one_shot/{edges}"), |b| {
        b.iter(|| {
            CsrBuilder::from_source(nodes, nodes, MergeRule::Sum, |emit| {
                for_each_edge(nodes, edges, seed, emit)
            })
        });
    });
    group.bench_function(format!("stream_chunked/{edges}"), |b| {
        b.iter(|| {
            let mut builder = CsrBuilder::new(nodes, nodes).chunk_capacity(chunk);
            for_each_edge(nodes, edges, seed, &mut |s, t, w| builder.push(s, t, w));
            builder.finish()
        });
    });
    group.finish();
}

fn bench_csr_construction(c: &mut Criterion) {
    let edges = edge_count();
    // Two regimes: a mostly-unique edge list (MAG-style sparse graph,
    // where the two-pass replayable path shines) and a heavily duplicated
    // interaction log (multigraph, where the chunked accumulator's
    // O(nnz_out + chunk) bound beats COO's O(all triplets) outright).
    bench_one_config(c, "sparse_build", edges, (edges / 10).max(16));
    bench_one_config(c, "multigraph_build", edges, (edges / 2000).max(16));
}

criterion_group!(benches, bench_csr_construction);
criterion_main!(benches);
