//! Exact vs IVF vs HNSW serving latency (and recall) on a large synthetic
//! graph — the acceptance benchmark of the `pane-index` subsystem.
//!
//! The fixture generates a 50k-node SBM graph (override with
//! `PANE_INDEX_NODES`) and derives a 64-d unit feature vector per node
//! from its community plus per-node seeded noise — the same clustered
//! geometry real `[X_f ‖ X_b]` features have, without paying for a full
//! embedding run inside a bench. All three indexes are built once; the
//! benchmark then times a 100-query top-10 workload per index and prints
//! each approximate index's recall@10 against the flat ground truth.

use criterion::{criterion_group, criterion_main, note, Criterion};
use pane_graph::gen::{generate_sbm, SbmConfig};
use pane_index::{FlatIndex, HnswConfig, HnswIndex, IvfConfig, IvfIndex, Metric, VectorIndex};
use pane_linalg::{vecops, DenseMatrix, NormalSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;
use std::time::Instant;

const DIM: usize = 64;
const K: usize = 10;
const NUM_QUERIES: usize = 100;

struct Fixture {
    data: DenseMatrix,
    queries: Vec<usize>,
    flat: FlatIndex,
    ivf: IvfIndex,
    hnsw: HnswIndex,
}

static FIXTURE: OnceLock<Fixture> = OnceLock::new();

fn nodes_from_env() -> usize {
    std::env::var("PANE_INDEX_NODES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(50_000)
}

/// Community-centered unit vectors for every node of an SBM graph.
fn graph_features(n: usize) -> DenseMatrix {
    let g = generate_sbm(&SbmConfig {
        nodes: n,
        communities: 32,
        avg_out_degree: 8.0,
        attributes: 64,
        attrs_per_node: 4.0,
        seed: 97,
        ..Default::default()
    });
    let mut rng = StdRng::seed_from_u64(1234);
    let mut sampler = NormalSampler::new();
    let centers: Vec<Vec<f64>> = (0..32)
        .map(|_| (0..DIM).map(|_| sampler.sample(&mut rng)).collect())
        .collect();
    let mut m = DenseMatrix::zeros(n, DIM);
    for v in 0..n {
        let c = g.labels_of(v).first().copied().unwrap_or(0) as usize % centers.len();
        let row = m.row_mut(v);
        for (j, slot) in row.iter_mut().enumerate() {
            *slot = centers[c][j] + 0.35 * sampler.sample(&mut rng);
        }
        vecops::normalize(row, 1e-300);
    }
    m
}

fn fixture() -> &'static Fixture {
    FIXTURE.get_or_init(|| {
        let n = nodes_from_env();
        let data = graph_features(n);
        let t0 = Instant::now();
        let flat = FlatIndex::build(&data, Metric::Cosine);
        let t_flat = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let ivf = IvfIndex::build(
            &data,
            Metric::Cosine,
            &IvfConfig {
                nlist: 64,
                nprobe: 8,
                threads: 4,
                ..Default::default()
            },
        );
        let t_ivf = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let hnsw = HnswIndex::build(&data, Metric::Cosine, &HnswConfig::default());
        let t_hnsw = t0.elapsed().as_secs_f64();
        eprintln!("index build over n={n}: flat {t_flat:.2}s, ivf {t_ivf:.2}s, hnsw {t_hnsw:.2}s");
        note("nodes", n);
        note("dim", DIM);
        note("k", K);
        note("queries", NUM_QUERIES);
        note("build_flat_s", format!("{t_flat:.3}"));
        note("build_ivf_s", format!("{t_ivf:.3}"));
        note("build_hnsw_s", format!("{t_hnsw:.3}"));

        let queries: Vec<usize> = (0..NUM_QUERIES).map(|i| (i * n) / NUM_QUERIES).collect();
        let truth = search_all(&flat, &data, &queries);
        for (name, hits) in [
            ("ivf", search_all(&ivf, &data, &queries)),
            ("hnsw", search_all(&hnsw, &data, &queries)),
        ] {
            let mut overlap = 0;
            let mut total = 0;
            for (t, h) in truth.iter().zip(&hits) {
                total += t.len();
                overlap += h
                    .iter()
                    .filter(|x| t.iter().any(|y| y.index == x.index))
                    .count();
            }
            eprintln!(
                "recall@{K} {name} vs flat: {:.3} ({overlap}/{total})",
                overlap as f64 / total as f64
            );
            note(
                format!("recall_at_{K}_{name}"),
                format!("{:.3}", overlap as f64 / total as f64),
            );
        }
        Fixture {
            data,
            queries,
            flat,
            ivf,
            hnsw,
        }
    })
}

fn search_all(
    index: &dyn VectorIndex,
    data: &DenseMatrix,
    queries: &[usize],
) -> Vec<Vec<pane_index::Neighbor>> {
    queries
        .iter()
        .map(|&v| index.search(data.row(v), K))
        .collect()
}

fn bench_search(c: &mut Criterion) {
    let f = fixture();
    let mut group = c.benchmark_group(format!("index_search/n={}", f.data.rows()));
    group.sample_size(10);
    group.bench_function("flat_100q", |b| {
        b.iter(|| search_all(&f.flat, &f.data, &f.queries))
    });
    group.bench_function("ivf_nprobe8_100q", |b| {
        b.iter(|| search_all(&f.ivf, &f.data, &f.queries))
    });
    group.bench_function("hnsw_ef64_100q", |b| {
        b.iter(|| search_all(&f.hnsw, &f.data, &f.queries))
    });
    group.finish();
}

fn bench_batch(c: &mut Criterion) {
    let f = fixture();
    let mut queries = DenseMatrix::zeros(f.queries.len(), DIM);
    for (i, &v) in f.queries.iter().enumerate() {
        queries.row_mut(i).copy_from_slice(f.data.row(v));
    }
    let mut group = c.benchmark_group(format!("index_batch/n={}", f.data.rows()));
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_function(format!("hnsw_t{threads}_100q"), |b| {
            b.iter(|| f.hnsw.batch_search(&queries, K, threads))
        });
    }
    group.finish();
}

criterion_group!(index_benches, bench_search, bench_batch);
criterion_main!(index_benches);
