//! Exact vs IVF vs HNSW serving latency (and recall) on a large synthetic
//! graph — the acceptance benchmark of the `pane-index` subsystem.
//!
//! The fixture generates a 50k-node SBM graph (override with
//! `PANE_INDEX_NODES`) and derives a 64-d unit feature vector per node
//! from its community plus per-node seeded noise — the same clustered
//! geometry real `[X_f ‖ X_b]` features have, without paying for a full
//! embedding run inside a bench. All four indexes are built once; the
//! benchmark then times a 100-query top-10 workload per index and prints
//! each approximate index's recall@10 against the flat ground truth —
//! for the scalar-quantized index both self-contained (dequantized
//! re-rank) and with exact re-rank against the resident `f64` rows,
//! alongside the ~8× resident-byte saving.
//!
//! Two further groups cover the storage layer: `store_boot` times
//! loading a ≥100k-row embedding generation written as a legacy
//! `PANEEMB1` stream vs a columnar `PANECOL1` container (the zero-parse
//! bulk read), and `init_crossover` times GreedyInit (Algorithm 3) vs
//! SMGreedyInit (Algorithm 7) on a tall affinity matrix, where the
//! split–merge factorization overtakes the single global RandSVD.

use criterion::{criterion_group, criterion_main, note, Criterion};
use pane_graph::gen::{generate_sbm, SbmConfig};
use pane_index::{
    FlatIndex, HnswConfig, HnswIndex, IvfConfig, IvfIndex, Metric, SqConfig, SqFlatIndex,
    VectorIndex,
};
use pane_linalg::{vecops, DenseMatrix, NormalSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;
use std::time::Instant;

const DIM: usize = 64;
const K: usize = 10;
const NUM_QUERIES: usize = 100;

struct Fixture {
    data: DenseMatrix,
    queries: Vec<usize>,
    flat: FlatIndex,
    ivf: IvfIndex,
    hnsw: HnswIndex,
    sq: SqFlatIndex,
}

static FIXTURE: OnceLock<Fixture> = OnceLock::new();

fn nodes_from_env() -> usize {
    std::env::var("PANE_INDEX_NODES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(50_000)
}

/// Community-centered unit vectors for every node of an SBM graph.
fn graph_features(n: usize) -> DenseMatrix {
    let g = generate_sbm(&SbmConfig {
        nodes: n,
        communities: 32,
        avg_out_degree: 8.0,
        attributes: 64,
        attrs_per_node: 4.0,
        seed: 97,
        ..Default::default()
    });
    let mut rng = StdRng::seed_from_u64(1234);
    let mut sampler = NormalSampler::new();
    let centers: Vec<Vec<f64>> = (0..32)
        .map(|_| (0..DIM).map(|_| sampler.sample(&mut rng)).collect())
        .collect();
    let mut m = DenseMatrix::zeros(n, DIM);
    for v in 0..n {
        let c = g.labels_of(v).first().copied().unwrap_or(0) as usize % centers.len();
        let row = m.row_mut(v);
        for (j, slot) in row.iter_mut().enumerate() {
            *slot = centers[c][j] + 0.35 * sampler.sample(&mut rng);
        }
        vecops::normalize(row, 1e-300);
    }
    m
}

fn fixture() -> &'static Fixture {
    FIXTURE.get_or_init(|| {
        let n = nodes_from_env();
        let data = graph_features(n);
        let t0 = Instant::now();
        let flat = FlatIndex::build(&data, Metric::Cosine);
        let t_flat = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let ivf = IvfIndex::build(
            &data,
            Metric::Cosine,
            &IvfConfig {
                nlist: 64,
                nprobe: 8,
                threads: 4,
                ..Default::default()
            },
        );
        let t_ivf = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let hnsw = HnswIndex::build(&data, Metric::Cosine, &HnswConfig::default());
        let t_hnsw = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let sq = SqFlatIndex::build(&data, Metric::Cosine, SqConfig::default());
        let t_sq = t0.elapsed().as_secs_f64();
        eprintln!(
            "index build over n={n}: flat {t_flat:.2}s, ivf {t_ivf:.2}s, hnsw {t_hnsw:.2}s, \
             sqflat {t_sq:.2}s"
        );
        note("nodes", n);
        note("dim", DIM);
        note("k", K);
        note("queries", NUM_QUERIES);
        note("build_flat_s", format!("{t_flat:.3}"));
        note("build_ivf_s", format!("{t_ivf:.3}"));
        note("build_hnsw_s", format!("{t_hnsw:.3}"));
        note("build_sqflat_s", format!("{t_sq:.3}"));
        // The 8× RAM story: flat keeps n·dim f64s resident, sqflat keeps
        // n·dim i8 codes + one f64 scale per row.
        let flat_bytes = n * DIM * std::mem::size_of::<f64>();
        let sq_bytes = sq.resident_bytes();
        eprintln!(
            "resident bytes: flat {flat_bytes}, sqflat {sq_bytes} ({:.2}x smaller)",
            flat_bytes as f64 / sq_bytes as f64
        );
        note("flat_resident_bytes", flat_bytes);
        note("sqflat_resident_bytes", sq_bytes);
        note(
            "sqflat_compression",
            format!("{:.2}", flat_bytes as f64 / sq_bytes as f64),
        );

        let queries: Vec<usize> = (0..NUM_QUERIES).map(|i| (i * n) / NUM_QUERIES).collect();
        let truth = search_all(&flat, &data, &queries);
        let sq_rerank: Vec<Vec<pane_index::Neighbor>> = queries
            .iter()
            .map(|&v| sq.search_rerank(data.row(v), K, &data))
            .collect();
        for (name, hits) in [
            ("ivf", search_all(&ivf, &data, &queries)),
            ("hnsw", search_all(&hnsw, &data, &queries)),
            ("sqflat_dequant", search_all(&sq, &data, &queries)),
            ("sqflat_exact_rerank", sq_rerank),
        ] {
            let mut overlap = 0;
            let mut total = 0;
            for (t, h) in truth.iter().zip(&hits) {
                total += t.len();
                overlap += h
                    .iter()
                    .filter(|x| t.iter().any(|y| y.index == x.index))
                    .count();
            }
            eprintln!(
                "recall@{K} {name} vs flat: {:.3} ({overlap}/{total})",
                overlap as f64 / total as f64
            );
            note(
                format!("recall_at_{K}_{name}"),
                format!("{:.3}", overlap as f64 / total as f64),
            );
        }
        Fixture {
            data,
            queries,
            flat,
            ivf,
            hnsw,
            sq,
        }
    })
}

fn search_all(
    index: &dyn VectorIndex,
    data: &DenseMatrix,
    queries: &[usize],
) -> Vec<Vec<pane_index::Neighbor>> {
    queries
        .iter()
        .map(|&v| index.search(data.row(v), K))
        .collect()
}

fn bench_search(c: &mut Criterion) {
    let f = fixture();
    let mut group = c.benchmark_group(format!("index_search/n={}", f.data.rows()));
    group.sample_size(10);
    group.bench_function("flat_100q", |b| {
        b.iter(|| search_all(&f.flat, &f.data, &f.queries))
    });
    group.bench_function("ivf_nprobe8_100q", |b| {
        b.iter(|| search_all(&f.ivf, &f.data, &f.queries))
    });
    group.bench_function("hnsw_ef64_100q", |b| {
        b.iter(|| search_all(&f.hnsw, &f.data, &f.queries))
    });
    group.bench_function("sqflat_dequant_100q", |b| {
        b.iter(|| search_all(&f.sq, &f.data, &f.queries))
    });
    group.bench_function("sqflat_exact_rerank_100q", |b| {
        b.iter(|| {
            f.queries
                .iter()
                .map(|&v| f.sq.search_rerank(f.data.row(v), K, &f.data))
                .collect::<Vec<_>>()
        })
    });
    group.finish();
}

/// Generation boot time: a ≥100k-row embedding artifact written as a
/// legacy `PANEEMB1` stream vs a columnar `PANECOL1` container. The
/// columnar path validates the section table against the file length,
/// then does one bulk read into aligned memory — no per-element parse.
fn bench_boot(c: &mut Criterion) {
    use pane_core::{PaneEmbedding, PaneTimings};

    const BOOT_ROWS: usize = 100_000;
    const BOOT_K2: usize = 32;
    let mut rng = StdRng::seed_from_u64(77);
    let mut sampler = NormalSampler::new();
    let mut fill = |rows: usize, cols: usize| {
        let mut m = DenseMatrix::zeros(rows, cols);
        for v in m.data_mut() {
            *v = sampler.sample(&mut rng);
        }
        m
    };
    let emb = PaneEmbedding {
        forward: fill(BOOT_ROWS, BOOT_K2),
        backward: fill(BOOT_ROWS, BOOT_K2),
        attribute: fill(64, BOOT_K2),
        timings: PaneTimings::default(),
        objective: f64::NAN,
    };
    let dir = std::env::temp_dir().join(format!("pane_bench_boot_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let legacy = dir.join("emb_legacy.bin");
    let columnar = dir.join("emb_columnar.bin");
    pane_core::save_binary(&emb, &legacy).unwrap();
    pane_core::save_columns(&emb, &columnar).unwrap();
    note("boot_rows", BOOT_ROWS);
    note("boot_half_dim", BOOT_K2);
    note(
        "boot_legacy_bytes",
        std::fs::metadata(&legacy).unwrap().len(),
    );
    note(
        "boot_columnar_bytes",
        std::fs::metadata(&columnar).unwrap().len(),
    );

    let mut group = c.benchmark_group(format!("store_boot/n={BOOT_ROWS}"));
    group.sample_size(10);
    group.bench_function("legacy_parse", |b| {
        b.iter(|| pane_core::load_binary(&legacy).unwrap())
    });
    group.bench_function("columnar_bulk", |b| {
        b.iter(|| pane_core::load_binary(&columnar).unwrap())
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

/// GreedyInit (Algorithm 3) vs SMGreedyInit (Algorithm 7) on a tall
/// affinity matrix (`n ≫ d`): one global RandSVD sketches an `n×d`
/// matrix, while split–merge factorizes `nb` short blocks and merges the
/// right factors with one small SVD — the crossover the paper's §4.4
/// claims for multi-core tall inputs. Both algorithms run at 1 and 4
/// threads so the recorded numbers separate the two effects: serially,
/// split–merge pays its merge overhead (it should trail by a few
/// percent); with real cores the independent blocks scale and it
/// overtakes. On a single-core runner the t4 rows equal the t1 rows.
fn bench_init_crossover(c: &mut Criterion) {
    use pane_core::{greedy_init, sm_greedy_init, InitOptions};

    const TALL_N: usize = 24_000;
    const TALL_D: usize = 48;
    let mut rng = StdRng::seed_from_u64(31);
    let mut sampler = NormalSampler::new();
    let mut fill = |rows: usize, cols: usize| {
        let mut m = DenseMatrix::zeros(rows, cols);
        for v in m.data_mut() {
            *v = sampler.sample(&mut rng);
        }
        m
    };
    let f = fill(TALL_N, TALL_D);
    let b_aff = fill(TALL_N, TALL_D);
    let opts = InitOptions {
        half_dim: 16,
        power_iters: 3,
        oversample: 8,
        seed: 5,
    };
    note("crossover_rows", TALL_N);
    note("crossover_cols", TALL_D);
    note(
        "crossover_host_cpus",
        std::thread::available_parallelism().map_or(0, |n| n.get()),
    );

    let mut group = c.benchmark_group(format!("init_crossover/n={TALL_N}x{TALL_D}"));
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_function(format!("greedy_t{threads}"), |bch| {
            bch.iter(|| greedy_init(&f, &b_aff, &opts, threads))
        });
        group.bench_function(format!("sm_greedy_t{threads}"), |bch| {
            bch.iter(|| sm_greedy_init(&f, &b_aff, &opts, threads))
        });
    }
    group.finish();
}

fn bench_batch(c: &mut Criterion) {
    let f = fixture();
    let mut queries = DenseMatrix::zeros(f.queries.len(), DIM);
    for (i, &v) in f.queries.iter().enumerate() {
        queries.row_mut(i).copy_from_slice(f.data.row(v));
    }
    let mut group = c.benchmark_group(format!("index_batch/n={}", f.data.rows()));
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_function(format!("hnsw_t{threads}_100q"), |b| {
            b.iter(|| f.hnsw.batch_search(&queries, K, threads))
        });
        group.bench_function(format!("flat_blocked_t{threads}_100q"), |b| {
            b.iter(|| f.flat.batch_search(&queries, K, threads))
        });
    }
    group.finish();
}

/// The plain left-to-right dot the scan sites used before the kernel
/// layer — kept here as the benchmark baseline.
fn scalar_dot(x: &[f64], y: &[f64]) -> f64 {
    let mut acc = 0.0;
    for i in 0..x.len() {
        acc += x[i] * y[i];
    }
    acc
}

/// Scalar vs 8-lane unrolled vs panel kernel at dims 32/128/512, so the
/// crossover points are recorded instead of folklore. Each variant scans
/// the same row block; the noted `kernel_rows_per_s_*` figures are
/// single-thread scan throughput (rows scored per second), measured over
/// a fixed wall-clock budget outside the criterion loop.
fn bench_kernels(c: &mut Criterion) {
    use pane_linalg::kernels;
    use std::hint::black_box;

    // Compile-time SIMD surface of this run: the committed numbers are
    // generated with RUSTFLAGS="-C target-cpu=native" (value-safe — the
    // fixed-lane contract pins the summation order at any vector width,
    // and CI re-runs the bitwise equivalence suites under native).
    note(
        "kernel_bench_target_features",
        format!(
            "avx2={} fma={} avx512f={}",
            cfg!(target_feature = "avx2"),
            cfg!(target_feature = "fma"),
            cfg!(target_feature = "avx512f")
        ),
    );

    let mut rng = StdRng::seed_from_u64(99);
    let mut sampler = NormalSampler::new();
    for dim in [32usize, 128, 512] {
        // One query against an L2-resident panel (1 MiB working set) —
        // the regime the fused scanner actually creates: batch_search
        // walks the store in ~32 KiB panels and reuses each panel
        // across queries, so the kernels score cache-hot rows. (A cold
        // full-store scan is DRAM-bandwidth-bound; there the kernels
        // can only win up to the memory ceiling, not the ALU ceiling.)
        let n_rows = (1 << 20) / (dim * 8);
        let mut rows = DenseMatrix::zeros(n_rows, dim);
        for v in rows.data_mut() {
            *v = sampler.sample(&mut rng);
        }
        let q: Vec<f64> = (0..dim).map(|_| sampler.sample(&mut rng)).collect();

        // Throughput notes: rows/s over ≥0.2 s of repeated full scans.
        let measure = |f: &mut dyn FnMut() -> f64| -> f64 {
            let mut reps = 0usize;
            let mut sink = 0.0;
            let t0 = Instant::now();
            while t0.elapsed().as_secs_f64() < 0.2 {
                sink += f();
                reps += 1;
            }
            black_box(sink);
            (reps * n_rows) as f64 / t0.elapsed().as_secs_f64()
        };
        let scalar_rps = measure(&mut || {
            (0..n_rows)
                .map(|r| scalar_dot(&q, rows.row(r)))
                .sum::<f64>()
        });
        let unrolled_rps = measure(&mut || {
            (0..n_rows)
                .map(|r| kernels::dot(&q, rows.row(r)))
                .sum::<f64>()
        });
        let mut out = vec![0.0f64; n_rows];
        let panel_rps = measure(&mut || {
            kernels::dot1xn(&q, rows.data(), dim, &mut out);
            out[n_rows - 1]
        });
        // The interleaved 4-row variant: measured so the decision to
        // ship dot1xn as a per-row loop stays pinned to data.
        let blocked_rps = measure(&mut || {
            kernels::dot1xn_blocked(&q, rows.data(), dim, &mut out);
            out[n_rows - 1]
        });
        note(
            format!("kernel_rows_per_s_dim{dim}_scalar"),
            format!("{scalar_rps:.0}"),
        );
        note(
            format!("kernel_rows_per_s_dim{dim}_unrolled"),
            format!("{unrolled_rps:.0}"),
        );
        note(
            format!("kernel_rows_per_s_dim{dim}_panel"),
            format!("{panel_rps:.0}"),
        );
        note(
            format!("kernel_speedup_dim{dim}_unrolled_vs_scalar"),
            format!("{:.2}", unrolled_rps / scalar_rps),
        );
        note(
            format!("kernel_speedup_dim{dim}_panel_vs_scalar"),
            format!("{:.2}", panel_rps / scalar_rps),
        );
        note(
            format!("kernel_rows_per_s_dim{dim}_blocked4"),
            format!("{blocked_rps:.0}"),
        );
        eprintln!(
            "kernels dim={dim}: scalar {scalar_rps:.3e} rows/s, unrolled {unrolled_rps:.3e} \
             ({:.2}x), panel {panel_rps:.3e} ({:.2}x), blocked4 {blocked_rps:.3e} ({:.2}x)",
            unrolled_rps / scalar_rps,
            panel_rps / scalar_rps,
            blocked_rps / scalar_rps
        );

        let mut group = c.benchmark_group(format!("kernels/dim={dim}"));
        group.sample_size(20);
        group.bench_function(format!("scalar_{n_rows}rows"), |b| {
            b.iter(|| {
                (0..n_rows)
                    .map(|r| scalar_dot(&q, rows.row(r)))
                    .sum::<f64>()
            })
        });
        group.bench_function(format!("unrolled_{n_rows}rows"), |b| {
            b.iter(|| {
                (0..n_rows)
                    .map(|r| kernels::dot(&q, rows.row(r)))
                    .sum::<f64>()
            })
        });
        group.bench_function(format!("panel_{n_rows}rows"), |b| {
            b.iter(|| {
                kernels::dot1xn(&q, rows.data(), dim, &mut out);
                out[0]
            })
        });
        group.finish();
    }
}

criterion_group!(
    index_benches,
    bench_kernels,
    bench_search,
    bench_batch,
    bench_boot,
    bench_init_crossover
);
criterion_main!(index_benches);
