//! Criterion benchmarks for the design-choice ablations DESIGN.md calls
//! out: the parameter sensitivities of Figure 4 (k, ε) as micro-benchmarks,
//! the GreedyInit-vs-random ablation (§5.7), and the dangling-node policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pane_core::{Pane, PaneConfig};
use pane_datasets::DatasetZoo;
use pane_graph::DanglingPolicy;

fn bench_vs_k(c: &mut Criterion) {
    let g = DatasetZoo::CoraLike.generate_scaled(0.25, 1).graph;
    let mut group = c.benchmark_group("time_vs_k");
    group.sample_size(10);
    for k in [16usize, 64, 128] {
        let cfg = PaneConfig::builder().dimension(k).seed(1).build();
        group.bench_with_input(BenchmarkId::new("k", k), &k, |b, _| {
            b.iter(|| Pane::new(cfg.clone()).embed(&g).unwrap());
        });
    }
    group.finish();
}

fn bench_vs_eps(c: &mut Criterion) {
    let g = DatasetZoo::CoraLike.generate_scaled(0.25, 2).graph;
    let mut group = c.benchmark_group("time_vs_eps");
    group.sample_size(10);
    for eps in [0.25f64, 0.05, 0.005] {
        let cfg = PaneConfig::builder()
            .dimension(32)
            .error_threshold(eps)
            .seed(1)
            .build();
        group.bench_with_input(BenchmarkId::new("eps", format!("{eps}")), &eps, |b, _| {
            b.iter(|| Pane::new(cfg.clone()).embed(&g).unwrap());
        });
    }
    group.finish();
}

fn bench_greedy_vs_random_init(c: &mut Criterion) {
    let g = DatasetZoo::CoraLike.generate_scaled(0.25, 3).graph;
    let cfg = PaneConfig::builder()
        .dimension(32)
        .ccd_sweeps(3)
        .seed(1)
        .build();
    let mut group = c.benchmark_group("init_ablation_3_sweeps");
    group.sample_size(10);
    group.bench_function("pane_greedy", |b| {
        b.iter(|| Pane::new(cfg.clone()).embed(&g).unwrap());
    });
    group.bench_function("pane_random (PANE-R)", |b| {
        b.iter(|| pane_baselines::PaneR::new(cfg.clone()).embed(&g).unwrap());
    });
    group.finish();
}

fn bench_dangling_policy(c: &mut Criterion) {
    let g = DatasetZoo::CiteseerLike.generate_scaled(0.25, 4).graph;
    let mut group = c.benchmark_group("dangling_policy");
    group.sample_size(10);
    for (name, policy) in [
        ("self_loop", DanglingPolicy::SelfLoop),
        ("absorb", DanglingPolicy::Absorb),
        ("uniform_jump", DanglingPolicy::UniformJump),
    ] {
        let cfg = PaneConfig::builder()
            .dimension(32)
            .dangling(policy)
            .seed(1)
            .build();
        group.bench_function(name, |b| {
            b.iter(|| Pane::new(cfg.clone()).embed(&g).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_vs_k,
    bench_vs_eps,
    bench_greedy_vs_random_init,
    bench_dangling_policy
);
criterion_main!(benches);
