//! Scalar-quantized flat index — the low-RAM exact-rerank baseline.
//!
//! [`SqFlatIndex`] stores each metric-prepared vector as `dim` signed
//! bytes plus one `f64` scale: `code[j] = round(v[j] / scale · 127)`
//! with `scale = max|v| / 127`. That is 8× less resident memory than
//! the `f64` rows a [`crate::FlatIndex`] keeps, while the scan stays a
//! dense dot product — an `i8`×`i8` multiply accumulated in `i32`, one
//! of the shapes auto-vectorizers handle best.
//!
//! A scan over codes alone ranks approximately, so searches run in two
//! stages: the quantized scan keeps a shortlist of `k × rerank`
//! candidates, then re-scores only those before returning the top `k`.
//! Two re-rank sources are available:
//!
//! * [`VectorIndex::search`] — self-contained: re-scores the shortlist
//!   against *dequantized* rows (`code[j] · scale`). No extra memory,
//!   recall limited by the quantization noise floor;
//! * [`SqFlatIndex::search_rerank`] — re-scores against caller-provided
//!   full-precision rows. The serving tier keeps the embedding matrix
//!   resident anyway (for attribute inference and link scores), so exact
//!   re-ranking is free at the system level and recall is bounded only
//!   by shortlist coverage.
//!
//! Quantization, scan order, and tie-breaking are all deterministic:
//! the same build inputs produce bit-identical codes, and the same query
//! produces identical rankings on every run and thread count.

use crate::persist::{columnar_meta, open_index_columns};
use crate::{scan, topk, IndexError, IndexKind, Metric, Neighbor, VectorIndex};
use pane_format::{section, Artifact, ColumnData, ColumnSpec};
use pane_linalg::{kernels, vecops, DenseMatrix};
use std::path::Path;

/// Build-time options for [`SqFlatIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SqConfig {
    /// Shortlist multiplier: the quantized scan keeps `k × rerank`
    /// candidates for re-scoring (at least `k`). Larger values trade
    /// re-rank work for recall; 4 is enough for ≥ 0.99 recall@10 on
    /// clustered embedding-like data when re-ranking exactly.
    pub rerank: usize,
}

impl Default for SqConfig {
    fn default() -> Self {
        Self { rerank: 4 }
    }
}

/// Flat scan over 8-bit scalar-quantized vectors with shortlist
/// re-ranking. See the [module docs](self) for the memory/recall
/// contract.
#[derive(Debug, Clone)]
pub struct SqFlatIndex {
    metric: Metric,
    dim: usize,
    /// Row-major `n × dim` codes.
    codes: Vec<i8>,
    /// Per-row dequantization scale (`max|v| / 127`; 0 for all-zero rows).
    scales: Vec<f64>,
    rerank: usize,
}

/// Quantizes one prepared row: symmetric max-abs scaling to `[-127, 127]`.
fn quantize_row(row: &[f64], codes: &mut Vec<i8>) -> f64 {
    let mut maxabs = 0.0f64;
    for &v in row {
        maxabs = maxabs.max(v.abs());
    }
    if maxabs == 0.0 || !maxabs.is_finite() {
        codes.extend(std::iter::repeat_n(0, row.len()));
        return 0.0;
    }
    let scale = maxabs / 127.0;
    let inv = 127.0 / maxabs;
    for &v in row {
        let q = (v * inv).round().clamp(-127.0, 127.0);
        codes.push(q as i8);
    }
    scale
}

impl SqFlatIndex {
    /// Quantizes and indexes the rows of `data` (normalized first if
    /// cosine, like every other index).
    ///
    /// # Panics
    /// Panics if `data` has no rows or no columns.
    pub fn build(data: &DenseMatrix, metric: Metric, config: SqConfig) -> Self {
        assert!(
            data.rows() > 0 && data.cols() > 0,
            "SqFlatIndex::build: empty data"
        );
        let prepared = metric.prepare(data);
        let mut codes = Vec::with_capacity(prepared.rows() * prepared.cols());
        let mut scales = Vec::with_capacity(prepared.rows());
        for i in 0..prepared.rows() {
            scales.push(quantize_row(prepared.row(i), &mut codes));
        }
        Self {
            metric,
            dim: prepared.cols(),
            codes,
            scales,
            rerank: config.rerank.max(1),
        }
    }

    /// Reads an index written by [`VectorIndex::save`].
    pub fn load(path: &Path) -> Result<Self, IndexError> {
        let (c, metric) = open_index_columns(path, IndexKind::SqFlat)?;
        Self::from_columns(&c, metric)
    }

    /// Reconstructs the index from an already-validated container.
    pub(crate) fn from_columns(
        c: &pane_format::Columns,
        metric: Metric,
    ) -> Result<Self, IndexError> {
        let (n, dim) = c.dims(section::SQ_CODES)?;
        if n == 0 || dim == 0 {
            return Err(IndexError::Format(format!(
                "sqflat codes section is {n}×{dim}; an index is never empty"
            )));
        }
        if dim > 1 << 24 {
            return Err(IndexError::Format(format!("dim {dim} exceeds cap")));
        }
        let (sn, sc) = c.dims(section::SQ_SCALES)?;
        if sn != n || sc != 1 {
            return Err(IndexError::Format(format!(
                "sqflat scales section is {sn}×{sc}, expected {n}×1"
            )));
        }
        let meta = c.u64s(section::SQ_META)?;
        if meta.len() != 1 {
            return Err(IndexError::Format(format!(
                "sqflat meta section holds {} words, expected 1",
                meta.len()
            )));
        }
        let rerank = meta[0];
        if rerank == 0 || rerank > 1 << 20 {
            return Err(IndexError::Format(format!(
                "sqflat rerank {rerank} outside [1, 2^20]"
            )));
        }
        let scales = c.f64s(section::SQ_SCALES)?;
        for (i, &s) in scales.iter().enumerate() {
            if !(s.is_finite() && s >= 0.0) {
                return Err(IndexError::Format(format!(
                    "sqflat scale[{i}] = {s} is not a finite non-negative value"
                )));
            }
        }
        Ok(Self {
            metric,
            dim,
            codes: c.i8s(section::SQ_CODES)?.to_vec(),
            scales: scales.to_vec(),
            rerank: rerank as usize,
        })
    }

    /// Shortlist multiplier the index was built with.
    pub fn rerank(&self) -> usize {
        self.rerank
    }

    /// Code row `i`.
    #[inline]
    fn code_row(&self, i: usize) -> &[i8] {
        &self.codes[i * self.dim..(i + 1) * self.dim]
    }

    /// Shortlist size for a top-`k` request.
    fn shortlist(&self, k: usize) -> usize {
        k.saturating_mul(self.rerank).max(k).min(self.len())
    }

    /// Quantized scan: top `shortlist(k)` candidates under the
    /// approximate (code-domain) score, best first. Runs as a fused
    /// panel scan over the contiguous code rows ([`scan::scan_topk_i8`]);
    /// the integer dots are exact under any unroll, so the scores are
    /// identical to the one-row-at-a-time loop.
    fn scan(&self, q: &[f64], k: usize) -> (Vec<i8>, f64, Vec<Neighbor>) {
        let mut qcodes = Vec::with_capacity(self.dim);
        let qscale = quantize_row(q, &mut qcodes);
        let mut acc = topk::TopK::new(self.shortlist(k));
        scan::scan_topk_i8(&mut acc, &qcodes, &self.codes, self.dim, |i, d| {
            qscale * self.scales[i] * d as f64
        });
        (qcodes, qscale, acc.into_sorted())
    }

    /// Top-`k` neighbors re-ranked against caller-provided
    /// full-precision rows instead of dequantized codes.
    ///
    /// `exact` must hold the *same rows in the same order* as the data
    /// the index was built from (un-prepared: this method applies the
    /// metric's normalization itself). The serving tier passes the
    /// resident embedding matrix, making recall a pure function of
    /// shortlist coverage.
    ///
    /// # Panics
    /// Panics if `query.len() != self.dim()` or `exact` disagrees with
    /// the index shape.
    pub fn search_rerank(&self, query: &[f64], k: usize, exact: &DenseMatrix) -> Vec<Neighbor> {
        assert_eq!(query.len(), self.dim, "SqFlatIndex::search_rerank: dim");
        assert_eq!(
            (exact.rows(), exact.cols()),
            (self.len(), self.dim),
            "SqFlatIndex::search_rerank: exact matrix shape mismatch"
        );
        let q = self.metric.prepare_query(query);
        let (_, _, short) = self.scan(&q, k);
        topk::select(
            short.into_iter().map(|cand| {
                let row = self.metric.prepare_query(exact.row(cand.index));
                (cand.index, vecops::dot(&q, &row))
            }),
            k,
        )
    }

    /// Bytes of vector payload held resident (codes + scales). The
    /// comparable figure for a [`crate::FlatIndex`] is `n · dim · 8`.
    pub fn resident_bytes(&self) -> usize {
        self.codes.len() * std::mem::size_of::<i8>()
            + self.scales.len() * std::mem::size_of::<f64>()
    }
}

impl VectorIndex for SqFlatIndex {
    fn kind(&self) -> IndexKind {
        IndexKind::SqFlat
    }

    fn metric(&self) -> Metric {
        self.metric
    }

    fn len(&self) -> usize {
        self.scales.len()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn search_prepared(&self, prepared: &[f64], k: usize) -> Vec<Neighbor> {
        assert_eq!(
            prepared.len(),
            self.dim,
            "SqFlatIndex::search_prepared: dim mismatch"
        );
        let (_, _, short) = self.scan(prepared, k);
        // Self-contained re-rank: f64 query against dequantized rows,
        // with the per-row scale hoisted out of the sum
        // (`scale · Σ q[j]·code[j]` via the mixed f64×i8 kernel).
        topk::select(
            short.into_iter().map(|cand| {
                let s = self.scales[cand.index]
                    * kernels::dot_f64_i8(prepared, self.code_row(cand.index));
                (cand.index, s)
            }),
            k,
        )
    }

    fn insert(&mut self, vector: &[f64]) -> Result<usize, IndexError> {
        if vector.len() != self.dim {
            return Err(IndexError::Build(format!(
                "SqFlatIndex::insert: vector has dim {}, index holds dim {}",
                vector.len(),
                self.dim
            )));
        }
        let prepared = self.metric.prepare_query(vector);
        self.scales.push(quantize_row(&prepared, &mut self.codes));
        Ok(self.len() - 1)
    }

    fn save(&self, path: &Path) -> Result<(), IndexError> {
        let meta = [self.rerank as u64];
        let specs = [
            ColumnSpec {
                id: section::SQ_CODES,
                rows: self.len(),
                cols: self.dim,
                data: ColumnData::I8(&self.codes),
            },
            ColumnSpec {
                id: section::SQ_SCALES,
                rows: self.len(),
                cols: 1,
                data: ColumnData::F64(&self.scales),
            },
            ColumnSpec {
                id: section::SQ_META,
                rows: 1,
                cols: 1,
                data: ColumnData::U64(&meta),
            },
        ];
        pane_format::write_columns(
            path,
            Artifact::Index,
            columnar_meta(IndexKind::SqFlat, self.metric),
            &specs,
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::clustered_vectors;
    use crate::FlatIndex;

    #[test]
    fn finds_itself_first_under_cosine() {
        let data = clustered_vectors(150, 24, 5, 0.2);
        let idx = SqFlatIndex::build(&data, Metric::Cosine, SqConfig::default());
        for v in [0, 42, 149] {
            let hits = idx.search(data.row(v), 5);
            assert_eq!(hits[0].index, v, "query {v}");
            assert!(
                (hits[0].score - 1.0).abs() < 0.02,
                "score {}",
                hits[0].score
            );
        }
    }

    #[test]
    fn uses_one_eighth_the_vector_memory() {
        let data = clustered_vectors(200, 64, 4, 0.2);
        let idx = SqFlatIndex::build(&data, Metric::Cosine, SqConfig::default());
        let flat_bytes = 200 * 64 * 8;
        // codes are 1/8 of flat; scales add 8 bytes per row.
        assert_eq!(idx.resident_bytes(), 200 * 64 + 200 * 8);
        assert!(idx.resident_bytes() * 7 < flat_bytes);
    }

    #[test]
    fn recall_against_exact_baseline() {
        let data = clustered_vectors(2000, 32, 8, 0.25);
        let exact = FlatIndex::build(&data, Metric::Cosine);
        let idx = SqFlatIndex::build(&data, Metric::Cosine, SqConfig::default());
        let k = 10;
        let queries = 50;
        let mut hit_dq = 0usize;
        let mut hit_rr = 0usize;
        for qi in 0..queries {
            let truth: Vec<usize> = exact
                .search(data.row(qi), k)
                .iter()
                .map(|h| h.index)
                .collect();
            let dq: Vec<usize> = idx
                .search(data.row(qi), k)
                .iter()
                .map(|h| h.index)
                .collect();
            let rr: Vec<usize> = idx
                .search_rerank(data.row(qi), k, &data)
                .iter()
                .map(|h| h.index)
                .collect();
            hit_dq += truth.iter().filter(|t| dq.contains(t)).count();
            hit_rr += truth.iter().filter(|t| rr.contains(t)).count();
        }
        let recall_dq = hit_dq as f64 / (queries * k) as f64;
        let recall_rr = hit_rr as f64 / (queries * k) as f64;
        assert!(recall_dq >= 0.90, "dequantized recall {recall_dq}");
        assert!(recall_rr >= 0.99, "exact-rerank recall {recall_rr}");
        // Exact re-rank can only improve on the dequantized shortlist.
        assert!(recall_rr >= recall_dq - 1e-12);
    }

    #[test]
    fn save_load_roundtrip_is_bit_identical() {
        let dir = std::env::temp_dir().join(format!("pane_sq_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sq.idx");
        let data = clustered_vectors(300, 16, 4, 0.3);
        let idx = SqFlatIndex::build(&data, Metric::InnerProduct, SqConfig { rerank: 3 });
        idx.save(&path).unwrap();
        let back = SqFlatIndex::load(&path).unwrap();
        assert_eq!(back.metric(), Metric::InnerProduct);
        assert_eq!(back.len(), 300);
        assert_eq!(back.dim(), 16);
        assert_eq!(back.codes, idx.codes);
        assert_eq!(
            back.scales.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            idx.scales.iter().map(|s| s.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(back.rerank, 3);
        for q in [0, 150] {
            assert_eq!(back.search(data.row(q), 7), idx.search(data.row(q), 7));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn insert_then_find_inserted() {
        let data = clustered_vectors(64, 12, 3, 0.3);
        let mut idx = SqFlatIndex::build(&data, Metric::Cosine, SqConfig::default());
        let v: Vec<f64> = (0..12).map(|j| (j as f64 + 1.0) * 0.1).collect();
        let id = idx.insert(&v).unwrap();
        assert_eq!(id, 64);
        let hits = idx.search(&v, 3);
        assert_eq!(hits[0].index, 64);
    }

    #[test]
    fn zero_vector_quantizes_without_nan() {
        let mut data = clustered_vectors(10, 8, 2, 0.2);
        for v in data.row_mut(3) {
            *v = 0.0;
        }
        let idx = SqFlatIndex::build(&data, Metric::InnerProduct, SqConfig::default());
        assert_eq!(idx.scales[3], 0.0);
        let hits = idx.search(data.row(0), 5);
        assert!(hits.iter().all(|h| h.score.is_finite()));
    }

    #[test]
    fn deterministic_across_rebuilds() {
        let data = clustered_vectors(500, 20, 6, 0.25);
        let a = SqFlatIndex::build(&data, Metric::Cosine, SqConfig::default());
        let b = SqFlatIndex::build(&data, Metric::Cosine, SqConfig::default());
        assert_eq!(a.codes, b.codes);
        for q in [1, 250, 499] {
            assert_eq!(a.search(data.row(q), 10), b.search(data.row(q), 10));
        }
    }
}
