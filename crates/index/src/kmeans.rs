//! Seeded Lloyd k-means — the coarse quantizer behind [`crate::IvfIndex`].
//!
//! The expensive step (assigning every point to its nearest centroid) fans
//! out over row blocks with `pane-parallel`; the cheap centroid update then
//! runs serially *in point order* on the main thread. That split is what
//! makes the result bit-identical for every thread count: floating-point
//! accumulation order never depends on the block structure, matching the
//! determinism contract of the embedding pipeline (Lemma 4.1 in spirit).

use crate::splitmix64;
use pane_linalg::{vecops, DenseMatrix};
use pane_parallel::{even_ranges_nonempty, map_blocks};

/// Output of [`kmeans`].
#[derive(Debug, Clone)]
pub struct KmeansResult {
    /// `k × dim` centroid matrix.
    pub centroids: DenseMatrix,
    /// For each input row, the id of its nearest centroid.
    pub assignment: Vec<u32>,
    /// Lloyd iterations actually performed (stops early on a fixed point).
    pub iterations: usize,
}

/// Nearest centroid of `x` by squared Euclidean distance, ties to the
/// lowest id. `cnorms[c]` must hold `‖centroid_c‖²`.
#[inline]
fn nearest(x: &[f64], centroids: &DenseMatrix, cnorms: &[f64]) -> u32 {
    let mut best = 0u32;
    let mut best_d = f64::INFINITY;
    for c in 0..centroids.rows() {
        // ‖x − c‖² = ‖x‖² − 2·x·c + ‖c‖²; ‖x‖² is constant across c.
        let d = cnorms[c] - 2.0 * vecops::dot(x, centroids.row(c));
        if d < best_d {
            best_d = d;
            best = c as u32;
        }
    }
    best
}

/// Runs seeded Lloyd k-means on the rows of `data`.
///
/// `k` is clamped to the number of rows. Initial centroids are `k` distinct
/// rows chosen by a seeded partial Fisher–Yates shuffle; empty clusters
/// keep their previous centroid. The result is identical for every
/// `threads` value.
///
/// # Panics
/// Panics if `data` has no rows or `k == 0`.
pub fn kmeans(
    data: &DenseMatrix,
    k: usize,
    max_iters: usize,
    seed: u64,
    threads: usize,
) -> KmeansResult {
    let n = data.rows();
    let dim = data.cols();
    assert!(n > 0, "kmeans: empty data");
    assert!(k > 0, "kmeans: k must be positive");
    let k = k.min(n);

    // Seeded partial Fisher–Yates: the first k slots of a virtual
    // permutation of 0..n pick the initial centroids.
    let mut picks: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = i + (splitmix64(seed.wrapping_add(i as u64)) as usize) % (n - i);
        picks.swap(i, j);
    }
    let mut centroids = DenseMatrix::zeros(k, dim);
    for (c, &row) in picks[..k].iter().enumerate() {
        centroids.row_mut(c).copy_from_slice(data.row(row));
    }

    let ranges = even_ranges_nonempty(n, threads.max(1));
    let mut assignment = vec![0u32; n];
    let mut iterations = 0;
    for _ in 0..max_iters {
        iterations += 1;
        let cnorms: Vec<f64> = (0..k).map(|c| vecops::norm2_sq(centroids.row(c))).collect();
        // Parallel assignment: each point is independent.
        let blocks = map_blocks(&ranges, |_, range| {
            range
                .map(|i| nearest(data.row(i), &centroids, &cnorms))
                .collect::<Vec<u32>>()
        });
        let new_assignment: Vec<u32> = blocks.into_iter().flatten().collect();
        let converged = new_assignment == assignment && iterations > 1;
        assignment = new_assignment;
        if converged {
            break;
        }
        // Serial update in point order — thread-count-independent sums.
        let mut sums = DenseMatrix::zeros(k, dim);
        let mut counts = vec![0usize; k];
        for (i, &a) in assignment.iter().enumerate() {
            vecops::axpy(1.0, data.row(i), sums.row_mut(a as usize));
            counts[a as usize] += 1;
        }
        for c in 0..k {
            if counts[c] > 0 {
                let inv = 1.0 / counts[c] as f64;
                let (src, dst) = (sums.row(c), centroids.row_mut(c));
                for (s, d) in src.iter().zip(dst.iter_mut()) {
                    *d = s * inv;
                }
            }
        }
    }

    KmeansResult {
        centroids,
        assignment,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::clustered_vectors;

    #[test]
    fn recovers_separated_clusters() {
        let data = clustered_vectors(300, 8, 3, 0.05);
        let r = kmeans(&data, 3, 20, 7, 2);
        // Every cluster should be non-trivially populated.
        let mut counts = [0usize; 3];
        for &a in &r.assignment {
            counts[a as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c >= 30), "degenerate: {counts:?}");
        // Points sharing a cell should be much closer to their centroid
        // than to the average centroid (tight, well-separated cells).
        for i in (0..data.rows()).step_by(17) {
            let a = r.assignment[i] as usize;
            let own = dist2(data.row(i), r.centroids.row(a));
            for c in 0..3 {
                if c != a {
                    assert!(own <= dist2(data.row(i), r.centroids.row(c)) + 1e-12);
                }
            }
        }
    }

    fn dist2(x: &[f64], y: &[f64]) -> f64 {
        x.iter().zip(y).map(|(a, b)| (a - b) * (a - b)).sum()
    }

    #[test]
    fn thread_count_invariant() {
        let data = clustered_vectors(200, 6, 4, 0.1);
        let r1 = kmeans(&data, 8, 15, 42, 1);
        let r4 = kmeans(&data, 8, 15, 42, 4);
        assert_eq!(r1.assignment, r4.assignment);
        assert_eq!(r1.centroids.data(), r4.centroids.data());
    }

    #[test]
    fn k_clamped_to_n() {
        let data = clustered_vectors(5, 4, 1, 0.1);
        let r = kmeans(&data, 16, 5, 1, 1);
        assert_eq!(r.centroids.rows(), 5);
        assert_eq!(r.assignment.len(), 5);
    }
}
