//! Fuzz-style corruption properties for the `PANEIDX1` loaders.
//!
//! The serving daemon loads index files produced by other processes, so
//! the loaders must treat every byte as untrusted: any truncation or
//! header mutation has to surface as a structured [`IndexError`] — never
//! a panic, and never a giant allocation from a corrupt declared length
//! (the harness would hang or OOM long before an assert fired).

use crate::persist::{load_index, INDEX_MAGIC};
use crate::testutil::clustered_vectors;
use crate::{
    FlatIndex, HnswConfig, HnswIndex, IndexError, IvfConfig, IvfIndex, Metric, VectorIndex,
};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One saved fixture per index kind (flat, ivf, hnsw), as raw bytes.
fn fixture_bytes() -> &'static [Vec<u8>; 3] {
    static BYTES: OnceLock<[Vec<u8>; 3]> = OnceLock::new();
    BYTES.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("pane_idx_prop_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = clustered_vectors(60, 6, 3, 0.2);
        let flat = dir.join("flat.idx");
        FlatIndex::build(&data, Metric::Cosine).save(&flat).unwrap();
        let ivf = dir.join("ivf.idx");
        IvfIndex::build(
            &data,
            Metric::InnerProduct,
            &IvfConfig {
                nlist: 4,
                ..Default::default()
            },
        )
        .save(&ivf)
        .unwrap();
        let hnsw = dir.join("hnsw.idx");
        HnswIndex::build(&data, Metric::Cosine, &HnswConfig::default())
            .save(&hnsw)
            .unwrap();
        [
            std::fs::read(&flat).unwrap(),
            std::fs::read(&ivf).unwrap(),
            std::fs::read(&hnsw).unwrap(),
        ]
    })
}

/// Writes `bytes` to a scratch file and loads it through the
/// self-describing entry point.
fn load_mutated(name: &str, bytes: &[u8]) -> Result<crate::AnyIndex, IndexError> {
    let dir = std::env::temp_dir().join(format!("pane_idx_prop_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(name);
    std::fs::write(&p, bytes).unwrap();
    load_index(&p)
}

/// Number of leading `u64` header words (after magic + tags) per kind.
const HEADER_WORDS: [usize; 3] = [2, 4, 7];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any strict truncation fails the load with a structured error: the
    /// format has no slack bytes, so a shorter file either hits EOF or
    /// fails a count-vs-remaining check.
    #[test]
    fn truncation_always_fails_structured(kind in 0usize..3, frac in 0.0f64..1.0) {
        let full = &fixture_bytes()[kind];
        let keep = (frac * (full.len() - 1) as f64) as usize;
        let got = load_mutated("trunc.idx", &full[..keep]);
        match got {
            Err(IndexError::Format(_)) | Err(IndexError::Io(_)) => {}
            other => panic!("truncated load must fail, got {:?}", other.map(|i| i.kind())),
        }
    }

    /// Overwriting any header word with a huge value fails cleanly —
    /// via a sanity cap or the remaining-bytes check — before any
    /// allocation sized by that value.
    #[test]
    fn huge_header_word_fails_before_allocating(
        kind in 0usize..3,
        word in 0usize..7,
        bump in 0u64..1_000_000,
    ) {
        let word = word % HEADER_WORDS[kind];
        let mut bytes = fixture_bytes()[kind].clone();
        let at = INDEX_MAGIC.len() + 2 + 8 * word;
        let huge = (1u64 << 33) + bump;
        bytes[at..at + 8].copy_from_slice(&huge.to_le_bytes());
        match load_mutated("huge_word.idx", &bytes) {
            Err(IndexError::Format(_)) => {}
            other => panic!(
                "huge header word must be a format error, got {:?}",
                other.map(|i| i.kind())
            ),
        }
    }

    /// Arbitrary single-byte mutations never panic: the load either fails
    /// with a structured error or yields an index that still serves a
    /// search (corrupt *values* are legal — corrupt *structure* is not).
    #[test]
    fn byte_mutations_never_panic(
        kind in 0usize..3,
        offset_frac in 0.0f64..1.0,
        xor in 1u32..256,
    ) {
        let mut bytes = fixture_bytes()[kind].clone();
        let at = (offset_frac * (bytes.len() - 1) as f64) as usize;
        bytes[at] ^= xor as u8;
        if let Ok(idx) = load_mutated("bitflip.idx", &bytes) {
            // Loaded despite the flip ⇒ the invariants all re-validated;
            // a search must complete (NaN scores rank last, no panic).
            prop_assert!(idx.len() > 0 && idx.dim() > 0);
            let q = vec![0.25; idx.dim()];
            let hits = idx.search(&q, 3);
            prop_assert!(hits.len() <= 3);
        }
    }
}
