//! Fuzz-style corruption properties for the `PANEIDX1` loaders, plus
//! the kernel-equivalence and thread-invariance properties of the fused
//! scan paths.
//!
//! The serving daemon loads index files produced by other processes, so
//! the loaders must treat every byte as untrusted: any truncation or
//! header mutation has to surface as a structured [`IndexError`] — never
//! a panic, and never a giant allocation from a corrupt declared length
//! (the harness would hang or OOM long before an assert fired).
//!
//! The scan properties pin the determinism contract of the kernel layer
//! (see `pane-linalg::kernels`): every index's fused panel scan must be
//! *bit-identical* to a reference reduction over `kernels::dot`, and
//! batched search must be bit-identical to single search at every thread
//! count.

use crate::persist::{load_index, INDEX_MAGIC};
use crate::testutil::clustered_vectors;
use crate::{
    topk, DeltaIndex, FlatIndex, HnswConfig, HnswIndex, IndexError, IvfConfig, IvfIndex, Metric,
    SqConfig, SqFlatIndex, VectorIndex,
};
use pane_linalg::{kernels, DenseMatrix};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One saved fixture per index kind (flat, ivf, hnsw), as raw bytes.
fn fixture_bytes() -> &'static [Vec<u8>; 3] {
    static BYTES: OnceLock<[Vec<u8>; 3]> = OnceLock::new();
    BYTES.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("pane_idx_prop_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = clustered_vectors(60, 6, 3, 0.2);
        let flat = dir.join("flat.idx");
        FlatIndex::build(&data, Metric::Cosine).save(&flat).unwrap();
        let ivf = dir.join("ivf.idx");
        IvfIndex::build(
            &data,
            Metric::InnerProduct,
            &IvfConfig {
                nlist: 4,
                ..Default::default()
            },
        )
        .save(&ivf)
        .unwrap();
        let hnsw = dir.join("hnsw.idx");
        HnswIndex::build(&data, Metric::Cosine, &HnswConfig::default())
            .save(&hnsw)
            .unwrap();
        [
            std::fs::read(&flat).unwrap(),
            std::fs::read(&ivf).unwrap(),
            std::fs::read(&hnsw).unwrap(),
        ]
    })
}

/// Writes `bytes` to a scratch file and loads it through the
/// self-describing entry point.
fn load_mutated(name: &str, bytes: &[u8]) -> Result<crate::AnyIndex, IndexError> {
    let dir = std::env::temp_dir().join(format!("pane_idx_prop_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(name);
    std::fs::write(&p, bytes).unwrap();
    load_index(&p)
}

/// Number of leading `u64` header words (after magic + tags) per kind.
const HEADER_WORDS: [usize; 3] = [2, 4, 7];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any strict truncation fails the load with a structured error: the
    /// format has no slack bytes, so a shorter file either hits EOF or
    /// fails a count-vs-remaining check.
    #[test]
    fn truncation_always_fails_structured(kind in 0usize..3, frac in 0.0f64..1.0) {
        let full = &fixture_bytes()[kind];
        let keep = (frac * (full.len() - 1) as f64) as usize;
        let got = load_mutated("trunc.idx", &full[..keep]);
        match got {
            Err(IndexError::Format(_)) | Err(IndexError::Io(_)) => {}
            other => panic!("truncated load must fail, got {:?}", other.map(|i| i.kind())),
        }
    }

    /// Overwriting any header word with a huge value fails cleanly —
    /// via a sanity cap or the remaining-bytes check — before any
    /// allocation sized by that value.
    #[test]
    fn huge_header_word_fails_before_allocating(
        kind in 0usize..3,
        word in 0usize..7,
        bump in 0u64..1_000_000,
    ) {
        let word = word % HEADER_WORDS[kind];
        let mut bytes = fixture_bytes()[kind].clone();
        let at = INDEX_MAGIC.len() + 2 + 8 * word;
        let huge = (1u64 << 33) + bump;
        bytes[at..at + 8].copy_from_slice(&huge.to_le_bytes());
        match load_mutated("huge_word.idx", &bytes) {
            Err(IndexError::Format(_)) => {}
            other => panic!(
                "huge header word must be a format error, got {:?}",
                other.map(|i| i.kind())
            ),
        }
    }

    /// Arbitrary single-byte mutations never panic: the load either fails
    /// with a structured error or yields an index that still serves a
    /// search (corrupt *values* are legal — corrupt *structure* is not).
    #[test]
    fn byte_mutations_never_panic(
        kind in 0usize..3,
        offset_frac in 0.0f64..1.0,
        xor in 1u32..256,
    ) {
        let mut bytes = fixture_bytes()[kind].clone();
        let at = (offset_frac * (bytes.len() - 1) as f64) as usize;
        bytes[at] ^= xor as u8;
        if let Ok(idx) = load_mutated("bitflip.idx", &bytes) {
            // Loaded despite the flip ⇒ the invariants all re-validated;
            // a search must complete (NaN scores rank last, no panic).
            prop_assert!(idx.len() > 0 && idx.dim() > 0);
            let q = vec![0.25; idx.dim()];
            let hits = idx.search(&q, 3);
            prop_assert!(hits.len() <= 3);
        }
    }
}

/// Shared vector fixture for the scan properties (built once; the
/// properties vary query, k, and thread count over it).
fn scan_fixture() -> &'static DenseMatrix {
    static DATA: OnceLock<DenseMatrix> = OnceLock::new();
    DATA.get_or_init(|| clustered_vectors(300, 24, 5, 0.2))
}

/// One prebuilt index per kind over the scan fixture (IVF probes 3 of 8
/// cells, so its approximation — not just the exact paths — is pinned).
fn scan_indexes() -> &'static [Box<dyn VectorIndex>; 4] {
    static IDX: OnceLock<[Box<dyn VectorIndex>; 4]> = OnceLock::new();
    IDX.get_or_init(|| {
        let data = scan_fixture();
        let mut ivf = IvfIndex::build(
            data,
            Metric::Cosine,
            &IvfConfig {
                nlist: 8,
                ..Default::default()
            },
        );
        ivf.set_nprobe(3);
        [
            Box::new(FlatIndex::build(data, Metric::Cosine)),
            Box::new(ivf),
            Box::new(HnswIndex::build(
                data,
                Metric::Cosine,
                &HnswConfig::default(),
            )),
            Box::new(SqFlatIndex::build(
                data,
                Metric::Cosine,
                SqConfig::default(),
            )),
        ]
    })
}

/// Bit-level equality of two result lists (PartialEq would treat any
/// NaN score as unequal to itself).
fn same_hits(a: &[crate::Neighbor], b: &[crate::Neighbor]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.index == y.index && x.score.to_bits() == y.score.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The flat index's fused panel scan ≡ a plain bounded-heap select
    /// over `kernels::dot` scores, bitwise — the kernel layer's central
    /// equivalence claim, checked end to end through `search`.
    #[test]
    fn flat_search_bitwise_equals_kernel_reference(
        qrow in 0usize..300,
        k in 1usize..20,
        metric_ip in 0usize..2,
    ) {
        let data = scan_fixture();
        let metric = if metric_ip == 1 { Metric::InnerProduct } else { Metric::Cosine };
        let idx = FlatIndex::build(data, metric);
        let got = idx.search(data.row(qrow), k);
        let q = match metric {
            Metric::Cosine => {
                let mut v = data.row(qrow).to_vec();
                pane_linalg::vecops::normalize(&mut v, 1e-300);
                v
            }
            Metric::InnerProduct => data.row(qrow).to_vec(),
        };
        let want = topk::select(
            (0..idx.len()).map(|i| (i, kernels::dot(&q, idx.vectors().row(i)))),
            k,
        );
        prop_assert!(same_hits(&got, &want));
    }

    /// Batched search ≡ single search, bitwise, at every thread count —
    /// for the blocked flat path and the default per-query fan-out of
    /// the other index kinds.
    #[test]
    fn batch_search_thread_invariant_all_kinds(
        threads in 1usize..6,
        k in 1usize..12,
    ) {
        let data = scan_fixture();
        let queries = data.row_block(0..40);
        for idx in scan_indexes() {
            let single: Vec<_> = (0..queries.rows())
                .map(|i| idx.search(queries.row(i), k))
                .collect();
            let batch = idx.batch_search(&queries, k, threads);
            prop_assert_eq!(batch.len(), single.len());
            for (b, s) in batch.iter().zip(&single) {
                prop_assert!(same_hits(b, s), "{} diverged at {threads} threads", idx.kind());
            }
        }
    }

    /// A delta-wrapped flat index ≡ a flat rebuild over all vectors,
    /// bitwise — the prepare-once hoist and the fused delta scan change
    /// nothing observable.
    #[test]
    fn delta_merge_bitwise_equals_rebuild(
        split in 150usize..290,
        qrow in 0usize..300,
        k in 1usize..15,
    ) {
        let data = scan_fixture();
        let full = FlatIndex::build(data, Metric::Cosine);
        let head = data.row_block(0..split);
        let mut delta = DeltaIndex::new(crate::AnyIndex::Flat(
            FlatIndex::build(&head, Metric::Cosine),
        ));
        for i in split..data.rows() {
            delta.insert(data.row(i)).unwrap();
        }
        let a = delta.search(data.row(qrow), k);
        let b = full.search(data.row(qrow), k);
        prop_assert!(same_hits(&a, &b));
    }
}
