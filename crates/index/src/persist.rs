//! Index persistence: the columnar `PANECOL1` container and the legacy
//! `PANEIDX1` stream format.
//!
//! New indexes save as `PANECOL1` containers (see `pane-format`): each
//! structure's arrays become typed, aligned, checksummed sections, the
//! meta word packs `kind | metric << 8`, and loading is a single bulk
//! read plus zero-copy views. [`load_index`] sniffs the first 8 bytes
//! and dispatches to the columnar or legacy reader, so files written by
//! either format stay loadable through the same entry point; per-type
//! `save_legacy` writers remain for fixtures and migration tests.
//!
//! # Legacy format layout (`PANEIDX1`)
//!
//! All integers are little-endian. A `u32[]` is a `u64` length followed by
//! that many `u32` words; an `f64[r×c]` is `r·c` packed doubles (row-major,
//! no length prefix — the dimensions come from earlier fields). The file
//! ends exactly after the payload; trailing bytes fail the load.
//!
//! Common 10-byte header:
//!
//! | offset | size | field | meaning |
//! |--------|------|-------|---------|
//! | 0 | 8 | magic | `b"PANEIDX1"` |
//! | 8 | 1 | kind | [`IndexKind::tag`]: 0 = flat, 1 = ivf, 2 = hnsw |
//! | 9 | 1 | metric | [`Metric::tag`]: 0 = cosine, 1 = inner product |
//!
//! `flat` payload:
//!
//! | field | type | meaning |
//! |-------|------|---------|
//! | `n` | `u64` | number of stored vectors (> 0) |
//! | `dim` | `u64` | vector dimensionality (> 0) |
//! | `data` | `f64[n×dim]` | metric-prepared vectors |
//!
//! `ivf` payload:
//!
//! | field | type | meaning |
//! |-------|------|---------|
//! | `n` | `u64` | number of stored vectors (> 0) |
//! | `dim` | `u64` | vector dimensionality (> 0) |
//! | `nlist` | `u64` | number of k-means cells (`1..=n`) |
//! | `nprobe` | `u64` | default probed cells (`1..=nlist`) |
//! | `centroids` | `f64[nlist×dim]` | cell centroids |
//! | `sizes` | `u32[]` | per-cell vector counts (`nlist` entries, summing to `n`) |
//! | `ids` | `u32[]` | original row ids, cell-major (`n` entries) |
//! | `vectors` | `f64[n×dim]` | metric-prepared vectors, cell-major |
//!
//! `hnsw` payload:
//!
//! | field | type | meaning |
//! |-------|------|---------|
//! | `n` | `u64` | number of stored vectors (> 0) |
//! | `dim` | `u64` | vector dimensionality (> 0) |
//! | `m` | `u64` | max neighbors per upper-level node |
//! | `ef_construction` | `u64` | build-time beam width |
//! | `ef_search` | `u64` | default query beam width |
//! | `entry` | `u64` | entry-point node id (`< n`, must reach `max_level`) |
//! | `max_level` | `u64` | top level of the graph (`<= 24`) |
//! | `levels` | `u32[]` | per-node level (`n` entries, each `<= max_level`) |
//! | `links` | `u32[]` × Σ(levels+1) | neighbor lists, node-major then level 0..=levels\[node\] |
//! | `data` | `f64[n×dim]` | metric-prepared vectors |
//!
//! # Corruption handling
//!
//! Loaders must *fail the load* on any inconsistency — never panic on the
//! first search, and never allocate from an unvalidated declared length.
//! The crate-private `FileReader` therefore tracks the file length and
//! checks every declared count against the bytes that actually remain
//! (`ensure_available`, the same pattern as `pane-graph`'s binary
//! loader) before any allocation happens.

use crate::{
    FlatIndex, HnswIndex, IndexError, IndexKind, IvfIndex, Metric, Neighbor, SqFlatIndex,
    VectorIndex,
};
use pane_format::{Artifact, Columns, FormatError};
use pane_linalg::DenseMatrix;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic bytes of the legacy index format (version 1).
pub const INDEX_MAGIC: &[u8; 8] = b"PANEIDX1";

/// Refuse headers implying more than this many `f64`s in one matrix
/// (~8 GiB) — corrupted dimensions should error, not OOM.
pub(crate) const MAX_MATRIX_ELEMS: usize = 1 << 30;

impl From<FormatError> for IndexError {
    fn from(e: FormatError) -> Self {
        match e {
            FormatError::Io(e) => IndexError::Io(e),
            FormatError::Format(m) => IndexError::Format(m),
        }
    }
}

/// Packs `(kind, metric)` into the `PANECOL1` meta word for index
/// artifacts: low byte = [`IndexKind::tag`], high byte = [`Metric::tag`].
pub(crate) fn columnar_meta(kind: IndexKind, metric: Metric) -> u16 {
    kind.tag() as u16 | ((metric.tag() as u16) << 8)
}

/// Unpacks and validates the meta word of an index container.
pub(crate) fn columnar_kind_metric(c: &Columns) -> Result<(IndexKind, Metric), IndexError> {
    if c.artifact() != Artifact::Index {
        return Err(IndexError::Format(format!(
            "{:?} artifact where an index was expected",
            c.artifact()
        )));
    }
    let meta = c.meta();
    let kind = IndexKind::from_tag((meta & 0xFF) as u8)
        .ok_or_else(|| IndexError::Format(format!("unknown index kind tag {}", meta & 0xFF)))?;
    let metric = Metric::from_tag((meta >> 8) as u8)
        .ok_or_else(|| IndexError::Format(format!("unknown metric tag {}", meta >> 8)))?;
    Ok((kind, metric))
}

/// Opens a `PANECOL1` index container, checking the stored kind.
pub(crate) fn open_index_columns(
    path: &Path,
    expect: IndexKind,
) -> Result<(Columns, Metric), IndexError> {
    let c = Columns::open(path)?;
    let (kind, metric) = columnar_kind_metric(&c)?;
    if kind != expect {
        return Err(IndexError::Format(format!(
            "index kind mismatch: file holds '{kind}', expected '{expect}'"
        )));
    }
    Ok((c, metric))
}

/// Pulls one f64 section out as an owned matrix (a single `memcpy` from
/// the zero-copy view — the container already validated lengths against
/// the real file size, the cap only guards in-memory blowup).
pub(crate) fn columnar_matrix(c: &Columns, id: u32) -> Result<DenseMatrix, IndexError> {
    let (rows, cols) = c.dims(id)?;
    rows.checked_mul(cols)
        .filter(|&t| t <= MAX_MATRIX_ELEMS)
        .ok_or_else(|| IndexError::Format(format!("matrix {rows}×{cols} overflows cap")))?;
    Ok(DenseMatrix::from_vec(rows, cols, c.f64s(id)?.to_vec()))
}

/// Buffered little-endian writer for the index format.
pub(crate) struct FileWriter {
    w: BufWriter<File>,
}

impl FileWriter {
    /// Creates `path` and writes the `magic ‖ kind ‖ metric` header.
    pub fn create(path: &Path, kind: IndexKind, metric: Metric) -> Result<Self, IndexError> {
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(INDEX_MAGIC)?;
        w.write_all(&[kind.tag(), metric.tag()])?;
        Ok(Self { w })
    }

    pub fn write_u64(&mut self, v: u64) -> Result<(), IndexError> {
        self.w.write_all(&v.to_le_bytes())?;
        Ok(())
    }

    pub fn write_u32_slice(&mut self, vs: &[u32]) -> Result<(), IndexError> {
        self.write_u64(vs.len() as u64)?;
        for &v in vs {
            self.w.write_all(&v.to_le_bytes())?;
        }
        Ok(())
    }

    pub fn write_matrix(&mut self, m: &DenseMatrix) -> Result<(), IndexError> {
        for &v in m.data() {
            self.w.write_all(&v.to_le_bytes())?;
        }
        Ok(())
    }

    pub fn finish(mut self) -> Result<(), IndexError> {
        self.w.flush()?;
        Ok(())
    }
}

/// Buffered little-endian reader for the index format.
///
/// Tracks how many bytes have been consumed against the total file length,
/// so every declared count can be validated *before* allocating for it —
/// a corrupt header must produce a clean [`IndexError`], not an OOM.
pub(crate) struct FileReader {
    r: BufReader<File>,
    metric: Metric,
    consumed: u64,
    file_len: u64,
}

impl FileReader {
    /// Opens `path`, validates the magic, and checks the kind tag.
    pub fn open(path: &Path, expect: IndexKind) -> Result<Self, IndexError> {
        let (kind, reader) = Self::open_any(path)?;
        if kind != expect {
            return Err(IndexError::Format(format!(
                "index kind mismatch: file holds '{kind}', expected '{expect}'"
            )));
        }
        Ok(reader)
    }

    /// Opens `path`, validates the magic, and returns the stored kind.
    pub fn open_any(path: &Path) -> Result<(IndexKind, Self), IndexError> {
        let file = File::open(path)?;
        let file_len = file.metadata()?.len();
        let mut reader = Self {
            r: BufReader::new(file),
            metric: Metric::Cosine, // placeholder until the header is read
            consumed: 0,
            file_len,
        };
        let mut magic = [0u8; 8];
        reader.read_exact(&mut magic)?;
        if &magic != INDEX_MAGIC {
            return Err(IndexError::Format(format!(
                "bad magic {magic:?} (expected {INDEX_MAGIC:?})"
            )));
        }
        let mut tags = [0u8; 2];
        reader.read_exact(&mut tags)?;
        let kind = IndexKind::from_tag(tags[0])
            .ok_or_else(|| IndexError::Format(format!("unknown index kind tag {}", tags[0])))?;
        reader.metric = Metric::from_tag(tags[1])
            .ok_or_else(|| IndexError::Format(format!("unknown metric tag {}", tags[1])))?;
        Ok((kind, reader))
    }

    /// Metric recorded in the header.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    fn read_exact(&mut self, buf: &mut [u8]) -> Result<(), IndexError> {
        self.r.read_exact(buf).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                IndexError::Format(format!(
                    "truncated file: unexpected end after {} bytes",
                    self.consumed
                ))
            } else {
                IndexError::Io(e)
            }
        })?;
        self.consumed += buf.len() as u64;
        Ok(())
    }

    /// Rejects a declared `count` of `item_bytes`-sized items that the
    /// remaining file bytes cannot possibly contain — **before** the
    /// caller allocates for them. Checked arithmetic: a hostile count
    /// near `u64::MAX` must not wrap into a small allocation.
    fn ensure_available(&self, count: u64, item_bytes: u64, what: &str) -> Result<(), IndexError> {
        let need = count.checked_mul(item_bytes).ok_or_else(|| {
            IndexError::Format(format!("declared {what} count {count} overflows"))
        })?;
        let remaining = self.file_len.saturating_sub(self.consumed);
        if need > remaining {
            return Err(IndexError::Format(format!(
                "declared {what} count {count} needs {need} bytes but only {remaining} remain"
            )));
        }
        Ok(())
    }

    pub fn read_u64(&mut self) -> Result<u64, IndexError> {
        let mut buf = [0u8; 8];
        self.read_exact(&mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Reads a `u64`, erroring if it exceeds `cap` (corruption guard).
    pub fn read_dim(&mut self, cap: usize, what: &str) -> Result<usize, IndexError> {
        let v = self.read_u64()?;
        if v > cap as u64 {
            return Err(IndexError::Format(format!(
                "{what} = {v} exceeds sanity cap {cap}"
            )));
        }
        Ok(v as usize)
    }

    /// Like [`Self::read_dim`] but additionally rejects zero — for
    /// dimensions a valid index can never store as 0 (`n`, `dim`).
    pub fn read_dim_nonzero(&mut self, cap: usize, what: &str) -> Result<usize, IndexError> {
        let v = self.read_dim(cap, what)?;
        if v == 0 {
            return Err(IndexError::Format(format!("{what} must be positive")));
        }
        Ok(v)
    }

    pub fn read_u32_slice(&mut self) -> Result<Vec<u32>, IndexError> {
        let len = self.read_dim(MAX_MATRIX_ELEMS, "u32 array length")?;
        self.ensure_available(len as u64, 4, "u32 array")?;
        let mut out = vec![0u32; len];
        for v in out.iter_mut() {
            let mut buf = [0u8; 4];
            self.read_exact(&mut buf)?;
            *v = u32::from_le_bytes(buf);
        }
        Ok(out)
    }

    pub fn read_matrix(&mut self, rows: usize, cols: usize) -> Result<DenseMatrix, IndexError> {
        let total = rows
            .checked_mul(cols)
            .filter(|&t| t <= MAX_MATRIX_ELEMS)
            .ok_or_else(|| IndexError::Format(format!("matrix {rows}×{cols} overflows cap")))?;
        self.ensure_available(total as u64, 8, "matrix element")?;
        let mut data = vec![0.0f64; total];
        for v in data.iter_mut() {
            let mut buf = [0u8; 8];
            self.read_exact(&mut buf)?;
            *v = f64::from_le_bytes(buf);
        }
        Ok(DenseMatrix::from_vec(rows, cols, data))
    }

    /// Verifies the payload was consumed exactly (no trailing garbage).
    pub fn finish(mut self) -> Result<(), IndexError> {
        let mut buf = [0u8; 1];
        match self.r.read(&mut buf)? {
            0 => Ok(()),
            _ => Err(IndexError::Format("trailing bytes after payload".into())),
        }
    }
}

/// An index of any kind, loaded from disk. Dispatches [`VectorIndex`]
/// calls to the concrete structure.
#[derive(Debug, Clone)]
pub enum AnyIndex {
    /// Exact baseline.
    Flat(FlatIndex),
    /// Inverted-file index.
    Ivf(IvfIndex),
    /// HNSW graph index.
    Hnsw(HnswIndex),
    /// Scalar-quantized flat index.
    SqFlat(SqFlatIndex),
}

impl AnyIndex {
    fn inner(&self) -> &dyn VectorIndex {
        match self {
            AnyIndex::Flat(x) => x,
            AnyIndex::Ivf(x) => x,
            AnyIndex::Hnsw(x) => x,
            AnyIndex::SqFlat(x) => x,
        }
    }

    /// Sets the number of probed cells if this is an IVF index (no-op
    /// otherwise); returns whether it applied.
    pub fn set_nprobe(&mut self, nprobe: usize) -> bool {
        if let AnyIndex::Ivf(x) = self {
            x.set_nprobe(nprobe);
            true
        } else {
            false
        }
    }

    /// Sets the search beam width if this is an HNSW index (no-op
    /// otherwise); returns whether it applied.
    pub fn set_ef_search(&mut self, ef: usize) -> bool {
        if let AnyIndex::Hnsw(x) = self {
            x.set_ef_search(ef);
            true
        } else {
            false
        }
    }
}

impl VectorIndex for AnyIndex {
    fn kind(&self) -> IndexKind {
        self.inner().kind()
    }
    fn metric(&self) -> Metric {
        self.inner().metric()
    }
    fn len(&self) -> usize {
        self.inner().len()
    }
    fn dim(&self) -> usize {
        self.inner().dim()
    }
    fn search(&self, query: &[f64], k: usize) -> Vec<Neighbor> {
        self.inner().search(query, k)
    }
    fn search_prepared(&self, prepared: &[f64], k: usize) -> Vec<Neighbor> {
        self.inner().search_prepared(prepared, k)
    }
    fn batch_search(&self, queries: &DenseMatrix, k: usize, threads: usize) -> Vec<Vec<Neighbor>> {
        self.inner().batch_search(queries, k, threads)
    }
    fn insert(&mut self, vector: &[f64]) -> Result<usize, IndexError> {
        match self {
            AnyIndex::Flat(x) => x.insert(vector),
            AnyIndex::Ivf(x) => x.insert(vector),
            AnyIndex::Hnsw(x) => x.insert(vector),
            AnyIndex::SqFlat(x) => x.insert(vector),
        }
    }
    fn save(&self, path: &Path) -> Result<(), IndexError> {
        self.inner().save(path)
    }
}

/// Loads any index file — `PANECOL1` or legacy `PANEIDX1` — dispatching
/// on the magic, then on the stored kind.
pub fn load_index(path: &Path) -> Result<AnyIndex, IndexError> {
    if pane_format::is_columnar(path)? {
        let c = Columns::open(path)?;
        let (kind, metric) = columnar_kind_metric(&c)?;
        return Ok(match kind {
            IndexKind::Flat => AnyIndex::Flat(FlatIndex::from_columns(&c, metric)?),
            IndexKind::Ivf => AnyIndex::Ivf(IvfIndex::from_columns(&c, metric)?),
            IndexKind::Hnsw => AnyIndex::Hnsw(HnswIndex::from_columns(&c, metric)?),
            IndexKind::SqFlat => AnyIndex::SqFlat(SqFlatIndex::from_columns(&c, metric)?),
        });
    }
    let (kind, _probe) = FileReader::open_any(path)?;
    Ok(match kind {
        IndexKind::Flat => AnyIndex::Flat(FlatIndex::load(path)?),
        IndexKind::Ivf => AnyIndex::Ivf(IvfIndex::load(path)?),
        IndexKind::Hnsw => AnyIndex::Hnsw(HnswIndex::load(path)?),
        IndexKind::SqFlat => {
            return Err(IndexError::Format(
                "sqflat indexes exist only in PANECOL1 containers".into(),
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("pane_index_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn bad_magic_rejected() {
        let p = tmp("bad_magic.idx");
        std::fs::write(&p, b"NOTANIDXxx").unwrap();
        match load_index(&p) {
            Err(IndexError::Format(m)) => assert!(m.contains("magic")),
            other => panic!("expected format error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_kind_rejected() {
        let p = tmp("bad_kind.idx");
        let mut bytes = INDEX_MAGIC.to_vec();
        bytes.extend_from_slice(&[9, 0]);
        std::fs::write(&p, bytes).unwrap();
        match load_index(&p) {
            Err(IndexError::Format(m)) => assert!(m.contains("kind")),
            other => panic!("expected format error, got {other:?}"),
        }
    }

    #[test]
    fn kind_mismatch_rejected() {
        use crate::testutil::clustered_vectors;
        let p = tmp("flat_as_ivf.idx");
        let data = clustered_vectors(10, 4, 2, 0.1);
        FlatIndex::build(&data, Metric::Cosine).save(&p).unwrap();
        match IvfIndex::load(&p) {
            Err(IndexError::Format(m)) => assert!(m.contains("mismatch")),
            other => panic!("expected format error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_payload_rejected() {
        use crate::testutil::clustered_vectors;
        let data = clustered_vectors(10, 4, 2, 0.1);
        let idx = FlatIndex::build(&data, Metric::Cosine);
        // Legacy stream: the reader notices mid-payload.
        let p = tmp("trunc.leg.idx");
        idx.save_legacy(&p).unwrap();
        let bytes = std::fs::read(&p).unwrap();
        std::fs::write(&p, &bytes[..bytes.len() - 7]).unwrap();
        match load_index(&p) {
            Err(IndexError::Format(m)) => {
                assert!(m.contains("truncated") || m.contains("remain"), "{m}")
            }
            other => panic!("expected format error, got {other:?}"),
        }
        // Columnar container: the declared-vs-actual length check fires
        // before any section is even read.
        let p = tmp("trunc.col.idx");
        idx.save(&p).unwrap();
        let bytes = std::fs::read(&p).unwrap();
        std::fs::write(&p, &bytes[..bytes.len() - 7]).unwrap();
        match load_index(&p) {
            Err(IndexError::Format(m)) => assert!(m.contains("length"), "{m}"),
            other => panic!("expected format error, got {other:?}"),
        }
    }

    #[test]
    fn absurd_declared_count_fails_before_allocating() {
        // A flat header declaring a near-cap matrix over a tiny payload
        // must fail via the remaining-bytes check (ensure_available), not
        // by allocating gigabytes and then hitting EOF.
        let p = tmp("absurd.idx");
        let mut bytes = INDEX_MAGIC.to_vec();
        bytes.extend_from_slice(&[IndexKind::Flat.tag(), Metric::Cosine.tag()]);
        bytes.extend_from_slice(&(1u64 << 27).to_le_bytes()); // n
        bytes.extend_from_slice(&8u64.to_le_bytes()); // dim ⇒ 8 GiB declared
        bytes.extend_from_slice(&[0u8; 64]); // a sliver of payload
        std::fs::write(&p, bytes).unwrap();
        match FlatIndex::load(&p) {
            Err(IndexError::Format(m)) => assert!(m.contains("remain"), "{m}"),
            other => panic!("expected format error, got {other:?}"),
        }
    }

    #[test]
    fn load_index_dispatches_every_columnar_kind() {
        use crate::testutil::clustered_vectors;
        use crate::{HnswConfig, HnswIndex, IvfConfig, SqConfig, SqFlatIndex};
        let data = clustered_vectors(60, 8, 3, 0.2);
        let dumps: Vec<(&str, Box<dyn VectorIndex>)> = vec![
            (
                "any_flat.idx",
                Box::new(FlatIndex::build(&data, Metric::Cosine)),
            ),
            (
                "any_ivf.idx",
                Box::new(IvfIndex::build(
                    &data,
                    Metric::Cosine,
                    &IvfConfig {
                        nlist: 4,
                        ..Default::default()
                    },
                )),
            ),
            (
                "any_hnsw.idx",
                Box::new(HnswIndex::build(
                    &data,
                    Metric::Cosine,
                    &HnswConfig::default(),
                )),
            ),
            (
                "any_sq.idx",
                Box::new(SqFlatIndex::build(
                    &data,
                    Metric::Cosine,
                    SqConfig::default(),
                )),
            ),
        ];
        for (name, idx) in dumps {
            let p = tmp(name);
            idx.save(&p).unwrap();
            let back = load_index(&p).unwrap();
            assert_eq!(back.kind(), idx.kind(), "{name}");
            assert_eq!(back.len(), 60);
            assert_eq!(back.dim(), 8);
            assert_eq!(back.search(data.row(5), 5), idx.search(data.row(5), 5));
            std::fs::remove_file(&p).ok();
        }
    }

    #[test]
    fn empty_index_rejected_at_load() {
        // build() asserts non-empty data, so n = 0 in a file is corruption;
        // it must fail the load instead of panicking the first search.
        let p = tmp("empty.idx");
        let mut bytes = INDEX_MAGIC.to_vec();
        bytes.extend_from_slice(&[IndexKind::Flat.tag(), Metric::Cosine.tag()]);
        bytes.extend_from_slice(&0u64.to_le_bytes()); // n = 0
        bytes.extend_from_slice(&4u64.to_le_bytes()); // dim
        std::fs::write(&p, bytes).unwrap();
        match FlatIndex::load(&p) {
            Err(IndexError::Format(m)) => assert!(m.contains("positive"), "{m}"),
            other => panic!("expected format error, got {other:?}"),
        }
    }
}
