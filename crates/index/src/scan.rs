//! Fused panel score + threshold top-k scanning.
//!
//! Every brute-force scan in this crate (flat, delta segment, IVF cell
//! probes, sqflat shortlist) reduces a block of contiguous rows into a
//! bounded [`TopK`]. Scoring one row at a time through the heap wastes
//! the panel shape the data already has: the [`kernels::dot1xn`] kernel
//! scores a whole [`PANEL`] of rows per pass into a stack buffer, and a
//! pre-filter against the heap's current threshold skips the heap
//! entirely for rows that cannot qualify — which is almost all of them
//! once the heap warms up.
//!
//! # Exactness
//!
//! The fusion is a pure optimization, bit-identical to pushing every
//! `(id, dot(q, row))` pair in row order:
//!
//! * per-row scores come from `dot1xn`, which is bit-identical to
//!   [`kernels::dot`] per row (fixed 8-lane contract);
//! * the pre-filter skips a row only when `score < worst.score` with
//!   both sides non-NaN — exactly the rows [`TopK::push`] would discard
//!   (equal scores still go to `push`, whose index tie-break decides;
//!   NaN on either side falls through to `push`'s total order).

use crate::topk::TopK;
use pane_linalg::kernels;

/// Rows scored per panel pass. 64 keeps the score buffer on the stack
/// and the panel of rows within L1/L2 for the dims PANE serves.
pub(crate) const PANEL: usize = 64;

/// Scans `rows` (row-major, `rows.len() / dim` rows) against the
/// prepared query `q`, offering each row's dot score to `acc` under the
/// id `id_of(local_row)`. Bit-identical to the unfused per-row loop —
/// see the module docs.
pub(crate) fn scan_topk<F: FnMut(usize) -> usize>(
    acc: &mut TopK,
    q: &[f64],
    rows: &[f64],
    dim: usize,
    mut id_of: F,
) {
    debug_assert_eq!(q.len(), dim);
    debug_assert_eq!(rows.len() % dim.max(1), 0);
    if dim == 0 {
        return;
    }
    let n = rows.len() / dim;
    let mut scores = [0.0f64; PANEL];
    let mut start = 0;
    while start < n {
        let pr = PANEL.min(n - start);
        kernels::dot1xn(
            q,
            &rows[start * dim..(start + pr) * dim],
            dim,
            &mut scores[..pr],
        );
        for (r, &s) in scores[..pr].iter().enumerate() {
            if let Some(worst) = acc.threshold() {
                // Strictly-worse non-NaN scores cannot enter the heap;
                // everything else gets the exact push decision.
                if s < worst.score {
                    continue;
                }
            }
            acc.push(id_of(start + r), s);
        }
        start += pr;
    }
}

/// Integer variant for the sqflat code scan: panels of i8×i8 dots via
/// [`kernels::dot1xn_i8`], mapped to the final f64 score by `score_of`
/// (the caller folds in the query/row dequantization scales), then the
/// same threshold-fused push as [`scan_topk`].
pub(crate) fn scan_topk_i8<F: FnMut(usize, i32) -> f64>(
    acc: &mut TopK,
    qcodes: &[i8],
    codes: &[i8],
    dim: usize,
    mut score_of: F,
) {
    debug_assert_eq!(qcodes.len(), dim);
    if dim == 0 {
        return;
    }
    let n = codes.len() / dim;
    let mut raw = [0i32; PANEL];
    let mut start = 0;
    while start < n {
        let pr = PANEL.min(n - start);
        kernels::dot1xn_i8(
            qcodes,
            &codes[start * dim..(start + pr) * dim],
            dim,
            &mut raw[..pr],
        );
        for (r, &d) in raw[..pr].iter().enumerate() {
            let s = score_of(start + r, d);
            if let Some(worst) = acc.threshold() {
                if s < worst.score {
                    continue;
                }
            }
            acc.push(start + r, s);
        }
        start += pr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pane_linalg::vecops;

    fn splat(seed: u64, i: usize) -> f64 {
        let mut z = seed
            .wrapping_add(i as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z ^= z >> 31;
        z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        ((z >> 11) as f64) / (1u64 << 52) as f64 - 1.0
    }

    #[test]
    fn fused_scan_matches_unfused_pushes() {
        for (n, dim) in [(0usize, 8usize), (1, 8), (63, 16), (64, 16), (200, 5)] {
            let q: Vec<f64> = (0..dim).map(|i| splat(1, i)).collect();
            let rows: Vec<f64> = (0..n * dim).map(|i| splat(2, i)).collect();
            for k in [1usize, 3, 10] {
                let mut fused = TopK::new(k);
                scan_topk(&mut fused, &q, &rows, dim, |r| r + 7);
                let mut plain = TopK::new(k);
                for r in 0..n {
                    plain.push(r + 7, vecops::dot(&q, &rows[r * dim..(r + 1) * dim]));
                }
                assert_eq!(fused.into_sorted(), plain.into_sorted(), "n {n} k {k}");
            }
        }
    }

    #[test]
    fn fused_scan_handles_nan_rows_like_push() {
        let dim = 4;
        let mut rows: Vec<f64> = (0..40 * dim).map(|i| splat(3, i)).collect();
        rows[5 * dim] = f64::NAN; // poison row 5
        let q: Vec<f64> = (0..dim).map(|i| splat(4, i)).collect();
        let mut fused = TopK::new(50); // k > n: NaN rows must be kept too
        scan_topk(&mut fused, &q, &rows, dim, |r| r);
        let mut plain = TopK::new(50);
        for r in 0..40 {
            plain.push(r, vecops::dot(&q, &rows[r * dim..(r + 1) * dim]));
        }
        // NaN != NaN under PartialEq; compare bit patterns instead.
        let key = |v: Vec<crate::Neighbor>| -> Vec<(usize, u64)> {
            v.into_iter()
                .map(|h| (h.index, h.score.to_bits()))
                .collect()
        };
        assert_eq!(key(fused.into_sorted()), key(plain.into_sorted()));
    }

    #[test]
    fn fused_i8_scan_matches_unfused() {
        let dim = 24;
        let n = 150;
        let qc: Vec<i8> = (0..dim).map(|i| ((i * 37) % 255) as i8).collect();
        let codes: Vec<i8> = (0..n * dim).map(|i| ((i * 13 + 5) % 255) as i8).collect();
        let scale = |r: usize| 0.001 * (r % 17 + 1) as f64;
        let mut fused = TopK::new(9);
        scan_topk_i8(&mut fused, &qc, &codes, dim, |r, d| scale(r) * d as f64);
        let mut plain = TopK::new(9);
        for r in 0..n {
            let mut d = 0i32;
            for j in 0..dim {
                d += qc[j] as i32 * codes[r * dim + j] as i32;
            }
            plain.push(r, scale(r) * d as f64);
        }
        assert_eq!(fused.into_sorted(), plain.into_sorted());
    }
}
