//! Buildable index descriptions — the recipe a store manifest records so
//! compactions and snapshot generations rebuild **deterministically**.
//!
//! A [`crate::DeltaIndex`] compaction and a `pane-store` snapshot both
//! need to answer the same question: "given the grown vector set, how do
//! I rebuild the optimized base structure exactly as it was configured?"
//! [`IndexSpec`] is that answer — the structure kind plus every build
//! parameter that influences the result. It round-trips through a stable
//! one-line text form ([`IndexSpec::to_manifest`] /
//! [`IndexSpec::from_manifest`]) so a store directory's `MANIFEST` can
//! carry it across restarts.

use crate::{
    AnyIndex, FlatIndex, HnswConfig, HnswIndex, IndexError, IvfConfig, IvfIndex, Metric, SqConfig,
    SqFlatIndex,
};
use pane_linalg::DenseMatrix;

/// A buildable description of an index structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IndexSpec {
    /// Exact flat scan.
    Flat,
    /// Inverted-file index with the recorded build parameters.
    Ivf(IvfConfig),
    /// HNSW graph index with the recorded build parameters.
    Hnsw(HnswConfig),
    /// Scalar-quantized flat scan with the recorded shortlist multiplier.
    SqFlat(SqConfig),
}

impl IndexSpec {
    /// Builds an index of this spec over `data` (using `threads` workers
    /// where the structure supports it; results are thread-invariant).
    pub fn build(&self, data: &DenseMatrix, metric: Metric, threads: usize) -> AnyIndex {
        match self {
            IndexSpec::Flat => AnyIndex::Flat(FlatIndex::build(data, metric)),
            IndexSpec::Ivf(cfg) => AnyIndex::Ivf(IvfIndex::build(
                data,
                metric,
                &IvfConfig { threads, ..*cfg },
            )),
            IndexSpec::Hnsw(cfg) => AnyIndex::Hnsw(HnswIndex::build(data, metric, cfg)),
            IndexSpec::SqFlat(cfg) => AnyIndex::SqFlat(SqFlatIndex::build(data, metric, *cfg)),
        }
    }

    /// Recovers the spec of an existing index. Parameters the `PANEIDX1`
    /// file does not carry (IVF training iterations, seeds) fall back to
    /// their defaults, so a compaction of a *loaded* index is
    /// deterministic but not necessarily byte-identical to the original
    /// build.
    pub fn of(index: &AnyIndex) -> IndexSpec {
        match index {
            AnyIndex::Flat(_) => IndexSpec::Flat,
            AnyIndex::Ivf(x) => IndexSpec::Ivf(IvfConfig {
                nlist: x.nlist(),
                nprobe: x.nprobe(),
                ..Default::default()
            }),
            AnyIndex::Hnsw(x) => IndexSpec::Hnsw(HnswConfig {
                m: x.m(),
                ef_construction: x.ef_construction(),
                ef_search: x.ef_search(),
                seed: 0,
            }),
            AnyIndex::SqFlat(x) => IndexSpec::SqFlat(SqConfig { rerank: x.rerank() }),
        }
    }

    /// Short stable name (`flat` / `ivf` / `hnsw` / `sqflat`).
    pub fn kind_name(&self) -> &'static str {
        match self {
            IndexSpec::Flat => "flat",
            IndexSpec::Ivf(_) => "ivf",
            IndexSpec::Hnsw(_) => "hnsw",
            IndexSpec::SqFlat(_) => "sqflat",
        }
    }

    /// Stable one-line text form for store manifests: the kind name
    /// followed by `key=value` build parameters (`threads` is runtime
    /// state, not part of the recipe, and is never serialized).
    pub fn to_manifest(&self) -> String {
        match self {
            IndexSpec::Flat => "flat".to_string(),
            IndexSpec::Ivf(c) => format!(
                "ivf nlist={} nprobe={} iters={} seed={}",
                c.nlist, c.nprobe, c.train_iters, c.seed
            ),
            IndexSpec::Hnsw(c) => format!(
                "hnsw m={} efc={} ef={} seed={}",
                c.m, c.ef_construction, c.ef_search, c.seed
            ),
            IndexSpec::SqFlat(c) => format!("sqflat rerank={}", c.rerank),
        }
    }

    /// Inverse of [`Self::to_manifest`]. Unknown kinds, malformed or
    /// unknown `key=value` pairs are structured [`IndexError::Format`]s
    /// (a store manifest is untrusted input like any other file).
    pub fn from_manifest(line: &str) -> Result<IndexSpec, IndexError> {
        let mut toks = line.split_whitespace();
        let kind = toks
            .next()
            .ok_or_else(|| IndexError::Format("empty index spec".into()))?;
        let mut pairs = Vec::new();
        for tok in toks {
            let (key, value) = tok.split_once('=').ok_or_else(|| {
                IndexError::Format(format!("index spec token '{tok}' is not key=value"))
            })?;
            let value: u64 = value.parse().map_err(|e| {
                IndexError::Format(format!("index spec '{key}' value '{value}': {e}"))
            })?;
            pairs.push((key, value));
        }
        let take = |pairs: &[(&str, u64)], key: &str, default: u64| -> Result<u64, IndexError> {
            match pairs.iter().filter(|(k, _)| *k == key).count() {
                0 => Ok(default),
                1 => Ok(pairs.iter().find(|(k, _)| *k == key).unwrap().1),
                _ => Err(IndexError::Format(format!(
                    "index spec repeats key '{key}'"
                ))),
            }
        };
        let known = |allowed: &[&str]| -> Result<(), IndexError> {
            for (k, _) in &pairs {
                if !allowed.contains(k) {
                    return Err(IndexError::Format(format!(
                        "unknown index spec key '{k}' for kind '{kind}'"
                    )));
                }
            }
            Ok(())
        };
        match kind {
            "flat" => {
                known(&[])?;
                Ok(IndexSpec::Flat)
            }
            "ivf" => {
                known(&["nlist", "nprobe", "iters", "seed"])?;
                let d = IvfConfig::default();
                Ok(IndexSpec::Ivf(IvfConfig {
                    nlist: take(&pairs, "nlist", d.nlist as u64)? as usize,
                    nprobe: take(&pairs, "nprobe", d.nprobe as u64)? as usize,
                    train_iters: take(&pairs, "iters", d.train_iters as u64)? as usize,
                    seed: take(&pairs, "seed", d.seed)?,
                    threads: 1,
                }))
            }
            "hnsw" => {
                known(&["m", "efc", "ef", "seed"])?;
                let d = HnswConfig::default();
                Ok(IndexSpec::Hnsw(HnswConfig {
                    m: take(&pairs, "m", d.m as u64)? as usize,
                    ef_construction: take(&pairs, "efc", d.ef_construction as u64)? as usize,
                    ef_search: take(&pairs, "ef", d.ef_search as u64)? as usize,
                    seed: take(&pairs, "seed", d.seed)?,
                }))
            }
            "sqflat" => {
                known(&["rerank"])?;
                let d = SqConfig::default();
                let rerank = take(&pairs, "rerank", d.rerank as u64)? as usize;
                if rerank == 0 {
                    return Err(IndexError::Format(
                        "index spec 'rerank' must be positive".into(),
                    ));
                }
                Ok(IndexSpec::SqFlat(SqConfig { rerank }))
            }
            other => Err(IndexError::Format(format!(
                "unknown index spec kind '{other}' (flat|ivf|hnsw|sqflat)"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_roundtrip_preserves_every_parameter() {
        let specs = [
            IndexSpec::Flat,
            IndexSpec::Ivf(IvfConfig {
                nlist: 33,
                nprobe: 5,
                train_iters: 7,
                seed: 9,
                threads: 1,
            }),
            IndexSpec::Hnsw(HnswConfig {
                m: 12,
                ef_construction: 80,
                ef_search: 40,
                seed: 3,
            }),
            IndexSpec::SqFlat(SqConfig { rerank: 6 }),
        ];
        for spec in specs {
            let line = spec.to_manifest();
            let back = IndexSpec::from_manifest(&line).unwrap();
            assert_eq!(back, spec, "{line}");
        }
    }

    #[test]
    fn threads_never_leak_into_the_recipe() {
        let spec = IndexSpec::Ivf(IvfConfig {
            threads: 8,
            ..Default::default()
        });
        let back = IndexSpec::from_manifest(&spec.to_manifest()).unwrap();
        match back {
            IndexSpec::Ivf(c) => assert_eq!(c.threads, 1),
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn malformed_specs_are_structured_errors() {
        for bad in [
            "",
            "btree",
            "ivf nlist",
            "ivf nlist=x",
            "ivf m=4",
            "hnsw m=4 m=5",
            "flat nlist=4",
            "sqflat rerank=0",
            "sqflat nlist=4",
        ] {
            assert!(
                matches!(IndexSpec::from_manifest(bad), Err(IndexError::Format(_))),
                "accepted: '{bad}'"
            );
        }
    }
}
