//! IVF — inverted-file index over a k-means coarse quantizer.
//!
//! Build: cluster the (metric-prepared) vectors into `nlist` cells with
//! [`kmeans`], then lay each cell's vectors out
//! contiguously so a probe streams memory like the flat scan does — just
//! over `nprobe/nlist` of the data. Search: rank cells by distance from
//! the query to their centroids, scan the `nprobe` nearest, reduce with
//! the shared bounded-heap top-k.
//!
//! Recall/latency trade-off is all in `nprobe` (1 = fastest, `nlist` =
//! exact up to quantization ties); it is a runtime knob, not a build
//! parameter.

use crate::kmeans::kmeans;
use crate::persist::{columnar_matrix, columnar_meta, open_index_columns, FileReader, FileWriter};
use crate::{scan, topk, IndexError, IndexKind, Metric, Neighbor, VectorIndex};
use pane_format::{section, Artifact, ColumnData, ColumnSpec};
use pane_linalg::{vecops, DenseMatrix};
use std::path::Path;

/// Build-time parameters for [`IvfIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IvfConfig {
    /// Number of k-means cells (clamped to the number of vectors).
    pub nlist: usize,
    /// Default number of cells probed per query (clamped to `nlist`).
    pub nprobe: usize,
    /// Lloyd iterations for the coarse quantizer.
    pub train_iters: usize,
    /// Seed for the quantizer's initialization.
    pub seed: u64,
    /// Worker threads for the build (does not change the result).
    pub threads: usize,
}

impl Default for IvfConfig {
    fn default() -> Self {
        Self {
            nlist: 64,
            nprobe: 8,
            train_iters: 10,
            seed: 0,
            threads: 1,
        }
    }
}

/// Inverted-file ANN index. See the module docs.
#[derive(Debug, Clone)]
pub struct IvfIndex {
    metric: Metric,
    nprobe: usize,
    /// `nlist × dim` cell centroids.
    centroids: DenseMatrix,
    /// `‖centroid_c‖²`, cached for the cell-ranking distance.
    cnorms: Vec<f64>,
    /// Cell boundaries into `ids`/`vectors`: cell `c` is `offsets[c]..offsets[c+1]`.
    offsets: Vec<usize>,
    /// Original row ids, cell-major (ascending id within a cell).
    ids: Vec<u32>,
    /// Metric-prepared vectors, laid out cell-major.
    vectors: DenseMatrix,
}

impl IvfIndex {
    /// Builds the index over the rows of `data`.
    ///
    /// Bit-identical for every `config.threads` value: the parallel phase
    /// (cell assignment) is per-point independent, and all floating-point
    /// accumulation happens serially in point order.
    ///
    /// # Panics
    /// Panics if `data` is empty or `config.nlist == 0`.
    pub fn build(data: &DenseMatrix, metric: Metric, config: &IvfConfig) -> Self {
        assert!(
            data.rows() > 0 && data.cols() > 0,
            "IvfIndex::build: empty data"
        );
        assert!(config.nlist > 0, "IvfIndex::build: nlist must be positive");
        let prepared = metric.prepare(data);
        let km = kmeans(
            &prepared,
            config.nlist,
            config.train_iters.max(1),
            config.seed,
            config.threads,
        );
        let nlist = km.centroids.rows();
        let n = prepared.rows();
        let dim = prepared.cols();

        // Counting sort by cell: offsets, then a stable in-order fill so
        // ids ascend within each cell.
        let mut sizes = vec![0usize; nlist];
        for &a in &km.assignment {
            sizes[a as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(nlist + 1);
        offsets.push(0usize);
        for &s in &sizes {
            offsets.push(offsets.last().unwrap() + s);
        }
        let mut cursor = offsets[..nlist].to_vec();
        let mut ids = vec![0u32; n];
        let mut vectors = DenseMatrix::zeros(n, dim);
        for (i, &a) in km.assignment.iter().enumerate() {
            let slot = cursor[a as usize];
            cursor[a as usize] += 1;
            ids[slot] = i as u32;
            vectors.row_mut(slot).copy_from_slice(prepared.row(i));
        }

        let cnorms = (0..nlist)
            .map(|c| vecops::norm2_sq(km.centroids.row(c)))
            .collect();
        Self {
            metric,
            nprobe: config.nprobe.clamp(1, nlist),
            centroids: km.centroids,
            cnorms,
            offsets,
            ids,
            vectors,
        }
    }

    /// Number of cells.
    pub fn nlist(&self) -> usize {
        self.centroids.rows()
    }

    /// Cells probed per query.
    pub fn nprobe(&self) -> usize {
        self.nprobe
    }

    /// Sets the number of cells probed per query (clamped to `1..=nlist`).
    pub fn set_nprobe(&mut self, nprobe: usize) {
        self.nprobe = nprobe.clamp(1, self.nlist());
    }

    /// Reads an index written by [`VectorIndex::save`] (`PANECOL1`) or by
    /// [`IvfIndex::save_legacy`] (`PANEIDX1`), sniffing the magic.
    ///
    /// Fails with a structured [`IndexError`] on any corruption: empty
    /// dimensions, a zero `nlist`, cell sizes that do not sum to `n`, or
    /// declared lengths the file cannot supply are all load-time errors.
    pub fn load(path: &Path) -> Result<Self, IndexError> {
        if pane_format::is_columnar(path)? {
            let (c, metric) = open_index_columns(path, IndexKind::Ivf)?;
            return Self::from_columns(&c, metric);
        }
        let mut r = FileReader::open(path, IndexKind::Ivf)?;
        let metric = r.metric();
        let n = r.read_dim_nonzero(u32::MAX as usize, "n")?;
        let dim = r.read_dim_nonzero(1 << 24, "dim")?;
        let nlist = r.read_dim_nonzero(n, "nlist")?;
        let nprobe = r.read_dim_nonzero(nlist, "nprobe")?;
        let centroids = r.read_matrix(nlist, dim)?;
        let sizes = r.read_u32_slice()?;
        if sizes.len() != nlist {
            return Err(IndexError::Format(format!(
                "cell-size array has {} entries, expected {nlist}",
                sizes.len()
            )));
        }
        let mut offsets = Vec::with_capacity(nlist + 1);
        offsets.push(0usize);
        for &s in &sizes {
            offsets.push(offsets.last().unwrap() + s as usize);
        }
        if *offsets.last().unwrap() != n {
            return Err(IndexError::Format(format!(
                "cell sizes sum to {}, expected {n}",
                offsets.last().unwrap()
            )));
        }
        let ids = r.read_u32_slice()?;
        if ids.len() != n {
            return Err(IndexError::Format(format!(
                "id array has {} entries, expected {n}",
                ids.len()
            )));
        }
        let vectors = r.read_matrix(n, dim)?;
        r.finish()?;
        let cnorms = (0..nlist)
            .map(|c| vecops::norm2_sq(centroids.row(c)))
            .collect();
        Ok(Self {
            metric,
            nprobe: nprobe.max(1),
            centroids,
            cnorms,
            offsets,
            ids,
            vectors,
        })
    }

    /// Reconstructs the index from an already-validated container,
    /// re-checking every structural invariant the legacy loader checks.
    pub(crate) fn from_columns(
        c: &pane_format::Columns,
        metric: Metric,
    ) -> Result<Self, IndexError> {
        let centroids = columnar_matrix(c, section::IVF_CENTROIDS)?;
        let vectors = columnar_matrix(c, section::IVF_VECTORS)?;
        let (n, dim) = (vectors.rows(), vectors.cols());
        if n == 0 || dim == 0 || dim > 1 << 24 {
            return Err(IndexError::Format(format!(
                "ivf vectors section is {n}×{dim}; outside the valid range"
            )));
        }
        let nlist = centroids.rows();
        if nlist == 0 || nlist > n || centroids.cols() != dim {
            return Err(IndexError::Format(format!(
                "ivf centroids section is {nlist}×{}, inconsistent with {n}×{dim} vectors",
                centroids.cols()
            )));
        }
        let meta = c.u64s(section::IVF_META)?;
        if meta.len() != 2 || meta[0] as usize != nlist {
            return Err(IndexError::Format(format!(
                "ivf meta section {meta:?} disagrees with nlist = {nlist}"
            )));
        }
        let nprobe = meta[1] as usize;
        if nprobe == 0 || nprobe > nlist {
            return Err(IndexError::Format(format!(
                "nprobe {nprobe} outside [1, {nlist}]"
            )));
        }
        let sizes = c.u32s(section::IVF_SIZES)?;
        if sizes.len() != nlist {
            return Err(IndexError::Format(format!(
                "cell-size array has {} entries, expected {nlist}",
                sizes.len()
            )));
        }
        let mut offsets = Vec::with_capacity(nlist + 1);
        offsets.push(0usize);
        for &s in sizes.iter() {
            offsets.push(offsets.last().unwrap() + s as usize);
        }
        if *offsets.last().unwrap() != n {
            return Err(IndexError::Format(format!(
                "cell sizes sum to {}, expected {n}",
                offsets.last().unwrap()
            )));
        }
        let ids = c.u32s(section::IVF_IDS)?;
        if ids.len() != n {
            return Err(IndexError::Format(format!(
                "id array has {} entries, expected {n}",
                ids.len()
            )));
        }
        let cnorms = (0..nlist)
            .map(|c| vecops::norm2_sq(centroids.row(c)))
            .collect();
        Ok(Self {
            metric,
            nprobe,
            centroids,
            cnorms,
            offsets,
            ids: ids.to_vec(),
            vectors,
        })
    }

    /// Writes the legacy `PANEIDX1` form (fixture/migration-test writer;
    /// [`VectorIndex::save`] writes `PANECOL1`).
    pub fn save_legacy(&self, path: &Path) -> Result<(), IndexError> {
        let mut w = FileWriter::create(path, IndexKind::Ivf, self.metric)?;
        w.write_u64(self.ids.len() as u64)?;
        w.write_u64(self.vectors.cols() as u64)?;
        w.write_u64(self.nlist() as u64)?;
        w.write_u64(self.nprobe as u64)?;
        w.write_matrix(&self.centroids)?;
        let sizes: Vec<u32> = self
            .offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as u32)
            .collect();
        w.write_u32_slice(&sizes)?;
        w.write_u32_slice(&self.ids)?;
        w.write_matrix(&self.vectors)?;
        w.finish()
    }
}

impl VectorIndex for IvfIndex {
    fn kind(&self) -> IndexKind {
        IndexKind::Ivf
    }

    fn metric(&self) -> Metric {
        self.metric
    }

    fn len(&self) -> usize {
        self.ids.len()
    }

    fn dim(&self) -> usize {
        self.vectors.cols()
    }

    fn search_prepared(&self, prepared: &[f64], k: usize) -> Vec<Neighbor> {
        assert_eq!(
            prepared.len(),
            self.dim(),
            "IvfIndex::search_prepared: dim mismatch"
        );
        let dim = self.dim();
        // Rank cells by squared Euclidean distance to the centroid
        // (‖q‖² is constant, so −(‖c‖² − 2q·c) orders descending-best).
        // Centroids are one contiguous row-major block, so the panel
        // kernel scores them all in one pass.
        let nlist = self.nlist();
        let mut cdots = vec![0.0f64; nlist];
        pane_linalg::kernels::dot1xn(prepared, self.centroids.data(), dim, &mut cdots);
        let probes = topk::select(
            (0..nlist).map(|c| (c, 2.0 * cdots[c] - self.cnorms[c])),
            self.nprobe,
        );
        // Each probed cell is a contiguous row block — the same fused
        // panel scan the flat index uses, just restricted to the cell
        // and mapped through the cell-major id permutation.
        let mut acc = topk::TopK::new(k);
        let data = self.vectors.data();
        for p in probes {
            let (lo, hi) = (self.offsets[p.index], self.offsets[p.index + 1]);
            scan::scan_topk(&mut acc, prepared, &data[lo * dim..hi * dim], dim, |r| {
                self.ids[lo + r] as usize
            });
        }
        acc.into_sorted()
    }

    fn save(&self, path: &Path) -> Result<(), IndexError> {
        let meta = [self.nlist() as u64, self.nprobe as u64];
        let sizes: Vec<u32> = self
            .offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as u32)
            .collect();
        let specs = [
            ColumnSpec {
                id: section::IVF_META,
                rows: 1,
                cols: 2,
                data: ColumnData::U64(&meta),
            },
            ColumnSpec {
                id: section::IVF_CENTROIDS,
                rows: self.centroids.rows(),
                cols: self.centroids.cols(),
                data: ColumnData::F64(self.centroids.data()),
            },
            ColumnSpec {
                id: section::IVF_SIZES,
                rows: sizes.len(),
                cols: 1,
                data: ColumnData::U32(&sizes),
            },
            ColumnSpec {
                id: section::IVF_IDS,
                rows: self.ids.len(),
                cols: 1,
                data: ColumnData::U32(&self.ids),
            },
            ColumnSpec {
                id: section::IVF_VECTORS,
                rows: self.vectors.rows(),
                cols: self.vectors.cols(),
                data: ColumnData::F64(self.vectors.data()),
            },
        ];
        pane_format::write_columns(
            path,
            Artifact::Index,
            columnar_meta(IndexKind::Ivf, self.metric),
            &specs,
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::clustered_vectors;
    use crate::FlatIndex;

    #[test]
    fn full_probe_matches_flat_exactly() {
        let data = clustered_vectors(150, 12, 5, 0.15);
        let flat = FlatIndex::build(&data, Metric::Cosine);
        let mut ivf = IvfIndex::build(
            &data,
            Metric::Cosine,
            &IvfConfig {
                nlist: 8,
                ..Default::default()
            },
        );
        ivf.set_nprobe(ivf.nlist());
        for v in (0..150).step_by(11) {
            let a = flat.search(data.row(v), 7);
            let b = ivf.search(data.row(v), 7);
            assert_eq!(a, b, "probe-all IVF diverged from flat at {v}");
        }
    }

    #[test]
    fn build_is_thread_invariant() {
        let data = clustered_vectors(200, 10, 6, 0.2);
        let cfg = IvfConfig {
            nlist: 12,
            seed: 3,
            ..Default::default()
        };
        let a = IvfIndex::build(&data, Metric::Cosine, &cfg);
        let b = IvfIndex::build(&data, Metric::Cosine, &IvfConfig { threads: 5, ..cfg });
        assert_eq!(a.ids, b.ids);
        assert_eq!(a.offsets, b.offsets);
        assert_eq!(a.centroids.data(), b.centroids.data());
        assert_eq!(a.vectors.data(), b.vectors.data());
    }

    #[test]
    fn columnar_and_legacy_dumps_load_identically() {
        let dir = std::env::temp_dir().join(format!("pane_ivf_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = clustered_vectors(120, 10, 4, 0.2);
        let idx = IvfIndex::build(
            &data,
            Metric::Cosine,
            &IvfConfig {
                nlist: 6,
                nprobe: 3,
                ..Default::default()
            },
        );
        let col = dir.join("ivf.col.idx");
        let leg = dir.join("ivf.leg.idx");
        idx.save(&col).unwrap();
        idx.save_legacy(&leg).unwrap();
        let a = IvfIndex::load(&col).unwrap();
        let b = IvfIndex::load(&leg).unwrap();
        assert_eq!(a.ids, b.ids);
        assert_eq!(a.offsets, b.offsets);
        assert_eq!(a.nprobe(), 3);
        assert_eq!(a.centroids.data(), b.centroids.data());
        assert_eq!(a.vectors.data(), b.vectors.data());
        for q in [0, 60] {
            assert_eq!(a.search(data.row(q), 5), b.search(data.row(q), 5));
        }
        std::fs::remove_file(&col).ok();
        std::fs::remove_file(&leg).ok();
    }

    #[test]
    fn nprobe_clamps() {
        let data = clustered_vectors(30, 6, 2, 0.2);
        let mut ivf = IvfIndex::build(&data, Metric::InnerProduct, &IvfConfig::default());
        ivf.set_nprobe(0);
        assert_eq!(ivf.nprobe(), 1);
        ivf.set_nprobe(10_000);
        assert_eq!(ivf.nprobe(), ivf.nlist());
    }
}
