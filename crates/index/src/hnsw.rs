//! HNSW — hierarchical navigable-small-world graph index.
//!
//! Standard construction (Malkov & Yashunin 2016): each node gets a
//! geometric random level; search greedily descends the sparse upper
//! layers to a good entry point, then runs a best-first beam (`ef`) over
//! the dense bottom layer.
//!
//! The one deliberate departure from the usual implementation: level
//! assignment is **not** drawn from a shared RNG stream — it is a pure
//! function of `(seed, node id)` via SplitMix64. Together with the
//! sequential insertion order this makes every build bit-identical, the
//! same reproducibility contract the embedding pipeline guarantees.

use crate::persist::{columnar_matrix, columnar_meta, open_index_columns, FileReader, FileWriter};
use crate::{topk, unit_open, IndexError, IndexKind, Metric, Neighbor, VectorIndex};
use pane_format::{section, Artifact, ColumnData, ColumnSpec};
use pane_linalg::{kernels, vecops, DenseMatrix};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::path::Path;

/// Hard ceiling on levels (a node above level 24 would need `> m^24`
/// points; this only guards degenerate seeds).
const MAX_LEVEL_CAP: usize = 24;

/// How many neighbor rows ahead of the scoring cursor to prefetch in
/// [`HnswIndex::search_layer`]. Deep enough to cover DRAM latency at
/// the ~dim·8-byte rows PANE serves, shallow enough not to thrash L1.
const PREFETCH_AHEAD: usize = 4;

/// Build-time parameters for [`HnswIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HnswConfig {
    /// Max neighbors per node on levels above 0 (level 0 allows `2m`).
    pub m: usize,
    /// Beam width while inserting (larger = better graph, slower build).
    pub ef_construction: usize,
    /// Default beam width while searching (runtime-adjustable).
    pub ef_search: usize,
    /// Seed for the per-node level assignment.
    pub seed: u64,
}

impl Default for HnswConfig {
    fn default() -> Self {
        Self {
            m: 16,
            ef_construction: 100,
            ef_search: 64,
            seed: 0,
        }
    }
}

/// Max-heap entry: the heap root is the *best-ranked* candidate.
struct Best(Neighbor);

impl PartialEq for Best {
    fn eq(&self, other: &Self) -> bool {
        topk::cmp_ranked(&self.0, &other.0) == Ordering::Equal
    }
}
impl Eq for Best {}
impl PartialOrd for Best {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Best {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: cmp_ranked's Less = better, BinaryHeap pops the max.
        topk::cmp_ranked(&other.0, &self.0)
    }
}

/// HNSW graph index. See the module docs.
#[derive(Debug, Clone)]
pub struct HnswIndex {
    metric: Metric,
    m: usize,
    ef_construction: usize,
    ef_search: usize,
    /// Metric-prepared vectors.
    data: DenseMatrix,
    /// Level of each node.
    levels: Vec<u32>,
    /// `links[node][level]` = neighbor ids (level 0 ..= levels[node]).
    links: Vec<Vec<Vec<u32>>>,
    /// Entry point (a node of maximal level).
    entry: u32,
    max_level: u32,
}

impl HnswIndex {
    /// Builds the graph by sequential insertion of the rows of `data`.
    /// Bit-identical for a fixed `(data, metric, config)`.
    ///
    /// # Panics
    /// Panics if `data` is empty or `config.m < 2` / `ef_construction == 0`.
    pub fn build(data: &DenseMatrix, metric: Metric, config: &HnswConfig) -> Self {
        assert!(
            data.rows() > 0 && data.cols() > 0,
            "HnswIndex::build: empty data"
        );
        assert!(config.m >= 2, "HnswIndex::build: m must be at least 2");
        assert!(
            config.ef_construction > 0,
            "HnswIndex::build: ef_construction must be positive"
        );
        let n = data.rows();
        let prepared = metric.prepare(data);
        // mL = 1/ln(m): the standard normalization keeps the expected
        // top-layer population at one node.
        let ml = 1.0 / (config.m as f64).ln();
        let levels: Vec<u32> = (0..n as u64)
            .map(|i| {
                let u = unit_open(config.seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                ((-u.ln() * ml) as usize).min(MAX_LEVEL_CAP) as u32
            })
            .collect();
        let mut index = Self {
            metric,
            m: config.m,
            ef_construction: config.ef_construction,
            ef_search: config.ef_search.max(1),
            data: prepared,
            links: (0..n)
                .map(|i| vec![Vec::new(); levels[i] as usize + 1])
                .collect(),
            levels,
            entry: 0,
            max_level: 0,
        };
        index.max_level = index.levels[0];
        let mut visited = HashSet::new();
        for i in 1..n {
            index.insert(i, &mut visited);
        }
        index
    }

    #[inline]
    fn score(&self, q: &[f64], node: u32) -> f64 {
        vecops::dot(q, self.data.row(node as usize))
    }

    /// Best-first beam search on one level, seeded from `eps`.
    /// Returns up to `ef` hits, best first.
    fn search_layer(
        &self,
        q: &[f64],
        eps: &[Neighbor],
        ef: usize,
        level: usize,
        visited: &mut HashSet<u32>,
    ) -> Vec<Neighbor> {
        visited.clear();
        let mut candidates = BinaryHeap::new();
        let mut results = topk::TopK::new(ef);
        for ep in eps {
            if visited.insert(ep.index as u32) {
                candidates.push(Best(*ep));
                results.push(ep.index, ep.score);
            }
        }
        while let Some(Best(c)) = candidates.pop() {
            if let Some(worst) = results.threshold() {
                // The best remaining candidate is worse than the worst
                // kept result: the beam has converged.
                if topk::cmp_ranked(&c, worst) == Ordering::Greater {
                    break;
                }
            }
            let nbrs = &self.links[c.index][level];
            // Graph expansion visits rows in an order no hardware
            // prefetcher can predict; hint the upcoming neighbor rows
            // into cache before their scores are demanded. A hint only —
            // results are unaffected.
            let dim = self.data.cols();
            for &nb in nbrs.iter().take(PREFETCH_AHEAD) {
                kernels::prefetch_f64(self.data.data(), nb as usize * dim);
            }
            for (i, &nb) in nbrs.iter().enumerate() {
                if let Some(&ahead) = nbrs.get(i + PREFETCH_AHEAD) {
                    kernels::prefetch_f64(self.data.data(), ahead as usize * dim);
                }
                if !visited.insert(nb) {
                    continue;
                }
                let s = self.score(q, nb);
                let item = Neighbor {
                    index: nb as usize,
                    score: s,
                };
                let keep = match results.threshold() {
                    None => true,
                    Some(worst) => topk::cmp_ranked(&item, worst) == Ordering::Less,
                };
                if keep {
                    candidates.push(Best(item));
                    results.push(nb as usize, s);
                }
            }
        }
        results.into_sorted()
    }

    /// Greedy single-step descent through levels `from` down to `to`
    /// (exclusive), used to find the entry point for the beam phase.
    fn descend(
        &self,
        q: &[f64],
        mut ep: Neighbor,
        from: u32,
        to: u32,
        visited: &mut HashSet<u32>,
    ) -> Neighbor {
        let mut lev = from;
        while lev > to {
            let found = self.search_layer(q, &[ep], 1, lev as usize, visited);
            if let Some(&best) = found.first() {
                ep = best;
            }
            lev -= 1;
        }
        ep
    }

    fn insert(&mut self, i: usize, visited: &mut HashSet<u32>) {
        let q = self.data.row(i).to_vec();
        let l = self.levels[i];
        let mut ep = Neighbor {
            index: self.entry as usize,
            score: self.score(&q, self.entry),
        };
        if l < self.max_level {
            ep = self.descend(&q, ep, self.max_level, l, visited);
        }
        let mut eps = vec![ep];
        for lev in (0..=l.min(self.max_level) as usize).rev() {
            let cands = self.search_layer(&q, &eps, self.ef_construction, lev, visited);
            let m_max = if lev == 0 { 2 * self.m } else { self.m };
            let selected = self.select_neighbors(&cands, self.m);
            for &s in &selected {
                self.links[s as usize][lev].push(i as u32);
                if self.links[s as usize][lev].len() > m_max {
                    self.prune(s, lev, m_max);
                }
            }
            self.links[i][lev] = selected;
            eps = cands;
        }
        if l > self.max_level {
            self.entry = i as u32;
            self.max_level = l;
        }
    }

    /// The paper's Algorithm 4 ("select neighbors heuristic"), phrased in
    /// similarity terms: walk `cands` best-first and keep a candidate only
    /// if it is closer to the query than to everything already kept. On
    /// clustered data this trades a few nearest edges for *diverse* edges
    /// that keep distinct regions navigable — plain top-M collapses into
    /// near-cliques whose beam searches stall in local minima. Slots left
    /// over are refilled with the best skipped candidates
    /// (`keepPrunedConnections` in the paper).
    fn select_neighbors(&self, cands: &[Neighbor], m: usize) -> Vec<u32> {
        let mut selected: Vec<u32> = Vec::with_capacity(m);
        let mut skipped: Vec<u32> = Vec::new();
        for c in cands {
            if selected.len() >= m {
                break;
            }
            let crow = self.data.row(c.index);
            let diverse = selected
                .iter()
                .all(|&s| vecops::dot(crow, self.data.row(s as usize)) < c.score);
            if diverse {
                selected.push(c.index as u32);
            } else {
                skipped.push(c.index as u32);
            }
        }
        for s in skipped {
            if selected.len() >= m {
                break;
            }
            selected.push(s);
        }
        selected
    }

    /// Shrinks `node`'s neighbor list on `level` to `m_max` entries via
    /// the same diversity heuristic used at insertion.
    fn prune(&mut self, node: u32, level: usize, m_max: usize) {
        let nq = self.data.row(node as usize).to_vec();
        let mut ranked: Vec<Neighbor> = self.links[node as usize][level]
            .iter()
            .map(|&nb| Neighbor {
                index: nb as usize,
                score: self.score(&nq, nb),
            })
            .collect();
        ranked.sort_by(topk::cmp_ranked);
        self.links[node as usize][level] = self.select_neighbors(&ranked, m_max);
    }

    /// Max neighbors per upper-level node.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Beam width used during construction.
    pub fn ef_construction(&self) -> usize {
        self.ef_construction
    }

    /// Current search beam width.
    pub fn ef_search(&self) -> usize {
        self.ef_search
    }

    /// Sets the search beam width (clamped to at least 1). Larger values
    /// trade latency for recall; `search` always uses `max(ef, k)`.
    pub fn set_ef_search(&mut self, ef: usize) {
        self.ef_search = ef.max(1);
    }

    /// Reads an index written by [`VectorIndex::save`] (`PANECOL1`) or by
    /// [`HnswIndex::save_legacy`] (`PANEIDX1`), sniffing the magic.
    ///
    /// Every graph invariant a search relies on is re-validated here so a
    /// corrupted file fails the *load* with a structured [`IndexError`]
    /// instead of panicking the first search: `n` and `dim` must be
    /// positive (`build` never produces an empty index), the entry point
    /// must exist **and reach `max_level`** (the descent indexes
    /// `links[entry][max_level]`), per-node levels may not exceed
    /// `max_level`, and every edge must point at an in-range node of
    /// sufficient level.
    pub fn load(path: &Path) -> Result<Self, IndexError> {
        if pane_format::is_columnar(path)? {
            let (c, metric) = open_index_columns(path, IndexKind::Hnsw)?;
            return Self::from_columns(&c, metric);
        }
        let mut r = FileReader::open(path, IndexKind::Hnsw)?;
        let metric = r.metric();
        let n = r.read_dim_nonzero(u32::MAX as usize, "n")?;
        let dim = r.read_dim_nonzero(1 << 24, "dim")?;
        let m = r.read_dim(1 << 20, "m")?;
        let ef_construction = r.read_dim(1 << 20, "ef_construction")?;
        let ef_search = r.read_dim(1 << 20, "ef_search")?;
        let entry = r.read_dim(n - 1, "entry point")? as u32;
        let max_level = r.read_dim(MAX_LEVEL_CAP, "max level")? as u32;
        let levels = r.read_u32_slice()?;
        if levels.len() != n {
            return Err(IndexError::Format(format!(
                "level array has {} entries, expected {n}",
                levels.len()
            )));
        }
        if levels[entry as usize] != max_level {
            return Err(IndexError::Format(format!(
                "entry point {entry} has level {} but the graph claims max level {max_level}",
                levels[entry as usize]
            )));
        }
        let mut links = Vec::with_capacity(n);
        for (node, &l) in levels.iter().enumerate() {
            if l > max_level {
                return Err(IndexError::Format(format!(
                    "node level {l} exceeds max level {max_level}"
                )));
            }
            let mut per_level = Vec::with_capacity(l as usize + 1);
            for lev in 0..=l {
                let nbrs = r.read_u32_slice()?;
                // A corrupted edge must fail the load, not panic the
                // first search that walks it.
                for &nb in &nbrs {
                    if nb as usize >= n {
                        return Err(IndexError::Format(format!(
                            "node {node} level {lev}: neighbor id {nb} out of range {n}"
                        )));
                    }
                    if levels[nb as usize] < lev {
                        return Err(IndexError::Format(format!(
                            "node {node} level {lev}: neighbor {nb} only reaches level {}",
                            levels[nb as usize]
                        )));
                    }
                }
                per_level.push(nbrs);
            }
            links.push(per_level);
        }
        let data = r.read_matrix(n, dim)?;
        r.finish()?;
        Ok(Self {
            metric,
            m: m.max(2),
            ef_construction: ef_construction.max(1),
            ef_search: ef_search.max(1),
            data,
            levels,
            links,
            entry,
            max_level,
        })
    }

    /// Reconstructs the index from an already-validated container.
    ///
    /// The container stores the neighbor lists *flattened*: one `u32`
    /// links section plus a `u64` offsets section with one entry per
    /// list (node-major, then level `0..=levels[node]`) and a final
    /// end sentinel. Every graph invariant the legacy loader checks is
    /// re-checked here.
    pub(crate) fn from_columns(
        c: &pane_format::Columns,
        metric: Metric,
    ) -> Result<Self, IndexError> {
        let data = columnar_matrix(c, section::HNSW_VECTORS)?;
        let (n, dim) = (data.rows(), data.cols());
        if n == 0 || dim == 0 || dim > 1 << 24 {
            return Err(IndexError::Format(format!(
                "hnsw vectors section is {n}×{dim}; outside the valid range"
            )));
        }
        let meta = c.u64s(section::HNSW_META)?;
        if meta.len() != 5 {
            return Err(IndexError::Format(format!(
                "hnsw meta section holds {} words, expected 5",
                meta.len()
            )));
        }
        let (m, ef_construction, ef_search) = (meta[0], meta[1], meta[2]);
        for (v, what) in [
            (m, "m"),
            (ef_construction, "ef_construction"),
            (ef_search, "ef_search"),
        ] {
            if v > 1 << 20 {
                return Err(IndexError::Format(format!(
                    "{what} = {v} exceeds sanity cap {}",
                    1 << 20
                )));
            }
        }
        if meta[3] >= n as u64 {
            return Err(IndexError::Format(format!(
                "entry point = {} exceeds sanity cap {}",
                meta[3],
                n - 1
            )));
        }
        let entry = meta[3] as u32;
        if meta[4] > MAX_LEVEL_CAP as u64 {
            return Err(IndexError::Format(format!(
                "max level = {} exceeds sanity cap {MAX_LEVEL_CAP}",
                meta[4]
            )));
        }
        let max_level = meta[4] as u32;
        let levels = c.u32s(section::HNSW_LEVELS)?;
        if levels.len() != n {
            return Err(IndexError::Format(format!(
                "level array has {} entries, expected {n}",
                levels.len()
            )));
        }
        if levels[entry as usize] != max_level {
            return Err(IndexError::Format(format!(
                "entry point {entry} has level {} but the graph claims max level {max_level}",
                levels[entry as usize]
            )));
        }
        let offsets = c.u64s(section::HNSW_LINK_OFFSETS)?;
        let flat = c.u32s(section::HNSW_LINKS)?;
        let lists: usize = levels.iter().map(|&l| l as usize + 1).sum();
        if offsets.len() != lists + 1 || offsets[0] != 0 {
            return Err(IndexError::Format(format!(
                "link-offset array has {} entries, expected {} (one per list plus sentinel, starting at 0)",
                offsets.len(),
                lists + 1
            )));
        }
        if *offsets.last().unwrap() != flat.len() as u64 {
            return Err(IndexError::Format(format!(
                "link offsets end at {} but the links section holds {} ids",
                offsets.last().unwrap(),
                flat.len()
            )));
        }
        let mut links = Vec::with_capacity(n);
        let mut list = 0usize;
        for (node, &l) in levels.iter().enumerate() {
            if l > max_level {
                return Err(IndexError::Format(format!(
                    "node level {l} exceeds max level {max_level}"
                )));
            }
            let mut per_level = Vec::with_capacity(l as usize + 1);
            for lev in 0..=l {
                let (start, end) = (offsets[list], offsets[list + 1]);
                list += 1;
                if start > end || end as usize > flat.len() {
                    return Err(IndexError::Format(format!(
                        "node {node} level {lev}: link offsets [{start}, {end}) invalid for {} link ids",
                        flat.len()
                    )));
                }
                let nbrs = &flat[start as usize..end as usize];
                // A corrupted edge must fail the load, not panic the
                // first search that walks it.
                for &nb in nbrs {
                    if nb as usize >= n {
                        return Err(IndexError::Format(format!(
                            "node {node} level {lev}: neighbor id {nb} out of range {n}"
                        )));
                    }
                    if levels[nb as usize] < lev {
                        return Err(IndexError::Format(format!(
                            "node {node} level {lev}: neighbor {nb} only reaches level {}",
                            levels[nb as usize]
                        )));
                    }
                }
                per_level.push(nbrs.to_vec());
            }
            links.push(per_level);
        }
        Ok(Self {
            metric,
            m: (m as usize).max(2),
            ef_construction: (ef_construction as usize).max(1),
            ef_search: (ef_search as usize).max(1),
            data,
            levels: levels.to_vec(),
            links,
            entry,
            max_level,
        })
    }

    /// Writes the legacy `PANEIDX1` form (fixture/migration-test writer;
    /// [`VectorIndex::save`] writes `PANECOL1`).
    pub fn save_legacy(&self, path: &Path) -> Result<(), IndexError> {
        let mut w = FileWriter::create(path, IndexKind::Hnsw, self.metric)?;
        w.write_u64(self.data.rows() as u64)?;
        w.write_u64(self.data.cols() as u64)?;
        w.write_u64(self.m as u64)?;
        w.write_u64(self.ef_construction as u64)?;
        w.write_u64(self.ef_search as u64)?;
        w.write_u64(self.entry as u64)?;
        w.write_u64(self.max_level as u64)?;
        w.write_u32_slice(&self.levels)?;
        for per_level in &self.links {
            for nbrs in per_level {
                w.write_u32_slice(nbrs)?;
            }
        }
        w.write_matrix(&self.data)?;
        w.finish()
    }
}

impl VectorIndex for HnswIndex {
    fn kind(&self) -> IndexKind {
        IndexKind::Hnsw
    }

    fn metric(&self) -> Metric {
        self.metric
    }

    fn len(&self) -> usize {
        self.data.rows()
    }

    fn dim(&self) -> usize {
        self.data.cols()
    }

    fn search_prepared(&self, prepared: &[f64], k: usize) -> Vec<Neighbor> {
        assert_eq!(
            prepared.len(),
            self.dim(),
            "HnswIndex::search_prepared: dim mismatch"
        );
        if k == 0 {
            return Vec::new();
        }
        let mut visited = HashSet::new();
        let ep = Neighbor {
            index: self.entry as usize,
            score: self.score(prepared, self.entry),
        };
        let ep = self.descend(prepared, ep, self.max_level, 0, &mut visited);
        let ef = self.ef_search.max(k);
        let mut out = self.search_layer(prepared, &[ep], ef, 0, &mut visited);
        out.truncate(k);
        out
    }

    fn save(&self, path: &Path) -> Result<(), IndexError> {
        let meta = [
            self.m as u64,
            self.ef_construction as u64,
            self.ef_search as u64,
            self.entry as u64,
            self.max_level as u64,
        ];
        // Flatten the per-node-per-level neighbor lists: offsets get one
        // entry per list (node-major, level-minor) plus an end sentinel.
        let mut offsets = Vec::with_capacity(self.links.iter().map(|p| p.len()).sum::<usize>() + 1);
        let mut flat = Vec::new();
        offsets.push(0u64);
        for per_level in &self.links {
            for nbrs in per_level {
                flat.extend_from_slice(nbrs);
                offsets.push(flat.len() as u64);
            }
        }
        let specs = [
            ColumnSpec {
                id: section::HNSW_META,
                rows: 1,
                cols: 5,
                data: ColumnData::U64(&meta),
            },
            ColumnSpec {
                id: section::HNSW_LEVELS,
                rows: self.levels.len(),
                cols: 1,
                data: ColumnData::U32(&self.levels),
            },
            ColumnSpec {
                id: section::HNSW_LINK_OFFSETS,
                rows: offsets.len(),
                cols: 1,
                data: ColumnData::U64(&offsets),
            },
            ColumnSpec {
                id: section::HNSW_LINKS,
                rows: flat.len(),
                cols: 1,
                data: ColumnData::U32(&flat),
            },
            ColumnSpec {
                id: section::HNSW_VECTORS,
                rows: self.data.rows(),
                cols: self.data.cols(),
                data: ColumnData::F64(self.data.data()),
            },
        ];
        pane_format::write_columns(
            path,
            Artifact::Index,
            columnar_meta(IndexKind::Hnsw, self.metric),
            &specs,
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::clustered_vectors;
    use crate::FlatIndex;

    #[test]
    fn finds_itself_first() {
        let data = clustered_vectors(250, 12, 5, 0.15);
        let idx = HnswIndex::build(&data, Metric::Cosine, &HnswConfig::default());
        for v in (0..250).step_by(23) {
            let hits = idx.search(data.row(v), 3);
            assert_eq!(hits[0].index, v, "node {v} did not find itself");
        }
    }

    #[test]
    fn build_is_deterministic() {
        let data = clustered_vectors(180, 8, 4, 0.2);
        let cfg = HnswConfig {
            seed: 11,
            ..Default::default()
        };
        let a = HnswIndex::build(&data, Metric::Cosine, &cfg);
        let b = HnswIndex::build(&data, Metric::Cosine, &cfg);
        assert_eq!(a.levels, b.levels);
        assert_eq!(a.links, b.links);
        assert_eq!(a.entry, b.entry);
    }

    #[test]
    fn degree_bounds_hold() {
        let data = clustered_vectors(300, 10, 6, 0.2);
        let cfg = HnswConfig {
            m: 8,
            ..Default::default()
        };
        let idx = HnswIndex::build(&data, Metric::Cosine, &cfg);
        for (v, per_level) in idx.links.iter().enumerate() {
            for (lev, nbrs) in per_level.iter().enumerate() {
                let cap = if lev == 0 { 2 * cfg.m } else { cfg.m };
                assert!(
                    nbrs.len() <= cap,
                    "node {v} level {lev} has {} neighbors (cap {cap})",
                    nbrs.len()
                );
                for &nb in nbrs {
                    assert!(idx.levels[nb as usize] as usize >= lev);
                    assert_ne!(nb as usize, v);
                }
            }
        }
    }

    #[test]
    fn corrupted_neighbor_id_fails_load_cleanly() {
        let data = clustered_vectors(40, 6, 2, 0.2);
        let idx = HnswIndex::build(&data, Metric::Cosine, &HnswConfig::default());
        assert!(!idx.links[0][0].is_empty(), "fixture node 0 has no links");
        let dir = std::env::temp_dir().join(format!("pane_hnsw_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("bad_link.idx");
        idx.save_legacy(&p).unwrap();
        // Layout: magic(8) + tags(2) + 7×u64(56) + levels slice (8 + 4n)
        // + node 0 / level 0 slice length (8) + first neighbor id.
        let first_id_at = 8 + 2 + 56 + 8 + 4 * idx.len() + 8;
        let mut bytes = std::fs::read(&p).unwrap();
        bytes[first_id_at..first_id_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&p, &bytes).unwrap();
        match HnswIndex::load(&p) {
            Err(IndexError::Format(m)) => assert!(m.contains("out of range"), "{m}"),
            other => panic!("expected format error, got {other:?}"),
        }
    }

    #[test]
    fn entry_below_max_level_fails_load_cleanly() {
        // The descent indexes links[entry][max_level]; a file whose entry
        // point does not reach the claimed max level used to panic there.
        let data = clustered_vectors(40, 6, 2, 0.2);
        let idx = HnswIndex::build(&data, Metric::Cosine, &HnswConfig::default());
        let dir = std::env::temp_dir().join(format!("pane_hnsw_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("bad_entry_level.idx");
        idx.save_legacy(&p).unwrap();
        // max_level is the 7th u64 after the 10-byte header.
        let max_level_at = 8 + 2 + 6 * 8;
        let mut bytes = std::fs::read(&p).unwrap();
        let claimed = (idx.max_level + 1) as u64;
        bytes[max_level_at..max_level_at + 8].copy_from_slice(&claimed.to_le_bytes());
        std::fs::write(&p, &bytes).unwrap();
        match HnswIndex::load(&p) {
            Err(IndexError::Format(m)) => assert!(m.contains("entry point"), "{m}"),
            other => panic!("expected format error, got {other:?}"),
        }
    }

    #[test]
    fn columnar_and_legacy_dumps_load_identically() {
        let data = clustered_vectors(80, 8, 3, 0.2);
        let idx = HnswIndex::build(&data, Metric::Cosine, &HnswConfig::default());
        let dir = std::env::temp_dir().join(format!("pane_hnsw_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let col = dir.join("hnsw.col.idx");
        let leg = dir.join("hnsw.leg.idx");
        idx.save(&col).unwrap();
        idx.save_legacy(&leg).unwrap();
        let a = HnswIndex::load(&col).unwrap();
        let b = HnswIndex::load(&leg).unwrap();
        assert_eq!(a.levels, b.levels);
        assert_eq!(a.links, b.links);
        assert_eq!(a.entry, b.entry);
        assert_eq!(a.max_level, b.max_level);
        assert_eq!(a.data.data(), b.data.data());
        assert_eq!(
            (a.m, a.ef_construction, a.ef_search),
            (b.m, b.ef_construction, b.ef_search)
        );
        for q in [0, 40] {
            assert_eq!(a.search(data.row(q), 5), b.search(data.row(q), 5));
        }
        std::fs::remove_file(&col).ok();
        std::fs::remove_file(&leg).ok();
    }

    #[test]
    fn decent_recall_on_clusters() {
        let data = clustered_vectors(400, 16, 8, 0.25);
        let flat = FlatIndex::build(&data, Metric::Cosine);
        let idx = HnswIndex::build(&data, Metric::Cosine, &HnswConfig::default());
        let mut hit = 0;
        let mut total = 0;
        for v in (0..400).step_by(7) {
            let truth: HashSet<usize> = flat
                .search(data.row(v), 10)
                .iter()
                .map(|n| n.index)
                .collect();
            for n in idx.search(data.row(v), 10) {
                total += 1;
                hit += usize::from(truth.contains(&n.index));
            }
        }
        assert!(hit * 10 >= total * 9, "recall@10 too low: {hit}/{total}");
    }
}
