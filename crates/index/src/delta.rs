//! Delta-segment wrapper: O(1) incremental inserts over any base index.
//!
//! IVF and HNSW builds are batch algorithms — appending a vector means
//! either an O(n) structural edit (IVF cell splice) or a graph insertion
//! whose determinism depends on build-time state the `PANEIDX1` file does
//! not carry (the HNSW level seed). A serving daemon needs neither: it
//! needs fresh vectors to be *queryable now* and folded into the optimized
//! structure *eventually*. [`DeltaIndex`] provides exactly that split:
//!
//! * [`insert`](VectorIndex::insert) appends the metric-prepared vector to
//!   a flat **delta segment** in amortized O(dim);
//! * [`search`](VectorIndex::search) merges the base structure's top-k
//!   with an exact scan of the delta segment under one total order
//!   ([`topk::cmp_ranked`]), so a fresh vector is returned by the very
//!   next query — no rebuild, and exact-by-construction for the delta;
//! * a **compaction** (rebuilding the base over all vectors and wrapping
//!   the result in a fresh `DeltaIndex`) bounds the linear delta-scan
//!   cost. The serving layer owns the original vectors, so compaction
//!   policy lives there (`pane-serve`'s `compact` request / the
//!   `pane serve` daemon), not here.
//!
//! Ids are dense and append-ordered: the delta vector at slot `s` has id
//! `base.len() + s`, matching how `pane-core`'s `grow_embedding` assigns
//! ids to newly arrived nodes.

use crate::{scan, topk, AnyIndex, IndexError, IndexKind, Metric, Neighbor, VectorIndex};
use pane_linalg::DenseMatrix;
use std::path::Path;

/// A base index plus a flat, append-only delta segment merged into every
/// search. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct DeltaIndex {
    base: AnyIndex,
    /// Metric-prepared inserted vectors; row `s` has id `base.len() + s`.
    delta: DenseMatrix,
}

impl DeltaIndex {
    /// Wraps `base` with an empty delta segment.
    pub fn new(base: AnyIndex) -> Self {
        let dim = base.dim();
        Self {
            base,
            delta: DenseMatrix::zeros(0, dim),
        }
    }

    /// The wrapped base index.
    pub fn base(&self) -> &AnyIndex {
        &self.base
    }

    /// Number of vectors in the base structure.
    pub fn base_len(&self) -> usize {
        self.base.len()
    }

    /// Number of vectors accumulated in the delta segment since the last
    /// compaction.
    pub fn delta_len(&self) -> usize {
        self.delta.rows()
    }

    /// Runtime search knob pass-through (IVF bases only).
    pub fn set_nprobe(&mut self, nprobe: usize) -> bool {
        self.base.set_nprobe(nprobe)
    }

    /// Runtime search knob pass-through (HNSW bases only).
    pub fn set_ef_search(&mut self, ef: usize) -> bool {
        self.base.set_ef_search(ef)
    }
}

impl VectorIndex for DeltaIndex {
    fn kind(&self) -> IndexKind {
        self.base.kind()
    }

    fn metric(&self) -> Metric {
        self.base.metric()
    }

    fn len(&self) -> usize {
        self.base.len() + self.delta.rows()
    }

    fn dim(&self) -> usize {
        self.base.dim()
    }

    fn search_prepared(&self, prepared: &[f64], k: usize) -> Vec<Neighbor> {
        assert_eq!(
            prepared.len(),
            self.dim(),
            "DeltaIndex::search_prepared: dim mismatch"
        );
        // One prepared query feeds both the base structure and the delta
        // scan (the inherited `search` prepares exactly once before
        // dispatching here — previously cosine queries were normalized
        // twice, once per sub-scan).
        let base_hits = self.base.search_prepared(prepared, k);
        if self.delta.rows() == 0 {
            return base_hits;
        }
        // Delta vectors are already metric-prepared, so the scan is a raw
        // dot against the prepared query — the same score the base
        // produces for its own vectors.
        let offset = self.base.len();
        let mut acc = topk::TopK::new(k);
        for h in base_hits {
            acc.push(h.index, h.score);
        }
        scan::scan_topk(&mut acc, prepared, self.delta.data(), self.dim(), |s| {
            offset + s
        });
        acc.into_sorted()
    }

    fn insert(&mut self, vector: &[f64]) -> Result<usize, IndexError> {
        if vector.len() != self.dim() {
            return Err(IndexError::Build(format!(
                "DeltaIndex::insert: vector has dim {}, index holds dim {}",
                vector.len(),
                self.dim()
            )));
        }
        let prepared = self.metric().prepare_query(vector);
        self.delta.push_row(&prepared);
        Ok(self.len() - 1)
    }

    fn save(&self, path: &Path) -> Result<(), IndexError> {
        if self.delta.rows() > 0 {
            return Err(IndexError::Unsupported(format!(
                "DeltaIndex holds {} uncompacted delta vectors; fold them into a fresh base \
                 first — take a store snapshot (`pane store snapshot` / the daemon's \
                 `snapshot` op) or issue a `compact` — then save",
                self.delta.rows()
            )));
        }
        self.base.save(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::clustered_vectors;
    use crate::{FlatIndex, HnswConfig, HnswIndex, IvfConfig, IvfIndex};

    fn split(data: &DenseMatrix, at: usize) -> (DenseMatrix, Vec<Vec<f64>>) {
        let head = data.row_block(0..at);
        let tail = (at..data.rows()).map(|i| data.row(i).to_vec()).collect();
        (head, tail)
    }

    #[test]
    fn delta_over_flat_matches_full_flat_exactly() {
        let data = clustered_vectors(120, 10, 4, 0.2);
        let (head, tail) = split(&data, 100);
        for metric in [Metric::Cosine, Metric::InnerProduct] {
            let full = FlatIndex::build(&data, metric);
            let mut delta = DeltaIndex::new(AnyIndex::Flat(FlatIndex::build(&head, metric)));
            for (i, v) in tail.iter().enumerate() {
                assert_eq!(delta.insert(v).unwrap(), 100 + i);
            }
            assert_eq!(delta.len(), 120);
            for v in (0..120).step_by(7) {
                assert_eq!(
                    delta.search(data.row(v), 9),
                    full.search(data.row(v), 9),
                    "delta-merged search diverged from the flat rebuild at {v}"
                );
            }
        }
    }

    #[test]
    fn fresh_vector_is_served_by_next_query_on_every_base() {
        let data = clustered_vectors(200, 8, 4, 0.15);
        let (head, tail) = split(&data, 196);
        let bases = [
            AnyIndex::Flat(FlatIndex::build(&head, Metric::Cosine)),
            AnyIndex::Ivf(IvfIndex::build(
                &head,
                Metric::Cosine,
                &IvfConfig {
                    nlist: 8,
                    nprobe: 8,
                    ..Default::default()
                },
            )),
            AnyIndex::Hnsw(HnswIndex::build(
                &head,
                Metric::Cosine,
                &HnswConfig::default(),
            )),
        ];
        for base in bases {
            let kind = base.kind();
            let mut idx = DeltaIndex::new(base);
            for v in &tail {
                idx.insert(v).unwrap();
            }
            for (s, v) in tail.iter().enumerate() {
                let hits = idx.search(v, 1);
                assert_eq!(
                    hits[0].index,
                    196 + s,
                    "{kind}: inserted vector not returned as its own nearest neighbor"
                );
                assert!((hits[0].score - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn insert_dim_mismatch_is_structured_error() {
        let data = clustered_vectors(10, 6, 2, 0.2);
        let mut idx = DeltaIndex::new(AnyIndex::Flat(FlatIndex::build(&data, Metric::Cosine)));
        assert!(matches!(idx.insert(&[1.0, 2.0]), Err(IndexError::Build(_))));
    }

    #[test]
    fn save_with_pending_delta_is_refused() {
        let data = clustered_vectors(10, 6, 2, 0.2);
        let mut idx = DeltaIndex::new(AnyIndex::Flat(FlatIndex::build(&data, Metric::Cosine)));
        idx.insert(&[0.5; 6]).unwrap();
        let dir = std::env::temp_dir().join(format!("pane_delta_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(
            idx.save(&dir.join("pending.idx")),
            Err(IndexError::Unsupported(_))
        ));
    }

    #[test]
    fn ivf_and_hnsw_decline_native_insert() {
        let data = clustered_vectors(30, 6, 2, 0.2);
        let mut ivf = IvfIndex::build(&data, Metric::Cosine, &IvfConfig::default());
        assert!(matches!(
            ivf.insert(data.row(0)),
            Err(IndexError::Unsupported(_))
        ));
        let mut hnsw = HnswIndex::build(&data, Metric::Cosine, &HnswConfig::default());
        assert!(matches!(
            hnsw.insert(data.row(0)),
            Err(IndexError::Unsupported(_))
        ));
    }

    #[test]
    fn flat_native_insert_appends() {
        let data = clustered_vectors(20, 5, 2, 0.2);
        let mut flat = FlatIndex::build(&data, Metric::InnerProduct);
        let id = flat.insert(&[1.0, 0.0, 0.0, 0.0, 0.0]).unwrap();
        assert_eq!(id, 20);
        assert_eq!(flat.len(), 21);
        let hits = flat.search(&[1.0, 0.0, 0.0, 0.0, 0.0], 1);
        assert_eq!(hits[0].index, 20);
    }
}
