//! Exact full-scan index — the recall baseline.

use crate::persist::{columnar_matrix, columnar_meta, open_index_columns, FileReader, FileWriter};
use crate::{scan, topk, IndexError, IndexKind, Metric, Neighbor, VectorIndex};
use pane_format::{section, Artifact, ColumnData, ColumnSpec};
use pane_linalg::DenseMatrix;
use pane_parallel::{even_ranges_nonempty, map_blocks};
use std::path::Path;

/// Brute-force index: scans every stored vector, keeping the top-k with a
/// bounded heap (`O(n log k)` per query). Exact by construction — the
/// other indexes measure their recall against it.
#[derive(Debug, Clone)]
pub struct FlatIndex {
    metric: Metric,
    data: DenseMatrix,
}

impl FlatIndex {
    /// Indexes the rows of `data` (copied; normalized if cosine).
    ///
    /// # Panics
    /// Panics if `data` has no rows or no columns.
    pub fn build(data: &DenseMatrix, metric: Metric) -> Self {
        assert!(
            data.rows() > 0 && data.cols() > 0,
            "FlatIndex::build: empty data"
        );
        Self {
            metric,
            data: metric.prepare(data),
        }
    }

    /// Reads an index written by [`VectorIndex::save`] (`PANECOL1`) or by
    /// [`FlatIndex::save_legacy`] (`PANEIDX1`), sniffing the magic.
    ///
    /// Fails with a structured [`IndexError`] on any corruption: `build`
    /// never produces an empty index, so `n = 0` or `dim = 0` is rejected
    /// at load time rather than surprising the first search.
    pub fn load(path: &Path) -> Result<Self, IndexError> {
        if pane_format::is_columnar(path)? {
            let (c, metric) = open_index_columns(path, IndexKind::Flat)?;
            return Self::from_columns(&c, metric);
        }
        let mut r = FileReader::open(path, IndexKind::Flat)?;
        let metric = r.metric();
        let n = r.read_dim_nonzero(u32::MAX as usize, "n")?;
        let dim = r.read_dim_nonzero(1 << 24, "dim")?;
        let data = r.read_matrix(n, dim)?;
        r.finish()?;
        Ok(Self { metric, data })
    }

    /// Reconstructs the index from an already-validated container.
    pub(crate) fn from_columns(
        c: &pane_format::Columns,
        metric: Metric,
    ) -> Result<Self, IndexError> {
        let data = columnar_matrix(c, section::INDEX_VECTORS)?;
        if data.rows() == 0 || data.cols() == 0 || data.cols() > 1 << 24 {
            return Err(IndexError::Format(format!(
                "flat vectors section is {}×{}; outside the valid range",
                data.rows(),
                data.cols()
            )));
        }
        Ok(Self { metric, data })
    }

    /// Writes the legacy `PANEIDX1` form (fixture/migration-test writer;
    /// [`VectorIndex::save`] writes `PANECOL1`).
    pub fn save_legacy(&self, path: &Path) -> Result<(), IndexError> {
        let mut w = FileWriter::create(path, IndexKind::Flat, self.metric)?;
        w.write_u64(self.data.rows() as u64)?;
        w.write_u64(self.data.cols() as u64)?;
        w.write_matrix(&self.data)?;
        w.finish()
    }

    /// The stored (metric-prepared) vectors.
    pub fn vectors(&self) -> &DenseMatrix {
        &self.data
    }
}

impl VectorIndex for FlatIndex {
    fn kind(&self) -> IndexKind {
        IndexKind::Flat
    }

    fn metric(&self) -> Metric {
        self.metric
    }

    fn len(&self) -> usize {
        self.data.rows()
    }

    fn dim(&self) -> usize {
        self.data.cols()
    }

    fn search_prepared(&self, prepared: &[f64], k: usize) -> Vec<Neighbor> {
        assert_eq!(
            prepared.len(),
            self.dim(),
            "FlatIndex::search_prepared: dim mismatch"
        );
        let mut acc = topk::TopK::new(k);
        scan::scan_topk(&mut acc, prepared, self.data.data(), self.dim(), |r| r);
        acc.into_sorted()
    }

    /// Cache-blocked batch scan: instead of re-streaming the whole store
    /// once per query, each worker walks the store in row panels sized to
    /// stay cache-resident (~32 KiB) and scores *all* of its queries
    /// against each panel before moving on. Per-query row order is
    /// unchanged, so every result is bit-identical to
    /// [`search`](VectorIndex::search) — and therefore to any thread
    /// count (queries are partitioned, never split).
    fn batch_search(&self, queries: &DenseMatrix, k: usize, threads: usize) -> Vec<Vec<Neighbor>> {
        let dim = self.dim();
        let rows_per_panel = (32 * 1024 / (dim * 8)).clamp(8, 512);
        let data = self.data.data();
        let n = self.data.rows();
        let ranges = even_ranges_nonempty(queries.rows(), threads.max(1));
        let per_block = map_blocks(&ranges, |_, range| {
            let qs: Vec<Vec<f64>> = range
                .clone()
                .map(|i| self.metric.prepare_query(queries.row(i)))
                .collect();
            let mut accs: Vec<topk::TopK> = (0..qs.len()).map(|_| topk::TopK::new(k)).collect();
            let mut start = 0;
            while start < n {
                let pr = rows_per_panel.min(n - start);
                let panel = &data[start * dim..(start + pr) * dim];
                for (q, acc) in qs.iter().zip(accs.iter_mut()) {
                    scan::scan_topk(acc, q, panel, dim, |r| start + r);
                }
                start += pr;
            }
            accs.into_iter()
                .map(|a| a.into_sorted())
                .collect::<Vec<_>>()
        });
        per_block.into_iter().flatten().collect()
    }

    fn insert(&mut self, vector: &[f64]) -> Result<usize, IndexError> {
        if vector.len() != self.dim() {
            return Err(IndexError::Build(format!(
                "FlatIndex::insert: vector has dim {}, index holds dim {}",
                vector.len(),
                self.dim()
            )));
        }
        let prepared = self.metric.prepare_query(vector);
        self.data.push_row(&prepared);
        Ok(self.data.rows() - 1)
    }

    fn save(&self, path: &Path) -> Result<(), IndexError> {
        let specs = [ColumnSpec {
            id: section::INDEX_VECTORS,
            rows: self.data.rows(),
            cols: self.data.cols(),
            data: ColumnData::F64(self.data.data()),
        }];
        pane_format::write_columns(
            path,
            Artifact::Index,
            columnar_meta(IndexKind::Flat, self.metric),
            &specs,
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::clustered_vectors;

    #[test]
    fn finds_itself_first_under_cosine() {
        let data = clustered_vectors(120, 16, 4, 0.2);
        let idx = FlatIndex::build(&data, Metric::Cosine);
        for v in [0, 17, 119] {
            let hits = idx.search(data.row(v), 5);
            assert_eq!(hits[0].index, v);
            assert!((hits[0].score - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn columnar_and_legacy_dumps_load_identically() {
        let dir = std::env::temp_dir().join(format!("pane_flat_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = clustered_vectors(60, 12, 3, 0.2);
        let idx = FlatIndex::build(&data, Metric::Cosine);
        let col = dir.join("flat.col.idx");
        let leg = dir.join("flat.leg.idx");
        idx.save(&col).unwrap();
        idx.save_legacy(&leg).unwrap();
        let from_col = FlatIndex::load(&col).unwrap();
        let from_leg = FlatIndex::load(&leg).unwrap();
        assert_eq!(from_col.vectors().data(), from_leg.vectors().data());
        assert_eq!(from_col.metric(), Metric::Cosine);
        for q in [0, 30] {
            assert_eq!(
                from_col.search(data.row(q), 5),
                from_leg.search(data.row(q), 5)
            );
        }
        std::fs::remove_file(&col).ok();
        std::fs::remove_file(&leg).ok();
    }

    #[test]
    fn batch_matches_single_and_threads() {
        let data = clustered_vectors(80, 8, 3, 0.3);
        let idx = FlatIndex::build(&data, Metric::InnerProduct);
        let single: Vec<_> = (0..data.rows())
            .map(|i| idx.search(data.row(i), 4))
            .collect();
        for threads in [1, 3] {
            let batch = idx.batch_search(&data, 4, threads);
            assert_eq!(batch, single);
        }
    }
}
