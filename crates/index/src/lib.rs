#![deny(missing_docs)]
// Indexed loops in the numeric kernels are deliberate (they keep the
// zip-free auto-vectorizable shape the perf guide recommends).
#![allow(clippy::needless_range_loop)]
//! `pane-index` — the ANN serving subsystem behind PANE's query layer.
//!
//! PANE's embeddings exist to be *queried*: similar-node search, link
//! recommendation, attribute inference. Served naively each query is a
//! brute-force `O(n)` scan over every node — untenable at the paper's
//! MAG scale (59.3M nodes). This crate interposes a purpose-built index
//! between the stored vectors and the query traffic:
//!
//! * [`FlatIndex`] — the exact baseline: a full scan with a bounded-heap
//!   top-k reduction. Ground truth for recall measurements;
//! * [`IvfIndex`] — an inverted-file index: a seeded k-means coarse
//!   quantizer partitions the vectors into `nlist` cells, queries probe
//!   only the `nprobe` nearest cells. Built block-parallel with
//!   `pane-parallel`, yet bit-identical across thread counts (the same
//!   determinism contract the embedding pipeline upholds);
//! * [`HnswIndex`] — a hierarchical navigable-small-world graph with
//!   *deterministic seeded level assignment*, so builds are reproducible
//!   like the rest of the pipeline;
//! * [`DeltaIndex`] — any of the above plus a flat, append-only **delta
//!   segment**: O(1) incremental inserts merged into every search, the
//!   ingest path a serving daemon (`pane serve`) uses so freshly arrived
//!   nodes are queryable without a rebuild.
//!
//! All structures implement [`VectorIndex`] (`search` / `batch_search` /
//! `insert` / `save`, plus per-type `build` / `load`), share one compact
//! binary persistence format (see [`persist`] for the field-by-field
//! `PANEIDX1` layout), and score with a dot product: [`Metric::Cosine`]
//! L2-normalizes stored and query vectors first (so the dot *is* the
//! cosine), [`Metric::InnerProduct`] ranks by the raw dot — both what
//! Eq. 22 link scores and the unified similar-node scale (see
//! `pane-core`'s `query` module) need.

pub mod delta;
pub mod flat;
pub mod hnsw;
pub mod ivf;
pub mod kmeans;
pub mod persist;
#[cfg(test)]
mod proptests;
pub(crate) mod scan;
pub mod spec;
pub mod sq;
pub mod topk;

pub use delta::DeltaIndex;
pub use flat::FlatIndex;
pub use hnsw::{HnswConfig, HnswIndex};
pub use ivf::{IvfConfig, IvfIndex};
pub use kmeans::{kmeans, KmeansResult};
pub use persist::{load_index, AnyIndex};
pub use spec::IndexSpec;
pub use sq::{SqConfig, SqFlatIndex};

use pane_linalg::{vecops, DenseMatrix};
use pane_parallel::{even_ranges_nonempty, map_blocks};
use std::io;
use std::path::Path;

/// SplitMix64 — the crate's only randomness source (k-means init, HNSW
/// level assignment). A counter-based generator keeps the crate std-only
/// and makes every derived decision a pure function of `(seed, counter)`,
/// independent of thread count or insertion order.
#[inline]
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform `f64` in `(0, 1]` from a SplitMix64 word (never 0, so it is
/// safe under `ln`).
#[inline]
pub(crate) fn unit_open(x: u64) -> f64 {
    (((splitmix64(x) >> 11) + 1) as f64) * (1.0 / (1u64 << 53) as f64)
}

/// One search hit: an item id and its similarity score (larger = better).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Row index of the hit in the indexed matrix.
    pub index: usize,
    /// Similarity under the index's [`Metric`].
    pub score: f64,
}

/// How vectors are compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Cosine similarity: vectors are L2-normalized at build/query time and
    /// compared by dot product. Used for similar-node search over the
    /// `[X_f ‖ X_b]` classifier features.
    Cosine,
    /// Raw inner product (maximum-inner-product search). Used for link
    /// recommendation, where the score is `q · X_b[dst]` (Eq. 22).
    InnerProduct,
}

impl Metric {
    /// Stable on-disk tag.
    pub fn tag(self) -> u8 {
        match self {
            Metric::Cosine => 0,
            Metric::InnerProduct => 1,
        }
    }

    /// Inverse of [`Metric::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(Metric::Cosine),
            1 => Some(Metric::InnerProduct),
            _ => None,
        }
    }

    /// Copies `data`, L2-normalizing each row when the metric is cosine.
    pub(crate) fn prepare(self, data: &DenseMatrix) -> DenseMatrix {
        let mut out = data.clone();
        if self == Metric::Cosine {
            for i in 0..out.rows() {
                vecops::normalize(out.row_mut(i), 1e-300);
            }
        }
        out
    }

    /// Copies `query`, L2-normalizing it when the metric is cosine.
    pub(crate) fn prepare_query(self, query: &[f64]) -> Vec<f64> {
        let mut q = query.to_vec();
        if self == Metric::Cosine {
            vecops::normalize(&mut q, 1e-300);
        }
        q
    }
}

/// Which concrete index a [`VectorIndex`] trait object is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Exact full-scan baseline.
    Flat,
    /// Inverted-file (k-means coarse quantizer) index.
    Ivf,
    /// Hierarchical navigable-small-world graph index.
    Hnsw,
    /// Scalar-quantized flat scan (i8 codes + per-row scale): the 8×-RAM
    /// baseline with a re-ranked shortlist.
    SqFlat,
}

impl IndexKind {
    /// Stable on-disk tag.
    pub fn tag(self) -> u8 {
        match self {
            IndexKind::Flat => 0,
            IndexKind::Ivf => 1,
            IndexKind::Hnsw => 2,
            IndexKind::SqFlat => 3,
        }
    }

    /// Inverse of [`IndexKind::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(IndexKind::Flat),
            1 => Some(IndexKind::Ivf),
            2 => Some(IndexKind::Hnsw),
            3 => Some(IndexKind::SqFlat),
            _ => None,
        }
    }
}

impl std::fmt::Display for IndexKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            IndexKind::Flat => "flat",
            IndexKind::Ivf => "ivf",
            IndexKind::Hnsw => "hnsw",
            IndexKind::SqFlat => "sqflat",
        })
    }
}

/// Errors from building, saving, loading, or mutating an index.
#[derive(Debug)]
pub enum IndexError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a recognizable index dump.
    Format(String),
    /// Invalid build input (e.g. empty data, zero dimension).
    Build(String),
    /// The operation is not supported by this index structure (e.g.
    /// [`VectorIndex::insert`] on a structure without an append path —
    /// wrap it in a [`DeltaIndex`] instead).
    Unsupported(String),
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::Io(e) => write!(f, "I/O error: {e}"),
            IndexError::Format(m) => write!(f, "format error: {m}"),
            IndexError::Build(m) => write!(f, "build error: {m}"),
            IndexError::Unsupported(m) => write!(f, "unsupported operation: {m}"),
        }
    }
}

impl std::error::Error for IndexError {}

impl From<io::Error> for IndexError {
    fn from(e: io::Error) -> Self {
        IndexError::Io(e)
    }
}

/// Uniform interface over the three index structures.
///
/// `build` and `load` are inherent per-type (their configurations differ);
/// everything a *serving* path needs is object-safe here.
pub trait VectorIndex: Send + Sync {
    /// Which structure this is.
    fn kind(&self) -> IndexKind;
    /// Similarity metric the index was built with.
    fn metric(&self) -> Metric;
    /// Number of indexed vectors.
    fn len(&self) -> usize;
    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Dimensionality of the indexed vectors.
    fn dim(&self) -> usize;

    /// Top-`k` neighbors of `query`, best first.
    ///
    /// # Panics
    /// Panics if `query.len() != self.dim()`.
    fn search(&self, query: &[f64], k: usize) -> Vec<Neighbor> {
        assert_eq!(
            query.len(),
            self.dim(),
            "{}::search: dim mismatch",
            self.kind()
        );
        let q = self.metric().prepare_query(query);
        self.search_prepared(&q, k)
    }

    /// Top-`k` neighbors of an *already metric-prepared* query (the
    /// caller has applied the metric's query preparation — cosine
    /// normalization — exactly once), best first.
    ///
    /// [`search`](VectorIndex::search) is `prepare_query` + this.
    /// Structures that merge several scans over one query (e.g.
    /// [`delta::DeltaIndex`] merging its base search with the delta
    /// segment) call this so the query is prepared once, not once per
    /// sub-scan.
    ///
    /// # Panics
    /// Panics if `prepared.len() != self.dim()`.
    fn search_prepared(&self, prepared: &[f64], k: usize) -> Vec<Neighbor>;

    /// Top-`k` neighbors for each query row, fanned out over `threads`
    /// scoped workers. Queries are independent, so the result is identical
    /// for every thread count.
    fn batch_search(&self, queries: &DenseMatrix, k: usize, threads: usize) -> Vec<Vec<Neighbor>> {
        let ranges = even_ranges_nonempty(queries.rows(), threads.max(1));
        let per_block = map_blocks(&ranges, |_, range| {
            range
                .map(|i| self.search(queries.row(i), k))
                .collect::<Vec<_>>()
        });
        per_block.into_iter().flatten().collect()
    }

    /// Appends one vector, returning its assigned id (`len()` before the
    /// insert — ids are densely assigned in insertion order).
    ///
    /// The default declines with [`IndexError::Unsupported`]: only
    /// structures with a genuine append path implement it ([`FlatIndex`]
    /// natively, [`DeltaIndex`] by buffering into its flat delta segment
    /// for any base). IVF and HNSW serve fresh vectors through
    /// [`DeltaIndex`] until a compaction rebuilds them.
    fn insert(&mut self, vector: &[f64]) -> Result<usize, IndexError> {
        let _ = vector;
        Err(IndexError::Unsupported(format!(
            "{} index has no incremental insert path; wrap it in a DeltaIndex",
            self.kind()
        )))
    }

    /// Writes the index in the `PANEIDX1` binary format.
    fn save(&self, path: &Path) -> Result<(), IndexError>;
}

#[cfg(test)]
pub(crate) mod testutil {
    use pane_linalg::DenseMatrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Clustered unit vectors: `clusters` Gaussian centers, points =
    /// center + `noise`·N(0,1), row-normalized. A stand-in for the shape
    /// of real `[X_f ‖ X_b]` features.
    pub fn clustered_vectors(n: usize, dim: usize, clusters: usize, noise: f64) -> DenseMatrix {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        let mut sampler = pane_linalg::NormalSampler::new();
        let centers: Vec<Vec<f64>> = (0..clusters)
            .map(|_| (0..dim).map(|_| sampler.sample(&mut rng)).collect())
            .collect();
        let mut m = DenseMatrix::zeros(n, dim);
        for i in 0..n {
            let c = rng.gen_range(0..clusters);
            let row = m.row_mut(i);
            for (j, slot) in row.iter_mut().enumerate() {
                *slot = centers[c][j] + noise * sampler.sample(&mut rng);
            }
            pane_linalg::vecops::normalize(row, 1e-300);
        }
        m
    }
}
