//! Bounded top-k selection.
//!
//! Every index in this crate (and the exact scans in `pane-core`'s query
//! layer) ends in the same reduction: keep the `k` best-scoring items out
//! of a stream of `n`. A collect-and-sort does that in `O(n log n)`; the
//! [`TopK`] accumulator below does it in `O(n log k)` with a bounded
//! binary heap, which matters when `n` is millions of nodes and `k` is 10.
//!
//! The ordering is total: scores compare by [`f64::total_cmp`], `NaN`
//! ranks *below* every real score (a degenerate embedding degrades to
//! arbitrary-but-stable results instead of panicking a serving path), and
//! equal scores tie-break by ascending index so results are deterministic.

use crate::Neighbor;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Descending-score comparison: `Less` means "ranks earlier" (better).
///
/// `NaN` sorts after every finite/infinite score; `+0.0` and `-0.0`
/// compare equal (so the index tie-break, not the sign bit, decides).
pub fn cmp_ranked(a: &Neighbor, b: &Neighbor) -> Ordering {
    let by_score = match (a.score.is_nan(), b.score.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => {
            if a.score == b.score {
                Ordering::Equal
            } else {
                b.score.total_cmp(&a.score)
            }
        }
    };
    by_score.then_with(|| a.index.cmp(&b.index))
}

/// Max-heap entry ordered so the heap root is the *worst-ranked* kept item.
struct Worst(Neighbor);

impl PartialEq for Worst {
    fn eq(&self, other: &Self) -> bool {
        cmp_ranked(&self.0, &other.0) == Ordering::Equal
    }
}
impl Eq for Worst {}
impl PartialOrd for Worst {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Worst {
    fn cmp(&self, other: &Self) -> Ordering {
        cmp_ranked(&self.0, &other.0)
    }
}

/// Bounded accumulator retaining the `k` best-ranked items seen so far.
pub struct TopK {
    k: usize,
    heap: BinaryHeap<Worst>,
}

impl TopK {
    /// An empty accumulator with capacity `k`.
    pub fn new(k: usize) -> Self {
        // Cap the eager reservation: callers may pass k >= n as "keep
        // everything", and the heap grows on demand anyway.
        Self {
            k,
            heap: BinaryHeap::with_capacity(k.saturating_add(1).min(4096)),
        }
    }

    /// Offers one item.
    #[inline]
    pub fn push(&mut self, index: usize, score: f64) {
        if self.k == 0 {
            return;
        }
        let item = Neighbor { index, score };
        if self.heap.len() < self.k {
            self.heap.push(Worst(item));
        } else if let Some(worst) = self.heap.peek() {
            if cmp_ranked(&item, &worst.0) == Ordering::Less {
                self.heap.pop();
                self.heap.push(Worst(item));
            }
        }
    }

    /// The currently worst kept item (`None` until `k` items were offered).
    pub fn threshold(&self) -> Option<&Neighbor> {
        if self.heap.len() < self.k {
            None
        } else {
            self.heap.peek().map(|w| &w.0)
        }
    }

    /// Finishes the selection, returning the kept items best-first.
    pub fn into_sorted(self) -> Vec<Neighbor> {
        let mut out: Vec<Neighbor> = self.heap.into_iter().map(|w| w.0).collect();
        out.sort_by(cmp_ranked);
        out
    }
}

/// Selects the `k` best-ranked `(index, score)` pairs from a stream.
pub fn select(scores: impl Iterator<Item = (usize, f64)>, k: usize) -> Vec<Neighbor> {
    let mut acc = TopK::new(k);
    for (index, score) in scores {
        acc.push(index, score);
    }
    acc.into_sorted()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn indices(v: &[Neighbor]) -> Vec<usize> {
        v.iter().map(|n| n.index).collect()
    }

    #[test]
    fn matches_full_sort() {
        let scores = [0.3, -1.0, 0.3, 7.5, 0.0, -0.0, 2.2];
        let got = select(scores.iter().cloned().enumerate(), 4);
        assert_eq!(indices(&got), vec![3, 6, 0, 2]);
        let all = select(scores.iter().cloned().enumerate(), 100);
        assert_eq!(all.len(), scores.len());
        assert_eq!(indices(&all), vec![3, 6, 0, 2, 4, 5, 1]);
    }

    #[test]
    fn nan_ranks_last_not_panics() {
        let scores = [1.0, f64::NAN, 2.0, f64::NAN];
        let got = select(scores.iter().cloned().enumerate(), 4);
        assert_eq!(indices(&got), vec![2, 0, 1, 3]);
        let top2 = select(scores.iter().cloned().enumerate(), 2);
        assert_eq!(indices(&top2), vec![2, 0]);
    }

    #[test]
    fn signed_zero_ties_break_by_index() {
        let got = select([(5, -0.0), (2, 0.0)].into_iter(), 2);
        assert_eq!(indices(&got), vec![2, 5]);
    }

    #[test]
    fn k_zero_is_empty() {
        assert!(select([(0, 1.0)].into_iter(), 0).is_empty());
    }

    #[test]
    fn threshold_tracks_worst_kept() {
        let mut acc = TopK::new(2);
        acc.push(0, 1.0);
        assert!(acc.threshold().is_none());
        acc.push(1, 3.0);
        assert_eq!(acc.threshold().unwrap().score, 1.0);
        acc.push(2, 2.0);
        assert_eq!(acc.threshold().unwrap().score, 2.0);
    }
}
