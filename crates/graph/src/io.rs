//! Plain-text loaders and writers for attributed graphs.
//!
//! The formats mirror what the paper's datasets ship as:
//!
//! * **edge list** — one `src dst` pair per line (whitespace separated);
//! * **attribute triples** — one `node attr weight` per line (weight
//!   optional, default 1.0) — the `E_R` tuples of §2.1;
//! * **labels** — one `node label [label ...]` per line (multi-label).
//!
//! Lines starting with `#` or `%` are comments.
//!
//! All loaders **stream**: [`load_graph`] parses each file line-by-line
//! directly into a chunked [`pane_sparse::CsrBuilder`], so peak memory is
//! the output CSR plus one bounded chunk — never a `Vec` of all parsed
//! records (these files reach hundreds of millions of lines for MAG-scale
//! data). [`load_graph_with`] additionally offers [`LoadMode::TwoPass`],
//! which re-parses each file through the two-pass counting sort instead
//! of chunk-merging — bit-identical output, lower peak memory on
//! near-unique edge lists. The `for_each_*` functions expose the same
//! streaming parse to callers; the `parse_*` functions are thin
//! collecting wrappers for small inputs.
//!
//! Untrusted input never panics: malformed lines, out-of-range ids (when
//! explicit dimensions are given) and invalid weights all surface as
//! structured [`IoError`]s naming the offending line.

use crate::graph::AttributedGraph;
use pane_sparse::{CsrBuilder, MergeRule};
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Errors raised by the loaders.
#[derive(Debug)]
pub enum IoError {
    /// Underlying file error.
    Io(io::Error),
    /// Malformed line, with file kind, line number and message.
    Parse {
        /// Which loader raised the error ("edge", "attribute", "label", …).
        kind: &'static str,
        /// 1-based line number (0 for binary formats).
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// A well-formed record referenced an id outside the declared
    /// dimensions (explicit `num_nodes` / `num_attributes`).
    IdOutOfRange {
        /// What the id names ("edge source", "attribute", "label node", …).
        kind: &'static str,
        /// 1-based line number.
        line: usize,
        /// The offending id.
        id: usize,
        /// The exclusive bound it violated.
        bound: usize,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse {
                kind,
                line,
                message,
            } => {
                write!(f, "parse error in {kind} file, line {line}: {message}")
            }
            IoError::IdOutOfRange {
                kind,
                line,
                id,
                bound,
            } => write!(
                f,
                "{kind} id {id} out of range (must be < {bound}), line {line}"
            ),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

fn is_comment(line: &str) -> bool {
    let t = line.trim_start();
    t.is_empty() || t.starts_with('#') || t.starts_with('%')
}

/// Streams records from `reader` line-by-line (one reused buffer, no
/// per-line allocation), skipping comments, calling `f(lineno, line)`.
fn for_each_record<R: BufRead>(
    mut reader: R,
    mut f: impl FnMut(usize, &str) -> Result<(), IoError>,
) -> Result<(), IoError> {
    let mut buf = String::new();
    let mut lineno = 0usize;
    loop {
        buf.clear();
        if reader.read_line(&mut buf)? == 0 {
            return Ok(());
        }
        lineno += 1;
        if !is_comment(&buf) {
            f(lineno, buf.trim_end_matches(['\n', '\r']))?;
        }
    }
}

/// Streams `(line, src, dst)` for every edge record, without materializing
/// the edge list.
pub fn for_each_edge<R: BufRead>(
    reader: R,
    mut f: impl FnMut(usize, usize, usize) -> Result<(), IoError>,
) -> Result<(), IoError> {
    for_each_record(reader, |lineno, line| {
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>, what: &str| -> Result<usize, IoError> {
            tok.ok_or_else(|| IoError::Parse {
                kind: "edge",
                line: lineno,
                message: format!("missing {what}"),
            })?
            .parse()
            .map_err(|e| IoError::Parse {
                kind: "edge",
                line: lineno,
                message: format!("bad {what}: {e}"),
            })
        };
        let s = parse(it.next(), "source")?;
        let t = parse(it.next(), "target")?;
        f(lineno, s, t)
    })
}

/// Streams `(line, node, attr, weight)` for every attribute record.
pub fn for_each_attribute<R: BufRead>(
    reader: R,
    mut f: impl FnMut(usize, usize, usize, f64) -> Result<(), IoError>,
) -> Result<(), IoError> {
    for_each_record(reader, |lineno, line| {
        let toks: Vec<&str> = line.split_whitespace().collect();
        if toks.len() < 2 || toks.len() > 3 {
            return Err(IoError::Parse {
                kind: "attribute",
                line: lineno,
                message: format!("expected 'node attr [weight]', got {} tokens", toks.len()),
            });
        }
        let parse_idx = |tok: &str, what: &str| -> Result<usize, IoError> {
            tok.parse().map_err(|e| IoError::Parse {
                kind: "attribute",
                line: lineno,
                message: format!("bad {what}: {e}"),
            })
        };
        let v = parse_idx(toks[0], "node")?;
        let r = parse_idx(toks[1], "attribute")?;
        let w = if toks.len() == 3 {
            toks[2].parse().map_err(|e| IoError::Parse {
                kind: "attribute",
                line: lineno,
                message: format!("bad weight: {e}"),
            })?
        } else {
            1.0
        };
        f(lineno, v, r, w)
    })
}

/// Streams `(line, node, labels)` for every label record. The label slice
/// is a buffer reused across lines — copy it if you need to keep it.
/// Lines with a node but no labels are still reported (they extend the
/// inferred node count).
pub fn for_each_label_line<R: BufRead>(
    reader: R,
    mut f: impl FnMut(usize, usize, &[usize]) -> Result<(), IoError>,
) -> Result<(), IoError> {
    let mut labels: Vec<usize> = Vec::new();
    for_each_record(reader, |lineno, line| {
        let mut it = line.split_whitespace();
        let v: usize = it
            .next()
            .ok_or_else(|| IoError::Parse {
                kind: "label",
                line: lineno,
                message: "empty line".into(),
            })?
            .parse()
            .map_err(|e| IoError::Parse {
                kind: "label",
                line: lineno,
                message: format!("bad node: {e}"),
            })?;
        labels.clear();
        for tok in it {
            labels.push(tok.parse().map_err(|e| IoError::Parse {
                kind: "label",
                line: lineno,
                message: format!("bad label: {e}"),
            })?);
        }
        f(lineno, v, &labels)
    })
}

/// Collects `(src, dst)` pairs from an edge-list reader. Prefer
/// [`for_each_edge`] for large inputs.
pub fn parse_edges<R: BufRead>(reader: R) -> Result<Vec<(usize, usize)>, IoError> {
    let mut out = Vec::new();
    for_each_edge(reader, |_, s, t| {
        out.push((s, t));
        Ok(())
    })?;
    Ok(out)
}

/// Collects `(node, attr, weight)` triples from an attribute reader.
/// Prefer [`for_each_attribute`] for large inputs.
pub fn parse_attributes<R: BufRead>(reader: R) -> Result<Vec<(usize, usize, f64)>, IoError> {
    let mut out = Vec::new();
    for_each_attribute(reader, |_, v, r, w| {
        out.push((v, r, w));
        Ok(())
    })?;
    Ok(out)
}

/// Collects `node label [label ...]` lines from a label reader. Prefer
/// [`for_each_label_line`] for large inputs.
pub fn parse_labels<R: BufRead>(reader: R) -> Result<Vec<(usize, Vec<usize>)>, IoError> {
    let mut out = Vec::new();
    for_each_label_line(reader, |_, v, ls| {
        out.push((v, ls.to_vec()));
        Ok(())
    })?;
    Ok(out)
}

fn open(path: &Path) -> Result<BufReader<File>, IoError> {
    Ok(BufReader::new(File::open(path)?))
}

/// How [`load_graph_with`] materializes the CSR matrices from the files.
///
/// Both modes produce **bit-identical** graphs (same entry order, same
/// duplicate folding — pinned by the `pane-sparse` equivalence property
/// tests plus the mode-equivalence test below); they differ only in what
/// is held in memory on the way there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoadMode {
    /// Stream each file **once** into a chunked [`CsrBuilder`]: peak
    /// auxiliary memory is `O(nnz_out + chunk)`. The default — it never
    /// re-reads, and its bound does not grow with duplicate records.
    #[default]
    Chunked,
    /// Parse each file **twice** through the two-pass counting sort
    /// (`CsrBuilder::try_from_source`: a count pass sizes the final
    /// arrays, a fill pass scatters into them). No chunk merging at all —
    /// auxiliary memory is the `rows + 1` offset table plus the scatter
    /// slack for duplicates, which beats the chunked bound on
    /// near-unique edge lists at the cost of a second read of the file.
    TwoPass,
}

/// Rejects out-of-range edge endpoints with a structured error.
fn check_edge(line: usize, s: usize, t: usize, n: usize) -> Result<(), IoError> {
    if s >= n {
        return Err(IoError::IdOutOfRange {
            kind: "edge source node",
            line,
            id: s,
            bound: n,
        });
    }
    if t >= n {
        return Err(IoError::IdOutOfRange {
            kind: "edge target node",
            line,
            id: t,
            bound: n,
        });
    }
    Ok(())
}

/// Rejects out-of-range / non-positive attribute records.
fn check_attribute(
    line: usize,
    v: usize,
    r: usize,
    w: f64,
    n: usize,
    d: usize,
) -> Result<(), IoError> {
    if v >= n {
        return Err(IoError::IdOutOfRange {
            kind: "attribute node",
            line,
            id: v,
            bound: n,
        });
    }
    if r >= d {
        return Err(IoError::IdOutOfRange {
            kind: "attribute",
            line,
            id: r,
            bound: d,
        });
    }
    if !(w.is_finite() && w > 0.0) {
        return Err(IoError::Parse {
            kind: "attribute",
            line,
            message: format!("weight must be finite and positive, got {w}"),
        });
    }
    Ok(())
}

/// Loads an attributed graph from separate files with the default
/// [`LoadMode::Chunked`] streaming build (no intermediate record
/// vectors). See [`load_graph_with`].
pub fn load_graph(
    edges_path: &Path,
    attrs_path: Option<&Path>,
    labels_path: Option<&Path>,
    num_nodes: Option<usize>,
    num_attributes: Option<usize>,
    undirected: bool,
) -> Result<AttributedGraph, IoError> {
    load_graph_with(
        edges_path,
        attrs_path,
        labels_path,
        num_nodes,
        num_attributes,
        undirected,
        LoadMode::Chunked,
    )
}

/// Loads an attributed graph from separate files, materializing the CSR
/// matrices per `mode` (see [`LoadMode`] for the memory trade-off).
///
/// `num_nodes`/`num_attributes` may be `None`, in which case they are
/// inferred as `1 + max index` seen across the files (one extra streaming
/// scan). When a dimension **is** declared, any record referencing an id
/// at or past it is a structured [`IoError::IdOutOfRange`] — never a
/// panic — so a serving-adjacent load of an inconsistent dataset degrades
/// into a clean error.
#[allow(clippy::too_many_arguments)]
pub fn load_graph_with(
    edges_path: &Path,
    attrs_path: Option<&Path>,
    labels_path: Option<&Path>,
    num_nodes: Option<usize>,
    num_attributes: Option<usize>,
    undirected: bool,
    mode: LoadMode,
) -> Result<AttributedGraph, IoError> {
    // Dimension scan — only the files a missing dimension depends on.
    let (n, d) = match (num_nodes, num_attributes) {
        (Some(n), Some(d)) => (n, d),
        _ => {
            let mut max_n = 0usize; // 1 + max node id seen
            let mut max_d = 0usize; // 1 + max attribute id seen
            if num_nodes.is_none() {
                for_each_edge(open(edges_path)?, |_, s, t| {
                    max_n = max_n.max(s + 1).max(t + 1);
                    Ok(())
                })?;
                if let Some(p) = labels_path {
                    for_each_label_line(open(p)?, |_, v, _| {
                        max_n = max_n.max(v + 1);
                        Ok(())
                    })?;
                }
            }
            if let Some(p) = attrs_path {
                for_each_attribute(open(p)?, |_, v, r, _| {
                    if num_nodes.is_none() {
                        max_n = max_n.max(v + 1);
                    }
                    max_d = max_d.max(r + 1);
                    Ok(())
                })?;
            }
            (num_nodes.unwrap_or(max_n), num_attributes.unwrap_or(max_d))
        }
    };
    // Declared or inferred, the dimensions must fit the u32 index space of
    // the sparse substrate — an id ≥ 2³² in a text file must be a clean
    // error, not a builder assert.
    for (dim, what) in [(n, "node"), (d, "attribute")] {
        if dim > u32::MAX as usize {
            return Err(IoError::Parse {
                kind: "graph",
                line: 0,
                message: format!("{what} count {dim} exceeds the u32 index space"),
            });
        }
    }

    // Build pass(es): stream records straight into the selected builder.
    // Duplicate edges collapse to weight 1 (binary adjacency, §2.1);
    // duplicate node–attribute associations sum their weights. Both
    // modes emit the identical triplet sequence, so the results are
    // bit-identical (the builders share one merge semantics).
    let (adjacency, attributes) = match mode {
        LoadMode::Chunked => {
            let mut adj = CsrBuilder::new(n, n).merge_rule(MergeRule::KeepFirst);
            for_each_edge(open(edges_path)?, |line, s, t| {
                check_edge(line, s, t, n)?;
                adj.push(s, t, 1.0);
                if undirected {
                    adj.push(t, s, 1.0);
                }
                Ok(())
            })?;
            let mut attrs = CsrBuilder::new(n, d).merge_rule(MergeRule::Sum);
            if let Some(p) = attrs_path {
                for_each_attribute(open(p)?, |line, v, r, w| {
                    check_attribute(line, v, r, w, n, d)?;
                    attrs.push(v, r, w);
                    Ok(())
                })?;
            }
            (adj.finish(), attrs.finish())
        }
        LoadMode::TwoPass => {
            // Each closure call re-opens and re-parses the file — the
            // "replayable source" the two-pass counting sort requires
            // (count pass + fill pass). Parse and range errors propagate
            // through `try_from_source` from either pass.
            let adj = CsrBuilder::try_from_source(n, n, MergeRule::KeepFirst, |emit| {
                for_each_edge(open(edges_path)?, |line, s, t| {
                    check_edge(line, s, t, n)?;
                    emit(s, t, 1.0);
                    if undirected {
                        emit(t, s, 1.0);
                    }
                    Ok(())
                })
            })?;
            let attrs = match attrs_path {
                Some(p) => CsrBuilder::try_from_source(n, d, MergeRule::Sum, |emit| {
                    for_each_attribute(open(p)?, |line, v, r, w| {
                        check_attribute(line, v, r, w, n, d)?;
                        emit(v, r, w);
                        Ok(())
                    })
                })?,
                None => CsrBuilder::new(n, d).merge_rule(MergeRule::Sum).finish(),
            };
            (adj, attrs)
        }
    };

    let mut labels: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut num_labels = 0usize;
    if let Some(p) = labels_path {
        for_each_label_line(open(p)?, |line, v, ls| {
            if v >= n {
                return Err(IoError::IdOutOfRange {
                    kind: "label node",
                    line,
                    id: v,
                    bound: n,
                });
            }
            for &l in ls {
                // Labels are stored as u32; a larger id in the file is
                // corrupt data, not something to truncate silently.
                if l > u32::MAX as usize {
                    return Err(IoError::IdOutOfRange {
                        kind: "label",
                        line,
                        id: l,
                        bound: u32::MAX as usize + 1,
                    });
                }
                let lu = l as u32;
                if !labels[v].contains(&lu) {
                    labels[v].push(lu);
                }
                num_labels = num_labels.max(l + 1);
            }
            Ok(())
        })?;
    }
    for row in &mut labels {
        row.sort_unstable();
    }

    Ok(AttributedGraph::from_parts(
        adjacency, attributes, labels, num_labels, undirected,
    ))
}

/// Writes the graph back out as the three text files.
pub fn save_graph(
    g: &AttributedGraph,
    edges_path: &Path,
    attrs_path: &Path,
    labels_path: &Path,
) -> Result<(), IoError> {
    let mut ew = BufWriter::new(File::create(edges_path)?);
    writeln!(ew, "# src dst")?;
    for (i, j, _) in g.adjacency().iter() {
        writeln!(ew, "{i} {j}")?;
    }
    ew.flush()?;

    let mut aw = BufWriter::new(File::create(attrs_path)?);
    writeln!(aw, "# node attr weight")?;
    for (v, r, w) in g.attributes().iter() {
        writeln!(aw, "{v} {r} {w}")?;
    }
    aw.flush()?;

    let mut lw = BufWriter::new(File::create(labels_path)?);
    writeln!(lw, "# node labels...")?;
    for v in 0..g.num_nodes() {
        let ls = g.labels_of(v);
        if !ls.is_empty() {
            let body: Vec<String> = ls.iter().map(|l| l.to_string()).collect();
            writeln!(lw, "{v} {}", body.join(" "))?;
        }
    }
    lw.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use std::io::Cursor;

    #[test]
    fn parse_edges_with_comments() {
        let text = "# header\n0 1\n\n% other comment\n2 0\n";
        let e = parse_edges(Cursor::new(text)).unwrap();
        assert_eq!(e, vec![(0, 1), (2, 0)]);
    }

    #[test]
    fn parse_edges_rejects_garbage() {
        let err = parse_edges(Cursor::new("0 x\n")).unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("line 1"), "{msg}");
    }

    #[test]
    fn parse_attributes_defaults_weight() {
        let text = "0 3\n1 2 0.5\n";
        let a = parse_attributes(Cursor::new(text)).unwrap();
        assert_eq!(a, vec![(0, 3, 1.0), (1, 2, 0.5)]);
    }

    #[test]
    fn parse_attributes_arity_checked() {
        assert!(parse_attributes(Cursor::new("0 1 2 3\n")).is_err());
        assert!(parse_attributes(Cursor::new("0\n")).is_err());
    }

    #[test]
    fn parse_labels_multi() {
        let l = parse_labels(Cursor::new("3 0 2 5\n1 4\n")).unwrap();
        assert_eq!(l, vec![(3, vec![0, 2, 5]), (1, vec![4])]);
    }

    #[test]
    fn streaming_parsers_report_line_numbers() {
        // Comments and blanks still advance the line counter.
        let text = "# header\n\n0 1\nbroken\n";
        let err = for_each_edge(Cursor::new(text), |_, _, _| Ok(())).unwrap_err();
        assert!(format!("{err}").contains("line 4"), "{err}");
    }

    fn write_files(dir: &std::path::Path, edges: &str, attrs: &str, labels: &str) {
        std::fs::create_dir_all(dir).unwrap();
        std::fs::write(dir.join("e.txt"), edges).unwrap();
        std::fs::write(dir.join("a.txt"), attrs).unwrap();
        std::fs::write(dir.join("l.txt"), labels).unwrap();
    }

    fn tmpdir(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("pane_io_test_{}_{name}", std::process::id()))
    }

    #[test]
    fn roundtrip_through_files() {
        let dir = tmpdir("roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let (ep, ap, lp) = (dir.join("e.txt"), dir.join("a.txt"), dir.join("l.txt"));

        let mut b = GraphBuilder::new(4, 3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(3, 0);
        b.add_attribute(0, 0, 1.0);
        b.add_attribute(2, 1, 2.5);
        b.add_label(0, 1);
        b.add_label(2, 0);
        b.add_label(2, 1);
        let g = b.build();

        save_graph(&g, &ep, &ap, &lp).unwrap();
        let g2 = load_graph(&ep, Some(&ap), Some(&lp), Some(4), Some(3), false).unwrap();
        assert_eq!(g2.num_edges(), 3);
        assert_eq!(g2.attributes().get(2, 1), 2.5);
        assert_eq!(g2.labels_of(2), &[0, 1]);

        // Inference of n and d from content.
        let g3 = load_graph(&ep, Some(&ap), Some(&lp), None, None, false).unwrap();
        assert_eq!(g3.num_nodes(), 4);
        assert_eq!(g3.num_attributes(), 2); // max attr index 1 -> d=2

        std::fs::remove_dir_all(&dir).ok();
    }

    /// The streaming load path must match a `GraphBuilder` construction of
    /// the same records bit-for-bit (duplicate edges collapse to 1,
    /// duplicate attributes sum, undirected mirrors).
    #[test]
    fn streaming_load_matches_builder() {
        let dir = tmpdir("equiv");
        write_files(
            &dir,
            "0 1\n1 2\n0 1\n2 2\n1 0\n",
            "0 0 0.5\n1 2 2.0\n0 0 0.25\n2 1\n",
            "0 1\n2 0 1\n",
        );
        for undirected in [false, true] {
            let got = load_graph(
                &dir.join("e.txt"),
                Some(&dir.join("a.txt")),
                Some(&dir.join("l.txt")),
                Some(3),
                Some(3),
                undirected,
            )
            .unwrap();
            let mut b = GraphBuilder::new(3, 3);
            if undirected {
                b = b.undirected();
            }
            for (s, t) in [(0, 1), (1, 2), (0, 1), (2, 2), (1, 0)] {
                b.add_edge(s, t);
            }
            for (v, r, w) in [(0, 0, 0.5), (1, 2, 2.0), (0, 0, 0.25), (2, 1, 1.0)] {
                b.add_attribute(v, r, w);
            }
            b.add_label(0, 1);
            b.add_label(2, 0);
            b.add_label(2, 1);
            let want = b.build();
            assert_eq!(got.adjacency(), want.adjacency(), "undirected={undirected}");
            assert_eq!(got.attributes(), want.attributes());
            assert_eq!(got.labels(), want.labels());
            assert_eq!(got.num_labels(), want.num_labels());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The two-pass file mode must reproduce the chunked load
    /// bit-for-bit — duplicate edges, duplicate summed attributes,
    /// undirected mirroring, inference, everything.
    #[test]
    fn two_pass_load_is_bit_identical_to_chunked() {
        let dir = tmpdir("twopass");
        write_files(
            &dir,
            "0 1\n1 2\n0 1\n2 2\n1 0\n0 1\n",
            "0 0 0.5\n1 2 2.0\n0 0 0.25\n2 1\n0 0 0.125\n",
            "0 1\n2 0 1\n",
        );
        for undirected in [false, true] {
            for dims in [(Some(3), Some(3)), (None, None)] {
                let load = |mode| {
                    load_graph_with(
                        &dir.join("e.txt"),
                        Some(&dir.join("a.txt")),
                        Some(&dir.join("l.txt")),
                        dims.0,
                        dims.1,
                        undirected,
                        mode,
                    )
                    .unwrap()
                };
                let chunked = load(LoadMode::Chunked);
                let two_pass = load(LoadMode::TwoPass);
                assert_eq!(chunked.adjacency(), two_pass.adjacency());
                assert_eq!(chunked.attributes(), two_pass.attributes());
                assert_eq!(chunked.labels(), two_pass.labels());
                assert_eq!(chunked.num_labels(), two_pass.num_labels());
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Two-pass mode surfaces the same structured errors as chunked —
    /// from either pass, never a panic.
    #[test]
    fn two_pass_load_propagates_structured_errors() {
        let dir = tmpdir("twopass_err");
        write_files(&dir, "0 1\n1 7\n", "0 0\n", "");
        let err = load_graph_with(
            &dir.join("e.txt"),
            Some(&dir.join("a.txt")),
            None,
            Some(3),
            Some(2),
            false,
            LoadMode::TwoPass,
        )
        .unwrap_err();
        let msg = format!("{err}");
        assert!(
            msg.contains("edge target node id 7") && msg.contains("line 2"),
            "{msg}"
        );
        write_files(&dir, "0 1\n", "0 0 -1.0\n", "");
        let err = load_graph_with(
            &dir.join("e.txt"),
            Some(&dir.join("a.txt")),
            None,
            Some(2),
            Some(2),
            false,
            LoadMode::TwoPass,
        )
        .unwrap_err();
        assert!(format!("{err}").contains("finite and positive"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Regression: out-of-range ids with explicit dimensions used to hit a
    /// builder assert (process abort); they must be structured errors.
    #[test]
    fn out_of_range_ids_are_errors_not_panics() {
        let dir = tmpdir("oor");
        write_files(&dir, "0 1\n1 7\n", "0 0\n", "0 0\n");
        let err = load_graph(
            &dir.join("e.txt"),
            Some(&dir.join("a.txt")),
            Some(&dir.join("l.txt")),
            Some(3),
            Some(2),
            false,
        )
        .unwrap_err();
        let msg = format!("{err}");
        assert!(
            msg.contains("edge target node id 7") && msg.contains("line 2"),
            "{msg}"
        );

        write_files(&dir, "0 1\n", "5 0\n", "");
        let msg = format!(
            "{}",
            load_graph(
                &dir.join("e.txt"),
                Some(&dir.join("a.txt")),
                None,
                Some(3),
                Some(2),
                false,
            )
            .unwrap_err()
        );
        assert!(msg.contains("attribute node id 5"), "{msg}");

        write_files(&dir, "0 1\n", "0 9\n", "");
        let msg = format!(
            "{}",
            load_graph(
                &dir.join("e.txt"),
                Some(&dir.join("a.txt")),
                None,
                Some(3),
                Some(2),
                false,
            )
            .unwrap_err()
        );
        assert!(msg.contains("attribute id 9"), "{msg}");

        write_files(&dir, "0 1\n", "", "4 0\n");
        let msg = format!(
            "{}",
            load_graph(
                &dir.join("e.txt"),
                None,
                Some(&dir.join("l.txt")),
                Some(3),
                Some(2),
                false,
            )
            .unwrap_err()
        );
        assert!(msg.contains("label node id 4"), "{msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Regression: a non-positive attribute weight used to hit the builder
    /// assert; it must be a parse error naming the line.
    #[test]
    fn bad_attribute_weight_is_error() {
        let dir = tmpdir("weight");
        write_files(&dir, "0 1\n", "0 0 1.0\n1 1 -2.0\n", "");
        let msg = format!(
            "{}",
            load_graph(
                &dir.join("e.txt"),
                Some(&dir.join("a.txt")),
                None,
                Some(2),
                Some(2),
                false,
            )
            .unwrap_err()
        );
        assert!(
            msg.contains("finite and positive") && msg.contains("line 2"),
            "{msg}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Regression: ids at or past 2³² in a text file (driving an inferred
    /// dimension past the u32 index space, or a label id that would be
    /// silently truncated) are structured errors, not builder asserts.
    #[test]
    fn oversized_ids_are_errors_not_panics() {
        let dir = tmpdir("u32");
        write_files(&dir, "0 4294967296\n", "", "");
        let msg = format!(
            "{}",
            load_graph(&dir.join("e.txt"), None, None, None, None, false).unwrap_err()
        );
        assert!(msg.contains("exceeds the u32 index space"), "{msg}");

        write_files(&dir, "0 1\n", "0 4294967296 1.0\n", "");
        let msg = format!(
            "{}",
            load_graph(
                &dir.join("e.txt"),
                Some(&dir.join("a.txt")),
                None,
                None,
                None,
                false,
            )
            .unwrap_err()
        );
        assert!(msg.contains("exceeds the u32 index space"), "{msg}");

        write_files(&dir, "0 1\n", "", "0 4294967296\n");
        let msg = format!(
            "{}",
            load_graph(
                &dir.join("e.txt"),
                None,
                Some(&dir.join("l.txt")),
                None,
                None,
                false,
            )
            .unwrap_err()
        );
        assert!(msg.contains("label id 4294967296"), "{msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A label line with a node id but no labels still widens the inferred
    /// node count (historical `parse_labels` behavior).
    #[test]
    fn bare_label_node_extends_inference() {
        let dir = tmpdir("barelabel");
        write_files(&dir, "0 1\n", "", "5\n");
        let g = load_graph(
            &dir.join("e.txt"),
            None,
            Some(&dir.join("l.txt")),
            None,
            None,
            false,
        )
        .unwrap();
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.num_labels(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
