//! Plain-text loaders and writers for attributed graphs.
//!
//! The formats mirror what the paper's datasets ship as:
//!
//! * **edge list** — one `src dst` pair per line (whitespace separated);
//! * **attribute triples** — one `node attr weight` per line (weight
//!   optional, default 1.0) — the `E_R` tuples of §2.1;
//! * **labels** — one `node label [label ...]` per line (multi-label).
//!
//! Lines starting with `#` or `%` are comments. All loaders are buffered
//! (these files reach hundreds of millions of lines for MAG-scale data).

use crate::builder::GraphBuilder;
use crate::graph::AttributedGraph;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Errors raised by the loaders.
#[derive(Debug)]
pub enum IoError {
    /// Underlying file error.
    Io(io::Error),
    /// Malformed line, with file kind, line number and message.
    Parse {
        /// Which loader raised the error ("edge", "attribute", "label", …).
        kind: &'static str,
        /// 1-based line number (0 for binary formats).
        line: usize,
        /// Human-readable description.
        message: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse {
                kind,
                line,
                message,
            } => {
                write!(f, "parse error in {kind} file, line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

fn is_comment(line: &str) -> bool {
    let t = line.trim_start();
    t.is_empty() || t.starts_with('#') || t.starts_with('%')
}

/// Streams `(src, dst)` pairs from an edge-list reader.
pub fn parse_edges<R: BufRead>(reader: R) -> Result<Vec<(usize, usize)>, IoError> {
    let mut out = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if is_comment(&line) {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>, what: &str| -> Result<usize, IoError> {
            tok.ok_or_else(|| IoError::Parse {
                kind: "edge",
                line: lineno + 1,
                message: format!("missing {what}"),
            })?
            .parse()
            .map_err(|e| IoError::Parse {
                kind: "edge",
                line: lineno + 1,
                message: format!("bad {what}: {e}"),
            })
        };
        let s = parse(it.next(), "source")?;
        let t = parse(it.next(), "target")?;
        out.push((s, t));
    }
    Ok(out)
}

/// Streams `(node, attr, weight)` triples from an attribute reader.
pub fn parse_attributes<R: BufRead>(reader: R) -> Result<Vec<(usize, usize, f64)>, IoError> {
    let mut out = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if is_comment(&line) {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        if toks.len() < 2 || toks.len() > 3 {
            return Err(IoError::Parse {
                kind: "attribute",
                line: lineno + 1,
                message: format!("expected 'node attr [weight]', got {} tokens", toks.len()),
            });
        }
        let parse_idx = |tok: &str, what: &str| -> Result<usize, IoError> {
            tok.parse().map_err(|e| IoError::Parse {
                kind: "attribute",
                line: lineno + 1,
                message: format!("bad {what}: {e}"),
            })
        };
        let v = parse_idx(toks[0], "node")?;
        let r = parse_idx(toks[1], "attribute")?;
        let w = if toks.len() == 3 {
            toks[2].parse().map_err(|e| IoError::Parse {
                kind: "attribute",
                line: lineno + 1,
                message: format!("bad weight: {e}"),
            })?
        } else {
            1.0
        };
        out.push((v, r, w));
    }
    Ok(out)
}

/// Streams `node label [label ...]` lines from a label reader.
pub fn parse_labels<R: BufRead>(reader: R) -> Result<Vec<(usize, Vec<usize>)>, IoError> {
    let mut out = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if is_comment(&line) {
            continue;
        }
        let mut it = line.split_whitespace();
        let v: usize = it
            .next()
            .ok_or_else(|| IoError::Parse {
                kind: "label",
                line: lineno + 1,
                message: "empty line".into(),
            })?
            .parse()
            .map_err(|e| IoError::Parse {
                kind: "label",
                line: lineno + 1,
                message: format!("bad node: {e}"),
            })?;
        let mut labels = Vec::new();
        for tok in it {
            labels.push(tok.parse().map_err(|e| IoError::Parse {
                kind: "label",
                line: lineno + 1,
                message: format!("bad label: {e}"),
            })?);
        }
        out.push((v, labels));
    }
    Ok(out)
}

/// Loads an attributed graph from separate files.
///
/// `num_nodes`/`num_attributes` may be `None`, in which case they are
/// inferred as `1 + max index` seen across the files.
pub fn load_graph(
    edges_path: &Path,
    attrs_path: Option<&Path>,
    labels_path: Option<&Path>,
    num_nodes: Option<usize>,
    num_attributes: Option<usize>,
    undirected: bool,
) -> Result<AttributedGraph, IoError> {
    let edges = parse_edges(BufReader::new(File::open(edges_path)?))?;
    let attrs = match attrs_path {
        Some(p) => parse_attributes(BufReader::new(File::open(p)?))?,
        None => Vec::new(),
    };
    let labels = match labels_path {
        Some(p) => parse_labels(BufReader::new(File::open(p)?))?,
        None => Vec::new(),
    };

    let n = num_nodes.unwrap_or_else(|| {
        let me = edges.iter().map(|&(s, t)| s.max(t) + 1).max().unwrap_or(0);
        let ma = attrs.iter().map(|&(v, _, _)| v + 1).max().unwrap_or(0);
        let ml = labels.iter().map(|&(v, _)| v + 1).max().unwrap_or(0);
        me.max(ma).max(ml)
    });
    let d =
        num_attributes.unwrap_or_else(|| attrs.iter().map(|&(_, r, _)| r + 1).max().unwrap_or(0));

    let mut b = GraphBuilder::new(n, d);
    if undirected {
        b = b.undirected();
    }
    for (s, t) in edges {
        b.add_edge(s, t);
    }
    for (v, r, w) in attrs {
        b.add_attribute(v, r, w);
    }
    for (v, ls) in labels {
        for l in ls {
            b.add_label(v, l);
        }
    }
    Ok(b.build())
}

/// Writes the graph back out as the three text files.
pub fn save_graph(
    g: &AttributedGraph,
    edges_path: &Path,
    attrs_path: &Path,
    labels_path: &Path,
) -> Result<(), IoError> {
    let mut ew = BufWriter::new(File::create(edges_path)?);
    writeln!(ew, "# src dst")?;
    for (i, j, _) in g.adjacency().iter() {
        writeln!(ew, "{i} {j}")?;
    }
    ew.flush()?;

    let mut aw = BufWriter::new(File::create(attrs_path)?);
    writeln!(aw, "# node attr weight")?;
    for (v, r, w) in g.attributes().iter() {
        writeln!(aw, "{v} {r} {w}")?;
    }
    aw.flush()?;

    let mut lw = BufWriter::new(File::create(labels_path)?);
    writeln!(lw, "# node labels...")?;
    for v in 0..g.num_nodes() {
        let ls = g.labels_of(v);
        if !ls.is_empty() {
            let body: Vec<String> = ls.iter().map(|l| l.to_string()).collect();
            writeln!(lw, "{v} {}", body.join(" "))?;
        }
    }
    lw.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parse_edges_with_comments() {
        let text = "# header\n0 1\n\n% other comment\n2 0\n";
        let e = parse_edges(Cursor::new(text)).unwrap();
        assert_eq!(e, vec![(0, 1), (2, 0)]);
    }

    #[test]
    fn parse_edges_rejects_garbage() {
        let err = parse_edges(Cursor::new("0 x\n")).unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("line 1"), "{msg}");
    }

    #[test]
    fn parse_attributes_defaults_weight() {
        let text = "0 3\n1 2 0.5\n";
        let a = parse_attributes(Cursor::new(text)).unwrap();
        assert_eq!(a, vec![(0, 3, 1.0), (1, 2, 0.5)]);
    }

    #[test]
    fn parse_attributes_arity_checked() {
        assert!(parse_attributes(Cursor::new("0 1 2 3\n")).is_err());
        assert!(parse_attributes(Cursor::new("0\n")).is_err());
    }

    #[test]
    fn parse_labels_multi() {
        let l = parse_labels(Cursor::new("3 0 2 5\n1 4\n")).unwrap();
        assert_eq!(l, vec![(3, vec![0, 2, 5]), (1, vec![4])]);
    }

    #[test]
    fn roundtrip_through_files() {
        let dir = std::env::temp_dir().join(format!("pane_io_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (ep, ap, lp) = (dir.join("e.txt"), dir.join("a.txt"), dir.join("l.txt"));

        let mut b = GraphBuilder::new(4, 3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(3, 0);
        b.add_attribute(0, 0, 1.0);
        b.add_attribute(2, 1, 2.5);
        b.add_label(0, 1);
        b.add_label(2, 0);
        b.add_label(2, 1);
        let g = b.build();

        save_graph(&g, &ep, &ap, &lp).unwrap();
        let g2 = load_graph(&ep, Some(&ap), Some(&lp), Some(4), Some(3), false).unwrap();
        assert_eq!(g2.num_edges(), 3);
        assert_eq!(g2.attributes().get(2, 1), 2.5);
        assert_eq!(g2.labels_of(2), &[0, 1]);

        // Inference of n and d from content.
        let g3 = load_graph(&ep, Some(&ap), Some(&lp), None, None, false).unwrap();
        assert_eq!(g3.num_nodes(), 4);
        assert_eq!(g3.num_attributes(), 2); // max attr index 1 -> d=2

        std::fs::remove_dir_all(&dir).ok();
    }
}
