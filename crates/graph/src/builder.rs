//! Incremental construction of [`AttributedGraph`]s.

use crate::graph::AttributedGraph;
use pane_sparse::{CooMatrix, CsrBuilder, MergeRule};

/// Builder accumulating edges, attribute associations and labels.
///
/// Duplicate edges are collapsed to weight 1 (the adjacency is binary per
/// §2.1: `A[v_i, v_j] = 1` iff the edge exists); duplicate node–attribute
/// associations sum their weights; self-loops are allowed (they are
/// meaningful for the random-walk model) but can be stripped with
/// [`GraphBuilder::forbid_self_loops`].
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    d: usize,
    edges: Vec<(u32, u32)>,
    /// Weighted edges, kept separately; mixing weighted and unweighted
    /// edges is allowed (unweighted count as weight 1).
    weighted_edges: Vec<(u32, u32, f64)>,
    attrs: CooMatrix,
    labels: Vec<Vec<u32>>,
    num_labels: usize,
    undirected: bool,
    forbid_self_loops: bool,
}

impl GraphBuilder {
    /// Builder for a graph with `n` nodes and `d` attributes.
    pub fn new(n: usize, d: usize) -> Self {
        Self {
            n,
            d,
            edges: Vec::new(),
            weighted_edges: Vec::new(),
            attrs: CooMatrix::new(n, d),
            labels: vec![Vec::new(); n],
            num_labels: 0,
            undirected: false,
            forbid_self_loops: false,
        }
    }

    /// Declares the graph undirected: every added edge will also insert its
    /// reverse at [`build`](Self::build) time.
    pub fn undirected(mut self) -> Self {
        self.undirected = true;
        self
    }

    /// Drops self-loops instead of keeping them.
    pub fn forbid_self_loops(mut self) -> Self {
        self.forbid_self_loops = true;
        self
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of attributes.
    pub fn num_attributes(&self) -> usize {
        self.d
    }

    /// Adds the directed edge `(src, dst)`.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, src: usize, dst: usize) {
        assert!(
            src < self.n && dst < self.n,
            "edge ({src},{dst}) out of bounds (n={})",
            self.n
        );
        if self.forbid_self_loops && src == dst {
            return;
        }
        self.edges.push((src as u32, dst as u32));
    }

    /// Adds the directed edge `(src, dst)` with weight `w` — an extension
    /// beyond the paper's binary adjacency (§2.1); the random-walk model
    /// generalizes naturally (transition probabilities follow the weights).
    /// Duplicate weighted edges sum their weights.
    ///
    /// # Panics
    /// Panics if out of range or `w` is not finite/positive.
    pub fn add_weighted_edge(&mut self, src: usize, dst: usize, w: f64) {
        assert!(
            src < self.n && dst < self.n,
            "edge ({src},{dst}) out of bounds (n={})",
            self.n
        );
        assert!(
            w.is_finite() && w > 0.0,
            "edge weight must be finite and positive, got {w}"
        );
        if self.forbid_self_loops && src == dst {
            return;
        }
        self.weighted_edges.push((src as u32, dst as u32, w));
    }

    /// Associates node `v` with attribute `r` at weight `w` (summed over
    /// duplicates).
    ///
    /// # Panics
    /// Panics if out of range or `w` is not finite/positive.
    pub fn add_attribute(&mut self, v: usize, r: usize, w: f64) {
        assert!(
            w.is_finite() && w > 0.0,
            "attribute weight must be finite and positive, got {w}"
        );
        self.attrs.push(v, r, w);
    }

    /// Adds a label to node `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range or `label` exceeds the u32 id space.
    pub fn add_label(&mut self, v: usize, label: usize) {
        assert!(v < self.n, "label target {v} out of bounds");
        assert!(
            label <= u32::MAX as usize,
            "label id {label} exceeds u32 index space"
        );
        let l = label as u32;
        if !self.labels[v].contains(&l) {
            self.labels[v].push(l);
        }
        self.num_labels = self.num_labels.max(label + 1);
    }

    /// Finalizes into an [`AttributedGraph`].
    pub fn build(mut self) -> AttributedGraph {
        // Deduplicate unweighted edges by sorting; those entries are binary.
        let mut edges = std::mem::take(&mut self.edges);
        if self.undirected {
            let reversed: Vec<(u32, u32)> = edges.iter().map(|&(s, t)| (t, s)).collect();
            edges.extend(reversed);
        }
        edges.sort_unstable();
        edges.dedup();
        let weighted = std::mem::take(&mut self.weighted_edges);
        let undirected = self.undirected;
        // The accumulated edge vectors are a replayable source: stream them
        // straight into the CSR arrays instead of copying into a COO
        // triplet buffer first. Weighted duplicates sum in push order.
        let adjacency = CsrBuilder::from_source(self.n, self.n, MergeRule::Sum, |emit| {
            for &(s, t) in &edges {
                emit(s as usize, t as usize, 1.0);
            }
            for &(s, t, w) in &weighted {
                emit(s as usize, t as usize, w);
                if undirected {
                    emit(t as usize, s as usize, w);
                }
            }
        });
        let attributes = self.attrs.to_csr();
        for row in &mut self.labels {
            row.sort_unstable();
        }
        AttributedGraph::from_parts(
            adjacency,
            attributes,
            self.labels,
            self.num_labels,
            self.undirected,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_edges_and_sum_attrs() {
        let mut b = GraphBuilder::new(3, 2);
        b.add_edge(0, 1);
        b.add_edge(0, 1); // duplicate
        b.add_edge(1, 2);
        b.add_attribute(0, 1, 0.5);
        b.add_attribute(0, 1, 0.25);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.adjacency().get(0, 1), 1.0);
        assert_eq!(g.attributes().get(0, 1), 0.75);
    }

    #[test]
    fn undirected_inserts_reverses() {
        let mut b = GraphBuilder::new(3, 1).undirected();
        b.add_edge(0, 1);
        b.add_edge(1, 0); // explicit reverse must not double-count
        b.add_edge(1, 2);
        let g = b.build();
        assert_eq!(g.num_edges(), 4);
        assert!(g.is_undirected());
        assert_eq!(g.adjacency().get(2, 1), 1.0);
    }

    #[test]
    fn self_loop_policy() {
        let mut keep = GraphBuilder::new(2, 1);
        keep.add_edge(0, 0);
        assert_eq!(keep.build().num_edges(), 1);
        let mut drop = GraphBuilder::new(2, 1).forbid_self_loops();
        drop.add_edge(0, 0);
        assert_eq!(drop.build().num_edges(), 0);
    }

    #[test]
    fn labels_dedup_and_count() {
        let mut b = GraphBuilder::new(2, 1);
        b.add_label(0, 3);
        b.add_label(0, 3);
        b.add_label(1, 0);
        let g = b.build();
        assert_eq!(g.labels_of(0), &[3]);
        assert_eq!(g.num_labels(), 4); // ids 0..=3
    }

    #[test]
    fn weighted_edges_sum_and_mix() {
        let mut b = GraphBuilder::new(3, 1);
        b.add_weighted_edge(0, 1, 2.0);
        b.add_weighted_edge(0, 1, 0.5); // summed
        b.add_edge(1, 2); // binary
        let g = b.build();
        assert_eq!(g.adjacency().get(0, 1), 2.5);
        assert_eq!(g.adjacency().get(1, 2), 1.0);
        // Walk matrix follows the weights.
        let p = g.random_walk_matrix(crate::graph::DanglingPolicy::SelfLoop);
        assert!((p.get(0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_undirected_mirrors() {
        let mut b = GraphBuilder::new(2, 1).undirected();
        b.add_weighted_edge(0, 1, 3.0);
        let g = b.build();
        assert_eq!(g.adjacency().get(0, 1), 3.0);
        assert_eq!(g.adjacency().get(1, 0), 3.0);
    }

    #[test]
    #[should_panic(expected = "weight")]
    fn weighted_edge_weight_checked() {
        let mut b = GraphBuilder::new(2, 1);
        b.add_weighted_edge(0, 1, f64::NAN);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn edge_bounds_checked() {
        let mut b = GraphBuilder::new(2, 1);
        b.add_edge(0, 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn attribute_weight_checked() {
        let mut b = GraphBuilder::new(2, 1);
        b.add_attribute(0, 0, 0.0);
    }
}
