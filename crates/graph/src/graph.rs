//! The attributed graph type and its derived matrices.

use pane_sparse::CsrMatrix;

/// How the random-walk matrix `P = D⁻¹A` treats nodes with no out-edges.
///
/// The paper defines `P = D⁻¹A` without addressing out-degree-0 nodes (its
/// datasets have few). The choice matters for Lemma 3.1, which needs `P`
/// sub-stochastic:
///
/// * [`SelfLoop`](DanglingPolicy::SelfLoop) (default) — a walk at a dangling
///   node stays there until it terminates; `P` stays row-stochastic, which
///   matches the RWR convention of Tong et al. \[38\] and keeps every walk
///   well-defined.
/// * [`Absorb`](DanglingPolicy::Absorb) — the row stays zero; walk mass
///   reaching the node and not terminating vanishes (the walk "falls off").
/// * [`UniformJump`](DanglingPolicy::UniformJump) — the walk jumps to a
///   uniformly random node (PageRank-style). Dense rows are materialized
///   sparsely only for the affected nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DanglingPolicy {
    /// Stay in place (row-stochastic; default).
    #[default]
    SelfLoop,
    /// Zero row (sub-stochastic).
    Absorb,
    /// Jump to a uniformly random node.
    UniformJump,
}

/// An attributed, directed graph `G = (V, E_V, R, E_R)` with optional node
/// labels.
///
/// Construction goes through [`crate::GraphBuilder`] (or the loaders in
/// [`crate::io`] / generators in [`crate::gen`]), which validate inputs and
/// deduplicate.
#[derive(Debug, Clone)]
pub struct AttributedGraph {
    /// `n × n` adjacency; `adj[i][j] = 1` iff edge `(v_i, v_j) ∈ E_V`.
    adjacency: CsrMatrix,
    /// `n × d` attribute matrix; `attr[i][j] = w_{i,j}` for `(v_i, r_j, w) ∈ E_R`.
    attributes: CsrMatrix,
    /// Per-node label sets (possibly empty), used for node classification.
    labels: Vec<Vec<u32>>,
    /// Total number of distinct labels (`|L|` in Table 3).
    num_labels: usize,
    /// Whether the graph was declared undirected (edges were symmetrized).
    undirected: bool,
}

impl AttributedGraph {
    /// Assembles a graph from pre-built parts. Intended for
    /// [`crate::GraphBuilder`]; invariants are debug-asserted.
    pub(crate) fn from_parts(
        adjacency: CsrMatrix,
        attributes: CsrMatrix,
        labels: Vec<Vec<u32>>,
        num_labels: usize,
        undirected: bool,
    ) -> Self {
        debug_assert_eq!(adjacency.rows(), adjacency.cols());
        debug_assert_eq!(adjacency.rows(), attributes.rows());
        debug_assert_eq!(labels.len(), adjacency.rows());
        Self {
            adjacency,
            attributes,
            labels,
            num_labels,
            undirected,
        }
    }

    /// Number of nodes `n`.
    pub fn num_nodes(&self) -> usize {
        self.adjacency.rows()
    }

    /// Number of directed edges `m` (an undirected input counts twice).
    pub fn num_edges(&self) -> usize {
        self.adjacency.nnz()
    }

    /// Number of attributes `d`.
    pub fn num_attributes(&self) -> usize {
        self.attributes.cols()
    }

    /// Number of node–attribute associations `|E_R|`.
    pub fn num_attribute_entries(&self) -> usize {
        self.attributes.nnz()
    }

    /// Number of distinct labels `|L|`.
    pub fn num_labels(&self) -> usize {
        self.num_labels
    }

    /// Whether the graph was built as undirected.
    pub fn is_undirected(&self) -> bool {
        self.undirected
    }

    /// The adjacency matrix `A`.
    pub fn adjacency(&self) -> &CsrMatrix {
        &self.adjacency
    }

    /// The attribute matrix `R ∈ R^{n×d}`.
    pub fn attributes(&self) -> &CsrMatrix {
        &self.attributes
    }

    /// Labels of node `v`.
    pub fn labels_of(&self, v: usize) -> &[u32] {
        &self.labels[v]
    }

    /// All per-node label sets.
    pub fn labels(&self) -> &[Vec<u32>] {
        &self.labels
    }

    /// Out-degree of node `v`.
    pub fn out_degree(&self, v: usize) -> usize {
        self.adjacency.row_nnz(v)
    }

    /// Out-neighbors of `v` with edge weights.
    pub fn out_neighbors(&self, v: usize) -> (&[u32], &[f64]) {
        self.adjacency.row(v)
    }

    /// Attributes of `v` with weights.
    pub fn node_attributes(&self, v: usize) -> (&[u32], &[f64]) {
        self.attributes.row(v)
    }

    /// The random-walk matrix `P = D⁻¹A` under the given dangling policy.
    pub fn random_walk_matrix(&self, policy: DanglingPolicy) -> CsrMatrix {
        let n = self.num_nodes();
        let sums = self.adjacency.row_sums();
        match policy {
            DanglingPolicy::Absorb => self.adjacency.normalize_rows(),
            DanglingPolicy::SelfLoop => {
                let dangling: Vec<usize> = (0..n).filter(|&i| sums[i] == 0.0).collect();
                if dangling.is_empty() {
                    return self.adjacency.normalize_rows();
                }
                // The adjacency is itself a replayable triplet source:
                // stream the scaled entries plus the patched dangling rows
                // straight into the CSR arrays, no triplet buffer.
                let adj = &self.adjacency;
                pane_sparse::CsrBuilder::from_source(n, n, pane_sparse::MergeRule::Sum, |emit| {
                    for (i, j, v) in adj.iter() {
                        emit(i, j, v / sums[i]);
                    }
                    for &i in &dangling {
                        emit(i, i, 1.0);
                    }
                })
            }
            DanglingPolicy::UniformJump => {
                let dangling: Vec<usize> = (0..n).filter(|&i| sums[i] == 0.0).collect();
                if dangling.is_empty() {
                    return self.adjacency.normalize_rows();
                }
                let adj = &self.adjacency;
                let unif = 1.0 / n as f64;
                pane_sparse::CsrBuilder::from_source(n, n, pane_sparse::MergeRule::Sum, |emit| {
                    for (i, j, v) in adj.iter() {
                        emit(i, j, v / sums[i]);
                    }
                    for &i in &dangling {
                        for j in 0..n {
                            emit(i, j, unif);
                        }
                    }
                })
            }
        }
    }

    /// Row-normalized attribute matrix `R_r`: `R_r[v, r] = R[v, r] / Σ_r R[v, r]`
    /// — the probability that a forward walk terminating at `v` picks
    /// attribute `r` (Eq. 1 / §2.2). Attribute-less nodes keep a zero row;
    /// APMI's recurrence then realizes the paper's footnote-1 restart rule.
    pub fn attr_row_normalized(&self) -> CsrMatrix {
        self.attributes.normalize_rows()
    }

    /// Column-normalized attribute matrix `R_c`: `R_c[v, r] = R[v, r] / Σ_v R[v, r]`
    /// — the probability that a backward walk from attribute `r` starts at
    /// node `v` (Eq. 1 / §2.2).
    pub fn attr_col_normalized(&self) -> CsrMatrix {
        self.attributes.normalize_cols()
    }

    /// Returns the symmetrized graph (every edge doubled in both
    /// directions), per §2.1: "if G is undirected, then we treat each edge
    /// `(v_i, v_j)` as a pair of directed edges".
    pub fn symmetrize(&self) -> AttributedGraph {
        let n = self.num_nodes();
        let me = &self.adjacency;
        let adj = pane_sparse::CsrBuilder::from_source(n, n, pane_sparse::MergeRule::Sum, |emit| {
            for (i, j, v) in me.iter() {
                emit(i, j, v);
                // Add the reverse edge unless it already exists (avoids
                // summing duplicates; preserves the weight of the forward
                // direction).
                if me.get(j, i) == 0.0 {
                    emit(j, i, v);
                }
            }
        });
        AttributedGraph::from_parts(
            adj,
            self.attributes.clone(),
            self.labels.clone(),
            self.num_labels,
            true,
        )
    }

    /// Summary line in the spirit of Table 3.
    pub fn stats(&self) -> GraphStats {
        GraphStats {
            nodes: self.num_nodes(),
            edges: self.num_edges(),
            attributes: self.num_attributes(),
            attribute_entries: self.num_attribute_entries(),
            labels: self.num_labels,
        }
    }
}

/// Dataset statistics (the columns of Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphStats {
    /// `|V|`.
    pub nodes: usize,
    /// `|E_V|`.
    pub edges: usize,
    /// `|R|`.
    pub attributes: usize,
    /// `|E_R|`.
    pub attribute_entries: usize,
    /// `|L|`.
    pub labels: usize,
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "|V|={} |E_V|={} |R|={} |E_R|={} |L|={}",
            self.nodes, self.edges, self.attributes, self.attribute_entries, self.labels
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn line_graph() -> AttributedGraph {
        // v0 -> v1 -> v2, v2 dangling; attrs: v0:r0, v1:r0+r1.
        let mut b = GraphBuilder::new(3, 2);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_attribute(0, 0, 1.0);
        b.add_attribute(1, 0, 2.0);
        b.add_attribute(1, 1, 2.0);
        b.build()
    }

    #[test]
    fn counts() {
        let g = line_graph();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_attributes(), 2);
        assert_eq!(g.num_attribute_entries(), 3);
        assert_eq!(g.out_degree(0), 1);
        assert_eq!(g.out_degree(2), 0);
    }

    #[test]
    fn walk_matrix_self_loop() {
        let g = line_graph();
        let p = g.random_walk_matrix(DanglingPolicy::SelfLoop);
        assert_eq!(p.get(0, 1), 1.0);
        assert_eq!(p.get(2, 2), 1.0, "dangling node gets a self loop");
        assert!(p.row_sums().iter().all(|&s| (s - 1.0).abs() < 1e-12));
    }

    #[test]
    fn walk_matrix_absorb() {
        let g = line_graph();
        let p = g.random_walk_matrix(DanglingPolicy::Absorb);
        assert_eq!(p.row_sums()[2], 0.0);
    }

    #[test]
    fn walk_matrix_uniform_jump() {
        let g = line_graph();
        let p = g.random_walk_matrix(DanglingPolicy::UniformJump);
        let s = p.row_sums();
        assert!((s[2] - 1.0).abs() < 1e-12);
        assert!((p.get(2, 0) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn attr_normalizations() {
        let g = line_graph();
        let rr = g.attr_row_normalized();
        assert_eq!(rr.get(0, 0), 1.0);
        assert_eq!(rr.get(1, 0), 0.5);
        assert_eq!(rr.get(1, 1), 0.5);
        // node 2 has no attributes: zero row.
        assert_eq!(rr.row_sums()[2], 0.0);
        let rc = g.attr_col_normalized();
        assert!((rc.get(0, 0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((rc.get(1, 0) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(rc.get(1, 1), 1.0);
    }

    #[test]
    fn symmetrize_doubles_edges() {
        let g = line_graph();
        let u = g.symmetrize();
        assert!(u.is_undirected());
        assert_eq!(u.num_edges(), 4);
        assert_eq!(u.adjacency().get(1, 0), 1.0);
        assert_eq!(u.adjacency().get(2, 1), 1.0);
        // Symmetrizing twice is idempotent.
        assert_eq!(u.symmetrize().num_edges(), 4);
    }

    #[test]
    fn stats_display() {
        let g = line_graph();
        let s = g.stats();
        assert_eq!(s.nodes, 3);
        assert_eq!(format!("{s}"), "|V|=3 |E_V|=2 |R|=2 |E_R|=3 |L|=0");
    }
}
