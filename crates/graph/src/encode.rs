//! One-hot encoding of raw attribute tables.
//!
//! §2.1 of the paper: *"for a categorical attribute such as marital status,
//! we first apply a pre-processing step that transforms the attribute into a
//! set of binary ones through one-hot encoding."* This module performs that
//! step: given a table whose columns are declared categorical or numeric, it
//! produces the final attribute index space and the weighted node–attribute
//! associations to feed a [`crate::GraphBuilder`].

use std::collections::BTreeMap;

/// Declared type of a raw attribute column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnKind {
    /// Values are category names; each distinct value becomes one binary
    /// attribute with weight 1.
    Categorical,
    /// Values are non-negative numbers used directly as weights; the column
    /// maps to a single attribute. Zero/empty values produce no association.
    Numeric,
}

/// A raw value in the input table.
#[derive(Debug, Clone, PartialEq)]
pub enum RawValue {
    /// Missing value: produces no association.
    Missing,
    /// A category name (for [`ColumnKind::Categorical`]).
    Category(String),
    /// A number (for [`ColumnKind::Numeric`]); must be finite and `>= 0`.
    Number(f64),
}

/// Result of encoding: the attribute dictionary and the associations.
#[derive(Debug, Clone)]
pub struct Encoded {
    /// Total number of encoded attributes `d`.
    pub num_attributes: usize,
    /// Human-readable name per encoded attribute (e.g. `"city=Paris"`).
    pub attribute_names: Vec<String>,
    /// `(node, attribute, weight)` triples, weight > 0.
    pub associations: Vec<(usize, usize, f64)>,
}

/// One-hot-encodes a node × column table.
///
/// `columns[c]` describes column `c`; `table[v][c]` is node `v`'s raw value
/// in that column. Column names are used to build attribute names.
///
/// # Panics
/// Panics on ragged tables, on a [`RawValue::Category`] in a numeric column
/// (and vice versa), or on negative/non-finite numbers.
pub fn one_hot_encode(
    column_names: &[&str],
    columns: &[ColumnKind],
    table: &[Vec<RawValue>],
) -> Encoded {
    assert_eq!(
        column_names.len(),
        columns.len(),
        "column name/kind count mismatch"
    );
    for (v, row) in table.iter().enumerate() {
        assert_eq!(row.len(), columns.len(), "row {v} has wrong arity");
    }

    // First pass: build the dictionary (deterministic order: column order,
    // then lexicographic category order).
    let mut attribute_names: Vec<String> = Vec::new();
    let mut col_base: Vec<usize> = Vec::with_capacity(columns.len());
    let mut cat_maps: Vec<BTreeMap<String, usize>> = Vec::with_capacity(columns.len());
    for (c, kind) in columns.iter().enumerate() {
        col_base.push(attribute_names.len());
        match kind {
            ColumnKind::Numeric => {
                attribute_names.push(column_names[c].to_string());
                cat_maps.push(BTreeMap::new());
            }
            ColumnKind::Categorical => {
                let mut cats: BTreeMap<String, usize> = BTreeMap::new();
                for row in table {
                    if let RawValue::Category(s) = &row[c] {
                        cats.entry(s.clone()).or_insert(0);
                    }
                }
                for (i, (name, slot)) in cats.iter_mut().enumerate() {
                    *slot = i;
                    attribute_names.push(format!("{}={}", column_names[c], name));
                }
                cat_maps.push(cats);
            }
        }
    }

    // Second pass: emit associations.
    let mut associations = Vec::new();
    for (v, row) in table.iter().enumerate() {
        for (c, kind) in columns.iter().enumerate() {
            match (&row[c], kind) {
                (RawValue::Missing, _) => {}
                (RawValue::Number(x), ColumnKind::Numeric) => {
                    assert!(
                        x.is_finite() && *x >= 0.0,
                        "numeric value must be finite and >= 0, got {x}"
                    );
                    if *x > 0.0 {
                        associations.push((v, col_base[c], *x));
                    }
                }
                (RawValue::Category(s), ColumnKind::Categorical) => {
                    let idx = cat_maps[c][s];
                    associations.push((v, col_base[c] + idx, 1.0));
                }
                (val, kind) => panic!("column {c} declared {kind:?} but node {v} holds {val:?}"),
            }
        }
    }

    Encoded {
        num_attributes: attribute_names.len(),
        attribute_names,
        associations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cat(s: &str) -> RawValue {
        RawValue::Category(s.to_string())
    }

    #[test]
    fn mixed_table() {
        let table = vec![
            vec![cat("red"), RawValue::Number(2.0)],
            vec![cat("blue"), RawValue::Number(0.0)],
            vec![RawValue::Missing, RawValue::Number(1.5)],
        ];
        let enc = one_hot_encode(
            &["color", "score"],
            &[ColumnKind::Categorical, ColumnKind::Numeric],
            &table,
        );
        assert_eq!(enc.num_attributes, 3); // blue, red, score
        assert_eq!(
            enc.attribute_names,
            vec!["color=blue", "color=red", "score"]
        );
        // node 0: red (idx 1), score=2
        assert!(enc.associations.contains(&(0, 1, 1.0)));
        assert!(enc.associations.contains(&(0, 2, 2.0)));
        // node 1: blue only (score 0 dropped)
        assert!(enc.associations.contains(&(1, 0, 1.0)));
        assert_eq!(enc.associations.iter().filter(|a| a.0 == 1).count(), 1);
        // node 2: score only
        assert!(enc.associations.contains(&(2, 2, 1.5)));
    }

    #[test]
    fn deterministic_category_order() {
        let t1 = vec![vec![cat("b")], vec![cat("a")]];
        let t2 = vec![vec![cat("a")], vec![cat("b")]];
        let e1 = one_hot_encode(&["x"], &[ColumnKind::Categorical], &t1);
        let e2 = one_hot_encode(&["x"], &[ColumnKind::Categorical], &t2);
        assert_eq!(e1.attribute_names, e2.attribute_names);
    }

    #[test]
    #[should_panic(expected = "declared")]
    fn kind_mismatch_detected() {
        let table = vec![vec![RawValue::Number(1.0)]];
        one_hot_encode(&["x"], &[ColumnKind::Categorical], &table);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_number_rejected() {
        let table = vec![vec![RawValue::Number(-1.0)]];
        one_hot_encode(&["x"], &[ColumnKind::Numeric], &table);
    }
}
