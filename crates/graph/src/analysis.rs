//! Structural diagnostics of attributed graphs: degree distributions,
//! weakly connected components, and attribute coverage.
//!
//! Used by the CLI's `stats` command and by the dataset-zoo documentation
//! to check that generated graphs have the heavy-tailed, mostly-connected
//! shape of the paper's datasets.

use crate::graph::AttributedGraph;

/// Degree distribution summary.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Minimum out-degree.
    pub min: usize,
    /// Maximum out-degree.
    pub max: usize,
    /// Mean out-degree.
    pub mean: f64,
    /// Median out-degree.
    pub median: usize,
    /// Fraction of total out-degree held by the top 1% of nodes — a quick
    /// heavy-tail indicator (≫ 0.01 for power-law graphs).
    pub top1pct_share: f64,
}

/// Computes out-degree statistics.
pub fn degree_stats(g: &AttributedGraph) -> DegreeStats {
    let n = g.num_nodes();
    if n == 0 {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
            median: 0,
            top1pct_share: 0.0,
        };
    }
    let mut degs: Vec<usize> = (0..n).map(|v| g.out_degree(v)).collect();
    degs.sort_unstable();
    let total: usize = degs.iter().sum();
    let top = (n / 100).max(1);
    let top_sum: usize = degs[n - top..].iter().sum();
    DegreeStats {
        min: degs[0],
        max: degs[n - 1],
        mean: total as f64 / n as f64,
        median: degs[n / 2],
        top1pct_share: if total == 0 {
            0.0
        } else {
            top_sum as f64 / total as f64
        },
    }
}

/// Union–find over node ids.
struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
        }
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        match self.rank[ra as usize].cmp(&self.rank[rb as usize]) {
            std::cmp::Ordering::Less => self.parent[ra as usize] = rb,
            std::cmp::Ordering::Greater => self.parent[rb as usize] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb as usize] = ra;
                self.rank[ra as usize] += 1;
            }
        }
    }
}

/// Weakly connected components: returns `(component_id_per_node,
/// component_sizes)` with ids in `0..sizes.len()`, ordered by first
/// appearance.
pub fn weakly_connected_components(g: &AttributedGraph) -> (Vec<u32>, Vec<usize>) {
    let n = g.num_nodes();
    let mut uf = UnionFind::new(n);
    for (i, j, _) in g.adjacency().iter() {
        uf.union(i as u32, j as u32);
    }
    let mut ids = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    for v in 0..n {
        let root = uf.find(v as u32) as usize;
        if ids[root] == u32::MAX {
            ids[root] = sizes.len() as u32;
            sizes.push(0);
        }
        let id = ids[root];
        if v != root {
            ids[v] = id;
        }
        sizes[id as usize] += 1;
    }
    (ids, sizes)
}

/// Fraction of nodes in the largest weakly connected component.
pub fn largest_component_fraction(g: &AttributedGraph) -> f64 {
    let n = g.num_nodes();
    if n == 0 {
        return 0.0;
    }
    let (_, sizes) = weakly_connected_components(g);
    *sizes.iter().max().unwrap_or(&0) as f64 / n as f64
}

/// Attribute coverage: fraction of nodes with at least one attribute, and
/// fraction of attributes carried by at least one node.
pub fn attribute_coverage(g: &AttributedGraph) -> (f64, f64) {
    let n = g.num_nodes();
    let d = g.num_attributes();
    if n == 0 || d == 0 {
        return (0.0, 0.0);
    }
    let covered_nodes = (0..n)
        .filter(|&v| !g.node_attributes(v).0.is_empty())
        .count();
    let mut attr_seen = vec![false; d];
    for (_, r, _) in g.attributes().iter() {
        attr_seen[r] = true;
    }
    let covered_attrs = attr_seen.iter().filter(|&&b| b).count();
    (
        covered_nodes as f64 / n as f64,
        covered_attrs as f64 / d as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::gen::{generate_sbm, SbmConfig};

    fn two_islands() -> AttributedGraph {
        // {0,1,2} cycle and {3,4} pair; node 5 isolated.
        let mut b = GraphBuilder::new(6, 2);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 0);
        b.add_edge(3, 4);
        b.add_attribute(0, 0, 1.0);
        b.add_attribute(3, 1, 1.0);
        b.build()
    }

    #[test]
    fn components_found() {
        let g = two_islands();
        let (ids, sizes) = weakly_connected_components(&g);
        assert_eq!(sizes.len(), 3);
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2, 3]);
        // Same component for the cycle.
        assert_eq!(ids[0], ids[1]);
        assert_eq!(ids[1], ids[2]);
        assert_ne!(ids[0], ids[3]);
        assert_eq!(ids[3], ids[4]);
        assert!((largest_component_fraction(&g) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degree_stats_hand_checked() {
        let g = two_islands();
        let s = degree_stats(&g);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1);
        assert!((s.mean - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn coverage_hand_checked() {
        let g = two_islands();
        let (nodes, attrs) = attribute_coverage(&g);
        assert!((nodes - 2.0 / 6.0).abs() < 1e-12);
        assert!((attrs - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sbm_graphs_are_mostly_connected_and_heavy_tailed() {
        let g = generate_sbm(&SbmConfig {
            nodes: 1500,
            avg_out_degree: 8.0,
            seed: 5,
            ..Default::default()
        });
        assert!(
            largest_component_fraction(&g) > 0.85,
            "generator output too fragmented"
        );
        let s = degree_stats(&g);
        assert!(
            s.top1pct_share > 0.03,
            "degrees not heavy-tailed: {}",
            s.top1pct_share
        );
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = GraphBuilder::new(0, 0).build();
        let (ids, sizes) = weakly_connected_components(&g);
        assert!(ids.is_empty() && sizes.is_empty());
        assert_eq!(largest_component_fraction(&g), 0.0);
        assert_eq!(degree_stats(&g).mean, 0.0);
    }
}
