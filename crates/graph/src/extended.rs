//! The **extended graph** `G` of §2.1 / Figure 1: the input graph plus one
//! extra node per attribute, with a pair of opposite weighted edges for
//! every node–attribute association.
//!
//! PANE never materializes this graph — APMI operates on `P`, `R_r`, `R_c`
//! directly — but the extended graph is the paper's conceptual object, and
//! building it explicitly lets tests verify that the two-phase walk
//! (node-walk, then one attribute hop) matches a plain random walk on the
//! extended structure. It is also handy for exporting to visualization
//! tools.

use crate::graph::AttributedGraph;
use pane_sparse::{CsrBuilder, CsrMatrix, MergeRule};

/// The extended graph: nodes `0..n` are the original nodes, nodes
/// `n..n+d` are the attribute nodes.
pub struct ExtendedGraph {
    /// `(n+d) × (n+d)` weighted adjacency.
    pub adjacency: CsrMatrix,
    /// Number of original nodes `n`.
    pub num_nodes: usize,
    /// Number of attribute nodes `d`.
    pub num_attributes: usize,
}

impl ExtendedGraph {
    /// Builds the extended graph: original edges keep weight 1 (or their
    /// weight), and each association `(v, r, w)` adds `v → n+r` and
    /// `n+r → v`, both with weight `w` (§2.1: "a pair of edges with
    /// opposing directions ... with an edge weight w").
    pub fn build(g: &AttributedGraph) -> Self {
        let n = g.num_nodes();
        let d = g.num_attributes();
        let total = n + d;
        // `A` and `R` are replayable sources; the `[A‖R‖Rᵀ]` block matrix
        // streams straight into its CSR arrays without a triplet buffer.
        let adjacency = CsrBuilder::from_source(total, total, MergeRule::Sum, |emit| {
            for (i, j, w) in g.adjacency().iter() {
                emit(i, j, w);
            }
            for (v, r, w) in g.attributes().iter() {
                emit(v, n + r, w);
                emit(n + r, v, w);
            }
        });
        Self {
            adjacency,
            num_nodes: n,
            num_attributes: d,
        }
    }

    /// Global index of attribute `r`.
    pub fn attribute_node(&self, r: usize) -> usize {
        assert!(r < self.num_attributes);
        self.num_nodes + r
    }

    /// Whether global index `x` is an attribute node.
    pub fn is_attribute_node(&self, x: usize) -> bool {
        x >= self.num_nodes
    }

    /// Total node count `n + d`.
    pub fn total_nodes(&self) -> usize {
        self.num_nodes + self.num_attributes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::figure1_graph;

    #[test]
    fn structure_matches_figure_1() {
        let g = figure1_graph();
        let ext = ExtendedGraph::build(&g);
        assert_eq!(ext.total_nodes(), 6 + 3);
        // Original edges preserved.
        for (i, j, _) in g.adjacency().iter() {
            assert!(ext.adjacency.get(i, j) > 0.0, "lost edge ({i},{j})");
        }
        // Attribute associations become opposite edge pairs.
        for (v, r, w) in g.attributes().iter() {
            let a = ext.attribute_node(r);
            assert_eq!(ext.adjacency.get(v, a), w);
            assert_eq!(ext.adjacency.get(a, v), w);
        }
        // Edge count: |E_V| + 2·|E_R|.
        assert_eq!(
            ext.adjacency.nnz(),
            g.num_edges() + 2 * g.num_attribute_entries()
        );
    }

    #[test]
    fn attribute_node_classification() {
        let g = figure1_graph();
        let ext = ExtendedGraph::build(&g);
        assert!(!ext.is_attribute_node(5));
        assert!(ext.is_attribute_node(6));
        assert_eq!(ext.attribute_node(0), 6);
    }

    /// The terminal-then-one-attribute-hop distribution of the paper's
    /// forward walk equals, on the extended graph, the distribution of
    /// "walk on original nodes, then take one weighted step restricted to
    /// attribute nodes". This pins down the extended graph's edge weights.
    #[test]
    fn one_hop_attribute_step_matches_rr() {
        let g = figure1_graph();
        let ext = ExtendedGraph::build(&g);
        let rr = g.attr_row_normalized();
        let n = g.num_nodes();
        for v in 0..n {
            // Normalize v's extended out-edges restricted to attribute nodes.
            let (cols, vals) = ext.adjacency.row(v);
            let attr_mass: f64 = cols
                .iter()
                .zip(vals)
                .filter(|(&c, _)| (c as usize) >= n)
                .map(|(_, &w)| w)
                .sum();
            for (&c, &w) in cols.iter().zip(vals) {
                if (c as usize) >= n {
                    let r = c as usize - n;
                    let expect = rr.get(v, r);
                    let got = w / attr_mass;
                    assert!(
                        (got - expect).abs() < 1e-12,
                        "v{v}, r{r}: {got} vs {expect}"
                    );
                }
            }
        }
    }
}
