//! Binary graph format for fast loading at massive scale.
//!
//! The text loaders in [`crate::io`] parse hundreds of millions of lines
//! for MAG-scale graphs; this format stores the CSR arrays directly
//! (little-endian, length-prefixed) and loads at I/O speed:
//!
//! ```text
//!   magic "PANEGRF1" ‖ flags(u64: bit0 = undirected)
//!   ‖ n ‖ d ‖ num_labels
//!   ‖ adjacency  (csr: nnz ‖ indptr[n+1] ‖ indices[nnz] ‖ values[nnz])
//!   ‖ attributes (csr: same layout, n rows × d cols)
//!   ‖ labels     (per node: count ‖ label ids)
//! ```

use crate::graph::AttributedGraph;
use pane_sparse::CsrMatrix;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic bytes (version 1).
pub const GRAPH_MAGIC: &[u8; 8] = b"PANEGRF1";

use crate::io::IoError;

fn write_u64<W: Write>(w: &mut W, v: u64) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u64<R: Read>(r: &mut R) -> std::io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn write_csr<W: Write>(w: &mut W, m: &CsrMatrix) -> std::io::Result<()> {
    write_u64(w, m.nnz() as u64)?;
    // indptr written as incremental cumulative row lengths (avoids exposing
    // the CSR internals while staying O(n)).
    let mut acc = 0u64;
    write_u64(w, 0)?;
    for i in 0..m.rows() {
        acc += m.row_nnz(i) as u64;
        write_u64(w, acc)?;
    }
    for i in 0..m.rows() {
        let (cols, _) = m.row(i);
        for &c in cols {
            w.write_all(&c.to_le_bytes())?;
        }
    }
    for i in 0..m.rows() {
        let (_, vals) = m.row(i);
        for &v in vals {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

fn read_csr<R: Read>(r: &mut R, rows: usize, cols: usize) -> Result<CsrMatrix, IoError> {
    let nnz = read_u64(r)? as usize;
    let mut indptr = Vec::with_capacity(rows + 1);
    for _ in 0..=rows {
        indptr.push(read_u64(r)? as usize);
    }
    if indptr.first() != Some(&0) || indptr.last() != Some(&nnz) {
        return Err(IoError::Parse {
            kind: "binary-graph",
            line: 0,
            message: format!("corrupt indptr (nnz {nnz})"),
        });
    }
    let mut indices = vec![0u32; nnz];
    for v in indices.iter_mut() {
        let mut buf = [0u8; 4];
        r.read_exact(&mut buf)?;
        *v = u32::from_le_bytes(buf);
        if (*v as usize) >= cols {
            return Err(IoError::Parse {
                kind: "binary-graph",
                line: 0,
                message: format!("column index {v} out of bounds ({cols})"),
            });
        }
    }
    let mut values = vec![0.0f64; nnz];
    for v in values.iter_mut() {
        let mut buf = [0u8; 8];
        r.read_exact(&mut buf)?;
        *v = f64::from_le_bytes(buf);
    }
    Ok(CsrMatrix::from_raw(rows, cols, indptr, indices, values))
}

/// Writes the graph in the binary format.
pub fn save_graph_binary(g: &AttributedGraph, path: &Path) -> Result<(), IoError> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(GRAPH_MAGIC)?;
    write_u64(&mut w, u64::from(g.is_undirected()))?;
    write_u64(&mut w, g.num_nodes() as u64)?;
    write_u64(&mut w, g.num_attributes() as u64)?;
    write_u64(&mut w, g.num_labels() as u64)?;
    write_csr(&mut w, g.adjacency())?;
    write_csr(&mut w, g.attributes())?;
    for v in 0..g.num_nodes() {
        let ls = g.labels_of(v);
        write_u64(&mut w, ls.len() as u64)?;
        for &l in ls {
            w.write_all(&l.to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Reads a graph written by [`save_graph_binary`].
pub fn load_graph_binary(path: &Path) -> Result<AttributedGraph, IoError> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != GRAPH_MAGIC {
        return Err(IoError::Parse {
            kind: "binary-graph",
            line: 0,
            message: format!("bad magic {magic:?}"),
        });
    }
    let flags = read_u64(&mut r)?;
    let undirected = flags & 1 == 1;
    let n = read_u64(&mut r)? as usize;
    let d = read_u64(&mut r)? as usize;
    let num_labels = read_u64(&mut r)? as usize;
    let adjacency = read_csr(&mut r, n, n)?;
    let attributes = read_csr(&mut r, n, d)?;
    // Rebuild through a *directed* builder (the stored adjacency already
    // contains both directions of an undirected graph; mirroring again
    // would double the weights). The undirected flag is restored below.
    let mut builder = crate::builder::GraphBuilder::new(n, d);
    for (i, j, w) in adjacency.iter() {
        if w == 1.0 {
            builder.add_edge(i, j);
        } else {
            builder.add_weighted_edge(i, j, w);
        }
    }
    for (v, a, w) in attributes.iter() {
        builder.add_attribute(v, a, w);
    }
    let mut max_label_seen = 0usize;
    for v in 0..n {
        let count = read_u64(&mut r)? as usize;
        for _ in 0..count {
            let mut buf = [0u8; 4];
            r.read_exact(&mut buf)?;
            let l = u32::from_le_bytes(buf) as usize;
            builder.add_label(v, l);
            max_label_seen = max_label_seen.max(l + 1);
        }
    }
    if max_label_seen > num_labels {
        return Err(IoError::Parse {
            kind: "binary-graph",
            line: 0,
            message: format!("label id {max_label_seen} exceeds declared count {num_labels}"),
        });
    }
    // Restore the undirected flag and pad the label space to the declared
    // count (some label ids may have no member nodes).
    let g = builder.build();
    Ok(AttributedGraph::from_parts(
        g.adjacency().clone(),
        g.attributes().clone(),
        g.labels().to_vec(),
        num_labels.max(g.num_labels()),
        undirected,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_sbm, SbmConfig};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("pane_giob_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let g = generate_sbm(&SbmConfig {
            nodes: 300,
            communities: 4,
            attributes: 24,
            attrs_per_node: 4.0,
            multi_label: true,
            extra_label_prob: 0.3,
            seed: 7,
            ..Default::default()
        });
        let p = tmp("g.bin");
        save_graph_binary(&g, &p).unwrap();
        let g2 = load_graph_binary(&p).unwrap();
        assert_eq!(g2.adjacency(), g.adjacency());
        assert_eq!(g2.attributes(), g.attributes());
        assert_eq!(g2.labels(), g.labels());
        assert_eq!(g2.num_labels(), g.num_labels());
        assert_eq!(g2.is_undirected(), g.is_undirected());
    }

    #[test]
    fn roundtrip_weighted_and_undirected() {
        let mut b = crate::builder::GraphBuilder::new(3, 2).undirected();
        b.add_weighted_edge(0, 1, 2.5);
        b.add_edge(1, 2);
        b.add_attribute(0, 1, 0.75);
        let g = b.build();
        let p = tmp("gw.bin");
        save_graph_binary(&g, &p).unwrap();
        let g2 = load_graph_binary(&p).unwrap();
        assert!(g2.is_undirected());
        assert_eq!(g2.adjacency().get(1, 0), 2.5);
        assert_eq!(g2.attributes().get(0, 1), 0.75);
    }

    #[test]
    fn bad_magic_rejected() {
        let p = tmp("bad.bin");
        std::fs::write(&p, b"JUNKJUNKJUNKJUNK").unwrap();
        assert!(load_graph_binary(&p).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let g = generate_sbm(&SbmConfig {
            nodes: 50,
            seed: 1,
            ..Default::default()
        });
        let p = tmp("trunc.bin");
        save_graph_binary(&g, &p).unwrap();
        let bytes = std::fs::read(&p).unwrap();
        std::fs::write(&p, &bytes[..bytes.len() / 3]).unwrap();
        assert!(load_graph_binary(&p).is_err());
    }
}
