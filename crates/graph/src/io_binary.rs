//! Binary graph format for fast loading at massive scale.
//!
//! The text loaders in [`crate::io`] parse hundreds of millions of lines
//! for MAG-scale graphs; this format stores the CSR arrays directly
//! (little-endian, length-prefixed) and loads at I/O speed:
//!
//! ```text
//!   magic "PANEGRF1" ‖ flags(u64: bit0 = undirected)
//!   ‖ n ‖ d ‖ num_labels
//!   ‖ adjacency  (csr: nnz ‖ indptr[n+1] ‖ indices[nnz] ‖ values[nnz])
//!   ‖ attributes (csr: same layout, n rows × d cols)
//!   ‖ labels     (per node: count ‖ label ids)
//! ```
//!
//! The loader treats the file as **untrusted**: every declared length
//! (`n`, `nnz`, per-node label counts) is validated against the bytes
//! actually remaining in the file *before* any allocation, all CSR
//! invariants are re-checked in release builds via
//! [`CsrMatrix::try_from_raw`], and stored weights must be finite and
//! positive (the [`crate::GraphBuilder`] contract). A corrupted or
//! truncated file is a structured [`IoError`] — never a panic, hang, or
//! multi-gigabyte allocation.

use crate::graph::AttributedGraph;
use pane_sparse::CsrMatrix;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic bytes (version 1).
pub const GRAPH_MAGIC: &[u8; 8] = b"PANEGRF1";

use crate::io::IoError;

fn write_u64<W: Write>(w: &mut W, v: u64) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_csr<W: Write>(w: &mut W, m: &CsrMatrix) -> std::io::Result<()> {
    write_u64(w, m.nnz() as u64)?;
    // indptr written as incremental cumulative row lengths (avoids exposing
    // the CSR internals while staying O(n)).
    let mut acc = 0u64;
    write_u64(w, 0)?;
    for i in 0..m.rows() {
        acc += m.row_nnz(i) as u64;
        write_u64(w, acc)?;
    }
    for i in 0..m.rows() {
        let (cols, _) = m.row(i);
        for &c in cols {
            w.write_all(&c.to_le_bytes())?;
        }
    }
    for i in 0..m.rows() {
        let (_, vals) = m.row(i);
        for &v in vals {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Writes the graph in the binary format.
pub fn save_graph_binary(g: &AttributedGraph, path: &Path) -> Result<(), IoError> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(GRAPH_MAGIC)?;
    write_u64(&mut w, u64::from(g.is_undirected()))?;
    write_u64(&mut w, g.num_nodes() as u64)?;
    write_u64(&mut w, g.num_attributes() as u64)?;
    write_u64(&mut w, g.num_labels() as u64)?;
    write_csr(&mut w, g.adjacency())?;
    write_csr(&mut w, g.attributes())?;
    for v in 0..g.num_nodes() {
        let ls = g.labels_of(v);
        write_u64(&mut w, ls.len() as u64)?;
        for &l in ls {
            w.write_all(&l.to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

fn format_err(message: String) -> IoError {
    IoError::Parse {
        kind: "binary-graph",
        line: 0,
        message,
    }
}

/// Reader that tracks how many bytes have been consumed, so declared
/// lengths can be checked against what the file can still supply.
struct BoundedReader<R> {
    inner: R,
    consumed: u64,
    file_len: u64,
}

impl<R: Read> BoundedReader<R> {
    fn read_exact(&mut self, buf: &mut [u8]) -> Result<(), IoError> {
        self.inner.read_exact(buf).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                format_err(format!(
                    "truncated file: unexpected end after {} bytes",
                    self.consumed
                ))
            } else {
                IoError::Io(e)
            }
        })?;
        self.consumed += buf.len() as u64;
        Ok(())
    }

    fn read_u64(&mut self) -> Result<u64, IoError> {
        let mut buf = [0u8; 8];
        self.read_exact(&mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    fn read_u32(&mut self) -> Result<u32, IoError> {
        let mut buf = [0u8; 4];
        self.read_exact(&mut buf)?;
        Ok(u32::from_le_bytes(buf))
    }

    fn read_f64(&mut self) -> Result<f64, IoError> {
        let mut buf = [0u8; 8];
        self.read_exact(&mut buf)?;
        Ok(f64::from_le_bytes(buf))
    }

    /// Rejects a declared `count` of `item_bytes`-sized items that the
    /// remaining file bytes cannot possibly contain — **before** the
    /// caller allocates for them. Checked arithmetic: a hostile count
    /// near `u64::MAX` must not wrap into a small allocation.
    fn ensure_available(&self, count: u64, item_bytes: u64, what: &str) -> Result<(), IoError> {
        let need = count
            .checked_mul(item_bytes)
            .ok_or_else(|| format_err(format!("declared {what} count {count} overflows")))?;
        let remaining = self.file_len.saturating_sub(self.consumed);
        if need > remaining {
            return Err(format_err(format!(
                "declared {what} count {count} needs {need} bytes but only {remaining} remain"
            )));
        }
        Ok(())
    }
}

fn read_csr<R: Read>(
    r: &mut BoundedReader<R>,
    rows: usize,
    cols: usize,
    what: &str,
) -> Result<CsrMatrix, IoError> {
    let nnz64 = r.read_u64()?;
    // One indptr entry per row plus 12 bytes per declared entry must fit in
    // the remaining file before anything is allocated.
    r.ensure_available(rows as u64 + 1, 8, "row")?;
    let nnz = nnz64 as usize;
    let mut indptr = Vec::with_capacity(rows + 1);
    for _ in 0..=rows {
        indptr.push(r.read_u64()? as usize);
    }
    r.ensure_available(nnz64, 4 + 8, "entry")?;
    let mut indices = vec![0u32; nnz];
    for v in indices.iter_mut() {
        *v = r.read_u32()?;
    }
    let mut values = vec![0.0f64; nnz];
    for v in values.iter_mut() {
        let w = r.read_f64()?;
        if !(w.is_finite() && w > 0.0) {
            return Err(format_err(format!(
                "{what} value {w} is not finite and positive"
            )));
        }
        *v = w;
    }
    // Re-validate every CSR invariant (sorted rows, in-bounds columns,
    // consistent indptr) in release builds; the matrix is served directly.
    CsrMatrix::try_from_raw(rows, cols, indptr, indices, values)
        .map_err(|e| format_err(format!("corrupt {what} matrix: {e}")))
}

/// Reads a graph written by [`save_graph_binary`].
///
/// The stored CSR arrays are validated and served directly — no rebuild
/// through [`crate::GraphBuilder`], so loading is O(file size).
pub fn load_graph_binary(path: &Path) -> Result<AttributedGraph, IoError> {
    let file = File::open(path)?;
    let file_len = file.metadata()?.len();
    let mut r = BoundedReader {
        inner: BufReader::new(file),
        consumed: 0,
        file_len,
    };
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != GRAPH_MAGIC {
        return Err(format_err(format!("bad magic {magic:?}")));
    }
    let flags = r.read_u64()?;
    let undirected = flags & 1 == 1;
    let n64 = r.read_u64()?;
    let d64 = r.read_u64()?;
    let l64 = r.read_u64()?;
    // Dimensions must fit the u32 index space (the pane-sparse contract)
    // and, for n, the remaining bytes: each node costs at least 8 bytes of
    // indptr in the adjacency alone.
    for (v, what) in [(n64, "node"), (d64, "attribute"), (l64, "label")] {
        if v > u32::MAX as u64 {
            return Err(format_err(format!(
                "declared {what} count {v} exceeds u32 index space"
            )));
        }
    }
    let n = n64 as usize;
    let d = d64 as usize;
    let num_labels = l64 as usize;
    let adjacency = read_csr(&mut r, n, n, "adjacency")?;
    let attributes = read_csr(&mut r, n, d, "attribute")?;

    let mut labels: Vec<Vec<u32>> = Vec::with_capacity(n);
    for v in 0..n {
        let count = r.read_u64()?;
        r.ensure_available(count, 4, "label")?;
        let mut ls = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let l = r.read_u32()?;
            if l as usize >= num_labels {
                return Err(format_err(format!(
                    "node {v} label id {l} exceeds declared count {num_labels}"
                )));
            }
            ls.push(l);
        }
        ls.sort_unstable();
        ls.dedup();
        labels.push(ls);
    }
    if r.consumed != file_len {
        return Err(format_err(format!(
            "{} trailing bytes after the label section",
            file_len - r.consumed
        )));
    }
    Ok(AttributedGraph::from_parts(
        adjacency, attributes, labels, num_labels, undirected,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_sbm, SbmConfig};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("pane_giob_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let g = generate_sbm(&SbmConfig {
            nodes: 300,
            communities: 4,
            attributes: 24,
            attrs_per_node: 4.0,
            multi_label: true,
            extra_label_prob: 0.3,
            seed: 7,
            ..Default::default()
        });
        let p = tmp("g.bin");
        save_graph_binary(&g, &p).unwrap();
        let g2 = load_graph_binary(&p).unwrap();
        assert_eq!(g2.adjacency(), g.adjacency());
        assert_eq!(g2.attributes(), g.attributes());
        assert_eq!(g2.labels(), g.labels());
        assert_eq!(g2.num_labels(), g.num_labels());
        assert_eq!(g2.is_undirected(), g.is_undirected());
    }

    #[test]
    fn roundtrip_weighted_and_undirected() {
        let mut b = crate::builder::GraphBuilder::new(3, 2).undirected();
        b.add_weighted_edge(0, 1, 2.5);
        b.add_edge(1, 2);
        b.add_attribute(0, 1, 0.75);
        let g = b.build();
        let p = tmp("gw.bin");
        save_graph_binary(&g, &p).unwrap();
        let g2 = load_graph_binary(&p).unwrap();
        assert!(g2.is_undirected());
        assert_eq!(g2.adjacency().get(1, 0), 2.5);
        assert_eq!(g2.attributes().get(0, 1), 0.75);
    }

    #[test]
    fn bad_magic_rejected() {
        let p = tmp("bad.bin");
        std::fs::write(&p, b"JUNKJUNKJUNKJUNK").unwrap();
        assert!(load_graph_binary(&p).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let g = generate_sbm(&SbmConfig {
            nodes: 50,
            seed: 1,
            ..Default::default()
        });
        let p = tmp("trunc.bin");
        save_graph_binary(&g, &p).unwrap();
        let bytes = std::fs::read(&p).unwrap();
        std::fs::write(&p, &bytes[..bytes.len() / 3]).unwrap();
        assert!(load_graph_binary(&p).is_err());
    }

    fn header(n: u64, d: u64, labels: u64) -> Vec<u8> {
        let mut b = Vec::new();
        b.extend_from_slice(GRAPH_MAGIC);
        b.extend_from_slice(&0u64.to_le_bytes()); // flags
        b.extend_from_slice(&n.to_le_bytes());
        b.extend_from_slice(&d.to_le_bytes());
        b.extend_from_slice(&labels.to_le_bytes());
        b
    }

    /// Regression: a header declaring an absurd node count used to drive
    /// `Vec::with_capacity(n + 1)` (a multi-GB allocation, or an overflow
    /// panic for `u64::MAX`) before a single row was read. It must be a
    /// clean format error.
    #[test]
    fn absurd_node_count_rejected_before_allocation() {
        for n in [u64::MAX, u64::MAX / 2, 1 << 40] {
            let p = tmp("hugen.bin");
            std::fs::write(&p, header(n, 4, 2)).unwrap();
            let err = load_graph_binary(&p).unwrap_err();
            let msg = format!("{err}");
            assert!(
                msg.contains("exceeds u32 index space") || msg.contains("count"),
                "n={n}: {msg}"
            );
        }
        // In-range for u32 but far beyond what the file holds: the indptr
        // for 2^30 rows alone needs 8 GiB.
        let p = tmp("hugen2.bin");
        let mut b = header(1 << 30, 4, 2);
        b.extend_from_slice(&0u64.to_le_bytes()); // adjacency nnz
        std::fs::write(&p, b).unwrap();
        let msg = format!("{}", load_graph_binary(&p).unwrap_err());
        assert!(msg.contains("remain"), "{msg}");
    }

    /// Regression: a declared nnz in the terabytes used to reach
    /// `vec![0u32; nnz]` and abort the process; the length check against
    /// the remaining file bytes must fire first.
    #[test]
    fn absurd_nnz_rejected_before_allocation() {
        let mut b = header(1, 1, 0);
        let huge = 1u64 << 40;
        b.extend_from_slice(&huge.to_le_bytes()); // adjacency nnz
        b.extend_from_slice(&0u64.to_le_bytes()); // indptr[0]
        b.extend_from_slice(&huge.to_le_bytes()); // indptr[1]
        let p = tmp("hugennz.bin");
        std::fs::write(&p, b).unwrap();
        let msg = format!("{}", load_graph_binary(&p).unwrap_err());
        assert!(msg.contains("needs") && msg.contains("remain"), "{msg}");

        // Overflow-crafted nnz: count * 12 wraps u64.
        let mut b = header(1, 1, 0);
        b.extend_from_slice(&u64::MAX.to_le_bytes());
        b.extend_from_slice(&0u64.to_le_bytes());
        b.extend_from_slice(&u64::MAX.to_le_bytes());
        let p = tmp("wrapnnz.bin");
        std::fs::write(&p, b).unwrap();
        let msg = format!("{}", load_graph_binary(&p).unwrap_err());
        assert!(msg.contains("overflows"), "{msg}");
    }

    /// Regression: a huge per-node label count used to loop reading until
    /// EOF; it must be rejected against the remaining bytes.
    #[test]
    fn absurd_label_count_rejected() {
        let g = generate_sbm(&SbmConfig {
            nodes: 10,
            seed: 3,
            ..Default::default()
        });
        let p = tmp("badlabel.bin");
        save_graph_binary(&g, &p).unwrap();
        let mut bytes = std::fs::read(&p).unwrap();
        // The first label record starts right after the two CSR sections;
        // corrupt it by rewriting the whole label section with one bogus
        // count. Find it by re-serializing everything before the labels.
        let mut prefix = Vec::new();
        prefix.extend_from_slice(GRAPH_MAGIC);
        write_u64(&mut prefix, u64::from(g.is_undirected())).unwrap();
        write_u64(&mut prefix, g.num_nodes() as u64).unwrap();
        write_u64(&mut prefix, g.num_attributes() as u64).unwrap();
        write_u64(&mut prefix, g.num_labels() as u64).unwrap();
        write_csr(&mut prefix, g.adjacency()).unwrap();
        write_csr(&mut prefix, g.attributes()).unwrap();
        bytes.truncate(prefix.len());
        bytes.extend_from_slice(&(1u64 << 50).to_le_bytes());
        std::fs::write(&p, bytes).unwrap();
        let msg = format!("{}", load_graph_binary(&p).unwrap_err());
        assert!(msg.contains("label count"), "{msg}");
    }

    /// Regression: non-positive / non-finite stored values used to abort
    /// in a builder assert on load; now a format error.
    #[test]
    fn invalid_value_rejected() {
        let mut b = crate::builder::GraphBuilder::new(2, 1);
        b.add_edge(0, 1);
        let g = b.build();
        let p = tmp("negval.bin");
        save_graph_binary(&g, &p).unwrap();
        let mut bytes = std::fs::read(&p).unwrap();
        // The adjacency has exactly one value (1.0); it sits after
        // magic+4 header u64s, nnz, indptr[3], one u32 index.
        let off = 8 + 8 * 4 + 8 + 8 * 3 + 4;
        bytes[off..off + 8].copy_from_slice(&(-1.0f64).to_le_bytes());
        std::fs::write(&p, bytes).unwrap();
        let msg = format!("{}", load_graph_binary(&p).unwrap_err());
        assert!(msg.contains("finite and positive"), "{msg}");
    }

    #[test]
    fn unsorted_rows_rejected() {
        let mut b = crate::builder::GraphBuilder::new(2, 1);
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        let g = b.build();
        let p = tmp("unsorted.bin");
        save_graph_binary(&g, &p).unwrap();
        let mut bytes = std::fs::read(&p).unwrap();
        // Swap the two column indices of row 0 (offset: magic + 4 header
        // u64s + nnz + indptr[3]).
        let off = 8 + 8 * 4 + 8 + 8 * 3;
        let (a, b2) = (
            bytes[off..off + 4].to_vec(),
            bytes[off + 4..off + 8].to_vec(),
        );
        bytes[off..off + 4].copy_from_slice(&b2);
        bytes[off + 4..off + 8].copy_from_slice(&a);
        std::fs::write(&p, bytes).unwrap();
        let msg = format!("{}", load_graph_binary(&p).unwrap_err());
        assert!(msg.contains("strictly increasing"), "{msg}");
    }

    #[test]
    fn trailing_bytes_rejected() {
        let g = generate_sbm(&SbmConfig {
            nodes: 20,
            seed: 5,
            ..Default::default()
        });
        let p = tmp("trailing.bin");
        save_graph_binary(&g, &p).unwrap();
        let mut bytes = std::fs::read(&p).unwrap();
        bytes.extend_from_slice(b"garbage");
        std::fs::write(&p, bytes).unwrap();
        let msg = format!("{}", load_graph_binary(&p).unwrap_err());
        assert!(msg.contains("trailing"), "{msg}");
    }
}
