//! Directed degree-corrected SBM with community-correlated attributes.

use crate::builder::GraphBuilder;
use crate::gen::alias::AliasTable;
use crate::graph::AttributedGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the generator. See the module docs of [`crate::gen`] for
/// the role of each knob.
#[derive(Debug, Clone)]
pub struct SbmConfig {
    /// Number of nodes `n`.
    pub nodes: usize,
    /// Number of communities (also the number of primary labels).
    pub communities: usize,
    /// Expected out-degree (expected edge count is `nodes * avg_out_degree`).
    pub avg_out_degree: f64,
    /// Probability that an edge's target is drawn from the source's own
    /// community (homophily); the rest are drawn globally.
    pub p_in: f64,
    /// Power-law exponent of the degree weights (`> 1`; 2.5 is typical).
    pub gamma: f64,
    /// Number of attributes `d`.
    pub attributes: usize,
    /// Expected node–attribute associations per node.
    pub attrs_per_node: f64,
    /// Probability that an attribute draw ignores the community pool and
    /// picks uniformly from all attributes (0 = perfectly clustered).
    pub attr_noise: f64,
    /// Whether nodes may receive extra labels beyond their community.
    pub multi_label: bool,
    /// Per-node probability of one extra random label (if `multi_label`).
    pub extra_label_prob: f64,
    /// Symmetrize all edges.
    pub undirected: bool,
    /// RNG seed; identical configs generate identical graphs.
    pub seed: u64,
}

impl Default for SbmConfig {
    fn default() -> Self {
        Self {
            nodes: 1000,
            communities: 5,
            avg_out_degree: 8.0,
            p_in: 0.8,
            gamma: 2.5,
            attributes: 100,
            attrs_per_node: 10.0,
            attr_noise: 0.2,
            multi_label: false,
            extra_label_prob: 0.1,
            undirected: false,
            seed: 0,
        }
    }
}

impl SbmConfig {
    fn validate(&self) {
        assert!(self.nodes > 0, "nodes must be positive");
        assert!(
            self.communities > 0 && self.communities <= self.nodes,
            "bad community count"
        );
        assert!(self.avg_out_degree > 0.0, "avg_out_degree must be positive");
        assert!(
            (0.0..=1.0).contains(&self.p_in),
            "p_in must be a probability"
        );
        assert!(self.gamma > 1.0, "gamma must exceed 1");
        assert!(self.attributes > 0, "attributes must be positive");
        assert!(
            self.attrs_per_node >= 0.0,
            "attrs_per_node must be non-negative"
        );
        assert!(
            (0.0..=1.0).contains(&self.attr_noise),
            "attr_noise must be a probability"
        );
        assert!(
            (0.0..=1.0).contains(&self.extra_label_prob),
            "extra_label_prob must be a probability"
        );
    }
}

/// Generates an attributed graph from the config (deterministic per seed).
pub fn generate_sbm(cfg: &SbmConfig) -> AttributedGraph {
    cfg.validate();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.nodes;
    let c = cfg.communities;

    // Balanced community assignment, then a seeded shuffle so community ids
    // are not correlated with node ids.
    let mut community: Vec<u32> = (0..n).map(|i| (i % c) as u32).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        community.swap(i, j);
    }

    // Pareto-distributed degree weights: w = u^{-1/(gamma-1)}, capped to
    // keep the max degree below ~sqrt(n * avg) (avoids one node absorbing
    // the whole edge budget on small graphs).
    let cap = ((n as f64) * cfg.avg_out_degree).sqrt().max(4.0);
    let weights: Vec<f64> = (0..n)
        .map(|_| {
            let u: f64 = rng.gen::<f64>().max(1e-12);
            u.powf(-1.0 / (cfg.gamma - 1.0)).min(cap)
        })
        .collect();

    // Global and per-community alias tables over degree weights.
    let global = AliasTable::new(&weights);
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); c];
    for (v, &cm) in community.iter().enumerate() {
        members[cm as usize].push(v as u32);
    }
    let community_tables: Vec<Option<AliasTable>> = members
        .iter()
        .map(|ms| {
            if ms.is_empty() {
                None
            } else {
                let ws: Vec<f64> = ms.iter().map(|&v| weights[v as usize]).collect();
                Some(AliasTable::new(&ws))
            }
        })
        .collect();

    let m_target = (n as f64 * cfg.avg_out_degree).round() as usize;
    let mut builder = GraphBuilder::new(n, cfg.attributes).forbid_self_loops();
    if cfg.undirected {
        builder = builder.undirected();
    }
    for _ in 0..m_target {
        let src = global.sample(&mut rng);
        let dst = if rng.gen::<f64>() < cfg.p_in {
            let cm = community[src] as usize;
            let table = community_tables[cm]
                .as_ref()
                .expect("community of src is non-empty");
            members[cm][table.sample(&mut rng)] as usize
        } else {
            global.sample(&mut rng)
        };
        if src != dst {
            builder.add_edge(src, dst);
        }
    }

    // Community attribute pools: contiguous, disjoint, equally sized.
    let pool_size = (cfg.attributes / c).max(1);
    let frac = cfg.attrs_per_node.fract();
    for v in 0..n {
        let cm = community[v] as usize;
        let pool_start = (cm * pool_size) % cfg.attributes;
        let mut picked: Vec<usize> = Vec::new();
        let k = cfg.attrs_per_node.floor() as usize + usize::from(rng.gen::<f64>() < frac);
        for _ in 0..k {
            let attr = if rng.gen::<f64>() < cfg.attr_noise {
                rng.gen_range(0..cfg.attributes)
            } else {
                pool_start + rng.gen_range(0..pool_size.min(cfg.attributes - pool_start).max(1))
            };
            if !picked.contains(&attr) {
                picked.push(attr);
                builder.add_attribute(v, attr, 1.0);
            }
        }
        builder.add_label(v, cm);
        if cfg.multi_label && rng.gen::<f64>() < cfg.extra_label_prob {
            builder.add_label(v, rng.gen_range(0..c));
        }
    }

    let g = builder.build();
    debug_assert_eq!(g.num_nodes(), n);
    g
}

/// Fraction of edges whose endpoints share a primary label — a quick
/// homophily diagnostic used by tests and dataset docs.
pub fn edge_homophily(g: &AttributedGraph) -> f64 {
    let mut intra = 0usize;
    let mut total = 0usize;
    for (i, j, _) in g.adjacency().iter() {
        let li = g.labels_of(i).first();
        let lj = g.labels_of(j).first();
        if let (Some(a), Some(b)) = (li, lj) {
            total += 1;
            if a == b {
                intra += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        intra as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> SbmConfig {
        SbmConfig {
            nodes: 400,
            communities: 4,
            avg_out_degree: 6.0,
            p_in: 0.85,
            attributes: 40,
            attrs_per_node: 5.0,
            attr_noise: 0.15,
            seed: 11,
            ..Default::default()
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g1 = generate_sbm(&small_cfg());
        let g2 = generate_sbm(&small_cfg());
        assert_eq!(g1.num_edges(), g2.num_edges());
        assert_eq!(g1.adjacency(), g2.adjacency());
        assert_eq!(g1.attributes(), g2.attributes());
        let mut other = small_cfg();
        other.seed = 12;
        let g3 = generate_sbm(&other);
        assert_ne!(g1.adjacency(), g3.adjacency());
    }

    #[test]
    fn sizes_are_close_to_requested() {
        let g = generate_sbm(&small_cfg());
        assert_eq!(g.num_nodes(), 400);
        assert_eq!(g.num_attributes(), 40);
        // Dedup and self-loop removal lose some edges; stay within 30%.
        let m = g.num_edges() as f64;
        assert!(m > 400.0 * 6.0 * 0.7, "too few edges: {m}");
        assert!(m <= 400.0 * 6.0, "too many edges: {m}");
        let apn = g.num_attribute_entries() as f64 / 400.0;
        assert!((apn - 5.0).abs() < 1.0, "attrs per node {apn}");
        assert_eq!(g.num_labels(), 4);
    }

    #[test]
    fn homophily_controlled_by_p_in() {
        let hi = edge_homophily(&generate_sbm(&small_cfg()));
        let mut rnd = small_cfg();
        rnd.p_in = 0.0;
        let lo = edge_homophily(&generate_sbm(&rnd));
        assert!(hi > 0.7, "expected strong homophily, got {hi}");
        assert!(lo < 0.45, "expected near-random homophily, got {lo}");
    }

    #[test]
    fn attributes_correlate_with_communities() {
        let g = generate_sbm(&small_cfg());
        let pool_size = 40 / 4;
        let mut in_pool = 0usize;
        let mut total = 0usize;
        for (v, r, _) in g.attributes().iter() {
            let cm = g.labels_of(v)[0] as usize;
            total += 1;
            if r / pool_size == cm {
                in_pool += 1;
            }
        }
        let frac = in_pool as f64 / total as f64;
        // noise 0.15 with 1/4 of random draws landing in-pool anyway.
        assert!(
            frac > 0.8,
            "attribute-community correlation too weak: {frac}"
        );
    }

    #[test]
    fn multi_label_adds_labels() {
        let mut cfg = small_cfg();
        cfg.multi_label = true;
        cfg.extra_label_prob = 0.5;
        let g = generate_sbm(&cfg);
        let multi = (0..g.num_nodes())
            .filter(|&v| g.labels_of(v).len() > 1)
            .count();
        assert!(
            multi > 50,
            "expected many multi-labelled nodes, got {multi}"
        );
    }

    #[test]
    fn undirected_graphs_are_symmetric() {
        let mut cfg = small_cfg();
        cfg.undirected = true;
        let g = generate_sbm(&cfg);
        for (i, j, _) in g.adjacency().iter() {
            assert!(
                g.adjacency().get(j, i) > 0.0,
                "missing reverse of ({i},{j})"
            );
        }
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = generate_sbm(&SbmConfig {
            nodes: 2000,
            avg_out_degree: 8.0,
            seed: 3,
            ..small_cfg()
        });
        let mut degs: Vec<usize> = (0..g.num_nodes()).map(|v| g.out_degree(v)).collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        let top1pct: usize = degs[..20].iter().sum();
        let total: usize = degs.iter().sum();
        // In a power-law graph the top 1% of nodes holds far more than 1%
        // of the out-degree mass.
        assert!(top1pct as f64 / total as f64 > 0.05, "degrees look uniform");
    }
}
