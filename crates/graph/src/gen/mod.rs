//! Seeded synthetic attributed-graph generators.
//!
//! The paper evaluates on eight real datasets (Table 3) that are not
//! redistributable here; [`sbm`] provides a **directed degree-corrected
//! stochastic block model with community-correlated attributes** whose
//! parameters can be shaped to each dataset's statistics (node/edge/
//! attribute counts, label count, directedness). The three properties the
//! evaluation depends on are controlled explicitly:
//!
//! * **homophily** — edges fall inside a node's community with probability
//!   `p_in`, making link prediction learnable from topology;
//! * **attribute–community correlation** — every community owns a pool of
//!   preferred attributes that its members sample with probability
//!   `1 − attr_noise`, making attribute inference and classification
//!   learnable and tying attributes to multi-hop structure;
//! * **skewed degrees** — per-node degree weights follow a power law with
//!   exponent `gamma`, matching the heavy-tailed degree distributions of
//!   the real graphs.

pub mod alias;
pub mod sbm;

pub use sbm::{generate_sbm, SbmConfig};
