//! Walker's alias method for O(1) discrete sampling.
//!
//! The SBM generator draws hundreds of thousands of edge endpoints from a
//! fixed degree-weight distribution; the alias method turns each draw into
//! one uniform sample plus one comparison after O(n) preprocessing.

use rand::Rng;

/// Preprocessed discrete distribution supporting O(1) sampling.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds a table for the (unnormalized, non-negative) `weights`.
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table over empty support");
        let total: f64 = weights.iter().sum();
        assert!(
            total.is_finite() && total > 0.0 && weights.iter().all(|&w| w >= 0.0 && w.is_finite()),
            "weights must be finite, non-negative, and not all zero"
        );
        let n = weights.len();
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s as usize] = l;
            prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
            if prob[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical leftovers: both stacks drain to probability 1.
        for i in small.into_iter().chain(large) {
            prob[i as usize] = 1.0;
        }
        Self { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Always false (construction rejects empty supports).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one index.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let n = self.prob.len();
        let i = rng.gen_range(0..n);
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empirical_frequencies_match() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let table = AliasTable::new(&weights);
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 200_000;
        let mut counts = [0usize; 4];
        for _ in 0..trials {
            counts[table.sample(&mut rng)] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let want = w / total;
            let got = counts[i] as f64 / trials as f64;
            assert!((got - want).abs() < 0.01, "idx {i}: {got} vs {want}");
        }
    }

    #[test]
    fn degenerate_single_outcome() {
        let table = AliasTable::new(&[0.5]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }

    #[test]
    fn zero_weight_entries_never_sampled() {
        let table = AliasTable::new(&[0.0, 1.0, 0.0]);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..5_000 {
            assert_eq!(table.sample(&mut rng), 1);
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_rejected() {
        AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rejected() {
        AliasTable::new(&[1.0, -0.1]);
    }
}
