#![warn(missing_docs)]
//! Attributed, directed graph model for the PANE reproduction (§2.1 of the
//! paper).
//!
//! An [`AttributedGraph`] is the quadruple `G = (V, E_V, R, E_R)`:
//! a node set `V` (|V| = n), directed edges `E_V` (|E_V| = m), an attribute
//! set `R` (|R| = d) and weighted node–attribute associations `E_R`. Nodes
//! may carry (multi-)labels for the node-classification task.
//!
//! The crate also contains everything the evaluation needs around the graph:
//!
//! * [`builder::GraphBuilder`] — incremental construction with validation;
//! * [`encode`] — one-hot encoding of categorical attribute tables (§2.1:
//!   "for a categorical attribute such as marital status, we first apply a
//!   pre-processing step that transforms the attribute into a set of binary
//!   ones");
//! * [`io`] — plain-text loaders/writers for edge lists, attribute triples
//!   and label files;
//! * [`walks`] — a Monte-Carlo simulator of the paper's forward/backward
//!   random walks on the extended graph (§2.2), used as ground truth for
//!   testing APMI and to reproduce Table 2;
//! * [`gen`] — seeded synthetic attributed-graph generators (directed
//!   degree-corrected SBM with community-correlated attributes) standing in
//!   for the paper's datasets;
//! * [`toy`] — the running-example graph of Figure 1.

// Indexed loops in the numeric kernels are deliberate (they keep the
// zip-free auto-vectorizable shape the perf guide recommends).
#![allow(clippy::needless_range_loop)]
pub mod analysis;
pub mod builder;
pub mod encode;
pub mod extended;
pub mod gen;
pub mod graph;
pub mod io;
pub mod io_binary;
pub mod toy;
pub mod walks;

pub use builder::GraphBuilder;
pub use graph::{AttributedGraph, DanglingPolicy};
pub use walks::WalkSimulator;
