//! The running example of the paper (Figure 1, Table 2).
//!
//! The paper's Figure 1 shows an extended graph with 6 nodes `v1..v6`, 3
//! attributes `r1..r3` and unit attribute weights. The figure itself is an
//! image, so the exact edge list is not recoverable from the text; this
//! module builds a graph **consistent with every property the prose
//! states**:
//!
//! * `v1` and `v2` carry no attributes (§2.1, example description);
//! * `v1` "is connected to `r1` via many different intermediate nodes,
//!   i.e. `v3, v4, v5`" — so `v1` has edges toward `v3, v4, v5`, each of
//!   which owns `r1`;
//! * `v5` "owns `r1` but not `r3`" yet has **higher forward affinity with
//!   `r3` than with `r1`" — so `v5`'s out-neighborhood is dominated by
//!   `r3`-owners (`v6`), while the backward affinity repairs the ranking;
//! * `(v3, r1, w_{3,1}) ∈ E_R`.
//!
//! `exp_table2` (see `pane-bench`) prints this graph's exact forward and
//! backward affinities at `α = 0.15` next to Monte-Carlo estimates, playing
//! the role of Table 2; the qualitative assertions above are unit-tested.

use crate::builder::GraphBuilder;
use crate::graph::AttributedGraph;

/// Node ids of the running example (`V1 == 0`, …).
pub mod nodes {
    /// v1 (no attributes).
    pub const V1: usize = 0;
    /// v2 (no attributes).
    pub const V2: usize = 1;
    /// v3 (owns r1, r2).
    pub const V3: usize = 2;
    /// v4 (owns r1).
    pub const V4: usize = 3;
    /// v5 (owns r1, r2).
    pub const V5: usize = 4;
    /// v6 (owns r3).
    pub const V6: usize = 5;
}

/// Attribute ids of the running example.
pub mod attrs {
    /// r1.
    pub const R1: usize = 0;
    /// r2.
    pub const R2: usize = 1;
    /// r3.
    pub const R3: usize = 2;
}

/// The paper's default stopping probability for the example (§2.3).
pub const EXAMPLE_ALPHA: f64 = 0.15;

/// Builds the Figure-1 running example graph.
pub fn figure1_graph() -> AttributedGraph {
    use attrs::*;
    use nodes::*;
    let mut b = GraphBuilder::new(6, 3);
    // v1 reaches r1 through v3, v4, v5 (bidirectional links as drawn).
    b.add_edge(V1, V3);
    b.add_edge(V3, V1);
    b.add_edge(V1, V4);
    b.add_edge(V4, V1);
    b.add_edge(V1, V5);
    b.add_edge(V5, V1);
    // v2 sits next to v3 and v4.
    b.add_edge(V2, V3);
    b.add_edge(V3, V2);
    b.add_edge(V2, V4);
    // v5 points at v6 (the r3 owner), giving v5 high *forward* affinity to
    // r3; v6 has no out-edges, so backward walks from r3 stay at v6 and the
    // backward affinity B[v5, r3] stays low — exactly the asymmetry the
    // example illustrates.
    b.add_edge(V5, V6);

    // Attribute associations, all with weight 1 (as the example assumes).
    b.add_attribute(V3, R1, 1.0);
    b.add_attribute(V3, R2, 1.0);
    b.add_attribute(V4, R1, 1.0);
    b.add_attribute(V5, R1, 1.0);
    b.add_attribute(V5, R2, 1.0);
    b.add_attribute(V6, R3, 1.0);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stated_properties_hold() {
        let g = figure1_graph();
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.num_attributes(), 3);
        // v1 and v2 have no attributes.
        assert_eq!(g.node_attributes(nodes::V1).0.len(), 0);
        assert_eq!(g.node_attributes(nodes::V2).0.len(), 0);
        // v3, v4, v5 own r1.
        for v in [nodes::V3, nodes::V4, nodes::V5] {
            assert!(
                g.attributes().get(v, attrs::R1) > 0.0,
                "v{} should own r1",
                v + 1
            );
        }
        // v5 owns r1 but not r3.
        assert!(g.attributes().get(nodes::V5, attrs::R3) == 0.0);
        // v6 owns r3.
        assert!(g.attributes().get(nodes::V6, attrs::R3) > 0.0);
        // v1 links to the three intermediates.
        for v in [nodes::V3, nodes::V4, nodes::V5] {
            assert!(g.adjacency().get(nodes::V1, v) > 0.0);
        }
    }
}
