//! Monte-Carlo simulation of the paper's random-walk model (§2.2).
//!
//! PANE never actually samples walks — APMI computes the walk distributions
//! in closed form. This simulator exists for two purposes:
//!
//! 1. **ground truth for tests**: sampled estimates of `p_f`/`p_b` must
//!    converge to APMI's `P_f^{(t)}`/`P_b^{(t)}` as `n_r → ∞` and `t → ∞`;
//! 2. **Table 2**: the paper's running-example affinities are "calculated
//!    based on Equations (2) and (3), using simulated random walks".
//!
//! A **forward walk** from node `v_i`: at each step terminate with
//! probability `α`, otherwise move to a uniformly random out-neighbor.
//! On termination at `v_l`, pick attribute `r_j` with probability
//! `R_r[v_l, r_j]`; the walk yields the pair `(v_i, r_j)`.
//!
//! A **backward walk** from attribute `r_j`: pick a start node
//! `v_l ~ R_c[·, r_j]`, walk the same way, and yield `(r_j, v_i)` for the
//! terminal node `v_i`.
//!
//! Nodes without attributes (footnote 1 of the paper): the walk "restarts
//! from the source node and repeats the process". Note this *conditions*
//! the output distribution on eventually hitting an attributed node, which
//! renormalizes `p_f(v_i, ·)` by the success probability, whereas the
//! matrix form (Eq. 5) leaves the lost mass unnormalized. The two coincide
//! exactly when every node carries at least one attribute; otherwise they
//! differ by a per-row factor. [`RestartRule`] exposes both semantics; use
//! [`RestartRule::Discard`] when validating APMI.

use crate::graph::{AttributedGraph, DanglingPolicy};
use pane_linalg::DenseMatrix;
use pane_sparse::CsrMatrix;
use rand::Rng;

/// What to do when a walk terminates at a node with no attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RestartRule {
    /// Restart the walk from the source (the paper's footnote 1).
    #[default]
    RestartFromSource,
    /// Count the walk as yielding no pair (matches the matrix form, Eq. 5).
    Discard,
}

/// Cumulative-weight tables for O(log nnz) weighted sampling from the rows
/// of a sparse matrix.
struct RowSampler {
    matrix: CsrMatrix,
    /// Per-entry cumulative weights, aligned with the CSR value array; each
    /// row's run ends at the row's total weight.
    cumsums: Vec<f64>,
    /// Start offset of each row's run inside `cumsums` (`rows + 1` entries).
    offsets: Vec<usize>,
    /// Per-row total weight.
    totals: Vec<f64>,
}

impl RowSampler {
    fn new(matrix: CsrMatrix) -> Self {
        let mut cumsums = Vec::with_capacity(matrix.nnz());
        let mut offsets = Vec::with_capacity(matrix.rows() + 1);
        let mut totals = Vec::with_capacity(matrix.rows());
        offsets.push(0);
        for i in 0..matrix.rows() {
            let (_, vals) = matrix.row(i);
            let mut acc = 0.0;
            for &v in vals {
                acc += v;
                cumsums.push(acc);
            }
            offsets.push(cumsums.len());
            totals.push(acc);
        }
        Self {
            matrix,
            cumsums,
            offsets,
            totals,
        }
    }

    /// Samples a column index of row `i` proportionally to the weights, or
    /// `None` for an empty/zero row.
    fn sample<R: Rng + ?Sized>(&self, i: usize, rng: &mut R) -> Option<u32> {
        let total = self.totals[i];
        if total <= 0.0 {
            return None;
        }
        let (cols, vals) = self.matrix.row(i);
        debug_assert!(!vals.is_empty());
        let run = &self.cumsums[self.offsets[i]..self.offsets[i + 1]];
        let x = rng.gen::<f64>() * total;
        let pos = run.partition_point(|&c| c <= x).min(vals.len() - 1);
        Some(cols[pos])
    }
}

/// Simulator of forward/backward random walks on the extended graph.
pub struct WalkSimulator {
    /// Walk matrix sampler: neighbors weighted as in `P` rows.
    p: RowSampler,
    /// `R_r` sampler: terminal node → attribute.
    rr: RowSampler,
    /// `R_cᵀ` sampler: attribute → start node.
    rct: RowSampler,
    alpha: f64,
    restart: RestartRule,
    /// Hard cap on restarts so graphs with unreachable attributes terminate.
    max_restarts: usize,
    n: usize,
    d: usize,
}

impl WalkSimulator {
    /// Builds a simulator for `graph` with stopping probability `alpha`.
    ///
    /// # Panics
    /// Panics unless `0 < alpha < 1`.
    pub fn new(
        graph: &AttributedGraph,
        alpha: f64,
        policy: DanglingPolicy,
        restart: RestartRule,
    ) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "alpha must be in (0,1), got {alpha}"
        );
        let p = graph.random_walk_matrix(policy);
        let rr = graph.attr_row_normalized();
        let rct = graph.attr_col_normalized().transpose();
        Self {
            p: RowSampler::new(p),
            rr: RowSampler::new(rr),
            rct: RowSampler::new(rct),
            alpha,
            restart,
            max_restarts: 1000,
            n: graph.num_nodes(),
            d: graph.num_attributes(),
        }
    }

    /// Walks from `start` until termination; returns the terminal node.
    fn terminal_node<R: Rng + ?Sized>(&self, start: usize, rng: &mut R) -> usize {
        let mut cur = start;
        loop {
            if rng.gen::<f64>() < self.alpha {
                return cur;
            }
            match self.p.sample(cur, rng) {
                Some(next) => cur = next as usize,
                // Absorb policy: the walk has nowhere to go; under RWR
                // semantics it can only end here.
                None => return cur,
            }
        }
    }

    /// One forward walk from `v`; returns the sampled attribute, or `None`
    /// if the walk yields no pair (per the restart rule / restart cap).
    pub fn forward_walk<R: Rng + ?Sized>(&self, v: usize, rng: &mut R) -> Option<u32> {
        for _ in 0..=self.max_restarts {
            let vl = self.terminal_node(v, rng);
            match self.rr.sample(vl, rng) {
                Some(attr) => return Some(attr),
                None => match self.restart {
                    RestartRule::Discard => return None,
                    RestartRule::RestartFromSource => continue,
                },
            }
        }
        None
    }

    /// One backward walk from attribute `r`; returns the terminal node, or
    /// `None` if no node carries `r`.
    pub fn backward_walk<R: Rng + ?Sized>(&self, r: usize, rng: &mut R) -> Option<u32> {
        let start = self.rct.sample(r, rng)?;
        Some(self.terminal_node(start as usize, rng) as u32)
    }

    /// Estimates `p_f` by sampling `nr` forward walks per node.
    pub fn estimate_forward<R: Rng + ?Sized>(&self, nr: usize, rng: &mut R) -> DenseMatrix {
        let mut pf = DenseMatrix::zeros(self.n, self.d);
        let inc = 1.0 / nr as f64;
        for v in 0..self.n {
            for _ in 0..nr {
                if let Some(r) = self.forward_walk(v, rng) {
                    pf.add_at(v, r as usize, inc);
                }
            }
        }
        pf
    }

    /// Estimates `p_b` by sampling `nr` backward walks per attribute.
    pub fn estimate_backward<R: Rng + ?Sized>(&self, nr: usize, rng: &mut R) -> DenseMatrix {
        let mut pb = DenseMatrix::zeros(self.n, self.d);
        let inc = 1.0 / nr as f64;
        for r in 0..self.d {
            for _ in 0..nr {
                if let Some(v) = self.backward_walk(r, rng) {
                    pb.add_at(v as usize, r, inc);
                }
            }
        }
        pb
    }

    /// Empirical forward/backward affinities via Equations (2) and (3)
    /// applied to sampled walk frequencies.
    pub fn empirical_affinities<R: Rng + ?Sized>(
        &self,
        nr: usize,
        rng: &mut R,
    ) -> (DenseMatrix, DenseMatrix) {
        let pf = self.estimate_forward(nr, rng);
        let pb = self.estimate_backward(nr, rng);
        (affinity_from_forward(&pf), affinity_from_backward(&pb))
    }
}

/// Eq. (2): `F[v,r] = ln(n · p_f(v,r) / Σ_u p_f(u,r) + 1)`.
pub fn affinity_from_forward(pf: &DenseMatrix) -> DenseMatrix {
    let n = pf.rows();
    let col = pf.col_sums();
    let mut f = pf.clone();
    for i in 0..f.rows() {
        let row = f.row_mut(i);
        for (j, x) in row.iter_mut().enumerate() {
            *x = if col[j] > 0.0 {
                (n as f64 * *x / col[j] + 1.0).ln()
            } else {
                0.0
            };
        }
    }
    f
}

/// Eq. (3): `B[v,r] = ln(d · p_b(v,r) / Σ_s p_b(v,s) + 1)`.
pub fn affinity_from_backward(pb: &DenseMatrix) -> DenseMatrix {
    let d = pb.cols();
    let rowsum = pb.row_sums();
    let mut b = pb.clone();
    for i in 0..b.rows() {
        let s = rowsum[i];
        let row = b.row_mut(i);
        for x in row.iter_mut() {
            *x = if s > 0.0 {
                (d as f64 * *x / s + 1.0).ln()
            } else {
                0.0
            };
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two nodes: v0 -> v1, each with its own attribute.
    fn two_node_graph() -> AttributedGraph {
        let mut b = GraphBuilder::new(2, 2);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        b.add_attribute(0, 0, 1.0);
        b.add_attribute(1, 1, 1.0);
        b.build()
    }

    #[test]
    fn forward_walk_distribution_matches_closed_form() {
        // For the 2-cycle with alpha: P(stop at start) = a + (1-a)^2 a + ...
        // = a / (1 - (1-a)^2); P(stop at other) = (1-a)a / (1 - (1-a)^2).
        let g = two_node_graph();
        let alpha = 0.5;
        let sim = WalkSimulator::new(&g, alpha, DanglingPolicy::SelfLoop, RestartRule::Discard);
        let mut rng = StdRng::seed_from_u64(99);
        let nr = 60_000;
        let pf = sim.estimate_forward(nr, &mut rng);
        let q = 1.0 - alpha;
        let stay = alpha / (1.0 - q * q);
        let go = q * alpha / (1.0 - q * q);
        assert!(
            (pf.get(0, 0) - stay).abs() < 0.01,
            "{} vs {}",
            pf.get(0, 0),
            stay
        );
        assert!((pf.get(0, 1) - go).abs() < 0.01);
        assert!((pf.get(1, 1) - stay).abs() < 0.01);
    }

    #[test]
    fn backward_walk_distribution() {
        let g = two_node_graph();
        let alpha = 0.5;
        let sim = WalkSimulator::new(&g, alpha, DanglingPolicy::SelfLoop, RestartRule::Discard);
        let mut rng = StdRng::seed_from_u64(7);
        let pb = sim.estimate_backward(60_000, &mut rng);
        // Attribute 0 is owned only by v0, so backward walks start at v0.
        let q = 1.0 - alpha;
        let stay = alpha / (1.0 - q * q);
        assert!((pb.get(0, 0) - stay).abs() < 0.01);
        assert!((pb.get(1, 0) - (1.0 - stay)).abs() < 0.01);
    }

    #[test]
    fn restart_rule_conditions_distribution() {
        // v0 has no attributes; v0 -> v1 (attr r0), v0 -> v2 (no attrs, sink).
        let mut b = GraphBuilder::new(3, 1);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_attribute(1, 0, 1.0);
        let g = b.build();
        let sim_restart = WalkSimulator::new(
            &g,
            0.3,
            DanglingPolicy::SelfLoop,
            RestartRule::RestartFromSource,
        );
        let sim_discard =
            WalkSimulator::new(&g, 0.3, DanglingPolicy::SelfLoop, RestartRule::Discard);
        let mut rng = StdRng::seed_from_u64(1);
        let nr = 20_000;
        let pf_r = sim_restart.estimate_forward(nr, &mut rng);
        let pf_d = sim_discard.estimate_forward(nr, &mut rng);
        // With restarts every successful walk ends at r0: probability 1.
        assert!((pf_r.get(0, 0) - 1.0).abs() < 0.02, "{}", pf_r.get(0, 0));
        // Without restarts only the walks reaching v1 count: strictly less.
        assert!(pf_d.get(0, 0) < 0.7, "{}", pf_d.get(0, 0));
    }

    #[test]
    fn affinity_formulas_hand_checked() {
        let pf = DenseMatrix::from_rows(&[vec![0.4, 0.0], vec![0.2, 0.6]]);
        let f = affinity_from_forward(&pf);
        // col sums: 0.6, 0.6; n = 2
        assert!((f.get(0, 0) - (2.0 * 0.4 / 0.6 + 1.0f64).ln()).abs() < 1e-12);
        assert_eq!(f.get(0, 1), 0.0f64.ln().max(0.0)); // 0 -> ln(1) = 0
        let pb = DenseMatrix::from_rows(&[vec![0.4, 0.0], vec![0.2, 0.6]]);
        let bm = affinity_from_backward(&pb);
        // row 1 sum: 0.8; d = 2
        assert!((bm.get(1, 1) - (2.0 * 0.6 / 0.8 + 1.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn walks_never_panic_on_edgeless_graph() {
        let b = GraphBuilder::new(3, 2);
        let g = b.build(); // no edges, no attributes
        let sim = WalkSimulator::new(
            &g,
            0.5,
            DanglingPolicy::SelfLoop,
            RestartRule::RestartFromSource,
        );
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(sim.forward_walk(0, &mut rng), None);
        assert_eq!(sim.backward_walk(0, &mut rng), None);
    }
}
