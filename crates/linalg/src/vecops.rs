//! BLAS-level-1 kernels on `f64` slices.
//!
//! These are the innermost loops of the CCD solver (Equations 16–20 of the
//! paper evaluate row·column dot products and rank-1 row updates millions of
//! times), so they are written to auto-vectorize: plain indexed loops over
//! equal-length slices with the bounds check hoisted by an assert.

/// Dot product `x · y`.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    let mut acc = 0.0;
    for i in 0..x.len() {
        acc += x[i] * y[i];
    }
    acc
}

/// `y += a * x` (the classic axpy).
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for i in 0..x.len() {
        y[i] += a * x[i];
    }
}

/// `x *= a`.
#[inline]
pub fn scale(a: f64, x: &mut [f64]) {
    for v in x.iter_mut() {
        *v *= a;
    }
}

/// Euclidean norm `‖x‖₂`, computed without over/underflow for the value
/// ranges appearing in PANE (affinities are `ln(1 + ·) ≥ 0` and bounded by
/// `ln(n+1)`).
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Squared Euclidean norm `‖x‖₂²`.
#[inline]
pub fn norm2_sq(x: &[f64]) -> f64 {
    dot(x, x)
}

/// Sum of the entries.
#[inline]
pub fn sum(x: &[f64]) -> f64 {
    let mut acc = 0.0;
    for &v in x {
        acc += v;
    }
    acc
}

/// Largest absolute entry (0 for an empty slice).
#[inline]
pub fn max_abs(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
}

/// In-place normalization to unit Euclidean norm. Vectors with norm below
/// `tiny` are left untouched (returned `false`).
#[inline]
pub fn normalize(x: &mut [f64], tiny: f64) -> bool {
    let n = norm2(x);
    if n <= tiny {
        return false;
    }
    scale(1.0 / n, x);
    true
}

/// Cosine similarity; 0.0 when either vector is (near-)zero.
#[inline]
pub fn cosine(x: &[f64], y: &[f64]) -> f64 {
    let nx = norm2(x);
    let ny = norm2(y);
    if nx <= f64::EPSILON || ny <= f64::EPSILON {
        return 0.0;
    }
    dot(x, y) / (nx * ny)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn axpy_basic() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn norm_and_normalize() {
        let mut x = vec![3.0, 4.0];
        assert_eq!(norm2(&x), 5.0);
        assert!(normalize(&mut x, 1e-300));
        assert!((norm2(&x) - 1.0).abs() < 1e-12);
        let mut z = vec![0.0, 0.0];
        assert!(!normalize(&mut z, 1e-300));
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn cosine_bounds_and_degenerate() {
        assert_eq!(cosine(&[0.0], &[1.0]), 0.0);
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_abs_basic() {
        assert_eq!(max_abs(&[]), 0.0);
        assert_eq!(max_abs(&[-3.0, 2.0]), 3.0);
    }

    proptest! {
        #[test]
        fn prop_dot_symmetric(v in proptest::collection::vec(-1e3f64..1e3, 0..64)) {
            let w: Vec<f64> = v.iter().rev().cloned().collect();
            prop_assert!((dot(&v, &w) - dot(&w, &v)).abs() < 1e-9 * (1.0 + dot(&v, &v).abs()));
        }

        #[test]
        fn prop_cauchy_schwarz(
            x in proptest::collection::vec(-1e2f64..1e2, 1..32),
            seed in 0u64..1000,
        ) {
            let y: Vec<f64> = x.iter().map(|v| v * ((seed % 7) as f64 + 0.5)).collect();
            prop_assert!(dot(&x, &y).abs() <= norm2(&x) * norm2(&y) + 1e-6);
        }

        #[test]
        fn prop_cosine_in_range(
            x in proptest::collection::vec(-1e2f64..1e2, 1..32),
            y in proptest::collection::vec(-1e2f64..1e2, 1..32),
        ) {
            let n = x.len().min(y.len());
            let c = cosine(&x[..n], &y[..n]);
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&c));
        }
    }
}
