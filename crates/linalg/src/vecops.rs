//! BLAS-level-1 kernels on `f64` slices.
//!
//! These are the innermost loops of the CCD solver (Equations 16–20 of the
//! paper evaluate row·column dot products and rank-1 row updates millions of
//! times). The reductions ([`dot`], and through it [`norm2`]/[`cosine`])
//! delegate to the fixed 8-lane kernels in [`crate::kernels`], which breaks
//! the serial FP dependency chain so the loops vectorize; the lane count is
//! part of the determinism contract (see the `kernels` module docs), so
//! results are bit-identical across platforms, thread counts, and entry
//! points. The element-wise ops stay plain indexed loops with the bounds
//! check hoisted by an assert.

/// Dot product `x · y`, computed with the fixed 8-lane kernel
/// [`crate::kernels::dot`] (see its docs for the exact summation order).
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    crate::kernels::dot(x, y)
}

/// `y += a * x` (the classic axpy).
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for i in 0..x.len() {
        y[i] += a * x[i];
    }
}

/// `x *= a`.
#[inline]
pub fn scale(a: f64, x: &mut [f64]) {
    for v in x.iter_mut() {
        *v *= a;
    }
}

/// Euclidean norm `‖x‖₂`, computed without over/underflow for the value
/// ranges appearing in PANE (affinities are `ln(1 + ·) ≥ 0` and bounded by
/// `ln(n+1)`).
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Squared Euclidean norm `‖x‖₂²`.
#[inline]
pub fn norm2_sq(x: &[f64]) -> f64 {
    dot(x, x)
}

/// Sum of the entries.
///
/// NaN propagates: any NaN entry makes the result NaN (IEEE-754 addition
/// already guarantees this; stated and pinned by test so it stays part of
/// the contract).
#[inline]
pub fn sum(x: &[f64]) -> f64 {
    let mut acc = 0.0;
    for &v in x {
        acc += v;
    }
    acc
}

/// Largest absolute entry (0 for an empty slice).
///
/// NaN propagates: any NaN entry makes the result NaN. A bare
/// `fold(0.0, f64::max)` would silently *drop* NaN (`f64::max` prefers the
/// non-NaN operand), reporting a plausible-but-wrong maximum for corrupted
/// input — callers use this for quantizer scales and convergence checks,
/// where a poisoned input must surface, not vanish.
#[inline]
pub fn max_abs(x: &[f64]) -> f64 {
    let mut m = 0.0_f64;
    let mut has_nan = false;
    for &v in x {
        has_nan |= v.is_nan();
        m = m.max(v.abs());
    }
    if has_nan {
        f64::NAN
    } else {
        m
    }
}

/// In-place normalization to unit Euclidean norm. Vectors with norm below
/// `tiny` are left untouched (returned `false`).
#[inline]
pub fn normalize(x: &mut [f64], tiny: f64) -> bool {
    let n = norm2(x);
    if n <= tiny {
        return false;
    }
    scale(1.0 / n, x);
    true
}

/// Cosine similarity; 0.0 when either vector is (near-)zero.
#[inline]
pub fn cosine(x: &[f64], y: &[f64]) -> f64 {
    let nx = norm2(x);
    let ny = norm2(y);
    if nx <= f64::EPSILON || ny <= f64::EPSILON {
        return 0.0;
    }
    dot(x, y) / (nx * ny)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn axpy_basic() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn norm_and_normalize() {
        let mut x = vec![3.0, 4.0];
        assert_eq!(norm2(&x), 5.0);
        assert!(normalize(&mut x, 1e-300));
        assert!((norm2(&x) - 1.0).abs() < 1e-12);
        let mut z = vec![0.0, 0.0];
        assert!(!normalize(&mut z, 1e-300));
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn cosine_bounds_and_degenerate() {
        assert_eq!(cosine(&[0.0], &[1.0]), 0.0);
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_abs_basic() {
        assert_eq!(max_abs(&[]), 0.0);
        assert_eq!(max_abs(&[-3.0, 2.0]), 3.0);
    }

    #[test]
    fn max_abs_propagates_nan() {
        // `f64::max` drops NaN; max_abs must not — a poisoned vector has
        // no meaningful maximum. Pinned regardless of NaN position.
        assert!(max_abs(&[f64::NAN]).is_nan());
        assert!(max_abs(&[f64::NAN, 5.0]).is_nan());
        assert!(max_abs(&[5.0, f64::NAN]).is_nan());
        assert!(max_abs(&[1.0, f64::NAN, 9.0]).is_nan());
    }

    #[test]
    fn sum_propagates_nan() {
        assert!(sum(&[1.0, f64::NAN, 2.0]).is_nan());
        assert!(sum(&[f64::NAN]).is_nan());
        assert_eq!(sum(&[1.0, 2.0, 3.0]), 6.0);
    }

    #[test]
    fn dot_delegates_to_fixed_lane_kernel() {
        // vecops::dot IS the 8-lane kernel — one summation order repo-wide.
        let x: Vec<f64> = (0..37).map(|i| (i as f64).sin()).collect();
        let y: Vec<f64> = (0..37).map(|i| (i as f64).cos()).collect();
        assert_eq!(dot(&x, &y).to_bits(), crate::kernels::dot(&x, &y).to_bits());
    }

    proptest! {
        #[test]
        fn prop_dot_symmetric(v in proptest::collection::vec(-1e3f64..1e3, 0..64)) {
            let w: Vec<f64> = v.iter().rev().cloned().collect();
            prop_assert!((dot(&v, &w) - dot(&w, &v)).abs() < 1e-9 * (1.0 + dot(&v, &v).abs()));
        }

        #[test]
        fn prop_cauchy_schwarz(
            x in proptest::collection::vec(-1e2f64..1e2, 1..32),
            seed in 0u64..1000,
        ) {
            let y: Vec<f64> = x.iter().map(|v| v * ((seed % 7) as f64 + 0.5)).collect();
            prop_assert!(dot(&x, &y).abs() <= norm2(&x) * norm2(&y) + 1e-6);
        }

        #[test]
        fn prop_cosine_in_range(
            x in proptest::collection::vec(-1e2f64..1e2, 1..32),
            y in proptest::collection::vec(-1e2f64..1e2, 1..32),
        ) {
            let n = x.len().min(y.len());
            let c = cosine(&x[..n], &y[..n]);
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&c));
        }
    }
}
