#![warn(missing_docs)]
//! Dense linear algebra substrate for the PANE reproduction.
//!
//! The PANE solver (Algorithms 3, 4, 7) needs a small but carefully chosen
//! set of dense kernels:
//!
//! * a row-major [`DenseMatrix`] with cache-friendly products
//!   ([`DenseMatrix::matmul`], [`DenseMatrix::matmul_transb`],
//!   [`DenseMatrix::tr_matmul`]) and block-parallel variants;
//! * thin QR factorization ([`qr::thin_qr`]) via modified Gram–Schmidt with
//!   re-orthogonalization;
//! * an exact SVD for small/tall matrices via one-sided Jacobi rotations
//!   ([`jacobi::jacobi_svd`]);
//! * the randomized SVD of Musco & Musco (power-iteration variant) used by
//!   GreedyInit ([`randsvd::rand_svd`], "RandSVD" in the paper).
//!
//! Everything is `f64`; the matrices involved are `n × d` affinity matrices
//! and `n × k/2` factor matrices, never `n × n` (avoiding the quadratic
//! proximity matrix is the whole point of the paper).

// Indexed loops in the numeric kernels are deliberate (they keep the
// zip-free auto-vectorizable shape the perf guide recommends).
#![allow(clippy::needless_range_loop)]
pub mod dense;
pub mod jacobi;
pub mod kernels;
pub mod qr;
pub mod randsvd;
pub mod rng;
pub mod solve;
pub mod vecops;

pub use dense::DenseMatrix;
pub use jacobi::jacobi_svd;
pub use qr::thin_qr;
pub use randsvd::{rand_svd, svd_exact, RandSvdConfig, Svd};
pub use rng::NormalSampler;
pub use solve::{lstsq, pinv};
