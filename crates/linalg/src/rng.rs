//! Gaussian sampling for randomized sketching.
//!
//! RandSVD needs a dense Gaussian test matrix `Ω`. The `rand` crate only
//! ships uniform distributions in its core (the normal distribution lives in
//! the separate `rand_distr` crate, which is outside our dependency budget),
//! so we implement the Marsaglia polar method here. It produces pairs of
//! independent `N(0,1)` samples; the spare sample is cached.

use rand::Rng;

/// A standard-normal sampler caching the second Marsaglia-polar deviate.
#[derive(Debug, Default, Clone)]
pub struct NormalSampler {
    spare: Option<f64>,
}

impl NormalSampler {
    /// Creates a sampler with an empty cache.
    pub fn new() -> Self {
        Self { spare: None }
    }

    /// Draws one `N(0, 1)` sample.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(v) = self.spare.take() {
            return v;
        }
        loop {
            // u, v uniform on (-1, 1); accept when inside the unit disc.
            let u: f64 = rng.gen::<f64>() * 2.0 - 1.0;
            let v: f64 = rng.gen::<f64>() * 2.0 - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let m = (-2.0 * s.ln() / s).sqrt();
                self.spare = Some(v * m);
                return u * m;
            }
        }
    }

    /// Fills `out` with i.i.d. `N(0, 1)` samples.
    pub fn fill<R: Rng + ?Sized>(&mut self, rng: &mut R, out: &mut [f64]) {
        for slot in out.iter_mut() {
            *slot = self.sample(rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut s = NormalSampler::new();
        let n = 40_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = s.sample(&mut rng);
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.03, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }

    #[test]
    fn deterministic_given_seed() {
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut s = NormalSampler::new();
            (0..8).map(|_| s.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }

    #[test]
    fn fill_matches_repeated_sample() {
        let mut rng1 = StdRng::seed_from_u64(1);
        let mut rng2 = StdRng::seed_from_u64(1);
        let mut s1 = NormalSampler::new();
        let mut s2 = NormalSampler::new();
        let mut buf = [0.0; 9];
        s1.fill(&mut rng1, &mut buf);
        let manual: Vec<f64> = (0..9).map(|_| s2.sample(&mut rng2)).collect();
        assert_eq!(buf.to_vec(), manual);
    }
}
