//! Thin QR factorization via modified Gram–Schmidt.
//!
//! RandSVD repeatedly orthonormalizes tall sketch matrices (`n × ℓ` with
//! `ℓ ≪ n`). Modified Gram–Schmidt with a second re-orthogonalization pass
//! ("MGS2") is numerically adequate here: the loss of orthogonality of MGS2
//! is `O(ε)` independent of the condition number, at twice the flops —
//! a good trade for the small `ℓ` used by PANE (`ℓ = k/2 + oversampling`).
//!
//! Rank deficiency (a column that becomes numerically zero after projection)
//! is handled the way randomized SVD wants it handled: the column of `Q` is
//! replaced by a deterministic pseudo-random direction re-orthogonalized
//! against the previous columns, and the corresponding `R` entries stay 0.
//! This keeps `Q` a full orthonormal basis, and `QR = A` still holds because
//! the replaced column is multiplied by zero rows of `R`.

use crate::dense::DenseMatrix;
use crate::vecops;

/// Result of a thin QR factorization `A = Q·R`.
pub struct QrFactors {
    /// `n × ℓ` with orthonormal columns.
    pub q: DenseMatrix,
    /// `ℓ × ℓ` upper triangular.
    pub r: DenseMatrix,
    /// Number of columns that were numerically rank-deficient.
    pub deficient: usize,
}

/// Numerical tolerance below which a projected column is treated as zero,
/// relative to the largest original column norm.
const RANK_TOL: f64 = 1e-12;

/// Thin QR of a tall matrix (`rows >= cols` is not required but is the
/// intended use; wide inputs still produce a valid factorization of the
/// leading `cols` directions).
pub fn thin_qr(a: &DenseMatrix) -> QrFactors {
    let n = a.rows();
    let l = a.cols();
    // Work on the transpose so each column is contiguous.
    let mut qt = a.transpose(); // l × n, row i = column i of A
    let mut r = DenseMatrix::zeros(l, l);
    let mut deficient = 0;

    let scale = (0..l)
        .map(|j| vecops::norm2(qt.row(j)))
        .fold(0.0_f64, f64::max)
        .max(1.0);

    for j in 0..l {
        // Project out previous directions — two passes (MGS2).
        for _pass in 0..2 {
            for i in 0..j {
                let (qi, qj) = rows_pair(&mut qt, i, j, n);
                let c = vecops::dot(qi, qj);
                vecops::axpy(-c, qi, qj);
                r.add_at(i, j, c);
            }
        }
        let norm = vecops::norm2(qt.row(j));
        if norm <= RANK_TOL * scale {
            deficient += 1;
            // Replace with a deterministic direction orthogonal to previous
            // columns; R[j][j] stays 0 so A = QR is preserved.
            refill_column(&mut qt, j, n);
        } else {
            r.set(j, j, norm);
            vecops::scale(1.0 / norm, qt.row_mut(j));
        }
    }
    QrFactors {
        q: qt.transpose(),
        r,
        deficient,
    }
}

/// Gets two distinct rows of the transposed working matrix as
/// (&, &mut) slices.
fn rows_pair(qt: &mut DenseMatrix, i: usize, j: usize, n: usize) -> (&[f64], &mut [f64]) {
    debug_assert!(i < j);
    let data = qt.data_mut();
    let (head, tail) = data.split_at_mut(j * n);
    (&head[i * n..i * n + n], &mut tail[..n])
}

/// Fills column `j` with a normalized pseudo-random direction orthogonal to
/// columns `0..j`. Uses a splitmix-style hash so the result is deterministic.
fn refill_column(qt: &mut DenseMatrix, j: usize, n: usize) {
    let mut state = 0x9E37_79B9_7F4A_7C15_u64 ^ (j as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    {
        let row = qt.row_mut(j);
        for v in row.iter_mut() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Map to roughly uniform in [-1, 1).
            *v = ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0;
        }
    }
    for _pass in 0..2 {
        for i in 0..j {
            let (qi, qj) = rows_pair(qt, i, j, n);
            let c = vecops::dot(qi, qj);
            vecops::axpy(-c, qi, qj);
        }
    }
    let norm = vecops::norm2(qt.row(j));
    if norm > 0.0 {
        vecops::scale(1.0 / norm, qt.row_mut(j));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn reconstruct(f: &QrFactors) -> DenseMatrix {
        f.q.matmul(&f.r)
    }

    #[test]
    fn qr_reconstructs_random_tall() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = DenseMatrix::gaussian(40, 7, &mut rng);
        let f = thin_qr(&a);
        assert_eq!(f.deficient, 0);
        assert!(f.q.is_orthonormal(1e-10));
        assert!(reconstruct(&f).max_abs_diff(&a) < 1e-10);
        // R upper triangular
        for i in 0..7 {
            for j in 0..i {
                assert_eq!(f.r.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn qr_handles_rank_deficiency() {
        // Third column = sum of first two.
        let mut rng = StdRng::seed_from_u64(12);
        let base = DenseMatrix::gaussian(20, 2, &mut rng);
        let mut a = DenseMatrix::zeros(20, 3);
        for i in 0..20 {
            a.set(i, 0, base.get(i, 0));
            a.set(i, 1, base.get(i, 1));
            a.set(i, 2, base.get(i, 0) + base.get(i, 1));
        }
        let f = thin_qr(&a);
        assert_eq!(f.deficient, 1);
        assert!(f.q.is_orthonormal(1e-9));
        assert!(reconstruct(&f).max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn qr_of_orthonormal_is_identityish() {
        let q0 = DenseMatrix::identity(6);
        let f = thin_qr(&q0);
        assert!(f.q.max_abs_diff(&q0) < 1e-12);
        assert!(f.r.max_abs_diff(&DenseMatrix::identity(6)) < 1e-12);
    }

    #[test]
    fn qr_all_zero_matrix() {
        let a = DenseMatrix::zeros(10, 3);
        let f = thin_qr(&a);
        assert_eq!(f.deficient, 3);
        assert!(f.q.is_orthonormal(1e-9));
        assert!(reconstruct(&f).max_abs_diff(&a) < 1e-12);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn prop_qr_invariants(seed in 0u64..10_000, n in 4usize..40, l in 1usize..8) {
            let l = l.min(n);
            let mut rng = StdRng::seed_from_u64(seed);
            let a = DenseMatrix::gaussian(n, l, &mut rng);
            let f = thin_qr(&a);
            prop_assert!(f.q.is_orthonormal(1e-9));
            prop_assert!(reconstruct(&f).max_abs_diff(&a) < 1e-8);
        }

        #[test]
        fn prop_qr_badly_scaled(seed in 0u64..10_000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut a = DenseMatrix::gaussian(30, 5, &mut rng);
            // Scale the columns over 12 orders of magnitude.
            for i in 0..30 {
                for j in 0..5 {
                    let s = 10f64.powi((j as i32 - 2) * 6);
                    a.set(i, j, a.get(i, j) * s);
                }
            }
            let f = thin_qr(&a);
            prop_assert!(f.q.is_orthonormal(1e-8));
            let rel = reconstruct(&f).max_abs_diff(&a) / a.frob_norm().max(1.0);
            prop_assert!(rel < 1e-9);
        }
    }
}
