//! One-sided Jacobi SVD.
//!
//! Used as the "small exact SVD" inside RandSVD: after sketching, the
//! problem is reduced to an `ℓ × d` (or `ℓ × ℓ`) matrix with tiny `ℓ`,
//! for which one-sided Jacobi is simple, accurate (it computes even tiny
//! singular values to high relative accuracy) and has no LAPACK dependency.
//!
//! The method orthogonalizes the **columns** of a working copy `W` of the
//! input by a sequence of plane rotations `W ← W·J(p,q,θ)`, accumulating the
//! rotations into `V`. At convergence `W = U·Σ` with `U` orthonormal, so
//! `A = U·Σ·Vᵀ`.

use crate::dense::DenseMatrix;
use crate::vecops;

/// Singular value decomposition `A = U · diag(s) · Vᵀ`.
pub struct JacobiSvd {
    /// `n × r` with orthonormal columns.
    pub u: DenseMatrix,
    /// Singular values, descending, length `r`.
    pub s: Vec<f64>,
    /// `m × r` with orthonormal columns.
    pub v: DenseMatrix,
    /// Number of sweeps performed.
    pub sweeps: usize,
}

/// Maximum number of sweeps before giving up (converges in ~10 for the
/// matrix sizes used here; 60 is a generous safety margin).
const MAX_SWEEPS: usize = 60;

/// Relative off-diagonal tolerance for convergence.
const TOL: f64 = 1e-13;

/// Full-rank one-sided Jacobi SVD of `a` (`n × m`).
///
/// Returns factors of rank `r = min(n, m)`. For numerical rank deficiency
/// the trailing singular values are ≈0 and the matching `U` columns are the
/// (arbitrary) orthonormal completion produced by column normalization of
/// near-zero columns — callers truncate by `s` when they care.
///
/// Internally transposes wide inputs so the working matrix is always tall.
pub fn jacobi_svd(a: &DenseMatrix) -> JacobiSvd {
    if a.rows() >= a.cols() {
        jacobi_svd_tall(a)
    } else {
        // A = U Σ Vᵀ  ⇔  Aᵀ = V Σ Uᵀ
        let t = jacobi_svd_tall(&a.transpose());
        JacobiSvd {
            u: t.v,
            s: t.s,
            v: t.u,
            sweeps: t.sweeps,
        }
    }
}

fn jacobi_svd_tall(a: &DenseMatrix) -> JacobiSvd {
    let n = a.rows();
    let m = a.cols();
    debug_assert!(n >= m);
    // Work on the transpose so "columns" of A are contiguous rows here.
    let mut wt = a.transpose(); // m × n
    let mut vt = DenseMatrix::identity(m); // accumulates V as rows of Vᵀ... see below

    // We accumulate rotations in V directly: represent V as row-major m × m,
    // and rotate its *rows* p and q the same way we rotate W's columns
    // (rows of wt). This yields V with V[i][j] = rotation product, and at
    // convergence A·V = U·Σ, i.e. A = U·Σ·Vᵀ with V = vt viewed as m × m
    // where column j of V is... we maintain the invariant wt = (A·V)ᵀ, so V
    // is updated as V ← V·J, meaning rows of vtᵀ... To keep indexing simple
    // we store `v` as m × m row-major and update rows p, q with the same
    // rotation coefficients, maintaining wt.row(j) = (A · v_col_j)ᵀ where
    // v_col_j = v.row(j). So at the end, V (with columns v_col_j) has
    // row-major representation = vᵀ; we transpose once when packaging.
    let frob = a.frob_norm();
    let mut sweeps = 0;
    if frob > 0.0 {
        for sweep in 0..MAX_SWEEPS {
            sweeps = sweep + 1;
            let mut rotated = false;
            for p in 0..m {
                for q in (p + 1)..m {
                    let (wp, wq) = pair_mut(&mut wt, p, q, n);
                    let app = vecops::norm2_sq(wp);
                    let aqq = vecops::norm2_sq(wq);
                    let apq = vecops::dot(wp, wq);
                    if apq.abs() <= TOL * (app * aqq).sqrt() || apq == 0.0 {
                        continue;
                    }
                    rotated = true;
                    // Classic Jacobi rotation annihilating the (p,q) Gram entry.
                    let zeta = (aqq - app) / (2.0 * apq);
                    let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = c * t;
                    rotate(wp, wq, c, s);
                    let (vp, vq) = pair_mut(&mut vt, p, q, m);
                    rotate(vp, vq, c, s);
                }
            }
            if !rotated {
                break;
            }
        }
    }

    // Singular values = column norms of the rotated A (rows of wt).
    let mut order: Vec<usize> = (0..m).collect();
    let norms: Vec<f64> = (0..m).map(|j| vecops::norm2(wt.row(j))).collect();
    order.sort_by(|&i, &j| norms[j].partial_cmp(&norms[i]).unwrap());

    let mut u = DenseMatrix::zeros(n, m);
    let mut v = DenseMatrix::zeros(m, m);
    let mut s = Vec::with_capacity(m);
    for (out_j, &src_j) in order.iter().enumerate() {
        let sigma = norms[src_j];
        s.push(sigma);
        if sigma > 0.0 {
            let inv = 1.0 / sigma;
            for i in 0..n {
                u.set(i, out_j, wt.get(src_j, i) * inv);
            }
        }
        for i in 0..m {
            v.set(i, out_j, vt.get(src_j, i));
        }
    }
    JacobiSvd { u, s, v, sweeps }
}

/// Two distinct rows as mutable slices.
fn pair_mut(mat: &mut DenseMatrix, p: usize, q: usize, width: usize) -> (&mut [f64], &mut [f64]) {
    debug_assert!(p < q);
    let data = mat.data_mut();
    let (head, tail) = data.split_at_mut(q * width);
    (&mut head[p * width..p * width + width], &mut tail[..width])
}

/// Applies the rotation `[c -s; s c]` to the pair of vectors.
#[inline]
fn rotate(x: &mut [f64], y: &mut [f64], c: f64, s: f64) {
    for i in 0..x.len() {
        let xi = x[i];
        let yi = y[i];
        x[i] = c * xi - s * yi;
        y[i] = s * xi + c * yi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn reconstruct(svd: &JacobiSvd) -> DenseMatrix {
        // U · diag(s) · Vᵀ
        let mut us = svd.u.clone();
        for i in 0..us.rows() {
            for (j, &sv) in svd.s.iter().enumerate() {
                us.set(i, j, us.get(i, j) * sv);
            }
        }
        us.matmul_transb(&svd.v)
    }

    #[test]
    fn svd_of_diagonal() {
        let a = DenseMatrix::from_rows(&[
            vec![3.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 2.0],
            vec![0.0, 0.0, 0.0],
        ]);
        let svd = jacobi_svd(&a);
        assert!((svd.s[0] - 3.0).abs() < 1e-12);
        assert!((svd.s[1] - 2.0).abs() < 1e-12);
        assert!((svd.s[2] - 1.0).abs() < 1e-12);
        assert!(reconstruct(&svd).max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn svd_random_tall() {
        let mut rng = StdRng::seed_from_u64(21);
        let a = DenseMatrix::gaussian(30, 6, &mut rng);
        let svd = jacobi_svd(&a);
        assert!(svd.u.is_orthonormal(1e-10));
        assert!(svd.v.is_orthonormal(1e-10));
        assert!(reconstruct(&svd).max_abs_diff(&a) < 1e-10);
        for w in svd.s.windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "singular values not sorted");
        }
    }

    #[test]
    fn svd_random_wide() {
        let mut rng = StdRng::seed_from_u64(22);
        let a = DenseMatrix::gaussian(5, 19, &mut rng);
        let svd = jacobi_svd(&a);
        assert_eq!(svd.u.shape(), (5, 5));
        assert_eq!(svd.v.shape(), (19, 5));
        assert!(svd.u.is_orthonormal(1e-10));
        assert!(svd.v.is_orthonormal(1e-10));
        assert!(reconstruct(&svd).max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn svd_rank_deficient() {
        let mut rng = StdRng::seed_from_u64(23);
        let u = DenseMatrix::gaussian(12, 2, &mut rng);
        let v = DenseMatrix::gaussian(5, 2, &mut rng);
        let a = u.matmul_transb(&v); // rank <= 2
        let svd = jacobi_svd(&a);
        assert!(svd.s[2] < 1e-10 * svd.s[0].max(1.0));
        assert!(reconstruct(&svd).max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn svd_zero_matrix() {
        let a = DenseMatrix::zeros(4, 3);
        let svd = jacobi_svd(&a);
        assert!(svd.s.iter().all(|&x| x == 0.0));
        assert!(reconstruct(&svd).max_abs_diff(&a) < 1e-15);
    }

    #[test]
    fn singular_values_match_gram_eigenvalues() {
        let mut rng = StdRng::seed_from_u64(24);
        let a = DenseMatrix::gaussian(10, 4, &mut rng);
        let svd = jacobi_svd(&a);
        // Σ σ_i² = ‖A‖_F²
        let sumsq: f64 = svd.s.iter().map(|x| x * x).sum();
        assert!((sumsq - a.frob_norm_sq()).abs() < 1e-9 * a.frob_norm_sq());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(20))]

        #[test]
        fn prop_svd_invariants(seed in 0u64..10_000, n in 2usize..20, m in 2usize..20) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = DenseMatrix::gaussian(n, m, &mut rng);
            let svd = jacobi_svd(&a);
            prop_assert!(svd.u.is_orthonormal(1e-9));
            prop_assert!(svd.v.is_orthonormal(1e-9));
            prop_assert!(reconstruct(&svd).max_abs_diff(&a) < 1e-8);
            prop_assert!(svd.s.iter().all(|&x| x >= 0.0));
            for w in svd.s.windows(2) {
                prop_assert!(w[0] >= w[1] - 1e-10);
            }
        }
    }
}
