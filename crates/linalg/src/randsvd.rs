//! Randomized truncated SVD ("RandSVD" in the paper).
//!
//! GreedyInit (Algorithm 3) seeds the CCD solver with
//! `U, Σ, V ← RandSVD(F', k/2, t)`. The cited method \[30\] is Musco & Musco's
//! randomized block Krylov / power iteration; we implement the
//! power-iteration variant, which is the one used by practical systems:
//!
//! 1. sketch `Y = A·Ω` with Gaussian `Ω ∈ R^{d×ℓ}`, `ℓ = rank + oversample`;
//! 2. orthonormalize; run `q` power rounds `Y ← A·qr(Aᵀ·Q).Q` to sharpen the
//!    spectrum (every round re-orthonormalizes for stability);
//! 3. project `B = Qᵀ·A` (`ℓ × d`) and take its exact (Jacobi) SVD;
//! 4. lift: `U = Q·U_B`, truncate everything to `rank`.
//!
//! The returned `V` has orthonormal columns — the property Lemma 4.2 relies
//! on (`YᵀY = I`) — and `U·diag(s)·Vᵀ` is a near-best rank-`rank`
//! approximation of `A` with the usual `(1+ε)`-type guarantees.

use crate::dense::DenseMatrix;
use crate::jacobi::jacobi_svd;
use crate::qr::thin_qr;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Truncated SVD `A ≈ U · diag(s) · Vᵀ`.
#[derive(Clone)]
pub struct Svd {
    /// `n × r`.
    pub u: DenseMatrix,
    /// Length `r`, descending.
    pub s: Vec<f64>,
    /// `d × r`, orthonormal columns.
    pub v: DenseMatrix,
}

impl Svd {
    /// `U · diag(s)` — the "node side" factor used for `X_f` in GreedyInit.
    pub fn u_sigma(&self) -> DenseMatrix {
        let mut us = self.u.clone();
        for i in 0..us.rows() {
            let row = us.row_mut(i);
            for (j, &sv) in self.s.iter().enumerate() {
                row[j] *= sv;
            }
        }
        us
    }

    /// Reconstruction `U · diag(s) · Vᵀ`.
    pub fn reconstruct(&self) -> DenseMatrix {
        self.u_sigma().matmul_transb(&self.v)
    }
}

/// Configuration for [`rand_svd`].
#[derive(Debug, Clone, Copy)]
pub struct RandSvdConfig {
    /// Target rank `r` (the paper uses `k/2`).
    pub rank: usize,
    /// Number of power iterations (the paper passes its global `t` here).
    pub power_iters: usize,
    /// Column oversampling added to the sketch width.
    pub oversample: usize,
    /// RNG seed for the Gaussian test matrix.
    pub seed: u64,
}

impl RandSvdConfig {
    /// Defaults matching the paper's usage: oversampling 8.
    pub fn new(rank: usize, power_iters: usize, seed: u64) -> Self {
        Self {
            rank,
            power_iters,
            oversample: 8,
            seed,
        }
    }
}

/// Randomized truncated SVD of `a` (`n × d`).
///
/// # Panics
/// Panics if `rank == 0`.
pub fn rand_svd(a: &DenseMatrix, cfg: &RandSvdConfig) -> Svd {
    assert!(cfg.rank > 0, "rand_svd: rank must be positive");
    let n = a.rows();
    let d = a.cols();
    let min_dim = n.min(d);
    if min_dim == 0 {
        return Svd {
            u: DenseMatrix::zeros(n, cfg.rank),
            s: vec![0.0; cfg.rank],
            v: DenseMatrix::zeros(d, cfg.rank),
        };
    }
    // If the matrix is already small, fall back to the exact SVD: cheaper
    // and exact (this also makes t = ∞ semantics of Lemma 4.2 testable).
    let sketch = (cfg.rank + cfg.oversample).min(min_dim);
    if min_dim <= sketch || min_dim <= cfg.rank {
        return truncate(svd_exact(a), cfg.rank, n, d);
    }

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let omega = DenseMatrix::gaussian(d, sketch, &mut rng);
    let mut q = thin_qr(&a.matmul(&omega)).q; // n × ℓ
    for _ in 0..cfg.power_iters {
        let z = thin_qr(&a.tr_matmul(&q)).q; // d × ℓ
        q = thin_qr(&a.matmul(&z)).q;
    }
    let b = q.tr_matmul(a); // ℓ × d
    let small = jacobi_svd(&b);
    let u = q.matmul(&small.u); // n × ℓ
    truncate(
        Svd {
            u,
            s: small.s,
            v: small.v,
        },
        cfg.rank,
        n,
        d,
    )
}

/// Exact SVD via one-sided Jacobi (use only for small or thin matrices).
pub fn svd_exact(a: &DenseMatrix) -> Svd {
    let j = jacobi_svd(a);
    Svd {
        u: j.u,
        s: j.s,
        v: j.v,
    }
}

/// Truncates (or zero-pads) an SVD to exactly `rank` components.
fn truncate(svd: Svd, rank: usize, n: usize, d: usize) -> Svd {
    let have = svd.s.len();
    if have == rank {
        return svd;
    }
    let keep = have.min(rank);
    let mut u = DenseMatrix::zeros(n, rank);
    let mut v = DenseMatrix::zeros(d, rank);
    let mut s = vec![0.0; rank];
    for j in 0..keep {
        s[j] = svd.s[j];
        for i in 0..n {
            u.set(i, j, svd.u.get(i, j));
        }
        for i in 0..d {
            v.set(i, j, svd.v.get(i, j));
        }
    }
    Svd { u, s, v }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::Rng;

    /// Builds a matrix with a controlled, fast-decaying spectrum.
    fn low_rank_plus_noise(n: usize, d: usize, rank: usize, noise: f64, seed: u64) -> DenseMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = DenseMatrix::gaussian(n, rank, &mut rng);
        let v = DenseMatrix::gaussian(d, rank, &mut rng);
        let mut a = u.matmul_transb(&v);
        for x in a.data_mut().iter_mut() {
            *x += noise * (rng.gen::<f64>() - 0.5);
        }
        a
    }

    #[test]
    fn recovers_low_rank_matrix() {
        let a = low_rank_plus_noise(60, 25, 4, 0.0, 31);
        let svd = rand_svd(&a, &RandSvdConfig::new(4, 3, 7));
        let err = svd.reconstruct().max_abs_diff(&a);
        assert!(err < 1e-8, "reconstruction error {err}");
        assert!(svd.v.is_orthonormal(1e-9));
    }

    #[test]
    fn near_best_rank_k_error() {
        let a = low_rank_plus_noise(50, 30, 8, 0.3, 32);
        let exact = svd_exact(&a);
        let k = 5;
        // Best possible rank-k Frobenius error: sqrt(sum of tail sigma^2).
        let best: f64 = exact.s[k..].iter().map(|x| x * x).sum::<f64>().sqrt();
        let approx = rand_svd(&a, &RandSvdConfig::new(k, 4, 77));
        let err = approx.reconstruct().sub(&a).frob_norm();
        assert!(err <= 1.1 * best + 1e-9, "err {err} vs best {best}");
    }

    #[test]
    fn more_power_iters_does_not_hurt() {
        let a = low_rank_plus_noise(40, 40, 6, 0.5, 33);
        let e1 = rand_svd(&a, &RandSvdConfig::new(4, 0, 5))
            .reconstruct()
            .sub(&a)
            .frob_norm();
        let e2 = rand_svd(&a, &RandSvdConfig::new(4, 6, 5))
            .reconstruct()
            .sub(&a)
            .frob_norm();
        assert!(
            e2 <= e1 + 1e-9,
            "power iterations increased error: {e1} -> {e2}"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = low_rank_plus_noise(30, 20, 3, 0.1, 34);
        let s1 = rand_svd(&a, &RandSvdConfig::new(3, 2, 9));
        let s2 = rand_svd(&a, &RandSvdConfig::new(3, 2, 9));
        assert_eq!(s1.u, s2.u);
        assert_eq!(s1.v, s2.v);
    }

    #[test]
    fn rank_larger_than_dims_pads() {
        let a = low_rank_plus_noise(6, 4, 2, 0.0, 35);
        let svd = rand_svd(&a, &RandSvdConfig::new(10, 2, 1));
        assert_eq!(svd.u.shape(), (6, 10));
        assert_eq!(svd.v.shape(), (4, 10));
        assert_eq!(svd.s.len(), 10);
        assert!(svd.reconstruct().max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn empty_matrix_ok() {
        let a = DenseMatrix::zeros(0, 5);
        let svd = rand_svd(&a, &RandSvdConfig::new(3, 1, 0));
        assert_eq!(svd.u.shape(), (0, 3));
        assert_eq!(svd.v.shape(), (5, 3));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn prop_v_orthonormal_and_error_bounded(
            seed in 0u64..10_000,
            n in 10usize..40,
            d in 10usize..40,
            rank in 2usize..6,
        ) {
            let a = low_rank_plus_noise(n, d, rank + 2, 0.2, seed);
            let svd = rand_svd(&a, &RandSvdConfig::new(rank, 3, seed ^ 0xAB));
            prop_assert!(svd.v.is_orthonormal(1e-8));
            let exact = svd_exact(&a);
            let best: f64 = exact.s[rank.min(exact.s.len())..].iter().map(|x| x * x).sum::<f64>().sqrt();
            let err = svd.reconstruct().sub(&a).frob_norm();
            // Power iterations make this essentially tight; allow slack.
            prop_assert!(err <= 1.25 * best + 1e-6, "err {} vs best {}", err, best);
        }
    }
}
