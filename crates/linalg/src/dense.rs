//! Row-major dense matrix.
//!
//! [`DenseMatrix`] stores `rows × cols` values contiguously, row by row.
//! Rows are the unit of parallelism throughout the reproduction (nodes are
//! rows of the affinity/embedding matrices), so row access is free and the
//! three product kernels are chosen so that the innermost loop is always a
//! contiguous traversal:
//!
//! * [`matmul`](DenseMatrix::matmul) — `C = A·B` in i-l-j order (`C`'s and
//!   `B`'s rows stream);
//! * [`matmul_transb`](DenseMatrix::matmul_transb) — `C = A·Bᵀ` as row·row
//!   dot products;
//! * [`tr_matmul`](DenseMatrix::tr_matmul) — `C = Aᵀ·B` as a sum of outer
//!   products of matching rows.

use crate::rng::NormalSampler;
use crate::vecops;
use pane_parallel::{even_ranges_nonempty, for_each_row_block};
use rand::Rng;
use std::fmt;

/// A row-major dense `f64` matrix.
#[derive(Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMatrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for i in 0..show_rows {
            write!(f, "  [")?;
            let show_cols = self.cols.min(8);
            for j in 0..show_cols {
                write!(f, "{:>10.4}", self.get(i, j))?;
                if j + 1 < show_cols {
                    write!(f, ", ")?;
                }
            }
            if self.cols > show_cols {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > show_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl DenseMatrix {
    /// All-zeros `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Takes ownership of a row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Self { rows, cols, data }
    }

    /// Builds from nested rows (each inner slice one row).
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        let mut data = Vec::with_capacity(r * c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "row {i} has length {} != {c}", row.len());
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Matrix with i.i.d. `N(0, 1)` entries.
    pub fn gaussian<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let mut m = Self::zeros(rows, cols);
        let mut sampler = NormalSampler::new();
        sampler.fill(rng, &mut m.data);
        m
    }

    /// Matrix with i.i.d. `Uniform(lo, hi)` entries.
    pub fn uniform<R: Rng + ?Sized>(
        rows: usize,
        cols: usize,
        lo: f64,
        hi: f64,
        rng: &mut R,
    ) -> Self {
        let mut m = Self::zeros(rows, cols);
        for v in m.data.iter_mut() {
            *v = rng.gen::<f64>() * (hi - lo) + lo;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable view of the backing buffer.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the backing buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning the backing buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Sets entry `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Adds `v` to entry `(i, j)`.
    #[inline]
    pub fn add_at(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] += v;
    }

    /// Row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Appends `row` as a new last row (amortized O(cols) — the growable
    /// backbone of incremental ingestion paths like index delta segments).
    ///
    /// # Panics
    /// Panics if `row.len() != self.cols()`.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols, "push_row: column-count mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Copies column `j` into a fresh vector (strided gather).
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols);
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// Copies column `j` into `out`.
    pub fn col_into(&self, j: usize, out: &mut [f64]) {
        assert!(j < self.cols && out.len() == self.rows);
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.get(i, j);
        }
    }

    /// Overwrites column `j` with `src`.
    pub fn set_col(&mut self, j: usize, src: &[f64]) {
        assert!(j < self.cols && src.len() == self.rows);
        for (i, &v) in src.iter().enumerate() {
            self.set(i, j, v);
        }
    }

    /// Returns a new matrix made of the rows `range.start..range.end`.
    pub fn row_block(&self, range: std::ops::Range<usize>) -> DenseMatrix {
        assert!(range.end <= self.rows);
        let data = self.data[range.start * self.cols..range.end * self.cols].to_vec();
        DenseMatrix::from_vec(range.end - range.start, self.cols, data)
    }

    /// Returns a new matrix made of the columns `range.start..range.end`.
    pub fn col_block(&self, range: std::ops::Range<usize>) -> DenseMatrix {
        assert!(range.end <= self.cols);
        let w = range.end - range.start;
        let mut out = DenseMatrix::zeros(self.rows, w);
        for i in 0..self.rows {
            out.row_mut(i).copy_from_slice(&self.row(i)[range.clone()]);
        }
        out
    }

    /// Stacks matrices vertically (all must share `cols`).
    pub fn vstack(blocks: &[DenseMatrix]) -> DenseMatrix {
        assert!(!blocks.is_empty(), "vstack of zero blocks");
        let cols = blocks[0].cols;
        let rows: usize = blocks.iter().map(|b| b.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for b in blocks {
            assert_eq!(b.cols, cols, "vstack: column mismatch");
            data.extend_from_slice(&b.data);
        }
        DenseMatrix::from_vec(rows, cols, data)
    }

    /// Stacks matrices horizontally (all must share `rows`).
    pub fn hstack(blocks: &[DenseMatrix]) -> DenseMatrix {
        assert!(!blocks.is_empty(), "hstack of zero blocks");
        let rows = blocks[0].rows;
        let cols: usize = blocks.iter().map(|b| b.cols).sum();
        let mut out = DenseMatrix::zeros(rows, cols);
        let mut off = 0;
        for b in blocks {
            assert_eq!(b.rows, rows, "hstack: row mismatch");
            for i in 0..rows {
                out.row_mut(i)[off..off + b.cols].copy_from_slice(b.row(i));
            }
            off += b.cols;
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        // Tile for cache friendliness on big matrices.
        const T: usize = 32;
        for bi in (0..self.rows).step_by(T) {
            for bj in (0..self.cols).step_by(T) {
                for i in bi..(bi + T).min(self.rows) {
                    for j in bj..(bj + T).min(self.cols) {
                        out.data[j * self.rows + i] = self.data[i * self.cols + j];
                    }
                }
            }
        }
        out
    }

    /// `C = self · other` (shapes `(n×m)·(m×p) → n×p`).
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        let mut c = DenseMatrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut c);
        c
    }

    /// `C = self · other`, writing into a pre-allocated `out`.
    ///
    /// # Panics
    /// Panics on any shape mismatch.
    pub fn matmul_into(&self, other: &DenseMatrix, out: &mut DenseMatrix) {
        assert_eq!(self.cols, other.rows, "matmul: inner dimension mismatch");
        assert_eq!(
            out.shape(),
            (self.rows, other.cols),
            "matmul: output shape mismatch"
        );
        out.data.iter_mut().for_each(|v| *v = 0.0);
        for i in 0..self.rows {
            let arow = self.row(i);
            let crow = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (l, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                vecops::axpy(a, other.row(l), crow);
            }
        }
    }

    /// Block-parallel `C = self · other` with `nb` workers over row blocks.
    pub fn matmul_par(&self, other: &DenseMatrix, nb: usize) -> DenseMatrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul_par: inner dimension mismatch"
        );
        let mut c = DenseMatrix::zeros(self.rows, other.cols);
        let ranges = even_ranges_nonempty(self.rows, nb);
        let (rows, cols) = (self.rows, other.cols);
        let a = self;
        for_each_row_block(&mut c.data, rows, cols, &ranges, |_, range, block| {
            for (bi, i) in range.clone().enumerate() {
                let arow = a.row(i);
                let crow = &mut block[bi * cols..(bi + 1) * cols];
                for (l, &av) in arow.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    vecops::axpy(av, other.row(l), crow);
                }
            }
        });
        c
    }

    /// `C = self · otherᵀ` (shapes `(n×m)·(p×m)ᵀ → n×p`), as row·row dots.
    pub fn matmul_transb(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transb: inner dimension mismatch"
        );
        let mut c = DenseMatrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let arow = self.row(i);
            for j in 0..other.rows {
                c.data[i * other.rows + j] = vecops::dot(arow, other.row(j));
            }
        }
        c
    }

    /// Block-parallel `C = self · otherᵀ`.
    pub fn matmul_transb_par(&self, other: &DenseMatrix, nb: usize) -> DenseMatrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transb_par: inner dimension mismatch"
        );
        let mut c = DenseMatrix::zeros(self.rows, other.rows);
        let ranges = even_ranges_nonempty(self.rows, nb);
        let cols = other.rows;
        let a = self;
        for_each_row_block(&mut c.data, self.rows, cols, &ranges, |_, range, block| {
            for (bi, i) in range.clone().enumerate() {
                let arow = a.row(i);
                let crow = &mut block[bi * cols..(bi + 1) * cols];
                for (j, slot) in crow.iter_mut().enumerate() {
                    *slot = vecops::dot(arow, other.row(j));
                }
            }
        });
        c
    }

    /// `C = selfᵀ · other` (shapes `(n×m)ᵀ·(n×p) → m×p`), as a sum of outer
    /// products of matching rows; the innermost loop streams `other`'s rows.
    pub fn tr_matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.rows, other.rows, "tr_matmul: row count mismatch");
        let mut c = DenseMatrix::zeros(self.cols, other.cols);
        for i in 0..self.rows {
            let arow = self.row(i);
            let brow = other.row(i);
            for (l, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let crow = &mut c.data[l * other.cols..(l + 1) * other.cols];
                vecops::axpy(a, brow, crow);
            }
        }
        c
    }

    /// `self += a * other`, entrywise.
    pub fn axpy_inplace(&mut self, a: f64, other: &DenseMatrix) {
        assert_eq!(self.shape(), other.shape(), "axpy_inplace: shape mismatch");
        vecops::axpy(a, &other.data, &mut self.data);
    }

    /// `self *= a`, entrywise.
    pub fn scale_inplace(&mut self, a: f64) {
        vecops::scale(a, &mut self.data);
    }

    /// `self - other` as a new matrix.
    pub fn sub(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.shape(), other.shape(), "sub: shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        DenseMatrix::from_vec(self.rows, self.cols, data)
    }

    /// Applies `f` to every entry in place.
    pub fn map_inplace<F: Fn(f64) -> f64>(&mut self, f: F) {
        for v in self.data.iter_mut() {
            *v = f(*v);
        }
    }

    /// Frobenius norm.
    pub fn frob_norm(&self) -> f64 {
        vecops::norm2(&self.data)
    }

    /// Squared Frobenius norm.
    pub fn frob_norm_sq(&self) -> f64 {
        vecops::norm2_sq(&self.data)
    }

    /// Largest absolute entrywise difference with `other`.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f64 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff: shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()))
    }

    /// Per-column sums (length `cols`).
    pub fn col_sums(&self) -> Vec<f64> {
        let mut s = vec![0.0; self.cols];
        for i in 0..self.rows {
            vecops::axpy(1.0, self.row(i), &mut s);
        }
        s
    }

    /// Per-row sums (length `rows`).
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows).map(|i| vecops::sum(self.row(i))).collect()
    }

    /// Per-column squared Euclidean norms (length `cols`).
    pub fn col_norms_sq(&self) -> Vec<f64> {
        let mut s = vec![0.0; self.cols];
        for i in 0..self.rows {
            for (j, &v) in self.row(i).iter().enumerate() {
                s[j] += v * v;
            }
        }
        s
    }

    /// Normalizes every row to unit Euclidean norm (zero rows untouched).
    pub fn normalize_rows(&mut self) {
        for i in 0..self.rows {
            vecops::normalize(&mut self.data[i * self.cols..(i + 1) * self.cols], 1e-300);
        }
    }

    /// True if `selfᵀ·self ≈ I` to tolerance `tol` (columns orthonormal).
    pub fn is_orthonormal(&self, tol: f64) -> bool {
        let g = self.tr_matmul(self);
        for i in 0..g.rows() {
            for j in 0..g.cols() {
                let want = if i == j { 1.0 } else { 0.0 };
                if (g.get(i, j) - want).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small() -> (DenseMatrix, DenseMatrix) {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let b = DenseMatrix::from_rows(&[vec![7.0, 8.0, 9.0], vec![10.0, 11.0, 12.0]]);
        (a, b)
    }

    #[test]
    fn matmul_hand_checked() {
        let (a, b) = small();
        let c = a.matmul(&b);
        let want = DenseMatrix::from_rows(&[
            vec![27.0, 30.0, 33.0],
            vec![61.0, 68.0, 75.0],
            vec![95.0, 106.0, 117.0],
        ]);
        assert_eq!(c, want);
    }

    #[test]
    fn matmul_parallel_matches_serial() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = DenseMatrix::gaussian(23, 11, &mut rng);
        let b = DenseMatrix::gaussian(11, 17, &mut rng);
        let c1 = a.matmul(&b);
        for nb in [1, 2, 5, 8] {
            let c2 = a.matmul_par(&b, nb);
            assert!(c1.max_abs_diff(&c2) < 1e-12, "nb={nb}");
        }
    }

    #[test]
    fn transb_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = DenseMatrix::gaussian(9, 6, &mut rng);
        let b = DenseMatrix::gaussian(7, 6, &mut rng);
        let c1 = a.matmul_transb(&b);
        let c2 = a.matmul(&b.transpose());
        assert!(c1.max_abs_diff(&c2) < 1e-12);
        let c3 = a.matmul_transb_par(&b, 3);
        assert!(c1.max_abs_diff(&c3) < 1e-12);
    }

    #[test]
    fn tr_matmul_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = DenseMatrix::gaussian(8, 5, &mut rng);
        let b = DenseMatrix::gaussian(8, 4, &mut rng);
        let c1 = a.tr_matmul(&b);
        let c2 = a.transpose().matmul(&b);
        assert!(c1.max_abs_diff(&c2) < 1e-12);
    }

    #[test]
    fn transpose_involution() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = DenseMatrix::gaussian(37, 53, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn stacking_roundtrip() {
        let (a, _) = small();
        let top = a.row_block(0..1);
        let bot = a.row_block(1..3);
        assert_eq!(DenseMatrix::vstack(&[top, bot]), a);
        let left = a.col_block(0..1);
        let right = a.col_block(1..2);
        assert_eq!(DenseMatrix::hstack(&[left, right]), a);
    }

    #[test]
    fn sums_and_norms() {
        let (a, _) = small();
        assert_eq!(a.col_sums(), vec![9.0, 12.0]);
        assert_eq!(a.row_sums(), vec![3.0, 7.0, 11.0]);
        assert_eq!(a.col_norms_sq(), vec![35.0, 56.0]);
        assert!((a.frob_norm_sq() - 91.0).abs() < 1e-12);
    }

    #[test]
    fn identity_is_orthonormal() {
        assert!(DenseMatrix::identity(5).is_orthonormal(1e-12));
        let mut m = DenseMatrix::identity(5);
        m.set(0, 1, 0.5);
        assert!(!m.is_orthonormal(1e-6));
    }

    #[test]
    fn normalize_rows_handles_zero() {
        let mut m = DenseMatrix::from_rows(&[vec![0.0, 0.0], vec![3.0, 4.0]]);
        m.normalize_rows();
        assert_eq!(m.row(0), &[0.0, 0.0]);
        assert!((vecops::norm2(m.row(1)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn map_and_axpy() {
        let (a, _) = small();
        let mut b = a.clone();
        b.map_inplace(|v| v * 2.0);
        let mut c = a.clone();
        c.axpy_inplace(1.0, &a);
        assert_eq!(b, c);
        assert_eq!(a.sub(&a), DenseMatrix::zeros(3, 2));
    }

    #[test]
    fn col_access() {
        let (a, _) = small();
        assert_eq!(a.col(1), vec![2.0, 4.0, 6.0]);
        let mut a2 = a.clone();
        a2.set_col(0, &[9.0, 9.0, 9.0]);
        assert_eq!(a2.col(0), vec![9.0, 9.0, 9.0]);
        let mut buf = vec![0.0; 3];
        a.col_into(0, &mut buf);
        assert_eq!(buf, vec![1.0, 3.0, 5.0]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_matmul_associative(seed in 0u64..500) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = DenseMatrix::gaussian(5, 4, &mut rng);
            let b = DenseMatrix::gaussian(4, 6, &mut rng);
            let c = DenseMatrix::gaussian(6, 3, &mut rng);
            let left = a.matmul(&b).matmul(&c);
            let right = a.matmul(&b.matmul(&c));
            prop_assert!(left.max_abs_diff(&right) < 1e-9);
        }

        #[test]
        fn prop_transpose_product(seed in 0u64..500) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = DenseMatrix::gaussian(6, 5, &mut rng);
            let b = DenseMatrix::gaussian(5, 7, &mut rng);
            // (AB)^T = B^T A^T
            let lhs = a.matmul(&b).transpose();
            let rhs = b.transpose().matmul(&a.transpose());
            prop_assert!(lhs.max_abs_diff(&rhs) < 1e-10);
        }
    }
}
