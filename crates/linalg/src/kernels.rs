//! SIMD-blocked distance kernels — the innermost loops of every hot scan
//! path in the serving tier.
//!
//! A plain `acc += x[i] * y[i]` dot product is a *serial* dependency
//! chain: strict IEEE-754 semantics forbid the compiler from reordering
//! the additions, so the loop runs at FP-add latency (4–5 cycles per
//! element) no matter how wide the vector units are. The kernels here
//! break that chain explicitly with a **fixed number of accumulator
//! lanes** ([`LANES`] = 8): element `i` always accumulates into lane
//! `i % 8`, and the lanes reduce in a fixed pairwise tree. LLVM maps the
//! 8 independent chains onto vector registers (2×AVX2 / 4×NEON f64
//! vectors), turning a latency-bound loop into a throughput-bound one.
//!
//! # Determinism contract
//!
//! The lane count is a *semantic constant*, not a tuning knob: results
//! are a pure function of the input slices — independent of thread
//! count, platform, target CPU, or whether the panel ([`dot1xn`]) or
//! single-row ([`dot`]) entry point computed them. Concretely:
//!
//! * [`dot`] ≡ the reference in this module's tests: lane `j` sums the
//!   products at positions `≡ j (mod 8)` in index order, then the lanes
//!   reduce as `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`;
//! * [`dot1xn`] (and the interleaved [`dot1xn_blocked`] variant)
//!   produces, for every row, *bit-identical* output to [`dot`] on that
//!   row — how rows are blocked never changes a score;
//! * the integer kernels ([`dot_i8`], [`dot1xn_i8`]) are exact: integer
//!   addition is associative, so any unroll factor yields the same sum.
//!
//! Changing [`LANES`] is a format-level break (every stored score
//! golden would shift) and must be treated like a file-format bump.
//!
//! The scan sites in `pane-index` (flat/delta full scans, IVF cluster
//! scans, the sqflat integer scan, HNSW neighbor expansion) and the
//! exact scans in `pane-core`'s query layer all route through these
//! kernels via [`vecops::dot`](crate::vecops::dot), which keeps every
//! exact-vs-indexed bit-identity contract in the test suite intact by
//! construction.

/// Number of independent accumulator lanes in the floating-point
/// reduction kernels. Fixed at 8 on every platform — see the module
/// docs for why this is a semantic constant and not a tuning knob.
pub const LANES: usize = 8;

/// Fixed pairwise reduction of the 8 accumulator lanes.
#[inline(always)]
fn reduce8(acc: [f64; LANES]) -> f64 {
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

/// Fixed pairwise reduction of the 8 `f32` accumulator lanes.
#[inline(always)]
fn reduce8_f32(acc: [f32; LANES]) -> f32 {
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

/// Multi-accumulator dot product `x · y` (8 lanes, fixed reduction
/// order — see the module docs for the exact summation semantics).
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "kernels::dot: length mismatch");
    let split = x.len() - x.len() % LANES;
    let (xb, xt) = x.split_at(split);
    let (yb, yt) = y.split_at(split);
    let mut acc = [0.0f64; LANES];
    for (cx, cy) in xb.chunks_exact(LANES).zip(yb.chunks_exact(LANES)) {
        for j in 0..LANES {
            acc[j] += cx[j] * cy[j];
        }
    }
    for (j, (&a, &b)) in xt.iter().zip(yt.iter()).enumerate() {
        acc[j] += a * b;
    }
    reduce8(acc)
}

/// Multi-accumulator `f32` dot product — same 8-lane semantics as
/// [`dot`], for half-precision storage tiers (PQ codebooks, future
/// f32 columns).
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot_f32(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "kernels::dot_f32: length mismatch");
    let split = x.len() - x.len() % LANES;
    let (xb, xt) = x.split_at(split);
    let (yb, yt) = y.split_at(split);
    let mut acc = [0.0f32; LANES];
    for (cx, cy) in xb.chunks_exact(LANES).zip(yb.chunks_exact(LANES)) {
        for j in 0..LANES {
            acc[j] += cx[j] * cy[j];
        }
    }
    for (j, (&a, &b)) in xt.iter().zip(yt.iter()).enumerate() {
        acc[j] += a * b;
    }
    reduce8_f32(acc)
}

/// How many rows the panel kernels process per blocked step. Four rows
/// share every query load and keep 4×8 accumulator lanes live — enough
/// ILP to saturate the FMA ports without spilling vector registers.
const PANEL_ROWS: usize = 4;

/// Panel kernel: dot of one query against `out.len()` contiguous
/// row-major rows ("dot1xN"). Row `r` occupies
/// `rows[r*dim .. (r+1)*dim]`; `out[r]` receives a score bit-identical
/// to `dot(q, row_r)`.
///
/// Implemented as a per-row [`dot`] loop: on AVX2/AVX-512 hosts the
/// interleaved multi-row variant ([`dot1xn_blocked`]) measures 2–3×
/// *slower* than this — the query is L1-resident at serving dims, so
/// amortizing its loads buys nothing, while interleaving four rows'
/// accumulators spoils the clean single-row FMA vectorization. The
/// `kernels` bench group in `bench_index` pins that comparison; a
/// future blocked or explicit-SIMD implementation must beat it there
/// before taking over this entry point.
///
/// # Panics
/// Panics if `q.len() != dim` or `rows.len() != out.len() * dim`.
#[inline]
pub fn dot1xn(q: &[f64], rows: &[f64], dim: usize, out: &mut [f64]) {
    assert_eq!(q.len(), dim, "kernels::dot1xn: query length != dim");
    assert_eq!(
        rows.len(),
        out.len() * dim,
        "kernels::dot1xn: rows buffer is not out.len() × dim"
    );
    for (r, o) in out.iter_mut().enumerate() {
        *o = dot(q, &rows[r * dim..(r + 1) * dim]);
    }
}

/// The interleaved four-row variant of [`dot1xn`]: shares
/// each query load across four rows' accumulators. Bit-identical to
/// `dot` per row (each row owns a private 8-lane accumulator set), but
/// measured slower than the per-row loop on AVX2/AVX-512 hosts — kept
/// as the comparison point the `kernels` bench group publishes, and as
/// the seam for a future explicit-SIMD blocked kernel.
///
/// # Panics
/// Panics if `q.len() != dim` or `rows.len() != out.len() * dim`.
#[inline]
pub fn dot1xn_blocked(q: &[f64], rows: &[f64], dim: usize, out: &mut [f64]) {
    assert_eq!(q.len(), dim, "kernels::dot1xn_blocked: query length != dim");
    assert_eq!(
        rows.len(),
        out.len() * dim,
        "kernels::dot1xn_blocked: rows buffer is not out.len() × dim"
    );
    let n = out.len();
    let split = dim - dim % LANES;
    let mut r = 0;
    while r + PANEL_ROWS <= n {
        let base = r * dim;
        let r0 = &rows[base..base + dim];
        let r1 = &rows[base + dim..base + 2 * dim];
        let r2 = &rows[base + 2 * dim..base + 3 * dim];
        let r3 = &rows[base + 3 * dim..base + 4 * dim];
        let mut a0 = [0.0f64; LANES];
        let mut a1 = [0.0f64; LANES];
        let mut a2 = [0.0f64; LANES];
        let mut a3 = [0.0f64; LANES];
        let mut c = 0;
        while c < split {
            for j in 0..LANES {
                let qv = q[c + j];
                a0[j] += qv * r0[c + j];
                a1[j] += qv * r1[c + j];
                a2[j] += qv * r2[c + j];
                a3[j] += qv * r3[c + j];
            }
            c += LANES;
        }
        for j in 0..dim - split {
            let qv = q[split + j];
            a0[j] += qv * r0[split + j];
            a1[j] += qv * r1[split + j];
            a2[j] += qv * r2[split + j];
            a3[j] += qv * r3[split + j];
        }
        out[r] = reduce8(a0);
        out[r + 1] = reduce8(a1);
        out[r + 2] = reduce8(a2);
        out[r + 3] = reduce8(a3);
        r += PANEL_ROWS;
    }
    while r < n {
        out[r] = dot(q, &rows[r * dim..(r + 1) * dim]);
        r += 1;
    }
}

/// Integer dot of two `i8` code rows, accumulated in `i32`. Exact for
/// any `dim` below ~133k (`dim · 127² < i32::MAX`), far above the
/// `1 << 24` dimension cap the index loaders enforce. Unrolled into 8
/// independent `i32` lanes — integer addition is associative, so the
/// unroll is invisible in the result.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    assert_eq!(a.len(), b.len(), "kernels::dot_i8: length mismatch");
    let split = a.len() - a.len() % LANES;
    let (ab, at) = a.split_at(split);
    let (bb, bt) = b.split_at(split);
    let mut acc = [0i32; LANES];
    for (ca, cb) in ab.chunks_exact(LANES).zip(bb.chunks_exact(LANES)) {
        for j in 0..LANES {
            acc[j] += ca[j] as i32 * cb[j] as i32;
        }
    }
    for (j, (&x, &y)) in at.iter().zip(bt.iter()).enumerate() {
        acc[j] += x as i32 * y as i32;
    }
    acc.iter().sum()
}

/// Integer panel kernel: [`dot_i8`] of one query code row against
/// `out.len()` contiguous code rows. `out[r]` is exactly
/// `dot_i8(q, row_r)`.
///
/// # Panics
/// Panics if `q.len() != dim` or `rows.len() != out.len() * dim`.
#[inline]
pub fn dot1xn_i8(q: &[i8], rows: &[i8], dim: usize, out: &mut [i32]) {
    assert_eq!(q.len(), dim, "kernels::dot1xn_i8: query length != dim");
    assert_eq!(
        rows.len(),
        out.len() * dim,
        "kernels::dot1xn_i8: rows buffer is not out.len() × dim"
    );
    let n = out.len();
    let mut r = 0;
    while r + PANEL_ROWS <= n {
        let base = r * dim;
        for p in 0..PANEL_ROWS {
            out[r + p] = dot_i8(q, &rows[base + p * dim..base + (p + 1) * dim]);
        }
        r += PANEL_ROWS;
    }
    while r < n {
        out[r] = dot_i8(q, &rows[r * dim..(r + 1) * dim]);
        r += 1;
    }
}

/// Mixed dot of an `f64` query against an `i8` code row: `Σ q[j]·code[j]`
/// with the same 8-lane accumulation as [`dot`]. The caller applies the
/// per-row dequantization scale *outside* the sum
/// (`score = scale · dot_f64_i8(q, codes)`), hoisting one multiply out
/// of the inner loop.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot_f64_i8(q: &[f64], codes: &[i8]) -> f64 {
    assert_eq!(q.len(), codes.len(), "kernels::dot_f64_i8: length mismatch");
    let split = q.len() - q.len() % LANES;
    let (qb, qt) = q.split_at(split);
    let (cb, ct) = codes.split_at(split);
    let mut acc = [0.0f64; LANES];
    for (cq, cc) in qb.chunks_exact(LANES).zip(cb.chunks_exact(LANES)) {
        for j in 0..LANES {
            acc[j] += cq[j] * cc[j] as f64;
        }
    }
    for (j, (&x, &y)) in qt.iter().zip(ct.iter()).enumerate() {
        acc[j] += x * y as f64;
    }
    reduce8(acc)
}

/// Software prefetch of the cache line holding `data[offset]` (and the
/// next line, covering 16 doubles) into all cache levels. A hint only:
/// no-op when the offset is out of range or the target has no stable
/// prefetch intrinsic. HNSW neighbor expansion issues this for upcoming
/// neighbor rows so their demand loads hit L1/L2 instead of DRAM.
#[inline(always)]
pub fn prefetch_f64(data: &[f64], offset: usize) {
    #[cfg(target_arch = "x86_64")]
    {
        if offset < data.len() {
            // SAFETY: `offset` is in range, so the pointer is valid;
            // prefetch has no other safety requirements.
            unsafe {
                use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
                let p = data.as_ptr().add(offset) as *const i8;
                _mm_prefetch(p, _MM_HINT_T0);
                _mm_prefetch(p.add(64), _MM_HINT_T0);
            }
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (data, offset);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Straightforward statement of the lane semantics: lane `j` sums the
    /// products at positions `≡ j (mod LANES)`, then the fixed pairwise
    /// reduction. The optimized kernels must be bit-identical to this.
    fn dot_ref_lanes(x: &[f64], y: &[f64]) -> f64 {
        let mut acc = [0.0f64; LANES];
        for i in 0..x.len() {
            acc[i % LANES] += x[i] * y[i];
        }
        reduce8(acc)
    }

    fn dot_ref_lanes_f32(x: &[f32], y: &[f32]) -> f32 {
        let mut acc = [0.0f32; LANES];
        for i in 0..x.len() {
            acc[i % LANES] += x[i] * y[i];
        }
        reduce8_f32(acc)
    }

    /// Plain left-to-right scalar dot — the pre-kernel baseline, used
    /// for tolerance (not bitwise) comparison.
    fn dot_ref_scalar(x: &[f64], y: &[f64]) -> f64 {
        x.iter().zip(y).map(|(a, b)| a * b).sum()
    }

    fn dot_i8_ref(a: &[i8], b: &[i8]) -> i32 {
        a.iter().zip(b).map(|(&x, &y)| x as i32 * y as i32).sum()
    }

    /// Deterministic pseudo-random f64 in [-1, 1).
    fn splat(seed: u64, i: usize) -> f64 {
        let mut z = seed
            .wrapping_add(i as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z ^= z >> 31;
        z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        ((z >> 11) as f64) / (1u64 << 52) as f64 - 1.0
    }

    #[test]
    fn dot_matches_lane_reference_all_lengths() {
        // Every length 0..257 and unaligned start offsets 0..3: the tail
        // handling and lane assignment must agree with the reference at
        // every (length mod 8, alignment) combination.
        let x: Vec<f64> = (0..260).map(|i| splat(1, i)).collect();
        let y: Vec<f64> = (0..260).map(|i| splat(2, i)).collect();
        for off in 0..3 {
            for len in 0..257 {
                let (a, b) = (&x[off..off + len], &y[off..off + len]);
                assert_eq!(
                    dot(a, b).to_bits(),
                    dot_ref_lanes(a, b).to_bits(),
                    "len {len} off {off}"
                );
            }
        }
    }

    #[test]
    fn dot_f32_matches_lane_reference_all_lengths() {
        let x: Vec<f32> = (0..260).map(|i| splat(3, i) as f32).collect();
        let y: Vec<f32> = (0..260).map(|i| splat(4, i) as f32).collect();
        for off in 0..3 {
            for len in 0..257 {
                let (a, b) = (&x[off..off + len], &y[off..off + len]);
                assert_eq!(
                    dot_f32(a, b).to_bits(),
                    dot_ref_lanes_f32(a, b).to_bits(),
                    "len {len} off {off}"
                );
            }
        }
    }

    #[test]
    fn dot1xn_bit_identical_to_per_row_dot() {
        for dim in [1usize, 7, 8, 31, 64, 129] {
            for n in [0usize, 1, 3, 4, 5, 17] {
                let q: Vec<f64> = (0..dim).map(|i| splat(5, i)).collect();
                let rows: Vec<f64> = (0..n * dim).map(|i| splat(6, i)).collect();
                let mut out = vec![0.0; n];
                dot1xn(&q, &rows, dim, &mut out);
                let mut blocked = vec![0.0; n];
                dot1xn_blocked(&q, &rows, dim, &mut blocked);
                for r in 0..n {
                    let want = dot(&q, &rows[r * dim..(r + 1) * dim]).to_bits();
                    assert_eq!(out[r].to_bits(), want, "dim {dim} n {n} row {r}");
                    assert_eq!(
                        blocked[r].to_bits(),
                        want,
                        "blocked dim {dim} n {n} row {r}"
                    );
                }
            }
        }
    }

    #[test]
    fn dot_i8_exact_all_lengths() {
        let a: Vec<i8> = (0..260).map(|i| ((i * 37 + 11) % 255) as i8).collect();
        let b: Vec<i8> = (0..260).map(|i| ((i * 53 + 7) % 255) as i8).collect();
        for off in 0..3 {
            for len in 0..257 {
                let (x, y) = (&a[off..off + len], &b[off..off + len]);
                assert_eq!(dot_i8(x, y), dot_i8_ref(x, y), "len {len} off {off}");
            }
        }
    }

    #[test]
    fn dot1xn_i8_matches_per_row() {
        let dim = 48;
        let n = 11;
        let q: Vec<i8> = (0..dim).map(|i| ((i * 19) % 255) as i8).collect();
        let rows: Vec<i8> = (0..n * dim).map(|i| ((i * 7 + 3) % 255) as i8).collect();
        let mut out = vec![0i32; n];
        dot1xn_i8(&q, &rows, dim, &mut out);
        for r in 0..n {
            assert_eq!(out[r], dot_i8_ref(&q, &rows[r * dim..(r + 1) * dim]));
        }
    }

    #[test]
    fn dot_f64_i8_matches_lane_semantics() {
        let dim = 100;
        let q: Vec<f64> = (0..dim).map(|i| splat(7, i)).collect();
        let c: Vec<i8> = (0..dim).map(|i| ((i * 91 + 5) % 255) as i8).collect();
        let cf: Vec<f64> = c.iter().map(|&v| v as f64).collect();
        assert_eq!(dot_f64_i8(&q, &c).to_bits(), dot(&q, &cf).to_bits());
    }

    #[test]
    fn extreme_value_lanes_behave() {
        // ±0.0 inputs: signed zeros must not perturb the sum.
        assert_eq!(dot(&[0.0, -0.0], &[-0.0, 0.0]), 0.0);
        // NaN propagates.
        assert!(dot(&[f64::NAN, 1.0], &[1.0, 1.0]).is_nan());
        // Empty is exactly zero.
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(dot_f32(&[], &[]), 0.0);
        assert_eq!(dot_i8(&[], &[]), 0);
    }

    #[test]
    fn prefetch_is_safe_everywhere() {
        let v = vec![1.0f64; 64];
        prefetch_f64(&v, 0);
        prefetch_f64(&v, 63);
        prefetch_f64(&v, 64); // out of range: no-op, no panic
        prefetch_f64(&[], 0);
    }

    proptest! {
        #[test]
        fn prop_dot_bit_identical_to_lane_reference(
            v in proptest::collection::vec(-1e6f64..1e6, 0..257),
            w in proptest::collection::vec(-1e6f64..1e6, 0..257),
            off in 0usize..4,
        ) {
            let n = v.len().min(w.len());
            let off = off.min(n);
            let (a, b) = (&v[off..n], &w[off..n]);
            prop_assert_eq!(dot(a, b).to_bits(), dot_ref_lanes(a, b).to_bits());
        }

        #[test]
        fn prop_dot_close_to_scalar_reference(
            v in proptest::collection::vec(-1e3f64..1e3, 0..257),
        ) {
            // Tolerance-bounded vs the old left-to-right sum: the lane
            // reorder is a rebaseline, not a numerical regression.
            let w: Vec<f64> = v.iter().map(|x| x * 0.5 + 0.25).collect();
            let kernel = dot(&v, &w);
            let scalar = dot_ref_scalar(&v, &w);
            let mag: f64 = v.iter().zip(&w).map(|(a, b)| (a * b).abs()).sum();
            prop_assert!((kernel - scalar).abs() <= 1e-12 * (1.0 + mag));
        }

        #[test]
        fn prop_dot1xn_equals_per_row(
            dim in 1usize..40,
            n in 0usize..12,
            seed in 0u64..1000,
        ) {
            let q: Vec<f64> = (0..dim).map(|i| splat(seed, i)).collect();
            let rows: Vec<f64> = (0..n * dim).map(|i| splat(seed ^ 0xABCD, i)).collect();
            let mut out = vec![0.0; n];
            dot1xn(&q, &rows, dim, &mut out);
            for r in 0..n {
                prop_assert_eq!(
                    out[r].to_bits(),
                    dot(&q, &rows[r * dim..(r + 1) * dim]).to_bits()
                );
            }
        }

        #[test]
        fn prop_dot_i8_exact(
            a in proptest::collection::vec(-127i32..128, 0..257),
            b in proptest::collection::vec(-127i32..128, 0..257),
        ) {
            let a: Vec<i8> = a.iter().map(|&v| v as i8).collect();
            let b: Vec<i8> = b.iter().map(|&v| v as i8).collect();
            let n = a.len().min(b.len());
            prop_assert_eq!(dot_i8(&a[..n], &b[..n]), dot_i8_ref(&a[..n], &b[..n]));
        }
    }
}
