//! Pseudo-inverse and least-squares solves via the Jacobi SVD.
//!
//! The alternating-least-squares baselines (TADW-like) repeatedly solve
//! small normal-equation systems (`k × k` with `k ≤ 256`); SVD-based
//! pseudo-inversion is plenty fast at that size and handles rank deficiency
//! gracefully (singular values below `rcond · σ_max` are dropped).

use crate::dense::DenseMatrix;
use crate::jacobi::jacobi_svd;

/// Relative condition cutoff for the pseudo-inverse.
pub const DEFAULT_RCOND: f64 = 1e-12;

/// Moore–Penrose pseudo-inverse `A⁺` (shape `m × n` for an `n × m` input).
pub fn pinv(a: &DenseMatrix, rcond: f64) -> DenseMatrix {
    let svd = jacobi_svd(a);
    let smax = svd.s.first().copied().unwrap_or(0.0);
    let cut = rcond * smax;
    // A⁺ = V · diag(1/σ) · Uᵀ
    let r = svd.s.len();
    let mut v_scaled = svd.v.clone(); // m × r
    for i in 0..v_scaled.rows() {
        let row = v_scaled.row_mut(i);
        for j in 0..r {
            row[j] = if svd.s[j] > cut && svd.s[j] > 0.0 {
                row[j] / svd.s[j]
            } else {
                0.0
            };
        }
    }
    v_scaled.matmul_transb(&svd.u)
}

/// Least-squares solution `X = argmin ‖A·X − B‖_F` (via `X = A⁺·B`).
pub fn lstsq(a: &DenseMatrix, b: &DenseMatrix, rcond: f64) -> DenseMatrix {
    assert_eq!(a.rows(), b.rows(), "lstsq: row mismatch");
    pinv(a, rcond).matmul(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pinv_of_invertible_is_inverse() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = DenseMatrix::gaussian(5, 5, &mut rng);
        let ainv = pinv(&a, DEFAULT_RCOND);
        let prod = a.matmul(&ainv);
        assert!(prod.max_abs_diff(&DenseMatrix::identity(5)) < 1e-8);
    }

    #[test]
    fn pinv_penrose_conditions() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = DenseMatrix::gaussian(8, 4, &mut rng);
        let ap = pinv(&a, DEFAULT_RCOND);
        // A A⁺ A = A and A⁺ A A⁺ = A⁺.
        assert!(a.matmul(&ap).matmul(&a).max_abs_diff(&a) < 1e-9);
        assert!(ap.matmul(&a).matmul(&ap).max_abs_diff(&ap) < 1e-9);
    }

    #[test]
    fn pinv_rank_deficient() {
        // Rank-1 matrix.
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]);
        let ap = pinv(&a, DEFAULT_RCOND);
        assert!(a.matmul(&ap).matmul(&a).max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn lstsq_recovers_exact_solution() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = DenseMatrix::gaussian(10, 3, &mut rng);
        let x_true = DenseMatrix::gaussian(3, 2, &mut rng);
        let b = a.matmul(&x_true);
        let x = lstsq(&a, &b, DEFAULT_RCOND);
        assert!(x.max_abs_diff(&x_true) < 1e-9);
    }

    #[test]
    fn lstsq_overdetermined_minimizes_residual() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = DenseMatrix::gaussian(20, 3, &mut rng);
        let b = DenseMatrix::gaussian(20, 1, &mut rng);
        let x = lstsq(&a, &b, DEFAULT_RCOND);
        let r0 = a.matmul(&x).sub(&b).frob_norm();
        // Perturbing the solution must not reduce the residual.
        for di in 0..3 {
            let mut xp = x.clone();
            xp.add_at(di, 0, 1e-3);
            let rp = a.matmul(&xp).sub(&b).frob_norm();
            assert!(rp >= r0 - 1e-12, "perturbation improved LS residual");
        }
    }
}
