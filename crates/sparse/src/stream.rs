//! Streaming CSR construction with bounded auxiliary memory.
//!
//! [`crate::CooMatrix`] materializes every triplet before sorting, so a
//! build over `T` pushed triplets peaks at `16·T` bytes of triplet storage
//! *on top of* the final CSR arrays — at MAG scale (0.27B edges) that is
//! gigabytes of scratch. [`CsrBuilder`] removes that materialization two
//! ways:
//!
//! * [`CsrBuilder::from_source`] — a **two-pass counting sort** over a
//!   *replayable* triplet source (a closure that emits the identical
//!   sequence each time it is called: a slice, a CSR iterator, a seeded
//!   generator). Pass 1 counts per-row occupancy, pass 2 scatters straight
//!   into the final `indices`/`values` arrays, then each row is stably
//!   sorted and merged in place. Auxiliary memory is one `usize` per row
//!   plus the scatter slack for duplicate coordinates — the unsorted
//!   triplet set is never held.
//! * The **chunked** push API ([`CsrBuilder::push`] / [`CsrBuilder::finish`])
//!   — for sources that can only be walked once (text edge files). Triplets
//!   accumulate in a bounded chunk; a full chunk is stably sorted and
//!   merge-joined into the running sorted/merged accumulator. Peak
//!   auxiliary memory is `O(nnz_out + chunk)`, not `O(T)`.
//!
//! Both paths produce output **bit-identical** to [`crate::CooMatrix::to_csr`]:
//! entries sorted by `(row, col)`, duplicates summed left-to-right in push
//! order, totals that are exactly `0.0` dropped. (`CooMatrix::to_csr` is
//! itself a thin wrapper over [`CsrBuilder::from_source`], and the property
//! tests in this crate pin all three paths to an independent sort-based
//! reference.)

use crate::csr::CsrMatrix;

/// Bytes held per buffered triplet (`u32` row + `u32` col + `f64` value).
const TRIPLET_BYTES: usize = 16;

/// Default chunk capacity (triplets) for the push API: 1Mi triplets
/// ≈ 16 MiB of buffered input per flush.
pub const DEFAULT_CHUNK_CAPACITY: usize = 1 << 20;

/// How duplicate coordinates are merged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergeRule {
    /// Sum duplicates in push order and drop totals that are exactly `0.0`
    /// — the [`crate::CooMatrix::to_csr`] contract. Summation order is the
    /// push order, so results are bit-stable for a fixed input sequence.
    #[default]
    Sum,
    /// Keep the value pushed first for each coordinate and discard the
    /// rest — the dedup rule for binary adjacency matrices, where every
    /// duplicate edge carries the same weight `1.0`. No zero-dropping:
    /// the first pushed value is stored verbatim.
    KeepFirst,
}

/// Build statistics returned by [`CsrBuilder::finish_with_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestStats {
    /// Entries in the finished matrix (after merging and zero-dropping).
    pub nnz: usize,
    /// High-water mark of auxiliary triplet-buffer bytes held by the
    /// builder: the accumulator grown by one chunk (the merge is **in
    /// place** — no second output copy exists) plus the pending chunk,
    /// counted at every flush. Excludes the final CSR arrays (which any
    /// build path must produce) and the transient scratch of the chunk
    /// sort.
    pub peak_aux_bytes: usize,
    /// Number of chunk flushes performed.
    pub flushes: usize,
}

/// Streaming builder for [`CsrMatrix`] — see the module docs for when to
/// use this over [`crate::CooMatrix`].
#[derive(Debug, Clone)]
pub struct CsrBuilder {
    rows: usize,
    cols: usize,
    rule: MergeRule,
    chunk_capacity: usize,
    /// Pending triplets, unsorted, bounded by `chunk_capacity`.
    chunk: Vec<(u32, u32, f64)>,
    /// Accumulated entries: sorted by `(row, col)`, coordinates unique,
    /// exact zeros already dropped (under [`MergeRule::Sum`]).
    acc_rows: Vec<u32>,
    acc_cols: Vec<u32>,
    acc_vals: Vec<f64>,
    peak_aux_bytes: usize,
    flushes: usize,
}

impl CsrBuilder {
    /// Empty chunked builder with fixed dimensions, [`MergeRule::Sum`] and
    /// the default chunk capacity.
    ///
    /// # Panics
    /// Panics if a dimension exceeds the `u32` index space.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(
            rows <= u32::MAX as usize && cols <= u32::MAX as usize,
            "dimensions exceed u32 index space"
        );
        Self {
            rows,
            cols,
            rule: MergeRule::Sum,
            chunk_capacity: DEFAULT_CHUNK_CAPACITY,
            chunk: Vec::new(),
            acc_rows: Vec::new(),
            acc_cols: Vec::new(),
            acc_vals: Vec::new(),
            peak_aux_bytes: 0,
            flushes: 0,
        }
    }

    /// Sets the duplicate-merge rule (builder style).
    pub fn merge_rule(mut self, rule: MergeRule) -> Self {
        self.rule = rule;
        self
    }

    /// Sets the chunk capacity in triplets (builder style). Smaller chunks
    /// lower peak memory but flush (sort + merge) more often.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn chunk_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "chunk capacity must be positive");
        self.chunk_capacity = capacity;
        self
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Merged entries accumulated so far (excludes the pending chunk).
    pub fn merged_nnz(&self) -> usize {
        self.acc_rows.len()
    }

    /// Triplets buffered in the pending chunk, not yet merged.
    pub fn pending(&self) -> usize {
        self.chunk.len()
    }

    /// Adds a triplet; may trigger a chunk flush.
    ///
    /// # Panics
    /// Panics if the coordinates are out of bounds (validate ids *before*
    /// pushing when the input is untrusted — the text loaders do).
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows, "row {row} out of bounds ({})", self.rows);
        assert!(col < self.cols, "col {col} out of bounds ({})", self.cols);
        self.chunk.push((row as u32, col as u32, value));
        if self.chunk.len() >= self.chunk_capacity {
            self.flush();
        }
    }

    /// Sorts the pending chunk and merge-joins it into the accumulator
    /// **in place**: the accumulator arrays grow by the chunk length,
    /// existing entries shift to their tail, and the merge writes forward
    /// into the freed prefix. The write cursor can never overtake the
    /// shifted read cursor (each output entry consumes at least one
    /// input entry), so no second output buffer exists — the transient
    /// is one grown accumulator plus the pending chunk, not two full
    /// accumulator copies.
    fn flush(&mut self) {
        if self.chunk.is_empty() {
            return;
        }
        self.flushes += 1;
        // Stable sort: duplicates of a coordinate stay in push order, so
        // the sequential fold below reproduces push-order summation.
        self.chunk
            .sort_by_key(|&(r, c, _)| ((r as u64) << 32) | c as u64);

        let a_len = self.acc_rows.len();
        let c_len = self.chunk.len();
        let cap = a_len + c_len;
        // Transient high-water: the grown accumulator + the chunk.
        self.peak_aux_bytes = self.peak_aux_bytes.max(TRIPLET_BYTES * (cap + c_len));
        self.acc_rows.resize(cap, 0);
        self.acc_cols.resize(cap, 0);
        self.acc_vals.resize(cap, 0.0);
        // Shift the existing entries to the tail [c_len, cap); the merge
        // then reads them from there and writes merged output from 0.
        self.acc_rows.copy_within(0..a_len, c_len);
        self.acc_cols.copy_within(0..a_len, c_len);
        self.acc_vals.copy_within(0..a_len, c_len);

        let key = |r: u32, c: u32| ((r as u64) << 32) | c as u64;
        let chunk = &self.chunk;
        // End of the run of identical coordinates starting at `j`.
        let run_end = |mut j: usize| {
            let (r, c, _) = chunk[j];
            while j < c_len && chunk[j].0 == r && chunk[j].1 == c {
                j += 1;
            }
            j
        };

        let (rows, cols, vals) = (&mut self.acc_rows, &mut self.acc_cols, &mut self.acc_vals);
        // `ra` reads the shifted accumulator tail, `j` the sorted chunk,
        // `w` writes the merged output. Invariant: `w ≤ ra` (the output
        // never holds more entries than were consumed, and at most
        // `c_len` of them came from the chunk), so reads stay ahead.
        let (mut ra, mut j, mut w) = (c_len, 0usize, 0usize);
        while ra < cap || j < c_len {
            let take_acc =
                j >= c_len || (ra < cap && key(rows[ra], cols[ra]) < key(chunk[j].0, chunk[j].1));
            if take_acc {
                rows[w] = rows[ra];
                cols[w] = cols[ra];
                vals[w] = vals[ra];
                w += 1;
                ra += 1;
                continue;
            }
            let (r, c, first) = chunk[j];
            let end = run_end(j);
            let in_acc = ra < cap && rows[ra] == r && cols[ra] == c;
            match self.rule {
                MergeRule::Sum => {
                    // Fold left-to-right: accumulator value (earlier pushes)
                    // first, then the chunk run in push order — exactly the
                    // order a one-shot build would sum.
                    let (mut v, start) = if in_acc {
                        (vals[ra], j)
                    } else {
                        (first, j + 1)
                    };
                    for k in start..end {
                        v += chunk[k].2;
                    }
                    if v != 0.0 {
                        rows[w] = r;
                        cols[w] = c;
                        vals[w] = v;
                        w += 1;
                    }
                }
                MergeRule::KeepFirst => {
                    rows[w] = r;
                    cols[w] = c;
                    vals[w] = if in_acc { vals[ra] } else { first };
                    w += 1;
                }
            }
            if in_acc {
                ra += 1;
            }
            j = end;
        }
        self.acc_rows.truncate(w);
        self.acc_cols.truncate(w);
        self.acc_vals.truncate(w);
        self.chunk.clear();
    }

    /// Finalizes into a [`CsrMatrix`].
    pub fn finish(self) -> CsrMatrix {
        self.finish_with_stats().0
    }

    /// Finalizes and reports the build's memory/merge statistics.
    pub fn finish_with_stats(mut self) -> (CsrMatrix, IngestStats) {
        self.flush();
        self.peak_aux_bytes = self.peak_aux_bytes.max(TRIPLET_BYTES * self.acc_rows.len());
        let mut indptr = vec![0usize; self.rows + 1];
        for &r in &self.acc_rows {
            indptr[r as usize + 1] += 1;
        }
        for i in 0..self.rows {
            indptr[i + 1] += indptr[i];
        }
        let stats = IngestStats {
            nnz: self.acc_vals.len(),
            peak_aux_bytes: self.peak_aux_bytes,
            flushes: self.flushes,
        };
        (
            CsrMatrix::from_raw(self.rows, self.cols, indptr, self.acc_cols, self.acc_vals),
            stats,
        )
    }

    /// Two-pass counting-sort build from a **replayable** triplet source.
    ///
    /// `source` is called exactly twice and must emit the identical triplet
    /// sequence both times (slices, [`CsrMatrix::iter`] chains and seeded
    /// generators all qualify). Pass 1 counts per-row occupancy; pass 2
    /// scatters values directly into the final arrays; each row is then
    /// stably sorted by column and merged under `rule`. The unsorted
    /// triplet set is never materialized — auxiliary memory is the
    /// `rows + 1` offset table plus the scatter slack for duplicates.
    ///
    /// # Panics
    /// Panics if a coordinate is out of bounds or the second replay does
    /// not match the first.
    pub fn from_source<F>(rows: usize, cols: usize, rule: MergeRule, mut source: F) -> CsrMatrix
    where
        F: FnMut(&mut dyn FnMut(usize, usize, f64)),
    {
        let result: Result<CsrMatrix, std::convert::Infallible> =
            Self::try_from_source(rows, cols, rule, |emit| {
                source(emit);
                Ok(())
            });
        match result {
            Ok(csr) => csr,
        }
    }

    /// Fallible variant of [`Self::from_source`] for sources that parse
    /// untrusted input as they emit (e.g. the two-pass file loaders in
    /// `pane-graph`): the source returns `Err` to abort the build, and
    /// the error propagates out of either pass. The replayability
    /// contract is unchanged — a source that *succeeds* twice must emit
    /// the identical sequence both times (a file that changes between
    /// passes panics like any other non-replayable source).
    pub fn try_from_source<E, F>(
        rows: usize,
        cols: usize,
        rule: MergeRule,
        mut source: F,
    ) -> Result<CsrMatrix, E>
    where
        F: FnMut(&mut dyn FnMut(usize, usize, f64)) -> Result<(), E>,
    {
        assert!(
            rows <= u32::MAX as usize && cols <= u32::MAX as usize,
            "dimensions exceed u32 index space"
        );
        // Pass 1: per-row triplet counts.
        let mut offsets = vec![0usize; rows + 1];
        source(&mut |r, c, _| {
            assert!(r < rows, "row {r} out of bounds ({rows})");
            assert!(c < cols, "col {c} out of bounds ({cols})");
            offsets[r + 1] += 1;
        })?;
        for i in 0..rows {
            offsets[i + 1] += offsets[i];
        }
        let total = offsets[rows];
        // Pass 2: scatter into the final arrays at per-row cursors. Within
        // a row, entries land in emission order.
        let mut indices = vec![0u32; total];
        let mut values = vec![0.0f64; total];
        let mut cursor: Vec<usize> = offsets[..rows].to_vec();
        source(&mut |r, c, v| {
            let p = cursor[r];
            assert!(
                p < offsets[r + 1],
                "replayable source emitted extra triplets for row {r} on the second pass"
            );
            indices[p] = c as u32;
            values[p] = v;
            cursor[r] = p + 1;
        })?;
        for r in 0..rows {
            assert!(
                cursor[r] == offsets[r + 1],
                "replayable source emitted fewer triplets for row {r} on the second pass"
            );
        }
        Ok(finalize_rows(rows, cols, &offsets, indices, values, rule))
    }
}

/// Sorts each row segment stably by column, folds duplicates under `rule`,
/// compacts in place and assembles the final matrix.
fn finalize_rows(
    rows: usize,
    cols: usize,
    offsets: &[usize],
    mut indices: Vec<u32>,
    mut values: Vec<f64>,
    rule: MergeRule,
) -> CsrMatrix {
    let mut indptr = vec![0usize; rows + 1];
    let mut scratch: Vec<(u32, f64)> = Vec::new();
    let mut w = 0usize;
    for r in 0..rows {
        let (lo, hi) = (offsets[r], offsets[r + 1]);
        scratch.clear();
        scratch.extend(
            indices[lo..hi]
                .iter()
                .copied()
                .zip(values[lo..hi].iter().copied()),
        );
        // Stable: duplicate columns keep emission (= push) order.
        scratch.sort_by_key(|&(c, _)| c);
        let mut i = 0;
        while i < scratch.len() {
            let col = scratch[i].0;
            let mut v = scratch[i].1;
            let mut j = i + 1;
            while j < scratch.len() && scratch[j].0 == col {
                if rule == MergeRule::Sum {
                    v += scratch[j].1;
                }
                j += 1;
            }
            if rule == MergeRule::KeepFirst || v != 0.0 {
                indices[w] = col;
                values[w] = v;
                w += 1;
                indptr[r + 1] += 1;
            }
            i = j;
        }
    }
    indices.truncate(w);
    values.truncate(w);
    for i in 0..rows {
        indptr[i + 1] += indptr[i];
    }
    CsrMatrix::from_raw(rows, cols, indptr, indices, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triplet_source(
        entries: &[(usize, usize, f64)],
    ) -> impl FnMut(&mut dyn FnMut(usize, usize, f64)) + '_ {
        move |emit| {
            for &(r, c, v) in entries {
                emit(r, c, v);
            }
        }
    }

    #[test]
    fn from_source_basic_merge() {
        let entries = [(2, 1, 5.0), (0, 0, 1.0), (0, 3, 2.0), (2, 1, 1.5)];
        let csr = CsrBuilder::from_source(3, 4, MergeRule::Sum, triplet_source(&entries));
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.get(0, 0), 1.0);
        assert_eq!(csr.get(0, 3), 2.0);
        assert_eq!(csr.get(2, 1), 6.5);
    }

    #[test]
    fn from_source_cancellation_drops() {
        let entries = [(0, 0, 2.0), (0, 0, -2.0), (1, 1, 3.0)];
        let csr = CsrBuilder::from_source(2, 2, MergeRule::Sum, triplet_source(&entries));
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.get(1, 1), 3.0);
    }

    #[test]
    fn from_source_empty() {
        let csr = CsrBuilder::from_source(0, 0, MergeRule::Sum, |_emit| {});
        assert_eq!(csr.rows(), 0);
        assert_eq!(csr.nnz(), 0);
    }

    #[test]
    fn keep_first_dedups_binary_edges() {
        let entries = [(0, 1, 1.0), (1, 0, 1.0), (0, 1, 1.0), (0, 1, 1.0)];
        let csr = CsrBuilder::from_source(2, 2, MergeRule::KeepFirst, triplet_source(&entries));
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.get(0, 1), 1.0);
        assert_eq!(csr.get(1, 0), 1.0);
    }

    #[test]
    fn chunked_matches_one_shot_across_chunk_sizes() {
        let entries: Vec<(usize, usize, f64)> = vec![
            (4, 3, 1.25),
            (0, 0, -0.5),
            (4, 3, -1.25), // cancels inside or across chunks
            (2, 2, 3.0),
            (0, 0, 0.75),
            (4, 3, 2.0), // re-adds after cancellation
            (2, 2, 3.0),
        ];
        let want = CsrBuilder::from_source(5, 5, MergeRule::Sum, triplet_source(&entries));
        for chunk in [1, 2, 3, 5, 64] {
            let mut b = CsrBuilder::new(5, 5).chunk_capacity(chunk);
            for &(r, c, v) in &entries {
                b.push(r, c, v);
            }
            let got = b.finish();
            assert_eq!(got, want, "chunk capacity {chunk}");
        }
    }

    #[test]
    fn chunked_keep_first() {
        let mut b = CsrBuilder::new(2, 2)
            .merge_rule(MergeRule::KeepFirst)
            .chunk_capacity(2);
        b.push(0, 1, 1.0);
        b.push(0, 1, 1.0); // same chunk
        b.push(0, 1, 1.0); // later chunk
        b.push(1, 1, 1.0);
        let csr = b.finish();
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.get(0, 1), 1.0);
    }

    #[test]
    fn stats_report_flushes_and_peak() {
        let mut b = CsrBuilder::new(4, 4).chunk_capacity(2);
        for i in 0..8 {
            b.push(i % 4, (i * 3) % 4, 1.0 + i as f64);
        }
        let (csr, stats) = b.finish_with_stats();
        assert_eq!(stats.nnz, csr.nnz());
        assert_eq!(stats.flushes, 4);
        assert!(stats.peak_aux_bytes > 0);
        // Bounded by O(nnz_out + chunk): never anywhere near 8 full triplets
        // per side of the merge.
        assert!(stats.peak_aux_bytes <= TRIPLET_BYTES * 2 * (csr.nnz() + 2));
    }

    #[test]
    fn summation_order_is_push_order() {
        // 0.1 + 0.2 + 0.3 differs bitwise from 0.3 + 0.2 + 0.1; all paths
        // must fold in push order.
        let entries = [(0, 0, 0.1), (0, 0, 0.2), (0, 0, 0.3)];
        let want = (0.1f64 + 0.2) + 0.3;
        let one = CsrBuilder::from_source(1, 1, MergeRule::Sum, triplet_source(&entries));
        assert_eq!(one.get(0, 0).to_bits(), want.to_bits());
        for chunk in [1, 2, 16] {
            let mut b = CsrBuilder::new(1, 1).chunk_capacity(chunk);
            for &(r, c, v) in &entries {
                b.push(r, c, v);
            }
            assert_eq!(b.finish().get(0, 0).to_bits(), want.to_bits());
        }
    }

    #[test]
    fn try_from_source_propagates_errors_from_either_pass() {
        // Error on the first (count) pass.
        let err: Result<CsrMatrix, &str> =
            CsrBuilder::try_from_source(2, 2, MergeRule::Sum, |_emit| Err("count pass failed"));
        assert_eq!(err.unwrap_err(), "count pass failed");
        // Error on the second (fill) pass, after a clean count pass.
        let mut calls = 0;
        let err: Result<CsrMatrix, &str> =
            CsrBuilder::try_from_source(2, 2, MergeRule::Sum, |emit| {
                calls += 1;
                emit(0, 0, 1.0);
                if calls == 2 {
                    return Err("fill pass failed");
                }
                Ok(())
            });
        assert_eq!(err.unwrap_err(), "fill pass failed");
        // A clean fallible source matches the infallible path exactly.
        let entries = [(0usize, 1usize, 2.0f64), (1, 0, 3.0), (0, 1, -2.0)];
        let ok: Result<CsrMatrix, &str> =
            CsrBuilder::try_from_source(2, 2, MergeRule::Sum, |emit| {
                for &(r, c, v) in &entries {
                    emit(r, c, v);
                }
                Ok(())
            });
        assert_eq!(
            ok.unwrap(),
            CsrBuilder::from_source(2, 2, MergeRule::Sum, triplet_source(&entries))
        );
    }

    #[test]
    fn in_place_merge_peak_counts_one_accumulator_copy() {
        // 6 unique entries pushed twice (12 pushes) through chunks of 3:
        // the worst flush holds acc=6 grown by chunk=3 (9) + the chunk
        // itself (3) = 12 triplets. The old double-buffered merge held
        // acc + fresh output = 2·9 = 18 alongside the chunk.
        let mut b = CsrBuilder::new(3, 3).chunk_capacity(3);
        for rep in 0..2 {
            for i in 0..6 {
                let _ = rep;
                b.push(i / 3, i % 3, 1.0);
            }
        }
        let (csr, stats) = b.finish_with_stats();
        assert_eq!(csr.nnz(), 6);
        assert_eq!(stats.peak_aux_bytes, TRIPLET_BYTES * 12);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_bounds_checked() {
        let mut b = CsrBuilder::new(2, 2);
        b.push(2, 0, 1.0);
    }

    #[test]
    #[should_panic(expected = "second pass")]
    fn non_replayable_source_detected() {
        let mut calls = 0;
        CsrBuilder::from_source(2, 2, MergeRule::Sum, |emit| {
            calls += 1;
            if calls == 2 {
                emit(0, 0, 1.0); // extra triplet only on the replay
            }
        });
    }
}
