//! Compressed sparse row matrix and its dense products.

use pane_linalg::DenseMatrix;
use pane_parallel::{even_ranges_nonempty, for_each_row_block};

/// An immutable sparse matrix in CSR format.
///
/// Invariants (checked in debug builds at construction):
/// * `indptr.len() == rows + 1`, `indptr[0] == 0`, non-decreasing;
/// * `indices`/`values` have length `indptr[rows]`;
/// * column indices are strictly increasing within every row (required by
///   [`get`](Self::get)'s binary search; guaranteed by [`crate::CooMatrix`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds from raw CSR arrays.
    ///
    /// # Panics
    /// Panics (debug) if the CSR invariants do not hold.
    pub fn from_raw(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(indptr.len(), rows + 1);
        debug_assert_eq!(indptr.first().copied().unwrap_or(0), 0);
        debug_assert!(indptr.windows(2).all(|w| w[0] <= w[1]));
        debug_assert_eq!(indices.len(), *indptr.last().unwrap_or(&0));
        debug_assert_eq!(values.len(), indices.len());
        #[cfg(debug_assertions)]
        for r in 0..rows {
            let row = &indices[indptr[r]..indptr[r + 1]];
            debug_assert!(
                row.windows(2).all(|w| w[0] < w[1]),
                "row {r} not strictly sorted"
            );
            debug_assert!(
                row.iter().all(|&c| (c as usize) < cols),
                "row {r} column out of bounds"
            );
        }
        Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// Builds from raw CSR arrays, validating the invariants in **all**
    /// build profiles (unlike [`from_raw`](Self::from_raw), whose checks
    /// are debug-only). Intended for deserializing untrusted bytes — a
    /// corrupted file must surface as `Err`, not as undefined behavior in
    /// the binary searches that assume sorted rows.
    pub fn try_from_raw(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f64>,
    ) -> Result<Self, String> {
        if indptr.len() != rows + 1 {
            return Err(format!(
                "indptr length {} does not match rows {rows} + 1",
                indptr.len()
            ));
        }
        if indptr.first() != Some(&0) {
            return Err("indptr does not start at 0".into());
        }
        if let Some(w) = indptr.windows(2).position(|w| w[0] > w[1]) {
            return Err(format!("indptr decreases at row {w}"));
        }
        let nnz = *indptr.last().unwrap();
        if indices.len() != nnz || values.len() != nnz {
            return Err(format!(
                "index/value lengths {}/{} do not match indptr total {nnz}",
                indices.len(),
                values.len()
            ));
        }
        for r in 0..rows {
            let row = &indices[indptr[r]..indptr[r + 1]];
            if !row.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("row {r} columns not strictly increasing"));
            }
            if let Some(&c) = row.last() {
                if c as usize >= cols {
                    return Err(format!("row {r} column {c} out of bounds ({cols})"));
                }
            }
        }
        Ok(Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        })
    }

    /// Empty (all-zero) matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::from_raw(rows, cols, vec![0; rows + 1], Vec::new(), Vec::new())
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let indptr = (0..=n).collect();
        let indices = (0..n as u32).collect();
        let values = vec![1.0; n];
        Self::from_raw(n, n, indptr, indices, values)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Column indices and values of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let r = self.indptr[i]..self.indptr[i + 1];
        (&self.indices[r.clone()], &self.values[r])
    }

    /// Number of stored entries in row `i`.
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.indptr[i + 1] - self.indptr[i]
    }

    /// Entry `(i, j)` (0.0 if not stored). `O(log nnz(row))`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&(j as u32)) {
            Ok(pos) => vals[pos],
            Err(_) => 0.0,
        }
    }

    /// Per-row sums.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows).map(|i| self.row(i).1.iter().sum()).collect()
    }

    /// Per-column sums.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut s = vec![0.0; self.cols];
        for (&c, &v) in self.indices.iter().zip(&self.values) {
            s[c as usize] += v;
        }
        s
    }

    /// Returns a copy with row `i` scaled by `factors[i]`.
    pub fn scale_rows(&self, factors: &[f64]) -> CsrMatrix {
        assert_eq!(
            factors.len(),
            self.rows,
            "scale_rows: factor length mismatch"
        );
        let mut out = self.clone();
        for i in 0..self.rows {
            let f = factors[i];
            for v in &mut out.values[self.indptr[i]..self.indptr[i + 1]] {
                *v *= f;
            }
        }
        out
    }

    /// Returns a copy with column `j` scaled by `factors[j]`.
    pub fn scale_cols(&self, factors: &[f64]) -> CsrMatrix {
        assert_eq!(
            factors.len(),
            self.cols,
            "scale_cols: factor length mismatch"
        );
        let mut out = self.clone();
        for (idx, &c) in self.indices.iter().enumerate() {
            out.values[idx] *= factors[c as usize];
        }
        out
    }

    /// Row-normalizes: each non-empty row is divided by its sum. Rows whose
    /// sum is zero are left as-is (the caller decides the dangling policy).
    pub fn normalize_rows(&self) -> CsrMatrix {
        let sums = self.row_sums();
        let factors: Vec<f64> = sums
            .iter()
            .map(|&s| if s != 0.0 { 1.0 / s } else { 0.0 })
            .collect();
        self.scale_rows(&factors)
    }

    /// Column-normalizes: each non-empty column divided by its sum.
    pub fn normalize_cols(&self) -> CsrMatrix {
        let sums = self.col_sums();
        let factors: Vec<f64> = sums
            .iter()
            .map(|&s| if s != 0.0 { 1.0 / s } else { 0.0 })
            .collect();
        self.scale_cols(&factors)
    }

    /// Transposed copy (CSR of `selfᵀ`), via counting sort — `O(nnz + n)`.
    pub fn transpose(&self) -> CsrMatrix {
        let mut indptr = vec![0usize; self.cols + 1];
        for &c in &self.indices {
            indptr[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            indptr[i + 1] += indptr[i];
        }
        let mut indices = vec![0u32; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut cursor = indptr.clone();
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                let pos = cursor[c as usize];
                indices[pos] = r as u32;
                values[pos] = v;
                cursor[c as usize] += 1;
            }
        }
        CsrMatrix::from_raw(self.cols, self.rows, indptr, indices, values)
    }

    /// Dense product `C = self · b` (`(n×m)·(m×p) → n×p`).
    pub fn mul_dense(&self, b: &DenseMatrix) -> DenseMatrix {
        let mut c = DenseMatrix::zeros(self.rows, b.cols());
        self.mul_dense_into(b, &mut c);
        c
    }

    /// Dense product into a pre-allocated output (overwritten).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn mul_dense_into(&self, b: &DenseMatrix, out: &mut DenseMatrix) {
        assert_eq!(self.cols, b.rows(), "mul_dense: inner dimension mismatch");
        assert_eq!(
            out.shape(),
            (self.rows, b.cols()),
            "mul_dense: output shape mismatch"
        );
        let p = b.cols();
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            let crow = &mut out.data_mut()[i * p..(i + 1) * p];
            crow.iter_mut().for_each(|v| *v = 0.0);
            for (&cidx, &v) in cols.iter().zip(vals) {
                let brow = b.row(cidx as usize);
                for (slot, &bv) in crow.iter_mut().zip(brow) {
                    *slot += v * bv;
                }
            }
        }
    }

    /// Block-parallel dense product over `nb` output row blocks.
    pub fn mul_dense_par(&self, b: &DenseMatrix, nb: usize) -> DenseMatrix {
        assert_eq!(
            self.cols,
            b.rows(),
            "mul_dense_par: inner dimension mismatch"
        );
        let p = b.cols();
        let mut c = DenseMatrix::zeros(self.rows, p);
        let ranges = even_ranges_nonempty(self.rows, nb);
        let me = self;
        for_each_row_block(c.data_mut(), self.rows, p, &ranges, |_, range, block| {
            for (bi, i) in range.clone().enumerate() {
                let (cols, vals) = me.row(i);
                let crow = &mut block[bi * p..(bi + 1) * p];
                for (&cidx, &v) in cols.iter().zip(vals) {
                    let brow = b.row(cidx as usize);
                    for (slot, &bv) in crow.iter_mut().zip(brow) {
                        *slot += v * bv;
                    }
                }
            }
        });
        c
    }

    /// Sparse × dense-vector product `y = self · x`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "mul_vec: dimension mismatch");
        (0..self.rows)
            .map(|i| {
                let (cols, vals) = self.row(i);
                cols.iter()
                    .zip(vals)
                    .map(|(&c, &v)| v * x[c as usize])
                    .sum()
            })
            .collect()
    }

    /// Dense copy (tests / tiny examples only).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                d.set(i, c as usize, v);
            }
        }
        d
    }

    /// Builds from a dense matrix, keeping entries with `|v| > 0`.
    pub fn from_dense(d: &DenseMatrix) -> CsrMatrix {
        crate::CsrBuilder::from_source(d.rows(), d.cols(), crate::MergeRule::Sum, |emit| {
            for i in 0..d.rows() {
                for (j, &v) in d.row(i).iter().enumerate() {
                    if v != 0.0 {
                        emit(i, j, v);
                    }
                }
            }
        })
    }

    /// Iterates over all stored entries as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |i| {
            let (cols, vals) = self.row(i);
            cols.iter()
                .zip(vals)
                .map(move |(&c, &v)| (i, c as usize, v))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_sparse(rows: usize, cols: usize, density: f64, seed: u64) -> CsrMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = CooMatrix::new(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                if rng.gen::<f64>() < density {
                    coo.push(i, j, rng.gen::<f64>() * 2.0 - 1.0);
                }
            }
        }
        coo.to_csr()
    }

    #[test]
    fn identity_products() {
        let i5 = CsrMatrix::identity(5);
        let mut rng = StdRng::seed_from_u64(1);
        let b = DenseMatrix::gaussian(5, 3, &mut rng);
        assert!(i5.mul_dense(&b).max_abs_diff(&b) < 1e-15);
        assert_eq!(i5.transpose(), i5);
        assert_eq!(i5.nnz(), 5);
    }

    #[test]
    fn mul_dense_matches_dense_reference() {
        let s = random_sparse(17, 11, 0.3, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let b = DenseMatrix::gaussian(11, 7, &mut rng);
        let got = s.mul_dense(&b);
        let want = s.to_dense().matmul(&b);
        assert!(got.max_abs_diff(&want) < 1e-12);
        for nb in [1, 2, 4, 9] {
            assert!(s.mul_dense_par(&b, nb).max_abs_diff(&want) < 1e-12);
        }
    }

    #[test]
    fn transpose_matches_dense_reference() {
        let s = random_sparse(9, 14, 0.25, 4);
        let t = s.transpose();
        assert_eq!(t.rows(), 14);
        assert_eq!(t.cols(), 9);
        assert!(t.to_dense().max_abs_diff(&s.to_dense().transpose()) < 1e-15);
        // Involution
        assert_eq!(t.transpose(), s);
    }

    #[test]
    fn sums_and_scaling() {
        let mut coo = CooMatrix::new(2, 3);
        coo.push(0, 0, 1.0);
        coo.push(0, 2, 3.0);
        coo.push(1, 1, 2.0);
        let s = coo.to_csr();
        assert_eq!(s.row_sums(), vec![4.0, 2.0]);
        assert_eq!(s.col_sums(), vec![1.0, 2.0, 3.0]);
        let rn = s.normalize_rows();
        assert!(rn.row_sums().iter().all(|&x| (x - 1.0).abs() < 1e-12));
        let cn = s.normalize_cols();
        assert!(cn.col_sums().iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }

    #[test]
    fn normalize_skips_empty() {
        let mut coo = CooMatrix::new(3, 2);
        coo.push(0, 0, 2.0);
        let s = coo.to_csr(); // rows 1,2 empty
        let rn = s.normalize_rows();
        assert_eq!(rn.row_sums(), vec![1.0, 0.0, 0.0]);
    }

    #[test]
    fn mul_vec_matches() {
        let s = random_sparse(8, 5, 0.4, 5);
        let x: Vec<f64> = (0..5).map(|i| i as f64 - 2.0).collect();
        let y = s.mul_vec(&x);
        let d = s.to_dense();
        for i in 0..8 {
            let want: f64 = (0..5).map(|j| d.get(i, j) * x[j]).sum();
            assert!((y[i] - want).abs() < 1e-12);
        }
    }

    #[test]
    fn dense_roundtrip() {
        let s = random_sparse(6, 6, 0.5, 6);
        assert_eq!(CsrMatrix::from_dense(&s.to_dense()), s);
    }

    #[test]
    fn iter_visits_all() {
        let s = random_sparse(7, 7, 0.3, 7);
        let mut count = 0;
        for (i, j, v) in s.iter() {
            assert_eq!(s.get(i, j), v);
            count += 1;
        }
        assert_eq!(count, s.nnz());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn prop_spmm_linear(seed in 0u64..10_000) {
            let s = random_sparse(10, 8, 0.3, seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xF);
            let b1 = DenseMatrix::gaussian(8, 4, &mut rng);
            let b2 = DenseMatrix::gaussian(8, 4, &mut rng);
            // S(b1 + b2) = S b1 + S b2
            let mut sum = b1.clone();
            sum.axpy_inplace(1.0, &b2);
            let lhs = s.mul_dense(&sum);
            let mut rhs = s.mul_dense(&b1);
            rhs.axpy_inplace(1.0, &s.mul_dense(&b2));
            prop_assert!(lhs.max_abs_diff(&rhs) < 1e-10);
        }

        #[test]
        fn prop_transpose_product_identity(seed in 0u64..10_000) {
            let s = random_sparse(9, 6, 0.35, seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xAA);
            let b = DenseMatrix::gaussian(9, 3, &mut rng);
            // (Sᵀ b) computed sparsely == dense reference
            let got = s.transpose().mul_dense(&b);
            let want = s.to_dense().transpose().matmul(&b);
            prop_assert!(got.max_abs_diff(&want) < 1e-10);
        }
    }
}
