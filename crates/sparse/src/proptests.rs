//! Property tests for the sparse substrate, mirroring
//! `pane-core/src/proptests.rs`: every algebraic identity the PANE pipeline
//! relies on, checked against the dense reference implementation on
//! arbitrary random sparse matrices.

use crate::{CooMatrix, CsrBuilder, CsrMatrix, MergeRule};
use pane_linalg::DenseMatrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random COO with duplicate coordinates (push order shuffled by seed), so
/// `to_csr` has to sort *and* merge.
fn random_coo(rows: usize, cols: usize, nnz_hint: usize, seed: u64) -> CooMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = CooMatrix::new(rows, cols);
    if rows == 0 || cols == 0 {
        return coo;
    }
    for _ in 0..nnz_hint {
        let i = rng.gen_range(0..rows);
        let j = rng.gen_range(0..cols);
        coo.push(i, j, rng.gen::<f64>() * 2.0 - 1.0);
    }
    coo
}

fn coo_from_csr(m: &CsrMatrix) -> CooMatrix {
    let mut coo = CooMatrix::new(m.rows(), m.cols());
    for (i, j, v) in m.iter() {
        coo.push(i, j, v);
    }
    coo
}

/// Independent reference implementation of the historical
/// `CooMatrix::to_csr` contract: stable sort by `(row, col)`, duplicates
/// summed left-to-right in push order, exact-zero totals dropped. Every
/// streaming path must match this **bit for bit**.
fn reference_csr(rows: usize, cols: usize, entries: &[(usize, usize, f64)]) -> CsrMatrix {
    let mut sorted: Vec<(usize, usize, f64)> = entries.to_vec();
    sorted.sort_by_key(|&(r, c, _)| (r, c)); // stable
    let mut indptr = vec![0usize; rows + 1];
    let mut indices: Vec<u32> = Vec::new();
    let mut values: Vec<f64> = Vec::new();
    let mut iter = sorted.into_iter().peekable();
    while let Some((r, c, mut v)) = iter.next() {
        while let Some(&(r2, c2, v2)) = iter.peek() {
            if r2 == r && c2 == c {
                v += v2;
                iter.next();
            } else {
                break;
            }
        }
        if v != 0.0 {
            indices.push(c as u32);
            values.push(v);
            indptr[r + 1] += 1;
        }
    }
    for i in 0..rows {
        indptr[i + 1] += indptr[i];
    }
    CsrMatrix::from_raw(rows, cols, indptr, indices, values)
}

/// Bitwise equality: structure plus `f64::to_bits` on every value (plain
/// `==` would conflate `0.0`/`-0.0` and choke on any NaN).
fn assert_bit_identical(got: &CsrMatrix, want: &CsrMatrix, what: &str) {
    assert_eq!(
        (got.rows(), got.cols()),
        (want.rows(), want.cols()),
        "{what}: shape"
    );
    assert_eq!(got.nnz(), want.nnz(), "{what}: nnz");
    for r in 0..want.rows() {
        let (gc, gv) = got.row(r);
        let (wc, wv) = want.row(r);
        assert_eq!(gc, wc, "{what}: row {r} columns");
        for (k, (g, w)) in gv.iter().zip(wv).enumerate() {
            assert_eq!(
                g.to_bits(),
                w.to_bits(),
                "{what}: row {r} entry {k}: {g} vs {w}"
            );
        }
    }
}

/// Triplet soup engineered to exercise the merge paths: duplicate
/// coordinates are common (small id space), values are drawn from a set
/// closed under negation so duplicate runs regularly cancel to exactly
/// `0.0`, and some rows/columns stay empty.
fn adversarial_entries(rows: usize, cols: usize, n: usize, seed: u64) -> Vec<(usize, usize, f64)> {
    const VALS: [f64; 6] = [1.0, -1.0, 0.5, -0.5, 2.25, -2.25];
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            (
                rng.gen_range(0..rows),
                rng.gen_range(0..cols),
                // Occasionally a value that cannot cancel, so sums also mix.
                if rng.gen::<f64>() < 0.2 {
                    rng.gen::<f64>() - 0.5
                } else {
                    VALS[rng.gen_range(0..VALS.len())]
                },
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// COO → CSR → COO → CSR is the identity (sorting and duplicate
    /// merging are idempotent once merged).
    #[test]
    fn prop_coo_csr_roundtrip(seed in 0u64..10_000, rows in 1usize..24, cols in 1usize..24) {
        let coo = random_coo(rows, cols, rows * cols / 2 + 1, seed);
        let csr = coo.to_csr();
        let back = coo_from_csr(&csr).to_csr();
        prop_assert_eq!(&back, &csr);
        // Dense detour agrees as well.
        prop_assert_eq!(&CsrMatrix::from_dense(&csr.to_dense()), &csr);
    }

    /// Transpose is an involution and matches the dense transpose.
    #[test]
    fn prop_transpose_involution(seed in 0u64..10_000, rows in 1usize..20, cols in 1usize..20) {
        let csr = random_coo(rows, cols, rows + cols, seed).to_csr();
        let t = csr.transpose();
        prop_assert_eq!((t.rows(), t.cols()), (cols, rows));
        prop_assert_eq!(t.nnz(), csr.nnz());
        prop_assert!(t.to_dense().max_abs_diff(&csr.to_dense().transpose()) < 1e-15);
        prop_assert_eq!(&t.transpose(), &csr);
    }

    /// Sparse × vector matches the dense mat-vec reference exactly
    /// (same per-row summation order).
    #[test]
    fn prop_spmv_matches_dense(seed in 0u64..10_000, rows in 1usize..20, cols in 1usize..20) {
        let csr = random_coo(rows, cols, 2 * rows, seed).to_csr();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5151);
        let x: Vec<f64> = (0..cols).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
        let y = csr.mul_vec(&x);
        let dense = csr.to_dense();
        prop_assert_eq!(y.len(), rows);
        for i in 0..rows {
            let want: f64 = (0..cols).map(|j| dense.get(i, j) * x[j]).sum();
            prop_assert!((y[i] - want).abs() <= 1e-12, "row {i}: {} vs {want}", y[i]);
        }
    }

    /// Sparse × dense matches the dense reference for the serial kernel and
    /// every block count, and the parallel kernel is bitwise equal to the
    /// serial one (the invariance the PAPMI Lemma 4.1 tests build on).
    #[test]
    fn prop_spmm_matches_dense(seed in 0u64..10_000, rows in 1usize..20, inner in 1usize..16) {
        let csr = random_coo(rows, inner, 2 * rows + 1, seed).to_csr();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA0A0);
        let b = DenseMatrix::gaussian(inner, 5, &mut rng);
        let serial = csr.mul_dense(&b);
        let want = csr.to_dense().matmul(&b);
        prop_assert!(serial.max_abs_diff(&want) < 1e-12);
        for nb in [1usize, 2, 3, 8] {
            let par = csr.mul_dense_par(&b, nb);
            prop_assert_eq!(par.data(), serial.data(), "nb = {}", nb);
        }
    }

    /// The tentpole invariant of the streaming rebuild: `CooMatrix::to_csr`,
    /// `CsrBuilder::from_source` and the chunked push path at every chunk
    /// size are all **bit-identical** to the independent sort-based
    /// reference — same `(row, col)` order, same push-order duplicate
    /// summation, same exact-zero cancellation drops — across duplicates,
    /// cancellations, empty rows and empty matrices.
    #[test]
    fn prop_streaming_builders_bit_identical(
        seed in 0u64..10_000,
        rows in 1usize..24,
        cols in 1usize..24,
        load in 0usize..4,
    ) {
        // load 0 => empty matrix; otherwise ~load× overcommitted ids so
        // duplicate runs (and cancellations) are frequent.
        let n = load * (rows + cols);
        let entries = adversarial_entries(rows, cols, n, seed);
        let want = reference_csr(rows, cols, &entries);

        let mut coo = CooMatrix::new(rows, cols);
        for &(r, c, v) in &entries {
            coo.push(r, c, v);
        }
        assert_bit_identical(&coo.to_csr(), &want, "CooMatrix::to_csr");

        let one_shot = CsrBuilder::from_source(rows, cols, MergeRule::Sum, |emit| {
            for &(r, c, v) in &entries {
                emit(r, c, v);
            }
        });
        assert_bit_identical(&one_shot, &want, "from_source");

        for chunk in [1usize, 2, 3, 7, 64, 4096] {
            let mut b = CsrBuilder::new(rows, cols).chunk_capacity(chunk);
            for &(r, c, v) in &entries {
                b.push(r, c, v);
            }
            let (got, stats) = b.finish_with_stats();
            assert_bit_identical(&got, &want, &format!("chunked (capacity {chunk})"));
            prop_assert_eq!(stats.nnz, want.nnz());
            // Peak auxiliary memory stays O(nnz_merged + chunk): merge
            // inputs plus merge output, each at most (accumulated distinct
            // coordinates + one chunk) triplets — never O(all triplets).
            let distinct = entries
                .iter()
                .map(|&(r, c, _)| (r, c))
                .collect::<std::collections::BTreeSet<_>>()
                .len();
            prop_assert!(stats.peak_aux_bytes <= 2 * 16 * (distinct + chunk));
        }
    }

    /// Row/column sums agree with the dense reference; normalization makes
    /// every non-empty row/column sum to 1 and leaves empty ones at 0.
    /// Values are kept positive (as in the random-walk matrix `P = D⁻¹A`)
    /// so row sums cannot cancel to ~0 and blow up the normalized error.
    #[test]
    fn prop_sums_and_normalization(seed in 0u64..10_000, rows in 1usize..20, cols in 1usize..20) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = CooMatrix::new(rows, cols);
        for _ in 0..rows + 2 {
            coo.push(rng.gen_range(0..rows), rng.gen_range(0..cols), rng.gen::<f64>() + 0.1);
        }
        let csr = coo.to_csr();
        let dense = csr.to_dense();
        let rs = csr.row_sums();
        let cs = csr.col_sums();
        for i in 0..rows {
            let want: f64 = (0..cols).map(|j| dense.get(i, j)).sum();
            prop_assert!((rs[i] - want).abs() <= 1e-12);
        }
        for j in 0..cols {
            let want: f64 = (0..rows).map(|i| dense.get(i, j)).sum();
            prop_assert!((cs[j] - want).abs() <= 1e-12);
        }
        for (i, &s) in csr.normalize_rows().row_sums().iter().enumerate() {
            let expect_zero = rs[i] == 0.0;
            prop_assert!(if expect_zero { s == 0.0 } else { (s - 1.0).abs() < 1e-9 }, "row {i} sum {s}");
        }
    }
}
