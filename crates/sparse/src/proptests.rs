//! Property tests for the sparse substrate, mirroring
//! `pane-core/src/proptests.rs`: every algebraic identity the PANE pipeline
//! relies on, checked against the dense reference implementation on
//! arbitrary random sparse matrices.

use crate::{CooMatrix, CsrMatrix};
use pane_linalg::DenseMatrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random COO with duplicate coordinates (push order shuffled by seed), so
/// `to_csr` has to sort *and* merge.
fn random_coo(rows: usize, cols: usize, nnz_hint: usize, seed: u64) -> CooMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = CooMatrix::new(rows, cols);
    if rows == 0 || cols == 0 {
        return coo;
    }
    for _ in 0..nnz_hint {
        let i = rng.gen_range(0..rows);
        let j = rng.gen_range(0..cols);
        coo.push(i, j, rng.gen::<f64>() * 2.0 - 1.0);
    }
    coo
}

fn coo_from_csr(m: &CsrMatrix) -> CooMatrix {
    let mut coo = CooMatrix::new(m.rows(), m.cols());
    for (i, j, v) in m.iter() {
        coo.push(i, j, v);
    }
    coo
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// COO → CSR → COO → CSR is the identity (sorting and duplicate
    /// merging are idempotent once merged).
    #[test]
    fn prop_coo_csr_roundtrip(seed in 0u64..10_000, rows in 1usize..24, cols in 1usize..24) {
        let coo = random_coo(rows, cols, rows * cols / 2 + 1, seed);
        let csr = coo.to_csr();
        let back = coo_from_csr(&csr).to_csr();
        prop_assert_eq!(&back, &csr);
        // Dense detour agrees as well.
        prop_assert_eq!(&CsrMatrix::from_dense(&csr.to_dense()), &csr);
    }

    /// Transpose is an involution and matches the dense transpose.
    #[test]
    fn prop_transpose_involution(seed in 0u64..10_000, rows in 1usize..20, cols in 1usize..20) {
        let csr = random_coo(rows, cols, rows + cols, seed).to_csr();
        let t = csr.transpose();
        prop_assert_eq!((t.rows(), t.cols()), (cols, rows));
        prop_assert_eq!(t.nnz(), csr.nnz());
        prop_assert!(t.to_dense().max_abs_diff(&csr.to_dense().transpose()) < 1e-15);
        prop_assert_eq!(&t.transpose(), &csr);
    }

    /// Sparse × vector matches the dense mat-vec reference exactly
    /// (same per-row summation order).
    #[test]
    fn prop_spmv_matches_dense(seed in 0u64..10_000, rows in 1usize..20, cols in 1usize..20) {
        let csr = random_coo(rows, cols, 2 * rows, seed).to_csr();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5151);
        let x: Vec<f64> = (0..cols).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
        let y = csr.mul_vec(&x);
        let dense = csr.to_dense();
        prop_assert_eq!(y.len(), rows);
        for i in 0..rows {
            let want: f64 = (0..cols).map(|j| dense.get(i, j) * x[j]).sum();
            prop_assert!((y[i] - want).abs() <= 1e-12, "row {i}: {} vs {want}", y[i]);
        }
    }

    /// Sparse × dense matches the dense reference for the serial kernel and
    /// every block count, and the parallel kernel is bitwise equal to the
    /// serial one (the invariance the PAPMI Lemma 4.1 tests build on).
    #[test]
    fn prop_spmm_matches_dense(seed in 0u64..10_000, rows in 1usize..20, inner in 1usize..16) {
        let csr = random_coo(rows, inner, 2 * rows + 1, seed).to_csr();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA0A0);
        let b = DenseMatrix::gaussian(inner, 5, &mut rng);
        let serial = csr.mul_dense(&b);
        let want = csr.to_dense().matmul(&b);
        prop_assert!(serial.max_abs_diff(&want) < 1e-12);
        for nb in [1usize, 2, 3, 8] {
            let par = csr.mul_dense_par(&b, nb);
            prop_assert_eq!(par.data(), serial.data(), "nb = {}", nb);
        }
    }

    /// Row/column sums agree with the dense reference; normalization makes
    /// every non-empty row/column sum to 1 and leaves empty ones at 0.
    /// Values are kept positive (as in the random-walk matrix `P = D⁻¹A`)
    /// so row sums cannot cancel to ~0 and blow up the normalized error.
    #[test]
    fn prop_sums_and_normalization(seed in 0u64..10_000, rows in 1usize..20, cols in 1usize..20) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut coo = CooMatrix::new(rows, cols);
        for _ in 0..rows + 2 {
            coo.push(rng.gen_range(0..rows), rng.gen_range(0..cols), rng.gen::<f64>() + 0.1);
        }
        let csr = coo.to_csr();
        let dense = csr.to_dense();
        let rs = csr.row_sums();
        let cs = csr.col_sums();
        for i in 0..rows {
            let want: f64 = (0..cols).map(|j| dense.get(i, j)).sum();
            prop_assert!((rs[i] - want).abs() <= 1e-12);
        }
        for j in 0..cols {
            let want: f64 = (0..rows).map(|i| dense.get(i, j)).sum();
            prop_assert!((cs[j] - want).abs() <= 1e-12);
        }
        for (i, &s) in csr.normalize_rows().row_sums().iter().enumerate() {
            let expect_zero = rs[i] == 0.0;
            prop_assert!(if expect_zero { s == 0.0 } else { (s - 1.0).abs() < 1e-9 }, "row {i} sum {s}");
        }
    }
}
