//! Triplet (COO) builder for sparse matrices.
//!
//! Callers accumulate `(row, col, value)` triplets in arbitrary order,
//! possibly with duplicates (e.g. a multi-edge in an input file, or
//! repeated node–attribute associations). [`CooMatrix::to_csr`] sorts,
//! merges duplicates by summation, and produces a [`CsrMatrix`].
//!
//! This type buffers **every** triplet (16 bytes each) before conversion;
//! it remains the convenient choice for small and test matrices. Large
//! builds should stream through [`crate::CsrBuilder`] instead, which
//! `to_csr` itself now delegates to — see the crate docs' "memory model
//! of ingestion" for the peak-memory formulas.

use crate::csr::CsrMatrix;
use crate::stream::{CsrBuilder, MergeRule};

/// A sparse matrix under construction, as unsorted triplets.
#[derive(Debug, Clone, Default)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl CooMatrix {
    /// Empty builder with fixed dimensions.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(
            rows <= u32::MAX as usize && cols <= u32::MAX as usize,
            "dimensions exceed u32 index space"
        );
        Self {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Empty builder with a capacity hint.
    pub fn with_capacity(rows: usize, cols: usize, cap: usize) -> Self {
        let mut m = Self::new(rows, cols);
        m.entries.reserve(cap);
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of accumulated triplets (duplicates not merged yet).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no triplets have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds a triplet.
    ///
    /// # Panics
    /// Panics if the coordinates are out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows, "row {row} out of bounds ({})", self.rows);
        assert!(col < self.cols, "col {col} out of bounds ({})", self.cols);
        self.entries.push((row as u32, col as u32, value));
    }

    /// Converts to CSR, summing duplicate coordinates (in push order) and
    /// dropping exact zeros produced by cancellation.
    ///
    /// Thin wrapper over [`CsrBuilder::from_source`] — the buffered
    /// triplet vector is the replayable source.
    pub fn to_csr(self) -> CsrMatrix {
        let entries = self.entries;
        CsrBuilder::from_source(self.rows, self.cols, MergeRule::Sum, |emit| {
            for &(r, c, v) in &entries {
                emit(r as usize, c as usize, v);
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_convert() {
        let mut coo = CooMatrix::new(3, 4);
        coo.push(2, 1, 5.0);
        coo.push(0, 0, 1.0);
        coo.push(0, 3, 2.0);
        coo.push(2, 1, 1.5); // duplicate, summed
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.get(0, 0), 1.0);
        assert_eq!(csr.get(0, 3), 2.0);
        assert_eq!(csr.get(2, 1), 6.5);
        assert_eq!(csr.get(1, 2), 0.0);
    }

    #[test]
    fn cancellation_drops_entry() {
        let mut coo = CooMatrix::new(1, 1);
        coo.push(0, 0, 2.0);
        coo.push(0, 0, -2.0);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 0);
    }

    #[test]
    fn empty_matrix() {
        let coo = CooMatrix::new(0, 0);
        assert!(coo.is_empty());
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.rows(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_rejected() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(2, 0, 1.0);
    }
}
