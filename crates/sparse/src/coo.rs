//! Triplet (COO) builder for sparse matrices.
//!
//! Graph loaders and generators accumulate `(row, col, value)` triplets in
//! arbitrary order, possibly with duplicates (e.g. a multi-edge in an input
//! file, or repeated node–attribute associations). [`CooMatrix::to_csr`]
//! sorts, merges duplicates by summation, and produces a [`CsrMatrix`].

use crate::csr::CsrMatrix;

/// A sparse matrix under construction, as unsorted triplets.
#[derive(Debug, Clone, Default)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl CooMatrix {
    /// Empty builder with fixed dimensions.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(
            rows <= u32::MAX as usize && cols <= u32::MAX as usize,
            "dimensions exceed u32 index space"
        );
        Self {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Empty builder with a capacity hint.
    pub fn with_capacity(rows: usize, cols: usize, cap: usize) -> Self {
        let mut m = Self::new(rows, cols);
        m.entries.reserve(cap);
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of accumulated triplets (duplicates not merged yet).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no triplets have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds a triplet.
    ///
    /// # Panics
    /// Panics if the coordinates are out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows, "row {row} out of bounds ({})", self.rows);
        assert!(col < self.cols, "col {col} out of bounds ({})", self.cols);
        self.entries.push((row as u32, col as u32, value));
    }

    /// Converts to CSR, summing duplicate coordinates and dropping exact
    /// zeros produced by cancellation.
    pub fn to_csr(mut self) -> CsrMatrix {
        self.entries
            .sort_unstable_by_key(|&(r, c, _)| ((r as u64) << 32) | c as u64);
        let mut indptr = vec![0usize; self.rows + 1];
        let mut indices: Vec<u32> = Vec::with_capacity(self.entries.len());
        let mut values: Vec<f64> = Vec::with_capacity(self.entries.len());
        let mut iter = self.entries.into_iter().peekable();
        while let Some((r, c, mut v)) = iter.next() {
            while let Some(&(r2, c2, v2)) = iter.peek() {
                if r2 == r && c2 == c {
                    v += v2;
                    iter.next();
                } else {
                    break;
                }
            }
            if v != 0.0 {
                indices.push(c);
                values.push(v);
                indptr[r as usize + 1] += 1;
            }
        }
        for i in 0..self.rows {
            indptr[i + 1] += indptr[i];
        }
        CsrMatrix::from_raw(self.rows, self.cols, indptr, indices, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_convert() {
        let mut coo = CooMatrix::new(3, 4);
        coo.push(2, 1, 5.0);
        coo.push(0, 0, 1.0);
        coo.push(0, 3, 2.0);
        coo.push(2, 1, 1.5); // duplicate, summed
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.get(0, 0), 1.0);
        assert_eq!(csr.get(0, 3), 2.0);
        assert_eq!(csr.get(2, 1), 6.5);
        assert_eq!(csr.get(1, 2), 0.0);
    }

    #[test]
    fn cancellation_drops_entry() {
        let mut coo = CooMatrix::new(1, 1);
        coo.push(0, 0, 2.0);
        coo.push(0, 0, -2.0);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 0);
    }

    #[test]
    fn empty_matrix() {
        let coo = CooMatrix::new(0, 0);
        assert!(coo.is_empty());
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.rows(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_rejected() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(2, 0, 1.0);
    }
}
