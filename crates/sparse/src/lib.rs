#![warn(missing_docs)]
//! Sparse matrix substrate for the PANE reproduction.
//!
//! The only large sparse operator in PANE is the random-walk matrix
//! `P = D⁻¹A` (and its transpose), applied repeatedly to `n × ℓ` dense
//! blocks in APMI/PAPMI: `P_f^{(ℓ)} = (1-α)·P·P_f^{(ℓ-1)} + α·P_f^{(0)}`.
//! The attribute matrix `R` and its normalizations are also sparse.
//!
//! This crate provides:
//!
//! * [`CooMatrix`] — a triplet builder with duplicate summing;
//! * [`CsrMatrix`] — compressed sparse row storage with transpose,
//!   row/column scaling, and dense products [`CsrMatrix::mul_dense`] /
//!   [`CsrMatrix::mul_dense_par`] (block-parallel over output rows);
//! * conversions to/from [`pane_linalg::DenseMatrix`] for tests and small
//!   examples.
//!
//! Indices are `u32` (the paper's graphs stay below 2³² nodes; MAG has
//! 59.3M), which halves index memory versus `usize`.

// Indexed loops in the numeric kernels are deliberate.
#![allow(clippy::needless_range_loop)]
pub mod coo;
pub mod csr;
#[cfg(test)]
mod proptests;

pub use coo::CooMatrix;
pub use csr::CsrMatrix;
