#![warn(missing_docs)]
//! Sparse matrix substrate for the PANE reproduction.
//!
//! The only large sparse operator in PANE is the random-walk matrix
//! `P = D⁻¹A` (and its transpose), applied repeatedly to `n × ℓ` dense
//! blocks in APMI/PAPMI: `P_f^{(ℓ)} = (1-α)·P·P_f^{(ℓ-1)} + α·P_f^{(0)}`.
//! The attribute matrix `R` and its normalizations are also sparse.
//!
//! This crate provides:
//!
//! * [`CsrBuilder`] — streaming CSR construction: a two-pass counting-sort
//!   path over replayable triplet sources, and a chunked push API with
//!   `O(nnz_out + chunk)` peak auxiliary memory;
//! * [`CooMatrix`] — a triplet builder with duplicate summing (now a thin
//!   compatibility wrapper over [`CsrBuilder`]);
//! * [`CsrMatrix`] — compressed sparse row storage with transpose,
//!   row/column scaling, and dense products [`CsrMatrix::mul_dense`] /
//!   [`CsrMatrix::mul_dense_par`] (block-parallel over output rows);
//! * conversions to/from [`pane_linalg::DenseMatrix`] for tests and small
//!   examples.
//!
//! Indices are `u32` (the paper's graphs stay below 2³² nodes; MAG has
//! 59.3M), which halves index memory versus `usize`.
//!
//! # Memory model of ingestion
//!
//! Every construction path ends in the same CSR arrays
//! (`8·(rows+1) + 12·nnz_out` bytes); they differ in the *auxiliary*
//! triplet storage held on the way there, for `T` pushed triplets:
//!
//! | path | peak auxiliary bytes | input requirement |
//! |------|----------------------|-------------------|
//! | [`CooMatrix::to_csr`] | `16·T` triplet buffer + `12·T` scatter | none — buffers everything |
//! | [`CsrBuilder::from_source`] | `8·(rows+1)` offsets + `12·T` scatter | source replayable (called twice) |
//! | [`CsrBuilder::push`] + [`CsrBuilder::finish`] | `≈ 32·(nnz_out + chunk)` at a merge | single pass, any order |
//!
//! Use `CooMatrix` for small/test matrices, `from_source` when the
//! triplets already live in replayable form (a slice, another matrix, a
//! seeded generator), and the chunked push API when streaming a
//! walk-once source such as a multi-hundred-million-line edge file.
//! All three produce bit-identical output (same `(row, col)` sort order,
//! duplicate summation in push order, exact-zero totals dropped).

// Indexed loops in the numeric kernels are deliberate.
#![allow(clippy::needless_range_loop)]
pub mod coo;
pub mod csr;
#[cfg(test)]
mod proptests;
pub mod stream;

pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use stream::{CsrBuilder, IngestStats, MergeRule};
