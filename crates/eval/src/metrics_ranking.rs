//! Ranking metrics for the top-k query workloads: precision@k, recall@k,
//! NDCG@k and mean reciprocal rank. These complement AUC/AP for evaluating
//! [`pane_core::EmbeddingQuery`]-style retrieval.

use std::collections::HashSet;

fn ranked_indices(scores: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .expect("NaN score")
            .then(a.cmp(&b))
    });
    order
}

/// Precision@k: fraction of the top-k ranked items that are relevant.
/// Returns 0.0 for `k == 0`.
pub fn precision_at_k(scores: &[f64], relevant: &[usize], k: usize) -> f64 {
    assert_relevant_in_range(scores.len(), relevant);
    if k == 0 {
        return 0.0;
    }
    let rel: HashSet<usize> = relevant.iter().copied().collect();
    let top = ranked_indices(scores);
    let k = k.min(top.len());
    if k == 0 {
        return 0.0;
    }
    top[..k].iter().filter(|i| rel.contains(i)).count() as f64 / k as f64
}

/// Recall@k: fraction of the relevant items found in the top-k.
/// Returns 0.0 when there are no relevant items.
pub fn recall_at_k(scores: &[f64], relevant: &[usize], k: usize) -> f64 {
    assert_relevant_in_range(scores.len(), relevant);
    if relevant.is_empty() {
        return 0.0;
    }
    let rel: HashSet<usize> = relevant.iter().copied().collect();
    let top = ranked_indices(scores);
    let k = k.min(top.len());
    top[..k].iter().filter(|i| rel.contains(i)).count() as f64 / rel.len() as f64
}

/// NDCG@k with binary relevance: DCG@k / IDCG@k. Returns 0.0 when there
/// are no relevant items.
pub fn ndcg_at_k(scores: &[f64], relevant: &[usize], k: usize) -> f64 {
    assert_relevant_in_range(scores.len(), relevant);
    if relevant.is_empty() || k == 0 {
        return 0.0;
    }
    let rel: HashSet<usize> = relevant.iter().copied().collect();
    let top = ranked_indices(scores);
    let k = k.min(top.len());
    let dcg: f64 = top[..k]
        .iter()
        .enumerate()
        .filter(|(_, i)| rel.contains(i))
        .map(|(pos, _)| 1.0 / ((pos + 2) as f64).log2())
        .sum();
    let ideal_hits = rel.len().min(k);
    let idcg: f64 = (0..ideal_hits)
        .map(|pos| 1.0 / ((pos + 2) as f64).log2())
        .sum();
    if idcg == 0.0 {
        0.0
    } else {
        dcg / idcg
    }
}

/// Mean reciprocal rank of the first relevant item (0.0 if none).
pub fn reciprocal_rank(scores: &[f64], relevant: &[usize]) -> f64 {
    assert_relevant_in_range(scores.len(), relevant);
    let rel: HashSet<usize> = relevant.iter().copied().collect();
    for (pos, i) in ranked_indices(scores).into_iter().enumerate() {
        if rel.contains(&i) {
            return 1.0 / (pos + 1) as f64;
        }
    }
    0.0
}

fn assert_relevant_in_range(n: usize, relevant: &[usize]) {
    for &r in relevant {
        assert!(r < n, "relevant index {r} out of range (n = {n})");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    // scores ranking: idx 3 (0.9) > idx 0 (0.8) > idx 2 (0.4) > idx 1 (0.1)
    const SCORES: [f64; 4] = [0.8, 0.1, 0.4, 0.9];

    #[test]
    fn precision_hand_checked() {
        let relevant = [3, 2];
        assert_eq!(precision_at_k(&SCORES, &relevant, 1), 1.0); // top = {3}
        assert_eq!(precision_at_k(&SCORES, &relevant, 2), 0.5); // {3, 0}
        assert_eq!(precision_at_k(&SCORES, &relevant, 4), 0.5);
        assert_eq!(precision_at_k(&SCORES, &relevant, 0), 0.0);
    }

    #[test]
    fn recall_hand_checked() {
        let relevant = [3, 2];
        assert_eq!(recall_at_k(&SCORES, &relevant, 1), 0.5);
        assert_eq!(recall_at_k(&SCORES, &relevant, 3), 1.0);
        assert_eq!(recall_at_k(&SCORES, &[], 3), 0.0);
    }

    #[test]
    fn ndcg_perfect_and_worst() {
        // Relevant items ranked 1st and 2nd → NDCG = 1.
        assert!((ndcg_at_k(&SCORES, &[3, 0], 2) - 1.0).abs() < 1e-12);
        // Relevant item ranked last of 4 at k=4:
        // DCG = 1/log2(5), IDCG = 1/log2(2) = 1.
        let got = ndcg_at_k(&SCORES, &[1], 4);
        assert!((got - 1.0 / 5f64.log2()).abs() < 1e-12);
        // Not found within k.
        assert_eq!(ndcg_at_k(&SCORES, &[1], 2), 0.0);
    }

    #[test]
    fn mrr_hand_checked() {
        assert_eq!(reciprocal_rank(&SCORES, &[3]), 1.0);
        assert_eq!(reciprocal_rank(&SCORES, &[0]), 0.5);
        assert_eq!(reciprocal_rank(&SCORES, &[1]), 0.25);
        assert_eq!(reciprocal_rank(&SCORES, &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn relevance_bounds_checked() {
        precision_at_k(&SCORES, &[9], 2);
    }

    proptest! {
        #[test]
        fn prop_metrics_in_unit_interval(
            scores in proptest::collection::vec(-10.0f64..10.0, 1..40),
            seed in 0u64..100,
            k in 1usize..10,
        ) {
            let relevant: Vec<usize> = (0..scores.len()).filter(|i| (*i as u64 + seed).is_multiple_of(3)).collect();
            for m in [
                precision_at_k(&scores, &relevant, k),
                recall_at_k(&scores, &relevant, k),
                ndcg_at_k(&scores, &relevant, k),
                reciprocal_rank(&scores, &relevant),
            ] {
                prop_assert!((0.0..=1.0 + 1e-12).contains(&m));
            }
        }

        #[test]
        fn prop_recall_monotone_in_k(
            scores in proptest::collection::vec(-10.0f64..10.0, 2..30),
        ) {
            let relevant: Vec<usize> = (0..scores.len()).step_by(2).collect();
            let mut prev = 0.0;
            for k in 1..=scores.len() {
                let r = recall_at_k(&scores, &relevant, k);
                prop_assert!(r >= prev - 1e-12);
                prev = r;
            }
            prop_assert!((prev - 1.0).abs() < 1e-12);
        }
    }
}
