//! One-call embedding quality report: runs all three of the paper's tasks
//! on a graph with a user-supplied embedder and renders a compact summary.
//!
//! This is the "does my embedding work on my data" entry point an
//! open-source user reaches for before reading the evaluation internals.

use crate::scoring::PaneScorer;
use crate::split::{split_attribute_entries, split_edges};
use crate::tasks::link_pred::evaluate_link_scorer;
use crate::tasks::node_class::{node_classification, NodeClassOptions};
use crate::tasks::{evaluate_attr_scorer, AucAp};
use pane_core::PaneEmbedding;
use pane_graph::AttributedGraph;

/// Options for [`report_card`].
#[derive(Debug, Clone, Copy)]
pub struct ReportOptions {
    /// Fraction of edges hidden for link prediction.
    pub link_test_frac: f64,
    /// Fraction of attribute entries hidden for inference.
    pub attr_test_frac: f64,
    /// Training fraction for node classification.
    pub class_train_frac: f64,
    /// Classification repeats.
    pub repeats: usize,
    /// Split seed.
    pub seed: u64,
}

impl Default for ReportOptions {
    fn default() -> Self {
        Self {
            link_test_frac: 0.3,
            attr_test_frac: 0.2,
            class_train_frac: 0.5,
            repeats: 3,
            seed: 0,
        }
    }
}

/// The three task results (classification is `None` when the graph has no
/// labels or too few labeled nodes).
#[derive(Debug, Clone)]
pub struct ReportCard {
    /// Link prediction AUC/AP (30% removed edges by default).
    pub link: AucAp,
    /// Attribute inference AUC/AP (20% hidden entries by default).
    pub attribute: AucAp,
    /// Node classification micro/macro F1, if labels exist.
    pub classification: Option<(f64, f64)>,
    /// Wall-clock seconds spent embedding (both residual fits).
    pub embed_secs: f64,
}

impl std::fmt::Display for ReportCard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "embedding quality report")?;
        writeln!(f, "  link prediction     : {}", self.link)?;
        writeln!(f, "  attribute inference : {}", self.attribute)?;
        match self.classification {
            Some((micro, macro_)) => writeln!(
                f,
                "  node classification : micro-F1={micro:.3} macro-F1={macro_:.3}"
            )?,
            None => writeln!(f, "  node classification : (no labels)")?,
        }
        write!(f, "  embedding time      : {:.2}s", self.embed_secs)
    }
}

/// Runs the full report. `embed` is called on each task's residual graph
/// (twice) and once on the full graph for classification features.
pub fn report_card<F>(g: &AttributedGraph, opts: &ReportOptions, mut embed: F) -> ReportCard
where
    F: FnMut(&AttributedGraph) -> PaneEmbedding,
{
    let t0 = std::time::Instant::now();

    let link_split = split_edges(g, opts.link_test_frac, opts.seed);
    let link_emb = embed(&link_split.residual);
    let link = evaluate_link_scorer(&PaneScorer::new(&link_emb), &link_split, g.is_undirected());

    let attr_split = split_attribute_entries(g, opts.attr_test_frac, opts.seed);
    let attr_emb = embed(&attr_split.residual);
    let attribute = evaluate_attr_scorer(&PaneScorer::new(&attr_emb), &attr_split);

    let labeled = (0..g.num_nodes())
        .filter(|&v| !g.labels_of(v).is_empty())
        .count();
    let classification = if g.num_labels() > 0 && labeled >= 8 {
        let full_emb = embed(g);
        let scorer = PaneScorer::new(&full_emb);
        let nc_opts = NodeClassOptions {
            train_frac: opts.class_train_frac,
            repeats: opts.repeats,
            seed: opts.seed,
            ..Default::default()
        };
        let r = node_classification(&scorer, g.labels(), g.num_labels(), &nc_opts);
        Some((r.micro_f1, r.macro_f1))
    } else {
        None
    };

    ReportCard {
        link,
        attribute,
        classification,
        embed_secs: t0.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pane_core::{Pane, PaneConfig};
    use pane_graph::gen::{generate_sbm, SbmConfig};

    fn embedder() -> impl FnMut(&AttributedGraph) -> PaneEmbedding {
        |g: &AttributedGraph| {
            Pane::new(PaneConfig::builder().dimension(16).seed(1).build())
                .embed(g)
                .expect("embed")
        }
    }

    #[test]
    fn full_report_on_labeled_graph() {
        let g = generate_sbm(&SbmConfig {
            nodes: 250,
            communities: 4,
            avg_out_degree: 7.0,
            attributes: 24,
            attrs_per_node: 4.0,
            seed: 9,
            ..Default::default()
        });
        let card = report_card(&g, &ReportOptions::default(), embedder());
        assert!(card.link.auc > 0.7, "link {}", card.link.auc);
        assert!(card.attribute.auc > 0.7, "attr {}", card.attribute.auc);
        let (micro, _) = card.classification.expect("labels present");
        assert!(micro > 0.5, "micro {micro}");
        let text = format!("{card}");
        assert!(text.contains("link prediction"));
        assert!(text.contains("micro-F1"));
    }

    #[test]
    fn unlabeled_graph_skips_classification() {
        let mut b = pane_graph::GraphBuilder::new(40, 6);
        for i in 0..39 {
            b.add_edge(i, i + 1);
            b.add_edge(i + 1, i);
            b.add_attribute(i, i % 6, 1.0);
        }
        b.add_attribute(39, 3, 1.0);
        let g = b.build();
        let card = report_card(&g, &ReportOptions::default(), embedder());
        assert!(card.classification.is_none());
        assert!(format!("{card}").contains("(no labels)"));
    }
}
