//! Seeded train/test splits for the three tasks.

use pane_graph::{AttributedGraph, GraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Link-prediction split (§5.3): a residual graph with `test_frac` of the
/// edges removed, the removed edges as positives, and an equal number of
/// sampled non-edges as negatives.
pub struct EdgeSplit {
    /// The graph with test edges removed (train on this).
    pub residual: AttributedGraph,
    /// Removed (held-out) edges — the positive test pairs.
    pub test_edges: Vec<(u32, u32)>,
    /// Sampled non-edges — the negative test pairs.
    pub negative_edges: Vec<(u32, u32)>,
}

/// Removes `test_frac` of the edges uniformly at random (seeded) and samples
/// the same number of non-edges.
///
/// For undirected graphs each undirected pair is removed atomically (both
/// directions) and appears once in the test set.
pub fn split_edges(g: &AttributedGraph, test_frac: f64, seed: u64) -> EdgeSplit {
    assert!(
        (0.0..1.0).contains(&test_frac),
        "test_frac must be in [0,1)"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let n = g.num_nodes();

    // Collect candidate edges: all directed edges, or one canonical
    // direction per undirected pair.
    let undirected = g.is_undirected();
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(g.num_edges());
    for (i, j, _) in g.adjacency().iter() {
        if undirected && i > j {
            continue;
        }
        edges.push((i as u32, j as u32));
    }
    // Seeded Fisher–Yates shuffle.
    for i in (1..edges.len()).rev() {
        let j = rng.gen_range(0..=i);
        edges.swap(i, j);
    }
    let n_test = (edges.len() as f64 * test_frac).round() as usize;
    let (test, train) = edges.split_at(n_test.min(edges.len()));

    let mut b = GraphBuilder::new(n, g.num_attributes());
    if undirected {
        b = b.undirected();
    }
    for &(s, t) in train {
        b.add_edge(s as usize, t as usize);
    }
    for (v, r, w) in g.attributes().iter() {
        b.add_attribute(v, r, w);
    }
    for v in 0..n {
        for &l in g.labels_of(v) {
            b.add_label(v, l as usize);
        }
    }
    let residual = b.build();

    // Sample negatives: uniformly random ordered pairs that are non-edges
    // of the *original* graph (and not self-loops).
    let mut negative_edges = Vec::with_capacity(test.len());
    let mut guard = 0usize;
    while negative_edges.len() < test.len() && guard < test.len() * 1000 + 1000 {
        guard += 1;
        let s = rng.gen_range(0..n);
        let t = rng.gen_range(0..n);
        if s == t || g.adjacency().get(s, t) != 0.0 {
            continue;
        }
        if undirected && g.adjacency().get(t, s) != 0.0 {
            continue;
        }
        negative_edges.push((s as u32, t as u32));
    }

    EdgeSplit {
        residual,
        test_edges: test.to_vec(),
        negative_edges,
    }
}

/// Attribute-inference split (§5.2): hide `test_frac` of the non-zero
/// entries of `R`; train on the rest.
pub struct AttrSplit {
    /// The graph with test associations removed.
    pub residual: AttributedGraph,
    /// Held-out `(node, attr)` positives.
    pub test_entries: Vec<(u32, u32)>,
    /// Sampled zero entries as negatives (same count).
    pub negative_entries: Vec<(u32, u32)>,
}

/// Hides `test_frac` of the node–attribute associations.
pub fn split_attribute_entries(g: &AttributedGraph, test_frac: f64, seed: u64) -> AttrSplit {
    assert!(
        (0.0..1.0).contains(&test_frac),
        "test_frac must be in [0,1)"
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E3779B97F4A7C15);
    let n = g.num_nodes();
    let d = g.num_attributes();

    let mut entries: Vec<(u32, u32, f64)> = g
        .attributes()
        .iter()
        .map(|(v, r, w)| (v as u32, r as u32, w))
        .collect();
    for i in (1..entries.len()).rev() {
        let j = rng.gen_range(0..=i);
        entries.swap(i, j);
    }
    let n_test = (entries.len() as f64 * test_frac).round() as usize;
    let (test, train) = entries.split_at(n_test.min(entries.len()));

    let mut b = GraphBuilder::new(n, d);
    if g.is_undirected() {
        b = b.undirected();
    }
    for (i, j, _) in g.adjacency().iter() {
        if g.is_undirected() && i > j {
            continue;
        }
        b.add_edge(i, j);
    }
    for &(v, r, w) in train {
        b.add_attribute(v as usize, r as usize, w);
    }
    for v in 0..n {
        for &l in g.labels_of(v) {
            b.add_label(v, l as usize);
        }
    }
    let residual = b.build();

    let mut negative_entries = Vec::with_capacity(test.len());
    let mut guard = 0usize;
    while negative_entries.len() < test.len() && guard < test.len() * 1000 + 1000 {
        guard += 1;
        let v = rng.gen_range(0..n);
        let r = rng.gen_range(0..d);
        if g.attributes().get(v, r) == 0.0 {
            negative_entries.push((v as u32, r as u32));
        }
    }

    AttrSplit {
        residual,
        test_entries: test.iter().map(|&(v, r, _)| (v, r)).collect(),
        negative_entries,
    }
}

/// Seeded split of node indices into (train, test) by `train_frac`.
pub fn split_nodes(n: usize, train_frac: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    assert!(
        (0.0..=1.0).contains(&train_frac),
        "train_frac must be in [0,1]"
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0xABCDEF);
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    let cut = (n as f64 * train_frac).round() as usize;
    let (train, test) = idx.split_at(cut.min(n));
    (train.to_vec(), test.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pane_graph::gen::{generate_sbm, SbmConfig};

    fn graph(seed: u64, undirected: bool) -> AttributedGraph {
        generate_sbm(&SbmConfig {
            nodes: 150,
            communities: 3,
            avg_out_degree: 6.0,
            attributes: 20,
            attrs_per_node: 4.0,
            undirected,
            seed,
            ..Default::default()
        })
    }

    #[test]
    fn edge_split_counts() {
        let g = graph(1, false);
        let s = split_edges(&g, 0.3, 7);
        let expect_removed = (g.num_edges() as f64 * 0.3).round() as usize;
        assert_eq!(s.test_edges.len(), expect_removed);
        assert_eq!(s.negative_edges.len(), expect_removed);
        assert_eq!(s.residual.num_edges(), g.num_edges() - expect_removed);
        // Attributes and labels preserved.
        assert_eq!(
            s.residual.num_attribute_entries(),
            g.num_attribute_entries()
        );
        assert_eq!(s.residual.num_labels(), g.num_labels());
    }

    #[test]
    fn edge_split_test_edges_absent_from_residual() {
        let g = graph(2, false);
        let s = split_edges(&g, 0.25, 9);
        for &(a, b) in &s.test_edges {
            assert_eq!(s.residual.adjacency().get(a as usize, b as usize), 0.0);
            assert_ne!(g.adjacency().get(a as usize, b as usize), 0.0);
        }
        for &(a, b) in &s.negative_edges {
            assert_eq!(g.adjacency().get(a as usize, b as usize), 0.0);
            assert_ne!(a, b);
        }
    }

    #[test]
    fn edge_split_undirected_removes_pairs() {
        let g = graph(3, true);
        let s = split_edges(&g, 0.3, 11);
        for &(a, b) in &s.test_edges {
            assert_eq!(s.residual.adjacency().get(a as usize, b as usize), 0.0);
            assert_eq!(
                s.residual.adjacency().get(b as usize, a as usize),
                0.0,
                "reverse of removed pair survived"
            );
        }
        // Residual stays symmetric.
        for (i, j, _) in s.residual.adjacency().iter() {
            assert!(s.residual.adjacency().get(j, i) > 0.0);
        }
    }

    #[test]
    fn edge_split_deterministic() {
        let g = graph(4, false);
        let s1 = split_edges(&g, 0.3, 5);
        let s2 = split_edges(&g, 0.3, 5);
        assert_eq!(s1.test_edges, s2.test_edges);
        assert_eq!(s1.negative_edges, s2.negative_edges);
        let s3 = split_edges(&g, 0.3, 6);
        assert_ne!(s1.test_edges, s3.test_edges);
    }

    #[test]
    fn attr_split_counts_and_disjointness() {
        let g = graph(5, false);
        let s = split_attribute_entries(&g, 0.2, 1);
        let expect = (g.num_attribute_entries() as f64 * 0.2).round() as usize;
        assert_eq!(s.test_entries.len(), expect);
        assert_eq!(s.negative_entries.len(), expect);
        assert_eq!(
            s.residual.num_attribute_entries(),
            g.num_attribute_entries() - expect
        );
        for &(v, r) in &s.test_entries {
            assert_eq!(s.residual.attributes().get(v as usize, r as usize), 0.0);
        }
        for &(v, r) in &s.negative_entries {
            assert_eq!(g.attributes().get(v as usize, r as usize), 0.0);
        }
        // Topology untouched.
        assert_eq!(s.residual.num_edges(), g.num_edges());
    }

    #[test]
    fn node_split_partitions() {
        let (train, test) = split_nodes(100, 0.3, 2);
        assert_eq!(train.len(), 30);
        assert_eq!(test.len(), 70);
        let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }
}
