//! Link prediction (§5.3, Table 5).
//!
//! Protocol: remove 30% of the edges, train on the residual graph, rank the
//! removed edges against an equal number of sampled non-edges. PANE/NRP
//! score pairs direction-aware (with `p(i,j) + p(j,i)` on undirected
//! graphs); single-embedding competitors are evaluated with all four of the
//! paper's scorers and the best result is reported.

use crate::metrics::{average_precision, roc_auc};
use crate::scoring::{LinkScorer, PairScore, SingleEmbeddingScorer};
use crate::split::EdgeSplit;
use crate::tasks::AucAp;
use pane_linalg::DenseMatrix;

/// Evaluates a link scorer on a prepared split. When `symmetric` is set the
/// score of `(i,j)` is `s(i,j) + s(j,i)` (the paper's protocol for
/// undirected graphs).
pub fn evaluate_link_scorer<S: LinkScorer>(
    scorer: &S,
    split: &EdgeSplit,
    symmetric: bool,
) -> AucAp {
    let total = split.test_edges.len() + split.negative_edges.len();
    let mut scores = Vec::with_capacity(total);
    let mut labels = Vec::with_capacity(total);
    let eval = |s: &S, a: u32, b: u32| {
        let one = s.link_score(a as usize, b as usize);
        if symmetric {
            one + s.link_score(b as usize, a as usize)
        } else {
            one
        }
    };
    for &(a, b) in &split.test_edges {
        scores.push(eval(scorer, a, b));
        labels.push(true);
    }
    for &(a, b) in &split.negative_edges {
        scores.push(eval(scorer, a, b));
        labels.push(false);
    }
    AucAp {
        auc: roc_auc(&scores, &labels),
        ap: average_precision(&scores, &labels),
    }
}

/// The paper's competitor protocol: try all four scorers on a
/// single-embedding model and report the best (by AUC), together with the
/// winning scorer's name.
pub fn best_of_four(
    x: &DenseMatrix,
    split: &EdgeSplit,
    symmetric: bool,
    seed: u64,
) -> (AucAp, &'static str) {
    let mut best = AucAp {
        auc: f64::NEG_INFINITY,
        ap: 0.0,
    };
    let mut best_name = "none";
    for method in PairScore::ALL {
        let train_graph = (method == PairScore::EdgeFeature).then_some(&split.residual);
        let scorer = SingleEmbeddingScorer::new(x, method, train_graph, seed);
        let result = evaluate_link_scorer(&scorer, split, symmetric);
        if result.auc > best.auc {
            best = result;
            best_name = method.name();
        }
    }
    (best, best_name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::split_edges;
    use pane_graph::gen::{generate_sbm, SbmConfig};

    struct Oracle<'a> {
        g: &'a pane_graph::AttributedGraph,
    }

    impl LinkScorer for Oracle<'_> {
        fn link_score(&self, src: usize, dst: usize) -> f64 {
            if self.g.adjacency().get(src, dst) != 0.0 {
                1.0
            } else {
                0.0
            }
        }
    }

    #[test]
    fn oracle_is_perfect() {
        let g = generate_sbm(&SbmConfig {
            nodes: 150,
            avg_out_degree: 5.0,
            seed: 4,
            ..Default::default()
        });
        let split = split_edges(&g, 0.3, 5);
        let r = evaluate_link_scorer(&Oracle { g: &g }, &split, false);
        assert_eq!(r.auc, 1.0);
    }

    #[test]
    fn best_of_four_runs_all_methods() {
        let g = generate_sbm(&SbmConfig {
            nodes: 120,
            communities: 3,
            avg_out_degree: 5.0,
            attributes: 12,
            seed: 6,
            ..Default::default()
        });
        let split = split_edges(&g, 0.3, 7);
        // Features: one-hot community embedding — inner product should then
        // beat a coin since communities are assortative.
        let mut x = DenseMatrix::zeros(g.num_nodes(), 3);
        for v in 0..g.num_nodes() {
            x.set(v, g.labels_of(v)[0] as usize, 1.0);
        }
        let (best, name) = best_of_four(&x, &split, false, 0);
        assert!(
            best.auc > 0.6,
            "community features should beat chance, got {}",
            best.auc
        );
        assert_ne!(name, "none");
    }

    #[test]
    fn symmetric_evaluation_changes_directed_scores() {
        // Scorer that only knows forward direction.
        struct Fwd;
        impl LinkScorer for Fwd {
            fn link_score(&self, src: usize, dst: usize) -> f64 {
                (src as f64) - (dst as f64)
            }
        }
        let g = generate_sbm(&SbmConfig {
            nodes: 60,
            avg_out_degree: 4.0,
            seed: 8,
            ..Default::default()
        });
        let split = split_edges(&g, 0.3, 9);
        let asym = evaluate_link_scorer(&Fwd, &split, false);
        let sym = evaluate_link_scorer(&Fwd, &split, true);
        // Symmetrizing this scorer collapses all scores to 0 → AUC 0.5.
        assert!((sym.auc - 0.5).abs() < 1e-9);
        assert_ne!(asym.auc, sym.auc);
    }
}
