//! Node classification (§5.4, Figure 2).
//!
//! Protocol: sample a fraction of the nodes to train one-vs-rest linear
//! classifiers on the embedding features, predict the remaining nodes'
//! labels (top-k with k = the node's true label count, the standard
//! multi-label protocol), report micro-/macro-F1 averaged over repeats.

use crate::classify::{LearnerKind, OneVsRest};
use crate::metrics::{macro_f1, micro_f1};
use crate::scoring::NodeFeatureSource;
use crate::split::split_nodes;
use pane_linalg::DenseMatrix;

/// Options for a classification run.
#[derive(Debug, Clone, Copy)]
pub struct NodeClassOptions {
    /// Fraction of labeled nodes used for training.
    pub train_frac: f64,
    /// Number of repeats (the paper uses 5); results are averaged.
    pub repeats: usize,
    /// Which linear learner to train.
    pub learner: LearnerKind,
    /// Base seed; repeat `i` uses `seed + i`.
    pub seed: u64,
    /// Per-label training budget (logistic epochs).
    pub epochs: usize,
}

impl Default for NodeClassOptions {
    fn default() -> Self {
        Self {
            train_frac: 0.5,
            repeats: 5,
            learner: LearnerKind::Logistic,
            seed: 0,
            epochs: 200,
        }
    }
}

/// Averaged micro-/macro-F1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeClassResult {
    /// Micro-averaged F1.
    pub micro_f1: f64,
    /// Macro-averaged F1.
    pub macro_f1: f64,
}

impl std::fmt::Display for NodeClassResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "micro-F1={:.3} macro-F1={:.3}",
            self.micro_f1, self.macro_f1
        )
    }
}

/// Runs node classification on features from `source` for the labeled nodes
/// of `labels` (nodes with empty label sets are skipped entirely).
pub fn node_classification<S: NodeFeatureSource>(
    source: &S,
    labels: &[Vec<u32>],
    num_labels: usize,
    opts: &NodeClassOptions,
) -> NodeClassResult {
    assert!(num_labels > 0, "need at least one label");
    let labeled: Vec<usize> = (0..labels.len())
        .filter(|&v| !labels[v].is_empty())
        .collect();
    assert!(
        labeled.len() >= 4,
        "need at least 4 labeled nodes, have {}",
        labeled.len()
    );

    // Materialize features once.
    let dim = source.feature_dim();
    let mut feats = DenseMatrix::zeros(labeled.len(), dim);
    for (row, &v) in labeled.iter().enumerate() {
        let f = source.node_features(v);
        assert_eq!(f.len(), dim, "inconsistent feature dimension");
        feats.row_mut(row).copy_from_slice(&f);
    }
    let local_labels: Vec<Vec<u32>> = labeled.iter().map(|&v| labels[v].clone()).collect();

    let mut micro_sum = 0.0;
    let mut macro_sum = 0.0;
    for rep in 0..opts.repeats {
        let (train_idx, test_idx) =
            split_nodes(labeled.len(), opts.train_frac, opts.seed + rep as u64);
        let (train_idx, test_idx) = if train_idx.is_empty() || test_idx.is_empty() {
            // Degenerate fraction: fall back to leave-one-out-ish split.
            (vec![0], (1..labeled.len()).collect())
        } else {
            (train_idx, test_idx)
        };
        let mut x_train = DenseMatrix::zeros(train_idx.len(), dim);
        let mut y_train: Vec<Vec<u32>> = Vec::with_capacity(train_idx.len());
        for (row, &i) in train_idx.iter().enumerate() {
            x_train.row_mut(row).copy_from_slice(feats.row(i));
            y_train.push(local_labels[i].clone());
        }
        let ovr = OneVsRest::fit_with_budget(
            opts.learner,
            &x_train,
            &y_train,
            num_labels,
            opts.seed + rep as u64,
            opts.epochs,
        );
        let mut truth = Vec::with_capacity(test_idx.len());
        let mut pred = Vec::with_capacity(test_idx.len());
        for &i in &test_idx {
            let k = local_labels[i].len();
            pred.push(ovr.predict_top_k(feats.row(i), k));
            truth.push(local_labels[i].clone());
        }
        micro_sum += micro_f1(&truth, &pred);
        macro_sum += macro_f1(&truth, &pred);
    }
    NodeClassResult {
        micro_f1: micro_sum / opts.repeats as f64,
        macro_f1: macro_sum / opts.repeats as f64,
    }
}

/// Figure-2 sweep: micro-F1 at each training fraction.
pub fn classification_sweep<S: NodeFeatureSource>(
    source: &S,
    labels: &[Vec<u32>],
    num_labels: usize,
    fractions: &[f64],
    base: &NodeClassOptions,
) -> Vec<(f64, NodeClassResult)> {
    fractions
        .iter()
        .map(|&frac| {
            let opts = NodeClassOptions {
                train_frac: frac,
                ..*base
            };
            (frac, node_classification(source, labels, num_labels, &opts))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::MatrixFeatureSource;

    /// Features that encode the label perfectly vs pure noise.
    fn perfect_features(labels: &[Vec<u32>], num_labels: usize) -> DenseMatrix {
        let mut x = DenseMatrix::zeros(labels.len(), num_labels);
        for (v, ls) in labels.iter().enumerate() {
            for &l in ls {
                x.set(v, l as usize, 1.0);
            }
        }
        x
    }

    fn labels_fixture(n: usize, c: usize) -> Vec<Vec<u32>> {
        (0..n).map(|v| vec![(v % c) as u32]).collect()
    }

    #[test]
    fn perfect_features_reach_high_f1() {
        let labels = labels_fixture(120, 4);
        let x = perfect_features(&labels, 4);
        let src = MatrixFeatureSource { x: &x };
        let r = node_classification(&src, &labels, 4, &NodeClassOptions::default());
        assert!(r.micro_f1 > 0.95, "micro {}", r.micro_f1);
        assert!(r.macro_f1 > 0.95, "macro {}", r.macro_f1);
    }

    #[test]
    fn noise_features_fail() {
        let labels = labels_fixture(120, 4);
        let mut x = DenseMatrix::zeros(120, 4);
        let mut state = 7u64;
        for v in x.data_mut().iter_mut() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            *v = ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
        }
        let src = MatrixFeatureSource { x: &x };
        let r = node_classification(&src, &labels, 4, &NodeClassOptions::default());
        assert!(
            r.micro_f1 < 0.55,
            "noise should score near chance, got {}",
            r.micro_f1
        );
    }

    #[test]
    fn unlabeled_nodes_are_skipped() {
        let mut labels = labels_fixture(60, 3);
        labels[10].clear();
        labels[20].clear();
        let x = perfect_features(&labels, 3);
        let src = MatrixFeatureSource { x: &x };
        let r = node_classification(&src, &labels, 3, &NodeClassOptions::default());
        assert!(r.micro_f1 > 0.9);
    }

    #[test]
    fn sweep_is_monotonic_ish_for_perfect_features() {
        let labels = labels_fixture(150, 3);
        let x = perfect_features(&labels, 3);
        let src = MatrixFeatureSource { x: &x };
        let sweep = classification_sweep(
            &src,
            &labels,
            3,
            &[0.1, 0.5, 0.9],
            &NodeClassOptions::default(),
        );
        assert_eq!(sweep.len(), 3);
        for (_, r) in &sweep {
            assert!(r.micro_f1 > 0.9);
        }
    }

    #[test]
    fn svm_learner_also_works() {
        let labels = labels_fixture(100, 2);
        let x = perfect_features(&labels, 2);
        let src = MatrixFeatureSource { x: &x };
        let opts = NodeClassOptions {
            learner: LearnerKind::Svm,
            repeats: 2,
            ..Default::default()
        };
        let r = node_classification(&src, &labels, 2, &opts);
        assert!(r.micro_f1 > 0.9, "svm micro {}", r.micro_f1);
    }
}
