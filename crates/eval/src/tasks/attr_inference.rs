//! Attribute inference (§5.2, Table 4).
//!
//! Protocol: hide 20% of the non-zero attribute entries, train embeddings on
//! the residual graph, then rank the hidden positives against an equal
//! number of sampled zero entries using the model's node–attribute score
//! (Eq. 21 for PANE). Report AUC and AP.

use crate::metrics::{average_precision, roc_auc};
use crate::scoring::AttrScorer;
use crate::split::AttrSplit;
use crate::tasks::AucAp;

/// Evaluates an attribute scorer on a prepared split.
pub fn evaluate_attr_scorer<S: AttrScorer>(scorer: &S, split: &AttrSplit) -> AucAp {
    let total = split.test_entries.len() + split.negative_entries.len();
    let mut scores = Vec::with_capacity(total);
    let mut labels = Vec::with_capacity(total);
    for &(v, r) in &split.test_entries {
        scores.push(scorer.attr_score(v as usize, r as usize));
        labels.push(true);
    }
    for &(v, r) in &split.negative_entries {
        scores.push(scorer.attr_score(v as usize, r as usize));
        labels.push(false);
    }
    AucAp {
        auc: roc_auc(&scores, &labels),
        ap: average_precision(&scores, &labels),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::split_attribute_entries;
    use pane_graph::gen::{generate_sbm, SbmConfig};

    struct Oracle<'a> {
        g: &'a pane_graph::AttributedGraph,
    }

    impl AttrScorer for Oracle<'_> {
        fn attr_score(&self, v: usize, r: usize) -> f64 {
            // Knows the full matrix: perfect separation.
            if self.g.attributes().get(v, r) != 0.0 {
                1.0
            } else {
                0.0
            }
        }
    }

    struct Coin;

    impl AttrScorer for Coin {
        fn attr_score(&self, v: usize, r: usize) -> f64 {
            // Deterministic pseudo-random junk.
            (((v * 2654435761) ^ (r * 40503)) % 1000) as f64
        }
    }

    #[test]
    fn oracle_scores_one_random_scores_half() {
        let g = generate_sbm(&SbmConfig {
            nodes: 120,
            attributes: 15,
            attrs_per_node: 3.0,
            seed: 2,
            ..Default::default()
        });
        let split = split_attribute_entries(&g, 0.2, 3);
        let oracle = evaluate_attr_scorer(&Oracle { g: &g }, &split);
        assert_eq!(oracle.auc, 1.0);
        assert!(oracle.ap > 0.999);
        let coin = evaluate_attr_scorer(&Coin, &split);
        assert!((coin.auc - 0.5).abs() < 0.1, "random AUC {}", coin.auc);
    }
}
