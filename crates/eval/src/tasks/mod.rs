//! End-to-end task runners used by the experiment binaries.

pub mod attr_inference;
pub mod link_pred;
pub mod node_class;

pub use attr_inference::evaluate_attr_scorer;
pub use link_pred::{best_of_four, evaluate_link_scorer};
pub use node_class::{
    classification_sweep, node_classification, NodeClassOptions, NodeClassResult,
};

/// A (AUC, AP) result pair — the columns of Tables 4 and 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AucAp {
    /// Area under the ROC curve.
    pub auc: f64,
    /// Average precision.
    pub ap: f64,
}

impl std::fmt::Display for AucAp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AUC={:.3} AP={:.3}", self.auc, self.ap)
    }
}
