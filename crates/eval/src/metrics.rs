//! Ranking and classification metrics.

/// Area under the ROC curve via the Mann–Whitney U statistic, with average
/// ranks for tied scores. Returns 0.5 when either class is empty.
pub fn roc_auc(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "roc_auc: length mismatch");
    let npos = labels.iter().filter(|&&l| l).count();
    let nneg = labels.len() - npos;
    if npos == 0 || nneg == 0 {
        return 0.5;
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("NaN score"));
    // Assign average ranks to ties (1-based ranks).
    let mut rank_sum_pos = 0.0;
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let avg_rank = (i + 1 + j + 1) as f64 / 2.0;
        for &idx in &order[i..=j] {
            if labels[idx] {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    let u = rank_sum_pos - (npos * (npos + 1)) as f64 / 2.0;
    u / (npos as f64 * nneg as f64)
}

/// Average precision: mean of precision@k over the ranks k of the positive
/// examples (descending score order; ties broken by index for determinism).
pub fn average_precision(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(
        scores.len(),
        labels.len(),
        "average_precision: length mismatch"
    );
    let npos = labels.iter().filter(|&&l| l).count();
    if npos == 0 {
        return 0.0;
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .expect("NaN score")
            .then(a.cmp(&b))
    });
    let mut hits = 0usize;
    let mut ap = 0.0;
    for (k, &idx) in order.iter().enumerate() {
        if labels[idx] {
            hits += 1;
            ap += hits as f64 / (k + 1) as f64;
        }
    }
    ap / npos as f64
}

/// Micro-averaged F1 over multi-label predictions: global TP/FP/FN counts.
pub fn micro_f1(truth: &[Vec<u32>], predicted: &[Vec<u32>]) -> f64 {
    assert_eq!(truth.len(), predicted.len(), "micro_f1: length mismatch");
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut fne = 0usize;
    for (t, p) in truth.iter().zip(predicted) {
        for l in p {
            if t.contains(l) {
                tp += 1;
            } else {
                fp += 1;
            }
        }
        for l in t {
            if !p.contains(l) {
                fne += 1;
            }
        }
    }
    f1_from_counts(tp, fp, fne)
}

/// Macro-averaged F1: per-label F1, averaged over labels that appear in the
/// ground truth or the predictions.
pub fn macro_f1(truth: &[Vec<u32>], predicted: &[Vec<u32>]) -> f64 {
    assert_eq!(truth.len(), predicted.len(), "macro_f1: length mismatch");
    let mut labels: Vec<u32> = truth.iter().chain(predicted).flatten().copied().collect();
    labels.sort_unstable();
    labels.dedup();
    if labels.is_empty() {
        return 0.0;
    }
    let mut sum = 0.0;
    for l in &labels {
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut fne = 0usize;
        for (t, p) in truth.iter().zip(predicted) {
            let in_t = t.contains(l);
            let in_p = p.contains(l);
            match (in_t, in_p) {
                (true, true) => tp += 1,
                (false, true) => fp += 1,
                (true, false) => fne += 1,
                (false, false) => {}
            }
        }
        sum += f1_from_counts(tp, fp, fne);
    }
    sum / labels.len() as f64
}

fn f1_from_counts(tp: usize, fp: usize, fne: usize) -> f64 {
    if tp == 0 {
        return 0.0;
    }
    let p = tp as f64 / (tp + fp) as f64;
    let r = tp as f64 / (tp + fne) as f64;
    2.0 * p * r / (p + r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn auc_perfect_and_inverted() {
        let scores = [0.9, 0.8, 0.3, 0.1];
        let labels = [true, true, false, false];
        assert_eq!(roc_auc(&scores, &labels), 1.0);
        let inv = [false, false, true, true];
        assert_eq!(roc_auc(&scores, &inv), 0.0);
    }

    #[test]
    fn auc_with_ties_is_half_credit() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let labels = [true, false, true, false];
        assert!((roc_auc(&scores, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_degenerate_classes() {
        assert_eq!(roc_auc(&[1.0, 2.0], &[true, true]), 0.5);
        assert_eq!(roc_auc(&[], &[]), 0.5);
    }

    #[test]
    fn auc_hand_computed() {
        // scores: pos {3, 1}, neg {2, 0}; pairs won: (3>2),(3>0),(1>0) = 3/4.
        let scores = [3.0, 1.0, 2.0, 0.0];
        let labels = [true, true, false, false];
        assert!((roc_auc(&scores, &labels) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn ap_perfect_ranking() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        assert!((average_precision(&scores, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ap_hand_computed() {
        // Ranking: pos, neg, pos, neg → AP = (1/1 + 2/3) / 2 = 5/6.
        let scores = [0.9, 0.8, 0.7, 0.6];
        let labels = [true, false, true, false];
        assert!((average_precision(&scores, &labels) - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn ap_no_positives() {
        assert_eq!(average_precision(&[1.0], &[false]), 0.0);
    }

    #[test]
    fn micro_f1_hand_computed() {
        let truth = vec![vec![0, 1], vec![2]];
        let pred = vec![vec![0], vec![2, 1]];
        // tp=2 (0 and 2), fp=1 (label 1 on node 2), fn=1 (label 1 on node 1)
        // P = 2/3, R = 2/3 → F1 = 2/3.
        assert!((micro_f1(&truth, &pred) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn macro_f1_hand_computed() {
        let truth = vec![vec![0], vec![1]];
        let pred = vec![vec![0], vec![0]];
        // label 0: tp=1, fp=1, fn=0 → F1 = 2/3; label 1: tp=0 → 0.
        assert!((macro_f1(&truth, &pred) - (2.0 / 3.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_multilabel_scores_one() {
        let truth = vec![vec![0, 2], vec![1]];
        assert_eq!(micro_f1(&truth, &truth), 1.0);
        assert_eq!(macro_f1(&truth, &truth), 1.0);
    }

    proptest! {
        #[test]
        fn prop_auc_in_unit_interval(
            scores in proptest::collection::vec(-1e3f64..1e3, 2..64),
            seed in 0u64..100,
        ) {
            let labels: Vec<bool> = scores.iter().enumerate().map(|(i, _)| (i as u64 + seed).is_multiple_of(3)).collect();
            let auc = roc_auc(&scores, &labels);
            prop_assert!((0.0..=1.0).contains(&auc));
        }

        #[test]
        fn prop_auc_invariant_to_monotone_transform(
            scores in proptest::collection::vec(0.01f64..10.0, 4..32),
        ) {
            let labels: Vec<bool> = scores.iter().enumerate().map(|(i, _)| i % 2 == 0).collect();
            let a1 = roc_auc(&scores, &labels);
            let transformed: Vec<f64> = scores.iter().map(|s| s.ln() * 3.0 + 7.0).collect();
            let a2 = roc_auc(&transformed, &labels);
            prop_assert!((a1 - a2).abs() < 1e-9);
        }

        #[test]
        fn prop_ap_at_least_prevalence(
            scores in proptest::collection::vec(-10.0f64..10.0, 4..40),
        ) {
            // AP of any ranking >= AP of the worst ranking ~ prevalence bound
            // sanity: AP is within [0, 1].
            let labels: Vec<bool> = scores.iter().enumerate().map(|(i, _)| i % 3 == 0).collect();
            let ap = average_precision(&scores, &labels);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&ap));
        }

        #[test]
        fn prop_f1_bounded(seed in 0u64..1000) {
            let truth: Vec<Vec<u32>> = (0..10).map(|i| vec![((seed + i) % 4) as u32]).collect();
            let pred: Vec<Vec<u32>> = (0..10).map(|i| vec![((seed * 3 + i * 7) % 4) as u32]).collect();
            for f in [micro_f1(&truth, &pred), macro_f1(&truth, &pred)] {
                prop_assert!((0.0..=1.0).contains(&f));
            }
        }
    }
}
