//! Pair-scoring strategies connecting embeddings to tasks.
//!
//! PANE scores node–attribute pairs with Eq. (21) and node–node pairs with
//! Eq. (22) (direction-aware, via the forward/backward split). The paper's
//! single-embedding competitors are evaluated with "four ways to calculate
//! the link prediction score …: inner product …, cosine similarity …,
//! Hamming distance …, as well as edge feature" (§5.3), reporting the best —
//! [`PairScore`] implements all four and
//! [`crate::tasks::link_pred::best_of_four`] replicates the protocol.

use crate::classify::{BinaryClassifier, LogisticRegression};
use pane_core::PaneEmbedding;
use pane_graph::AttributedGraph;
use pane_linalg::{vecops, DenseMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Scores directed node pairs; larger = more likely an edge.
pub trait LinkScorer {
    /// Score of the directed pair `(src, dst)`.
    fn link_score(&self, src: usize, dst: usize) -> f64;
}

/// Scores node–attribute pairs; larger = more likely associated.
pub trait AttrScorer {
    /// Score of node `v` carrying attribute `r`.
    fn attr_score(&self, v: usize, r: usize) -> f64;
}

/// Produces per-node classifier features.
pub trait NodeFeatureSource {
    /// Feature vector of node `v`.
    fn node_features(&self, v: usize) -> Vec<f64>;
    /// Dimension of the feature vectors.
    fn feature_dim(&self) -> usize;
}

/// PANE's scorer: wraps an embedding and precomputes `G = YᵀY` so Eq. (22)
/// costs `O(k²)` per pair.
pub struct PaneScorer<'a> {
    emb: &'a PaneEmbedding,
    gram: DenseMatrix,
}

impl<'a> PaneScorer<'a> {
    /// Builds the scorer (one `O(dk²)` Gram computation).
    pub fn new(emb: &'a PaneEmbedding) -> Self {
        Self {
            gram: emb.link_gram(),
            emb,
        }
    }
}

impl LinkScorer for PaneScorer<'_> {
    fn link_score(&self, src: usize, dst: usize) -> f64 {
        self.emb.link_score_with(&self.gram, src, dst)
    }
}

impl AttrScorer for PaneScorer<'_> {
    fn attr_score(&self, v: usize, r: usize) -> f64 {
        self.emb.attribute_score(v, r)
    }
}

impl NodeFeatureSource for PaneScorer<'_> {
    fn node_features(&self, v: usize) -> Vec<f64> {
        self.emb.classifier_features(v)
    }

    fn feature_dim(&self) -> usize {
        self.emb.forward.cols() + self.emb.backward.cols()
    }
}

/// The four link scorers used for single-embedding competitors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairScore {
    /// `x_i · x_j`.
    InnerProduct,
    /// `cos(x_i, x_j)`.
    Cosine,
    /// Negative Hamming distance of the sign-binarized embeddings
    /// (the method BANE uses on its binary codes).
    Hamming,
    /// Logistic regression on the Hadamard product `x_i ⊙ x_j`, trained on
    /// residual-graph edges vs sampled non-edges (node2vec-style).
    EdgeFeature,
}

impl PairScore {
    /// All four variants, for best-of sweeps.
    pub const ALL: [PairScore; 4] = [
        PairScore::InnerProduct,
        PairScore::Cosine,
        PairScore::Hamming,
        PairScore::EdgeFeature,
    ];

    /// Short name for result tables.
    pub fn name(&self) -> &'static str {
        match self {
            PairScore::InnerProduct => "inner",
            PairScore::Cosine => "cosine",
            PairScore::Hamming => "hamming",
            PairScore::EdgeFeature => "edgefeat",
        }
    }
}

/// A single-embedding model (one vector per node) with a fixed scorer.
pub struct SingleEmbeddingScorer<'a> {
    x: &'a DenseMatrix,
    method: PairScore,
    /// Trained edge-feature model (only for [`PairScore::EdgeFeature`]).
    edge_model: Option<LogisticRegression>,
}

impl<'a> SingleEmbeddingScorer<'a> {
    /// Builds a scorer. For [`PairScore::EdgeFeature`], `train_graph` (the
    /// residual graph) must be given: a logistic regression is fitted on the
    /// Hadamard features of its edges vs. sampled non-edges.
    pub fn new(
        x: &'a DenseMatrix,
        method: PairScore,
        train_graph: Option<&AttributedGraph>,
        seed: u64,
    ) -> Self {
        let edge_model = if method == PairScore::EdgeFeature {
            let g = train_graph.expect("EdgeFeature scorer needs the residual graph for training");
            Some(train_edge_model(x, g, seed))
        } else {
            None
        };
        Self {
            x,
            method,
            edge_model,
        }
    }
}

fn hadamard(a: &[f64], b: &[f64]) -> Vec<f64> {
    a.iter().zip(b).map(|(x, y)| x * y).collect()
}

fn train_edge_model(x: &DenseMatrix, g: &AttributedGraph, seed: u64) -> LogisticRegression {
    let n = g.num_nodes();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0EDCE);
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut y: Vec<f64> = Vec::new();
    // Cap the training set so the scorer stays cheap on larger graphs.
    let cap = 20_000usize;
    let stride = (g.num_edges() / cap).max(1);
    for (idx, (i, j, _)) in g.adjacency().iter().enumerate() {
        if idx % stride != 0 {
            continue;
        }
        rows.push(hadamard(x.row(i), x.row(j)));
        y.push(1.0);
    }
    let pos = rows.len();
    let mut guard = 0;
    while y.len() < pos * 2 && guard < pos * 100 + 100 {
        guard += 1;
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        if i != j && g.adjacency().get(i, j) == 0.0 {
            rows.push(hadamard(x.row(i), x.row(j)));
            y.push(-1.0);
        }
    }
    let mut lr = LogisticRegression::new();
    lr.epochs = 60;
    lr.fit(&DenseMatrix::from_rows(&rows), &y);
    lr
}

impl LinkScorer for SingleEmbeddingScorer<'_> {
    fn link_score(&self, src: usize, dst: usize) -> f64 {
        let a = self.x.row(src);
        let b = self.x.row(dst);
        match self.method {
            PairScore::InnerProduct => vecops::dot(a, b),
            PairScore::Cosine => vecops::cosine(a, b),
            PairScore::Hamming => a
                .iter()
                .zip(b)
                .filter(|(x, y)| (x.is_sign_positive()) == (y.is_sign_positive()))
                .count() as f64,
            PairScore::EdgeFeature => {
                let feats = hadamard(a, b);
                self.edge_model
                    .as_ref()
                    .expect("edge model trained at construction")
                    .decision(&feats)
            }
        }
    }
}

/// Inner-product attribute scorer for models that co-embed attributes with
/// a single node vector (CAN-style): `score(v, r) = x_v · y_r`.
pub struct CoEmbeddingAttrScorer<'a> {
    /// Node embeddings (`n × k`).
    pub x: &'a DenseMatrix,
    /// Attribute embeddings (`d × k`).
    pub y: &'a DenseMatrix,
}

impl AttrScorer for CoEmbeddingAttrScorer<'_> {
    fn attr_score(&self, v: usize, r: usize) -> f64 {
        vecops::dot(self.x.row(v), self.y.row(r))
    }
}

/// Feature source over a plain embedding matrix (row = node), with per-row
/// L2 normalization.
pub struct MatrixFeatureSource<'a> {
    /// The embedding matrix.
    pub x: &'a DenseMatrix,
}

impl NodeFeatureSource for MatrixFeatureSource<'_> {
    fn node_features(&self, v: usize) -> Vec<f64> {
        let mut f = self.x.row(v).to_vec();
        vecops::normalize(&mut f, 1e-300);
        f
    }

    fn feature_dim(&self) -> usize {
        self.x.cols()
    }
}

/// Symmetrized wrapper: `score(i,j) + score(j,i)` — what PANE and NRP use on
/// undirected graphs (§5.3).
pub struct Symmetrized<S>(pub S);

impl<S: LinkScorer> LinkScorer for Symmetrized<S> {
    fn link_score(&self, src: usize, dst: usize) -> f64 {
        self.0.link_score(src, dst) + self.0.link_score(dst, src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pane_graph::GraphBuilder;

    fn emb() -> DenseMatrix {
        DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![0.9, 0.1], vec![-1.0, 0.2]])
    }

    #[test]
    fn inner_and_cosine() {
        let x = emb();
        let s = SingleEmbeddingScorer::new(&x, PairScore::InnerProduct, None, 0);
        assert!(s.link_score(0, 1) > s.link_score(0, 2));
        let c = SingleEmbeddingScorer::new(&x, PairScore::Cosine, None, 0);
        assert!(c.link_score(0, 1) > 0.9);
        assert!(c.link_score(0, 2) < 0.0);
    }

    #[test]
    fn hamming_counts_matching_signs() {
        let x = emb();
        let s = SingleEmbeddingScorer::new(&x, PairScore::Hamming, None, 0);
        assert_eq!(s.link_score(0, 1), 2.0); // both coords same sign
        assert_eq!(s.link_score(0, 2), 1.0); // only second coord matches
    }

    #[test]
    fn edge_feature_scorer_learns() {
        // Tight cluster {0,1} linked, node 2 disconnected & opposite.
        let mut b = GraphBuilder::new(3, 1);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        let g = b.build();
        let x = emb();
        let s = SingleEmbeddingScorer::new(&x, PairScore::EdgeFeature, Some(&g), 1);
        assert!(s.link_score(0, 1) > s.link_score(0, 2));
    }

    #[test]
    fn symmetrized_is_symmetric() {
        let x = emb();
        // Inner product is already symmetric; wrapping doubles it.
        let base = SingleEmbeddingScorer::new(&x, PairScore::InnerProduct, None, 0);
        let b01 = base.link_score(0, 1);
        let s = Symmetrized(base);
        assert!((s.link_score(0, 1) - 2.0 * b01).abs() < 1e-12);
        assert_eq!(s.link_score(0, 1), s.link_score(1, 0));
    }

    #[test]
    fn matrix_feature_source_normalizes() {
        let x = emb();
        let fs = MatrixFeatureSource { x: &x };
        let f = fs.node_features(1);
        assert_eq!(f.len(), fs.feature_dim());
        assert!((vecops::norm2(&f) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn co_embedding_attr_scorer() {
        let x = emb();
        let y = DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        let s = CoEmbeddingAttrScorer { x: &x, y: &y };
        assert!(s.attr_score(0, 0) > s.attr_score(0, 1));
        assert!(s.attr_score(2, 0) < 0.0);
    }
}
