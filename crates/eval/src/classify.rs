//! Linear classifiers trained from scratch.
//!
//! The paper trains "a linear support-vector machine (SVM) classifier \[6\]"
//! on the concatenated, normalized embeddings (§5.4). We provide two
//! interchangeable binary learners behind the [`BinaryClassifier`] trait —
//! L2-regularized logistic regression (full-batch gradient descent with a
//! decaying step) and a Pegasos-style linear SVM — plus the standard
//! one-vs-rest multi-label wrapper with the known-label-count prediction
//! protocol used throughout the network-embedding literature.

use pane_linalg::{vecops, DenseMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A binary scorer: larger scores mean more likely positive.
pub trait BinaryClassifier {
    /// Trains on feature rows `x` (one sample per row) with ±1 targets.
    fn fit(&mut self, x: &DenseMatrix, y: &[f64]);
    /// Raw decision value for one feature vector.
    fn decision(&self, features: &[f64]) -> f64;
}

/// L2-regularized logistic regression, full-batch gradient descent.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// Weight vector (bias stored separately).
    pub weights: Vec<f64>,
    /// Bias term.
    pub bias: f64,
    /// L2 regularization strength.
    pub lambda: f64,
    /// Number of epochs.
    pub epochs: usize,
    /// Initial step size.
    pub lr: f64,
}

impl LogisticRegression {
    /// Defaults tuned for unit-normalized embedding features.
    pub fn new() -> Self {
        Self {
            weights: Vec::new(),
            bias: 0.0,
            lambda: 1e-4,
            epochs: 200,
            lr: 0.5,
        }
    }
}

impl Default for LogisticRegression {
    fn default() -> Self {
        Self::new()
    }
}

impl BinaryClassifier for LogisticRegression {
    fn fit(&mut self, x: &DenseMatrix, y: &[f64]) {
        let n = x.rows();
        assert_eq!(y.len(), n, "target length mismatch");
        let dim = x.cols();
        self.weights = vec![0.0; dim];
        self.bias = 0.0;
        if n == 0 {
            return;
        }
        let mut grad = vec![0.0; dim];
        for epoch in 0..self.epochs {
            grad.iter_mut().for_each(|g| *g = 0.0);
            let mut gb = 0.0;
            for i in 0..n {
                let xi = x.row(i);
                let margin = y[i] * (vecops::dot(&self.weights, xi) + self.bias);
                // d/dw of ln(1 + e^{-m}) = -y * sigmoid(-m) * x
                let coeff = -y[i] / (1.0 + margin.exp());
                vecops::axpy(coeff, xi, &mut grad);
                gb += coeff;
            }
            let inv_n = 1.0 / n as f64;
            let step = self.lr / (1.0 + epoch as f64 * 0.05);
            for (w, g) in self.weights.iter_mut().zip(&grad) {
                *w -= step * (g * inv_n + self.lambda * *w);
            }
            self.bias -= step * gb * inv_n;
        }
    }

    fn decision(&self, features: &[f64]) -> f64 {
        vecops::dot(&self.weights, features) + self.bias
    }
}

/// Pegasos: primal stochastic sub-gradient solver for the linear SVM.
#[derive(Debug, Clone)]
pub struct PegasosSvm {
    /// Weight vector.
    pub weights: Vec<f64>,
    /// Bias term.
    pub bias: f64,
    /// Regularization `λ` of the SVM objective.
    pub lambda: f64,
    /// Number of stochastic iterations (per sample ≈ iters / n).
    pub iters: usize,
    /// RNG seed for sample order.
    pub seed: u64,
}

impl PegasosSvm {
    /// Defaults for unit-normalized features.
    pub fn new() -> Self {
        Self {
            weights: Vec::new(),
            bias: 0.0,
            lambda: 1e-4,
            iters: 20_000,
            seed: 0,
        }
    }
}

impl Default for PegasosSvm {
    fn default() -> Self {
        Self::new()
    }
}

impl BinaryClassifier for PegasosSvm {
    fn fit(&mut self, x: &DenseMatrix, y: &[f64]) {
        let n = x.rows();
        assert_eq!(y.len(), n, "target length mismatch");
        self.weights = vec![0.0; x.cols()];
        self.bias = 0.0;
        if n == 0 {
            return;
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        for t in 1..=self.iters {
            let i = rng.gen_range(0..n);
            let xi = x.row(i);
            let eta = 1.0 / (self.lambda * t as f64);
            let margin = y[i] * (vecops::dot(&self.weights, xi) + self.bias);
            // w ← (1 − ηλ) w [+ η y x if margin violated]
            let shrink = 1.0 - eta * self.lambda;
            vecops::scale(shrink.max(0.0), &mut self.weights);
            if margin < 1.0 {
                vecops::axpy(eta * y[i], xi, &mut self.weights);
                self.bias += eta * y[i] * 0.1; // unregularized, damped bias
            }
        }
    }

    fn decision(&self, features: &[f64]) -> f64 {
        vecops::dot(&self.weights, features) + self.bias
    }
}

/// Which binary learner the one-vs-rest wrapper trains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LearnerKind {
    /// Logistic regression (default: deterministic, robust).
    #[default]
    Logistic,
    /// Pegasos linear SVM (the paper's classifier family).
    Svm,
}

/// One-vs-rest multi-label classifier.
pub struct OneVsRest {
    models: Vec<Box<dyn BinaryClassifier + Send>>,
    num_labels: usize,
}

impl OneVsRest {
    /// Trains one binary model per label id in `0..num_labels`, with the
    /// default training budget (200 logistic epochs / 20k Pegasos steps).
    ///
    /// `labels[i]` is the label set of sample `i` (row `i` of `x`).
    pub fn fit(
        kind: LearnerKind,
        x: &DenseMatrix,
        labels: &[Vec<u32>],
        num_labels: usize,
        seed: u64,
    ) -> Self {
        Self::fit_with_budget(kind, x, labels, num_labels, seed, 200)
    }

    /// Like [`fit`](Self::fit) with an explicit per-label training budget
    /// (logistic epochs; Pegasos steps are scaled as `budget * 100`). The
    /// experiment harness lowers this on many-label datasets where the
    /// classifier, not the embedding, dominates runtime.
    pub fn fit_with_budget(
        kind: LearnerKind,
        x: &DenseMatrix,
        labels: &[Vec<u32>],
        num_labels: usize,
        seed: u64,
        budget: usize,
    ) -> Self {
        assert_eq!(x.rows(), labels.len(), "sample/label count mismatch");
        assert!(budget > 0, "training budget must be positive");
        let mut models: Vec<Box<dyn BinaryClassifier + Send>> = Vec::with_capacity(num_labels);
        for l in 0..num_labels {
            let y: Vec<f64> = labels
                .iter()
                .map(|ls| if ls.contains(&(l as u32)) { 1.0 } else { -1.0 })
                .collect();
            let mut model: Box<dyn BinaryClassifier + Send> = match kind {
                LearnerKind::Logistic => {
                    let mut lr = LogisticRegression::new();
                    lr.epochs = budget;
                    Box::new(lr)
                }
                LearnerKind::Svm => {
                    let mut svm = PegasosSvm::new();
                    svm.iters = budget * 100;
                    svm.seed = seed.wrapping_add(l as u64);
                    Box::new(svm)
                }
            };
            model.fit(x, &y);
            models.push(model);
        }
        Self { models, num_labels }
    }

    /// Per-label decision values for one sample.
    pub fn decision(&self, features: &[f64]) -> Vec<f64> {
        self.models.iter().map(|m| m.decision(features)).collect()
    }

    /// Standard protocol: predict the top-`k` labels where `k` is the known
    /// true label count of the node (k ≥ 1).
    pub fn predict_top_k(&self, features: &[f64], k: usize) -> Vec<u32> {
        let scores = self.decision(features);
        let mut order: Vec<usize> = (0..self.num_labels).collect();
        order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap().then(a.cmp(&b)));
        order.into_iter().take(k.max(1)).map(|l| l as u32).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linearly separable blobs in 2D.
    fn blobs(n_per: usize, gap: f64) -> (DenseMatrix, Vec<f64>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        let mut state = 42u64;
        let mut noise = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 0.4
        };
        for i in 0..n_per {
            let _ = i;
            rows.push(vec![gap + noise(), gap + noise()]);
            y.push(1.0);
            rows.push(vec![-gap + noise(), -gap + noise()]);
            y.push(-1.0);
        }
        (DenseMatrix::from_rows(&rows), y)
    }

    fn accuracy<C: BinaryClassifier>(c: &C, x: &DenseMatrix, y: &[f64]) -> f64 {
        let mut hits = 0;
        for i in 0..x.rows() {
            let pred = if c.decision(x.row(i)) >= 0.0 {
                1.0
            } else {
                -1.0
            };
            if pred == y[i] {
                hits += 1;
            }
        }
        hits as f64 / x.rows() as f64
    }

    #[test]
    fn logreg_separates_blobs() {
        let (x, y) = blobs(50, 1.0);
        let mut lr = LogisticRegression::new();
        lr.fit(&x, &y);
        assert!(accuracy(&lr, &x, &y) > 0.98);
    }

    #[test]
    fn svm_separates_blobs() {
        let (x, y) = blobs(50, 1.0);
        let mut svm = PegasosSvm::new();
        svm.fit(&x, &y);
        assert!(accuracy(&svm, &x, &y) > 0.95);
    }

    #[test]
    fn logreg_decision_is_monotone_in_margin_direction() {
        let (x, y) = blobs(40, 1.0);
        let mut lr = LogisticRegression::new();
        lr.fit(&x, &y);
        assert!(lr.decision(&[2.0, 2.0]) > lr.decision(&[-2.0, -2.0]));
    }

    #[test]
    fn ovr_recovers_quadrant_labels() {
        // 4 labels = 4 quadrants of the plane.
        let mut rows = Vec::new();
        let mut labels: Vec<Vec<u32>> = Vec::new();
        for i in 0..25 {
            let a = 0.5 + (i as f64) * 0.02;
            for (l, (sx, sy)) in [(1.0, 1.0), (-1.0, 1.0), (-1.0, -1.0), (1.0, -1.0)]
                .iter()
                .enumerate()
            {
                rows.push(vec![sx * a, sy * a]);
                labels.push(vec![l as u32]);
            }
        }
        let x = DenseMatrix::from_rows(&rows);
        let ovr = OneVsRest::fit(LearnerKind::Logistic, &x, &labels, 4, 0);
        let mut hits = 0;
        for (i, ls) in labels.iter().enumerate() {
            let pred = ovr.predict_top_k(x.row(i), 1);
            if pred == *ls {
                hits += 1;
            }
        }
        assert!(
            hits as f64 / labels.len() as f64 > 0.95,
            "{hits}/{}",
            labels.len()
        );
    }

    #[test]
    fn ovr_multilabel_topk() {
        // Samples on the x-axis carry labels {0}, samples on the diagonal
        // carry {0, 1}; top-2 prediction should recover both.
        let mut rows = Vec::new();
        let mut labels: Vec<Vec<u32>> = Vec::new();
        for i in 0..30 {
            let a = 0.5 + i as f64 * 0.05;
            rows.push(vec![a, -a]);
            labels.push(vec![0]);
            rows.push(vec![a, a]);
            labels.push(vec![0, 1]);
            rows.push(vec![-a, a]);
            labels.push(vec![1]);
        }
        let x = DenseMatrix::from_rows(&rows);
        let ovr = OneVsRest::fit(LearnerKind::Logistic, &x, &labels, 2, 0);
        let mut pred = ovr.predict_top_k(&[1.0, 1.0], 2);
        pred.sort_unstable();
        assert_eq!(pred, vec![0, 1]);
        assert_eq!(ovr.predict_top_k(&[1.0, -1.0], 1), vec![0]);
    }

    #[test]
    fn empty_training_is_harmless() {
        let x = DenseMatrix::zeros(0, 3);
        let mut lr = LogisticRegression::new();
        lr.fit(&x, &[]);
        assert_eq!(lr.decision(&[1.0, 2.0, 3.0]), 0.0);
    }
}
