#![warn(missing_docs)]
//! Evaluation harness for the PANE reproduction (§5 of the paper).
//!
//! Three downstream tasks measure embedding utility:
//!
//! * **attribute inference** (§5.2, Table 4) — predict hidden entries of the
//!   attribute matrix; scored by AUC and average precision;
//! * **link prediction** (§5.3, Table 5) — predict removed edges against
//!   sampled non-edges; PANE scores pairs with Eq. (22), single-embedding
//!   competitors get the best of the paper's four scorers (inner product,
//!   cosine, Hamming, edge features);
//! * **node classification** (§5.4, Figure 2) — one-vs-rest linear
//!   classifiers on `[X_f ‖ X_b]`, micro-/macro-F1 over training fractions.
//!
//! Submodules:
//!
//! * [`metrics`] — AUC, average precision, micro/macro F1;
//! * [`classify`] — from-scratch logistic regression and Pegasos linear SVM
//!   with a one-vs-rest wrapper (stand-in for the paper's LIBLINEAR SVM);
//! * [`scoring`] — the pair-scoring strategies and the traits connecting
//!   embedding models to tasks;
//! * [`split`] — seeded train/test splits for edges and attribute entries;
//! * [`tasks`] — end-to-end task runners used by the experiment binaries.

// Indexed loops in the numeric kernels are deliberate (they keep the
// zip-free auto-vectorizable shape the perf guide recommends).
#![allow(clippy::needless_range_loop)]
pub mod classify;
pub mod metrics;
pub mod metrics_ranking;
pub mod report_card;
pub mod scoring;
pub mod split;
pub mod tasks;

pub use metrics::{average_precision, macro_f1, micro_f1, roc_auc};
pub use metrics_ranking::{ndcg_at_k, precision_at_k, recall_at_k, reciprocal_rank};
pub use report_card::{report_card, ReportCard, ReportOptions};
pub use scoring::{AttrScorer, LinkScorer, NodeFeatureSource, PairScore};
pub use split::{split_attribute_entries, split_edges, AttrSplit, EdgeSplit};
