//! Fuzz-style property tests: arbitrary corruptions of a valid
//! container must yield a structured [`FormatError`] — never a panic,
//! never an allocation sized by attacker-controlled bytes.
//!
//! The deterministic `proptest` shim (see `vendor/README.md`) drives the
//! case generation, so failures reproduce bit-identically.

use super::*;
use proptest::prelude::*;

fn tmpfile(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pane-format-prop-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}.col"))
}

/// A representative two-section container (f64 matrix + i8 codes).
fn valid_bytes(rows: usize, cols: usize) -> Vec<u8> {
    let p = tmpfile("template");
    let f: Vec<f64> = (0..rows * cols).map(|i| (i as f64).sin()).collect();
    let q: Vec<i8> = (0..rows * cols).map(|i| (i % 255) as i8).collect();
    write_columns(
        &p,
        Artifact::Index,
        3,
        &[
            ColumnSpec {
                id: section::INDEX_VECTORS,
                rows,
                cols,
                data: ColumnData::F64(&f),
            },
            ColumnSpec {
                id: section::SQ_CODES,
                rows,
                cols,
                data: ColumnData::I8(&q),
            },
        ],
    )
    .unwrap();
    let bytes = std::fs::read(&p).unwrap();
    std::fs::remove_file(&p).unwrap();
    bytes
}

/// Opening arbitrary mutated bytes must never panic and must never
/// allocate more than the actual file size (the declared-length check
/// runs before allocation); any outcome other than a clean open is a
/// structured error.
fn assert_structured(path: &Path) {
    let outcome = std::panic::catch_unwind(|| Columns::open(path));
    match outcome {
        Ok(Ok(_)) | Ok(Err(FormatError::Format(_))) | Ok(Err(FormatError::Io(_))) => {}
        Err(_) => panic!("Columns::open panicked on corrupted input"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncation at any offset: always a structured error (a truncated
    /// file can never satisfy declared-length == actual-length unless
    /// the cut lands exactly at a consistent state, which re-validates).
    #[test]
    fn truncation_never_panics(cut in 0usize..600) {
        let bytes = valid_bytes(7, 9);
        let cut = cut.min(bytes.len().saturating_sub(1));
        let p = tmpfile("trunc");
        std::fs::write(&p, &bytes[..cut]).unwrap();
        assert_structured(&p);
        prop_assert!(
            Columns::open(&p).is_err(),
            "a truncated container must not open (cut at {cut})"
        );
        std::fs::remove_file(&p).unwrap();
    }

    /// Single-byte flips anywhere in the file are caught by a checksum
    /// or layout check. Never a panic.
    #[test]
    fn byte_flips_never_panic(pos in 0usize..600, bit in 0u32..8) {
        // 6 × 8 f64 values make the table end and both sections land
        // exactly on 64-byte boundaries, so this container has no
        // padding gaps: every byte is covered by a checksum and every
        // flip must be detected. (Padding bytes in other layouts are
        // not checksummed — they carry no data.)
        let mut bytes = valid_bytes(6, 8);
        let pos = pos % bytes.len();
        bytes[pos] ^= 1u8 << bit;
        let p = tmpfile("flip");
        std::fs::write(&p, &bytes).unwrap();
        assert_structured(&p);
        prop_assert!(
            Columns::open(&p).is_err(),
            "flip at byte {pos} bit {bit} must be detected"
        );
        std::fs::remove_file(&p).unwrap();
    }

    /// Declared-length lies: rewriting the length field (with a fixed-up
    /// header checksum, so the lie is "well-formed") must be rejected by
    /// the declared-vs-actual comparison before any allocation happens —
    /// including absurd multi-exabyte claims.
    #[test]
    fn declared_length_lies_never_allocate(lie in 0u64..u64::MAX) {
        let mut bytes = valid_bytes(5, 6);
        let actual = bytes.len() as u64;
        let lie = if lie == actual { lie + 1 } else { lie };
        bytes[16..24].copy_from_slice(&lie.to_le_bytes());
        // Re-seal the header checksum so only the length lies.
        let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
        let table_end = HEADER_LEN + TABLE_ENTRY_LEN * count;
        let mut hsum = Vec::new();
        hsum.extend_from_slice(&bytes[..24]);
        hsum.extend_from_slice(&bytes[HEADER_LEN..table_end]);
        let sum = checksum(&hsum);
        bytes[24..32].copy_from_slice(&sum.to_le_bytes());
        let p = tmpfile("lie");
        std::fs::write(&p, &bytes).unwrap();
        assert_structured(&p);
        prop_assert!(matches!(Columns::open(&p), Err(FormatError::Format(_))));
        std::fs::remove_file(&p).unwrap();
    }

    /// Trailing garbage (with the true declared length left in place)
    /// fails the declared-vs-actual check; garbage *with* a fixed-up
    /// declared length fails the layout check (sections no longer end at
    /// the declared length).
    #[test]
    fn trailing_garbage_is_rejected(extra in 1usize..200) {
        let mut bytes = valid_bytes(4, 5);
        bytes.extend(std::iter::repeat_n(0xAB, extra));
        let p = tmpfile("trail");
        std::fs::write(&p, &bytes).unwrap();
        assert_structured(&p);
        prop_assert!(Columns::open(&p).is_err());

        // Second variant: attacker also fixes the declared length and
        // header checksum. The layout check still rejects.
        let actual = bytes.len() as u64;
        bytes[16..24].copy_from_slice(&actual.to_le_bytes());
        let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
        let table_end = HEADER_LEN + TABLE_ENTRY_LEN * count;
        let mut hsum = Vec::new();
        hsum.extend_from_slice(&bytes[..24]);
        hsum.extend_from_slice(&bytes[HEADER_LEN..table_end]);
        let sum = checksum(&hsum);
        bytes[24..32].copy_from_slice(&sum.to_le_bytes());
        std::fs::write(&p, &bytes).unwrap();
        assert_structured(&p);
        prop_assert!(matches!(Columns::open(&p), Err(FormatError::Format(_))));
        std::fs::remove_file(&p).unwrap();
    }

    /// Random byte soup with a valid magic prefix: never panics,
    /// never opens.
    #[test]
    fn random_bytes_never_panic(body in proptest::collection::vec(0u32..256, 0..300)) {
        let mut bytes = MAGIC.to_vec();
        bytes.extend(body.iter().map(|&b| b as u8));
        let p = tmpfile("soup");
        std::fs::write(&p, &bytes).unwrap();
        assert_structured(&p);
        prop_assert!(Columns::open(&p).is_err());
        std::fs::remove_file(&p).unwrap();
    }
}
