//! `PANECOL1` — the one column-oriented artifact container every
//! generation artifact (embedding columns, index payloads) is stored in.
//!
//! PR 5–7 left the serving tier booting by *parsing*: the legacy
//! `PANEEMB1`/`PANEIDX1` readers walk their files value-by-value through
//! a `BufReader`, so restart cost scales with a per-`f64` decode loop.
//! `PANECOL1` is the map-don't-parse replacement: a sectioned,
//! 64-byte-aligned, per-section-checksummed layout that loads with **one
//! bulk read** into an aligned buffer followed by header + checksum
//! validation — after which every column is a typed zero-copy view
//! (`&[f64]` / `&[f32]` / `&[i8]` / `&[u32]` / `&[u64]`) straight into
//! that buffer. No per-value decode, no per-row `Vec`.
//!
//! # Container layout
//!
//! All integers are little-endian. The file is:
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 8    | magic `PANECOL1` |
//! | 8      | 2    | artifact kind ([`Artifact`] tag, `u16`) |
//! | 10     | 2    | artifact meta (`u16`, owner-defined; indexes pack `kind | metric << 8`) |
//! | 12     | 4    | section count (`u32`, at most [`MAX_SECTIONS`]) |
//! | 16     | 8    | declared total file length (`u64`) |
//! | 24     | 8    | header checksum: [`checksum`] over bytes `0..24` ++ the section table |
//! | 32     | 48·count | section table |
//! | …      | …    | sections, each starting on a 64-byte boundary, zero-padded gaps |
//!
//! Each 48-byte table entry is `id: u32`, `dtype: u32` ([`DType`] tag),
//! `rows: u64`, `cols: u64`, `offset: u64`, `byte_len: u64`,
//! `checksum: u64` (over the section's bytes). Section offsets are not
//! free-form: they are the deterministic function *align64 of the
//! previous section's end* (the first section follows the table), and
//! the declared length must equal the last section's end exactly. A
//! reader therefore recomputes the layout from `(rows, cols, dtype)`
//! alone and rejects any table whose stored offsets or lengths disagree
//! — overlapping sections, declared-length lies, and trailing garbage
//! are all structural errors, not undefined behavior.
//!
//! # Validation order (untrusted input)
//!
//! [`Columns::open`] reads the 32-byte fixed header first and compares
//! the declared length against the *actual* file length **before any
//! allocation** — a lying header can never trigger an oversized
//! allocation, because the buffer is sized by a value the OS confirms.
//! Only then is the aligned buffer allocated, the whole file bulk-read,
//! and the header checksum, table layout, and per-section checksums
//! verified. Every failure is a structured [`FormatError`]; no input
//! byte pattern panics.
//!
//! # Section ID registry
//!
//! Section IDs are global across artifact kinds (see [`section`]);
//! `30..40` are reserved for future product-quantization codebooks so
//! the container never needs a version bump for PQ.

#![deny(missing_docs)]
#![forbid(unsafe_op_in_unsafe_fn)]

use std::borrow::Cow;
use std::fmt;
use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

/// The 8-byte container magic.
pub const MAGIC: &[u8; 8] = b"PANECOL1";

/// Size of the fixed header that precedes the section table.
pub const HEADER_LEN: usize = 32;

/// Size of one section-table entry.
pub const TABLE_ENTRY_LEN: usize = 48;

/// Every section starts on a multiple of this (cache-line friendly, and
/// more than enough for any typed view's alignment).
pub const SECTION_ALIGN: usize = 64;

/// Hard ceiling on the section count — far above any real artifact
/// (embeddings use 3 sections, the largest index 5), purely a guard
/// against corrupt headers driving the table parse.
pub const MAX_SECTIONS: usize = 64;

/// Well-known section IDs. The registry is global: an ID means the same
/// thing in every `PANECOL1` file, so tooling can inspect any artifact.
pub mod section {
    /// Forward node embeddings `X_f` (`n × k/2`, f64).
    pub const EMB_FORWARD: u32 = 1;
    /// Backward node embeddings `X_b` (`n × k/2`, f64).
    pub const EMB_BACKWARD: u32 = 2;
    /// Attribute embeddings `Y` (`d × k/2`, f64).
    pub const EMB_ATTRIBUTE: u32 = 3;
    /// Flat index: metric-prepared vectors (`n × dim`, f64).
    pub const INDEX_VECTORS: u32 = 10;
    /// IVF: cell centroids (`nlist × dim`, f64).
    pub const IVF_CENTROIDS: u32 = 11;
    /// IVF: per-cell population (`nlist × 1`, u32).
    pub const IVF_SIZES: u32 = 12;
    /// IVF: cell-major original row ids (`n × 1`, u32).
    pub const IVF_IDS: u32 = 13;
    /// IVF: cell-major prepared vectors (`n × dim`, f64).
    pub const IVF_VECTORS: u32 = 14;
    /// IVF: scalar build/search parameters (`1 × 2`, u64: nlist, nprobe).
    pub const IVF_META: u32 = 15;
    /// HNSW: scalar parameters (`1 × 5`, u64: m, ef_construction,
    /// ef_search, entry, max_level).
    pub const HNSW_META: u32 = 16;
    /// HNSW: per-node level (`n × 1`, u32).
    pub const HNSW_LEVELS: u32 = 17;
    /// HNSW: adjacency-list offsets (`lists + 1 × 1`, u64), indexing
    /// [`HNSW_LINKS`]; lists are ordered node-major, level 0..=level(node).
    pub const HNSW_LINK_OFFSETS: u32 = 18;
    /// HNSW: concatenated neighbor ids (`total_links × 1`, u32).
    pub const HNSW_LINKS: u32 = 19;
    /// HNSW: metric-prepared vectors (`n × dim`, f64).
    pub const HNSW_VECTORS: u32 = 20;
    /// SqFlat: per-row scalar-quantized codes (`n × dim`, i8).
    pub const SQ_CODES: u32 = 21;
    /// SqFlat: per-row dequantization scales (`n × 1`, f64).
    pub const SQ_SCALES: u32 = 22;
    /// SqFlat: scalar parameters (`1 × 1`, u64: rerank factor).
    pub const SQ_META: u32 = 23;
    /// Reserved for PQ codebooks (sub-quantizer centroids).
    pub const RESERVED_PQ_CODEBOOK: u32 = 30;
    /// Reserved for PQ codes.
    pub const RESERVED_PQ_CODES: u32 = 31;
}

/// What a `PANECOL1` file holds — the coarse artifact kind in the fixed
/// header. Finer structure (which index kind, which metric) lives in the
/// owner-defined `meta` word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Artifact {
    /// A PANE embedding (`X_f`, `X_b`, `Y` columns).
    Embedding,
    /// A vector-index payload.
    Index,
}

impl Artifact {
    /// Stable wire tag.
    pub fn tag(self) -> u16 {
        match self {
            Artifact::Embedding => 1,
            Artifact::Index => 2,
        }
    }

    /// Inverse of [`Self::tag`].
    pub fn from_tag(tag: u16) -> Option<Self> {
        match tag {
            1 => Some(Artifact::Embedding),
            2 => Some(Artifact::Index),
            _ => None,
        }
    }
}

/// Element type of a section. Tags are wire-stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DType {
    /// 64-bit IEEE float.
    F64,
    /// 32-bit IEEE float.
    F32,
    /// Signed 8-bit integer (scalar-quantized codes).
    I8,
    /// Unsigned 32-bit integer (ids, levels, sizes).
    U32,
    /// Unsigned 64-bit integer (offsets, scalar parameter blocks).
    U64,
    /// Raw bytes.
    U8,
}

impl DType {
    /// Stable wire tag.
    pub fn tag(self) -> u32 {
        match self {
            DType::F64 => 1,
            DType::F32 => 2,
            DType::I8 => 3,
            DType::U32 => 4,
            DType::U64 => 5,
            DType::U8 => 6,
        }
    }

    /// Inverse of [`Self::tag`].
    pub fn from_tag(tag: u32) -> Option<Self> {
        match tag {
            1 => Some(DType::F64),
            2 => Some(DType::F32),
            3 => Some(DType::I8),
            4 => Some(DType::U32),
            5 => Some(DType::U64),
            6 => Some(DType::U8),
            _ => None,
        }
    }

    /// Bytes per element.
    pub fn size(self) -> usize {
        match self {
            DType::F64 | DType::U64 => 8,
            DType::F32 | DType::U32 => 4,
            DType::I8 | DType::U8 => 1,
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DType::F64 => "f64",
            DType::F32 => "f32",
            DType::I8 => "i8",
            DType::U32 => "u32",
            DType::U64 => "u64",
            DType::U8 => "u8",
        };
        f.write_str(name)
    }
}

/// Reading or writing a container failed.
#[derive(Debug)]
pub enum FormatError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// The bytes are not a valid `PANECOL1` container (wrong magic,
    /// checksum mismatch, layout lie, unknown tag, …).
    Format(String),
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::Io(e) => write!(f, "io error: {e}"),
            FormatError::Format(msg) => write!(f, "format error: {msg}"),
        }
    }
}

impl std::error::Error for FormatError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FormatError::Io(e) => Some(e),
            FormatError::Format(_) => None,
        }
    }
}

impl From<std::io::Error> for FormatError {
    fn from(e: std::io::Error) -> Self {
        FormatError::Io(e)
    }
}

fn format_err<T>(msg: impl Into<String>) -> Result<T, FormatError> {
    Err(FormatError::Format(msg.into()))
}

/// The container checksum: four independent FNV-1a 64 lanes over
/// interleaved 8-byte little-endian words, folded into one hash, with
/// the ≤31 tail bytes absorbed word-serially (the final partial word is
/// zero-extended). Not cryptographic — it detects torn writes and bit
/// rot, like the WAL's record checksum. The lanes exist purely for
/// speed: a single FNV chain serializes on the 64-bit multiply, while
/// four lanes pipeline it, so checksumming never dominates a bulk-load
/// boot.
pub fn checksum(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    // Distinct lane seeds so permuted blocks do not collide trivially.
    let mut lanes = [OFFSET, OFFSET ^ 1, OFFSET ^ 2, OFFSET ^ 3];
    let mut blocks = bytes.chunks_exact(32);
    for b in &mut blocks {
        for (i, lane) in lanes.iter_mut().enumerate() {
            let w = u64::from_le_bytes(b[i * 8..(i + 1) * 8].try_into().unwrap());
            *lane = (*lane ^ w).wrapping_mul(PRIME);
        }
    }
    let mut h = OFFSET;
    for lane in lanes {
        h = (h ^ lane).wrapping_mul(PRIME);
    }
    let mut words = blocks.remainder().chunks_exact(8);
    for c in &mut words {
        let w = u64::from_le_bytes(c.try_into().unwrap());
        h = (h ^ w).wrapping_mul(PRIME);
    }
    let rem = words.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h = (h ^ u64::from_le_bytes(tail)).wrapping_mul(PRIME);
    }
    h
}

/// Reads a file's first 8 bytes (its magic), or `None` if it is shorter.
///
/// Loaders that accept both the legacy containers and `PANECOL1` sniff
/// with this before dispatching.
pub fn peek_magic(path: &Path) -> Result<Option<[u8; 8]>, std::io::Error> {
    let mut f = File::open(path)?;
    let mut magic = [0u8; 8];
    let mut read = 0;
    while read < 8 {
        match f.read(&mut magic[read..])? {
            0 => return Ok(None),
            n => read += n,
        }
    }
    Ok(Some(magic))
}

/// `true` when the file starts with the `PANECOL1` magic.
pub fn is_columnar(path: &Path) -> Result<bool, std::io::Error> {
    Ok(peek_magic(path)? == Some(*MAGIC))
}

/// Reads a container's header and section table *only* — no payload
/// bytes are read or allocated, so status tools can report shapes of
/// arbitrarily large artifacts cheaply.
///
/// The header checksum (which covers the table), the declared-vs-actual
/// length, and the deterministic layout are all verified exactly as in
/// [`Columns::open`]; section *payload* checksums are not (that would
/// require reading the payloads this function exists to skip).
pub fn peek_table(path: &Path) -> Result<(Artifact, u16, Vec<Section>), FormatError> {
    let mut f = File::open(path)?;
    let t = read_validated_table(&mut f)?;
    Ok((t.artifact, t.meta, t.sections))
}

/// The header and section table of a container, read and validated by
/// [`read_validated_table`]; the underlying file cursor is left at the
/// end of the table (the first payload byte, modulo alignment padding).
struct ValidatedTable {
    artifact: Artifact,
    meta: u16,
    sections: Vec<Section>,
    /// Declared (== actual) file length in bytes.
    declared: usize,
    /// The raw header + table bytes, `HEADER_LEN + 48 × count` long.
    head: Vec<u8>,
}

/// Reads and validates the fixed header and section table from `f`
/// (positioned at byte 0). This is the shared front half of every
/// reader — [`peek_table`], [`Columns::open`], [`read_f64_sections`] —
/// so they all enforce the same contract: magic, artifact tag, section
/// cap, declared-vs-actual length *before any payload-sized
/// allocation*, header checksum over the table, per-section shape
/// arithmetic without overflow, deterministic offsets (no overlaps, no
/// gaps beyond alignment padding), unique IDs, and no trailing bytes.
/// Section *payload* checksums are the caller's job — they are stored
/// in the returned [`Section`]s.
fn read_validated_table(f: &mut File) -> Result<ValidatedTable, FormatError> {
    let actual = f.metadata()?.len();
    let mut header = [0u8; HEADER_LEN];
    if actual < HEADER_LEN as u64 {
        return format_err(format!(
            "file is {actual} bytes, shorter than the {HEADER_LEN}-byte header"
        ));
    }
    f.read_exact(&mut header)?;
    if &header[..8] != MAGIC {
        return format_err("bad magic (not a PANECOL1 container)");
    }
    let artifact_tag = u16::from_le_bytes(header[8..10].try_into().unwrap());
    let artifact = Artifact::from_tag(artifact_tag)
        .ok_or_else(|| FormatError::Format(format!("unknown artifact tag {artifact_tag}")))?;
    let meta = u16::from_le_bytes(header[10..12].try_into().unwrap());
    let count = u32::from_le_bytes(header[12..16].try_into().unwrap()) as usize;
    if count > MAX_SECTIONS {
        return format_err(format!(
            "section count {count} exceeds the {MAX_SECTIONS}-section cap"
        ));
    }
    let declared = u64::from_le_bytes(header[16..24].try_into().unwrap());
    // The allocation guard: a declared length that disagrees with the
    // file the OS sees is rejected here, before any buffer is sized
    // from it.
    if declared != actual {
        return format_err(format!(
            "declared length {declared} != actual file length {actual}"
        ));
    }
    let table_end = HEADER_LEN + TABLE_ENTRY_LEN * count;
    if (declared as usize) < table_end {
        return format_err(format!(
            "file length {declared} cannot hold a {count}-section table"
        ));
    }
    let mut head = vec![0u8; table_end];
    head[..HEADER_LEN].copy_from_slice(&header);
    f.read_exact(&mut head[HEADER_LEN..])?;
    let stored_hsum = u64::from_le_bytes(header[24..32].try_into().unwrap());
    let mut hsum = Vec::with_capacity(24 + table_end - HEADER_LEN);
    hsum.extend_from_slice(&header[..24]);
    hsum.extend_from_slice(&head[HEADER_LEN..]);
    if checksum(&hsum) != stored_hsum {
        return format_err("header checksum mismatch");
    }
    let mut sections = Vec::with_capacity(count);
    let mut cursor = table_end;
    for i in 0..count {
        let e = &head[HEADER_LEN + i * TABLE_ENTRY_LEN..HEADER_LEN + (i + 1) * TABLE_ENTRY_LEN];
        let id = u32::from_le_bytes(e[0..4].try_into().unwrap());
        let dtype_tag = u32::from_le_bytes(e[4..8].try_into().unwrap());
        let dtype = DType::from_tag(dtype_tag).ok_or_else(|| {
            FormatError::Format(format!("section {i}: unknown dtype tag {dtype_tag}"))
        })?;
        let rows = u64::from_le_bytes(e[8..16].try_into().unwrap());
        let cols = u64::from_le_bytes(e[16..24].try_into().unwrap());
        let offset = u64::from_le_bytes(e[24..32].try_into().unwrap());
        let byte_len = u64::from_le_bytes(e[32..40].try_into().unwrap());
        let sum = u64::from_le_bytes(e[40..48].try_into().unwrap());
        let expected_len = rows
            .checked_mul(cols)
            .and_then(|n| n.checked_mul(dtype.size() as u64))
            .ok_or_else(|| FormatError::Format(format!("section {i}: rows × cols overflows")))?;
        if byte_len != expected_len {
            return format_err(format!(
                "section {i} (id {id}): byte length {byte_len} != {rows} × {cols} × {} ({expected_len})",
                dtype.size()
            ));
        }
        let expected_off = align64(cursor) as u64;
        if offset != expected_off {
            return format_err(format!(
                "section {i} (id {id}): offset {offset} != expected {expected_off}"
            ));
        }
        if sections.iter().any(|s: &Section| s.id == id) {
            return format_err(format!("section id {id} repeats"));
        }
        cursor = (offset + byte_len) as usize;
        sections.push(Section {
            id,
            dtype,
            rows: rows as usize,
            cols: cols as usize,
            range: offset as usize..cursor,
            sum,
        });
    }
    if cursor as u64 != declared {
        return format_err(format!(
            "sections end at byte {cursor} but the file declares {declared} (trailing garbage?)"
        ));
    }
    Ok(ValidatedTable {
        artifact,
        meta,
        sections,
        declared: declared as usize,
        head,
    })
}

/// One `f64` section materialized into its own heap buffer by
/// [`read_f64_sections`].
#[derive(Debug)]
pub struct OwnedF64Section {
    /// Section ID (see [`section`]).
    pub id: u32,
    /// Logical row count.
    pub rows: usize,
    /// Logical column count.
    pub cols: usize,
    /// Row-major values, `rows × cols` long.
    pub values: Vec<f64>,
}

/// Streaming bulk loader for `f64` sections: validates the header and
/// table exactly like [`Columns::open`], then reads each *requested*
/// payload once, straight into the `Vec<f64>` that will be handed to
/// the caller, and verifies its checksum there. Skipping the
/// intermediate whole-file buffer (and the copy out of it) is what the
/// embedding boot path wants: it owns its matrices, so the zero-copy
/// views of [`Columns`] would only add a pass over the data.
///
/// Sections not named in `ids` are skipped unread, and their payload
/// checksums are *not* verified — callers that need every section
/// vouched for should open the full container. A requested ID that is
/// missing, or typed other than `f64`, is a format error. The returned
/// sections are in `ids` order.
pub fn read_f64_sections(
    path: &Path,
    ids: &[u32],
) -> Result<(Artifact, u16, Vec<OwnedF64Section>), FormatError> {
    use std::io::Seek;
    let mut f = File::open(path)?;
    let t = read_validated_table(&mut f)?;
    let mut out = Vec::with_capacity(ids.len());
    for &id in ids {
        let s = t
            .sections
            .iter()
            .find(|s| s.id == id)
            .ok_or_else(|| FormatError::Format(format!("missing section id {id}")))?;
        if s.dtype != DType::F64 {
            return format_err(format!(
                "section id {id} holds {} values, f64 requested",
                s.dtype
            ));
        }
        let mut values = vec![0.0f64; s.rows * s.cols];
        // SAFETY: a zeroed Vec<f64> is fully initialized; f64 has no
        // padding or invalid bit patterns, so writing raw bytes through
        // this view is sound, and u8 alignment is never stricter.
        let bytes = unsafe {
            std::slice::from_raw_parts_mut(values.as_mut_ptr() as *mut u8, values.len() * 8)
        };
        f.seek(std::io::SeekFrom::Start(s.range.start as u64))?;
        f.read_exact(bytes)?;
        if checksum(bytes) != s.sum {
            return format_err(format!("section id {id}: payload checksum mismatch"));
        }
        // Wire order is little-endian; the checksum above ran over the
        // wire bytes, so big-endian hosts swap afterwards.
        #[cfg(target_endian = "big")]
        for v in values.iter_mut() {
            *v = f64::from_bits(v.to_bits().swap_bytes());
        }
        out.push(OwnedF64Section {
            id,
            rows: s.rows,
            cols: s.cols,
            values,
        });
    }
    Ok((t.artifact, t.meta, out))
}

// ---------------------------------------------------------------------------
// Aligned buffer

/// A heap buffer whose start is 64-byte aligned, so any section offset
/// (itself a multiple of 64) yields correctly-aligned typed views.
struct AlignedBuf {
    ptr: std::ptr::NonNull<u8>,
    len: usize,
}

// SAFETY: the buffer is a plain owned allocation of bytes; &self access
// hands out shared slices only.
unsafe impl Send for AlignedBuf {}
unsafe impl Sync for AlignedBuf {}

impl AlignedBuf {
    fn new_zeroed(len: usize) -> Self {
        if len == 0 {
            return Self {
                ptr: std::ptr::NonNull::dangling(),
                len: 0,
            };
        }
        let layout = std::alloc::Layout::from_size_align(len, SECTION_ALIGN)
            .expect("section-aligned layout");
        // SAFETY: len > 0, layout is valid; alloc failure aborts via
        // handle_alloc_error.
        let raw = unsafe { std::alloc::alloc_zeroed(layout) };
        let Some(ptr) = std::ptr::NonNull::new(raw) else {
            std::alloc::handle_alloc_error(layout);
        };
        Self { ptr, len }
    }

    fn as_slice(&self) -> &[u8] {
        // SAFETY: ptr covers len initialized (zeroed or read-into) bytes.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    fn as_mut_slice(&mut self) -> &mut [u8] {
        // SAFETY: as above, and we hold &mut self.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl Drop for AlignedBuf {
    fn drop(&mut self) {
        if self.len > 0 {
            let layout = std::alloc::Layout::from_size_align(self.len, SECTION_ALIGN)
                .expect("section-aligned layout");
            // SAFETY: allocated in new_zeroed with this exact layout.
            unsafe { std::alloc::dealloc(self.ptr.as_ptr(), layout) };
        }
    }
}

impl fmt::Debug for AlignedBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AlignedBuf({} bytes)", self.len)
    }
}

fn align64(x: usize) -> usize {
    x.div_ceil(SECTION_ALIGN) * SECTION_ALIGN
}

// ---------------------------------------------------------------------------
// Writer

/// Borrowed column data handed to [`write_columns`]. The writer
/// serializes little-endian regardless of host order.
#[derive(Debug, Clone, Copy)]
pub enum ColumnData<'a> {
    /// 64-bit floats.
    F64(&'a [f64]),
    /// 32-bit floats.
    F32(&'a [f32]),
    /// Signed bytes.
    I8(&'a [i8]),
    /// 32-bit unsigned integers.
    U32(&'a [u32]),
    /// 64-bit unsigned integers.
    U64(&'a [u64]),
    /// Raw bytes.
    U8(&'a [u8]),
}

impl ColumnData<'_> {
    fn dtype(&self) -> DType {
        match self {
            ColumnData::F64(_) => DType::F64,
            ColumnData::F32(_) => DType::F32,
            ColumnData::I8(_) => DType::I8,
            ColumnData::U32(_) => DType::U32,
            ColumnData::U64(_) => DType::U64,
            ColumnData::U8(_) => DType::U8,
        }
    }

    fn elems(&self) -> usize {
        match self {
            ColumnData::F64(v) => v.len(),
            ColumnData::F32(v) => v.len(),
            ColumnData::I8(v) => v.len(),
            ColumnData::U32(v) => v.len(),
            ColumnData::U64(v) => v.len(),
            ColumnData::U8(v) => v.len(),
        }
    }

    /// The section's on-disk bytes. On little-endian hosts every variant
    /// is a free reinterpretation of the slice (all six element types
    /// are plain-old-data with no padding); big-endian hosts pay one
    /// converting copy.
    fn le_bytes(&self) -> Cow<'_, [u8]> {
        #[cfg(target_endian = "little")]
        {
            let (ptr, len) = match self {
                ColumnData::F64(v) => (v.as_ptr().cast::<u8>(), std::mem::size_of_val(*v)),
                ColumnData::F32(v) => (v.as_ptr().cast::<u8>(), std::mem::size_of_val(*v)),
                ColumnData::I8(v) => (v.as_ptr().cast::<u8>(), v.len()),
                ColumnData::U32(v) => (v.as_ptr().cast::<u8>(), std::mem::size_of_val(*v)),
                ColumnData::U64(v) => (v.as_ptr().cast::<u8>(), std::mem::size_of_val(*v)),
                ColumnData::U8(v) => (v.as_ptr().cast::<u8>(), v.len()),
            };
            // SAFETY: ptr/len cover the source slice exactly; every
            // element type here may be viewed as initialized bytes.
            Cow::Borrowed(unsafe { std::slice::from_raw_parts(ptr, len) })
        }
        #[cfg(target_endian = "big")]
        {
            let mut out = Vec::with_capacity(self.elems() * self.dtype().size());
            match self {
                ColumnData::F64(v) => v.iter().for_each(|x| out.extend(x.to_le_bytes())),
                ColumnData::F32(v) => v.iter().for_each(|x| out.extend(x.to_le_bytes())),
                ColumnData::I8(v) => v.iter().for_each(|x| out.extend(x.to_le_bytes())),
                ColumnData::U32(v) => v.iter().for_each(|x| out.extend(x.to_le_bytes())),
                ColumnData::U64(v) => v.iter().for_each(|x| out.extend(x.to_le_bytes())),
                ColumnData::U8(v) => out.extend_from_slice(v),
            }
            Cow::Owned(out)
        }
    }
}

/// One column declaration for [`write_columns`].
#[derive(Debug, Clone, Copy)]
pub struct ColumnSpec<'a> {
    /// Section ID (see [`section`]).
    pub id: u32,
    /// Logical row count.
    pub rows: usize,
    /// Logical column count (`rows * cols` must equal the data length).
    pub cols: usize,
    /// The column values.
    pub data: ColumnData<'a>,
}

/// Writes a `PANECOL1` container. Sections land in declaration order;
/// the caller is responsible for fsync (the store layer owns durability
/// ordering, exactly as with the legacy writers).
///
/// Fails with [`FormatError::Format`] if a spec's `rows * cols`
/// disagrees with its data length, an ID repeats, or more than
/// [`MAX_SECTIONS`] sections are declared.
pub fn write_columns(
    path: &Path,
    artifact: Artifact,
    meta: u16,
    specs: &[ColumnSpec<'_>],
) -> Result<(), FormatError> {
    if specs.len() > MAX_SECTIONS {
        return format_err(format!(
            "{} sections exceed the {MAX_SECTIONS}-section cap",
            specs.len()
        ));
    }
    for (i, s) in specs.iter().enumerate() {
        let elems = s
            .rows
            .checked_mul(s.cols)
            .ok_or_else(|| FormatError::Format("rows × cols overflows".into()))?;
        if elems != s.data.elems() {
            return format_err(format!(
                "section {} (id {}): {} × {} declared but {} values supplied",
                i,
                s.id,
                s.rows,
                s.cols,
                s.data.elems()
            ));
        }
        if specs[..i].iter().any(|p| p.id == s.id) {
            return format_err(format!("section id {} repeats", s.id));
        }
    }

    // Lay out: table end, then each section at the next 64-byte boundary.
    let table_end = HEADER_LEN + TABLE_ENTRY_LEN * specs.len();
    let mut offsets = Vec::with_capacity(specs.len());
    let mut cursor = table_end;
    for s in specs {
        let off = align64(cursor);
        offsets.push(off);
        cursor = off + s.data.elems() * s.data.dtype().size();
    }
    let declared = cursor as u64;

    // Header + table in memory (small), then checksum and splice.
    let mut head = Vec::with_capacity(table_end);
    head.extend_from_slice(MAGIC);
    head.extend_from_slice(&artifact.tag().to_le_bytes());
    head.extend_from_slice(&meta.to_le_bytes());
    head.extend_from_slice(&(specs.len() as u32).to_le_bytes());
    head.extend_from_slice(&declared.to_le_bytes());
    head.extend_from_slice(&[0u8; 8]); // header checksum placeholder
    let mut payload_sums = Vec::with_capacity(specs.len());
    for (s, &off) in specs.iter().zip(&offsets) {
        let bytes = s.data.le_bytes();
        let sum = checksum(&bytes);
        payload_sums.push(sum);
        head.extend_from_slice(&s.id.to_le_bytes());
        head.extend_from_slice(&s.data.dtype().tag().to_le_bytes());
        head.extend_from_slice(&(s.rows as u64).to_le_bytes());
        head.extend_from_slice(&(s.cols as u64).to_le_bytes());
        head.extend_from_slice(&(off as u64).to_le_bytes());
        head.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
        head.extend_from_slice(&sum.to_le_bytes());
    }
    let mut hsum = Vec::with_capacity(head.len() - 8);
    hsum.extend_from_slice(&head[..24]);
    hsum.extend_from_slice(&head[HEADER_LEN..]);
    let hsum = checksum(&hsum);
    head[24..32].copy_from_slice(&hsum.to_le_bytes());

    let mut w = std::io::BufWriter::new(File::create(path)?);
    w.write_all(&head)?;
    let mut written = table_end;
    for (s, &off) in specs.iter().zip(&offsets) {
        if off > written {
            const ZEROS: [u8; SECTION_ALIGN] = [0u8; SECTION_ALIGN];
            w.write_all(&ZEROS[..off - written])?;
        }
        let bytes = s.data.le_bytes();
        w.write_all(&bytes)?;
        written = off + bytes.len();
    }
    w.flush()?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Reader

/// One validated section of an opened container.
#[derive(Debug, Clone)]
pub struct Section {
    /// Section ID (see [`section`]).
    pub id: u32,
    /// Element type.
    pub dtype: DType,
    /// Logical row count.
    pub rows: usize,
    /// Logical column count.
    pub cols: usize,
    /// Byte range inside the file buffer.
    range: std::ops::Range<usize>,
    /// Stored payload checksum from the table entry.
    sum: u64,
}

/// An opened, fully-validated `PANECOL1` container: the whole file in
/// one aligned buffer plus the parsed section table. All column
/// accessors are zero-copy views into that buffer.
#[derive(Debug)]
pub struct Columns {
    artifact: Artifact,
    meta: u16,
    buf: AlignedBuf,
    sections: Vec<Section>,
}

impl Columns {
    /// Opens and validates a container. See the module docs for the
    /// validation order; the headline property is that the declared
    /// length is checked against the OS-reported file length *before*
    /// the (single) allocation, so corrupt headers cannot drive an
    /// oversized allocation, and every section checksum is verified
    /// before any view is handed out.
    pub fn open(path: &Path) -> Result<Self, FormatError> {
        let mut f = File::open(path)?;
        // Shared front half: header + table read and fully validated
        // (declared-vs-actual length before any payload-sized
        // allocation, deterministic layout, unique IDs, no trailing
        // bytes) — see [`read_validated_table`].
        let t = read_validated_table(&mut f)?;
        let ValidatedTable {
            artifact,
            meta,
            sections,
            declared,
            head,
        } = t;

        // One bulk read of the payload into the aligned buffer, behind
        // the already-read header + table bytes, so section ranges
        // index the buffer exactly as they index the file.
        let mut buf = AlignedBuf::new_zeroed(declared);
        let slice = buf.as_mut_slice();
        slice[..head.len()].copy_from_slice(&head);
        f.read_exact(&mut slice[head.len()..])?;
        // Every payload checksum is verified before any view is handed
        // out; the stored sums came from the validated table entries.
        let bytes = buf.as_slice();
        for s in &sections {
            if checksum(&bytes[s.range.clone()]) != s.sum {
                return format_err(format!("section id {}: payload checksum mismatch", s.id));
            }
        }

        let mut columns = Self {
            artifact,
            meta,
            buf,
            sections,
        };
        columns.fix_endianness();
        Ok(columns)
    }

    /// Sections are little-endian on disk; big-endian hosts byte-swap
    /// each section in place (after checksum validation, which runs over
    /// the wire bytes) so the typed views stay zero-copy everywhere.
    #[cfg(target_endian = "big")]
    fn fix_endianness(&mut self) {
        let sections = self.sections.clone();
        let buf = self.buf.as_mut_slice();
        for s in &sections {
            let width = s.dtype.size();
            if width > 1 {
                for chunk in buf[s.range.clone()].chunks_exact_mut(width) {
                    chunk.reverse();
                }
            }
        }
    }

    #[cfg(target_endian = "little")]
    fn fix_endianness(&mut self) {}

    /// The artifact kind from the header.
    pub fn artifact(&self) -> Artifact {
        self.artifact
    }

    /// The owner-defined meta word from the header.
    pub fn meta(&self) -> u16 {
        self.meta
    }

    /// All sections, in file order.
    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    /// Looks up a section by ID; a missing section is a structured
    /// format error (artifacts declare fixed schemas).
    pub fn section(&self, id: u32) -> Result<&Section, FormatError> {
        self.sections
            .iter()
            .find(|s| s.id == id)
            .ok_or_else(|| FormatError::Format(format!("missing section id {id}")))
    }

    /// `(rows, cols)` of a section.
    pub fn dims(&self, id: u32) -> Result<(usize, usize), FormatError> {
        let s = self.section(id)?;
        Ok((s.rows, s.cols))
    }

    fn typed_bytes(&self, id: u32, dtype: DType) -> Result<&[u8], FormatError> {
        let s = self.section(id)?;
        if s.dtype != dtype {
            return format_err(format!(
                "section id {id} holds {} values, {dtype} requested",
                s.dtype
            ));
        }
        Ok(&self.buf.as_slice()[s.range.clone()])
    }
}

macro_rules! typed_view {
    ($name:ident, $ty:ty, $dtype:expr, $doc:literal) => {
        impl Columns {
            #[doc = $doc]
            ///
            /// Zero-copy: the returned slice borrows the file buffer
            /// (sections are 64-byte aligned, so the cast never copies).
            pub fn $name(&self, id: u32) -> Result<&[$ty], FormatError> {
                let bytes = self.typed_bytes(id, $dtype)?;
                // Alignment is guaranteed by construction; a misaligned
                // prefix would mean a bug in this crate, not bad input.
                let (prefix, values, suffix) = unsafe { bytes.align_to::<$ty>() };
                debug_assert!(prefix.is_empty() && suffix.is_empty());
                if !prefix.is_empty() || !suffix.is_empty() {
                    return format_err(format!("section id {id}: misaligned view"));
                }
                Ok(values)
            }
        }
    };
}

typed_view!(f64s, f64, DType::F64, "The section's values as `&[f64]`.");
typed_view!(f32s, f32, DType::F32, "The section's values as `&[f32]`.");
typed_view!(i8s, i8, DType::I8, "The section's values as `&[i8]`.");
typed_view!(u32s, u32, DType::U32, "The section's values as `&[u32]`.");
typed_view!(u64s, u64, DType::U64, "The section's values as `&[u64]`.");
typed_view!(u8s, u8, DType::U8, "The section's raw bytes.");

#[cfg(test)]
mod proptests;

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pane-format-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_specs() -> (Vec<f64>, Vec<u32>, Vec<i8>) {
        let f: Vec<f64> = (0..12).map(|i| i as f64 * 0.5 - 3.0).collect();
        let u: Vec<u32> = (0..5).map(|i| i * 7 + 1).collect();
        let q: Vec<i8> = (0..6).map(|i| (i as i8) - 3).collect();
        (f, u, q)
    }

    fn write_sample(path: &Path) {
        let (f, u, q) = sample_specs();
        write_columns(
            path,
            Artifact::Index,
            0x0203,
            &[
                ColumnSpec {
                    id: section::INDEX_VECTORS,
                    rows: 3,
                    cols: 4,
                    data: ColumnData::F64(&f),
                },
                ColumnSpec {
                    id: section::IVF_SIZES,
                    rows: 5,
                    cols: 1,
                    data: ColumnData::U32(&u),
                },
                ColumnSpec {
                    id: section::SQ_CODES,
                    rows: 2,
                    cols: 3,
                    data: ColumnData::I8(&q),
                },
            ],
        )
        .unwrap();
    }

    #[test]
    fn roundtrip_preserves_every_column() {
        let p = tmpdir().join("roundtrip.col");
        write_sample(&p);
        let (f, u, q) = sample_specs();
        let c = Columns::open(&p).unwrap();
        assert_eq!(c.artifact(), Artifact::Index);
        assert_eq!(c.meta(), 0x0203);
        assert_eq!(c.dims(section::INDEX_VECTORS).unwrap(), (3, 4));
        assert_eq!(c.f64s(section::INDEX_VECTORS).unwrap(), &f[..]);
        assert_eq!(c.u32s(section::IVF_SIZES).unwrap(), &u[..]);
        assert_eq!(c.i8s(section::SQ_CODES).unwrap(), &q[..]);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn views_are_section_aligned() {
        let p = tmpdir().join("aligned.col");
        write_sample(&p);
        let c = Columns::open(&p).unwrap();
        let v = c.f64s(section::INDEX_VECTORS).unwrap();
        assert_eq!(v.as_ptr() as usize % SECTION_ALIGN, 0);
        for s in c.sections() {
            assert_eq!(s.range.start % SECTION_ALIGN, 0, "section {}", s.id);
        }
        std::fs::remove_file(&p).unwrap();
    }

    /// Pins the exact on-disk bytes of the fixed header (and the first
    /// table entry) for a tiny reference container, so the format cannot
    /// drift silently. If this test ever fails, you are changing the
    /// wire format: bump the magic instead.
    #[test]
    fn golden_header_byte_layout() {
        let p = tmpdir().join("golden.col");
        let values = [1.0f64, -2.5f64];
        write_columns(
            &p,
            Artifact::Embedding,
            7,
            &[ColumnSpec {
                id: section::EMB_FORWARD,
                rows: 1,
                cols: 2,
                data: ColumnData::F64(&values),
            }],
        )
        .unwrap();
        let bytes = std::fs::read(&p).unwrap();
        // Layout: 32-byte header + one 48-byte entry = 80; first section
        // starts at the next 64-byte boundary (128); 16 value bytes end
        // the file at 144.
        assert_eq!(bytes.len(), 144);
        assert_eq!(&bytes[0..8], b"PANECOL1");
        assert_eq!(&bytes[8..10], &1u16.to_le_bytes()); // artifact: embedding
        assert_eq!(&bytes[10..12], &7u16.to_le_bytes()); // meta
        assert_eq!(&bytes[12..16], &1u32.to_le_bytes()); // section count
        assert_eq!(&bytes[16..24], &144u64.to_le_bytes()); // declared length
                                                           // bytes 24..32 are the header checksum — value checked below.
        assert_eq!(&bytes[32..36], &section::EMB_FORWARD.to_le_bytes());
        assert_eq!(&bytes[36..40], &DType::F64.tag().to_le_bytes());
        assert_eq!(&bytes[40..48], &1u64.to_le_bytes()); // rows
        assert_eq!(&bytes[48..56], &2u64.to_le_bytes()); // cols
        assert_eq!(&bytes[56..64], &128u64.to_le_bytes()); // offset
        assert_eq!(&bytes[64..72], &16u64.to_le_bytes()); // byte length
        assert_eq!(
            &bytes[72..80],
            &checksum(&bytes[128..144]).to_le_bytes(),
            "section checksum"
        );
        assert_eq!(&bytes[80..128], &[0u8; 48][..], "padding must be zero");
        assert_eq!(&bytes[128..136], &1.0f64.to_le_bytes());
        assert_eq!(&bytes[136..144], &(-2.5f64).to_le_bytes());
        let mut hsum = Vec::new();
        hsum.extend_from_slice(&bytes[..24]);
        hsum.extend_from_slice(&bytes[32..80]);
        assert_eq!(&bytes[24..32], &checksum(&hsum).to_le_bytes());
        // And the checksum function itself is pinned against an inline
        // mirror of its definition: four FNV-1a 64 lanes over
        // interleaved LE words, folded into one hash, tail words
        // absorbed serially.
        let (off, pr) = (0xcbf2_9ce4_8422_2325u64, 0x0000_0100_0000_01b3u64);
        let fold = |lanes: [u64; 4]| lanes.iter().fold(off, |h, &l| (h ^ l).wrapping_mul(pr));
        let empty = fold([off, off ^ 1, off ^ 2, off ^ 3]);
        assert_eq!(checksum(b""), empty);
        // A sub-block input never touches the lanes: it is absorbed
        // word-serially after the fold of the untouched seeds.
        assert_eq!(checksum(b"PANECOL1"), {
            let w = u64::from_le_bytes(*b"PANECOL1");
            (empty ^ w).wrapping_mul(pr)
        });
        // One full 32-byte block: word i goes to lane i.
        let mut block = [0u8; 32];
        for (i, c) in block.chunks_exact_mut(8).enumerate() {
            c.copy_from_slice(&(i as u64 + 1).to_le_bytes());
        }
        let mut lanes = [off, off ^ 1, off ^ 2, off ^ 3];
        for (i, l) in lanes.iter_mut().enumerate() {
            *l = (*l ^ (i as u64 + 1)).wrapping_mul(pr);
        }
        assert_eq!(checksum(&block), fold(lanes));
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn streaming_reader_loads_requested_sections_only() {
        let p = tmpdir().join("stream.col");
        write_sample(&p);
        let (f, _, _) = sample_specs();
        let (artifact, meta, got) = read_f64_sections(&p, &[section::INDEX_VECTORS]).unwrap();
        assert_eq!(artifact, Artifact::Index);
        assert_eq!(meta, 0x0203);
        assert_eq!(got.len(), 1);
        assert_eq!((got[0].rows, got[0].cols), (3, 4));
        assert_eq!(got[0].values, f);
        // Missing and wrongly-typed requests are structured errors.
        assert!(matches!(
            read_f64_sections(&p, &[section::EMB_FORWARD]),
            Err(FormatError::Format(_))
        ));
        assert!(matches!(
            read_f64_sections(&p, &[section::IVF_SIZES]),
            Err(FormatError::Format(_))
        ));
        // Corrupting an *unrequested* payload is invisible (it is never
        // read), but corrupting the requested one trips its checksum.
        let clean = std::fs::read(&p).unwrap();
        let c = Columns::open(&p).unwrap();
        let codes = c.section(section::SQ_CODES).unwrap().range.clone();
        let vectors = c.section(section::INDEX_VECTORS).unwrap().range.clone();
        drop(c);
        let mut bytes = clean.clone();
        bytes[codes.start] ^= 0xFF;
        std::fs::write(&p, &bytes).unwrap();
        assert!(read_f64_sections(&p, &[section::INDEX_VECTORS]).is_ok());
        let mut bytes = clean.clone();
        bytes[vectors.start] ^= 0xFF;
        std::fs::write(&p, &bytes).unwrap();
        assert!(matches!(
            read_f64_sections(&p, &[section::INDEX_VECTORS]),
            Err(FormatError::Format(_))
        ));
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn peek_table_reports_shapes_without_payload_reads() {
        let p = tmpdir().join("peek.col");
        let f: Vec<f64> = (0..12).map(|i| i as f64).collect();
        write_columns(
            &p,
            Artifact::Embedding,
            7,
            &[ColumnSpec {
                id: section::EMB_FORWARD,
                rows: 3,
                cols: 4,
                data: ColumnData::F64(&f),
            }],
        )
        .unwrap();
        let (artifact, meta, sections) = peek_table(&p).unwrap();
        assert_eq!(artifact, Artifact::Embedding);
        assert_eq!(meta, 7);
        assert_eq!(sections.len(), 1);
        assert_eq!(
            (sections[0].id, sections[0].rows, sections[0].cols),
            (section::EMB_FORWARD, 3, 4)
        );
        // Corrupting a payload byte is invisible to the peek (it reads no
        // payload) but a header/table flip is caught by the checksum.
        let mut bytes = std::fs::read(&p).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&p, &bytes).unwrap();
        assert!(peek_table(&p).is_ok());
        assert!(matches!(Columns::open(&p), Err(FormatError::Format(_))));
        bytes[last] ^= 0xFF;
        bytes[12] ^= 0x01; // section count byte
        std::fs::write(&p, &bytes).unwrap();
        assert!(matches!(peek_table(&p), Err(FormatError::Format(_))));
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn zero_section_container_roundtrips() {
        let p = tmpdir().join("empty.col");
        write_columns(&p, Artifact::Embedding, 0, &[]).unwrap();
        let c = Columns::open(&p).unwrap();
        assert!(c.sections().is_empty());
        assert!(matches!(
            c.section(section::EMB_FORWARD),
            Err(FormatError::Format(_))
        ));
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn wrong_dtype_request_is_a_structured_error() {
        let p = tmpdir().join("dtype.col");
        write_sample(&p);
        let c = Columns::open(&p).unwrap();
        assert!(matches!(
            c.f64s(section::IVF_SIZES),
            Err(FormatError::Format(_))
        ));
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn duplicate_ids_rejected_at_write_time() {
        let p = tmpdir().join("dup.col");
        let v = [1.0f64];
        let spec = ColumnSpec {
            id: 4,
            rows: 1,
            cols: 1,
            data: ColumnData::F64(&v),
        };
        assert!(matches!(
            write_columns(&p, Artifact::Index, 0, &[spec, spec]),
            Err(FormatError::Format(_))
        ));
    }

    #[test]
    fn shape_mismatch_rejected_at_write_time() {
        let p = tmpdir().join("shape.col");
        let v = [1.0f64, 2.0];
        assert!(matches!(
            write_columns(
                &p,
                Artifact::Index,
                0,
                &[ColumnSpec {
                    id: 1,
                    rows: 3,
                    cols: 1,
                    data: ColumnData::F64(&v),
                }]
            ),
            Err(FormatError::Format(_))
        ));
    }

    #[test]
    fn magic_sniffing_dispatches() {
        let dir = tmpdir();
        let col = dir.join("sniff.col");
        write_sample(&col);
        assert!(is_columnar(&col).unwrap());
        let other = dir.join("sniff.other");
        std::fs::write(&other, b"PANEEMB1 and then some").unwrap();
        assert!(!is_columnar(&other).unwrap());
        assert_eq!(peek_magic(&other).unwrap(), Some(*b"PANEEMB1"));
        let short = dir.join("sniff.short");
        std::fs::write(&short, b"abc").unwrap();
        assert_eq!(peek_magic(&short).unwrap(), None);
        assert!(!is_columnar(&short).unwrap());
        for p in [col, other, short] {
            std::fs::remove_file(p).unwrap();
        }
    }
}
