//! Fuzz-style crash-recovery properties for the insert-ahead log.
//!
//! The WAL is the only thing standing between an acknowledged insert and
//! a hard kill, so its recovery path is held to the contract the module
//! docs state: [`Store::open`] over a mangled log either replays a
//! **clean prefix** of the acknowledged records — bit-for-bit, never a
//! partial row — or fails with a structured [`StoreError`]. It never
//! panics, whatever bytes the file holds.

use crate::store::testutil::{fixture, tmpdir};
use crate::{Store, StoreError, WAL_FILE};
use pane_index::IndexSpec;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::OnceLock;

/// Rows appended to the fixture store's WAL (distinct, recognizable).
const APPENDED: usize = 5;

struct Fixture {
    dir: PathBuf,
    wal: Vec<u8>,
    rows: Vec<(Vec<f64>, Vec<f64>)>,
    base_n: usize,
}

/// Builds one pristine store + WAL per test (tests run in parallel, so
/// each gets its own directory; cases within a test reuse it by
/// rewriting only `wal.log`).
fn build_fixture(name: &'static str) -> Fixture {
    let dir = tmpdir(name);
    let emb = fixture(40, 11);
    let k2 = emb.forward.cols();
    let base_n = emb.forward.rows();
    Store::init(&dir, &emb, &IndexSpec::Flat, &IndexSpec::Flat, 1).unwrap();
    let mut opened = Store::open(&dir).unwrap();
    let mut rows = Vec::new();
    for i in 0..APPENDED {
        let fwd: Vec<f64> = (0..k2).map(|j| 0.01 * (i * k2 + j + 1) as f64).collect();
        let bwd: Vec<f64> = fwd.iter().map(|v| -v).collect();
        opened.store.append(base_n + i, &fwd, &bwd).unwrap();
        rows.push((fwd, bwd));
    }
    drop(opened);
    let wal = std::fs::read(dir.join(WAL_FILE)).unwrap();
    Fixture {
        dir,
        wal,
        rows,
        base_n,
    }
}

/// Opens the fixture store with `wal_bytes` in place of its log and
/// checks the recovery contract; returns the replay count on success.
fn open_with_wal(fx: &Fixture, wal_bytes: &[u8]) -> Result<usize, StoreError> {
    std::fs::write(fx.dir.join(WAL_FILE), wal_bytes).unwrap();
    let opened = Store::open(&fx.dir)?;
    let replayed = opened.store.replayed();
    assert!(replayed <= APPENDED + 1, "replayed more than was appended");
    assert_eq!(opened.embedding.forward.rows(), fx.base_n + replayed);
    assert_eq!(opened.node_index.delta_len(), replayed);
    // Never a partial or mangled row: whatever replayed must be the
    // acknowledged rows, bit-for-bit, in acknowledgment order.
    for (i, (fwd, bwd)) in fx.rows.iter().take(replayed).enumerate() {
        let at = fx.base_n + i;
        assert_eq!(opened.embedding.forward.row(at), &fwd[..], "row {at}");
        assert_eq!(opened.embedding.backward.row(at), &bwd[..], "row {at}");
    }
    Ok(replayed)
}

fn truncation_fixture() -> &'static Fixture {
    static FX: OnceLock<Fixture> = OnceLock::new();
    FX.get_or_init(|| build_fixture("prop_trunc"))
}

fn flip_fixture() -> &'static Fixture {
    static FX: OnceLock<Fixture> = OnceLock::new();
    FX.get_or_init(|| build_fixture("prop_flip"))
}

fn garbage_fixture() -> &'static Fixture {
    static FX: OnceLock<Fixture> = OnceLock::new();
    FX.get_or_init(|| build_fixture("prop_garbage"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncating the log at *any* byte offset yields the longest clean
    /// prefix of whole records (shorter than the magic: a structured
    /// error) — replay never rounds up into a partial record.
    #[test]
    fn truncation_replays_exactly_the_whole_record_prefix(frac in 0.0f64..1.0) {
        let fx = truncation_fixture();
        let keep = ((frac * (fx.wal.len() + 1) as f64) as usize).min(fx.wal.len());
        let got = open_with_wal(fx, &fx.wal[..keep]);
        if keep < 8 {
            prop_assert!(matches!(got, Err(StoreError::Format(_))), "{got:?}");
        } else {
            let record_bytes = (fx.wal.len() - 8) / APPENDED;
            let want = (keep - 8) / record_bytes;
            prop_assert_eq!(got.unwrap(), want);
        }
    }

    /// Flipping any single byte never panics: the store either still
    /// replays a clean prefix (the flip landed at or past the first
    /// record it dropped) or fails with a structured error (magic /
    /// checksum-valid-but-inconsistent records).
    #[test]
    fn byte_flips_never_panic_and_never_serve_partial_rows(
        offset_frac in 0.0f64..1.0,
        xor in 1u32..256,
    ) {
        let fx = flip_fixture();
        let mut wal = fx.wal.clone();
        let at = (offset_frac * (wal.len() - 1) as f64) as usize;
        wal[at] ^= xor as u8;
        match open_with_wal(fx, &wal) {
            // open_with_wal already asserted the replayed rows are an
            // exact bit-for-bit prefix; a flip inside record j can only
            // drop j and everything after it.
            Ok(_replayed) => {}
            Err(StoreError::Format(_)) | Err(StoreError::Wal(_)) => {}
            Err(other) => panic!("unexpected error kind: {other}"),
        }
    }

    /// Arbitrary garbage appended after the real records is a torn tail:
    /// the acknowledged records replay, the garbage is dropped (or, if it
    /// happens to checksum-validate, rejected as structurally foreign).
    #[test]
    fn appended_garbage_is_dropped_or_structurally_rejected(
        garbage in proptest::collection::vec(0u32..256, 0usize..200),
    ) {
        let fx = garbage_fixture();
        let mut wal = fx.wal.clone();
        wal.extend(garbage.iter().map(|&b| b as u8));
        match open_with_wal(fx, &wal) {
            Ok(replayed) => prop_assert!(replayed >= APPENDED),
            Err(StoreError::Wal(_)) => {}
            Err(other) => panic!("unexpected error kind: {other}"),
        }
    }
}
