//! The `PANESTR1` store manifest: which generation is current, and the
//! index build recipes.
//!
//! A manifest is a small line-oriented text file named `MANIFEST` at the
//! root of a store directory. Two shapes exist:
//!
//! ```text
//! PANESTR1                                  PANESTR1
//! generation 3                              shards 4
//! node_index hnsw m=16 efc=100 ef=64 seed=0
//! link_index flat
//! ```
//!
//! The left shape names a **single store**: base artifacts live in
//! `gen-00003/` and the insert-ahead log in `wal.log`. The right shape
//! names a **sharded root** whose shards are the single stores
//! `shard-000/` … `shard-003/`.
//!
//! # Atomicity contract
//!
//! The manifest is the *commit point* of a snapshot: a new generation
//! directory is fully written and synced first, then the manifest is
//! replaced via write-to-temp + `rename` (atomic within a directory on
//! every platform we target). A crash before the rename leaves the old
//! manifest naming the old, complete generation; a crash after it leaves
//! the new manifest naming the new, complete generation. There is no
//! window in which the manifest names missing or partial artifacts, so
//! `Store::open` never has to guess.

use crate::StoreError;
use pane_index::IndexSpec;
use std::io::Write;
use std::path::Path;

/// Magic first line of a manifest (version 1).
pub const MANIFEST_MAGIC: &str = "PANESTR1";

/// File name of the manifest inside a store directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// On-disk format of a generation's artifacts.
///
/// Recorded in the manifest (`format` line) so operators and `status`
/// reports can tell what a store holds without sniffing files; the
/// artifact *readers* dispatch on magic bytes regardless, so a wrong or
/// missing line never misloads data. Manifests written before the
/// columnar container existed have no `format` line and parse as
/// [`ArtifactFormat::Legacy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactFormat {
    /// Original stream formats (`PANEEMB1` embeddings, `PANEIDX1` indexes).
    Legacy,
    /// Columnar `PANECOL1` containers (sectioned, aligned, checksummed).
    Columnar,
}

impl ArtifactFormat {
    /// Stable manifest token.
    pub fn as_str(self) -> &'static str {
        match self {
            ArtifactFormat::Legacy => "legacy",
            ArtifactFormat::Columnar => "columnar",
        }
    }

    /// Inverse of [`ArtifactFormat::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "legacy" => Some(ArtifactFormat::Legacy),
            "columnar" => Some(ArtifactFormat::Columnar),
            _ => None,
        }
    }
}

impl std::fmt::Display for ArtifactFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Parsed contents of a store manifest.
#[derive(Debug, Clone, PartialEq)]
pub enum Manifest {
    /// A single store directory: current generation + index recipes.
    Single {
        /// Current base generation (its artifacts live in `gen-<g>/`).
        generation: u64,
        /// Build recipe of the similar-nodes index.
        node_spec: IndexSpec,
        /// Build recipe of the link-recommendation index.
        link_spec: IndexSpec,
        /// Artifact format of the current generation.
        format: ArtifactFormat,
    },
    /// A sharded root holding `shards` single stores.
    Sharded {
        /// Number of shards (`shard-000/` … `shard-<N-1>/`).
        shards: usize,
    },
}

impl Manifest {
    fn render(&self) -> String {
        match self {
            Manifest::Single {
                generation,
                node_spec,
                link_spec,
                format,
            } => format!(
                "{MANIFEST_MAGIC}\ngeneration {generation}\nnode_index {}\nlink_index {}\nformat {format}\n",
                node_spec.to_manifest(),
                link_spec.to_manifest()
            ),
            Manifest::Sharded { shards } => format!("{MANIFEST_MAGIC}\nshards {shards}\n"),
        }
    }

    /// Writes the manifest atomically: `MANIFEST.tmp` is written and
    /// synced, then renamed over `MANIFEST`, then the directory entry is
    /// synced (best-effort) so the commit survives power loss.
    pub fn write(&self, dir: &Path) -> Result<(), StoreError> {
        let tmp = dir.join("MANIFEST.tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(self.render().as_bytes())?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, dir.join(MANIFEST_FILE))?;
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    /// Reads and parses `dir/MANIFEST`. Every malformation is a
    /// structured [`StoreError::Format`] naming the problem.
    pub fn read(dir: &Path) -> Result<Manifest, StoreError> {
        let path = dir.join(MANIFEST_FILE);
        let text = std::fs::read_to_string(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                StoreError::Format(format!(
                    "{} is not a store directory (no {MANIFEST_FILE}); run `pane store init` first",
                    dir.display()
                ))
            } else {
                StoreError::Io(e)
            }
        })?;
        let mut lines = text.lines();
        match lines.next() {
            Some(MANIFEST_MAGIC) => {}
            other => {
                return Err(StoreError::Format(format!(
                    "{}: first line is {other:?}, expected {MANIFEST_MAGIC:?}",
                    path.display()
                )))
            }
        }
        let mut generation = None;
        let mut shards = None;
        let mut node_spec = None;
        let mut link_spec = None;
        let mut format = None;
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, rest) = line.split_once(' ').ok_or_else(|| {
                StoreError::Format(format!("{}: malformed line '{line}'", path.display()))
            })?;
            let dup = |what: &str| {
                StoreError::Format(format!("{}: repeated '{what}' line", path.display()))
            };
            match key {
                "generation" => {
                    let g: u64 = rest.parse().map_err(|e| {
                        StoreError::Format(format!("{}: bad generation: {e}", path.display()))
                    })?;
                    if generation.replace(g).is_some() {
                        return Err(dup("generation"));
                    }
                }
                "shards" => {
                    let s: usize = rest.parse().map_err(|e| {
                        StoreError::Format(format!("{}: bad shard count: {e}", path.display()))
                    })?;
                    if shards.replace(s).is_some() {
                        return Err(dup("shards"));
                    }
                }
                "node_index" => {
                    let spec = IndexSpec::from_manifest(rest).map_err(|e| {
                        StoreError::Format(format!("{}: node_index: {e}", path.display()))
                    })?;
                    if node_spec.replace(spec).is_some() {
                        return Err(dup("node_index"));
                    }
                }
                "link_index" => {
                    let spec = IndexSpec::from_manifest(rest).map_err(|e| {
                        StoreError::Format(format!("{}: link_index: {e}", path.display()))
                    })?;
                    if link_spec.replace(spec).is_some() {
                        return Err(dup("link_index"));
                    }
                }
                "format" => {
                    let f = ArtifactFormat::parse(rest).ok_or_else(|| {
                        StoreError::Format(format!(
                            "{}: unknown artifact format '{rest}' (legacy|columnar)",
                            path.display()
                        ))
                    })?;
                    if format.replace(f).is_some() {
                        return Err(dup("format"));
                    }
                }
                other => {
                    return Err(StoreError::Format(format!(
                        "{}: unknown manifest key '{other}'",
                        path.display()
                    )))
                }
            }
        }
        match (generation, shards, node_spec, link_spec) {
            (Some(generation), None, Some(node_spec), Some(link_spec)) => Ok(Manifest::Single {
                generation,
                node_spec,
                link_spec,
                // Pre-columnar manifests carry no format line.
                format: format.unwrap_or(ArtifactFormat::Legacy),
            }),
            (None, Some(shards), None, None) => {
                if format.is_some() {
                    return Err(StoreError::Format(format!(
                        "{}: a sharded root carries no 'format' line (each shard records its own)",
                        path.display()
                    )));
                }
                if shards < 2 {
                    return Err(StoreError::Format(format!(
                        "{}: a sharded root needs at least 2 shards, got {shards}",
                        path.display()
                    )));
                }
                Ok(Manifest::Sharded { shards })
            }
            _ => Err(StoreError::Format(format!(
                "{}: manifest must hold either (generation, node_index, link_index) or (shards)",
                path.display()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pane_index::{HnswConfig, IvfConfig};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("pane_manifest_{}_{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn single_roundtrip() {
        let dir = tmp("single");
        let m = Manifest::Single {
            generation: 7,
            node_spec: IndexSpec::Hnsw(HnswConfig {
                m: 12,
                ..Default::default()
            }),
            link_spec: IndexSpec::Ivf(IvfConfig {
                nlist: 32,
                ..Default::default()
            }),
            format: ArtifactFormat::Columnar,
        };
        m.write(&dir).unwrap();
        assert_eq!(Manifest::read(&dir).unwrap(), m);
    }

    #[test]
    fn manifest_without_format_line_parses_as_legacy() {
        let dir = tmp("noformat");
        std::fs::write(
            dir.join(MANIFEST_FILE),
            "PANESTR1\ngeneration 2\nnode_index flat\nlink_index flat\n",
        )
        .unwrap();
        match Manifest::read(&dir).unwrap() {
            Manifest::Single { format, .. } => assert_eq!(format, ArtifactFormat::Legacy),
            other => panic!("wrong shape: {other:?}"),
        }
    }

    #[test]
    fn sharded_roundtrip() {
        let dir = tmp("sharded");
        let m = Manifest::Sharded { shards: 4 };
        m.write(&dir).unwrap();
        assert_eq!(Manifest::read(&dir).unwrap(), m);
    }

    #[test]
    fn corrupt_manifests_are_structured_errors() {
        let dir = tmp("corrupt");
        for bad in [
            "",
            "NOTMAGIC\n",
            "PANESTR1\ngeneration x\n",
            "PANESTR1\ngeneration 1\n",
            "PANESTR1\nshards 1\n",
            "PANESTR1\ngeneration 1\ngeneration 2\nnode_index flat\nlink_index flat\n",
            "PANESTR1\ngeneration 1\nnode_index btree\nlink_index flat\n",
            "PANESTR1\nwhat 3\n",
            "PANESTR1\nshards 2\ngeneration 1\nnode_index flat\nlink_index flat\n",
            "PANESTR1\ngeneration 1\nnode_index flat\nlink_index flat\nformat parquet\n",
            "PANESTR1\nshards 2\nformat columnar\n",
        ] {
            std::fs::write(dir.join(MANIFEST_FILE), bad).unwrap();
            assert!(
                matches!(Manifest::read(&dir), Err(StoreError::Format(_))),
                "accepted: {bad:?}"
            );
        }
    }

    #[test]
    fn missing_manifest_names_the_remedy() {
        let dir = tmp("missing");
        match Manifest::read(&dir) {
            Err(StoreError::Format(m)) => assert!(m.contains("pane store init"), "{m}"),
            other => panic!("expected format error, got {other:?}"),
        }
    }
}
