//! The `PANEWAL1` insert-ahead log.
//!
//! Every row pair that arrives through the serving ingest path is
//! appended (and synced) here **before** the in-memory insert is
//! acknowledged — the log *is* the durability story for grown nodes,
//! exactly the log-structured split LogBase describes: an append-only
//! tail over immutable base artifacts, folded in by periodic compaction
//! (a store snapshot).
//!
//! # Format (version 1)
//!
//! All integers little-endian. The file is the 8-byte magic `b"PANEWAL1"`
//! followed by a sequence of self-delimiting records:
//!
//! | offset | size | field | meaning |
//! |--------|------|-------|---------|
//! | 0 | 8 | `payload_len` | payload bytes that follow the checksum (`16 + 16·k/2`) |
//! | 8 | 8 | `checksum` | FNV-1a 64 over the payload bytes |
//! | 16 | 8 | `node_id` | dense id the row pair was acknowledged under |
//! | 24 | 8 | `k2` | per-direction width `k/2` (> 0) |
//! | 32 | 8·k2 | `forward` | the node's `X_f` row |
//! | 32+8·k2 | 8·k2 | `backward` | the node's `X_b` row |
//!
//! # Recovery contract
//!
//! Records are atomic: [`replay`] returns every record of the longest
//! **clean prefix** — it stops at the first torn or corrupt record
//! (truncated header/payload, checksum mismatch, `payload_len`
//! inconsistent with the embedded `k2`) and reports how many trailing
//! bytes it dropped, so the caller can truncate the log back to the
//! clean prefix and keep appending. A file that is not a `PANEWAL1` log
//! at all (bad magic, shorter than the magic) is a structured
//! [`StoreError`] instead — that is a mispointed path, not a torn tail.
//! Nothing in this module panics on file contents, and no declared
//! length is allocated before it is checked against the bytes that
//! actually remain.

use crate::StoreError;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Magic bytes of the insert-ahead log (version 1).
pub const WAL_MAGIC: &[u8; 8] = b"PANEWAL1";

/// Refuse records declaring a `k/2` beyond this (a corrupt length must
/// not drive a giant allocation).
const MAX_K2: u64 = 1 << 20;

/// FNV-1a 64 — the record checksum. Not cryptographic; it detects torn
/// writes and bit rot, which is all a local WAL needs.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One replayed insert: the acknowledged node id and its row pair.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Dense node id the insert was acknowledged under.
    pub node_id: u64,
    /// The node's forward (`X_f`) row.
    pub forward: Vec<f64>,
    /// The node's backward (`X_b`) row.
    pub backward: Vec<f64>,
}

/// Result of scanning a log: the clean-prefix records plus where the
/// prefix ends.
#[derive(Debug)]
pub struct WalReplay {
    /// Records of the longest clean prefix, in append order.
    pub records: Vec<WalRecord>,
    /// Byte length of the clean prefix (magic included) — what the file
    /// should be truncated to before further appends.
    pub valid_len: u64,
    /// Trailing bytes past the clean prefix (0 for a healthy log).
    pub dropped_bytes: u64,
}

fn serialize_payload(node_id: u64, forward: &[f64], backward: &[f64]) -> Vec<u8> {
    let k2 = forward.len();
    let mut payload = Vec::with_capacity(16 + 16 * k2);
    payload.extend_from_slice(&node_id.to_le_bytes());
    payload.extend_from_slice(&(k2 as u64).to_le_bytes());
    for half in [forward, backward] {
        for &v in half {
            payload.extend_from_slice(&v.to_le_bytes());
        }
    }
    payload
}

/// What one [`Wal::append`] did, for the caller's instrumentation: how
/// many bytes the record added and how the wall time split between the
/// buffered write and the `sync_data` barrier (the barrier dominates on
/// real disks — it is the per-insert durability cost).
#[derive(Debug, Clone, Copy)]
pub struct WalAppend {
    /// Record size on disk (header + payload).
    pub bytes: u64,
    /// Time spent in `write_all`.
    pub write: Duration,
    /// Time spent in `sync_data`.
    pub sync: Duration,
}

/// Append handle over a `PANEWAL1` file. Every append is flushed and
/// synced before it returns — an acknowledged insert survives a hard
/// kill of the process.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: File,
    /// Current log length in bytes (magic included); mirrors the file so
    /// status reporting never needs a `metadata` syscall.
    len: u64,
}

impl Wal {
    /// Creates a fresh (empty) log at `path`, truncating anything there.
    pub fn create(path: &Path) -> Result<Self, StoreError> {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all(WAL_MAGIC)?;
        file.sync_data()?;
        Ok(Self {
            path: path.to_path_buf(),
            file,
            len: WAL_MAGIC.len() as u64,
        })
    }

    /// Opens an existing log for appending at `valid_len` (as reported by
    /// [`replay`]), truncating any torn tail past it first.
    pub fn open_at(path: &Path, valid_len: u64) -> Result<Self, StoreError> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        if file.metadata()?.len() > valid_len {
            file.set_len(valid_len)?;
            file.sync_data()?;
        }
        let mut file = file;
        file.seek(SeekFrom::Start(valid_len))?;
        Ok(Self {
            path: path.to_path_buf(),
            file,
            len: valid_len,
        })
    }

    /// Appends one insert record and syncs it to disk. Only after this
    /// returns may the insert be acknowledged. Returns the record size
    /// and the write/sync timing split for instrumentation.
    pub fn append(
        &mut self,
        node_id: u64,
        forward: &[f64],
        backward: &[f64],
    ) -> Result<WalAppend, StoreError> {
        debug_assert_eq!(forward.len(), backward.len());
        let payload = serialize_payload(node_id, forward, backward);
        let mut record = Vec::with_capacity(16 + payload.len());
        record.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        record.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        record.extend_from_slice(&payload);
        let t0 = Instant::now();
        self.file.write_all(&record)?;
        let write = t0.elapsed();
        let t1 = Instant::now();
        self.file.sync_data()?;
        let sync = t1.elapsed();
        self.len += record.len() as u64;
        Ok(WalAppend {
            bytes: record.len() as u64,
            write,
            sync,
        })
    }

    /// Truncates the log back to just the magic (after a snapshot folded
    /// every record into a new base generation).
    pub fn truncate(&mut self) -> Result<(), StoreError> {
        self.file.set_len(WAL_MAGIC.len() as u64)?;
        self.file.seek(SeekFrom::Start(WAL_MAGIC.len() as u64))?;
        self.file.sync_data()?;
        self.len = WAL_MAGIC.len() as u64;
        Ok(())
    }

    /// Current log length in bytes, magic included.
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Scans the log at `path`, returning the clean-prefix records. See the
/// [module docs](self) for the exact torn-tail vs structured-error split.
pub fn replay(path: &Path) -> Result<WalReplay, StoreError> {
    let mut file = File::open(path)?;
    let file_len = file.metadata()?.len();
    let mut magic = [0u8; 8];
    if file_len < 8 {
        return Err(StoreError::Format(format!(
            "{}: too short to be a PANEWAL1 log ({file_len} bytes)",
            path.display()
        )));
    }
    file.read_exact(&mut magic)?;
    if &magic != WAL_MAGIC {
        return Err(StoreError::Format(format!(
            "{}: bad WAL magic {magic:?} (expected {WAL_MAGIC:?})",
            path.display()
        )));
    }

    let mut records = Vec::new();
    let mut valid_len = 8u64;
    loop {
        let remaining = file_len - valid_len;
        if remaining == 0 {
            break;
        }
        // Header: payload_len + checksum. A partial header is a torn tail.
        if remaining < 16 {
            break;
        }
        let mut header = [0u8; 16];
        file.read_exact(&mut header)?;
        let payload_len = u64::from_le_bytes(header[..8].try_into().unwrap());
        let checksum = u64::from_le_bytes(header[8..].try_into().unwrap());
        // A length the remaining bytes cannot hold — or one implying an
        // absurd k/2 — is corruption; stop before allocating for it.
        if payload_len > remaining - 16 || payload_len > 16 + 16 * MAX_K2 {
            break;
        }
        let mut payload = vec![0u8; payload_len as usize];
        file.read_exact(&mut payload)?;
        if fnv1a(&payload) != checksum {
            break;
        }
        // Checksum-valid payloads still carry their own redundancy: the
        // declared k/2 must account for the payload length exactly.
        if payload_len < 16 {
            break;
        }
        let node_id = u64::from_le_bytes(payload[..8].try_into().unwrap());
        let k2 = u64::from_le_bytes(payload[8..16].try_into().unwrap());
        if k2 == 0 || payload_len != 16 + 16 * k2 {
            break;
        }
        let k2 = k2 as usize;
        let half = |at: usize| -> Vec<f64> {
            (0..k2)
                .map(|i| {
                    f64::from_le_bytes(payload[at + 8 * i..at + 8 * (i + 1)].try_into().unwrap())
                })
                .collect()
        };
        let forward = half(16);
        let backward = half(16 + 8 * k2);
        records.push(WalRecord {
            node_id,
            forward,
            backward,
        });
        valid_len += 16 + payload_len;
    }
    Ok(WalReplay {
        records,
        valid_len,
        dropped_bytes: file_len - valid_len,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pane_wal_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn append_replay_roundtrip() {
        let p = tmp("roundtrip.wal");
        let mut wal = Wal::create(&p).unwrap();
        wal.append(10, &[1.0, 2.0], &[3.0, 4.0]).unwrap();
        wal.append(11, &[-0.5, 0.25], &[0.0, 9.0]).unwrap();
        let r = replay(&p).unwrap();
        assert_eq!(r.dropped_bytes, 0);
        assert_eq!(r.records.len(), 2);
        assert_eq!(r.records[0].node_id, 10);
        assert_eq!(r.records[0].forward, vec![1.0, 2.0]);
        assert_eq!(r.records[1].backward, vec![0.0, 9.0]);
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let p = tmp("torn.wal");
        let mut wal = Wal::create(&p).unwrap();
        wal.append(0, &[1.0], &[2.0]).unwrap();
        wal.append(1, &[3.0], &[4.0]).unwrap();
        let full = std::fs::read(&p).unwrap();
        // Cut the second record in half: the first must replay cleanly.
        let cut = full.len() - 10;
        std::fs::write(&p, &full[..cut]).unwrap();
        let r = replay(&p).unwrap();
        assert_eq!(r.records.len(), 1);
        assert!(r.dropped_bytes > 0);
        // Reopening at valid_len truncates the tail and appends cleanly.
        let mut wal = Wal::open_at(&p, r.valid_len).unwrap();
        wal.append(1, &[5.0], &[6.0]).unwrap();
        let r = replay(&p).unwrap();
        assert_eq!(r.records.len(), 2);
        assert_eq!(r.records[1].forward, vec![5.0]);
        assert_eq!(r.dropped_bytes, 0);
    }

    #[test]
    fn checksum_catches_flips() {
        let p = tmp("flip.wal");
        let mut wal = Wal::create(&p).unwrap();
        wal.append(0, &[1.0, 2.0], &[3.0, 4.0]).unwrap();
        let mut bytes = std::fs::read(&p).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&p, &bytes).unwrap();
        let r = replay(&p).unwrap();
        assert!(r.records.is_empty());
        assert!(r.dropped_bytes > 0);
    }

    #[test]
    fn non_wal_files_are_structured_errors() {
        let p = tmp("notwal.wal");
        std::fs::write(&p, b"PANEEMB1junkjunk").unwrap();
        assert!(matches!(replay(&p), Err(StoreError::Format(_))));
        std::fs::write(&p, b"PAN").unwrap();
        assert!(matches!(replay(&p), Err(StoreError::Format(_))));
    }

    #[test]
    fn append_reports_bytes_and_len_tracks_file() {
        let p = tmp("lenbytes.wal");
        let mut wal = Wal::create(&p).unwrap();
        assert_eq!(wal.len_bytes(), 8);
        let a = wal.append(3, &[1.0, 2.0], &[3.0, 4.0]).unwrap();
        // header(16) + payload(16 + 16·k2) with k2 = 2.
        assert_eq!(a.bytes, 16 + 16 + 16 * 2);
        assert_eq!(wal.len_bytes(), 8 + a.bytes);
        assert_eq!(wal.len_bytes(), std::fs::metadata(&p).unwrap().len());
        // Reopen at the replayed prefix: the mirror picks up where the
        // file really is; truncate resets it to the bare magic.
        let r = replay(&p).unwrap();
        let mut wal = Wal::open_at(&p, r.valid_len).unwrap();
        assert_eq!(wal.len_bytes(), r.valid_len);
        wal.truncate().unwrap();
        assert_eq!(wal.len_bytes(), 8);
    }

    #[test]
    fn truncate_resets_to_empty() {
        let p = tmp("trunc.wal");
        let mut wal = Wal::create(&p).unwrap();
        wal.append(0, &[1.0], &[2.0]).unwrap();
        wal.truncate().unwrap();
        let r = replay(&p).unwrap();
        assert!(r.records.is_empty());
        assert_eq!(r.valid_len, 8);
        wal.append(0, &[7.0], &[8.0]).unwrap();
        assert_eq!(replay(&p).unwrap().records.len(), 1);
    }
}
