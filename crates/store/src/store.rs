//! A single durable store directory: immutable base generation + WAL.
//!
//! ```text
//! STORE/
//!   MANIFEST        PANESTR1 manifest naming the current generation
//!   wal.log         PANEWAL1 insert-ahead log (see `wal`)
//!   gen-00003/      the current generation's immutable base artifacts
//!     embedding.bin   PANECOL1 embedding store (X_f, X_b, Y)
//!     node.idx        PANECOL1 similar-nodes index over [X_f ‖ X_b]
//!     link.idx        PANECOL1 link index over X_b
//! ```
//!
//! New generations are columnar `PANECOL1` containers; stores written by
//! older builds hold legacy `PANEEMB1`/`PANEIDX1` streams, which every
//! loader still reads and [`migrate`] (or any snapshot) rewrites forward.
//!
//! The life cycle mirrors a log-structured store (LogBase, PAPERS.md):
//! [`Store::open`] loads the base generation and **replays** the WAL into
//! delta segments (restart-safe inserts), [`Store::append`] records each
//! new row pair *before* it is acknowledged, and [`Store::snapshot`]
//! compacts everything into a fresh generation — written completely,
//! committed by an atomic manifest rename, and only then the WAL is
//! truncated and the old generation removed. Every crash window leaves a
//! manifest naming one complete generation plus a WAL whose clean prefix
//! re-creates the acknowledged inserts.

use crate::manifest::{ArtifactFormat, Manifest, MANIFEST_FILE};
use crate::wal::{self, Wal};
use crate::StoreError;
use pane_core::PaneEmbedding;
use pane_index::{AnyIndex, DeltaIndex, IndexSpec, Metric, VectorIndex};
use std::fs::File;
use std::io::Read;
use std::path::{Path, PathBuf};

/// File name of the insert-ahead log inside a store directory.
pub const WAL_FILE: &str = "wal.log";

/// File names of the base artifacts inside a generation directory.
pub const EMBEDDING_FILE: &str = "embedding.bin";
/// Similar-nodes index file inside a generation directory.
pub const NODE_INDEX_FILE: &str = "node.idx";
/// Link-recommendation index file inside a generation directory.
pub const LINK_INDEX_FILE: &str = "link.idx";

/// Advisory single-writer lock file inside a store directory.
pub const LOCK_FILE: &str = "LOCK";

fn gen_dir(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("gen-{generation:05}"))
}

/// Takes the store's exclusive OS file lock. Two writers on one store
/// directory corrupt each other (an offline `pane store snapshot` would
/// truncate the WAL under a live daemon's append offset, silently
/// dropping its acknowledged inserts as a "torn tail"), so [`Store::open`]
/// and [`Store::init`] refuse to proceed while another process holds the
/// lock. The kernel releases it on *any* process exit — including
/// `kill -9` — so a crashed daemon can never brick its store.
fn take_lock(dir: &Path) -> Result<File, StoreError> {
    let lock = File::create(dir.join(LOCK_FILE))?;
    lock.try_lock().map_err(|e| {
        StoreError::Format(format!(
            "{} is in use by another process (lock unavailable: {e}); stop the other \
             daemon/tool first — concurrent writers would corrupt the insert-ahead log",
            dir.display()
        ))
    })?;
    Ok(lock)
}

/// Fsyncs a freshly written artifact file (write-path durability: the
/// manifest must never commit to pages that have not reached disk).
fn sync_file(path: &Path) -> Result<(), StoreError> {
    File::open(path)?.sync_all()?;
    Ok(())
}

/// Best-effort directory fsync (making renames/creates durable).
/// Directory handles are not openable on every platform; a failure here
/// downgrades durability, never correctness, so it is not propagated.
fn sync_dir(path: &Path) {
    if let Ok(d) = File::open(path) {
        let _ = d.sync_all();
    }
}

/// Writes one generation's three artifacts into `gdir` in the requested
/// format and fsyncs them. The columnar path is what `init`, `snapshot`,
/// and `migrate` all use; the legacy path exists so tests and CI can
/// create pre-columnar fixtures (`pane store init --format legacy`).
fn write_generation(
    gdir: &Path,
    emb: &PaneEmbedding,
    node: &AnyIndex,
    link: &AnyIndex,
    format: ArtifactFormat,
) -> Result<(), StoreError> {
    match format {
        ArtifactFormat::Columnar => {
            pane_core::save_columns(emb, &gdir.join(EMBEDDING_FILE))?;
            node.save(&gdir.join(NODE_INDEX_FILE))?;
            link.save(&gdir.join(LINK_INDEX_FILE))?;
        }
        ArtifactFormat::Legacy => {
            pane_core::save_binary(emb, &gdir.join(EMBEDDING_FILE))?;
            for (idx, file) in [(node, NODE_INDEX_FILE), (link, LINK_INDEX_FILE)] {
                match idx {
                    AnyIndex::Flat(x) => x.save_legacy(&gdir.join(file))?,
                    AnyIndex::Ivf(x) => x.save_legacy(&gdir.join(file))?,
                    AnyIndex::Hnsw(x) => x.save_legacy(&gdir.join(file))?,
                    AnyIndex::SqFlat(_) => {
                        return Err(StoreError::Format(
                            "sqflat indexes have no legacy form; use the columnar format".into(),
                        ))
                    }
                }
            }
        }
    }
    for f in [EMBEDDING_FILE, NODE_INDEX_FILE, LINK_INDEX_FILE] {
        sync_file(&gdir.join(f))?;
    }
    sync_dir(gdir);
    Ok(())
}

/// Builds the canonical serving index pair for an embedding: the node
/// index over the `[X_f ‖ X_b]` classifier features and the link index
/// over `X_b`, both max-inner-product (the unified score scale). The one
/// shared recipe `Store::init`, snapshots, and `ServeEngine` compactions
/// all use, so bases can never drift between layers.
pub fn build_bases(
    emb: &PaneEmbedding,
    node_spec: &IndexSpec,
    link_spec: &IndexSpec,
    threads: usize,
) -> (AnyIndex, AnyIndex) {
    let node = node_spec.build(
        &emb.classifier_feature_matrix(),
        Metric::InnerProduct,
        threads,
    );
    let link = link_spec.build(&emb.backward, Metric::InnerProduct, threads);
    (node, link)
}

/// Durable-store handle: the persistence side of a serving engine. The
/// in-memory state it re-creates at open lives in [`OpenStore`].
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    generation: u64,
    node_spec: IndexSpec,
    link_spec: IndexSpec,
    format: ArtifactFormat,
    wal: Wal,
    wal_records: usize,
    replayed: usize,
    recovered_bytes: u64,
    /// Held for the handle's lifetime; the kernel releases it on exit.
    _lock: File,
}

/// Everything [`Store::open`] re-creates: the store handle plus the
/// in-memory serving state with the WAL already replayed into it.
#[derive(Debug)]
pub struct OpenStore {
    /// The persistence handle (keep it to append / snapshot).
    pub store: Store,
    /// Embedding store: base rows plus every replayed WAL row.
    pub embedding: PaneEmbedding,
    /// Similar-nodes index: base structure + replayed delta segment.
    pub node_index: DeltaIndex,
    /// Link index: base structure + replayed delta segment.
    pub link_index: DeltaIndex,
}

impl Store {
    /// Initializes `dir` as a fresh store: generation 1 artifacts built
    /// from `emb` per the specs (written as columnar `PANECOL1`
    /// containers), an empty WAL, and the manifest. Refuses a directory
    /// that already holds a manifest.
    pub fn init(
        dir: &Path,
        emb: &PaneEmbedding,
        node_spec: &IndexSpec,
        link_spec: &IndexSpec,
        threads: usize,
    ) -> Result<(), StoreError> {
        Self::init_with_format(
            dir,
            emb,
            node_spec,
            link_spec,
            threads,
            ArtifactFormat::Columnar,
        )
    }

    /// [`Store::init`] with an explicit artifact format. The legacy
    /// format exists for migration fixtures and compatibility tests
    /// (`pane store init --format legacy`); new stores should take the
    /// columnar default.
    pub fn init_with_format(
        dir: &Path,
        emb: &PaneEmbedding,
        node_spec: &IndexSpec,
        link_spec: &IndexSpec,
        threads: usize,
        format: ArtifactFormat,
    ) -> Result<(), StoreError> {
        if emb.forward.rows() == 0 || emb.forward.cols() == 0 {
            return Err(StoreError::Format(
                "cannot init a store from an empty embedding".into(),
            ));
        }
        std::fs::create_dir_all(dir)?;
        if dir.join(MANIFEST_FILE).exists() {
            return Err(StoreError::Format(format!(
                "{} already holds a store (MANIFEST exists); refusing to overwrite",
                dir.display()
            )));
        }
        let _lock = take_lock(dir)?;
        let generation = 1;
        let gdir = gen_dir(dir, generation);
        std::fs::create_dir_all(&gdir)?;
        let (node, link) = build_bases(emb, node_spec, link_spec, threads);
        write_generation(&gdir, emb, &node, &link, format)?;
        Wal::create(&dir.join(WAL_FILE))?;
        Manifest::Single {
            generation,
            node_spec: *node_spec,
            link_spec: *link_spec,
            format,
        }
        .write(dir)?;
        Ok(())
    }

    /// Opens a store directory: loads the current generation's base
    /// artifacts, replays the WAL's clean prefix into the embedding and
    /// both delta segments, and truncates any torn WAL tail.
    ///
    /// Replayed records are validated against the base (width, dense id
    /// sequence, finite values); an inconsistency is a structured
    /// [`StoreError::Wal`] — the WAL belongs to some other store — and
    /// never a partially applied row. Records whose ids precede the base
    /// (possible only when a snapshot crashed between its manifest
    /// commit and its WAL truncation) are provably already folded: they
    /// are skipped and the interrupted truncation is completed here.
    ///
    /// The open takes the store's exclusive OS lock and holds it for the
    /// handle's lifetime — a second daemon or an offline `pane store
    /// snapshot` on a live store fails fast instead of corrupting the
    /// log. The kernel drops the lock on any exit, `kill -9` included.
    pub fn open(dir: &Path) -> Result<OpenStore, StoreError> {
        let (generation, node_spec, link_spec, format) = match Manifest::read(dir)? {
            Manifest::Single {
                generation,
                node_spec,
                link_spec,
                format,
            } => (generation, node_spec, link_spec, format),
            Manifest::Sharded { shards } => {
                return Err(StoreError::Format(format!(
                    "{} is a sharded root ({shards} shards); open it with ShardedStore / \
                     `pane serve --store`",
                    dir.display()
                )))
            }
        };
        let gdir = gen_dir(dir, generation);
        let mut embedding = pane_core::load_binary(&gdir.join(EMBEDDING_FILE))?;
        let node_base = pane_index::load_index(&gdir.join(NODE_INDEX_FILE))?;
        let link_base = pane_index::load_index(&gdir.join(LINK_INDEX_FILE))?;
        let n = embedding.forward.rows();
        let k2 = embedding.forward.cols();
        for (what, idx, want_dim) in [("node", &node_base, 2 * k2), ("link", &link_base, k2)] {
            if idx.len() != n || idx.dim() != want_dim {
                return Err(StoreError::Format(format!(
                    "{}: {what} index holds {}×{} but the embedding implies {n}×{want_dim}",
                    gdir.display(),
                    idx.len(),
                    idx.dim()
                )));
            }
        }
        let lock = take_lock(dir)?;
        let mut node_index = DeltaIndex::new(node_base);
        let mut link_index = DeltaIndex::new(link_base);

        let wal_path = dir.join(WAL_FILE);
        let replayed = wal::replay(&wal_path)?;
        let mut stale = 0usize;
        let mut applied: Vec<&wal::WalRecord> = Vec::new();
        for rec in &replayed.records {
            if rec.node_id < n as u64 {
                // Folded into this generation already — the record
                // survived only because a snapshot crashed after its
                // manifest rename but before its WAL truncation.
                stale += 1;
                continue;
            }
            let expect = embedding.forward.rows() as u64;
            if rec.node_id != expect {
                return Err(StoreError::Wal(format!(
                    "WAL record carries node id {} but the store expects {expect} — \
                     the log does not belong to this base generation",
                    rec.node_id
                )));
            }
            if rec.forward.len() != k2 || rec.backward.len() != k2 {
                return Err(StoreError::Wal(format!(
                    "WAL record for node {} has width {} but the store holds k/2 = {k2}",
                    rec.node_id,
                    rec.forward.len()
                )));
            }
            if rec
                .forward
                .iter()
                .chain(&rec.backward)
                .any(|x| !x.is_finite())
            {
                return Err(StoreError::Wal(format!(
                    "WAL record for node {} holds non-finite values",
                    rec.node_id
                )));
            }
            embedding.forward.push_row(&rec.forward);
            embedding.backward.push_row(&rec.backward);
            let features = embedding.classifier_features(rec.node_id as usize);
            node_index.insert(&features)?;
            link_index.insert(&rec.backward)?;
            applied.push(rec);
        }
        let wal_records = applied.len();
        let wal = if stale > 0 {
            // Complete the crash-interrupted truncation: rewrite the log
            // to hold exactly the records not yet folded into the base.
            let mut w = Wal::create(&wal_path)?;
            for rec in &applied {
                w.append(rec.node_id, &rec.forward, &rec.backward)?;
            }
            w
        } else {
            Wal::open_at(&wal_path, replayed.valid_len)?
        };
        Ok(OpenStore {
            store: Store {
                dir: dir.to_path_buf(),
                generation,
                node_spec,
                link_spec,
                format,
                wal,
                wal_records,
                replayed: wal_records,
                recovered_bytes: replayed.dropped_bytes,
                _lock: lock,
            },
            embedding,
            node_index,
            link_index,
        })
    }

    /// Durably records one insert. Must be called (and must succeed)
    /// **before** the in-memory insert is acknowledged to any client.
    /// Returns the WAL append report (record bytes, write/sync timing)
    /// so the serving layer can meter durability cost.
    pub fn append(
        &mut self,
        node_id: usize,
        forward: &[f64],
        backward: &[f64],
    ) -> Result<wal::WalAppend, StoreError> {
        let report = self.wal.append(node_id as u64, forward, backward)?;
        self.wal_records += 1;
        Ok(report)
    }

    /// Commits a new base generation: writes `emb` and the two compacted
    /// bases into `gen-<g+1>/`, atomically swings the manifest to it,
    /// truncates the WAL, and removes the previous generation directory
    /// (best-effort — a leftover directory is garbage, not corruption).
    /// Returns the new generation number.
    ///
    /// Snapshots always write the columnar format — snapshotting is how
    /// a legacy store migrates forward as a side effect of normal
    /// operation (and [`migrate`] is the explicit path).
    pub fn snapshot(
        &mut self,
        emb: &PaneEmbedding,
        node_base: &AnyIndex,
        link_base: &AnyIndex,
    ) -> Result<u64, StoreError> {
        let n = emb.forward.rows();
        let k2 = emb.forward.cols();
        for (what, idx, want_dim) in [("node", node_base, 2 * k2), ("link", link_base, k2)] {
            if idx.len() != n || idx.dim() != want_dim {
                return Err(StoreError::Format(format!(
                    "snapshot {what} base holds {}×{} but the embedding implies {n}×{want_dim}",
                    idx.len(),
                    idx.dim()
                )));
            }
        }
        let next = self.generation + 1;
        let gdir = gen_dir(&self.dir, next);
        // A leftover directory from a crashed snapshot attempt is stale
        // garbage the manifest never committed to; clear it.
        if gdir.exists() {
            std::fs::remove_dir_all(&gdir)?;
        }
        std::fs::create_dir_all(&gdir)?;
        // The generation must be fully ON DISK before the manifest can
        // name it (write_generation fsyncs every artifact and the
        // directory entry), or a power loss after the rename could
        // commit to unwritten pages while the WAL (the only other copy
        // of the inserts) is about to be truncated.
        write_generation(&gdir, emb, node_base, link_base, ArtifactFormat::Columnar)?;
        sync_dir(&self.dir);
        // Commit point: the manifest rename. Before it, the old
        // generation is current; after it, the new one is.
        Manifest::Single {
            generation: next,
            node_spec: self.node_spec,
            link_spec: self.link_spec,
            format: ArtifactFormat::Columnar,
        }
        .write(&self.dir)?;
        self.wal.truncate()?;
        let old = gen_dir(&self.dir, self.generation);
        let _ = std::fs::remove_dir_all(old);
        self.generation = next;
        self.format = ArtifactFormat::Columnar;
        self.wal_records = 0;
        Ok(next)
    }

    /// Store directory path.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current base generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Records currently in the WAL (replayed at open + appended since).
    pub fn wal_records(&self) -> usize {
        self.wal_records
    }

    /// Current WAL size in bytes (magic header included).
    pub fn wal_bytes(&self) -> u64 {
        self.wal.len_bytes()
    }

    /// Records replayed from the WAL when this handle was opened.
    pub fn replayed(&self) -> usize {
        self.replayed
    }

    /// Torn-tail bytes dropped (and truncated away) at open.
    pub fn recovered_bytes(&self) -> u64 {
        self.recovered_bytes
    }

    /// Build recipe of the node index.
    pub fn node_spec(&self) -> IndexSpec {
        self.node_spec
    }

    /// Build recipe of the link index.
    pub fn link_spec(&self) -> IndexSpec {
        self.link_spec
    }

    /// Artifact format of the current base generation.
    pub fn format(&self) -> ArtifactFormat {
        self.format
    }

    /// Total on-disk bytes of the current generation's three artifacts
    /// (best-effort stat; a vanished file counts as 0 rather than
    /// failing a stats report).
    pub fn artifact_bytes(&self) -> u64 {
        let gdir = gen_dir(&self.dir, self.generation);
        [EMBEDDING_FILE, NODE_INDEX_FILE, LINK_INDEX_FILE]
            .iter()
            .filter_map(|f| std::fs::metadata(gdir.join(f)).ok())
            .map(|m| m.len())
            .sum()
    }
}

/// Outcome of [`migrate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrateReport {
    /// Format the store held before the call.
    pub from_format: ArtifactFormat,
    /// Current generation after the call (bumped when a rewrite ran).
    pub generation: u64,
    /// Whether artifacts were actually rewritten (`false` when the store
    /// was already columnar — the call is then a no-op).
    pub migrated: bool,
}

/// Rewrites a legacy store's current generation as columnar `PANECOL1`
/// artifacts, in place.
///
/// The rewrite is a restricted snapshot: the base artifacts are loaded,
/// re-saved into `gen-<g+1>/` in the columnar format, the manifest is
/// atomically swung to the new generation (now recording
/// `format columnar`), and the old generation directory is removed. The
/// WAL is **left untouched** — migration changes the container bytes,
/// not the logical base (same `n` rows), so the replay contract holds
/// verbatim and un-snapshotted inserts survive. Serving results are
/// bit-identical before and after: the matrices and index structures
/// round-trip exactly, only their envelope changes.
///
/// Takes the store's exclusive lock; fails fast if a daemon is live.
/// A store that is already columnar is a successful no-op.
pub fn migrate(dir: &Path) -> Result<MigrateReport, StoreError> {
    let (generation, node_spec, link_spec, format) = match Manifest::read(dir)? {
        Manifest::Single {
            generation,
            node_spec,
            link_spec,
            format,
        } => (generation, node_spec, link_spec, format),
        Manifest::Sharded { shards } => {
            return Err(StoreError::Format(format!(
                "{} is a sharded root ({shards} shards); migrate each shard-NNN/ directory",
                dir.display()
            )))
        }
    };
    let _lock = take_lock(dir)?;
    if format == ArtifactFormat::Columnar {
        return Ok(MigrateReport {
            from_format: format,
            generation,
            migrated: false,
        });
    }
    let gdir = gen_dir(dir, generation);
    let emb = pane_core::load_binary(&gdir.join(EMBEDDING_FILE))?;
    let node = pane_index::load_index(&gdir.join(NODE_INDEX_FILE))?;
    let link = pane_index::load_index(&gdir.join(LINK_INDEX_FILE))?;
    let next = generation + 1;
    let ndir = gen_dir(dir, next);
    if ndir.exists() {
        std::fs::remove_dir_all(&ndir)?;
    }
    std::fs::create_dir_all(&ndir)?;
    write_generation(&ndir, &emb, &node, &link, ArtifactFormat::Columnar)?;
    sync_dir(dir);
    Manifest::Single {
        generation: next,
        node_spec,
        link_spec,
        format: ArtifactFormat::Columnar,
    }
    .write(dir)?;
    let _ = std::fs::remove_dir_all(&gdir);
    Ok(MigrateReport {
        from_format: format,
        generation: next,
        migrated: true,
    })
}

/// Offline status of a store directory, read without loading any matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreStatus {
    /// Current base generation.
    pub generation: u64,
    /// Nodes in the base generation (before WAL replay).
    pub base_nodes: usize,
    /// Per-direction embedding width `k/2`.
    pub half_dim: usize,
    /// Replayable records in the WAL's clean prefix.
    pub wal_records: usize,
    /// Torn/corrupt trailing bytes past the clean prefix.
    pub wal_dropped_bytes: u64,
    /// Build recipe of the node index.
    pub node_spec: IndexSpec,
    /// Build recipe of the link index.
    pub link_spec: IndexSpec,
    /// Artifact format of the base generation (manifest `format` line).
    pub format: ArtifactFormat,
    /// On-disk size of the embedding artifact.
    pub embedding_bytes: u64,
    /// On-disk size of the node index artifact.
    pub node_index_bytes: u64,
    /// On-disk size of the link index artifact.
    pub link_index_bytes: u64,
}

impl StoreStatus {
    /// Total on-disk size of the base generation's artifacts.
    pub fn artifact_bytes(&self) -> u64 {
        self.embedding_bytes + self.node_index_bytes + self.link_index_bytes
    }
}

/// Reads a single store's status: manifest, WAL scan, artifact file
/// sizes, and the embedding header/section table — no matrix data is
/// loaded in either format.
pub fn read_status(dir: &Path) -> Result<StoreStatus, StoreError> {
    let (generation, node_spec, link_spec, format) = match Manifest::read(dir)? {
        Manifest::Single {
            generation,
            node_spec,
            link_spec,
            format,
        } => (generation, node_spec, link_spec, format),
        Manifest::Sharded { shards } => {
            return Err(StoreError::Format(format!(
                "{} is a sharded root ({shards} shards); status each shard or use \
                 `pane store status` on the root",
                dir.display()
            )))
        }
    };
    let gdir = gen_dir(dir, generation);
    let emb_path = gdir.join(EMBEDDING_FILE);
    let (base_nodes, half_dim) = if pane_format::is_columnar(&emb_path)? {
        let (artifact, _, sections) = pane_format::peek_table(&emb_path)?;
        if artifact != pane_format::Artifact::Embedding {
            return Err(StoreError::Format(format!(
                "{}: {artifact:?} artifact where an embedding was expected",
                emb_path.display()
            )));
        }
        let fwd = sections
            .iter()
            .find(|s| s.id == pane_format::section::EMB_FORWARD)
            .ok_or_else(|| {
                StoreError::Format(format!(
                    "{}: container has no forward-embedding section",
                    emb_path.display()
                ))
            })?;
        (fwd.rows, fwd.cols)
    } else {
        let mut f = std::fs::File::open(&emb_path)?;
        let mut header = [0u8; 32];
        f.read_exact(&mut header).map_err(|_| {
            StoreError::Format(format!(
                "{}: truncated embedding header",
                emb_path.display()
            ))
        })?;
        if &header[..8] != pane_core::BINARY_MAGIC {
            return Err(StoreError::Format(format!(
                "{}: neither a PANECOL1 nor a PANEEMB1 embedding",
                emb_path.display()
            )));
        }
        let n = u64::from_le_bytes(header[8..16].try_into().unwrap()) as usize;
        let k2 = u64::from_le_bytes(header[24..32].try_into().unwrap()) as usize;
        (n, k2)
    };
    let file_len =
        |name: &str| -> Result<u64, StoreError> { Ok(std::fs::metadata(gdir.join(name))?.len()) };
    let replayed = wal::replay(&dir.join(WAL_FILE))?;
    Ok(StoreStatus {
        generation,
        base_nodes,
        half_dim,
        wal_records: replayed.records.len(),
        wal_dropped_bytes: replayed.dropped_bytes,
        node_spec,
        link_spec,
        format,
        embedding_bytes: file_len(EMBEDDING_FILE)?,
        node_index_bytes: file_len(NODE_INDEX_FILE)?,
        link_index_bytes: file_len(LINK_INDEX_FILE)?,
    })
}

#[cfg(test)]
pub(crate) mod testutil {
    use pane_core::{Pane, PaneConfig, PaneEmbedding};
    use pane_graph::gen::{generate_sbm, SbmConfig};

    /// A small deterministic embedding fixture shared by the store tests.
    pub fn fixture(nodes: usize, seed: u64) -> PaneEmbedding {
        let g = generate_sbm(&SbmConfig {
            nodes,
            communities: 3,
            avg_out_degree: 5.0,
            attributes: 15,
            attrs_per_node: 3.0,
            seed,
            ..Default::default()
        });
        Pane::new(PaneConfig::builder().dimension(8).seed(7).build())
            .embed(&g)
            .unwrap()
    }

    pub fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pane_store_{}_{name}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::{fixture, tmpdir};
    use super::*;

    #[test]
    fn init_open_roundtrip_with_empty_wal() {
        let dir = tmpdir("roundtrip");
        let emb = fixture(80, 3);
        Store::init(&dir, &emb, &IndexSpec::Flat, &IndexSpec::Flat, 2).unwrap();
        let opened = Store::open(&dir).unwrap();
        assert_eq!(opened.store.generation(), 1);
        assert_eq!(opened.store.replayed(), 0);
        assert_eq!(opened.embedding.forward.data(), emb.forward.data());
        assert_eq!(opened.node_index.base_len(), 80);
        assert_eq!(opened.node_index.delta_len(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn init_refuses_existing_store() {
        let dir = tmpdir("refuse");
        let emb = fixture(40, 1);
        Store::init(&dir, &emb, &IndexSpec::Flat, &IndexSpec::Flat, 1).unwrap();
        match Store::init(&dir, &emb, &IndexSpec::Flat, &IndexSpec::Flat, 1) {
            Err(StoreError::Format(m)) => assert!(m.contains("refusing"), "{m}"),
            other => panic!("expected refusal, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn appended_rows_survive_reopen_and_snapshot_truncates() {
        let dir = tmpdir("durable");
        let emb = fixture(60, 5);
        let k2 = emb.forward.cols();
        Store::init(&dir, &emb, &IndexSpec::Flat, &IndexSpec::Flat, 1).unwrap();

        // Session 1: append two inserts, then hard-stop (drop everything).
        {
            let mut opened = Store::open(&dir).unwrap();
            let f: Vec<f64> = (0..k2).map(|i| 0.1 * (i + 1) as f64).collect();
            opened.store.append(60, &f, &f).unwrap();
            opened.store.append(61, &f, &f).unwrap();
        }

        // Session 2: the inserts are replayed; snapshot folds them.
        let mut opened = Store::open(&dir).unwrap();
        assert_eq!(opened.store.replayed(), 2);
        assert_eq!(opened.embedding.forward.rows(), 62);
        assert_eq!(opened.node_index.delta_len(), 2);
        let (node, link) = build_bases(
            &opened.embedding,
            &opened.store.node_spec(),
            &opened.store.link_spec(),
            1,
        );
        let g = opened
            .store
            .snapshot(&opened.embedding, &node, &link)
            .unwrap();
        assert_eq!(g, 2);
        assert_eq!(opened.store.wal_records(), 0);
        assert!(!gen_dir(&dir, 1).exists(), "old generation not removed");
        drop(opened); // release the single-writer lock

        // Session 3: boots from the new generation with an empty WAL.
        let opened = Store::open(&dir).unwrap();
        assert_eq!(opened.store.generation(), 2);
        assert_eq!(opened.store.replayed(), 0);
        assert_eq!(opened.embedding.forward.rows(), 62);
        assert_eq!(opened.node_index.base_len(), 62);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Regression (review finding): a crash between a snapshot's
    /// manifest rename and its WAL truncation must not brick the store —
    /// the already-folded records are skipped and the interrupted
    /// truncation is completed at the next open.
    #[test]
    fn crash_between_manifest_commit_and_wal_truncation_recovers() {
        let dir = tmpdir("snapcrash");
        let emb = fixture(40, 7);
        let k2 = emb.forward.cols();
        Store::init(&dir, &emb, &IndexSpec::Flat, &IndexSpec::Flat, 1).unwrap();
        let mut opened = Store::open(&dir).unwrap();
        let probe: Vec<f64> = (0..k2).map(|i| 0.2 * (i + 1) as f64).collect();
        opened.store.append(40, &probe, &probe).unwrap();
        opened.embedding.forward.push_row(&probe);
        opened.embedding.backward.push_row(&probe);
        // Simulate the crash: run the snapshot, then restore the
        // pre-snapshot WAL — exactly the on-disk state of dying after
        // the manifest rename but before wal.truncate().
        let pre_snapshot_wal = std::fs::read(dir.join(WAL_FILE)).unwrap();
        let (node, link) = build_bases(&opened.embedding, &IndexSpec::Flat, &IndexSpec::Flat, 1);
        opened
            .store
            .snapshot(&opened.embedding, &node, &link)
            .unwrap();
        drop(opened);
        std::fs::write(dir.join(WAL_FILE), &pre_snapshot_wal).unwrap();

        let reopened = Store::open(&dir).unwrap();
        assert_eq!(reopened.store.generation(), 2);
        assert_eq!(
            reopened.store.replayed(),
            0,
            "stale records must be skipped"
        );
        assert_eq!(reopened.embedding.forward.rows(), 41);
        assert_eq!(reopened.embedding.forward.row(40), &probe[..]);
        drop(reopened);
        // The interrupted truncation was completed on disk.
        let status = read_status(&dir).unwrap();
        assert_eq!(status.wal_records, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Regression (review finding): two writers on one store directory
    /// would corrupt the WAL; the second open must fail fast while the
    /// first handle lives, and succeed once it is dropped.
    #[test]
    fn second_writer_is_locked_out_until_the_first_exits() {
        let dir = tmpdir("lockout");
        let emb = fixture(30, 2);
        Store::init(&dir, &emb, &IndexSpec::Flat, &IndexSpec::Flat, 1).unwrap();
        let first = Store::open(&dir).unwrap();
        match Store::open(&dir) {
            Err(StoreError::Format(m)) => assert!(m.contains("in use"), "{m}"),
            other => panic!("expected lock refusal, got {other:?}"),
        }
        drop(first);
        Store::open(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn foreign_wal_is_a_structured_error() {
        let dir = tmpdir("foreign");
        let emb = fixture(30, 9);
        let k2 = emb.forward.cols();
        Store::init(&dir, &emb, &IndexSpec::Flat, &IndexSpec::Flat, 1).unwrap();
        // A record whose node id skips ahead cannot belong to this base.
        let mut wal = Wal::open_at(&dir.join(WAL_FILE), 8).unwrap();
        wal.append(99, &vec![0.5; k2], &vec![0.5; k2]).unwrap();
        drop(wal);
        match Store::open(&dir) {
            Err(StoreError::Wal(m)) => assert!(m.contains("node id 99"), "{m}"),
            other => panic!("expected WAL error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_bytes_grow_with_appends_and_reset_on_snapshot() {
        let dir = tmpdir("walbytes");
        let emb = fixture(40, 4);
        let k2 = emb.forward.cols();
        Store::init(&dir, &emb, &IndexSpec::Flat, &IndexSpec::Flat, 1).unwrap();
        let mut opened = Store::open(&dir).unwrap();
        assert_eq!(opened.store.wal_bytes(), 8, "fresh log is just the magic");
        let row: Vec<f64> = vec![0.5; k2];
        let report = opened.store.append(40, &row, &row).unwrap();
        assert_eq!(report.bytes, (16 + 16 + 16 * k2) as u64);
        assert_eq!(opened.store.wal_bytes(), 8 + report.bytes);
        opened.embedding.forward.push_row(&row);
        opened.embedding.backward.push_row(&row);
        let (node, link) = build_bases(&opened.embedding, &IndexSpec::Flat, &IndexSpec::Flat, 1);
        opened
            .store
            .snapshot(&opened.embedding, &node, &link)
            .unwrap();
        assert_eq!(opened.store.wal_bytes(), 8, "snapshot folds the log");
        drop(opened);
        // Reopen with a non-empty WAL: the byte count is seeded from the
        // replayed clean prefix, not reset to the magic.
        let mut reopened = Store::open(&dir).unwrap();
        let r = reopened.store.append(41, &row, &row).unwrap();
        drop_bytes_check(&dir, 8 + r.bytes);
        assert_eq!(reopened.store.wal_bytes(), 8 + r.bytes);
        drop(reopened);
        let opened = Store::open(&dir).unwrap();
        assert_eq!(opened.store.wal_bytes(), 8 + r.bytes);
        std::fs::remove_dir_all(&dir).ok();
    }

    fn drop_bytes_check(dir: &Path, want: u64) {
        assert_eq!(std::fs::metadata(dir.join(WAL_FILE)).unwrap().len(), want);
    }

    #[test]
    fn offline_status_reads_without_loading() {
        let dir = tmpdir("status");
        let emb = fixture(50, 2);
        let k2 = emb.forward.cols();
        Store::init(&dir, &emb, &IndexSpec::Flat, &IndexSpec::Flat, 1).unwrap();
        let mut opened = Store::open(&dir).unwrap();
        opened
            .store
            .append(50, &vec![0.1; k2], &vec![0.2; k2])
            .unwrap();
        drop(opened);
        let s = read_status(&dir).unwrap();
        assert_eq!(s.generation, 1);
        assert_eq!(s.base_nodes, 50);
        assert_eq!(s.half_dim, k2);
        assert_eq!(s.wal_records, 1);
        assert_eq!(s.wal_dropped_bytes, 0);
        assert_eq!(s.node_spec, IndexSpec::Flat);
        assert_eq!(s.format, ArtifactFormat::Columnar);
        let gdir = gen_dir(&dir, 1);
        for (have, file) in [
            (s.embedding_bytes, EMBEDDING_FILE),
            (s.node_index_bytes, NODE_INDEX_FILE),
            (s.link_index_bytes, LINK_INDEX_FILE),
        ] {
            assert_eq!(have, std::fs::metadata(gdir.join(file)).unwrap().len());
            assert!(have > 0, "{file} reported as empty");
        }
        assert_eq!(
            s.artifact_bytes(),
            s.embedding_bytes + s.node_index_bytes + s.link_index_bytes
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Both container generations answer `status` identically — the
    /// legacy path parses the `PANEEMB1` header, the columnar path peeks
    /// the `PANECOL1` section table; neither loads matrix data.
    #[test]
    fn status_reads_both_formats() {
        for format in [ArtifactFormat::Legacy, ArtifactFormat::Columnar] {
            let dir = tmpdir(&format!("status_{format}"));
            let emb = fixture(35, 11);
            Store::init_with_format(&dir, &emb, &IndexSpec::Flat, &IndexSpec::Flat, 1, format)
                .unwrap();
            let s = read_status(&dir).unwrap();
            assert_eq!(s.format, format);
            assert_eq!(s.base_nodes, 35);
            assert_eq!(s.half_dim, emb.forward.cols());
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    /// The tentpole's in-place migration: a legacy store is rewritten as
    /// columnar artifacts while the WAL — and therefore every
    /// acknowledged-but-unsnapshotted insert — survives verbatim.
    #[test]
    fn migrate_rewrites_legacy_in_place_and_preserves_wal() {
        let dir = tmpdir("migrate");
        let emb = fixture(45, 6);
        let k2 = emb.forward.cols();
        Store::init_with_format(
            &dir,
            &emb,
            &IndexSpec::Flat,
            &IndexSpec::Flat,
            1,
            ArtifactFormat::Legacy,
        )
        .unwrap();
        {
            let mut opened = Store::open(&dir).unwrap();
            assert_eq!(opened.store.format(), ArtifactFormat::Legacy);
            let row: Vec<f64> = (0..k2).map(|i| 0.3 * (i + 1) as f64).collect();
            opened.store.append(45, &row, &row).unwrap();
        }
        let report = migrate(&dir).unwrap();
        assert_eq!(report.from_format, ArtifactFormat::Legacy);
        assert_eq!(report.generation, 2);
        assert!(report.migrated);
        assert!(!gen_dir(&dir, 1).exists(), "old generation not removed");

        let s = read_status(&dir).unwrap();
        assert_eq!(s.format, ArtifactFormat::Columnar);
        assert_eq!(s.base_nodes, 45, "migration must not fold the WAL");
        assert_eq!(s.wal_records, 1, "migration must not touch the WAL");

        let opened = Store::open(&dir).unwrap();
        assert_eq!(opened.store.format(), ArtifactFormat::Columnar);
        assert_eq!(opened.store.replayed(), 1);
        assert_eq!(opened.embedding.forward.rows(), 46);
        assert_eq!(
            &opened.embedding.forward.data()[..45 * k2],
            emb.forward.data(),
            "migrated base rows must be bit-identical"
        );
        assert_eq!(
            opened.embedding.backward.data()[..45 * k2],
            *emb.backward.data()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn migrate_is_a_noop_on_a_columnar_store() {
        let dir = tmpdir("migrate_noop");
        let emb = fixture(25, 8);
        Store::init(&dir, &emb, &IndexSpec::Flat, &IndexSpec::Flat, 1).unwrap();
        let report = migrate(&dir).unwrap();
        assert_eq!(report.from_format, ArtifactFormat::Columnar);
        assert_eq!(report.generation, 1);
        assert!(!report.migrated);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Snapshots always write columnar — normal operation migrates a
    /// legacy store forward without an explicit `migrate` call.
    #[test]
    fn snapshot_of_a_legacy_store_migrates_it() {
        let dir = tmpdir("snap_migrates");
        let emb = fixture(30, 13);
        Store::init_with_format(
            &dir,
            &emb,
            &IndexSpec::Flat,
            &IndexSpec::Flat,
            1,
            ArtifactFormat::Legacy,
        )
        .unwrap();
        let mut opened = Store::open(&dir).unwrap();
        let (node, link) = build_bases(&opened.embedding, &IndexSpec::Flat, &IndexSpec::Flat, 1);
        opened
            .store
            .snapshot(&opened.embedding, &node, &link)
            .unwrap();
        assert_eq!(opened.store.format(), ArtifactFormat::Columnar);
        drop(opened);
        assert_eq!(read_status(&dir).unwrap().format, ArtifactFormat::Columnar);
        std::fs::remove_dir_all(&dir).ok();
    }
}
